/**
 * @file
 * Figure 4 reproduction: standalone execution slowdown of every
 * application under each scheduling policy, relative to direct device
 * access.
 */

#include "common.hh"

using namespace neonbench;

int
main()
{
    banner("Figure 4",
           "standalone slowdown under the schedulers vs direct access");

    SoloCache solo(2.0);
    const std::vector<SchedKind> scheds = {
        SchedKind::Timeslice, SchedKind::DisengagedTimeslice,
        SchedKind::DisengagedFq};

    Table table({"application", "timeslice", "disengaged-ts",
                 "disengaged-fq"});

    for (const AppProfile &p : AppRegistry::all()) {
        const WorkloadSpec w = WorkloadSpec::app(p.name);
        const double base = solo.roundUs(w);

        std::vector<std::string> row = {p.name};
        for (SchedKind kind : scheds) {
            ExperimentRunner runner(baseConfig(kind, 2.0));
            const double round = runner.run({w}).tasks.at(0).meanRoundUs;
            const double slowdown_pct = 100.0 * (round / base - 1.0);
            row.push_back(Table::num(slowdown_pct, 1) + "%");
        }
        table.addRow(std::move(row));
    }

    table.print();
    std::cout << "\nPaper shape: engaged Timeslice hits small-request "
                 "apps hard (38% BitonicSort,\n30% FastWalshTransform, "
                 "40% FloydWarshall); Disengaged Timeslice stays "
                 "within ~2%\nand Disengaged Fair Queueing within ~5%."
              << std::endl;
    return 0;
}
