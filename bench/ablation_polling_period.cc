/**
 * @file
 * Ablation A2: polling-thread period vs Disengaged Fair Queueing
 * overhead. Drain completion at barriers is detected at polling
 * granularity — the paper names this the principal source of DFQ's
 * residual overhead.
 */

#include "common.hh"

using namespace neonbench;

int
main()
{
    banner("Ablation A2", "polling period vs DFQ overhead");

    SoloCache solo(2.0);

    Table table({"poll period (ms)", "Throttle(106us) overhead",
                 "Throttle(860us) overhead"});

    for (double period_ms : {0.2, 0.5, 1.0, 2.0, 5.0}) {
        std::vector<std::string> row = {Table::num(period_ms, 1)};
        for (double size_us : {106.0, 860.0}) {
            const WorkloadSpec w = WorkloadSpec::throttle(usec(size_us));
            ExperimentConfig cfg =
                baseConfig(SchedKind::DisengagedFq, 2.0);
            cfg.pollPeriod = msec(period_ms);
            ExperimentRunner runner(cfg);
            const double round =
                runner.run({w}).tasks.at(0).meanRoundUs;
            row.push_back(
                Table::num(100.0 * (round / solo.roundUs(w) - 1.0), 2) +
                "%");
        }
        table.addRow(std::move(row));
    }

    table.print();
    std::cout << "\nCoarser polling stretches the barrier drains "
                 "(idleness before sampling\nstarts); much finer polling "
                 "buys little because the drain itself is short."
              << std::endl;
    return 0;
}
