/**
 * @file
 * Shared helpers for the reproduction benches: standard configuration,
 * solo-baseline caching, and header printing.
 */

#ifndef NEON_BENCH_COMMON_HH
#define NEON_BENCH_COMMON_HH

#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "neon/neon.hh"

namespace neonbench
{

using namespace neon;

/** Standard experiment configuration for the paper reproductions. */
inline ExperimentConfig
baseConfig(SchedKind kind, double measure_s = 2.5)
{
    ExperimentConfig cfg;
    cfg.sched = kind;
    cfg.measure = sec(measure_s);
    return cfg;
}

/** Cache of solo direct-access round times, keyed by workload label. */
class SoloCache
{
  public:
    explicit SoloCache(double measure_s = 2.5) : measureS(measure_s) {}

    double
    roundUs(const WorkloadSpec &spec)
    {
        auto it = cache.find(spec.label);
        if (it != cache.end())
            return it->second;
        ExperimentRunner runner(baseConfig(SchedKind::Direct, measureS));
        const double v = runner.run({spec}).tasks.at(0).meanRoundUs;
        cache.emplace(spec.label, v);
        return v;
    }

  private:
    double measureS;
    std::map<std::string, double> cache;
};

/** Banner for a reproduced figure/table. */
inline void
banner(const std::string &id, const std::string &what)
{
    std::cout << "==============================================="
                 "=============\n"
              << id << " — " << what << "\n"
              << "==============================================="
                 "=============\n\n";
}

} // namespace neonbench

#endif // NEON_BENCH_COMMON_HH
