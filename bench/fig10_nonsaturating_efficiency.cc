/**
 * @file
 * Figure 10 reproduction: concurrency efficiency for the
 * nonsaturating DCT-vs-Throttle mix across off ratios.
 */

#include "common.hh"

#include "metrics/efficiency.hh"

using namespace neonbench;

int
main()
{
    banner("Figure 10",
           "efficiency with nonsaturating co-runners");

    SoloCache solo(2.5);
    const std::vector<double> ratios = {0.0, 0.2, 0.4, 0.6, 0.8};

    Table table({"scheduler", "0%", "20%", "40%", "60%", "80%"});

    std::map<std::string, std::map<double, double>> eff;

    for (SchedKind kind : paperSchedulers) {
        std::vector<std::string> row = {schedKindName(kind)};
        for (double ratio : ratios) {
            const WorkloadSpec wd = WorkloadSpec::app("DCT");
            const WorkloadSpec wt =
                WorkloadSpec::throttle(usec(1700), ratio);

            ExperimentRunner runner(baseConfig(kind, 3.0));
            const RunResult r = runner.run({wd, wt});

            const double e = concurrencyEfficiency(
                {solo.roundUs(wd), solo.roundUs(wt)},
                {r.tasks[0].meanRoundUs, r.tasks[1].meanRoundUs});
            eff[schedKindName(kind)][ratio] = e;
            row.push_back(Table::num(e, 2));
        }
        table.addRow(std::move(row));
    }

    table.print();

    // The paper's headline: losses relative to direct access at the
    // 80% off ratio.
    const double direct80 = eff["direct"][0.8];
    std::cout << "\nEfficiency loss vs direct access at 80% off time:\n";
    for (SchedKind kind :
         {SchedKind::Timeslice, SchedKind::DisengagedTimeslice,
          SchedKind::DisengagedFq}) {
        const double v = eff[schedKindName(kind)][0.8];
        std::cout << "  " << schedKindName(kind) << ": "
                  << Table::num(100.0 * (1.0 - v / direct80), 1)
                  << "% (paper: 36% / 34% / ~0%)\n";
    }
    return 0;
}
