/**
 * @file
 * The simulation-core microbenchmark workloads, shared between the
 * google-benchmark wrappers (micro_simcore.cc) and the JSON perf
 * reporter (perf_report.cc) so the two always measure the same code —
 * only the batch sizes differ, and those are parameters.
 */

#ifndef NEON_BENCH_SIMCORE_CASES_HH
#define NEON_BENCH_SIMCORE_CASES_HH

#include <cstdint>

#include "sim/event_queue.hh"

namespace neonbench
{

/** Schedule @p n one-shot events at distinct ticks, then drain. */
inline std::uint64_t
scheduleRunBatch(neon::EventQueue &eq, int n)
{
    for (int i = 0; i < n; ++i)
        eq.scheduleIn(i, [] {});
    return eq.drain();
}

/**
 * The polling-service / sampling-deadline shape: most scheduled events
 * are cancelled and replaced before they fire. Exercises O(1)
 * cancellation and stale-entry compaction. Returns the number of
 * schedule+cancel operations performed (the quantity of interest).
 */
inline std::uint64_t
scheduleCancelChurnBatch(neon::EventQueue &eq, int n)
{
    neon::EventId deadline = neon::invalidEventId;
    for (int i = 0; i < n; ++i) {
        if (deadline != neon::invalidEventId)
            eq.cancel(deadline);
        deadline = eq.scheduleIn(10'000'000 + i, [] {});
        eq.scheduleIn(i, [] {});
    }
    eq.cancel(deadline);
    eq.drain();
    return std::uint64_t(2) * static_cast<std::uint64_t>(n);
}

/**
 * Eight interleaved periodic streams on one queue — the fleet shape
 * from PR 1, where every device's poller, completions, and timers
 * multiply event volume on the shared timeline. Returns the number of
 * events executed.
 */
inline std::uint64_t
fleetInterleaveBatch(neon::EventQueue &eq, int fires_per_stream)
{
    constexpr int streams = 8;

    struct Stream
    {
        neon::EventQueue *eq;
        neon::Tick period;
        int remaining;

        void
        arm()
        {
            eq->scheduleIn(period, [this] {
                if (--remaining > 0)
                    arm();
            });
        }
    };

    Stream ss[streams];
    for (int i = 0; i < streams; ++i) {
        ss[i] = {&eq, neon::Tick(7 + i), fires_per_stream};
        ss[i].arm();
    }
    return eq.drain();
}

} // namespace neonbench

#endif // NEON_BENCH_SIMCORE_CASES_HH
