/**
 * @file
 * The simulation-core microbenchmark workloads, shared between the
 * google-benchmark wrappers (micro_simcore.cc) and the JSON perf
 * reporter (perf_report.cc) so the two always measure the same code —
 * only the batch sizes differ, and those are parameters.
 */

#ifndef NEON_BENCH_SIMCORE_CASES_HH
#define NEON_BENCH_SIMCORE_CASES_HH

#include <cstdint>
#include <vector>

#include "obs/audit.hh"
#include "serve/rate_limit.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"

namespace neonbench
{

/** Schedule @p n one-shot events at distinct ticks, then drain. */
inline std::uint64_t
scheduleRunBatch(neon::EventQueue &eq, int n)
{
    for (int i = 0; i < n; ++i)
        eq.scheduleIn(i, [] {});
    return eq.drain();
}

/**
 * The polling-service / sampling-deadline shape: most scheduled events
 * are cancelled and replaced before they fire. Exercises O(1)
 * cancellation and stale-entry compaction. Returns the number of
 * schedule+cancel operations performed (the quantity of interest).
 */
inline std::uint64_t
scheduleCancelChurnBatch(neon::EventQueue &eq, int n)
{
    neon::EventId deadline = neon::invalidEventId;
    for (int i = 0; i < n; ++i) {
        if (deadline != neon::invalidEventId)
            eq.cancel(deadline);
        deadline = eq.scheduleIn(10'000'000 + i, [] {});
        eq.scheduleIn(i, [] {});
    }
    eq.cancel(deadline);
    eq.drain();
    return std::uint64_t(2) * static_cast<std::uint64_t>(n);
}

/**
 * Eight interleaved periodic streams on one queue — the fleet shape
 * from PR 1, where every device's poller, completions, and timers
 * multiply event volume on the shared timeline. Returns the number of
 * events executed.
 */
inline std::uint64_t
fleetInterleaveBatch(neon::EventQueue &eq, int fires_per_stream)
{
    constexpr int streams = 8;

    struct Stream
    {
        neon::EventQueue *eq;
        neon::Tick period;
        int remaining;

        void
        arm()
        {
            eq->scheduleIn(period, [this] {
                if (--remaining > 0)
                    arm();
            });
        }
    };

    Stream ss[streams];
    for (int i = 0; i < streams; ++i) {
        ss[i] = {&eq, neon::Tick(7 + i), fires_per_stream};
        ss[i].arm();
    }
    return eq.drain();
}

/**
 * The serving-layer shape (PR 4): an open system where sessions
 * arrive with random gaps, hold one of a fixed pool of admission
 * slots for a random service time, queue when the pool is full, and
 * release the slot to the queue head on departure. Two events per
 * session (arrival, departure) plus queue churn — the event-core
 * footprint of src/serve without the device model. Returns the
 * number of events executed.
 */
inline std::uint64_t
openSystemChurnBatch(neon::EventQueue &eq, int sessions)
{
    struct System
    {
        neon::EventQueue *eq = nullptr;
        neon::Rng rng{0x5eedull};
        int slots = 8;
        int live = 0;
        int remaining = 0;
        std::uint64_t served = 0;
        std::vector<int> queue;

        void
        scheduleArrival()
        {
            if (remaining-- <= 0)
                return;
            // Mean gap ~350 vs mean service ~1300 over 8 slots:
            // ~0.6 utilization, transient queueing bursts.
            const neon::Tick gap =
                static_cast<neon::Tick>(rng.next() % 700);
            eq->scheduleIn(gap, [this] {
                arrive();
                scheduleArrival();
            });
        }

        void
        arrive()
        {
            if (live < slots && queue.empty())
                admit();
            else
                queue.push_back(1);
        }

        void
        admit()
        {
            ++live;
            const neon::Tick service =
                800 + static_cast<neon::Tick>(rng.next() % 1024);
            eq->scheduleIn(service, [this] { depart(); });
        }

        void
        depart()
        {
            --live;
            ++served;
            if (!queue.empty() && live < slots) {
                queue.erase(queue.begin());
                admit();
            }
        }
    };

    System sys;
    sys.eq = &eq;
    sys.remaining = sessions;
    sys.scheduleArrival();
    return eq.drain();
}

/**
 * The churn shape with the audit plane's hot path on every event:
 * the same open system as openSystemChurnBatch, but every arrival and
 * departure also evaluates the runtime invariants through
 * AuditLog::check — session conservation (arrivals == live + queued +
 * served), the slot-pool bound, and served-count monotonicity. The
 * delta against open_system_churn is the cost the always-on auditor
 * adds to an event-loop-bound run. Returns the number of events
 * executed.
 */
inline std::uint64_t
openSystemChurnAuditedBatch(neon::EventQueue &eq, int sessions,
                            neon::obs::AuditLog &audit)
{
    struct System
    {
        neon::EventQueue *eq = nullptr;
        neon::obs::AuditLog *audit = nullptr;
        neon::Rng rng{0x5eedull};
        int slots = 8;
        int live = 0;
        int remaining = 0;
        std::uint64_t arrived = 0;
        std::uint64_t served = 0;
        std::uint64_t servedPrev = 0;
        std::vector<int> queue;

        void
        scheduleArrival()
        {
            if (remaining-- <= 0)
                return;
            const neon::Tick gap =
                static_cast<neon::Tick>(rng.next() % 700);
            eq->scheduleIn(gap, [this] {
                arrive();
                scheduleArrival();
            });
        }

        void
        checkInvariants()
        {
            const std::uint64_t in_system =
                static_cast<std::uint64_t>(live) + queue.size() + served;
            audit->check(arrived == in_system, "churn.conservation",
                         eq->now(),
                         static_cast<std::int64_t>(arrived),
                         static_cast<std::int64_t>(in_system));
            audit->check(live <= slots, "churn.slot_bound", eq->now(),
                         slots, live);
            audit->check(served >= servedPrev, "churn.served_monotone",
                         eq->now(),
                         static_cast<std::int64_t>(servedPrev),
                         static_cast<std::int64_t>(served));
            servedPrev = served;
        }

        void
        arrive()
        {
            ++arrived;
            if (live < slots && queue.empty())
                admit();
            else
                queue.push_back(1);
            checkInvariants();
        }

        void
        admit()
        {
            ++live;
            const neon::Tick service =
                800 + static_cast<neon::Tick>(rng.next() % 1024);
            eq->scheduleIn(service, [this] { depart(); });
        }

        void
        depart()
        {
            --live;
            ++served;
            if (!queue.empty() && live < slots) {
                queue.erase(queue.begin());
                admit();
            }
            checkInvariants();
        }
    };

    System sys;
    sys.eq = &eq;
    sys.audit = &audit;
    sys.remaining = sessions;
    sys.scheduleArrival();
    return eq.drain();
}

/**
 * The fault-tolerant serving shape (src/fault + serve retry): open-
 * system churn over grouped slot pools ("devices") with a periodic
 * fault cycle. A fault takes one group down, bumps its generation —
 * invalidating the in-flight departures of its residents, which
 * re-enter placement through capped exponential backoff — and a later
 * event repairs it. The event-core footprint of a faulty serving run:
 * arrivals, departures, eviction re-queues, backoff timers, and
 * down/up transitions on one timeline. Returns the number of events
 * executed.
 */
inline std::uint64_t
openSystemFaultyBatch(neon::EventQueue &eq, int sessions)
{
    struct System
    {
        enum { groups = 4, groupSlots = 2 }; // local classes: no statics

        neon::EventQueue *eq = nullptr;
        neon::Rng rng{0xfa017ull};
        int live[groups] = {};
        int gen[groups] = {};
        bool up[groups] = {};
        int remaining = 0;
        int faultsLeft = 0;
        int nextVictim = 0;
        std::uint64_t served = 0;
        std::uint64_t interrupted = 0;

        void
        scheduleArrival()
        {
            if (remaining-- <= 0)
                return;
            const neon::Tick gap =
                static_cast<neon::Tick>(rng.next() % 700);
            eq->scheduleIn(gap, [this] {
                place(0);
                scheduleArrival();
            });
        }

        void
        place(int retries)
        {
            // Least-loaded up group, like the fleet's placement skipping
            // down devices.
            int g = -1;
            for (int i = 0; i < groups; ++i) {
                if (up[i] && live[i] < groupSlots &&
                    (g < 0 || live[i] < live[g]))
                    g = i;
            }
            if (g < 0) {
                const int shift = retries < 6 ? retries : 6;
                const neon::Tick backoff = neon::Tick(100) << shift;
                const int next = retries + 1;
                eq->scheduleIn(backoff, [this, next] { place(next); });
                return;
            }
            ++live[g];
            const int mygen = gen[g];
            const neon::Tick service =
                800 + static_cast<neon::Tick>(rng.next() % 1024);
            eq->scheduleIn(service,
                           [this, g, mygen] { depart(g, mygen); });
        }

        void
        depart(int g, int mygen)
        {
            if (mygen != gen[g])
                return; // lost to a fault; the retry path re-placed it
            --live[g];
            ++served;
        }

        void
        scheduleFault()
        {
            if (faultsLeft-- <= 0)
                return;
            eq->scheduleIn(1500, [this] {
                const int g = nextVictim;
                nextVictim = (nextVictim + 1) % groups;
                up[g] = false;
                ++gen[g];
                const int victims = live[g];
                live[g] = 0;
                interrupted += static_cast<std::uint64_t>(victims);
                for (int v = 0; v < victims; ++v)
                    eq->scheduleIn(100, [this] { place(1); });
                eq->scheduleIn(900, [this, g] { up[g] = true; });
                scheduleFault();
            });
        }
    };

    System sys;
    sys.eq = &eq;
    for (int i = 0; i < System::groups; ++i)
        sys.up[i] = true;
    sys.remaining = sessions;
    sys.faultsLeft = sessions / 8;
    sys.scheduleArrival();
    sys.scheduleFault();
    return eq.drain();
}

/**
 * The control-plane front-door shape (PR 10): open-system churn with
 * admission control ahead of the slot pool. Every arrival first
 * charges the serving layer's real TokenBucket (throttled arrivals
 * terminate at the front door), and one that would queue compares its
 * fluid-model delay prediction — queued work ahead over the pool's
 * drain rate, the SloAdmission estimate — against a fixed queue-delay
 * budget and is shed past it. The delta against open_system_churn is
 * the per-arrival cost of the admission control plane in an
 * event-loop-bound run. Returns the number of events executed.
 */
inline std::uint64_t
openSystemShedBatch(neon::EventQueue &eq, int sessions)
{
    struct System
    {
        // Local classes can't have static data members; enum constants
        // carry the model parameters instead.
        enum
        {
            slots = 8,
            meanService = 1311, ///< 800 + 1023/2, the service-law mean
            budget = 400        ///< queue-delay budget, ticks
        };

        neon::EventQueue *eq = nullptr;
        // A 150-tick token period passes sustained arrivals slightly
        // faster than the pool drains (one per ~164 ticks), and the
        // 12-token burst is wider than the slot pool — so the steady
        // state exercises all three outcomes: throttle at the bucket,
        // shed at the predictor, admit into the pool.
        neon::TokenBucket bucket{neon::TokenBucketConfig{1e9 / 150.0, 12.0}};
        neon::Rng rng{0x5ed0ull};
        int live = 0;
        int remaining = 0;
        std::uint64_t served = 0;
        std::uint64_t throttled = 0;
        std::uint64_t shed = 0;
        std::vector<int> queue;

        void
        scheduleArrival()
        {
            if (remaining-- <= 0)
                return;
            // Mean gap ~100 against the 150-tick token period: the
            // bucket throttles a steady third, and what passes still
            // overruns the pool so the shed predictor trims the queue.
            const neon::Tick gap =
                static_cast<neon::Tick>(rng.next() % 200);
            eq->scheduleIn(gap, [this] {
                arrive();
                scheduleArrival();
            });
        }

        void
        arrive()
        {
            if (!bucket.tryAcquire(eq->now())) {
                ++throttled;
                return;
            }
            if (live < slots && queue.empty()) {
                admit();
                return;
            }
            const neon::Tick predicted =
                static_cast<neon::Tick>(queue.size() + 1) *
                neon::Tick(meanService) / neon::Tick(slots);
            if (predicted > neon::Tick(budget)) {
                ++shed;
                return;
            }
            queue.push_back(1);
        }

        void
        admit()
        {
            ++live;
            const neon::Tick service =
                800 + static_cast<neon::Tick>(rng.next() % 1024);
            eq->scheduleIn(service, [this] { depart(); });
        }

        void
        depart()
        {
            --live;
            ++served;
            if (!queue.empty() && live < slots) {
                queue.erase(queue.begin());
                admit();
            }
        }
    };

    System sys;
    sys.eq = &eq;
    sys.remaining = sessions;
    sys.scheduleArrival();
    return eq.drain();
}

} // namespace neonbench

#endif // NEON_BENCH_SIMCORE_CASES_HH
