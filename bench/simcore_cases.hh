/**
 * @file
 * The simulation-core microbenchmark workloads, shared between the
 * google-benchmark wrappers (micro_simcore.cc) and the JSON perf
 * reporter (perf_report.cc) so the two always measure the same code —
 * only the batch sizes differ, and those are parameters.
 */

#ifndef NEON_BENCH_SIMCORE_CASES_HH
#define NEON_BENCH_SIMCORE_CASES_HH

#include <cstdint>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/random.hh"

namespace neonbench
{

/** Schedule @p n one-shot events at distinct ticks, then drain. */
inline std::uint64_t
scheduleRunBatch(neon::EventQueue &eq, int n)
{
    for (int i = 0; i < n; ++i)
        eq.scheduleIn(i, [] {});
    return eq.drain();
}

/**
 * The polling-service / sampling-deadline shape: most scheduled events
 * are cancelled and replaced before they fire. Exercises O(1)
 * cancellation and stale-entry compaction. Returns the number of
 * schedule+cancel operations performed (the quantity of interest).
 */
inline std::uint64_t
scheduleCancelChurnBatch(neon::EventQueue &eq, int n)
{
    neon::EventId deadline = neon::invalidEventId;
    for (int i = 0; i < n; ++i) {
        if (deadline != neon::invalidEventId)
            eq.cancel(deadline);
        deadline = eq.scheduleIn(10'000'000 + i, [] {});
        eq.scheduleIn(i, [] {});
    }
    eq.cancel(deadline);
    eq.drain();
    return std::uint64_t(2) * static_cast<std::uint64_t>(n);
}

/**
 * Eight interleaved periodic streams on one queue — the fleet shape
 * from PR 1, where every device's poller, completions, and timers
 * multiply event volume on the shared timeline. Returns the number of
 * events executed.
 */
inline std::uint64_t
fleetInterleaveBatch(neon::EventQueue &eq, int fires_per_stream)
{
    constexpr int streams = 8;

    struct Stream
    {
        neon::EventQueue *eq;
        neon::Tick period;
        int remaining;

        void
        arm()
        {
            eq->scheduleIn(period, [this] {
                if (--remaining > 0)
                    arm();
            });
        }
    };

    Stream ss[streams];
    for (int i = 0; i < streams; ++i) {
        ss[i] = {&eq, neon::Tick(7 + i), fires_per_stream};
        ss[i].arm();
    }
    return eq.drain();
}

/**
 * The serving-layer shape (PR 4): an open system where sessions
 * arrive with random gaps, hold one of a fixed pool of admission
 * slots for a random service time, queue when the pool is full, and
 * release the slot to the queue head on departure. Two events per
 * session (arrival, departure) plus queue churn — the event-core
 * footprint of src/serve without the device model. Returns the
 * number of events executed.
 */
inline std::uint64_t
openSystemChurnBatch(neon::EventQueue &eq, int sessions)
{
    struct System
    {
        neon::EventQueue *eq = nullptr;
        neon::Rng rng{0x5eedull};
        int slots = 8;
        int live = 0;
        int remaining = 0;
        std::uint64_t served = 0;
        std::vector<int> queue;

        void
        scheduleArrival()
        {
            if (remaining-- <= 0)
                return;
            // Mean gap ~350 vs mean service ~1300 over 8 slots:
            // ~0.6 utilization, transient queueing bursts.
            const neon::Tick gap =
                static_cast<neon::Tick>(rng.next() % 700);
            eq->scheduleIn(gap, [this] {
                arrive();
                scheduleArrival();
            });
        }

        void
        arrive()
        {
            if (live < slots && queue.empty())
                admit();
            else
                queue.push_back(1);
        }

        void
        admit()
        {
            ++live;
            const neon::Tick service =
                800 + static_cast<neon::Tick>(rng.next() % 1024);
            eq->scheduleIn(service, [this] { depart(); });
        }

        void
        depart()
        {
            --live;
            ++served;
            if (!queue.empty() && live < slots) {
                queue.erase(queue.begin());
                admit();
            }
        }
    };

    System sys;
    sys.eq = &eq;
    sys.remaining = sessions;
    sys.scheduleArrival();
    return eq.drain();
}

} // namespace neonbench

#endif // NEON_BENCH_SIMCORE_CASES_HH
