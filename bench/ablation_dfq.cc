/**
 * @file
 * Ablation A3/A4: Disengaged Fair Queueing design knobs.
 *
 *  - sampling budget and free-run multiplier vs overhead and fairness;
 *  - usage-attribution mode (paper's size-share estimate, the
 *    counter-delta approximation, and Section 6.1 vendor counters) on
 *    the glxgears anomaly pair;
 *  - engaged (classic) fair queueing vs DFQ: what disengagement buys.
 */

#include "common.hh"

using namespace neonbench;

int
main()
{
    banner("Ablation A3", "DFQ sampling budget and free-run multiplier");

    SoloCache solo(2.5);
    const WorkloadSpec dct = WorkloadSpec::app("DCT");
    const WorkloadSpec thr = WorkloadSpec::throttle(usec(1700));

    {
        Table table({"sampling", "free-run x", "overhead(DCT solo)",
                     "DCT", "Throttle"});
        for (int reqs : {8, 32, 128}) {
            for (double mult : {2.0, 5.0, 10.0}) {
                ExperimentConfig cfg =
                    baseConfig(SchedKind::DisengagedFq, 2.5);
                cfg.dfq.samplingRequests = reqs;
                cfg.dfq.freeRunMultiplier = mult;
                ExperimentRunner runner(cfg);

                const double alone =
                    runner.run({dct}).tasks.at(0).meanRoundUs;
                const RunResult duo = runner.run({dct, thr});

                table.addRow(
                    {std::to_string(reqs) + " req",
                     Table::num(mult, 0),
                     Table::num(100.0 * (alone / solo.roundUs(dct) - 1.0),
                                2) + "%",
                     Table::num(duo.tasks[0].meanRoundUs /
                                    solo.roundUs(dct), 2) + "x",
                     Table::num(duo.tasks[1].meanRoundUs /
                                    solo.roundUs(thr), 2) + "x"});
            }
        }
        table.print();
    }

    std::cout << "\n";
    banner("Ablation A3b", "usage attribution vs the glxgears anomaly");

    {
        const WorkloadSpec gears = WorkloadSpec::app("glxgears");
        const WorkloadSpec t19 = WorkloadSpec::throttle(usec(19));

        Table table({"attribution", "glxgears", "Throttle(19us)"});
        const std::vector<std::pair<std::string, DfqConfig::Attribution>>
            modes = {
                {"size-share (paper)",
                 DfqConfig::Attribution::ShareProportional},
                {"counter-deltas x size",
                 DfqConfig::Attribution::CountTimesSize},
                {"vendor busy counters (Sec 6.1)",
                 DfqConfig::Attribution::DeviceCounters},
            };

        for (const auto &[label, mode] : modes) {
            ExperimentConfig cfg =
                baseConfig(SchedKind::DisengagedFq, 3.0);
            cfg.dfq.attribution = mode;
            ExperimentRunner runner(cfg);
            const RunResult r = runner.run({gears, t19});
            table.addRow({label,
                          Table::num(r.tasks[0].meanRoundUs /
                                         solo.roundUs(gears), 2) + "x",
                          Table::num(r.tasks[1].meanRoundUs /
                                         solo.roundUs(t19), 2) + "x"});
        }
        table.print();
    }

    std::cout << "\n";
    banner("Ablation A4", "engaged fair queueing vs disengaged");

    {
        Table table({"request size (us)", "engaged-fq overhead",
                     "disengaged-fq overhead"});
        for (double us : {19.0, 106.0, 430.0}) {
            const WorkloadSpec w = WorkloadSpec::throttle(usec(us));
            std::vector<std::string> row = {Table::num(us, 0)};
            for (SchedKind kind :
                 {SchedKind::EngagedFq, SchedKind::DisengagedFq}) {
                ExperimentRunner runner(baseConfig(kind, 2.0));
                const double round =
                    runner.run({w}).tasks.at(0).meanRoundUs;
                row.push_back(
                    Table::num(100.0 * (round / solo.roundUs(w) - 1.0),
                               1) + "%");
            }
            table.addRow(std::move(row));
        }
        table.print();
        std::cout << "\nPer-request engagement costs grow as requests "
                     "shrink; disengagement makes\nthe overhead nearly "
                     "size-independent." << std::endl;
    }
    return 0;
}
