/**
 * @file
 * Ablation A1: timeslice length vs standalone overhead and pairwise
 * fairness, for both timeslice variants. Shorter slices re-engage more
 * often (higher overhead, tighter fairness granularity); longer slices
 * amortize the edges but stretch response time.
 */

#include "common.hh"

using namespace neonbench;

int
main()
{
    banner("Ablation A1", "timeslice length sweep");

    SoloCache solo(2.0);
    const WorkloadSpec small = WorkloadSpec::app("DCT");
    const WorkloadSpec big = WorkloadSpec::throttle(usec(430));

    Table table({"slice (ms)", "variant", "standalone overhead",
                 "DCT slowdown", "Throttle slowdown"});

    for (double slice_ms : {5.0, 10.0, 30.0, 100.0}) {
        for (SchedKind kind :
             {SchedKind::Timeslice, SchedKind::DisengagedTimeslice}) {
            ExperimentConfig cfg = baseConfig(kind, 2.5);
            cfg.timeslice.slice = msec(slice_ms);
            ExperimentRunner runner(cfg);

            const double alone =
                runner.run({big}).tasks.at(0).meanRoundUs;
            const double overhead =
                100.0 * (alone / solo.roundUs(big) - 1.0);

            const RunResult duo = runner.run({small, big});
            table.addRow(
                {Table::num(slice_ms, 0), schedKindName(kind),
                 Table::num(overhead, 2) + "%",
                 Table::num(duo.tasks[0].meanRoundUs /
                                solo.roundUs(small), 2) + "x",
                 Table::num(duo.tasks[1].meanRoundUs /
                                solo.roundUs(big), 2) + "x"});
        }
    }

    table.print();
    std::cout << "\nThe paper's 30ms default amortizes token-passing "
                 "and drain costs while\nstaying responsive; very short "
                 "slices multiply the slice-edge drains."
              << std::endl;
    return 0;
}
