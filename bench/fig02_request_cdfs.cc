/**
 * @file
 * Figure 2 reproduction: CDFs of request inter-arrival periods and
 * service times (log2 microsecond bins) for the small-request
 * applications glxgears, oclParticles and simpleTexture3D.
 */

#include "common.hh"

using namespace neonbench;

namespace
{

void
printCdf(const char *title, unsigned max_bin,
         const std::vector<std::pair<std::string, const Log2Histogram *>>
             &series)
{
    std::cout << title << "\n";
    Table table([&] {
        std::vector<std::string> hdr = {"log2(us) bin"};
        for (const auto &s : series)
            hdr.push_back(s.first);
        return hdr;
    }());

    for (unsigned b = 0; b <= max_bin; ++b) {
        std::vector<std::string> row = {std::to_string(b)};
        for (const auto &s : series)
            row.push_back(Table::num(s.second->cdfPercent(b), 1));
        table.addRow(std::move(row));
    }
    table.print();
    std::cout << "\n";
}

} // namespace

int
main()
{
    banner("Figure 2",
           "CDFs of request inter-arrival and service periods");

    const std::vector<std::string> apps = {"glxgears", "oclParticles",
                                           "simpleTexture3D"};

    std::vector<std::unique_ptr<World>> worlds;
    std::vector<std::pair<std::string, const Log2Histogram *>> arrivals;
    std::vector<std::pair<std::string, const Log2Histogram *>> services;

    for (const auto &name : apps) {
        ExperimentConfig cfg = baseConfig(SchedKind::Direct, 2.0);
        cfg.collectTraces = true;
        auto world = std::make_unique<World>(cfg);
        Task &t = world->spawn(WorkloadSpec::app(name));
        world->start();
        world->runFor(cfg.warmup);
        world->beginMeasurement();
        world->runFor(cfg.measure);

        const auto &pt = world->trace.of(t.pid());
        arrivals.emplace_back(name, &pt.interArrivalUs);
        services.emplace_back(name, &pt.serviceUs);
        worlds.push_back(std::move(world));
    }

    printCdf("Request inter-arrival period (CDF %, by log2 us bin)", 17,
             arrivals);
    printCdf("Request service period (CDF %, by log2 us bin)", 13,
             services);

    std::cout << "Paper shape: a large fraction of requests arrive "
                 "back-to-back and are\nserviced in under ~10us (bins "
                 "0-3)." << std::endl;
    return 0;
}
