/**
 * @file
 * Figure 8 reproduction: four concurrent applications (Throttle with
 * large requests plus BinarySearch, DCT and FFT) — per-task slowdown
 * bars and overall efficiency line, per scheduler.
 */

#include "common.hh"

#include "metrics/efficiency.hh"

using namespace neonbench;

int
main()
{
    banner("Figure 8", "fairness and efficiency with four tasks");

    SoloCache solo(3.0);
    const std::vector<WorkloadSpec> mix = {
        WorkloadSpec::throttle(usec(1700)),
        WorkloadSpec::app("BinarySearch"),
        WorkloadSpec::app("DCT"),
        WorkloadSpec::app("FFT"),
    };

    Table table({"scheduler", "Throttle(1700us)", "BinarySearch", "DCT",
                 "FFT", "efficiency"});

    for (SchedKind kind : paperSchedulers) {
        ExperimentRunner runner(baseConfig(kind, 4.0));
        const RunResult r = runner.run(mix);

        std::vector<double> solos, coruns;
        std::vector<std::string> row = {schedKindName(kind)};
        for (std::size_t i = 0; i < mix.size(); ++i) {
            const double s = solo.roundUs(mix[i]);
            solos.push_back(s);
            coruns.push_back(r.tasks[i].meanRoundUs);
            row.push_back(
                Table::num(r.tasks[i].meanRoundUs / s, 2) + "x");
        }
        row.push_back(
            Table::num(concurrencyEfficiency(solos, coruns), 2));
        table.addRow(std::move(row));
    }

    table.print();
    std::cout << "\nPaper shape: the fair schedulers hold every task "
                 "near the expected 4-5x;\nefficiency drops ~13% for the "
                 "engaged scheduler but only ~8%/~7% for the\n"
                 "disengaged ones." << std::endl;
    return 0;
}
