/**
 * @file
 * Figure 9 reproduction: fairness for nonsaturating workloads — DCT
 * against Throttle with increasing "off" (sleep) ratios. Fairness does
 * not require equal suffering: execution is fair as long as nobody
 * slows beyond ~2x; a work-conserving policy lets DCT benefit from the
 * sleeper's idleness.
 */

#include "common.hh"

using namespace neonbench;

int
main()
{
    banner("Figure 9",
           "fairness with nonsaturating co-runners (Throttle off time)");

    SoloCache solo(2.5);
    const std::vector<double> ratios = {0.0, 0.2, 0.4, 0.6, 0.8};

    Table table({"scheduler", "metric", "0%", "20%", "40%", "60%",
                 "80%"});

    for (SchedKind kind : paperSchedulers) {
        std::vector<std::string> dct_row = {schedKindName(kind), "DCT"};
        std::vector<std::string> thr_row = {"", "Throttle"};

        for (double ratio : ratios) {
            const WorkloadSpec wd = WorkloadSpec::app("DCT");
            const WorkloadSpec wt =
                WorkloadSpec::throttle(usec(1700), ratio);

            ExperimentRunner runner(baseConfig(kind, 3.0));
            const RunResult r = runner.run({wd, wt});

            dct_row.push_back(Table::num(
                r.tasks[0].meanRoundUs / solo.roundUs(wd), 2));
            thr_row.push_back(Table::num(
                r.tasks[1].meanRoundUs / solo.roundUs(wt), 2));
        }
        table.addRow(std::move(dct_row));
        table.addRow(std::move(thr_row));
    }

    table.print();
    std::cout << "\nPaper shape: the timeslice policies pin DCT at ~2x "
                 "regardless of the\nsleeper's idleness; Disengaged "
                 "Fair Queueing lets DCT reclaim the idle\ncapacity "
                 "(slowdown falling toward 1x) without penalizing "
                 "Throttle." << std::endl;
    return 0;
}
