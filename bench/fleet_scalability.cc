/**
 * @file
 * Fleet scalability sweep: 1/2/4/8 devices under per-device Disengaged
 * Fair Queueing, two saturating tasks per device. Reports aggregate
 * throughput, scaling versus one device, and the cross-device fairness
 * indices (per-task service and per-device balance), for each placement
 * policy.
 */

#include "common.hh"

using namespace neonbench;

namespace
{

std::vector<WorkloadSpec>
mixFor(std::size_t devices)
{
    // Two saturating tenants per device: one app-profile, one
    // Throttle. Spawned class-by-class so every placement policy deals
    // each device the same mix and the scaling column compares like
    // with like.
    std::vector<WorkloadSpec> mix;
    for (std::size_t i = 0; i < devices; ++i)
        mix.push_back(WorkloadSpec::app("DCT"));
    for (std::size_t i = 0; i < devices; ++i)
        mix.push_back(WorkloadSpec::throttle(usec(1700)));
    return mix;
}

} // namespace

int
main()
{
    banner("Fleet", "device-count sweep under disengaged-fq");

    const std::vector<std::size_t> deviceCounts = {1, 2, 4, 8};
    const std::vector<PlacementKind> policies = {
        PlacementKind::RoundRobin,
        PlacementKind::LeastLoaded,
        PlacementKind::Sticky,
        PlacementKind::HeterogeneityAware,
    };

    for (PlacementKind placement : policies) {
        std::cout << "placement: " << placementKindName(placement)
                  << "\n";
        Table table({"devices", "tasks", "req/s", "scaling",
                     "task-fairness", "device-balance",
                     "vtime-spread(ms)"});

        double baseRps = 0.0;
        for (std::size_t devices : deviceCounts) {
            ExperimentConfig cfg = baseConfig(SchedKind::DisengagedFq);
            cfg.fleet.devices = devices;
            cfg.fleet.placement = placement;

            const std::vector<WorkloadSpec> mix = mixFor(devices);
            const FleetRunResult r = FleetRunner(cfg).run(mix);
            if (devices == 1)
                baseRps = r.throughputRps;

            table.addRow({
                Table::num(static_cast<double>(devices), 0),
                Table::num(static_cast<double>(mix.size()), 0),
                Table::num(r.throughputRps, 0),
                Table::num(baseRps > 0.0 ? r.throughputRps / baseRps
                                         : 0.0,
                           2) +
                    "x",
                Table::num(r.fairness.taskFairness, 3),
                Table::num(r.fairness.deviceBalance, 3),
                Table::num(r.fairness.vtimeSpreadMs, 1),
            });
        }
        table.print();
        std::cout << "\n";
    }

    std::cout << "Expected shape: near-linear throughput scaling (the\n"
                 "devices are independent), task-fairness close to the\n"
                 "single-device value, and device balance near 1 for\n"
                 "the load-aware policies." << std::endl;
    return 0;
}
