/**
 * @file
 * Table 1 reproduction: per-round and per-request times for every
 * benchmark, measured solo under direct device access through the
 * request-interception machinery (measurement only, no policy).
 */

#include "common.hh"

using namespace neonbench;

int
main()
{
    banner("Table 1", "benchmarks and their characteristics");

    Table table({"application", "area", "us/round", "paper",
                 "us/request", "paper(req)"});

    for (const AppProfile &p : AppRegistry::all()) {
        ExperimentConfig cfg = baseConfig(SchedKind::Direct, 2.0);
        cfg.collectTraces = true;

        World world(cfg);
        Task &t = world.spawn(WorkloadSpec::app(p.name));
        world.start();
        world.runFor(cfg.warmup);
        world.beginMeasurement();
        world.runFor(cfg.measure);
        RunResult r = world.results();

        const auto &pt = world.trace.of(t.pid());
        std::string paper_req = Table::num(p.paperReqUs, 0);
        if (p.paperReqUs2 > 0)
            paper_req += "/" + Table::num(p.paperReqUs2, 0);

        table.addRow({p.name, p.area,
                      Table::num(r.tasks[0].meanRoundUs, 0),
                      Table::num(p.paperRoundUs, 0),
                      Table::num(pt.serviceAccumUs.mean(), 0),
                      paper_req});
    }

    table.print();
    std::cout << "\nA \"round\" is one main-loop iteration (compute) or "
                 "one frame (graphics).\nRequest sizes are averages over "
                 "awaited requests; combined apps blend\ncompute and "
                 "graphics requests (the paper reports them separately)."
              << std::endl;
    return 0;
}
