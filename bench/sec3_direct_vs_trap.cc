/**
 * @file
 * Section 3 reproduction: throughput of a direct-mapped submission
 * interface versus one that traps to the kernel on every request
 * (the paper's Nvidia-direct vs AMD-trap comparison), for hand-tuned
 * equal request sizes in the 10-100us range.
 *
 * The trap path costs a syscall entry plus the thin driver submission
 * path; the "driver processing" variant adds nontrivial per-request
 * driver work. The paper reports 8-35% throughput gain for the direct
 * interface, and 48-170% when traps entail driver processing.
 */

#include "common.hh"

using namespace neonbench;

namespace
{

/** Round time of blocking requests with a given submission cost. */
double
roundUsWith(Tick extra_submit_cost, Tick request_size)
{
    ExperimentConfig cfg = baseConfig(SchedKind::Direct, 1.0);
    // Model the trap-per-request stack by inflating the doorbell cost.
    cfg.costs.directDoorbellWrite += extra_submit_cost;
    ExperimentRunner runner(cfg);
    const RunResult r =
        runner.run({WorkloadSpec::throttle(request_size)});
    return r.tasks.at(0).meanRoundUs;
}

} // namespace

int
main()
{
    banner("Section 3",
           "direct-mapped vs trap-per-request submission throughput");

    CostModel costs;
    const Tick trap = costs.syscallEntry + costs.driverThinPath;
    const Tick trap_heavy = trap + costs.driverHeavyPath;

    Table table({"request size (us)", "direct (req/s)", "trap (req/s)",
                 "gain", "trap+driver (req/s)", "gain(driver)"});

    for (double us : {10.0, 20.0, 40.0, 60.0, 80.0, 100.0}) {
        const double direct = roundUsWith(0, usec(us));
        const double trapped = roundUsWith(trap, usec(us));
        const double heavy = roundUsWith(trap_heavy, usec(us));

        const double tp_direct = 1e6 / direct;
        const double tp_trap = 1e6 / trapped;
        const double tp_heavy = 1e6 / heavy;

        table.addRow({Table::num(us, 0), Table::num(tp_direct, 0),
                      Table::num(tp_trap, 0),
                      Table::num(100.0 * (tp_direct / tp_trap - 1.0), 1) +
                          "%",
                      Table::num(tp_heavy, 0),
                      Table::num(100.0 * (tp_direct / tp_heavy - 1.0), 1) +
                          "%"});
    }

    table.print();
    std::cout << "\nPaper: direct access gains 8-35% over plain traps "
                 "for 10-100us requests,\nand 48-170% when the trap "
                 "entails nontrivial driver processing."
              << std::endl;
    return 0;
}
