/**
 * @file
 * Post-hoc analysis of a recorded serving trace.
 *
 * Reads the raw-record JSONL that the observe plane exports
 * (ObserveConfig::recordsJsonlPath, e.g. from example_trace_serving),
 * rebuilds the session lifecycle events, and prints the same phase
 * attribution / tail report the in-process analyzer produces — so a
 * run recorded once can be re-analyzed offline without re-simulating.
 * Exact when the capture was exact (the exporting example fails on
 * ring drops); sessions whose arrival fell out of a wrapped ring are
 * skipped.
 *
 * Usage: trace_analyze records.jsonl [--window MS] [--slo-sojourn MS]
 *
 *   --window MS       also print per-window arrival/departure counts
 *                     and goodput over an MS-of-virtual-time grid
 *   --slo-sojourn MS  goodput target: admit-to-depart sojourn <= MS
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "neon/neon.hh"

using namespace neon;

namespace
{

/**
 * Minimal field extraction from one exported record line. The format
 * is machine-written (printRecordJson), so a strict scan for
 * "key": value is sufficient — no general JSON parser needed.
 */
bool
jsonInt(const std::string &line, const char *key, long long &out)
{
    const std::string needle = std::string("\"") + key + "\": ";
    const std::size_t at = line.find(needle);
    if (at == std::string::npos)
        return false;
    out = std::strtoll(line.c_str() + at + needle.size(), nullptr, 10);
    return true;
}

bool
jsonString(const std::string &line, const char *key, std::string &out)
{
    const std::string needle = std::string("\"") + key + "\": \"";
    const std::size_t at = line.find(needle);
    if (at == std::string::npos)
        return false;
    const std::size_t start = at + needle.size();
    const std::size_t end = line.find('"', start);
    if (end == std::string::npos)
        return false;
    out = line.substr(start, end - start);
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string path;
    Tick window = 0;
    Tick slo_sojourn = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--window") == 0 && i + 1 < argc)
            window = msec(std::atoll(argv[++i]));
        else if (std::strcmp(argv[i], "--slo-sojourn") == 0 && i + 1 < argc)
            slo_sojourn = msec(std::atoll(argv[++i]));
        else if (path.empty())
            path = argv[i];
        else {
            std::cerr << "unknown argument: " << argv[i] << "\n";
            return 2;
        }
    }
    if (path.empty()) {
        std::cerr << "usage: trace_analyze records.jsonl [--window MS] "
                     "[--slo-sojourn MS]\n";
        return 2;
    }

    std::ifstream in(path);
    if (!in) {
        std::cerr << "cannot open '" << path << "'\n";
        return 2;
    }

    // Rebuild lifecycle events from the recorded lines.
    std::vector<SessionEvent> events;
    std::uint64_t lines = 0;
    std::string line;
    while (std::getline(in, line)) {
        ++lines;
        long long when = 0, session = -1, kind_num = 0;
        std::string name;
        if (!jsonInt(line, "when", when) ||
            !jsonInt(line, "session", session) ||
            !jsonInt(line, "kind", kind_num) ||
            !jsonString(line, "name", name))
            continue;
        if (session < 0)
            continue;
        SessionEvent::Kind kind;
        if (!obs::sessionEventKindOf(
                name, static_cast<obs::TraceKind>(kind_num), kind))
            continue;
        SessionEvent e;
        e.kind = kind;
        e.when = when;
        e.session = static_cast<std::uint64_t>(session);
        long long device = -1, arg0 = 0;
        jsonInt(line, "device", device);
        e.device = static_cast<std::int32_t>(device);
        if (kind == SessionEvent::Kind::Arrive &&
            jsonInt(line, "arg0", arg0))
            e.cls = static_cast<std::size_t>(arg0);
        events.push_back(e);
    }
    if (events.empty()) {
        std::cerr << "no session lifecycle records in '" << path << "' ("
                  << lines << " lines) - was the serve category traced?\n";
        return 1;
    }

    obs::PhaseTracker tracker;
    Tick horizon = 0;
    for (const SessionEvent &e : events) {
        tracker.onEvent(e);
        horizon = std::max(horizon, e.when);
    }
    tracker.finalize(horizon);

    const auto class_of = [](const obs::SessionPhases &s) {
        return "class" + std::to_string(s.cls);
    };
    const obs::PhaseReport report =
        obs::buildPhaseReport(tracker.sessions(), class_of, class_of);

    std::printf("%s: %llu records, %zu lifecycle events, %zu sessions, "
                "horizon %.0fms\n\n",
                path.c_str(), static_cast<unsigned long long>(lines),
                events.size(), tracker.sessions().size(),
                toMsec(horizon));
    std::cout << obs::formatPhaseReport(report);

    if (window > 0) {
        // Windowed event counts (and goodput when a target is given)
        // over the recorded horizon.
        const std::size_t n =
            static_cast<std::size_t>((horizon + window - 1) / window);
        struct Win
        {
            std::uint64_t arrivals = 0, departures = 0, kills = 0,
                          sheds = 0, eligible = 0, met = 0;
        };
        std::vector<Win> wins(n > 0 ? n : 1);
        std::vector<Tick> admitted_at;
        for (const SessionEvent &e : events) {
            std::size_t w = static_cast<std::size_t>(e.when / window);
            if (w >= wins.size())
                w = wins.size() - 1;
            if (e.session >= admitted_at.size())
                admitted_at.resize(e.session + 1, -1);
            switch (e.kind) {
            case SessionEvent::Kind::Arrive:
                ++wins[w].arrivals;
                break;
            case SessionEvent::Kind::Admit:
                if (admitted_at[e.session] < 0)
                    admitted_at[e.session] = e.when;
                break;
            case SessionEvent::Kind::Depart:
                ++wins[w].departures;
                if (slo_sojourn > 0) {
                    ++wins[w].eligible;
                    const Tick adm = admitted_at[e.session];
                    if (adm >= 0 && e.when - adm <= slo_sojourn)
                        ++wins[w].met;
                }
                break;
            case SessionEvent::Kind::Kill:
                ++wins[w].kills;
                break;
            case SessionEvent::Kind::Shed:
                ++wins[w].sheds;
                break;
            default:
                break;
            }
        }
        std::printf("\ntimeline (%zu windows of %.0fms):\n", wins.size(),
                    toMsec(window));
        for (std::size_t i = 0; i < wins.size(); ++i) {
            std::printf("  [%6.0f, %6.0f) ms  arr %4llu  dep %4llu  "
                        "kill %3llu  shed %3llu",
                        toMsec(static_cast<Tick>(i) * window),
                        toMsec(static_cast<Tick>(i + 1) * window),
                        static_cast<unsigned long long>(wins[i].arrivals),
                        static_cast<unsigned long long>(wins[i].departures),
                        static_cast<unsigned long long>(wins[i].kills),
                        static_cast<unsigned long long>(wins[i].sheds));
            if (slo_sojourn > 0 && wins[i].eligible > 0)
                std::printf("  goodput %.2f",
                            static_cast<double>(wins[i].met) /
                                static_cast<double>(wins[i].eligible));
            std::printf("\n");
        }
    }
    return 0;
}
