/**
 * @file
 * Ablation A5: true wall-clock microbenchmarks (google-benchmark) of
 * the simulation substrate — event-queue throughput, device dispatch
 * rate, and end-to-end simulated-seconds per wall-second.
 */

#include <benchmark/benchmark.h>

#include <chrono>

#include "neon/neon.hh"
#include "simcore_cases.hh"

namespace
{

using namespace neon;

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        benchmark::DoNotOptimize(neonbench::scheduleRunBatch(eq, 1024));
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_EventQueueScheduleCancelChurn(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        benchmark::DoNotOptimize(
            neonbench::scheduleCancelChurnBatch(eq, 1024));
    }
    state.SetItemsProcessed(state.iterations() * 2 * 1024);
}
BENCHMARK(BM_EventQueueScheduleCancelChurn);

void
BM_EventQueueFleetScale(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        benchmark::DoNotOptimize(neonbench::fleetInterleaveBatch(eq, 512));
    }
    state.SetItemsProcessed(state.iterations() * 8 * 512);
}
BENCHMARK(BM_EventQueueFleetScale);

void
BM_OpenSystemChurn(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        benchmark::DoNotOptimize(
            neonbench::openSystemChurnBatch(eq, 1024));
    }
    state.SetItemsProcessed(state.iterations() * 2 * 1024);
}
BENCHMARK(BM_OpenSystemChurn);

void
BM_OpenSystemChurnAudited(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        obs::AuditLog audit;
        benchmark::DoNotOptimize(
            neonbench::openSystemChurnAuditedBatch(eq, 1024, audit));
        benchmark::DoNotOptimize(audit.violations());
    }
    state.SetItemsProcessed(state.iterations() * 2 * 1024);
}
BENCHMARK(BM_OpenSystemChurnAudited);

void
BM_OpenSystemFaulty(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        benchmark::DoNotOptimize(
            neonbench::openSystemFaultyBatch(eq, 1024));
    }
    state.SetItemsProcessed(state.iterations() * 2 * 1024);
}
BENCHMARK(BM_OpenSystemFaulty);

void
BM_OpenSystemShed(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        benchmark::DoNotOptimize(
            neonbench::openSystemShedBatch(eq, 1024));
    }
    // Items are arrivals offered to the front door; throttled and shed
    // ones cost an event each without a matching departure.
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_OpenSystemShed);

void
BM_DeviceRequestThroughput(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        UsageMeter meter;
        DeviceConfig cfg;
        GpuDevice dev(eq, cfg, meter);
        auto *ctx = dev.createContext(1);
        auto *chan = dev.createChannel(*ctx, RequestClass::Compute);
        for (int i = 0; i < 512; ++i) {
            GpuRequest r;
            r.serviceTime = usec(10);
            r.ref = chan->allocRef();
            dev.submit(*chan, r);
        }
        eq.drain();
        benchmark::DoNotOptimize(chan->completedRef());
    }
    state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_DeviceRequestThroughput);

void
BM_ShardedServing(benchmark::State &state)
{
    // Sharded open-system serving at N shards (arg). Manual timing:
    // world assembly, kernel start, and worker-pool spawn/join are
    // real costs but not simulation throughput, so only the runFor
    // interval is measured.
    const unsigned shards = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        ExperimentConfig cfg;
        cfg.sched = SchedKind::DisengagedFq;
        cfg.fleet.devices = 16;
        cfg.serve.slotsPerDevice = 2;
        cfg.serve.useGlobalClock = true;
        cfg.serve.clockPeriod = msec(10);
        cfg.measure = msec(300);
        cfg.shards.count = shards;

        WorkloadSpec w = WorkloadSpec::throttle(usec(430));
        w.label = "shard";
        const ServeWorkloadSpec spec{
            w, ArrivalSpec::poisson(200.0, msec(200)),
            LifetimeSpec::fixed(msec(100))};

        ServeWorld world(cfg, {spec});
        world.start();

        const auto t0 = std::chrono::steady_clock::now();
        world.runFor(cfg.measure);
        const auto t1 = std::chrono::steady_clock::now();

        state.SetIterationTime(
            std::chrono::duration<double>(t1 - t0).count());
        benchmark::DoNotOptimize(world.eventsExecuted());
        state.counters["events"] = static_cast<double>(
            world.eventsExecuted());
    }
}
BENCHMARK(BM_ShardedServing)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

void
BM_EndToEndSimulation(benchmark::State &state)
{
    // Simulated seconds per wall second for a busy two-task world
    // under Disengaged Fair Queueing.
    for (auto _ : state) {
        ExperimentConfig cfg;
        cfg.sched = SchedKind::DisengagedFq;
        cfg.warmup = msec(50);
        cfg.measure = msec(500);
        ExperimentRunner runner(cfg);
        const RunResult r = runner.run({
            WorkloadSpec::app("DCT"),
            WorkloadSpec::throttle(usec(430)),
        });
        benchmark::DoNotOptimize(r.deviceBusy);
    }
    state.counters["sim_ms_per_iter"] = 550;
}
BENCHMARK(BM_EndToEndSimulation)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
