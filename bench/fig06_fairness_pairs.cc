/**
 * @file
 * Figure 6 reproduction: fairness of two-application co-runs. Four
 * application rows (DCT, FFT, glxgears, oclParticles), each against
 * Throttle at several request sizes, under all four policies. Values
 * are normalized runtimes (slowdown vs running alone with direct
 * access); fair sharing is ~2x for each co-runner.
 */

#include "common.hh"

using namespace neonbench;

int
main()
{
    banner("Figure 6", "fairness of concurrent executions");

    SoloCache solo(2.5);
    const std::vector<std::string> apps = {"DCT", "FFT", "glxgears",
                                           "oclParticles"};
    const std::vector<double> sizes_us = {19, 106, 430, 1700};

    for (const auto &app : apps) {
        std::cout << app << " vs Throttle\n";
        Table table({"scheduler", "metric", "19us", "106us", "430us",
                     "1700us"});

        for (SchedKind kind : paperSchedulers) {
            std::vector<std::string> app_row = {schedKindName(kind),
                                                app};
            std::vector<std::string> thr_row = {"", "Throttle"};

            for (double us : sizes_us) {
                const WorkloadSpec wa = WorkloadSpec::app(app);
                const WorkloadSpec wt =
                    WorkloadSpec::throttle(usec(us));

                ExperimentRunner runner(baseConfig(kind, 2.5));
                const RunResult r = runner.run({wa, wt});

                app_row.push_back(Table::num(
                    r.tasks[0].meanRoundUs / solo.roundUs(wa), 2));
                thr_row.push_back(Table::num(
                    r.tasks[1].meanRoundUs / solo.roundUs(wt), 2));
            }
            table.addRow(std::move(app_row));
            table.addRow(std::move(thr_row));
        }
        table.print();
        std::cout << "\n";
    }

    std::cout << "Paper shape: direct access is grossly unfair (DCT "
                 ">10x vs large Throttle);\nthe schedulers restore ~2x "
                 "for both co-runners. Under Disengaged Fair\nQueueing, "
                 "glxgears fares worse than its co-runner (estimation "
                 "anomaly) and\noclParticles is favored over Throttle "
                 "(multi-channel estimation limits)."
              << std::endl;
    return 0;
}
