/**
 * @file
 * Section 6.3 reproduction: the channel-exhaustion denial-of-service
 * attack and the protected channel-allocation policy.
 */

#include "common.hh"

using namespace neonbench;

namespace
{

struct DosResult
{
    int contexts = 0;
    int channels = 0;
    OpenResult attackerStop = OpenResult::Ok;
    bool victimGotChannel = false;
    std::uint64_t victimRounds = 0;
};

const char *
openResultName(OpenResult r)
{
    switch (r) {
      case OpenResult::Ok:
        return "ok";
      case OpenResult::OutOfChannels:
        return "out-of-channels";
      case OpenResult::PerTaskLimit:
        return "per-task-limit";
      case OpenResult::TooManyUsers:
        return "too-many-users";
    }
    return "?";
}

DosResult
runScenario(bool protect)
{
    ExperimentConfig cfg = baseConfig(SchedKind::Direct, 0.3);
    cfg.channelPolicy.protect = protect;
    cfg.channelPolicy.perTaskLimit = 8;

    World world(cfg);
    DosOutcome attacker, victim;
    world.spawn(WorkloadSpec::custom(
        "attacker", [&attacker](Task &t, std::uint64_t) {
            return channelDosBody(t, &attacker);
        }));
    world.spawn(WorkloadSpec::custom(
        "victim", [&victim](Task &t, std::uint64_t) {
            // The attacker strikes first; the victim shows up 50ms in.
            return dosVictimBody(t, &victim, usec(100), msec(50));
        }));
    world.start();
    world.runFor(msec(300));

    DosResult r;
    r.contexts = attacker.contextsCreated;
    r.channels = attacker.channelsCreated;
    r.attackerStop = attacker.firstFailure;
    r.victimGotChannel = victim.channelsCreated > 0;
    for (Task *t : world.kernel.tasks()) {
        if (t->name() == "victim")
            r.victimRounds = t->roundTimes().count();
    }
    return r;
}

} // namespace

int
main()
{
    banner("Section 6.3", "channel-exhaustion DoS and protection");

    Table table({"policy", "attacker contexts", "attacker channels",
                 "attacker stopped by", "victim got channel",
                 "victim rounds"});

    for (bool protect : {false, true}) {
        const DosResult r = runScenario(protect);
        table.addRow({protect ? "protected (C=8, D/C users)"
                              : "unprotected",
                      std::to_string(r.contexts),
                      std::to_string(r.channels),
                      openResultName(r.attackerStop),
                      r.victimGotChannel ? "yes" : "NO",
                      std::to_string(r.victimRounds)});
    }

    table.print();
    std::cout << "\nPaper: after 48 contexts (one compute + one DMA "
                 "channel each) no other\napplication could use the "
                 "GPU; the protected allocation policy caps each\ntask "
                 "at C channels and admits at most D/C concurrent GPU "
                 "users." << std::endl;
    return 0;
}
