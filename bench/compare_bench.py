#!/usr/bin/env python3
"""Compare a fresh perf_report JSON against the committed baseline.

Usage: compare_bench.py FRESH.json BASELINE.json [--floor EVENTS_PER_SEC]

Reads the per-case throughput numbers out of both reports and flags
regressions with per-case tolerances. CI runners are shared and noisy
and the committed baseline was produced on different hardware, so a
relative shortfall only *warns*; the hard failure criterion stays the
absolute events/s floor the perf-smoke job already applies (an
order-of-magnitude guard, not a noise tripwire). Wall-clock-dominated
composites (end-to-end sim rates, the shard scaling sweep) are
warn-only at any ratio.

Exit codes: 0 ok (warnings allowed), 1 hard floor violated, 2 usage or
malformed report.
"""

import json
import sys

# Fresh-vs-baseline ratio below which a case warns. The event-core
# loops are stable enough for a tight-ish bound; the traced/audited
# variants add instrumented work whose relative cost varies more by
# compiler/host; composites are dominated by machine speed.
TOLERANCES = {
    "schedule_run": 0.5,
    "schedule_cancel_churn": 0.5,
    "fleet_interleave": 0.5,
    "open_system_churn": 0.5,
    "open_system_faulty": 0.5,
    "open_system_shed": 0.5,
    "open_system_churn_traced": 0.4,
    "open_system_churn_audited": 0.4,
}

# The absolute floor applies to these cases (mirrors perf_report's own
# --floor checks): the raw event core, the serving event shape, and
# the serving shape with the admission control plane on every arrival.
FLOOR_CASES = ("schedule_run", "open_system_churn", "open_system_shed")


def main(argv):
    args = []
    floor = 2_000_000.0
    it = iter(argv[1:])
    for a in it:
        if a == "--floor":
            floor = float(next(it, "0"))
        else:
            args.append(a)
    if len(args) != 2:
        print(__doc__, file=sys.stderr)
        return 2

    try:
        with open(args[0]) as f:
            fresh = json.load(f)
        with open(args[1]) as f:
            base = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"compare_bench: {e}", file=sys.stderr)
        return 2

    fresh_cases = fresh.get("cases", {})
    base_cases = base.get("cases", {})
    warnings = 0
    failures = 0

    for name, tol in TOLERANCES.items():
        f_eps = fresh_cases.get(name, {}).get("events_per_sec")
        b_eps = base_cases.get(name, {}).get("events_per_sec")
        if f_eps is None:
            print(f"compare_bench: case '{name}' missing from fresh report",
                  file=sys.stderr)
            return 2
        if b_eps is None:
            # Baseline predates the case (stacked PRs): nothing to
            # compare yet, the committed report catches up next refresh.
            print(f"  {name}: no baseline, fresh {f_eps:.3g} events/s")
            continue
        ratio = f_eps / b_eps if b_eps > 0 else float("inf")
        status = "ok"
        if ratio < tol:
            status = f"WARN (below {tol:.0%} of baseline)"
            warnings += 1
        print(f"  {name}: {f_eps:.3g} vs baseline {b_eps:.3g} "
              f"({ratio:.2f}x) {status}")
        if name in FLOOR_CASES and f_eps < floor:
            print(f"compare_bench: {name} {f_eps:.3g} events/s is below "
                  f"the hard floor of {floor:.3g}", file=sys.stderr)
            failures += 1

    # Composites: report the drift, never gate on it.
    for key in ("end_to_end_dfq", "end_to_end_serve"):
        f_rate = fresh.get(key, {}).get("sim_ms_per_wall_s")
        b_rate = base.get(key, {}).get("sim_ms_per_wall_s")
        if f_rate and b_rate:
            print(f"  {key}: {f_rate:.3g} vs baseline {b_rate:.3g} "
                  f"sim-ms/wall-s ({f_rate / b_rate:.2f}x, informational)")

    if warnings:
        print(f"compare_bench: {warnings} warning(s) - noisy-runner "
              "variance or a real regression; check locally")
    if failures:
        return 1
    print("compare_bench: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
