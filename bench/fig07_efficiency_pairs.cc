/**
 * @file
 * Figure 7 reproduction: concurrency efficiency (sum over tasks of
 * solo/co-run round times) for the Figure 6 application pairs.
 */

#include "common.hh"

#include "metrics/efficiency.hh"

using namespace neonbench;

int
main()
{
    banner("Figure 7", "efficiency of concurrent executions");

    SoloCache solo(2.5);
    const std::vector<std::string> apps = {"DCT", "FFT", "glxgears",
                                           "oclParticles"};
    const std::vector<double> sizes_us = {19, 106, 430, 1700};

    for (const auto &app : apps) {
        std::cout << app << " vs Throttle — concurrency efficiency\n";
        Table table({"scheduler", "19us", "106us", "430us", "1700us"});

        for (SchedKind kind : paperSchedulers) {
            std::vector<std::string> row = {schedKindName(kind)};
            for (double us : sizes_us) {
                const WorkloadSpec wa = WorkloadSpec::app(app);
                const WorkloadSpec wt =
                    WorkloadSpec::throttle(usec(us));

                ExperimentRunner runner(baseConfig(kind, 2.5));
                const RunResult r = runner.run({wa, wt});

                const double eff = concurrencyEfficiency(
                    {solo.roundUs(wa), solo.roundUs(wt)},
                    {r.tasks[0].meanRoundUs, r.tasks[1].meanRoundUs});
                row.push_back(Table::num(eff, 2));
            }
            table.addRow(std::move(row));
        }
        table.print();
        std::cout << "\n";
    }

    std::cout << "Paper shape: direct access sits near 1.0 (below for "
                 "small requests due to\ncontext switching); engaged "
                 "Timeslice loses ~19% on average, Disengaged\n"
                 "Timeslice ~10%, Disengaged Fair Queueing ~4% (worst "
                 "case on the multi-channel\noclParticles pair)."
              << std::endl;
    return 0;
}
