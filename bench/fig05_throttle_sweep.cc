/**
 * @file
 * Figure 5 reproduction: standalone Throttle slowdown across request
 * sizes under each policy, relative to direct access.
 */

#include "common.hh"

using namespace neonbench;

int
main()
{
    banner("Figure 5",
           "standalone Throttle slowdown across request sizes");

    SoloCache solo(2.0);
    const std::vector<SchedKind> scheds = {
        SchedKind::Timeslice, SchedKind::DisengagedTimeslice,
        SchedKind::DisengagedFq};

    Table table({"request size (us)", "timeslice", "disengaged-ts",
                 "disengaged-fq"});

    for (double us : {19.0, 38.0, 106.0, 215.0, 430.0, 860.0, 1700.0}) {
        const WorkloadSpec w = WorkloadSpec::throttle(usec(us));
        const double base = solo.roundUs(w);

        std::vector<std::string> row = {Table::num(us, 0)};
        for (SchedKind kind : scheds) {
            ExperimentRunner runner(baseConfig(kind, 2.0));
            const double round = runner.run({w}).tasks.at(0).meanRoundUs;
            row.push_back(
                Table::num(100.0 * (round / base - 1.0), 1) + "%");
        }
        table.addRow(std::move(row));
    }

    table.print();
    std::cout << "\nPaper shape: engaged Timeslice costs grow sharply "
                 "as requests shrink;\nDisengaged Timeslice stays under "
                 "~2% and Disengaged Fair Queueing under ~5%\nat every "
                 "size." << std::endl;
    return 0;
}
