/**
 * @file
 * Machine-readable performance report for the simulation core.
 *
 * Runs the event-core microbenchmark cases (schedule/run,
 * schedule/cancel churn, fleet-scale interleave) plus an end-to-end
 * Disengaged Fair Queueing experiment, and writes a BENCH_simcore.json
 * with events/sec, simulated-ms per wall-second, and peak live event
 * counts. Subsequent PRs regress against this trajectory; the CI
 * perf-smoke job fails the build if throughput drops below a floor.
 *
 * Deliberately self-contained (std::chrono, no google-benchmark) so it
 * builds and runs everywhere the library does.
 *
 * Usage: bench_perf_report [--out PATH] [--floor EVENTS_PER_SEC]
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "neon/neon.hh"
#include "simcore_cases.hh"

namespace
{

using namespace neon;

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** Outcome of one timed case. */
struct CaseResult
{
    std::uint64_t items = 0;  ///< events (or ops) executed
    double wallS = 0.0;
    double itemsPerSec = 0.0;
    std::size_t peakLive = 0;
    std::uint64_t compactions = 0;
};

/** Time repeated batches of @p batch until ~minS wall seconds pass. */
template <typename Batch>
CaseResult
timeCase(double min_s, Batch &&batch)
{
    CaseResult r;
    const auto t0 = Clock::now();
    do {
        EventQueue eq;
        r.items += batch(eq);
        const auto st = eq.stats();
        r.peakLive = std::max(r.peakLive, st.peakLive);
        r.compactions += st.compactions;
    } while (secondsSince(t0) < min_s);
    r.wallS = secondsSince(t0);
    r.itemsPerSec = static_cast<double>(r.items) / r.wallS;
    return r;
}

/** End-to-end: a busy two-task world under Disengaged Fair Queueing. */
struct EndToEnd
{
    double simMs = 0.0;
    double wallS = 0.0;  ///< measured run interval only
    double setupS = 0.0; ///< world construction + start (excluded)
    double simMsPerWallS = 0.0;
    std::uint64_t events = 0;
    std::size_t peakLive = 0;
};

/** End-to-end serving: open Poisson load over a 4-device DFQ fleet. */
struct EndToEndServe
{
    double simMs = 0.0;
    double wallS = 0.0;  ///< measured run interval only
    double setupS = 0.0; ///< construction/start incl. thread spawn
    double simMsPerWallS = 0.0;
    double sessionsPerWallS = 0.0;
    std::uint64_t sessions = 0;
    std::uint64_t migrations = 0;
    std::uint64_t events = 0;
};

EndToEndServe
endToEndServe()
{
    ExperimentConfig cfg;
    cfg.sched = SchedKind::DisengagedFq;
    cfg.fleet.devices = 4;
    cfg.fleet.speedFactors = {1.25, 1.0, 1.0, 0.75};
    cfg.serve.slotsPerDevice = 2;
    cfg.serve.useGlobalClock = true;
    cfg.serve.clockPeriod = msec(10);
    cfg.serve.migrationLag = msec(10);
    cfg.measure = sec(2);

    WorkloadSpec w = WorkloadSpec::throttle(usec(430));
    w.label = "open";
    const ServeWorkloadSpec spec{w, ArrivalSpec::poisson(80.0, sec(1)),
                                 LifetimeSpec::fixed(msec(200))};

    // Setup (world assembly, kernel start, shard-thread spawn) is
    // timed separately so the measured interval is pure simulation.
    EndToEndServe r;
    const auto c0 = Clock::now();
    ServeWorld world(cfg, {spec});
    world.start();
    r.setupS = secondsSince(c0);

    const auto t0 = Clock::now();
    world.runFor(cfg.measure);
    r.wallS = secondsSince(t0);
    const ServeRunResult res = world.results();

    r.simMs = toMsec(cfg.measure);
    r.simMsPerWallS = r.simMs / r.wallS;
    r.sessions = res.departures;
    r.sessionsPerWallS = static_cast<double>(res.departures) / r.wallS;
    r.migrations = res.migrations;
    r.events = world.eventsExecuted();

    if (res.departures == 0 || res.queuedAtEnd != 0) {
        std::cerr << "perf_report: serving run did not drain\n";
        std::exit(2);
    }
    return r;
}

EndToEnd
endToEndDfq()
{
    ExperimentConfig cfg;
    cfg.sched = SchedKind::DisengagedFq;
    cfg.warmup = msec(50);
    cfg.measure = msec(500);

    EndToEnd r;
    const auto c0 = Clock::now();
    World w(cfg);
    w.spawn(WorkloadSpec::app("DCT"));
    w.spawn(WorkloadSpec::throttle(usec(430)));
    w.start();
    r.setupS = secondsSince(c0);

    const auto t0 = Clock::now();
    w.runFor(cfg.warmup);
    w.beginMeasurement();
    w.runFor(cfg.measure);
    r.wallS = secondsSince(t0);
    const RunResult res = w.results();

    r.simMs = toMsec(cfg.warmup + cfg.measure);
    r.simMsPerWallS = r.simMs / r.wallS;
    r.events = w.eq.executed();
    r.peakLive = w.eq.stats().peakLive;

    if (res.deviceBusy <= 0) {
        std::cerr << "perf_report: end-to-end run did no device work\n";
        std::exit(2);
    }
    return r;
}

/** One point of the shard-count scaling sweep. */
struct ScalePoint
{
    unsigned shards = 0;
    unsigned threads = 0;  ///< workers actually spawned
    double wallS = 0.0;    ///< measured run interval only
    double setupS = 0.0;   ///< construction/start incl. thread spawn
    double spawnS = 0.0;   ///< thread-spawn component of setup
    std::uint64_t events = 0;
    std::uint64_t windows = 0;
    std::uint64_t mailboxMsgs = 0;
    double eventsPerSec = 0.0;
    double speedup = 1.0; ///< aggregate events/s vs. the 1-shard point
};

/**
 * Shard-count scaling sweep: the same 64-device open-system workload
 * at 1/2/4/8 shards. Only the runFor interval is measured — world
 * assembly, kernel start, and worker-pool spawn/join land in setup_s —
 * and the JSON records hardware_concurrency so numbers are comparable
 * across machines (on a single-core host the sweep measures windowing
 * overhead, not parallel speedup).
 */
std::vector<ScalePoint>
scaleSweep()
{
    std::vector<ScalePoint> pts;
    for (unsigned shards : {1u, 2u, 4u, 8u}) {
        ExperimentConfig cfg;
        cfg.sched = SchedKind::DisengagedFq;
        cfg.fleet.devices = 64;
        cfg.serve.slotsPerDevice = 2;
        cfg.serve.useGlobalClock = true;
        cfg.serve.clockPeriod = msec(10);
        cfg.measure = sec(1);
        cfg.shards.count = shards;

        WorkloadSpec w = WorkloadSpec::throttle(usec(430));
        w.label = "scale";
        const ServeWorkloadSpec spec{
            w, ArrivalSpec::poisson(400.0, msec(700)),
            LifetimeSpec::fixed(msec(200))};

        ScalePoint p;
        p.shards = shards;
        const auto c0 = Clock::now();
        ServeWorld world(cfg, {spec});
        world.start();
        p.setupS = secondsSince(c0);
        p.threads = world.shardCore.threadCount();
        p.spawnS = world.shardCore.setupSeconds();

        const auto t0 = Clock::now();
        world.runFor(cfg.measure);
        p.wallS = secondsSince(t0);

        p.events = world.eventsExecuted();
        p.windows = world.shardCore.windowsRun();
        p.mailboxMsgs = world.shardCore.mailboxMessages();
        p.eventsPerSec = static_cast<double>(p.events) / p.wallS;
        p.speedup =
            pts.empty() ? 1.0 : p.eventsPerSec / pts.front().eventsPerSec;

        const ServeRunResult res = world.results();
        if (res.departures == 0) {
            std::cerr << "perf_report: scale_sweep shards=" << shards
                      << " served no sessions\n";
            std::exit(2);
        }
        pts.push_back(p);
    }
    return pts;
}

void
emitCase(std::ostream &os, const char *name, const CaseResult &r,
         bool last = false)
{
    os << "    \"" << name << "\": {\n"
       << "      \"items\": " << r.items << ",\n"
       << "      \"wall_s\": " << r.wallS << ",\n"
       << "      \"events_per_sec\": " << r.itemsPerSec << ",\n"
       << "      \"peak_live_events\": " << r.peakLive << ",\n"
       << "      \"compactions\": " << r.compactions << "\n"
       << "    }" << (last ? "\n" : ",\n");
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out = "BENCH_simcore.json";
    double floor_eps = 0.0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--out" && i + 1 < argc) {
            out = argv[++i];
        } else if (arg == "--floor" && i + 1 < argc) {
            floor_eps = std::atof(argv[++i]);
        } else {
            std::cerr << "usage: " << argv[0]
                      << " [--out PATH] [--floor EVENTS_PER_SEC]\n";
            return 2;
        }
    }

    // Same workloads as the google-benchmark cases (shared via
    // simcore_cases.hh), at a larger batch size.
    constexpr double minS = 0.5;
    constexpr int batchN = 4096;
    std::cerr << "running schedule_run...\n";
    const CaseResult schedule_run = timeCase(minS, [](EventQueue &eq) {
        return neonbench::scheduleRunBatch(eq, batchN);
    });
    std::cerr << "running schedule_cancel_churn...\n";
    const CaseResult churn = timeCase(minS, [](EventQueue &eq) {
        return neonbench::scheduleCancelChurnBatch(eq, batchN);
    });
    std::cerr << "running fleet_interleave...\n";
    const CaseResult fleet = timeCase(minS, [](EventQueue &eq) {
        return neonbench::fleetInterleaveBatch(eq, 512);
    });
    std::cerr << "running open_system_churn...\n";
    const CaseResult churn_serve = timeCase(minS, [](EventQueue &eq) {
        return neonbench::openSystemChurnBatch(eq, batchN);
    });
    std::cerr << "running open_system_faulty...\n";
    const CaseResult faulty = timeCase(minS, [](EventQueue &eq) {
        return neonbench::openSystemFaultyBatch(eq, batchN);
    });
    std::cerr << "running open_system_shed...\n";
    const CaseResult shed = timeCase(minS, [](EventQueue &eq) {
        return neonbench::openSystemShedBatch(eq, batchN);
    });
    // Same workload with per-event SimCore tracing live, so the report
    // tracks what switching the trace plane on costs the hot loop. The
    // CI floor applies to the untraced case only.
    std::cerr << "running open_system_churn (tracing on)...\n";
    obs::TraceRecorder trace_ring(std::size_t(1) << 16);
    const CaseResult churn_traced = timeCase(minS, [&](EventQueue &eq) {
        obs::setTraceSink(
            &trace_ring,
            static_cast<std::uint32_t>(obs::TraceCategory::SimCore), &eq);
        return neonbench::openSystemChurnBatch(eq, batchN);
    });
    obs::setTraceSink(nullptr, 0);
    if (trace_ring.written() == 0) {
        std::cerr << "perf_report: traced churn recorded nothing\n";
        return 2;
    }
    // Same workload with the audit plane's per-event invariant checks
    // live, so the report tracks what the always-on auditor costs the
    // hot loop. The CI floor applies to the unaudited case only.
    std::cerr << "running open_system_churn (audit on)...\n";
    obs::AuditLog audit_log;
    const CaseResult churn_audited = timeCase(minS, [&](EventQueue &eq) {
        return neonbench::openSystemChurnAuditedBatch(eq, batchN,
                                                      audit_log);
    });
    if (audit_log.checks() == 0 || audit_log.violations() != 0) {
        std::cerr << "perf_report: audited churn checks="
                  << audit_log.checks() << " violations="
                  << audit_log.violations() << "\n";
        return 2;
    }
    std::cerr << "running end_to_end_dfq...\n";
    const EndToEnd e2e = endToEndDfq();
    std::cerr << "running end_to_end_serve...\n";
    const EndToEndServe serve = endToEndServe();
    std::cerr << "running scale_sweep...\n";
    const std::vector<ScalePoint> sweep = scaleSweep();

    std::ofstream os(out);
    if (!os) {
        std::cerr << "perf_report: cannot write " << out << "\n";
        return 2;
    }
    os << "{\n"
       << "  \"schema\": \"neon-simcore-bench-v1\",\n"
       << "  \"host\": {\n"
       << "    \"hardware_concurrency\": "
       << std::thread::hardware_concurrency() << "\n"
       << "  },\n"
       << "  \"cases\": {\n";
    emitCase(os, "schedule_run", schedule_run);
    emitCase(os, "schedule_cancel_churn", churn);
    emitCase(os, "fleet_interleave", fleet);
    emitCase(os, "open_system_churn", churn_serve);
    emitCase(os, "open_system_faulty", faulty);
    emitCase(os, "open_system_shed", shed);
    emitCase(os, "open_system_churn_traced", churn_traced);
    emitCase(os, "open_system_churn_audited", churn_audited,
             /*last=*/true);
    os << "  },\n"
       << "  \"end_to_end_dfq\": {\n"
       << "    \"sim_ms\": " << e2e.simMs << ",\n"
       << "    \"wall_s\": " << e2e.wallS << ",\n"
       << "    \"setup_s\": " << e2e.setupS << ",\n"
       << "    \"sim_ms_per_wall_s\": " << e2e.simMsPerWallS << ",\n"
       << "    \"events_executed\": " << e2e.events << ",\n"
       << "    \"peak_live_events\": " << e2e.peakLive << "\n"
       << "  },\n"
       << "  \"end_to_end_serve\": {\n"
       << "    \"sim_ms\": " << serve.simMs << ",\n"
       << "    \"wall_s\": " << serve.wallS << ",\n"
       << "    \"setup_s\": " << serve.setupS << ",\n"
       << "    \"sim_ms_per_wall_s\": " << serve.simMsPerWallS << ",\n"
       << "    \"sessions_served\": " << serve.sessions << ",\n"
       << "    \"sessions_per_wall_s\": " << serve.sessionsPerWallS
       << ",\n"
       << "    \"migrations\": " << serve.migrations << ",\n"
       << "    \"events_executed\": " << serve.events << "\n"
       << "  },\n"
       << "  \"scale_sweep\": [\n";
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        const ScalePoint &p = sweep[i];
        os << "    {\n"
           << "      \"shards\": " << p.shards << ",\n"
           << "      \"threads\": " << p.threads << ",\n"
           << "      \"wall_s\": " << p.wallS << ",\n"
           << "      \"setup_s\": " << p.setupS << ",\n"
           << "      \"thread_spawn_s\": " << p.spawnS << ",\n"
           << "      \"events_executed\": " << p.events << ",\n"
           << "      \"windows\": " << p.windows << ",\n"
           << "      \"mailbox_messages\": " << p.mailboxMsgs << ",\n"
           << "      \"events_per_sec\": " << p.eventsPerSec << ",\n"
           << "      \"speedup_vs_1_shard\": " << p.speedup << "\n"
           << "    }" << (i + 1 < sweep.size() ? ",\n" : "\n");
    }
    os << "  ],\n"
       << "  \"floor_events_per_sec\": " << floor_eps << "\n"
       << "}\n";
    os.close();

    std::cout << "schedule_run:          " << schedule_run.itemsPerSec
              << " events/s\n"
              << "schedule_cancel_churn: " << churn.itemsPerSec
              << " ops/s (" << churn.compactions << " compactions)\n"
              << "fleet_interleave:      " << fleet.itemsPerSec
              << " events/s\n"
              << "open_system_churn:     " << churn_serve.itemsPerSec
              << " events/s\n"
              << "open_system_faulty:    " << faulty.itemsPerSec
              << " events/s\n"
              << "open_system_shed:      " << shed.itemsPerSec
              << " events/s\n"
              << "  ... tracing on:      " << churn_traced.itemsPerSec
              << " events/s (" << trace_ring.dropped() << " dropped)\n"
              << "  ... audit on:        " << churn_audited.itemsPerSec
              << " events/s (" << audit_log.checks() << " checks)\n"
              << "end_to_end_dfq:        " << e2e.simMsPerWallS
              << " sim-ms/wall-s\n"
              << "end_to_end_serve:      " << serve.simMsPerWallS
              << " sim-ms/wall-s (" << serve.sessions << " sessions, "
              << serve.migrations << " migrations)\n";
    for (const ScalePoint &p : sweep)
        std::cout << "scale_sweep shards=" << p.shards << " threads="
                  << p.threads << ": " << p.eventsPerSec << " events/s ("
                  << p.speedup << "x vs 1 shard, setup " << p.setupS
                  << " s)\n";
    std::cout << "wrote " << out << "\n";

    // The floor guards the raw event core and the serving-layer event
    // shape alike: both are pure EventQueue workloads, so an
    // order-of-magnitude regression in either fails the build.
    if (floor_eps > 0.0 && schedule_run.itemsPerSec < floor_eps) {
        std::cerr << "perf_report: schedule_run "
                  << schedule_run.itemsPerSec
                  << " events/s is below the floor of " << floor_eps
                  << "\n";
        return 1;
    }
    if (floor_eps > 0.0 && churn_serve.itemsPerSec < floor_eps) {
        std::cerr << "perf_report: open_system_churn "
                  << churn_serve.itemsPerSec
                  << " events/s is below the floor of " << floor_eps
                  << "\n";
        return 1;
    }
    // The control-plane front door (token bucket + shed prediction on
    // every arrival) rides under the same floor: admission control
    // must stay a per-arrival constant, not an event-core regression.
    if (floor_eps > 0.0 && shed.itemsPerSec < floor_eps) {
        std::cerr << "perf_report: open_system_shed "
                  << shed.itemsPerSec
                  << " events/s is below the floor of " << floor_eps
                  << "\n";
        return 1;
    }
    return 0;
}
