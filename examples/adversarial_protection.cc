/**
 * @file
 * Protection demo: a well-behaved application shares the device with
 * (a) a kernel that never terminates and (b) a greedy batcher. Under
 * direct access the victim starves; under the NEON schedulers the
 * infinite kernel's task is killed and the batcher is contained.
 */

#include <iostream>

#include "neon/neon.hh"

int
main()
{
    using namespace neon;

    std::cout << "Scenario A: victim vs an infinite-loop kernel\n\n";
    {
        Table table({"scheduler", "kills", "attacker fate",
                     "victim rounds (2s)"});
        for (SchedKind kind :
             {SchedKind::Direct, SchedKind::Timeslice,
              SchedKind::DisengagedTimeslice, SchedKind::DisengagedFq}) {
            ExperimentConfig cfg;
            cfg.sched = kind;
            cfg.measure = sec(2);
            cfg.timeslice.killThreshold = msec(100);
            cfg.dfq.killThreshold = msec(100);
            ExperimentRunner runner(cfg);

            const RunResult r = runner.run({
                WorkloadSpec::custom(
                    "attacker",
                    [](Task &t, std::uint64_t) {
                        return infiniteKernelBody(t, 5, usec(100));
                    }),
                WorkloadSpec::throttle(usec(100)),
            });

            table.addRow({schedKindName(kind),
                          std::to_string(r.kills),
                          r.tasks[0].killed ? "killed" : "running",
                          std::to_string(r.tasks[1].rounds)});
        }
        table.print();
    }

    std::cout << "\nScenario B: FFT vs a batching hog (8ms requests)\n\n";
    {
        Table table({"scheduler", "FFT slowdown", "hog slowdown"});
        for (SchedKind kind :
             {SchedKind::Direct, SchedKind::DisengagedTimeslice,
              SchedKind::DisengagedFq}) {
            ExperimentConfig cfg;
            cfg.sched = kind;
            cfg.measure = sec(3);
            ExperimentRunner runner(cfg);

            const auto sd = runner.slowdowns({
                WorkloadSpec::app("FFT"),
                WorkloadSpec::custom("hog",
                                     [](Task &t, std::uint64_t) {
                                         return batchingHogBody(
                                             t, msec(8));
                                     }),
            });
            table.addRow({schedKindName(kind),
                          Table::num(sd[0], 2) + "x",
                          Table::num(sd[1], 2) + "x"});
        }
        table.print();
    }

    std::cout << "\nWithout OS management a single misbehaving task "
                 "owns the accelerator;\nwith it, the offender is "
                 "killed or confined to its fair share.\n";
    return 0;
}
