/**
 * @file
 * Section 6.3 demo: channel-exhaustion denial of service, and the
 * protected allocation policy that stops it.
 */

#include <iostream>

#include "neon/neon.hh"

namespace
{

using namespace neon;

void
runScenario(bool protect)
{
    ExperimentConfig cfg;
    cfg.channelPolicy.protect = protect;
    cfg.channelPolicy.perTaskLimit = 8;

    World world(cfg);
    DosOutcome attacker, victim;
    world.spawn(WorkloadSpec::custom(
        "attacker", [&attacker](Task &t, std::uint64_t) {
            return channelDosBody(t, &attacker);
        }));
    world.spawn(WorkloadSpec::custom(
        "victim", [&victim](Task &t, std::uint64_t) {
            return dosVictimBody(t, &victim, usec(100), msec(20));
        }));
    world.start();
    world.runFor(msec(200));

    std::cout << (protect ? "WITH" : "WITHOUT")
              << " the protected allocation policy:\n"
              << "  attacker created " << attacker.contextsCreated
              << " contexts / " << attacker.channelsCreated
              << " channels before being stopped\n"
              << "  device channels in use: "
              << world.device.channelsInUse() << " of "
              << world.device.config().maxChannels << "\n"
              << "  victim " << (victim.channelsCreated > 0
                                     ? "got its channel and is running"
                                     : "was LOCKED OUT of the GPU")
              << "\n\n";
}

} // namespace

int
main()
{
    std::cout << "Channel-exhaustion DoS (paper Section 6.3): the "
                 "attacker opens context\nafter context, each with one "
                 "compute and one DMA channel.\n\n";
    runScenario(false);
    runScenario(true);
    std::cout << "Policy: at most C channels per task and D/C "
                 "concurrent GPU users,\nwhere D is the device's "
                 "channel count.\n";
    return 0;
}
