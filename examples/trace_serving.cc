/**
 * @file
 * Traced open-system serving run: the open_serving oversubscription
 * scenario with the observability plane switched on.
 *
 * Four DFQ devices (one fast, one slow) take a ~3x-oversubscribed
 * Poisson session stream while the trace plane records scheduler
 * engage/disengage spans, kernel doorbell decisions, fleet
 * migrations, and serve-layer session lifecycles, and the metrics
 * registry samples queue depths and virtual-time lag each simulated
 * millisecond. Outputs:
 *
 *   trace.json    - Chrome trace-event timeline; open in Perfetto
 *                   (ui.perfetto.dev) or chrome://tracing
 *   counters.csv  - sampled metric time series
 *
 * Usage: trace_serving [trace.json [counters.csv]]
 * Set NEON_VERBOSE=1 for kernel status output during the run.
 */

#include <iostream>

#include "neon/neon.hh"

using namespace neon;

int
main(int argc, char **argv)
{
    applyVerboseEnv();

    ExperimentConfig cfg;
    cfg.sched = SchedKind::DisengagedFq;
    cfg.fleet.devices = 4;
    cfg.fleet.speedFactors = {1.25, 1.0, 1.0, 0.75};
    cfg.serve.admission = AdmissionKind::FairShare;
    cfg.serve.slotsPerDevice = 2;
    cfg.serve.useGlobalClock = true;
    cfg.serve.clockPeriod = msec(10);
    cfg.serve.migrationLag = msec(10);
    cfg.measure = sec(4);

    cfg.observe.categories = obs::defaultTraceCategories;
    cfg.observe.bufferCapacity = std::size_t(1) << 18;
    cfg.observe.samplePeriod = msec(1);
    cfg.observe.tracePath = argc > 1 ? argv[1] : "trace.json";
    cfg.observe.countersCsvPath = argc > 2 ? argv[2] : "counters.csv";

    WorkloadSpec small = WorkloadSpec::throttle(usec(100));
    small.label = "interactive";
    small.withDemand(0.5);
    WorkloadSpec big = WorkloadSpec::throttle(usec(1700));
    big.label = "batch";
    big.withDemand(2.0);

    const std::vector<ServeWorkloadSpec> classes = {
        {small, ArrivalSpec::poisson(75.0, sec(1.2)),
         LifetimeSpec::exponential(msec(200)), "interactive"},
        {big, ArrivalSpec::poisson(25.0, sec(1.2)),
         LifetimeSpec::exponential(msec(300)), "batch"},
    };

    ServeRunner runner(cfg);
    const ServeRunResult r = runner.run(classes, /*with_slowdowns=*/false);

    std::cout << "wrote " << cfg.observe.tracePath << " and "
              << cfg.observe.countersCsvPath << ": " << r.observeSummary
              << " (" << r.arrivals << " arrivals, " << r.migrations
              << " migrations)\n";
    return 0;
}
