/**
 * @file
 * Traced open-system serving run: the open_serving oversubscription
 * scenario with the observability plane switched on.
 *
 * Four DFQ devices (one fast, one slow) take a ~3x-oversubscribed
 * Poisson session stream while the trace plane records scheduler
 * engage/disengage spans, kernel doorbell decisions, fleet
 * migrations, and serve-layer session lifecycles, and the metrics
 * registry samples queue depths and virtual-time lag each simulated
 * millisecond. Outputs:
 *
 *   trace.json    - Chrome trace-event timeline; open in Perfetto
 *                   (ui.perfetto.dev) or chrome://tracing
 *   counters.csv  - sampled metric time series
 *   records.jsonl - raw trace records (bench_trace_analyze input)
 *
 * The ring is sized so the capture is exact; the example exits
 * nonzero if any record was dropped, so the exported files can be
 * trusted for post-hoc analysis.
 *
 * Usage: trace_serving [trace.json [counters.csv [records.jsonl]]]
 * Set NEON_VERBOSE=1 for kernel status output during the run.
 */

#include <iostream>

#include "neon/neon.hh"

using namespace neon;

int
main(int argc, char **argv)
{
    applyVerboseEnv();

    ExperimentConfig cfg;
    cfg.sched = SchedKind::DisengagedFq;
    cfg.fleet.devices = 4;
    cfg.fleet.speedFactors = {1.25, 1.0, 1.0, 0.75};
    cfg.serve.admission = AdmissionKind::FairShare;
    cfg.serve.slotsPerDevice = 2;
    cfg.serve.useGlobalClock = true;
    cfg.serve.clockPeriod = msec(10);
    cfg.serve.migrationLag = msec(10);
    cfg.measure = sec(4);

    cfg.observe.categories = obs::defaultTraceCategories;
    cfg.observe.bufferCapacity = std::size_t(1) << 20; // exact capture
    cfg.observe.samplePeriod = msec(1);
    cfg.observe.tracePath = argc > 1 ? argv[1] : "trace.json";
    cfg.observe.countersCsvPath = argc > 2 ? argv[2] : "counters.csv";
    cfg.observe.recordsJsonlPath = argc > 3 ? argv[3] : "records.jsonl";

    WorkloadSpec small = WorkloadSpec::throttle(usec(100));
    small.label = "interactive";
    small.withDemand(0.5);
    WorkloadSpec big = WorkloadSpec::throttle(usec(1700));
    big.label = "batch";
    big.withDemand(2.0);

    const std::vector<ServeWorkloadSpec> classes = {
        {small, ArrivalSpec::poisson(75.0, sec(1.2)),
         LifetimeSpec::exponential(msec(200)), "interactive"},
        {big, ArrivalSpec::poisson(25.0, sec(1.2)),
         LifetimeSpec::exponential(msec(300)), "batch"},
    };

    ServeRunner runner(cfg);
    const ServeRunResult r = runner.run(classes, /*with_slowdowns=*/false);

    std::cout << "wrote " << cfg.observe.tracePath << ", "
              << cfg.observe.countersCsvPath << ", and "
              << cfg.observe.recordsJsonlPath << ": " << r.observeSummary
              << " (" << r.arrivals << " arrivals, " << r.migrations
              << " migrations)\n";
    std::cout << r.audit.summary() << "\n";
    if (r.traceDrops > 0) {
        std::cout << "ERROR: " << r.traceDrops
                  << " trace records dropped - the capture is not "
                     "exact; grow observe.bufferCapacity\n";
        return 1;
    }
    if (!r.audit.clean())
        return 1;
    return 0;
}
