/**
 * @file
 * Open-system serving over a heterogeneous fleet.
 *
 * Four DFQ devices (one fast, one slow) take an open Poisson stream
 * of finite-lifetime sessions that oversubscribes the fleet's eight
 * admission slots by ~3x during a 1.2 s arrival window. Shows, per
 * admission policy, what the serving layer reports once the queue
 * drains: queueing-delay percentiles, sojourn times, slowdown vs the
 * isolated baseline, cross-device fairness over speed-normalized
 * service, and how many sessions the global virtual clock migrated
 * off lagging devices.
 */

#include <iostream>

#include "neon/neon.hh"

using namespace neon;

int
main()
{
    const std::vector<AdmissionKind> policies = {
        AdmissionKind::Fifo,
        AdmissionKind::ShortestDemand,
        AdmissionKind::FairShare,
    };

    for (AdmissionKind admission : policies) {
        ExperimentConfig cfg;
        cfg.sched = SchedKind::DisengagedFq;
        cfg.fleet.devices = 4;
        cfg.fleet.speedFactors = {1.25, 1.0, 1.0, 0.75};
        cfg.serve.admission = admission;
        cfg.serve.slotsPerDevice = 2;
        cfg.serve.useGlobalClock = true;
        cfg.serve.clockPeriod = msec(10);
        cfg.serve.migrationLag = msec(10);
        cfg.measure = sec(4);

        // Two tenants: interactive small-kernel sessions and batch
        // heavy-kernel sessions, 3:1 by offered rate.
        WorkloadSpec small = WorkloadSpec::throttle(usec(100));
        small.label = "interactive";
        small.withDemand(0.5);
        WorkloadSpec big = WorkloadSpec::throttle(usec(1700));
        big.label = "batch";
        big.withDemand(2.0);

        const std::vector<ServeWorkloadSpec> classes = {
            {small, ArrivalSpec::poisson(75.0, sec(1.2)),
             LifetimeSpec::exponential(msec(200)), "interactive"},
            {big, ArrivalSpec::poisson(25.0, sec(1.2)),
             LifetimeSpec::exponential(msec(300)), "batch"},
        };

        ServeRunner runner(cfg);
        const ServeRunResult r = runner.run(classes);

        std::cout << "=== admission: " << admissionKindName(admission)
                  << " ===\n"
                  << "  arrivals " << r.arrivals << ", departed "
                  << r.departures << ", killed " << r.kills
                  << ", still queued " << r.queuedAtEnd << "\n"
                  << "  peak in-system " << r.peakLiveSessions
                  << " sessions vs capacity " << r.capacity
                  << " (peak queue " << r.peakQueueDepth << ")\n"
                  << "  queue delay ms  p50 " << r.slo.queueDelayMs.p50
                  << "  p95 " << r.slo.queueDelayMs.p95 << "  max "
                  << r.slo.queueDelayMs.max << "\n"
                  << "  sojourn ms      p50 " << r.slo.sojournMs.p50
                  << "  p95 " << r.slo.sojournMs.p95 << "\n"
                  << "  slowdown        p50 " << r.slo.slowdown.p50
                  << "  p95 " << r.slo.slowdown.p95 << "\n"
                  << "  service fairness " << r.serviceFairness
                  << ", device balance " << r.deviceBalance << "\n"
                  << "  migrations " << r.migrations
                  << ", throughput " << r.throughputRps << " req/s\n\n";
    }
    return 0;
}
