/**
 * @file
 * Serving under fire: an oversubscribed open system with a seeded
 * fault plan and watchdog protection.
 *
 * Four DFQ devices take a ~2.5x-oversubscribed Poisson session stream
 * while the fault plane injects a scripted mid-run device death (with
 * repair), stochastic transient stalls, and channel hangs. The
 * per-device watchdog detects each hang by doorbell-progress timeout
 * and kills the offender; sessions interrupted by the death fail over
 * to the surviving devices through admission retry with exponential
 * backoff. The run prints the availability report: injected vs.
 * detected vs. recovered, MTTD/MTTR, and goodput under faults.
 *
 * Usage: faulty_serving [trace.json]
 * Set NEON_VERBOSE=1 for kernel status output during the run.
 */

#include <cstdio>
#include <iostream>

#include "neon/neon.hh"

using namespace neon;

int
main(int argc, char **argv)
{
    applyVerboseEnv();

    ExperimentConfig cfg;
    cfg.sched = SchedKind::DisengagedFq;
    cfg.fleet.devices = 4;
    cfg.serve.admission = AdmissionKind::FairShare;
    cfg.serve.slotsPerDevice = 2;
    cfg.serve.useGlobalClock = true;
    cfg.serve.clockPeriod = msec(10);
    cfg.serve.migrationLag = msec(25);
    cfg.serve.retry.maxRetries = 5;
    cfg.measure = sec(3);

    // Watchdog on every device: scan each 2ms, hang after 30ms of no
    // doorbell progress, runaway after 120ms of one request.
    cfg.fault.watchdog.enabled = true;
    cfg.fault.watchdog.checkPeriod = msec(2);
    cfg.fault.watchdog.hangTimeout = msec(30);
    cfg.fault.watchdog.runawayTimeout = msec(120);

    // A scripted mid-run death of device 1 (repaired 400ms later) on
    // top of stochastic stalls and channel hangs.
    cfg.fault.plan.script = {
        {sec(1), FaultKind::DeviceDeath, 1, msec(400)},
    };
    cfg.fault.plan.enabled = true;
    cfg.fault.plan.horizon = cfg.measure;
    cfg.fault.plan.stallRatePerSec = 1.0;
    cfg.fault.plan.meanStall = msec(10);
    cfg.fault.plan.hangRatePerSec = 1.0;

    if (argc > 1) {
        cfg.observe.categories = obs::defaultTraceCategories;
        cfg.observe.bufferCapacity = std::size_t(1) << 18;
        cfg.observe.tracePath = argv[1];
    }

    WorkloadSpec w = WorkloadSpec::throttle(usec(300));
    w.label = "session";
    const std::vector<ServeWorkloadSpec> classes = {
        {w, ArrivalSpec::poisson(60.0, sec(2)),
         LifetimeSpec::exponential(msec(250)), "tenantA"},
    };

    ServeRunner runner(cfg);
    const ServeRunResult r = runner.run(classes, /*with_slowdowns=*/false);
    const AvailabilityReport &f = r.fault;

    std::printf("arrivals %llu, departures %llu, goodput %.0f req/s\n",
                static_cast<unsigned long long>(r.arrivals),
                static_cast<unsigned long long>(r.departures),
                r.throughputRps);
    std::printf("injected: %llu deaths, %llu stalls, %llu hangs "
                "(%llu skipped)\n",
                static_cast<unsigned long long>(f.injectedDeaths),
                static_cast<unsigned long long>(f.injectedStalls),
                static_cast<unsigned long long>(f.injectedHangs),
                static_cast<unsigned long long>(f.skippedInjections));
    std::printf("watchdog: %llu hang kills (%llu of the injected, "
                "MTTD %.2f ms), %llu runaway kills\n",
                static_cast<unsigned long long>(f.watchdogHangKills),
                static_cast<unsigned long long>(f.detectedHangs),
                f.mttdMs,
                static_cast<unsigned long long>(f.watchdogRunawayKills));
    std::printf("failover: %llu evicted, %llu recovered, %llu shed "
                "(recovery %.0f%%), MTTR %.1f ms, availability %.4f\n",
                static_cast<unsigned long long>(f.evictedSessions),
                static_cast<unsigned long long>(f.recoveredSessions),
                static_cast<unsigned long long>(f.shedSessions),
                100.0 * r.recoveryRate, f.mttrMs, f.availability);
    if (!r.observeSummary.empty())
        std::cout << "wrote " << cfg.observe.tracePath << ": "
                  << r.observeSummary << "\n";
    std::cout << r.audit.summary() << "\n";
    return r.audit.clean() ? 0 : 1;
}
