/**
 * @file
 * Analysis-and-audit demo: a heterogeneous faulty serving run with
 * phase attribution, a windowed fairness/goodput timeline, an SLO
 * target, and the invariant auditor.
 *
 * Four DFQ devices (one fast, one slow) take an oversubscribed
 * two-class Poisson stream while the fault plane kills device 1
 * mid-run (repaired later) and the watchdog hunts injected hangs.
 * The analysis plane decomposes every session's in-system time into
 * queue / service / migration / stall and reports which phase
 * dominates the p95+ tail per tenant; the windowed timeline tracks
 * Jain fairness, goodput against a 400ms sojourn target, per-device
 * utilization, and queue depth per 250ms of virtual time. The
 * always-on auditor reconciles session usage against the device
 * meters and checks conservation/monotonicity invariants throughout.
 *
 * Outputs: timeline.csv (and the printed report). Exits nonzero on
 * audit violations.
 *
 * Usage: analyze_serving [timeline.csv]
 * Set NEON_VERBOSE=1 for kernel status output during the run.
 */

#include <cstdio>
#include <iostream>

#include "neon/neon.hh"

using namespace neon;

int
main(int argc, char **argv)
{
    applyVerboseEnv();

    ExperimentConfig cfg;
    cfg.sched = SchedKind::DisengagedFq;
    cfg.fleet.devices = 4;
    cfg.fleet.speedFactors = {1.25, 1.0, 1.0, 0.75};
    cfg.serve.admission = AdmissionKind::FairShare;
    cfg.serve.slotsPerDevice = 2;
    cfg.serve.useGlobalClock = true;
    cfg.serve.clockPeriod = msec(10);
    cfg.serve.migrationLag = msec(25);
    cfg.serve.retry.maxRetries = 5;
    cfg.serve.slo.sojournTarget = msec(400);
    cfg.measure = sec(3);

    cfg.fault.watchdog.enabled = true;
    cfg.fault.watchdog.checkPeriod = msec(2);
    cfg.fault.watchdog.hangTimeout = msec(30);
    cfg.fault.plan.script = {
        {sec(1), FaultKind::DeviceDeath, 1, msec(400)},
    };
    cfg.fault.plan.enabled = true;
    cfg.fault.plan.horizon = cfg.measure;
    cfg.fault.plan.hangRatePerSec = 1.0;

    cfg.observe.analyze.phases = true;
    cfg.observe.analyze.window = msec(250);
    cfg.observe.analyze.timelineCsvPath =
        argc > 1 ? argv[1] : "timeline.csv";

    WorkloadSpec small = WorkloadSpec::throttle(usec(100));
    small.label = "interactive";
    small.withDemand(0.5);
    WorkloadSpec big = WorkloadSpec::throttle(usec(1200));
    big.label = "batch";
    big.withDemand(2.0);

    const std::vector<ServeWorkloadSpec> classes = {
        {small, ArrivalSpec::poisson(60.0, sec(1.5)),
         LifetimeSpec::exponential(msec(200)), "interactive"},
        {big, ArrivalSpec::poisson(20.0, sec(1.5)),
         LifetimeSpec::exponential(msec(300)), "batch"},
    };

    ServeRunner runner(cfg);
    const ServeRunResult r = runner.run(classes, /*with_slowdowns=*/false);

    std::printf("arrivals %llu, departures %llu, kills %llu, shed %llu "
                "(fairness %.3f)\n",
                static_cast<unsigned long long>(r.arrivals),
                static_cast<unsigned long long>(r.departures),
                static_cast<unsigned long long>(r.kills),
                static_cast<unsigned long long>(r.shedSessions),
                r.serviceFairness);
    std::printf("goodput: %llu of %llu clean departures met the %.0fms "
                "sojourn target (%.1f%%)\n",
                static_cast<unsigned long long>(r.slo.goodput.met),
                static_cast<unsigned long long>(r.slo.goodput.eligible),
                toMsec(cfg.serve.slo.sojournTarget),
                100.0 * r.slo.goodput.fraction);

    std::cout << "\n" << obs::formatPhaseReport(r.phases) << "\n";

    std::printf("timeline: %zu windows of %.0fms -> %s\n",
                r.timeline.size(), toMsec(cfg.observe.analyze.window),
                cfg.observe.analyze.timelineCsvPath.c_str());
    for (const obs::WindowStats &w : r.timeline) {
        std::printf("  [%5.0f, %5.0f) ms  arr %3llu dep %3llu  queue %2zu"
                    "  fairness %.3f  goodput %.2f\n",
                    toMsec(w.start), toMsec(w.end),
                    static_cast<unsigned long long>(w.arrivals),
                    static_cast<unsigned long long>(w.departures),
                    w.queueDepth, w.fairness, w.goodput);
    }

    std::cout << "\n" << r.audit.summary() << "\n";
    return r.audit.clean() ? 0 : 1;
}
