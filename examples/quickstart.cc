/**
 * @file
 * Quickstart: two applications share the GPU under each scheduler.
 *
 * Demonstrates the core API: describe workloads, pick a policy, run,
 * and read the paper's metrics (per-round slowdown vs. a solo
 * direct-access baseline, plus concurrency efficiency).
 */

#include <iostream>

#include "neon/neon.hh"

int
main()
{
    using namespace neon;

    ExperimentConfig cfg;
    cfg.measure = sec(3);

    // The contenders: a small-request compute app (DCT from the AMD APP
    // SDK suite) against the Throttle microbenchmark hogging the device
    // with 1.7 ms requests.
    const std::vector<WorkloadSpec> duo = {
        WorkloadSpec::app("DCT"),
        WorkloadSpec::throttle(usec(1700)),
    };

    std::cout << "DCT vs Throttle(1700us): per-task slowdown vs solo "
                 "direct access\n\n";

    Table table({"scheduler", "DCT", "Throttle", "efficiency"});

    for (SchedKind kind : paperSchedulers) {
        cfg.sched = kind;
        ExperimentRunner runner(cfg);

        const std::vector<double> sd = runner.slowdowns(duo);
        const double eff = 1.0 / sd[0] + 1.0 / sd[1];

        table.addRow({schedKindName(kind),
                      Table::num(sd[0]) + "x",
                      Table::num(sd[1]) + "x",
                      Table::num(eff)});
    }

    table.print();

    std::cout << "\nDirect access lets the large-request app crush DCT; "
                 "the NEON schedulers\nrestore ~2x fair sharing, and "
                 "the disengaged variants do so with near-direct\n"
                 "efficiency.\n";
    return 0;
}
