/**
 * @file
 * Multi-tenant fairness: four very different applications share one
 * accelerator. Shows per-task slowdowns, device-time shares, and
 * Jain's fairness index under every policy.
 */

#include <iostream>

#include "neon/neon.hh"

int
main()
{
    using namespace neon;

    const std::vector<WorkloadSpec> tenants = {
        WorkloadSpec::app("MatrixMultiplication"), // large kernels
        WorkloadSpec::app("DCT"),                  // small kernels
        WorkloadSpec::app("glxgears"),             // graphics frames
        WorkloadSpec::throttle(usec(1700)),        // batch hog
    };

    std::cout << "Four tenants on one GPU — slowdown vs solo direct "
                 "access, device share,\nand Jain fairness index over "
                 "the slowdowns.\n\n";

    for (SchedKind kind : paperSchedulers) {
        ExperimentConfig cfg;
        cfg.sched = kind;
        cfg.measure = sec(4);
        ExperimentRunner runner(cfg);

        const RunResult r = runner.run(tenants);

        std::vector<double> sd;
        Tick busy_total = 0;
        for (const auto &t : r.tasks)
            busy_total += t.gpuBusy;
        for (std::size_t i = 0; i < tenants.size(); ++i) {
            const double solo = runner.soloRoundUs(tenants[i]);
            sd.push_back(solo > 0 ? r.tasks[i].meanRoundUs / solo : 0);
        }

        std::cout << "--- " << schedKindName(kind)
                  << "  (Jain index " << Table::num(jainIndex(sd), 3)
                  << ")\n";
        Table table({"tenant", "slowdown", "device share"});
        for (std::size_t i = 0; i < tenants.size(); ++i) {
            table.addRow({r.tasks[i].label,
                          Table::num(sd[i], 2) + "x",
                          Table::num(100.0 * r.tasks[i].gpuBusy /
                                         std::max<Tick>(1, busy_total),
                                     1) + "%"});
        }
        table.print();
        std::cout << "\n";
    }

    std::cout << "Direct access hands the device to whoever batches "
                 "hardest; the disengaged\nschedulers even out the "
                 "shares with almost no overhead.\n";
    return 0;
}
