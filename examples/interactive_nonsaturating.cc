/**
 * @file
 * Work-conservation demo: an interactive (frame-paced, mostly idle)
 * application shares the device with a batch job. Timeslice policies
 * strand the interactive task's idle slices; Disengaged Fair Queueing
 * hands the spare capacity to the batch job without hurting the
 * interactive one.
 */

#include <iostream>

#include "neon/neon.hh"

int
main()
{
    using namespace neon;

    // The "interactive" task: bursts of work, 80% off time.
    const WorkloadSpec interactive =
        WorkloadSpec::throttle(usec(1700), 0.8);
    // The batch job wants every spare cycle.
    const WorkloadSpec batch = WorkloadSpec::app("DCT");

    std::cout << "Interactive (80% idle) + batch co-run.\n\n";

    Table table({"scheduler", "batch slowdown", "interactive slowdown",
                 "device utilization"});

    for (SchedKind kind : paperSchedulers) {
        ExperimentConfig cfg;
        cfg.sched = kind;
        cfg.measure = sec(3);
        ExperimentRunner runner(cfg);

        const RunResult r = runner.run({batch, interactive});
        const double sd_batch =
            r.tasks[0].meanRoundUs / runner.soloRoundUs(batch);
        const double sd_inter =
            r.tasks[1].meanRoundUs / runner.soloRoundUs(interactive);

        table.addRow({schedKindName(kind),
                      Table::num(sd_batch, 2) + "x",
                      Table::num(sd_inter, 2) + "x",
                      Table::num(100.0 * toSec(r.deviceBusy) /
                                     toSec(r.elapsed), 1) + "%"});
    }

    table.print();

    std::cout << "\nFairness does not require equal suffering: under "
                 "Disengaged Fair Queueing\nthe batch job reclaims the "
                 "interactive task's idle time (utilization near\n"
                 "100%), while the timeslice policies leave the device "
                 "dark during the\ninteractive task's slices.\n";
    return 0;
}
