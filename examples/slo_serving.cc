/**
 * @file
 * The serving control plane end to end: an oversubscribed two-class
 * open system governed by per-tenant token-bucket rate limiting,
 * SLO-predictive shedding, and QoS classes with batch preemption.
 *
 * An interactive class with a tight queue budget and a batch class
 * with none offer ~3x the fleet's slot capacity. The front door
 * throttles arrivals past each tenant's rate, predicts the queueing
 * delay of the rest, and sheds the ones that would blow their budget;
 * queued interactive requests release ahead of batch by QoS rank and
 * deadline, and may displace a live batch incarnation outright. The
 * run prints both classes' goodput next to what the control plane
 * refused — and exits non-zero if the invariant audit (exact outcome
 * conservation among served/shed/throttled/killed/in-system) fails or
 * the trace ring dropped records.
 *
 * Usage: slo_serving [trace.json]
 * Set NEON_VERBOSE=1 for kernel status output during the run.
 */

#include <cstdio>
#include <iostream>

#include "neon/neon.hh"

using namespace neon;

int
main(int argc, char **argv)
{
    applyVerboseEnv();

    ExperimentConfig cfg;
    cfg.sched = SchedKind::DisengagedFq;
    cfg.fleet.devices = 4;
    cfg.serve.slotsPerDevice = 2;
    cfg.serve.useGlobalClock = true;
    cfg.serve.clockPeriod = msec(10);
    cfg.measure = sec(2);

    // The control plane: per-tenant buckets at 120/s, predictive
    // shedding against each class's queue budget, and QoS ordering
    // with batch preemption after a 5 ms backoff.
    cfg.serve.rateLimit.ratePerSec = 120.0;
    cfg.serve.rateLimit.burst = 5.0;
    cfg.serve.shed.enabled = true;
    cfg.serve.qos.enabled = true;
    cfg.serve.qos.preemption = true;
    cfg.serve.qos.preemptionBackoff = msec(5);

    if (argc > 1) {
        cfg.observe.categories = obs::defaultTraceCategories;
        cfg.observe.bufferCapacity = std::size_t(1) << 18;
        cfg.observe.tracePath = argv[1];
    }

    WorkloadSpec inter = WorkloadSpec::throttle(usec(200));
    inter.label = "interactive";
    WorkloadSpec batch = WorkloadSpec::throttle(usec(400));
    batch.label = "batch";

    ServeWorkloadSpec si{inter, ArrivalSpec::poisson(150.0, msec(1500)),
                         LifetimeSpec::exponential(msec(60)), "frontend"};
    si.qos = QosClass::Interactive;
    si.queueBudget = msec(20);
    ServeWorkloadSpec sb{batch, ArrivalSpec::poisson(80.0, msec(1500)),
                         LifetimeSpec::fixed(msec(150)), "pipeline"};
    sb.qos = QosClass::Batch;

    ServeRunner runner(cfg);
    const ServeRunResult r = runner.run({si, sb}, /*with_slowdowns=*/false);

    std::printf("arrivals %llu: served %llu, throttled %llu, shed %llu "
                "(%llu predicted), killed %llu\n",
                static_cast<unsigned long long>(r.arrivals),
                static_cast<unsigned long long>(r.departures),
                static_cast<unsigned long long>(r.throttledSessions),
                static_cast<unsigned long long>(r.shedSessions),
                static_cast<unsigned long long>(r.predictiveSheds),
                static_cast<unsigned long long>(r.kills));
    std::printf("preemptions %llu, peak queue %zu, queued at end %zu\n",
                static_cast<unsigned long long>(r.preemptions),
                r.peakQueueDepth, r.queuedAtEnd);
    for (const ClassGoodput &g : r.slo.goodputByClass) {
        if (!g.goodput.targeted)
            continue;
        std::printf("%s goodput: %llu/%llu within budget (%.0f%%)\n",
                    g.label.c_str(),
                    static_cast<unsigned long long>(g.goodput.met),
                    static_cast<unsigned long long>(g.goodput.eligible),
                    100.0 * g.goodput.fraction);
    }
    std::printf("queue delay p95 %.1f ms, sojourn p95 %.1f ms\n",
                r.slo.queueDelayMs.p95, r.slo.sojournMs.p95);

    if (!r.observeSummary.empty())
        std::cout << "wrote " << cfg.observe.tracePath << ": "
                  << r.observeSummary << "\n";
    std::cout << r.audit.summary() << "\n";
    if (r.traceDrops > 0) {
        std::cerr << "trace ring dropped "
                  << static_cast<unsigned long long>(r.traceDrops)
                  << " records\n";
        return 1;
    }
    return r.audit.clean() ? 0 : 1;
}
