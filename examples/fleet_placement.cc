/**
 * @file
 * Placement policies on a heterogeneous fleet.
 *
 * Four devices, one of them 2x faster, serving eight tenants. Shows
 * where each policy places the tenants and what that does to per-task
 * service and device balance:
 *
 *  - round-robin ignores speed and load;
 *  - least-loaded balances busy time but not capability;
 *  - sticky keeps each tenant's tasks together (affinity), spilling
 *    only over capacity;
 *  - heterogeneity-aware gives the fast device a double share.
 */

#include <iostream>

#include "neon/neon.hh"

using namespace neon;

int
main()
{
    const std::vector<PlacementKind> policies = {
        PlacementKind::RoundRobin,
        PlacementKind::LeastLoaded,
        PlacementKind::Sticky,
        PlacementKind::HeterogeneityAware,
    };

    for (PlacementKind placement : policies) {
        ExperimentConfig cfg;
        cfg.sched = SchedKind::DisengagedFq;
        cfg.fleet.devices = 4;
        cfg.fleet.speedFactors = {2.0, 1.0, 1.0, 1.0};
        cfg.fleet.placement = placement;
        cfg.fleet.stickyCapacity = 2;
        cfg.measure = sec(2);

        // Four tenants, two tasks each, tagged with tenant affinity.
        std::vector<WorkloadSpec> mix;
        for (int tenant = 0; tenant < 4; ++tenant) {
            const std::string key = "tenant" + std::to_string(tenant);
            mix.push_back(WorkloadSpec::app("DCT").withAffinity(key));
            mix.push_back(
                WorkloadSpec::throttle(usec(430)).withAffinity(key));
        }

        const FleetRunResult r = FleetRunner(cfg).run(mix);

        std::cout << "=== " << placementKindName(placement) << " ===\n";
        Table table({"task", "device", "requests", "busy(ms)"});
        for (const FleetTaskResult &t : r.tasks) {
            table.addRow({
                t.label,
                Table::num(static_cast<double>(t.device), 0),
                Table::num(static_cast<double>(t.requests), 0),
                Table::num(toMsec(t.gpuBusy), 1),
            });
        }
        table.print();
        std::cout << "fleet: " << Table::num(r.throughputRps, 0)
                  << " req/s, task-fairness "
                  << Table::num(r.fairness.taskFairness, 3)
                  << ", device-balance "
                  << Table::num(r.fairness.deviceBalance, 3) << "\n\n";
    }
    return 0;
}
