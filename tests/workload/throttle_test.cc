/**
 * @file
 * Tests for the Throttle microbenchmark.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"

namespace neon
{
namespace
{

RunResult
runThrottle(Tick size, double sleep_ratio, Tick measure = sec(1))
{
    ExperimentConfig cfg;
    cfg.measure = measure;
    ExperimentRunner runner(cfg);
    return runner.run({WorkloadSpec::throttle(size, sleep_ratio)});
}

TEST(Throttle, RoundEqualsRequestPlusOverhead)
{
    const RunResult r = runThrottle(usec(430), 0.0);
    EXPECT_NEAR(r.tasks[0].meanRoundUs, 430.3, 2.0);
}

TEST(Throttle, SweepOfSizesTracksRequestSize)
{
    for (double us : {19.0, 106.0, 430.0, 1700.0}) {
        const RunResult r = runThrottle(usec(us), 0.0);
        EXPECT_NEAR(r.tasks[0].meanRoundUs, us, us * 0.05 + 1.0);
    }
}

TEST(Throttle, SleepRatioProducesOffTime)
{
    const RunResult r = runThrottle(usec(1700), 0.8, sec(2));
    // 20% duty: device busy should be ~20% of elapsed.
    const double duty = toSec(r.deviceBusy) / toSec(r.elapsed);
    EXPECT_NEAR(duty, 0.2, 0.02);
    // Round = request + 4x request of sleep.
    EXPECT_NEAR(r.tasks[0].meanRoundUs, 5 * 1700.0, 200.0);
}

TEST(Throttle, SaturatingKeepsDeviceBusy)
{
    const RunResult r = runThrottle(usec(430), 0.0);
    EXPECT_GT(toSec(r.deviceBusy) / toSec(r.elapsed), 0.97);
}

TEST(Throttle, DeterministicAcrossRuns)
{
    const RunResult a = runThrottle(usec(106), 0.3);
    const RunResult b = runThrottle(usec(106), 0.3);
    EXPECT_EQ(a.tasks[0].rounds, b.tasks[0].rounds);
    EXPECT_DOUBLE_EQ(a.tasks[0].meanRoundUs, b.tasks[0].meanRoundUs);
    EXPECT_EQ(a.deviceBusy, b.deviceBusy);
}

TEST(Throttle, JitterVariesRequestSizes)
{
    ExperimentConfig cfg;
    cfg.measure = sec(1);
    cfg.collectTraces = true;

    World world(cfg);
    Task &t = world.spawn(WorkloadSpec::throttle(usec(100)));
    world.start();
    world.runFor(cfg.warmup);
    world.beginMeasurement();
    world.runFor(cfg.measure);

    const auto &pt = world.trace.of(t.pid());
    EXPECT_GT(pt.serviceAccumUs.stddev(), 0.5);
    EXPECT_LT(pt.serviceAccumUs.stddev(), 5.0);
    EXPECT_NEAR(pt.serviceAccumUs.mean(), 100.0, 1.0);
}

} // namespace
} // namespace neon
