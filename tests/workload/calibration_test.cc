/**
 * @file
 * Calibration: every profile, run solo under direct access, must
 * reproduce its Table 1 per-round time; compute profiles must also
 * reproduce the per-request service average. This is the contract the
 * benchmark reproductions depend on.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"

namespace neon
{
namespace
{

class CalibrationTest : public ::testing::TestWithParam<const char *>
{
};

TEST_P(CalibrationTest, SoloRoundTimeMatchesTable1)
{
    const AppProfile &profile = AppRegistry::byName(GetParam());

    ExperimentConfig cfg;
    cfg.measure = sec(2);
    cfg.collectTraces = true;

    World world(cfg);
    Task &t = world.spawn(WorkloadSpec::app(profile.name));
    world.start();
    world.runFor(cfg.warmup);
    world.beginMeasurement();
    world.runFor(cfg.measure);
    RunResult r = world.results();

    EXPECT_NEAR(r.tasks[0].meanRoundUs, profile.paperRoundUs,
                profile.paperRoundUs * 0.08)
        << profile.name << " round time off Table 1";

    // Per-request service: compare the awaited-request average against
    // the paper's value (within 10%; combined apps report a blended
    // figure, so only pure compute apps are checked).
    if (!profile.usesGraphics()) {
        const auto &pt = world.trace.of(t.pid());
        EXPECT_NEAR(pt.serviceAccumUs.mean(), profile.paperReqUs,
                    profile.paperReqUs * 0.10)
            << profile.name << " request size off Table 1";
    }
}

INSTANTIATE_TEST_SUITE_P(
    Table1, CalibrationTest,
    ::testing::Values("BinarySearch", "BitonicSort", "DCT", "EigenValue",
                      "FastWalshTransform", "FFT", "FloydWarshall",
                      "LUDecomposition", "MatrixMulDouble",
                      "MatrixMultiplication", "MatrixTranspose",
                      "PrefixSum", "RadixSort", "Reduction",
                      "ScanLargeArrays", "glxgears", "oclParticles",
                      "simpleTexture3D"),
    [](const ::testing::TestParamInfo<const char *> &info) {
        return std::string(info.param);
    });

} // namespace
} // namespace neon
