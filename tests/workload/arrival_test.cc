/**
 * @file
 * Unit tests for open-system arrival processes and lifetime specs:
 * Poisson rate statistics, burst shape, trace replay, the `until`
 * cutoff, and lifetime sampling.
 */

#include <gtest/gtest.h>

#include "sim/random.hh"
#include "workload/arrival.hh"

namespace neon
{
namespace
{

TEST(ArrivalProcess, PoissonMatchesConfiguredRate)
{
    // 1000 arrivals/s over 2 simulated seconds: the count should land
    // near 2000 (the relative sd of a Poisson count at n=2000 is ~2%).
    ArrivalProcess ap(ArrivalSpec::poisson(1000.0, sec(2)), Rng(7));
    Tick when = 0;
    std::uint64_t n = 0;
    Tick last = -1;
    while (ap.next(when)) {
        EXPECT_GE(when, last);
        last = when;
        ++n;
    }
    EXPECT_NEAR(static_cast<double>(n), 2000.0, 200.0);
    EXPECT_LE(last, sec(2));
}

TEST(ArrivalProcess, PoissonIsDeterministicPerSeed)
{
    ArrivalProcess a(ArrivalSpec::poisson(500.0, sec(1)), Rng(42));
    ArrivalProcess b(ArrivalSpec::poisson(500.0, sec(1)), Rng(42));
    Tick wa = 0, wb = 0;
    for (int i = 0; i < 100; ++i) {
        ASSERT_TRUE(a.next(wa));
        ASSERT_TRUE(b.next(wb));
        EXPECT_EQ(wa, wb);
    }
}

TEST(ArrivalProcess, BurstProducesFrontsOfExactSize)
{
    // 3 back-to-back arrivals every 10 ms, starting at t=0.
    ArrivalProcess ap(ArrivalSpec::burst(3, msec(10), msec(25)), Rng(1));
    std::vector<Tick> times;
    Tick when = 0;
    while (ap.next(when))
        times.push_back(when);

    const std::vector<Tick> expect = {0,        0,        0,
                                      msec(10), msec(10), msec(10),
                                      msec(20), msec(20), msec(20)};
    EXPECT_EQ(times, expect);
}

TEST(ArrivalProcess, TraceReplaysExactly)
{
    const std::vector<Tick> trace = {usec(5), usec(5), msec(1), msec(3)};
    ArrivalProcess ap(ArrivalSpec::trace(trace), Rng(1));
    Tick when = 0;
    for (Tick expect : trace) {
        ASSERT_TRUE(ap.next(when));
        EXPECT_EQ(when, expect);
    }
    EXPECT_FALSE(ap.next(when));
    EXPECT_EQ(ap.produced(), trace.size());
}

TEST(ArrivalProcess, UntilClosesTheArrivalWindow)
{
    ArrivalProcess ap(ArrivalSpec::burst(2, msec(5), msec(6)), Rng(1));
    Tick when = 0;
    std::uint64_t n = 0;
    while (ap.next(when)) {
        EXPECT_LE(when, msec(6));
        ++n;
    }
    // Fronts at 0 and 5 ms pass; the 10 ms front is past the window.
    EXPECT_EQ(n, 4u);
}

TEST(LifetimeSpec, FixedAndForever)
{
    Rng rng(3);
    EXPECT_EQ(LifetimeSpec::fixed(msec(250)).sample(rng), msec(250));
    EXPECT_EQ(LifetimeSpec::forever().sample(rng), maxTick);
    EXPECT_FALSE(LifetimeSpec::forever().finite());
    EXPECT_TRUE(LifetimeSpec::fixed(msec(1)).finite());
}

TEST(LifetimeSpec, ExponentialMeanAndFloor)
{
    Rng rng(11);
    const LifetimeSpec life = LifetimeSpec::exponential(msec(100));
    double sum = 0.0;
    const int n = 4000;
    for (int i = 0; i < n; ++i) {
        const Tick d = life.sample(rng);
        EXPECT_GE(d, life.minimum);
        sum += toMsec(d);
    }
    EXPECT_NEAR(sum / n, 100.0, 5.0);
}

} // namespace
} // namespace neon
