/**
 * @file
 * Unit tests for the Table 1 profile registry and request mixtures.
 */

#include <gtest/gtest.h>

#include <set>

#include "workload/app_profile.hh"

namespace neon
{
namespace
{

TEST(AppRegistry, HasAllEighteenBenchmarks)
{
    EXPECT_EQ(AppRegistry::all().size(), 18u);
}

TEST(AppRegistry, NamesAreUnique)
{
    std::set<std::string> names;
    for (const auto &p : AppRegistry::all())
        names.insert(p.name);
    EXPECT_EQ(names.size(), AppRegistry::all().size());
}

TEST(AppRegistry, LookupByName)
{
    const AppProfile &dct = AppRegistry::byName("DCT");
    EXPECT_EQ(dct.area, "Compression");
    EXPECT_DOUBLE_EQ(dct.paperRoundUs, 197.0);
    EXPECT_DOUBLE_EQ(dct.paperReqUs, 66.0);
}

TEST(AppRegistryDeathTest, UnknownNameIsFatal)
{
    EXPECT_DEATH(AppRegistry::byName("NoSuchApp"), "unknown");
}

TEST(AppRegistry, CombinedAppsHaveMultipleChannels)
{
    const AppProfile &p = AppRegistry::byName("oclParticles");
    EXPECT_TRUE(p.usesCompute());
    EXPECT_TRUE(p.usesGraphics());
    EXPECT_TRUE(p.usesDma());
    EXPECT_EQ(p.channelCount(), 3);
    EXPECT_DOUBLE_EQ(p.paperReqUs, 12.0);
    EXPECT_DOUBLE_EQ(p.paperReqUs2, 302.0);
}

TEST(AppRegistry, PureComputeAppsHaveOneChannel)
{
    const AppProfile &p = AppRegistry::byName("FFT");
    EXPECT_EQ(p.channelCount(), 1);
    EXPECT_FALSE(p.usesGraphics());
}

TEST(AppRegistry, StageDependentAppsAreSerialized)
{
    EXPECT_TRUE(AppRegistry::byName("BitonicSort").serialized);
    EXPECT_TRUE(AppRegistry::byName("FloydWarshall").serialized);
    EXPECT_TRUE(AppRegistry::byName("FastWalshTransform").serialized);
    EXPECT_FALSE(AppRegistry::byName("DCT").serialized);
    EXPECT_FALSE(AppRegistry::byName("MatrixMulDouble").serialized);
}

TEST(RequestMix, FixedMixMeanMatches)
{
    RequestMix mix = RequestMix::fixed(66.0);
    EXPECT_DOUBLE_EQ(mix.meanUs(), 66.0);
}

TEST(RequestMix, MixtureMeanIsWeighted)
{
    RequestMix mix{{{0.70, 6.0, 0.4}, {0.30, 109.0, 0.3}}};
    EXPECT_NEAR(mix.meanUs(), 36.9, 0.01);
}

TEST(RequestMix, SamplesFollowTheMean)
{
    RequestMix mix{{{0.70, 6.0, 0.4}, {0.30, 109.0, 0.3}}};
    Rng rng(99);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += toUsec(mix.sample(rng));
    EXPECT_NEAR(sum / n, mix.meanUs(), 1.0);
}

TEST(RequestMix, SamplesArePositive)
{
    RequestMix mix = RequestMix::fixed(10.0, 0.5);
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        ASSERT_GT(mix.sample(rng), 0);
}

TEST(AppRegistry, GlxgearsMatchesFigure2Shape)
{
    // The mixture behind glxgears must both average the Table 1 request
    // size and put most requests below 10us (Figure 2).
    const AppProfile &p = AppRegistry::byName("glxgears");
    EXPECT_NEAR(p.graphicsMix.meanUs(), 37.0, 1.0);

    Rng rng(3);
    int below10 = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i)
        below10 += toUsec(p.graphicsMix.sample(rng)) < 10.0;
    EXPECT_GT(below10, n / 2);
}

} // namespace
} // namespace neon
