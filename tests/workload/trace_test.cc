/**
 * @file
 * Tests for trace record/replay: capture a live workload's request
 * stream, serialize it, replay it, and get the same behaviour.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "harness/experiment.hh"
#include "workload/trace.hh"

namespace neon
{
namespace
{

RequestTraceLog
recordThrottle(Tick size, Tick duration)
{
    ExperimentConfig cfg;
    cfg.measure = duration;

    World world(cfg);
    TraceRecorder rec;
    rec.attach(world.device);
    Task &t = world.spawn(WorkloadSpec::throttle(size));
    world.start();
    world.runFor(cfg.warmup + duration);
    return rec.traceOf(t.pid());
}

TEST(TraceRecorder, CapturesTheRequestStream)
{
    const RequestTraceLog log = recordThrottle(usec(100), msec(50));
    // ~(50+400)ms of back-to-back 100us blocking requests.
    EXPECT_GT(log.size(), 3000u);
    EXPECT_NEAR(toUsec(log.totalService()) / log.size(), 100.0, 2.0);

    // Offsets are rebased and monotone.
    EXPECT_EQ(log.events.front().offset, 0);
    for (std::size_t i = 1; i < log.events.size(); ++i)
        EXPECT_GE(log.events[i].offset, log.events[i - 1].offset);
}

TEST(TraceLog, SerializationRoundTrips)
{
    const RequestTraceLog log = recordThrottle(usec(430), msec(20));

    std::stringstream ss;
    log.save(ss);
    const RequestTraceLog loaded = RequestTraceLog::load(ss);

    ASSERT_EQ(loaded.size(), log.size());
    for (std::size_t i = 0; i < log.size(); ++i) {
        EXPECT_EQ(loaded.events[i].offset, log.events[i].offset);
        EXPECT_EQ(loaded.events[i].cls, log.events[i].cls);
        EXPECT_EQ(loaded.events[i].service, log.events[i].service);
        EXPECT_EQ(loaded.events[i].awaited, log.events[i].awaited);
    }
}

TEST(TraceLogDeathTest, MalformedInputIsFatal)
{
    std::stringstream ss("12 notaclass 99 1\n");
    EXPECT_DEATH(RequestTraceLog::load(ss), "unknown request class");
}

TEST(TraceReplay, ReproducesDeviceDemand)
{
    RequestTraceLog log = recordThrottle(usec(100), msec(20));
    // Trim to a fixed-length pass for a predictable round.
    log.events.resize(50);

    ExperimentConfig cfg;
    cfg.measure = msec(200);
    World world(cfg);
    world.spawn(WorkloadSpec::custom(
        "replay", [log](Task &t, std::uint64_t) {
            return traceReplayBody(t, log);
        }));
    world.start();
    world.runFor(cfg.warmup);
    world.beginMeasurement();
    world.runFor(cfg.measure);
    RunResult r = world.results();

    // Each pass replays 50 x ~100us of paced blocking requests.
    EXPECT_GT(r.tasks[0].rounds, 10u);
    EXPECT_NEAR(r.tasks[0].meanRoundUs, toUsec(log.span()) + 100.0,
                toUsec(log.span()) * 0.1);
}

TEST(TraceReplay, ReplayedWorkloadSchedulesFairly)
{
    RequestTraceLog log = recordThrottle(usec(430), msec(30));
    log.events.resize(40);

    ExperimentConfig cfg;
    cfg.sched = SchedKind::DisengagedTimeslice;
    cfg.measure = sec(2);
    ExperimentRunner runner(cfg);

    const WorkloadSpec replay = WorkloadSpec::custom(
        "replay", [log](Task &t, std::uint64_t) {
            return traceReplayBody(t, log);
        });
    const auto sd = runner.slowdowns({
        replay,
        WorkloadSpec::throttle(usec(430)),
    });

    EXPECT_LT(sd[0], 2.6);
    EXPECT_LT(sd[1], 2.6);
}

TEST(TraceReplay, EmptyTraceFinishesImmediately)
{
    ExperimentConfig cfg;
    World world(cfg);
    world.spawn(WorkloadSpec::custom(
        "empty", [](Task &t, std::uint64_t) {
            return traceReplayBody(t, RequestTraceLog{});
        }));
    world.start();
    world.runFor(msec(10));
    EXPECT_TRUE(world.kernel.tasks().at(0)->done());
}

} // namespace
} // namespace neon
