/**
 * @file
 * Unit tests for coroutine-based simulated processes.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"
#include "sim/process.hh"

namespace neon
{
namespace
{

Co
sleeperBody(Process &p, std::vector<Tick> *wakeups, int n, Tick step)
{
    for (int i = 0; i < n; ++i) {
        co_await p.sleepFor(step);
        wakeups->push_back(p.now());
    }
}

TEST(Process, SleepAdvancesSimulatedTime)
{
    EventQueue eq;
    Process p(eq, "sleeper");
    std::vector<Tick> wakeups;
    p.start(sleeperBody(p, &wakeups, 3, 100));
    eq.drain();

    EXPECT_EQ(wakeups, (std::vector<Tick>{100, 200, 300}));
    EXPECT_TRUE(p.done());
}

TEST(Process, StateTransitions)
{
    EventQueue eq;
    Process p(eq, "p");
    EXPECT_EQ(p.state(), Process::State::Created);

    std::vector<Tick> wakeups;
    p.start(sleeperBody(p, &wakeups, 1, 50));
    EXPECT_EQ(p.state(), Process::State::Running);

    eq.drain();
    EXPECT_EQ(p.state(), Process::State::Done);
}

TEST(Process, OnDoneFires)
{
    EventQueue eq;
    Process p(eq, "p");
    bool fired = false;
    p.onDone = [&](Process &) { fired = true; };
    std::vector<Tick> wakeups;
    p.start(sleeperBody(p, &wakeups, 1, 10));
    eq.drain();
    EXPECT_TRUE(fired);
}

Co
parkedBody(Process &p, bool *resumed)
{
    co_await p.park();
    *resumed = true;
}

TEST(Process, ParkAndExternalWake)
{
    EventQueue eq;
    Process p(eq, "parked");
    bool resumed = false;
    p.start(parkedBody(p, &resumed));
    eq.runUntil(100);
    EXPECT_FALSE(resumed);

    p.resumeAt(0);
    eq.drain();
    EXPECT_TRUE(resumed);
}

TEST(Process, KillCancelsPendingWakeup)
{
    EventQueue eq;
    Process p(eq, "victim");
    std::vector<Tick> wakeups;
    p.start(sleeperBody(p, &wakeups, 10, 100));
    eq.runUntil(250); // two wakeups in
    EXPECT_EQ(wakeups.size(), 2u);

    p.kill();
    eq.drain();
    EXPECT_EQ(wakeups.size(), 2u); // no further progress
    EXPECT_TRUE(p.killed());
}

struct RaiiProbe
{
    bool *flag;
    explicit RaiiProbe(bool *f) : flag(f) {}
    ~RaiiProbe() { *flag = true; }
};

Co
raiiBody(Process &p, bool *destroyed)
{
    RaiiProbe probe(destroyed);
    co_await p.sleepFor(1000);
}

TEST(Process, KillRunsRaiiCleanupInBody)
{
    EventQueue eq;
    Process p(eq, "raii");
    bool destroyed = false;
    p.start(raiiBody(p, &destroyed));
    eq.runUntil(10);
    EXPECT_FALSE(destroyed);

    p.kill();
    EXPECT_TRUE(destroyed);
}

TEST(Process, KillingFinishedProcessIsNoOp)
{
    EventQueue eq;
    Process p(eq, "p");
    std::vector<Tick> wakeups;
    p.start(sleeperBody(p, &wakeups, 1, 10));
    eq.drain();
    EXPECT_TRUE(p.done());
    p.kill();
    EXPECT_TRUE(p.done()); // still Done, not Killed
}

TEST(Process, ResumeAtIgnoredForDeadProcess)
{
    EventQueue eq;
    Process p(eq, "p");
    std::vector<Tick> wakeups;
    p.start(sleeperBody(p, &wakeups, 1, 10));
    eq.drain();
    p.resumeAt(0); // must not crash or schedule anything
    eq.drain();
    SUCCEED();
}

TEST(Process, ManyProcessesInterleaveDeterministically)
{
    EventQueue eq;
    std::vector<Tick> wakeups_a, wakeups_b;
    Process a(eq, "a"), b(eq, "b");
    a.start(sleeperBody(a, &wakeups_a, 4, 10));
    b.start(sleeperBody(b, &wakeups_b, 2, 25));
    eq.drain();
    EXPECT_EQ(wakeups_a, (std::vector<Tick>{10, 20, 30, 40}));
    EXPECT_EQ(wakeups_b, (std::vector<Tick>{25, 50}));
}

} // namespace
} // namespace neon
