/**
 * @file
 * Proves the acceptance criterion that steady-state schedule/cancel/
 * step on the event queue performs zero heap allocations.
 *
 * The global operator new/delete pair below counts every allocation in
 * the test binary; the test warms the queue (pool and heap growth are
 * amortized start-up costs), then replays the identical workload and
 * requires the allocation counter not to move.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "sim/event_queue.hh"

namespace
{

std::atomic<std::uint64_t> gAllocCount{0};

} // namespace

void *
operator new(std::size_t size)
{
    ++gAllocCount;
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void operator delete(void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }

namespace neon
{
namespace
{

/**
 * A mixed steady-state workload: periodic self-rescheduling ticks
 * (polling service shape), schedule-then-cancel deadlines (sampling /
 * timeslice shape), and plain one-shot events (request completions).
 */
std::uint64_t
runWorkload(EventQueue &eq, int rounds)
{
    struct Periodic
    {
        EventQueue &eq;
        std::uint64_t fires = 0;
        int remaining;

        void
        arm()
        {
            eq.scheduleIn(10, [this] {
                ++fires;
                if (--remaining > 0)
                    arm();
            });
        }
    };

    Periodic p{eq, 0, rounds};
    p.arm();

    EventId deadline = invalidEventId;
    for (int i = 0; i < rounds; ++i) {
        eq.scheduleIn(5, [] {});
        if (deadline != invalidEventId)
            eq.cancel(deadline);
        deadline = eq.scheduleIn(100000, [] {});
        eq.runFor(10);
    }
    eq.cancel(deadline);
    eq.drain();
    return p.fires;
}

TEST(EventCoreAllocation, SteadyStateIsAllocationFree)
{
    EventQueue eq;

    // Warm-up: grows the slot pool and heap to this workload's
    // high-water mark (vector capacity persists afterwards).
    runWorkload(eq, 2000);

    const std::uint64_t before = gAllocCount.load();
    const std::uint64_t fires = runWorkload(eq, 2000);
    const std::uint64_t after = gAllocCount.load();

    EXPECT_EQ(fires, 2000u);
    EXPECT_EQ(after - before, 0u)
        << "steady-state schedule/cancel/step allocated "
        << (after - before) << " times";
}

} // namespace
} // namespace neon
