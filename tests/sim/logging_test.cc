/**
 * @file
 * Unit tests for the logging verbosity controls and the NEON_VERBOSE
 * environment hook.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "sim/logging.hh"

namespace neon
{
namespace
{

/** Restore the pre-test verbosity and environment on exit. */
struct VerboseGuard
{
    bool saved = verboseEnabled();
    ~VerboseGuard()
    {
        unsetenv("NEON_VERBOSE");
        setVerbose(saved);
    }
};

TEST(Logging, SetVerboseRoundTrips)
{
    VerboseGuard guard;
    setVerbose(true);
    EXPECT_TRUE(verboseEnabled());
    setVerbose(false);
    EXPECT_FALSE(verboseEnabled());
}

TEST(Logging, ApplyVerboseEnvHonorsTruthyAndFalsyValues)
{
    VerboseGuard guard;

    setVerbose(false);
    setenv("NEON_VERBOSE", "1", 1);
    EXPECT_TRUE(applyVerboseEnv());
    EXPECT_TRUE(verboseEnabled());

    setenv("NEON_VERBOSE", "off", 1);
    EXPECT_FALSE(applyVerboseEnv());

    setenv("NEON_VERBOSE", "yes", 1);
    EXPECT_TRUE(applyVerboseEnv());

    setenv("NEON_VERBOSE", "0", 1);
    EXPECT_FALSE(applyVerboseEnv());
}

TEST(Logging, ApplyVerboseEnvLeavesSettingWhenUnsetOrUnknown)
{
    VerboseGuard guard;

    unsetenv("NEON_VERBOSE");
    setVerbose(true);
    EXPECT_TRUE(applyVerboseEnv());
    setVerbose(false);
    EXPECT_FALSE(applyVerboseEnv());

    // Unrecognized values warn but change nothing.
    setVerbose(true);
    setenv("NEON_VERBOSE", "maybe", 1);
    EXPECT_TRUE(applyVerboseEnv());
}

} // namespace
} // namespace neon
