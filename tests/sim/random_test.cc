/**
 * @file
 * Unit tests for the deterministic RNG and distribution transforms.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/random.hh"

namespace neon
{
namespace
{

TEST(Rng, SameSeedSameStream)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformIsInUnitInterval)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanIsHalf)
{
    Rng r(11);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += r.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive)
{
    Rng r(13);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        auto v = r.uniformInt(3, 7);
        ASSERT_GE(v, 3);
        ASSERT_LE(v, 7);
        saw_lo |= v == 3;
        saw_hi |= v == 7;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMeanMatches)
{
    Rng r(17);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += r.exponential(42.0);
    EXPECT_NEAR(sum / n, 42.0, 1.0);
}

TEST(Rng, NormalMoments)
{
    Rng r(19);
    double sum = 0.0, sum2 = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        double x = r.normal();
        sum += x;
        sum2 += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, LognormalMeanAndCv)
{
    Rng r(23);
    const double mean = 66.0, cv = 0.3;
    double sum = 0.0, sum2 = 0.0;
    const int n = 400000;
    for (int i = 0; i < n; ++i) {
        double x = r.lognormal(mean, cv);
        ASSERT_GT(x, 0.0);
        sum += x;
        sum2 += x * x;
    }
    const double m = sum / n;
    const double var = sum2 / n - m * m;
    EXPECT_NEAR(m, mean, mean * 0.02);
    EXPECT_NEAR(std::sqrt(var) / m, cv, 0.03);
}

TEST(Rng, LognormalZeroCvIsDeterministic)
{
    Rng r(29);
    EXPECT_DOUBLE_EQ(r.lognormal(100.0, 0.0), 100.0);
}

TEST(Rng, ChanceProbability)
{
    Rng r(31);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += r.chance(0.25);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng a(37);
    Rng child = a.fork();
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == child.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, NamedStreamIsDeterministic)
{
    // Same (root, name) always yields the same stream, regardless of
    // when or how often it is derived.
    Rng a = namedStream(0x5eed, "serve.arrivals");
    Rng b = namedStream(0x5eed, "serve.arrivals");
    for (int i = 0; i < 256; ++i)
        ASSERT_EQ(a.next(), b.next());
    EXPECT_EQ(streamSeed(0x5eed, "fault.plan"),
              streamSeed(0x5eed, "fault.plan"));
}

TEST(Rng, NamedStreamsDivergeByNameAndRoot)
{
    Rng arrivals = namedStream(0x5eed, "serve.arrivals");
    Rng faults = namedStream(0x5eed, "fault.plan");
    Rng other = namedStream(0x5eee, "serve.arrivals");
    int sameName = 0;
    int sameRoot = 0;
    for (int i = 0; i < 100; ++i) {
        const std::uint64_t x = arrivals.next();
        sameName += x == faults.next();
        sameRoot += x == other.next();
    }
    EXPECT_LT(sameName, 3);
    EXPECT_LT(sameRoot, 3);
}

TEST(Rng, NamedStreamsAreDrawOrderIndependent)
{
    // Draws taken from one named stream never perturb another — the
    // property that makes a fault plan's draws invisible to workload
    // streams derived from the same root seed.
    Rng w1 = namedStream(99, "serve.lifetime");
    std::vector<std::uint64_t> clean;
    for (int i = 0; i < 64; ++i)
        clean.push_back(w1.next());

    Rng faults = namedStream(99, "fault.plan");
    Rng w2 = namedStream(99, "serve.lifetime");
    for (int i = 0; i < 64; ++i) {
        (void)faults.next(); // interleaved fault-plan draws
        ASSERT_EQ(w2.next(), clean[static_cast<std::size_t>(i)]);
    }
}

} // namespace
} // namespace neon
