/**
 * @file
 * ShardedEngine unit tests: serial passthrough, device partitioning,
 * window-grid advancement, canonical mailbox ordering, shard-phase
 * context, and bit-level determinism across repeats and worker-thread
 * counts.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/sharded_engine.hh"

namespace neon
{
namespace
{

TEST(ShardedEngineCore, SerialPassthroughUsesControlQueue)
{
    // count <= 1 must degenerate to the bare control queue: no shard
    // queues, no threads, no windows — structurally the serial core.
    for (unsigned count : {0u, 1u}) {
        EventQueue eq;
        ShardedEngine engine({count, 0, 0}, eq, 8);

        EXPECT_FALSE(engine.parallel());
        EXPECT_EQ(engine.shardCount(), 1u);
        EXPECT_EQ(engine.threadCount(), 0u);
        EXPECT_EQ(engine.window(), 0);
        for (std::size_t d = 0; d < 8; ++d) {
            EXPECT_EQ(engine.shardOfDevice(d), 0u);
            EXPECT_EQ(&engine.queueOfDevice(d), &eq);
        }
        EXPECT_EQ(&engine.shardQueue(0), &eq);

        int fired = 0;
        eq.schedule(usec(10), [&] { ++fired; });
        engine.runUntil(msec(1));
        EXPECT_EQ(fired, 1);
        EXPECT_EQ(engine.now(), msec(1));
        EXPECT_EQ(eq.now(), msec(1));
        EXPECT_EQ(engine.totalExecuted(), eq.executed());
        EXPECT_EQ(engine.windowsRun(), 0u);
        EXPECT_EQ(engine.mailboxMessages(), 0u);
    }
}

TEST(ShardedEngineCore, SerialPostToBarrierAppliesInline)
{
    EventQueue eq;
    ShardedEngine engine({1, 0, 0}, eq, 4);
    int fired = 0;
    engine.postToBarrier(0, usec(5), [&] { ++fired; });
    EXPECT_EQ(fired, 1); // applied immediately in serial mode
}

TEST(ShardedEngineCore, PartitionIsContiguousAndClamped)
{
    EventQueue eq;

    // More shards than devices clamps to one shard per device.
    ShardedEngine clamped({8, 1, msec(1)}, eq, 3);
    EXPECT_EQ(clamped.shardCount(), 3u);

    // Contiguous partition: nondecreasing, covers every shard, and
    // each device's queue is its shard's queue.
    ShardedEngine engine({4, 1, msec(1)}, eq, 10);
    ASSERT_EQ(engine.shardCount(), 4u);
    std::vector<std::size_t> perShard(4, 0);
    std::size_t prev = 0;
    for (std::size_t d = 0; d < 10; ++d) {
        const std::size_t s = engine.shardOfDevice(d);
        ASSERT_LT(s, 4u);
        EXPECT_GE(s, prev);
        prev = s;
        ++perShard[s];
        EXPECT_EQ(&engine.queueOfDevice(d), &engine.shardQueue(s));
        EXPECT_NE(&engine.queueOfDevice(d), &eq);
    }
    for (std::size_t s = 0; s < 4; ++s)
        EXPECT_GE(perShard[s], 1u) << "shard " << s << " owns no device";
}

TEST(ShardedEngineCore, WindowGridAdvancesAllQueues)
{
    EventQueue eq;
    ShardedEngine engine({2, 1, msec(1)}, eq, 2);
    ASSERT_TRUE(engine.parallel());
    EXPECT_EQ(engine.window(), msec(1));

    // Events on both shards and the control queue all execute, and
    // every clock lands exactly on the run target.
    int shardFired = 0;
    int controlFired = 0;
    for (std::size_t d = 0; d < 2; ++d) {
        engine.queueOfDevice(d).schedule(usec(100) + Tick(d),
                                         [&] { ++shardFired; });
        engine.queueOfDevice(d).schedule(msec(3) + Tick(d),
                                         [&] { ++shardFired; });
    }
    eq.schedule(usec(500), [&] { ++controlFired; });

    engine.runUntil(msec(5));
    EXPECT_EQ(shardFired, 4);
    EXPECT_EQ(controlFired, 1);
    EXPECT_EQ(engine.now(), msec(5));
    EXPECT_EQ(engine.shardQueue(0).now(), msec(5));
    EXPECT_EQ(engine.shardQueue(1).now(), msec(5));
    EXPECT_EQ(engine.windowsRun(), 5u);
    EXPECT_EQ(engine.totalExecuted(), eq.executed() +
                                          engine.shardQueue(0).executed() +
                                          engine.shardQueue(1).executed());

    // A partial window still drives everything to the exact target.
    engine.runFor(usec(250));
    EXPECT_EQ(engine.now(), msec(5) + usec(250));
    EXPECT_EQ(engine.shardQueue(1).now(), msec(5) + usec(250));
}

TEST(ShardedEngineCore, MailboxDrainsInCanonicalOrder)
{
    EventQueue eq;
    ShardedEngine engine({3, 1, msec(1)}, eq, 3);

    // Post out of order across shards and timestamps; the barrier must
    // apply them sorted by (when, shard, seq), at control time.
    std::vector<std::string> log;
    auto tag = [&](std::string s) {
        return [&log, s = std::move(s)] { log.push_back(s); };
    };
    engine.postToBarrier(2, usec(700), tag("t700.s2"));
    engine.postToBarrier(0, usec(900), tag("t900.s0.a"));
    engine.postToBarrier(1, usec(700), tag("t700.s1"));
    engine.postToBarrier(0, usec(900), tag("t900.s0.b"));
    engine.postToBarrier(0, usec(100), tag("t100.s0"));

    engine.runUntil(msec(1));
    const std::vector<std::string> want = {
        "t100.s0", "t700.s1", "t700.s2", "t900.s0.a", "t900.s0.b"};
    EXPECT_EQ(log, want);
    EXPECT_EQ(engine.mailboxMessages(), 5u);
}

TEST(ShardedEngineCore, ShardPhaseContextAndDeferredEffects)
{
    EventQueue eq;
    ShardedEngine engine({2, 2, msec(1)}, eq, 2);

    // Not a shard phase on the coordinator thread.
    EXPECT_FALSE(ShardedEngine::inShardPhase());

    // A shard event sees inShardPhase() and can defer a cross-shard
    // effect; the effect runs at the barrier, on the coordinator, at
    // the window-boundary control time.
    Tick appliedAt = -1;
    bool sawPhase = false;
    engine.queueOfDevice(1).schedule(usec(300), [&] {
        sawPhase = ShardedEngine::inShardPhase();
        ShardedEngine::postFromShard(
            [&] { appliedAt = eq.now(); });
    });

    engine.runUntil(msec(2));
    EXPECT_TRUE(sawPhase);
    EXPECT_EQ(appliedAt, msec(1)); // barrier closing the event's window
    EXPECT_EQ(engine.mailboxMessages(), 1u);
    EXPECT_FALSE(ShardedEngine::inShardPhase());
}

TEST(ShardedEngineCore, PostFromShardPanicsOutsideShardPhase)
{
    EXPECT_DEATH(ShardedEngine::postFromShard([] {}),
                 "outside a shard phase");
}

/**
 * Rebuildable ping-pong scenario: each shard's device event chain
 * defers a message through the mailbox; the barrier handler reschedules
 * the next hop into another shard's queue. Returns the full applied-
 * message log — any thread-scheduling nondeterminism would reorder it.
 */
std::vector<std::string>
runPingPong(unsigned shards, unsigned threads)
{
    EventQueue eq;
    ShardedEngine engine({shards, threads, usec(500)}, eq, 8);
    std::vector<std::string> log;

    struct Hop
    {
        ShardedEngine &engine;
        EventQueue &eq;
        std::vector<std::string> &log;
        int left = 0;

        void
        arm(std::size_t dev, Tick delay)
        {
            engine.queueOfDevice(dev).scheduleIn(delay, [this, dev] {
                ShardedEngine::postFromShard([this, dev] {
                    log.push_back("dev" + std::to_string(dev) + "@" +
                                  std::to_string(eq.now()));
                    if (--left > 0)
                        arm((dev + 3) % 8, usec(130) + Tick(dev));
                });
            });
        }
    };

    Hop hop{engine, eq, log, 40};
    hop.arm(0, usec(90));
    Hop hop2{engine, eq, log, 40};
    hop2.arm(5, usec(110));

    engine.runUntil(msec(30));
    log.push_back("executed=" + std::to_string(engine.totalExecuted()));
    log.push_back("msgs=" + std::to_string(engine.mailboxMessages()));
    return log;
}

TEST(ShardedEngineCore, DeterministicAcrossRepeatsAndThreadCounts)
{
    const std::vector<std::string> base = runPingPong(4, 1);
    ASSERT_GT(base.size(), 10u);
    EXPECT_EQ(runPingPong(4, 1), base); // repeat, same threads
    EXPECT_EQ(runPingPong(4, 2), base); // more workers than cores
    EXPECT_EQ(runPingPong(4, 4), base);
}

TEST(ShardedEngineCore, ThreadDefaultsAndSetupAccounting)
{
    EventQueue eq;
    ShardedEngine engine({4, 0, msec(1)}, eq, 8);
    // threads=0 defaults to min(count, hardware_concurrency >= 1).
    EXPECT_GE(engine.threadCount(), 1u);
    EXPECT_LE(engine.threadCount(), 4u);
    // Spawn cost is measured so benches can exclude it.
    EXPECT_GE(engine.setupSeconds(), 0.0);
}

} // namespace
} // namespace neon
