/**
 * @file
 * Unit tests for the discrete-event core.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace neon
{
namespace
{

TEST(EventQueue, StartsAtTickZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, RunsEventsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.drain();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30);
}

TEST(EventQueue, TiesRunInInsertionOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.drain();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue eq;
    bool ran = false;
    EventId id = eq.schedule(10, [&] { ran = true; });
    eq.cancel(id);
    eq.drain();
    EXPECT_FALSE(ran);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, CancelIsIdempotentAndIgnoresStaleIds)
{
    EventQueue eq;
    EventId id = eq.schedule(10, [] {});
    eq.cancel(id);
    eq.cancel(id);
    eq.cancel(12345);
    eq.drain();
    SUCCEED();
}

TEST(EventQueue, RunUntilAdvancesClockEvenWithoutEvents)
{
    EventQueue eq;
    eq.runUntil(500);
    EXPECT_EQ(eq.now(), 500);
}

TEST(EventQueue, RunUntilExecutesOnlyDueEvents)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(100, [&] { ++count; });
    eq.schedule(200, [&] { ++count; });
    eq.runUntil(150);
    EXPECT_EQ(count, 1);
    EXPECT_EQ(eq.now(), 150);
    eq.runUntil(250);
    EXPECT_EQ(count, 2);
}

TEST(EventQueue, EventsMayRescheduleThemselves)
{
    EventQueue eq;
    int fires = 0;
    std::function<void()> tick = [&] {
        ++fires;
        if (fires < 5)
            eq.scheduleIn(10, tick);
    };
    eq.scheduleIn(10, tick);
    eq.runUntil(1000);
    EXPECT_EQ(fires, 5);
    EXPECT_EQ(eq.now(), 1000);
}

TEST(EventQueue, ScheduleAtCurrentTickRunsAfterCurrentEvent)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(10, [&] {
        order.push_back(1);
        eq.scheduleIn(0, [&] { order.push_back(2); });
        order.push_back(3);
    });
    eq.drain();
    EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

TEST(EventQueue, PendingAndExecutedCounts)
{
    EventQueue eq;
    eq.schedule(1, [] {});
    eq.schedule(2, [] {});
    EXPECT_EQ(eq.pending(), 2u);
    eq.drain();
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_EQ(eq.executed(), 2u);
}

TEST(EventQueueDeathTest, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.drain();
    ASSERT_EQ(eq.now(), 10);
    EXPECT_DEATH(eq.schedule(5, [] {}), "past");
}

} // namespace
} // namespace neon
