/**
 * @file
 * Unit tests for the discrete-event core.
 */

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "sim/event_queue.hh"

namespace neon
{
namespace
{

TEST(EventQueue, StartsAtTickZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, RunsEventsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.drain();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30);
}

TEST(EventQueue, TiesRunInInsertionOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.drain();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue eq;
    bool ran = false;
    EventId id = eq.schedule(10, [&] { ran = true; });
    eq.cancel(id);
    eq.drain();
    EXPECT_FALSE(ran);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, CancelIsIdempotentAndIgnoresStaleIds)
{
    EventQueue eq;
    EventId id = eq.schedule(10, [] {});
    eq.cancel(id);
    eq.cancel(id);
    eq.cancel(12345);
    eq.drain();
    SUCCEED();
}

TEST(EventQueue, RunUntilAdvancesClockEvenWithoutEvents)
{
    EventQueue eq;
    eq.runUntil(500);
    EXPECT_EQ(eq.now(), 500);
}

TEST(EventQueue, RunUntilExecutesOnlyDueEvents)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(100, [&] { ++count; });
    eq.schedule(200, [&] { ++count; });
    eq.runUntil(150);
    EXPECT_EQ(count, 1);
    EXPECT_EQ(eq.now(), 150);
    eq.runUntil(250);
    EXPECT_EQ(count, 2);
}

TEST(EventQueue, EventsMayRescheduleThemselves)
{
    EventQueue eq;
    int fires = 0;
    std::function<void()> tick = [&] {
        ++fires;
        if (fires < 5)
            eq.scheduleIn(10, tick);
    };
    eq.scheduleIn(10, tick);
    eq.runUntil(1000);
    EXPECT_EQ(fires, 5);
    EXPECT_EQ(eq.now(), 1000);
}

TEST(EventQueue, ScheduleAtCurrentTickRunsAfterCurrentEvent)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(10, [&] {
        order.push_back(1);
        eq.scheduleIn(0, [&] { order.push_back(2); });
        order.push_back(3);
    });
    eq.drain();
    EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

TEST(EventQueue, PendingAndExecutedCounts)
{
    EventQueue eq;
    eq.schedule(1, [] {});
    eq.schedule(2, [] {});
    EXPECT_EQ(eq.pending(), 2u);
    eq.drain();
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_EQ(eq.executed(), 2u);
}

TEST(EventQueue, StaleIdCancelAfterExecutionIsNoOp)
{
    EventQueue eq;
    const EventId a = eq.schedule(10, [] {});
    eq.drain();

    // The slot a occupied is free for reuse; cancelling a's stale id
    // must not touch whatever lives there now.
    bool ran = false;
    const EventId b = eq.schedule(20, [&] { ran = true; });
    EXPECT_NE(a, b);
    eq.cancel(a);
    EXPECT_EQ(eq.pending(), 1u);
    eq.drain();
    EXPECT_TRUE(ran);
}

TEST(EventQueue, IdReuseAfterCancelIsSafe)
{
    EventQueue eq;
    const EventId a = eq.schedule(10, [] {});
    eq.cancel(a);

    // The recycled slot now backs b; a's id aliases the slot index but
    // not its generation.
    bool ran = false;
    const EventId b = eq.schedule(10, [&] { ran = true; });
    EXPECT_NE(a, b);
    eq.cancel(a);
    eq.cancel(a);
    eq.drain();
    EXPECT_TRUE(ran);
}

TEST(EventQueue, SameTickOrderSurvivesInterleavedCancels)
{
    EventQueue eq;
    std::vector<int> order;
    std::vector<EventId> ids;
    for (int i = 0; i < 16; ++i)
        ids.push_back(eq.schedule(5, [&order, i] { order.push_back(i); }));

    // Cancel the odd ones (recycling their slots), then add a second
    // wave at the same tick: survivors of wave 1, then wave 2, in
    // insertion order.
    for (int i = 1; i < 16; i += 2)
        eq.cancel(ids[i]);
    for (int i = 16; i < 24; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });

    eq.drain();

    std::vector<int> expect;
    for (int i = 0; i < 16; i += 2)
        expect.push_back(i);
    for (int i = 16; i < 24; ++i)
        expect.push_back(i);
    EXPECT_EQ(order, expect);
}

TEST(EventQueue, CompactionBoundsHeapUnderHeavyCancel)
{
    EventQueue eq;

    // Polling-service-like churn: every scheduled deadline is
    // cancelled and replaced before it fires. Without compaction the
    // heap would grow by one stale entry per round.
    EventId pending = eq.schedule(1'000'000, [] {});
    for (int round = 0; round < 10'000; ++round) {
        eq.cancel(pending);
        pending = eq.schedule(1'000'000 + round, [] {});
    }

    const auto st = eq.stats();
    EXPECT_EQ(st.live, 1u);
    EXPECT_GE(st.compactions, 1u);
    // Stale entries may linger, but only a bounded fraction.
    EXPECT_LT(st.heapEntries, 200u);
    eq.drain();
    EXPECT_EQ(eq.stats().heapEntries, 0u);
}

TEST(EventQueue, PendingAndEmptyConsistentAfterChurn)
{
    EventQueue eq;
    std::vector<EventId> keep;
    std::uint64_t cancelled = 0;

    for (int i = 0; i < 3000; ++i) {
        const EventId id =
            eq.schedule(100 + i, [] {});
        if (i % 3 == 0) {
            keep.push_back(id);
        } else {
            eq.cancel(id);
            ++cancelled;
        }
    }

    EXPECT_EQ(eq.pending(), keep.size());
    EXPECT_FALSE(eq.empty());
    EXPECT_EQ(eq.stats().peakLive, eq.stats().live + 1);

    const std::uint64_t ran = eq.drain();
    EXPECT_EQ(ran, keep.size());
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.executed(), ran);

    // Every cancelled id is stale now; cancelling again is a no-op.
    (void)cancelled;
    for (EventId id : keep)
        eq.cancel(id);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, RunUntilSkipsStaleTopWithoutOvershooting)
{
    // A cancelled earlier event must not let runUntil execute a live
    // later event beyond the horizon.
    EventQueue eq;
    int count = 0;
    const EventId early = eq.schedule(50, [&] { ++count; });
    eq.schedule(70, [&] { ++count; });
    eq.cancel(early);
    eq.runUntil(60);
    EXPECT_EQ(count, 0);
    EXPECT_EQ(eq.now(), 60);
    eq.runUntil(80);
    EXPECT_EQ(count, 1);
}

TEST(EventQueueDeathTest, EmptyStdFunctionPanicsAtScheduleTime)
{
    EventQueue eq;
    std::function<void()> empty;
    EXPECT_DEATH(eq.schedule(10, empty), "null event callback");
}

TEST(EventQueueDeathTest, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.drain();
    ASSERT_EQ(eq.now(), 10);
    EXPECT_DEATH(eq.schedule(5, [] {}), "past");
}

} // namespace
} // namespace neon
