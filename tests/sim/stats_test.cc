/**
 * @file
 * Unit tests for accumulators and log2 histograms.
 */

#include <gtest/gtest.h>

#include "sim/stats.hh"

namespace neon
{
namespace
{

TEST(Accum, EmptyIsZero)
{
    Accum a;
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.stddev(), 0.0);
}

TEST(Accum, BasicMoments)
{
    Accum a;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        a.add(v);
    EXPECT_EQ(a.count(), 8u);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    EXPECT_DOUBLE_EQ(a.minimum(), 2.0);
    EXPECT_DOUBLE_EQ(a.maximum(), 9.0);
    EXPECT_NEAR(a.stddev(), 2.138, 0.01); // sample stddev
}

TEST(Accum, MergeMatchesCombinedStream)
{
    Accum a, b, all;
    for (int i = 0; i < 50; ++i) {
        double v = 0.37 * i;
        (i % 2 ? a : b).add(v);
        all.add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_DOUBLE_EQ(a.total(), all.total());
    EXPECT_DOUBLE_EQ(a.minimum(), all.minimum());
    EXPECT_DOUBLE_EQ(a.maximum(), all.maximum());
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(Accum, VarianceIsStableUnderLargeOffset)
{
    // Microsecond-scale spread riding on a huge mean: the old
    // sum/sum-of-squares formulation cancelled catastrophically here
    // (sumSq ~ 1e18 vs. a true variance of 1), Welford's recurrence
    // does not.
    const double offset = 1e9;
    Accum a;
    for (double v : {0.0, 1.0, 2.0})
        a.add(offset + v);
    EXPECT_NEAR(a.mean(), offset + 1.0, 1e-3);
    EXPECT_NEAR(a.variance(), 1.0, 1e-6);
    EXPECT_NEAR(a.stddev(), 1.0, 1e-6);
}

TEST(Accum, MergeIsStableUnderLargeOffset)
{
    const double offset = 4e9;
    Accum a, b, all;
    for (int i = 0; i < 20; ++i) {
        const double v = offset + i;
        (i < 10 ? a : b).add(v);
        all.add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-3);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
    EXPECT_NEAR(all.variance(), 35.0, 1e-6); // var of 0..19, n-1 form
}

TEST(Accum, MergeIntoEmptyAndFromEmpty)
{
    Accum a, b;
    b.add(3.0);
    b.add(5.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 4.0);

    Accum empty;
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 4.0);
}

TEST(Accum, ResetClears)
{
    Accum a;
    a.add(5.0);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
}

TEST(Log2Histogram, BinPlacement)
{
    Log2Histogram h(10);
    h.add(0.5);  // bin 0 (sub-microsecond)
    h.add(1.0);  // bin 0
    h.add(2.0);  // bin 1
    h.add(3.9);  // bin 1
    h.add(4.0);  // bin 2
    h.add(1023); // bin 9
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(1), 2u);
    EXPECT_EQ(h.binCount(2), 1u);
    EXPECT_EQ(h.binCount(9), 1u);
    EXPECT_EQ(h.total(), 6u);
}

TEST(Log2Histogram, ClampsToMaxBin)
{
    Log2Histogram h(4);
    h.add(1e9);
    EXPECT_EQ(h.binCount(4), 1u);
}

TEST(Log2Histogram, CdfIsMonotoneAndEndsAt100)
{
    Log2Histogram h(10);
    for (double v : {1.0, 3.0, 9.0, 80.0, 500.0})
        h.add(v);
    double prev = 0.0;
    for (unsigned b = 0; b <= h.maxBin(); ++b) {
        double c = h.cdfPercent(b);
        EXPECT_GE(c, prev);
        prev = c;
    }
    EXPECT_DOUBLE_EQ(h.cdfPercent(h.maxBin()), 100.0);
}

TEST(Log2Histogram, EmptyCdfIsZero)
{
    Log2Histogram h(5);
    EXPECT_DOUBLE_EQ(h.cdfPercent(5), 0.0);
}

} // namespace
} // namespace neon
