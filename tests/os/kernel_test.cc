/**
 * @file
 * Unit tests for the kernel module: interception, parking, kill
 * protocol, and the Section 6.3 channel-allocation policy.
 */

#include <gtest/gtest.h>

#include "gpu/device.hh"
#include "os/kernel.hh"
#include "os/scheduler.hh"
#include "sim/event_queue.hh"

namespace neon
{
namespace
{

/** Scriptable policy for exercising the kernel's fault plumbing. */
class ScriptedScheduler : public Scheduler
{
  public:
    explicit ScriptedScheduler(KernelModule &k) : Scheduler(k) {}

    std::string name() const override { return "scripted"; }

    void
    onChannelActive(Channel &c) override
    {
        ++activations;
        if (unprotectOnActive)
            kernel.unprotectChannel(c);
    }

    FaultDecision
    onSubmitFault(Task &, Channel &, const GpuRequest &) override
    {
        ++faults;
        return decision;
    }

    bool unprotectOnActive = true;
    FaultDecision decision = FaultDecision::Allow;
    int faults = 0;
    int activations = 0;
};

struct KernelFixture : public ::testing::Test
{
    EventQueue eq;
    UsageMeter meter;
    DeviceConfig dcfg;
    CostModel costs;
    ChannelPolicy policy;
    std::unique_ptr<GpuDevice> dev;
    std::unique_ptr<KernelModule> kernel;
    std::unique_ptr<ScriptedScheduler> sched;

    void
    build()
    {
        dev = std::make_unique<GpuDevice>(eq, dcfg, meter);
        kernel = std::make_unique<KernelModule>(eq, *dev, costs, policy);
        sched = std::make_unique<ScriptedScheduler>(*kernel);
        kernel->setScheduler(sched.get());
    }
};

Co
loopBody(Task &t, Tick service, int rounds)
{
    Channel *c = co_await t.openChannel(RequestClass::Compute);
    if (!c)
        co_return;
    for (int i = 0; i < rounds; ++i) {
        t.beginRound();
        const std::uint64_t ref =
            co_await t.submit(*c, RequestClass::Compute, service);
        co_await t.waitRef(*c, ref);
        t.endRound();
    }
}

TEST_F(KernelFixture, DirectWriteBypassesScheduler)
{
    build();
    Task task(*kernel, "app");
    kernel->startTask(task, loopBody(task, usec(10), 3));
    kernel->start();
    eq.runFor(msec(200));

    EXPECT_EQ(sched->faults, 0);
    EXPECT_EQ(task.roundTimes().count(), 3u);
    // Channels stay allocated after the body finishes (until teardown).
    EXPECT_EQ(task.channels().size(), 1u);
}

TEST_F(KernelFixture, ProtectedWriteFaultsIntoScheduler)
{
    build();
    sched->unprotectOnActive = false; // stay engaged
    Task task(*kernel, "app");
    kernel->startTask(task, loopBody(task, usec(10), 3));
    kernel->start();
    eq.runFor(msec(200));

    EXPECT_EQ(sched->faults, 3);
    EXPECT_EQ(task.roundTimes().count(), 3u);
}

TEST_F(KernelFixture, InterceptionCostsSlowTheSubmitter)
{
    double direct_round = 0.0;
    double engaged_round = 0.0;

    {
        build();
        Task direct_task(*kernel, "direct");
        kernel->startTask(direct_task,
                          loopBody(direct_task, usec(10), 50));
        kernel->start();
        eq.runFor(msec(200));
        direct_round = direct_task.roundTimes().mean();
    }

    // Fresh world (the task above is gone before the rebuild), engaged.
    {
        build();
        sched->unprotectOnActive = false;
        Task engaged_task(*kernel, "engaged");
        kernel->startTask(engaged_task,
                          loopBody(engaged_task, usec(10), 50));
        kernel->start();
        eq.runFor(msec(200));
        engaged_round = engaged_task.roundTimes().mean();
    }

    EXPECT_NEAR(engaged_round - direct_round, toUsec(costs.faultBase),
                1.0);
}

TEST_F(KernelFixture, ParkedSubmissionWaitsForRelease)
{
    build();
    sched->unprotectOnActive = false;
    sched->decision = FaultDecision::Park;
    Task task(*kernel, "app");
    kernel->startTask(task, loopBody(task, usec(10), 1));
    kernel->start();
    eq.runUntil(msec(50));

    EXPECT_TRUE(kernel->hasParked(task));
    EXPECT_EQ(task.roundTimes().count(), 0u);
    EXPECT_EQ(kernel->parkedPids().size(), 1u);

    sched->decision = FaultDecision::Allow;
    kernel->releaseParked(task);
    eq.runFor(msec(200));
    EXPECT_FALSE(kernel->hasParked(task));
    EXPECT_EQ(task.roundTimes().count(), 1u);
    // The parked round includes the 50ms of delay.
    EXPECT_GT(task.roundTimes().mean(), 49000.0);
}

TEST_F(KernelFixture, KillTaskReclaimsEverything)
{
    build();
    Task task(*kernel, "victim");
    kernel->startTask(task, loopBody(task, maxTick, 1)); // never finishes
    kernel->start();
    eq.runUntil(msec(5));
    ASSERT_EQ(task.channels().size(), 1u);
    ASSERT_TRUE(dev->engineBusy(EngineKind::Execute));

    kernel->killTask(task, "test kill");
    eq.runFor(msec(200));

    EXPECT_TRUE(task.killed());
    EXPECT_TRUE(task.channels().empty());
    EXPECT_EQ(dev->channelsInUse(), 0u);
    EXPECT_FALSE(dev->engineBusy(EngineKind::Execute));
    EXPECT_EQ(kernel->activeChannels().size(), 0u);
    EXPECT_EQ(kernel->killCount(), 1u);
}

TEST_F(KernelFixture, KillIsIdempotent)
{
    build();
    Task task(*kernel, "victim");
    kernel->startTask(task, loopBody(task, maxTick, 1));
    kernel->start();
    eq.runUntil(msec(5));
    kernel->killTask(task, "first");
    kernel->killTask(task, "second");
    EXPECT_EQ(kernel->killCount(), 1u);
}

TEST_F(KernelFixture, ProtectAllEngagesEveryActiveChannel)
{
    build();
    Task a(*kernel, "a"), b(*kernel, "b");
    kernel->startTask(a, loopBody(a, usec(100), 1000));
    kernel->startTask(b, loopBody(b, usec(100), 1000));
    kernel->start();
    eq.runUntil(msec(2));

    for (Channel *c : kernel->activeChannels())
        EXPECT_TRUE(c->doorbell().present());
    kernel->protectAll();
    for (Channel *c : kernel->activeChannels())
        EXPECT_FALSE(c->doorbell().present());
}

TEST_F(KernelFixture, GpuTasksListsOnlyChannelOwners)
{
    build();
    Task a(*kernel, "a"), idle(*kernel, "idle");
    kernel->startTask(a, loopBody(a, usec(100), 1000));
    kernel->start();
    eq.runUntil(msec(2));

    auto gpu_tasks = kernel->gpuTasks();
    ASSERT_EQ(gpu_tasks.size(), 1u);
    EXPECT_EQ(gpu_tasks[0], &a);
    (void)idle;
}

// --------------------------------------------------------------------
// Section 6.3: channel-allocation protection policy.
// --------------------------------------------------------------------

Co
hogBody(Task &t, int want, int *got)
{
    for (int i = 0; i < want; ++i) {
        GpuContext *ctx = t.kernelRef().createContext(t);
        Channel *c = co_await t.openChannel(RequestClass::Compute, ctx);
        if (!c)
            co_return;
        ++*got;
    }
}

TEST_F(KernelFixture, UnprotectedAllocationAllowsExhaustion)
{
    dcfg.maxChannels = 8;
    build();
    Task hog(*kernel, "hog");
    int got = 0;
    kernel->startTask(hog, hogBody(hog, 100, &got));
    kernel->start();
    eq.runFor(msec(200));

    EXPECT_EQ(got, 8);
    EXPECT_EQ(hog.openResult, OpenResult::OutOfChannels);
    EXPECT_EQ(dev->freeChannels(), 0u);
}

TEST_F(KernelFixture, PolicyCapsPerTaskChannels)
{
    dcfg.maxChannels = 8;
    policy.protect = true;
    policy.perTaskLimit = 2;
    build();
    Task hog(*kernel, "hog");
    int got = 0;
    kernel->startTask(hog, hogBody(hog, 100, &got));
    kernel->start();
    eq.runFor(msec(200));

    EXPECT_EQ(got, 2);
    EXPECT_EQ(hog.openResult, OpenResult::PerTaskLimit);
    EXPECT_EQ(dev->freeChannels(), 6u);
}

TEST_F(KernelFixture, PolicyCapsConcurrentGpuUsers)
{
    dcfg.maxChannels = 4;
    policy.protect = true;
    policy.perTaskLimit = 2; // at most 4/2 = 2 concurrent users
    build();

    Task a(*kernel, "a"), b(*kernel, "b"), c(*kernel, "c");
    int got_a = 0, got_b = 0, got_c = 0;
    kernel->startTask(a, hogBody(a, 1, &got_a));
    kernel->startTask(b, hogBody(b, 1, &got_b));
    kernel->startTask(c, hogBody(c, 1, &got_c));
    kernel->start();
    eq.runFor(msec(200));

    EXPECT_EQ(got_a, 1);
    EXPECT_EQ(got_b, 1);
    EXPECT_EQ(got_c, 0);
    EXPECT_EQ(c.openResult, OpenResult::TooManyUsers);
}

} // namespace
} // namespace neon
