/**
 * @file
 * Unit tests for the initialization-phase channel tracker.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "os/channel_tracker.hh"

namespace neon
{
namespace
{

using State = ChannelTracker::ChannelState;

Vma
vma(VmaKind kind, int chan)
{
    return {kind, chan, 0x1000, 0x1000};
}

TEST(ChannelTracker, UntrackedByDefault)
{
    ChannelTracker t;
    EXPECT_EQ(t.state(1), State::Untracked);
    EXPECT_FALSE(t.isActive(1));
}

TEST(ChannelTracker, PartialUntilAllThreeVmas)
{
    ChannelTracker t;
    EXPECT_EQ(t.noteMmap(vma(VmaKind::CommandBuffer, 1)), State::Partial);
    EXPECT_EQ(t.noteMmap(vma(VmaKind::RingBuffer, 1)), State::Partial);
    EXPECT_EQ(t.noteMmap(vma(VmaKind::ChannelRegister, 1)), State::Active);
    EXPECT_TRUE(t.isActive(1));
}

TEST(ChannelTracker, AnyDiscoveryOrderActivates)
{
    std::vector<VmaKind> kinds = {VmaKind::CommandBuffer,
                                  VmaKind::RingBuffer,
                                  VmaKind::ChannelRegister};
    std::sort(kinds.begin(), kinds.end());
    int permutation = 0;
    do {
        ChannelTracker t;
        t.noteMmap(vma(kinds[0], 1));
        EXPECT_FALSE(t.isActive(1));
        t.noteMmap(vma(kinds[1], 1));
        EXPECT_FALSE(t.isActive(1));
        t.noteMmap(vma(kinds[2], 1));
        EXPECT_TRUE(t.isActive(1)) << "permutation " << permutation;
        ++permutation;
    } while (std::next_permutation(kinds.begin(), kinds.end()));
    EXPECT_EQ(permutation, 6);
}

TEST(ChannelTracker, DuplicateMmapsAreIdempotent)
{
    ChannelTracker t;
    t.noteMmap(vma(VmaKind::CommandBuffer, 1));
    t.noteMmap(vma(VmaKind::CommandBuffer, 1));
    EXPECT_EQ(t.state(1), State::Partial);
}

TEST(ChannelTracker, ChannelsTrackIndependently)
{
    ChannelTracker t;
    t.noteMmap(vma(VmaKind::CommandBuffer, 1));
    t.noteMmap(vma(VmaKind::RingBuffer, 1));
    t.noteMmap(vma(VmaKind::ChannelRegister, 1));
    t.noteMmap(vma(VmaKind::CommandBuffer, 2));
    EXPECT_TRUE(t.isActive(1));
    EXPECT_EQ(t.state(2), State::Partial);
    EXPECT_EQ(t.trackedCount(), 2u);
}

TEST(ChannelTracker, ForgetResetsChannel)
{
    ChannelTracker t;
    t.noteMmap(vma(VmaKind::CommandBuffer, 1));
    t.noteMmap(vma(VmaKind::RingBuffer, 1));
    t.noteMmap(vma(VmaKind::ChannelRegister, 1));
    t.forget(1);
    EXPECT_EQ(t.state(1), State::Untracked);
    EXPECT_EQ(t.trackedCount(), 0u);
}

TEST(AddressSpace, FindAndRemove)
{
    AddressSpace as;
    as.addVma(VmaKind::CommandBuffer, 1, 0x1000, 0x4000);
    as.addVma(VmaKind::RingBuffer, 1, 0x5000, 0x1000);
    as.addVma(VmaKind::CommandBuffer, 2, 0x9000, 0x4000);

    ASSERT_NE(as.find(1, VmaKind::CommandBuffer), nullptr);
    EXPECT_EQ(as.find(1, VmaKind::CommandBuffer)->base, 0x1000u);
    EXPECT_EQ(as.find(1, VmaKind::ChannelRegister), nullptr);

    as.removeChannel(1);
    EXPECT_EQ(as.find(1, VmaKind::CommandBuffer), nullptr);
    EXPECT_EQ(as.size(), 1u);
}

} // namespace
} // namespace neon
