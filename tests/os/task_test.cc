/**
 * @file
 * Unit tests for Task: channel opening, submission, user-space
 * completion spinning, round accounting.
 */

#include <gtest/gtest.h>

#include "gpu/device.hh"
#include "os/kernel.hh"
#include "sched/direct.hh"
#include "sim/event_queue.hh"

namespace neon
{
namespace
{

struct TaskFixture : public ::testing::Test
{
    EventQueue eq;
    UsageMeter meter;
    DeviceConfig dcfg;
    CostModel costs;
    std::unique_ptr<GpuDevice> dev;
    std::unique_ptr<KernelModule> kernel;
    std::unique_ptr<DirectScheduler> sched;

    void
    build()
    {
        dev = std::make_unique<GpuDevice>(eq, dcfg, meter);
        kernel = std::make_unique<KernelModule>(eq, *dev, costs);
        sched = std::make_unique<DirectScheduler>(*kernel);
        kernel->setScheduler(sched.get());
    }
};

Co
oneShotBody(Task &t, Tick service, bool *done)
{
    Channel *c = co_await t.openChannel(RequestClass::Compute);
    if (!c)
        co_return; // *done stays false; the test will notice

    t.beginRound();
    const std::uint64_t ref =
        co_await t.submit(*c, RequestClass::Compute, service);
    co_await t.waitRef(*c, ref);
    t.endRound();
    *done = true;
}

TEST_F(TaskFixture, SubmitAndSpinCompletes)
{
    build();
    Task task(*kernel, "app");
    bool done = false;
    kernel->startTask(task, oneShotBody(task, usec(100), &done));
    kernel->start();
    eq.runUntil(msec(10));

    EXPECT_TRUE(done);
    EXPECT_TRUE(task.done());
    EXPECT_EQ(task.roundTimes().count(), 1u);
    // Round = doorbell write + service (plus sub-us rounding).
    EXPECT_NEAR(task.roundTimes().mean(), 100.1, 0.5);
}

TEST_F(TaskFixture, PidsAreUnique)
{
    build();
    Task a(*kernel, "a"), b(*kernel, "b"), c(*kernel, "c");
    EXPECT_NE(a.pid(), b.pid());
    EXPECT_NE(b.pid(), c.pid());
    EXPECT_EQ(kernel->tasks().size(), 3u);
}

TEST_F(TaskFixture, FindTaskByPid)
{
    build();
    Task a(*kernel, "a");
    EXPECT_EQ(kernel->findTask(a.pid()), &a);
    EXPECT_EQ(kernel->findTask(9999), nullptr);
}

Co
openOnlyBody(Task &t, RequestClass cls, Channel **out)
{
    *out = co_await t.openChannel(cls);
}

TEST_F(TaskFixture, OpenChannelTakesSyscallTime)
{
    build();
    Task task(*kernel, "app");
    Channel *chan = nullptr;
    kernel->startTask(task, openOnlyBody(task, RequestClass::Compute,
                                         &chan));
    kernel->start();
    eq.runFor(msec(200));

    ASSERT_NE(chan, nullptr);
    EXPECT_EQ(task.openResult, OpenResult::Ok);
    EXPECT_GE(eq.now(), costs.syscallEntry + costs.channelOpen);
    // The tracker saw all three VMAs and activated the channel.
    EXPECT_TRUE(kernel->tracker().isActive(chan->id()));
    EXPECT_EQ(kernel->activeChannels().size(), 1u);
}

TEST_F(TaskFixture, ChannelOwnershipRecorded)
{
    build();
    Task task(*kernel, "app");
    Channel *chan = nullptr;
    kernel->startTask(task, openOnlyBody(task, RequestClass::Compute,
                                         &chan));
    kernel->start();
    eq.runFor(msec(200));

    ASSERT_EQ(task.channels().size(), 1u);
    EXPECT_EQ(task.channels()[0], chan);
    EXPECT_EQ(chan->context().taskId(), task.pid());
}

Co
pipelinedBody(Task &t, int n, Tick service, Tick *finished)
{
    Channel *c = co_await t.openChannel(RequestClass::Compute);
    std::uint64_t last = 0;
    for (int i = 0; i < n; ++i)
        last = co_await t.submit(*c, RequestClass::Compute, service);
    co_await t.waitRef(*c, last);
    *finished = t.now();
}

TEST_F(TaskFixture, PipelinedSubmissionsOverlapOnDevice)
{
    build();
    Task task(*kernel, "app");
    Tick finished = 0;
    kernel->startTask(task, pipelinedBody(task, 5, usec(50), &finished));
    kernel->start();
    eq.runFor(msec(200));

    // 5 x 50us back-to-back on the device; CPU submission cost hides
    // under the first request's service.
    const Tick open_time = costs.syscallEntry + costs.channelOpen;
    EXPECT_GT(finished, open_time + usec(250));
    EXPECT_LT(finished, open_time + usec(253));
    EXPECT_TRUE(task.done());
}

TEST_F(TaskFixture, ResetStatsClearsRounds)
{
    build();
    Task task(*kernel, "app");
    bool done = false;
    kernel->startTask(task, oneShotBody(task, usec(10), &done));
    kernel->start();
    eq.runFor(msec(200));
    ASSERT_EQ(task.roundTimes().count(), 1u);
    task.resetStats();
    EXPECT_EQ(task.roundTimes().count(), 0u);
}

} // namespace
} // namespace neon
