/**
 * @file
 * Unit tests for the polling-thread service timing.
 */

#include <gtest/gtest.h>

#include <vector>

#include "os/polling_service.hh"

namespace neon
{
namespace
{

TEST(PollingService, PeriodicTicks)
{
    EventQueue eq;
    PollingService poll(eq, msec(1));
    std::vector<Tick> ticks;
    poll.onPoll = [&](Tick t) { ticks.push_back(t); };
    poll.start();
    eq.runUntil(msec(5) + 1);
    EXPECT_EQ(ticks.size(), 5u);
    EXPECT_EQ(ticks.front(), msec(1));
    EXPECT_EQ(ticks.back(), msec(5));
}

TEST(PollingService, StopCeasesTicks)
{
    EventQueue eq;
    PollingService poll(eq, msec(1));
    int count = 0;
    poll.onPoll = [&](Tick) { ++count; };
    poll.start();
    eq.runUntil(msec(3));
    poll.stop();
    eq.runUntil(msec(10));
    EXPECT_EQ(count, 3);
}

TEST(PollingService, PromptNowFiresImmediatelyAndResetsPhase)
{
    EventQueue eq;
    PollingService poll(eq, msec(1));
    std::vector<Tick> ticks;
    poll.onPoll = [&](Tick t) { ticks.push_back(t); };
    poll.start();

    eq.runUntil(usec(500));
    poll.promptNow();
    eq.runUntil(usec(500)); // run the prompted poll at t=500us
    ASSERT_EQ(ticks.size(), 1u);
    EXPECT_EQ(ticks[0], usec(500));

    // The next periodic tick is one full period after the prompt.
    eq.runUntil(usec(1500));
    ASSERT_EQ(ticks.size(), 2u);
    EXPECT_EQ(ticks[1], usec(1500));
}

TEST(PollingService, PromptBeforeStartIsIgnored)
{
    EventQueue eq;
    PollingService poll(eq, msec(1));
    int count = 0;
    poll.onPoll = [&](Tick) { ++count; };
    poll.promptNow();
    eq.runUntil(msec(2));
    EXPECT_EQ(count, 0);
}

TEST(PollingService, SetPeriodTakesEffectOnNextCycle)
{
    EventQueue eq;
    PollingService poll(eq, msec(1));
    std::vector<Tick> ticks;
    poll.onPoll = [&](Tick t) { ticks.push_back(t); };
    poll.start();
    eq.runUntil(msec(1));
    poll.setPeriod(msec(5));
    eq.runUntil(msec(11));
    ASSERT_EQ(ticks.size(), 3u);
    EXPECT_EQ(ticks[1], msec(6));
    EXPECT_EQ(ticks[2], msec(11));
}

TEST(PollingService, DoubleStartIsHarmless)
{
    EventQueue eq;
    PollingService poll(eq, msec(1));
    int count = 0;
    poll.onPoll = [&](Tick) { ++count; };
    poll.start();
    poll.start();
    eq.runUntil(msec(2));
    EXPECT_EQ(count, 2);
}

} // namespace
} // namespace neon
