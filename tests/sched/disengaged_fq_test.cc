/**
 * @file
 * Tests for Disengaged Fair Queueing: the engagement cycle, sampling
 * estimates, virtual-time maintenance, denial, and protection.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "sched/disengaged_fq.hh"
#include "workload/adversary.hh"

namespace neon
{
namespace
{

ExperimentConfig
dfqConfig()
{
    ExperimentConfig cfg;
    cfg.sched = SchedKind::DisengagedFq;
    cfg.measure = sec(2);
    return cfg;
}

TEST(DisengagedFq, EpisodesCycleThroughPhases)
{
    ExperimentConfig cfg = dfqConfig();
    World world(cfg);
    world.spawn(WorkloadSpec::throttle(usec(100)));
    world.start();
    world.runFor(msec(400));

    auto *dfq =
        dynamic_cast<DisengagedFairQueueing *>(world.sched.get());
    ASSERT_NE(dfq, nullptr);
    // ~25ms free run + short episode: several episodes in 400ms.
    EXPECT_GE(dfq->episodes(), 8u);
    EXPECT_LE(dfq->episodes(), 20u);
}

TEST(DisengagedFq, StandaloneFreeRunIs25Ms)
{
    ExperimentConfig cfg = dfqConfig();
    World world(cfg);
    world.spawn(WorkloadSpec::throttle(usec(100)));
    world.start();
    world.runFor(msec(400));

    auto *dfq =
        dynamic_cast<DisengagedFairQueueing *>(world.sched.get());
    EXPECT_EQ(dfq->currentFreeRun(), msec(25));
}

TEST(DisengagedFq, PairFreeRunIs50Ms)
{
    ExperimentConfig cfg = dfqConfig();
    World world(cfg);
    world.spawn(WorkloadSpec::throttle(usec(100)));
    world.spawn(WorkloadSpec::throttle(usec(430)));
    world.start();
    world.runFor(msec(400));

    auto *dfq =
        dynamic_cast<DisengagedFairQueueing *>(world.sched.get());
    EXPECT_EQ(dfq->currentFreeRun(), msec(50));
}

TEST(DisengagedFq, SamplingEstimatesRequestSize)
{
    ExperimentConfig cfg = dfqConfig();
    World world(cfg);
    Task &t = world.spawn(WorkloadSpec::throttle(usec(100)));
    world.start();
    world.runFor(msec(400));

    auto *dfq =
        dynamic_cast<DisengagedFairQueueing *>(world.sched.get());
    EXPECT_NEAR(toUsec(dfq->estSizeOf(t.pid())), 100.0, 10.0);
}

TEST(DisengagedFq, SamplingEstimatesDutyCycle)
{
    ExperimentConfig cfg = dfqConfig();
    World world(cfg);
    Task &busy = world.spawn(WorkloadSpec::throttle(usec(100)));
    Task &lazy = world.spawn(WorkloadSpec::throttle(usec(100), 0.8));
    world.start();
    world.runFor(sec(1));

    auto *dfq =
        dynamic_cast<DisengagedFairQueueing *>(world.sched.get());
    EXPECT_GT(dfq->dutyOf(busy.pid()), 0.85);
    EXPECT_LT(dfq->dutyOf(lazy.pid()), 0.5);
}

TEST(DisengagedFq, MostSubmissionsAreDirect)
{
    ExperimentConfig cfg = dfqConfig();
    World world(cfg);
    world.spawn(WorkloadSpec::throttle(usec(100)));
    world.start();
    world.runFor(sec(1));

    Channel *c = world.kernel.activeChannels()[0];
    // Faults only during sampling windows (~1/6 of the time at most).
    EXPECT_GT(c->doorbell().directWrites(),
              3 * c->doorbell().faults());
}

TEST(DisengagedFq, VirtualTimesEqualizeUnderContention)
{
    ExperimentConfig cfg = dfqConfig();
    World world(cfg);
    Task &small = world.spawn(WorkloadSpec::app("DCT"));
    Task &large = world.spawn(WorkloadSpec::throttle(usec(1700)));
    world.start();
    world.runFor(sec(3));

    auto *dfq =
        dynamic_cast<DisengagedFairQueueing *>(world.sched.get());
    const double vt_s = toMsec(dfq->vtimeOf(small.pid()));
    const double vt_l = toMsec(dfq->vtimeOf(large.pid()));

    // Imbalance is bounded by roughly the inter-engagement interval
    // plus one interval of estimation error.
    EXPECT_LT(std::abs(vt_s - vt_l),
              2.5 * toMsec(dfq->currentFreeRun()));

    // And both virtual times moved far beyond that bound.
    EXPECT_GT(vt_s, 4 * toMsec(dfq->currentFreeRun()));
}

TEST(DisengagedFq, AheadTaskGetsDeniedEventually)
{
    ExperimentConfig cfg = dfqConfig();
    World world(cfg);
    Task &small = world.spawn(WorkloadSpec::app("DCT"));
    Task &large = world.spawn(WorkloadSpec::throttle(usec(1700)));
    world.start();

    bool large_denied = false;
    bool small_denied = false;
    auto *dfq =
        dynamic_cast<DisengagedFairQueueing *>(world.sched.get());
    for (int i = 0; i < 200; ++i) {
        world.runFor(msec(10));
        large_denied |= dfq->isDenied(large.pid());
        small_denied |= dfq->isDenied(small.pid());
    }

    EXPECT_TRUE(large_denied);
    EXPECT_FALSE(small_denied);
}

TEST(DisengagedFq, FairSharingBetweenSaturatingTasks)
{
    ExperimentConfig cfg = dfqConfig();
    cfg.measure = sec(4);
    ExperimentRunner runner(cfg);

    const auto sd = runner.slowdowns({
        WorkloadSpec::app("DCT"),
        WorkloadSpec::throttle(usec(1700)),
    });

    EXPECT_NEAR(sd[0], 2.0, 0.45);
    EXPECT_NEAR(sd[1], 2.0, 0.45);
}

TEST(DisengagedFq, WorkConservingWithIdleCoRunner)
{
    // The sleeper leaves the device idle; DFQ lets the busy task use
    // it (unlike the timeslice policies).
    ExperimentConfig cfg = dfqConfig();
    cfg.measure = sec(3);
    ExperimentRunner runner(cfg);

    const auto sd = runner.slowdowns({
        WorkloadSpec::app("DCT"),
        WorkloadSpec::throttle(usec(1700), 0.8),
    });

    EXPECT_LT(sd[0], 1.6);  // DCT benefits from the sleeper's idleness
    EXPECT_LT(sd[1], 1.35); // and the sleeper barely suffers
}

TEST(DisengagedFq, SleeperDoesNotBankCredit)
{
    // After sleeping, a task may not monopolize the device to "catch
    // up": its virtual time was snapped forward while inactive.
    ExperimentConfig cfg = dfqConfig();
    World world(cfg);
    Task &busy = world.spawn(WorkloadSpec::throttle(usec(430)));
    Task &late = world.spawn(WorkloadSpec::custom(
        "late-starter", [](Task &t, std::uint64_t seed) {
            return throttleBody(t, {usec(430), 0.0, 0.02}, seed);
        }));
    world.start();
    world.runFor(sec(1));

    auto *dfq =
        dynamic_cast<DisengagedFairQueueing *>(world.sched.get());
    // Both contended from the start here; the invariant to check is
    // that nobody's virtual time sits below the system virtual time by
    // more than an interval (no banked credit).
    EXPECT_GE(toMsec(dfq->vtimeOf(busy.pid())),
              toMsec(dfq->systemVtime()) -
                  2.0 * toMsec(dfq->currentFreeRun()));
    EXPECT_GE(toMsec(dfq->vtimeOf(late.pid())),
              toMsec(dfq->systemVtime()) -
                  2.0 * toMsec(dfq->currentFreeRun()));
}

TEST(DisengagedFq, ProtectionKillsRunawayTask)
{
    ExperimentConfig cfg = dfqConfig();
    cfg.dfq.killThreshold = msec(100);
    ExperimentRunner runner(cfg);

    const RunResult r = runner.run({
        WorkloadSpec::custom("malicious",
                             [](Task &t, std::uint64_t) {
                                 return infiniteKernelBody(t, 3,
                                                           usec(100));
                             }),
        WorkloadSpec::throttle(usec(100)),
    });

    EXPECT_EQ(r.kills, 1u);
    EXPECT_TRUE(r.tasks[0].killed);
    EXPECT_GT(r.tasks[1].rounds, 10000u);
}

TEST(DisengagedFq, CountTimesSizeAttributionAlsoFair)
{
    ExperimentConfig cfg = dfqConfig();
    cfg.dfq.attribution = DfqConfig::Attribution::CountTimesSize;
    cfg.measure = sec(4);
    ExperimentRunner runner(cfg);

    const auto sd = runner.slowdowns({
        WorkloadSpec::app("DCT"),
        WorkloadSpec::throttle(usec(1700)),
    });

    EXPECT_NEAR(sd[0], 2.0, 0.45);
    EXPECT_NEAR(sd[1], 2.0, 0.45);
}

TEST(DisengagedFq, GlxgearsAnomalyUnderShareAttribution)
{
    // Paper Section 5.3: glxgears' requests complete at a fraction of
    // the compute co-runner's rate during free runs, the size-share
    // estimate overcharges it, and the lighter task (gears needs only
    // ~half the device) ends up suffering at least as much as the
    // saturating Throttle instead of being favored.
    ExperimentConfig cfg = dfqConfig();
    cfg.measure = sec(4);
    ExperimentRunner runner(cfg);

    const auto sd = runner.slowdowns({
        WorkloadSpec::app("glxgears"),
        WorkloadSpec::throttle(usec(19)),
    });

    // glxgears needs only ~half the device, so a perfectly informed
    // scheduler would hold it well under 2x; the size-share estimate
    // overcharges it into denial instead.
    EXPECT_GT(sd[0], 2.0);
}

TEST(DisengagedFq, VendorStatisticsFixTheGlxgearsAnomaly)
{
    // With vendor-exported per-context busy counters (the Section 6.1
    // world), the overcharge disappears and the light graphics task is
    // treated according to its true usage.
    ExperimentConfig cfg = dfqConfig();
    cfg.measure = sec(4);

    ExperimentRunner share(cfg);
    const auto sd_share = share.slowdowns({
        WorkloadSpec::app("glxgears"),
        WorkloadSpec::throttle(usec(19)),
    });

    cfg.dfq.attribution = DfqConfig::Attribution::DeviceCounters;
    ExperimentRunner vendor(cfg);
    const auto sd_vendor = vendor.slowdowns({
        WorkloadSpec::app("glxgears"),
        WorkloadSpec::throttle(usec(19)),
    });

    EXPECT_LT(sd_vendor[0], sd_share[0] - 0.2);
}

} // namespace
} // namespace neon
