/**
 * @file
 * Tests for the engaged (classic) start-time fair queueing baseline.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "sched/engaged_fq.hh"
#include "workload/adversary.hh"

namespace neon
{
namespace
{

ExperimentConfig
efqConfig()
{
    ExperimentConfig cfg;
    cfg.sched = SchedKind::EngagedFq;
    cfg.measure = sec(2);
    return cfg;
}

TEST(EngagedFq, EverySubmissionFaults)
{
    ExperimentConfig cfg = efqConfig();
    World world(cfg);
    world.spawn(WorkloadSpec::throttle(usec(100)));
    world.start();
    world.runFor(msec(100));

    Channel *c = world.kernel.activeChannels()[0];
    EXPECT_EQ(c->doorbell().directWrites(), 0u);
    EXPECT_GT(c->doorbell().faults(), 100u);
}

TEST(EngagedFq, FairSharingSmallVsLarge)
{
    ExperimentConfig cfg = efqConfig();
    ExperimentRunner runner(cfg);

    const auto sd = runner.slowdowns({
        WorkloadSpec::throttle(usec(100)),
        WorkloadSpec::throttle(usec(1700)),
    });

    // Start-tag ordering equalizes device time: the small-request task
    // gets one request per large request... but tags, not counts,
    // decide: both around 2x.
    EXPECT_NEAR(sd[0], 2.0, 0.6);
    EXPECT_NEAR(sd[1], 2.0, 0.6);
}

TEST(EngagedFq, SizeEstimateConverges)
{
    ExperimentConfig cfg = efqConfig();
    World world(cfg);
    world.spawn(WorkloadSpec::throttle(usec(430)));
    world.start();
    world.runFor(sec(1));

    auto *efq =
        dynamic_cast<EngagedFairQueueing *>(world.sched.get());
    ASSERT_NE(efq, nullptr);
    // finish tags advance by ~estimate per request; estimate itself is
    // internal, but the system virtual time tracks real usage.
    EXPECT_GT(toMsec(efq->systemVtime()), 500.0);
}

TEST(EngagedFq, PerRequestOverheadExceedsDisengagedFq)
{
    const WorkloadSpec w = WorkloadSpec::throttle(usec(19));

    ExperimentConfig e = efqConfig();
    ExperimentConfig d = efqConfig();
    d.sched = SchedKind::DisengagedFq;

    ExperimentRunner er(e), dr(d);
    const double solo = er.soloRoundUs(w);
    const double efq_round = er.run({w}).tasks[0].meanRoundUs;
    const double dfq_round = dr.run({w}).tasks[0].meanRoundUs;

    const double efq_overhead = efq_round / solo - 1.0;
    const double dfq_overhead = dfq_round / solo - 1.0;
    // This is exactly what disengagement buys on small requests.
    EXPECT_GT(efq_overhead, 3.0 * dfq_overhead);
}

TEST(EngagedFq, KillsStuckRequest)
{
    ExperimentConfig cfg = efqConfig();
    cfg.engagedFq.killThreshold = msec(100);
    ExperimentRunner runner(cfg);

    const RunResult r = runner.run({
        WorkloadSpec::custom("malicious",
                             [](Task &t, std::uint64_t) {
                                 return infiniteKernelBody(t, 3,
                                                           usec(100));
                             }),
        WorkloadSpec::throttle(usec(100)),
    });

    EXPECT_EQ(r.kills, 1u);
    EXPECT_GT(r.tasks[1].rounds, 5000u);
}

} // namespace
} // namespace neon
