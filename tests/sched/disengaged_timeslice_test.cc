/**
 * @file
 * Tests for Disengaged Timeslice: direct access for the token holder,
 * interception only at slice edges.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "sched/disengaged_timeslice.hh"
#include "workload/adversary.hh"

namespace neon
{
namespace
{

ExperimentConfig
dtsConfig()
{
    ExperimentConfig cfg;
    cfg.sched = SchedKind::DisengagedTimeslice;
    cfg.measure = sec(2);
    return cfg;
}

TEST(DisengagedTimeslice, HolderRunsUnprotected)
{
    ExperimentConfig cfg = dtsConfig();
    World world(cfg);
    Task &t = world.spawn(WorkloadSpec::throttle(usec(100)));
    world.start();
    world.runFor(msec(10));

    auto *dts = dynamic_cast<DisengagedTimeslice *>(world.sched.get());
    ASSERT_NE(dts, nullptr);
    ASSERT_EQ(dts->holder(), &t);
    for (Channel *c : world.kernel.activeChannels())
        EXPECT_TRUE(c->doorbell().present());
}

TEST(DisengagedTimeslice, NonHolderStaysProtectedAndParks)
{
    ExperimentConfig cfg = dtsConfig();
    World world(cfg);
    Task &a = world.spawn(WorkloadSpec::throttle(usec(100)));
    Task &b = world.spawn(WorkloadSpec::throttle(usec(100)));
    world.start();
    world.runFor(msec(10));

    auto *dts = dynamic_cast<DisengagedTimeslice *>(world.sched.get());
    ASSERT_NE(dts, nullptr);
    const Task *holder = dts->holder();
    ASSERT_NE(holder, nullptr);
    Task &other = (holder == &a) ? b : a;

    // The non-holder blocked on its first submission.
    EXPECT_TRUE(world.kernel.hasParked(other));
    for (Channel *c : other.channels())
        EXPECT_FALSE(c->doorbell().present());
}

TEST(DisengagedTimeslice, MostSubmissionsAreDirect)
{
    ExperimentConfig cfg = dtsConfig();
    World world(cfg);
    world.spawn(WorkloadSpec::throttle(usec(100)));
    world.start();
    world.runFor(sec(1));

    ASSERT_EQ(world.kernel.activeChannels().size(), 1u);
    Channel *c = world.kernel.activeChannels()[0];
    // Solo holder: virtually everything goes straight to the device;
    // only slice-edge drains intercept the odd submission.
    EXPECT_GT(c->doorbell().directWrites(),
              50 * c->doorbell().faults());
}

TEST(DisengagedTimeslice, StandaloneOverheadIsSmall)
{
    ExperimentConfig cfg = dtsConfig();
    ExperimentRunner runner(cfg);

    for (Tick size : {usec(19), usec(100), usec(430)}) {
        const WorkloadSpec w = WorkloadSpec::throttle(size);
        const double solo_direct = runner.soloRoundUs(w);
        const RunResult r = runner.run({w});
        const double slowdown = r.tasks[0].meanRoundUs / solo_direct;
        // Paper: generally no more than 2%; allow a little slack.
        EXPECT_LT(slowdown, 1.04) << "request size " << toUsec(size);
    }
}

TEST(DisengagedTimeslice, FairSharingBetweenSaturatingTasks)
{
    ExperimentConfig cfg = dtsConfig();
    ExperimentRunner runner(cfg);

    const auto sd = runner.slowdowns({
        WorkloadSpec::app("FFT"),
        WorkloadSpec::throttle(usec(430)),
    });

    // Paper: an almost uniform 2x for each co-runner.
    EXPECT_NEAR(sd[0], 2.0, 0.35);
    EXPECT_NEAR(sd[1], 2.0, 0.35);
}

TEST(DisengagedTimeslice, OveruseControlStillApplies)
{
    ExperimentConfig cfg = dtsConfig();
    cfg.measure = sec(3);

    World world(cfg);
    world.spawn(WorkloadSpec::throttle(msec(27)));
    world.spawn(WorkloadSpec::throttle(usec(500)));
    world.start();
    world.runFor(cfg.warmup);
    world.beginMeasurement();
    world.runFor(cfg.measure);
    RunResult r = world.results();

    const double share0 = toSec(r.tasks[0].gpuBusy);
    const double share1 = toSec(r.tasks[1].gpuBusy);
    EXPECT_NEAR(share0 / (share0 + share1), 0.5, 0.12);
}

TEST(DisengagedTimeslice, ProtectionKillsRunawayTask)
{
    ExperimentConfig cfg = dtsConfig();
    cfg.timeslice.killThreshold = msec(100);
    ExperimentRunner runner(cfg);

    const RunResult r = runner.run({
        WorkloadSpec::custom("malicious",
                             [](Task &t, std::uint64_t) {
                                 return infiniteKernelBody(t, 3,
                                                           usec(100));
                             }),
        WorkloadSpec::throttle(usec(100)),
    });

    EXPECT_EQ(r.kills, 1u);
    EXPECT_GT(r.tasks[1].rounds, 10000u);
}

TEST(DisengagedTimeslice, EfficiencyBeatsEngagedTimeslice)
{
    // Small-request co-runners: the engaged variant pays per-request
    // interception, the disengaged one does not.
    const std::vector<WorkloadSpec> duo = {
        WorkloadSpec::app("FFT"),
        WorkloadSpec::throttle(usec(19)),
    };

    ExperimentConfig engaged = dtsConfig();
    engaged.sched = SchedKind::Timeslice;
    ExperimentConfig disengaged = dtsConfig();

    const auto sd_e = ExperimentRunner(engaged).slowdowns(duo);
    const auto sd_d = ExperimentRunner(disengaged).slowdowns(duo);

    const double eff_e = 1.0 / sd_e[0] + 1.0 / sd_e[1];
    const double eff_d = 1.0 / sd_d[0] + 1.0 / sd_d[1];
    EXPECT_GT(eff_d, eff_e + 0.05);
}

} // namespace
} // namespace neon
