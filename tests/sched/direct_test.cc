/**
 * @file
 * Tests for the direct-access baseline: maximal efficiency, zero
 * management, and the unfairness that motivates the paper.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "workload/adversary.hh"

namespace neon
{
namespace
{

TEST(DirectScheduler, ChannelsRunUnprotected)
{
    ExperimentConfig cfg;
    cfg.measure = msec(200);

    World world(cfg);
    world.spawn(WorkloadSpec::throttle(usec(100)));
    world.start();
    world.runFor(msec(50));

    ASSERT_EQ(world.kernel.activeChannels().size(), 1u);
    Channel *c = world.kernel.activeChannels()[0];
    EXPECT_TRUE(c->doorbell().present());
    EXPECT_GT(c->doorbell().directWrites(), 100u);
    EXPECT_EQ(c->doorbell().faults(), 0u);
}

TEST(DirectScheduler, StandaloneThroughputMatchesRequestRate)
{
    ExperimentConfig cfg;
    cfg.measure = sec(1);
    ExperimentRunner runner(cfg);

    const RunResult r = runner.run({WorkloadSpec::throttle(usec(100))});
    // Blocking 100us requests back-to-back: ~10k rounds/s.
    EXPECT_NEAR(static_cast<double>(r.tasks[0].rounds), 10000.0, 300.0);
    EXPECT_NEAR(r.tasks[0].meanRoundUs, 100.2, 1.0);
}

TEST(DirectScheduler, WorkConservingUnderContention)
{
    ExperimentConfig cfg;
    cfg.measure = sec(1);
    ExperimentRunner runner(cfg);

    const RunResult r = runner.run({
        WorkloadSpec::throttle(usec(100)),
        WorkloadSpec::throttle(usec(100)),
    });
    // Two saturating tasks: the device is busy nearly all the time.
    EXPECT_GT(toSec(r.deviceBusy) / toSec(r.elapsed), 0.9);
}

TEST(DirectScheduler, LargeRequestsCrushSmallOnes)
{
    ExperimentConfig cfg;
    cfg.measure = sec(2);
    ExperimentRunner runner(cfg);

    const auto sd = runner.slowdowns({
        WorkloadSpec::app("DCT"),
        WorkloadSpec::throttle(usec(1700)),
    });

    // The paper's headline unfairness: round-robin by request gives the
    // large-request app nearly everything.
    EXPECT_GT(sd[0], 10.0);
    EXPECT_LT(sd[1], 1.3);
}

TEST(DirectScheduler, NoProtectionAgainstInfiniteKernels)
{
    ExperimentConfig cfg;
    cfg.measure = msec(500);
    ExperimentRunner runner(cfg);

    const RunResult r = runner.run({
        WorkloadSpec::custom("malicious",
                             [](Task &t, std::uint64_t) {
                                 return infiniteKernelBody(t, 3,
                                                           usec(100));
                             }),
        WorkloadSpec::throttle(usec(100)),
    });

    // Nobody is killed, and the victim makes no progress once the
    // infinite kernel lands.
    EXPECT_EQ(r.kills, 0u);
    EXPECT_LT(r.tasks[1].rounds, 20u);
}

} // namespace
} // namespace neon
