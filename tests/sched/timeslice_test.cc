/**
 * @file
 * Tests for the engaged Timeslice scheduler with overuse control.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "sched/timeslice.hh"
#include "workload/adversary.hh"

namespace neon
{
namespace
{

ExperimentConfig
tsConfig()
{
    ExperimentConfig cfg;
    cfg.sched = SchedKind::Timeslice;
    cfg.measure = sec(2);
    return cfg;
}

TEST(Timeslice, EverySubmissionIsIntercepted)
{
    ExperimentConfig cfg = tsConfig();
    World world(cfg);
    world.spawn(WorkloadSpec::throttle(usec(100)));
    world.start();
    world.runFor(msec(100));

    ASSERT_EQ(world.kernel.activeChannels().size(), 1u);
    Channel *c = world.kernel.activeChannels()[0];
    EXPECT_FALSE(c->doorbell().present());
    EXPECT_GT(c->doorbell().faults(), 100u);
    EXPECT_EQ(c->doorbell().directWrites(), 0u);
}

TEST(Timeslice, SoloTaskHoldsTheToken)
{
    ExperimentConfig cfg = tsConfig();
    World world(cfg);
    Task &t = world.spawn(WorkloadSpec::throttle(usec(100)));
    world.start();
    world.runFor(msec(100));

    auto *ts = dynamic_cast<TimesliceScheduler *>(world.sched.get());
    ASSERT_NE(ts, nullptr);
    EXPECT_EQ(ts->holder(), &t);
}

TEST(Timeslice, PerRequestOverheadSlowsSmallRequests)
{
    ExperimentConfig cfg = tsConfig();
    ExperimentRunner runner(cfg);

    const WorkloadSpec w = WorkloadSpec::throttle(usec(19));
    const double solo_direct = runner.soloRoundUs(w);
    const RunResult r = runner.run({w});
    const double slowdown = r.tasks[0].meanRoundUs / solo_direct;

    // Fault cost (~9us) on a 19us request: a significant hit.
    EXPECT_GT(slowdown, 1.3);
    EXPECT_LT(slowdown, 1.8);
}

TEST(Timeslice, FairSharingBetweenSaturatingTasks)
{
    ExperimentConfig cfg = tsConfig();
    ExperimentRunner runner(cfg);

    const auto sd = runner.slowdowns({
        WorkloadSpec::app("DCT"),
        WorkloadSpec::throttle(usec(430)),
    });

    EXPECT_NEAR(sd[0], 2.0, 0.5);
    EXPECT_NEAR(sd[1], 2.0, 0.5);
}

TEST(Timeslice, NotWorkConservingAcrossIdleSlices)
{
    // A sleeper wastes most of its slice; the co-runner cannot use it.
    ExperimentConfig cfg = tsConfig();
    ExperimentRunner runner(cfg);

    const auto sd = runner.slowdowns({
        WorkloadSpec::app("DCT"),
        WorkloadSpec::throttle(usec(1700), 0.8),
    });

    // DCT is confined to its own slices: full 2x despite the idle GPU
    // in the sleeper's slices.
    EXPECT_GT(sd[0], 1.7);
}

TEST(Timeslice, OveruseIsChargedAndTurnsAreSkipped)
{
    // The paper's adversary: requests of 0.9 timeslice, overrunning
    // every slice edge. Overuse control must keep sharing fair.
    ExperimentConfig cfg = tsConfig();
    cfg.timeslice.slice = msec(30);
    cfg.measure = sec(3);

    World world(cfg);
    world.spawn(WorkloadSpec::throttle(msec(27)));
    world.spawn(WorkloadSpec::throttle(usec(500)));
    world.start();
    world.runFor(cfg.warmup);
    world.beginMeasurement();
    world.runFor(cfg.measure);
    RunResult r = world.results();

    auto *ts = dynamic_cast<TimesliceScheduler *>(world.sched.get());
    ASSERT_NE(ts, nullptr);
    EXPECT_GT(ts->skips(), 5u);

    // Device time split roughly evenly despite the overruns.
    const double share0 = toSec(r.tasks[0].gpuBusy);
    const double share1 = toSec(r.tasks[1].gpuBusy);
    EXPECT_NEAR(share0 / (share0 + share1), 0.5, 0.12);
}

TEST(Timeslice, InfiniteKernelGetsKilledAndVictimRecovers)
{
    ExperimentConfig cfg = tsConfig();
    cfg.timeslice.killThreshold = msec(100);
    cfg.measure = sec(2);
    ExperimentRunner runner(cfg);

    const RunResult r = runner.run({
        WorkloadSpec::custom("malicious",
                             [](Task &t, std::uint64_t) {
                                 return infiniteKernelBody(t, 3,
                                                           usec(100));
                             }),
        WorkloadSpec::throttle(usec(100)),
    });

    EXPECT_EQ(r.kills, 1u);
    EXPECT_TRUE(r.tasks[0].killed);
    // The victim ends up with most of the measurement window.
    EXPECT_GT(r.tasks[1].rounds, 10000u);
}

TEST(Timeslice, TokenRotatesAmongThreeTasks)
{
    ExperimentConfig cfg = tsConfig();
    cfg.measure = sec(3);
    ExperimentRunner runner(cfg);

    const RunResult r = runner.run({
        WorkloadSpec::throttle(usec(200)),
        WorkloadSpec::throttle(usec(200)),
        WorkloadSpec::throttle(usec(200)),
    });

    // Everyone progresses at roughly a third of solo speed.
    for (const auto &t : r.tasks) {
        const double sd = t.meanRoundUs / 200.5;
        EXPECT_NEAR(sd, 3.0, 0.5) << t.label;
    }
}

} // namespace
} // namespace neon
