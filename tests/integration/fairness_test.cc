/**
 * @file
 * Integration: fairness guarantees across schedulers and request-size
 * combinations (property-style sweeps over the Figure 6 grid).
 */

#include <gtest/gtest.h>

#include <tuple>

#include "harness/experiment.hh"
#include "metrics/efficiency.hh"

namespace neon
{
namespace
{

/** (scheduler, co-runner request size in us). */
using FairParam = std::tuple<SchedKind, int>;

class FairSchedulerSweep
    : public ::testing::TestWithParam<FairParam>
{
};

TEST_P(FairSchedulerSweep, TwoSaturatingTasksShareWithinBound)
{
    const auto [kind, size_us] = GetParam();

    ExperimentConfig cfg;
    cfg.sched = kind;
    cfg.measure = sec(3);
    ExperimentRunner runner(cfg);

    const auto sd = runner.slowdowns({
        WorkloadSpec::app("DCT"),
        WorkloadSpec::throttle(usec(size_us)),
    });

    // Fair sharing: nobody starves. The engaged policies additionally
    // charge per-request interception, so their bound is looser for
    // tiny requests (the paper's "2x to almost 3x" observation), and
    // Disengaged Fair Queueing's guarantee is probabilistic with
    // imbalance up to roughly one inter-engagement interval.
    const bool engaged = kind == SchedKind::Timeslice ||
        kind == SchedKind::EngagedFq;
    double bound = 2.7;
    if (engaged && size_us < 50)
        bound = 3.4;
    else if (kind == SchedKind::DisengagedFq)
        bound = 3.0;
    EXPECT_LT(sd[0], bound) << "DCT starved";
    EXPECT_LT(sd[1], bound) << "Throttle starved";
    EXPECT_GT(sd[0], 1.2);
    EXPECT_GT(sd[1], 1.2);

    // Jain index over slowdowns: close to 1 for a fair pair.
    EXPECT_GT(jainIndex(sd), 0.93);
}

INSTANTIATE_TEST_SUITE_P(
    Figure6Grid, FairSchedulerSweep,
    ::testing::Combine(::testing::Values(SchedKind::Timeslice,
                                         SchedKind::DisengagedTimeslice,
                                         SchedKind::DisengagedFq,
                                         SchedKind::EngagedFq),
                       ::testing::Values(19, 106, 430, 1700)),
    [](const ::testing::TestParamInfo<FairParam> &info) {
        std::string n = schedKindName(std::get<0>(info.param)) + "_vs_" +
            std::to_string(std::get<1>(info.param)) + "us";
        for (auto &ch : n)
            if (ch == '-')
                ch = '_';
        return n;
    });

class DirectUnfairnessSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(DirectUnfairnessSweep, LargeRequestsDominateSmallOnes)
{
    const int size_us = GetParam();

    ExperimentConfig cfg;
    cfg.measure = sec(2);
    ExperimentRunner runner(cfg);

    const auto sd = runner.slowdowns({
        WorkloadSpec::app("DCT"),
        WorkloadSpec::throttle(usec(size_us)),
    });

    // Per-request round-robin: DCT's penalty grows with the co-runner's
    // request size; the large-request task barely notices.
    EXPECT_GT(sd[0], 1.0 + size_us / 250.0);
    EXPECT_LT(sd[1], 1.6);
}

INSTANTIATE_TEST_SUITE_P(Figure6Direct, DirectUnfairnessSweep,
                         ::testing::Values(430, 1700));

class SchedulerScalability
    : public ::testing::TestWithParam<SchedKind>
{
};

TEST_P(SchedulerScalability, FourWayMixSharesFairly)
{
    // The Figure 8 mix: one large-request Throttle, three small apps.
    ExperimentConfig cfg;
    cfg.sched = GetParam();
    cfg.measure = sec(4);
    ExperimentRunner runner(cfg);

    const auto sd = runner.slowdowns({
        WorkloadSpec::throttle(usec(1700)),
        WorkloadSpec::app("BinarySearch"),
        WorkloadSpec::app("DCT"),
        WorkloadSpec::app("FFT"),
    });

    for (double s : sd) {
        EXPECT_GT(s, 2.0);
        EXPECT_LT(s, 6.5);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Figure8, SchedulerScalability,
    ::testing::Values(SchedKind::Timeslice,
                      SchedKind::DisengagedTimeslice,
                      SchedKind::DisengagedFq),
    [](const ::testing::TestParamInfo<SchedKind> &info) {
        std::string n = schedKindName(info.param);
        for (auto &ch : n)
            if (ch == '-')
                ch = '_';
        return n;
    });

TEST(NonsaturatingFairness, DfqIsWorkConservingTimesliceIsNot)
{
    // Figure 9/10: DCT against a Throttle sleeping 80% of the time.
    const std::vector<WorkloadSpec> duo = {
        WorkloadSpec::app("DCT"),
        WorkloadSpec::throttle(usec(1700), 0.8),
    };

    ExperimentConfig ts_cfg;
    ts_cfg.sched = SchedKind::DisengagedTimeslice;
    ts_cfg.measure = sec(3);
    const auto sd_ts = ExperimentRunner(ts_cfg).slowdowns(duo);

    ExperimentConfig dfq_cfg;
    dfq_cfg.sched = SchedKind::DisengagedFq;
    dfq_cfg.measure = sec(3);
    const auto sd_dfq = ExperimentRunner(dfq_cfg).slowdowns(duo);

    // Timeslice strands the sleeper's idle slices: DCT stuck near 2x.
    EXPECT_GT(sd_ts[0], 1.8);
    // DFQ hands the idle capacity to DCT.
    EXPECT_LT(sd_dfq[0], 1.6);
    // And the sleeper is not penalized for its idleness.
    EXPECT_LT(sd_dfq[1], 1.4);

    const double eff_ts = 1.0 / sd_ts[0] + 1.0 / sd_ts[1];
    const double eff_dfq = 1.0 / sd_dfq[0] + 1.0 / sd_dfq[1];
    EXPECT_GT(eff_dfq, eff_ts + 0.3);
}

} // namespace
} // namespace neon
