/**
 * @file
 * Cross-cutting invariants checked under every scheduler: time
 * conservation, completion ordering, request conservation, and
 * whole-simulation determinism.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "harness/experiment.hh"

namespace neon
{
namespace
{

class PropertySweep : public ::testing::TestWithParam<SchedKind>
{
  protected:
    ExperimentConfig
    config() const
    {
        ExperimentConfig cfg;
        cfg.sched = GetParam();
        cfg.measure = sec(1);
        return cfg;
    }

    std::vector<WorkloadSpec>
    mixedWorkload() const
    {
        return {
            WorkloadSpec::app("DCT"),
            WorkloadSpec::app("glxgears"),
            WorkloadSpec::throttle(usec(430)),
        };
    }
};

TEST_P(PropertySweep, DeviceTimeIsConserved)
{
    ExperimentConfig cfg = config();
    World world(cfg);
    for (const auto &s : mixedWorkload())
        world.spawn(s);
    world.start();
    world.runFor(cfg.warmup);
    world.beginMeasurement();
    world.runFor(cfg.measure);
    RunResult r = world.results();

    // Execute-engine busy + switch overhead cannot exceed elapsed time
    // (DMA runs on its own engine and is excluded here).
    Tick exec_busy = 0;
    for (const auto &t : r.tasks)
        exec_busy += t.gpuBusy;
    EXPECT_LE(r.deviceBusy, r.elapsed + msec(2));
    EXPECT_LE(r.deviceBusy - world.meter.totalDmaBusy() +
                  r.switchOverhead,
              r.elapsed + msec(2));

    // Every per-task figure is accounted inside the total.
    EXPECT_LE(exec_busy, r.deviceBusy + msec(1));
}

TEST_P(PropertySweep, CompletionsFollowSubmissionOrderPerChannel)
{
    ExperimentConfig cfg = config();
    World world(cfg);
    for (const auto &s : mixedWorkload())
        world.spawn(s);

    std::map<int, std::uint64_t> last_completed;
    bool ordered = true;
    world.device.traceComplete = [&](Channel &c, const GpuRequest &r,
                                     Tick, Tick) {
        if (r.ref <= last_completed[c.id()])
            ordered = false;
        last_completed[c.id()] = r.ref;
    };

    world.start();
    world.runFor(sec(1));
    EXPECT_TRUE(ordered);
    EXPECT_FALSE(last_completed.empty());
}

TEST_P(PropertySweep, ReferenceCountersNeverRegress)
{
    ExperimentConfig cfg = config();
    World world(cfg);
    for (const auto &s : mixedWorkload())
        world.spawn(s);
    world.start();

    std::map<int, std::uint64_t> seen;
    bool monotone = true;
    for (int step = 0; step < 200; ++step) {
        world.runFor(msec(5));
        for (Channel *c : world.kernel.activeChannels()) {
            const std::uint64_t cur = c->completedRef();
            if (cur < seen[c->id()])
                monotone = false;
            seen[c->id()] = cur;
        }
    }
    EXPECT_TRUE(monotone);
}

TEST_P(PropertySweep, EveryAwaitedSubmissionEventuallyCompletes)
{
    ExperimentConfig cfg = config();
    World world(cfg);
    for (const auto &s : mixedWorkload())
        world.spawn(s);
    world.start();
    world.runFor(sec(1));

    // Quiesce: freeze workloads by protecting nothing further — simply
    // give the device and scheduler time to drain everything in
    // flight; then all counters must meet their submitted refs within
    // a few engagement cycles.
    world.runFor(msec(200));
    int lagging = 0;
    for (Channel *c : world.kernel.activeChannels()) {
        const std::uint64_t submitted = c->lastSubmittedRef();
        const std::uint64_t done = c->completedRef();
        // At most one round's worth of requests may be in flight.
        if (submitted > done + 64)
            ++lagging;
    }
    EXPECT_EQ(lagging, 0);
}

TEST_P(PropertySweep, WholeSimulationIsDeterministic)
{
    ExperimentRunner runner(config());
    const RunResult a = runner.run(mixedWorkload());
    const RunResult b = runner.run(mixedWorkload());

    ASSERT_EQ(a.tasks.size(), b.tasks.size());
    for (std::size_t i = 0; i < a.tasks.size(); ++i) {
        EXPECT_EQ(a.tasks[i].rounds, b.tasks[i].rounds);
        EXPECT_DOUBLE_EQ(a.tasks[i].meanRoundUs, b.tasks[i].meanRoundUs);
        EXPECT_EQ(a.tasks[i].gpuBusy, b.tasks[i].gpuBusy);
    }
    EXPECT_EQ(a.deviceBusy, b.deviceBusy);
    EXPECT_EQ(a.switchOverhead, b.switchOverhead);
}

TEST_P(PropertySweep, SeedChangesResultsButNotInvariants)
{
    ExperimentConfig cfg = config();
    ExperimentRunner r1(cfg);
    cfg.seed = 777;
    ExperimentRunner r2(cfg);

    const RunResult a = r1.run(mixedWorkload());
    const RunResult b = r2.run(mixedWorkload());

    // Different seeds shuffle jitter; totals stay in the same regime.
    EXPECT_NE(a.deviceBusy, b.deviceBusy);
    EXPECT_NEAR(toSec(a.deviceBusy), toSec(b.deviceBusy), 0.1);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulers, PropertySweep,
    ::testing::Values(SchedKind::Direct, SchedKind::Timeslice,
                      SchedKind::DisengagedTimeslice,
                      SchedKind::DisengagedFq, SchedKind::EngagedFq),
    [](const ::testing::TestParamInfo<SchedKind> &info) {
        std::string n = schedKindName(info.param);
        for (auto &ch : n)
            if (ch == '-')
                ch = '_';
        return n;
    });

} // namespace
} // namespace neon
