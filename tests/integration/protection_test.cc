/**
 * @file
 * Integration: protection against adversarial applications — infinite
 * kernels, batching hogs, and the channel-exhaustion DoS of Sec. 6.3.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "workload/adversary.hh"

namespace neon
{
namespace
{

class ProtectionSweep : public ::testing::TestWithParam<SchedKind>
{
};

TEST_P(ProtectionSweep, InfiniteKernelIsKilledVictimRecovers)
{
    ExperimentConfig cfg;
    cfg.sched = GetParam();
    cfg.timeslice.killThreshold = msec(100);
    cfg.dfq.killThreshold = msec(100);
    cfg.engagedFq.killThreshold = msec(100);
    cfg.measure = sec(2);
    ExperimentRunner runner(cfg);

    const RunResult r = runner.run({
        WorkloadSpec::custom("malicious",
                             [](Task &t, std::uint64_t) {
                                 return infiniteKernelBody(t, 5,
                                                           usec(100));
                             }),
        WorkloadSpec::throttle(usec(100)),
    });

    EXPECT_EQ(r.kills, 1u);
    EXPECT_TRUE(r.byLabel("malicious").killed);
    // After the kill the victim owns the device: a 2s window minus the
    // detection latency yields most of the solo round count.
    EXPECT_GT(r.byLabel("Throttle(100us)").rounds, 12000u);
}

TEST_P(ProtectionSweep, BatchingHogIsContained)
{
    // The Section 1 adversary: batch work into huge requests to hog a
    // work-conserving device.
    ExperimentConfig cfg;
    cfg.sched = GetParam();
    cfg.measure = sec(3);
    ExperimentRunner runner(cfg);

    const auto sd = runner.slowdowns({
        WorkloadSpec::app("FFT"),
        WorkloadSpec::custom("hog",
                             [](Task &t, std::uint64_t) {
                                 return batchingHogBody(t, msec(8));
                             }),
    });

    // The victim still gets roughly half the device over time.
    EXPECT_LT(sd[0], 3.2);
}

INSTANTIATE_TEST_SUITE_P(
    FairSchedulers, ProtectionSweep,
    ::testing::Values(SchedKind::Timeslice,
                      SchedKind::DisengagedTimeslice,
                      SchedKind::DisengagedFq),
    [](const ::testing::TestParamInfo<SchedKind> &info) {
        std::string n = schedKindName(info.param);
        for (auto &ch : n)
            if (ch == '-')
                ch = '_';
        return n;
    });

TEST(BatchingHogBaseline, DirectAccessLetsTheHogWin)
{
    ExperimentConfig cfg;
    cfg.measure = sec(3);
    ExperimentRunner runner(cfg);

    const auto sd = runner.slowdowns({
        WorkloadSpec::app("FFT"),
        WorkloadSpec::custom("hog",
                             [](Task &t, std::uint64_t) {
                                 return batchingHogBody(t, msec(8));
                             }),
    });

    // With no management, each FFT request waits behind an 8ms batch.
    EXPECT_GT(sd[0], 20.0);
}

TEST(ChannelDos, UnprotectedAttackerExhaustsTheDevice)
{
    ExperimentConfig cfg;
    cfg.measure = msec(100);

    World world(cfg);
    DosOutcome attacker, victim;
    world.spawn(WorkloadSpec::custom(
        "attacker", [&attacker](Task &t, std::uint64_t) {
            return channelDosBody(t, &attacker);
        }));
    world.start();
    world.runFor(msec(50));

    // The paper's observation: ~48 contexts (one compute + one DMA
    // channel each) exhaust the channel pool.
    EXPECT_EQ(attacker.contextsCreated, 48);
    EXPECT_EQ(attacker.firstFailure, OpenResult::OutOfChannels);

    // A victim arriving afterwards cannot use the GPU at all.
    world.spawn(WorkloadSpec::custom(
        "victim", [&victim](Task &t, std::uint64_t) {
            return dosVictimBody(t, &victim, usec(100));
        }));
    // (spawn after start: start the task directly)
    Task *vt = world.kernel.tasks().back();
    world.kernel.startTask(*vt, dosVictimBody(*vt, &victim, usec(100)));
    world.runFor(msec(50));

    EXPECT_EQ(victim.channelsCreated, 0);
    EXPECT_EQ(victim.firstFailure, OpenResult::OutOfChannels);
}

TEST(ChannelDos, ProtectedAllocationPolicyStopsTheAttack)
{
    ExperimentConfig cfg;
    cfg.channelPolicy.protect = true;
    cfg.channelPolicy.perTaskLimit = 8;

    World world(cfg);
    DosOutcome attacker, victim;
    world.spawn(WorkloadSpec::custom(
        "attacker", [&attacker](Task &t, std::uint64_t) {
            return channelDosBody(t, &attacker);
        }));
    world.spawn(WorkloadSpec::custom(
        "victim", [&victim](Task &t, std::uint64_t) {
            return dosVictimBody(t, &victim, usec(100));
        }));
    world.start();
    world.runFor(msec(100));

    // The attacker hits its per-task limit C; the victim computes.
    EXPECT_EQ(attacker.firstFailure, OpenResult::PerTaskLimit);
    EXPECT_LE(attacker.channelsCreated, 8);
    EXPECT_EQ(victim.channelsCreated, 1);
}

} // namespace
} // namespace neon
