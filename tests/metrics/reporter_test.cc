/**
 * @file
 * Unit tests for the ASCII table reporter.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "metrics/reporter.hh"

namespace neon
{
namespace
{

TEST(Table, RendersHeaderRuleAndRows)
{
    Table t({"name", "value"});
    t.addRow({"alpha", "1.00"});
    t.addRow({"beta", "2.50"});

    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();

    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
    // 4 lines: header, rule, two rows.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(Table, ColumnsAlignToWidestCell)
{
    Table t({"x", "y"});
    t.addRow({"longer-cell", "1"});
    std::ostringstream os;
    t.print(os);

    std::string line1 = os.str().substr(0, os.str().find('\n'));
    // Header col 2 starts after widest col-1 cell + 2 spaces.
    EXPECT_GE(line1.find('y'), std::string("longer-cell").size() + 2);
}

TEST(TableDeathTest, WrongRowWidthPanics)
{
    Table t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "width");
}

TEST(TableNum, FixedPrecision)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(2.0, 0), "2");
    EXPECT_EQ(Table::num(0.5, 1), "0.5");
}

TEST(TableNum, SignificantDigits)
{
    EXPECT_EQ(Table::num(3.14159, 3, Table::Digits::Significant), "3.14");
    EXPECT_EQ(Table::num(12345.6, 3, Table::Digits::Significant),
              "1.23e+04");
    EXPECT_EQ(Table::num(0.000123456, 3, Table::Digits::Significant),
              "0.000123");
    // Fixed mode would print 0.00 here; significant keeps the signal.
    EXPECT_EQ(Table::num(0.000123456, 2), "0.00");
}

TEST(Table, PrintCsvEscapesOnlyWhenNeeded)
{
    Table t({"name", "value", "note"});
    t.addRow({"alpha", "1.5", "plain"});
    t.addRow({"beta", "2.5", "has,comma"});
    t.addRow({"gamma", "3.5", "has\"quote"});

    std::ostringstream os;
    t.printCsv(os);
    std::istringstream is(os.str());
    std::string line;
    ASSERT_TRUE(std::getline(is, line));
    EXPECT_EQ(line, "name,value,note");
    ASSERT_TRUE(std::getline(is, line));
    EXPECT_EQ(line, "alpha,1.5,plain");
    ASSERT_TRUE(std::getline(is, line));
    EXPECT_EQ(line, "beta,2.5,\"has,comma\"");
    ASSERT_TRUE(std::getline(is, line));
    EXPECT_EQ(line, "gamma,3.5,\"has\"\"quote\"");
}

} // namespace
} // namespace neon
