/**
 * @file
 * Unit tests for the request tracer (Table 1 / Figure 2 machinery).
 */

#include <gtest/gtest.h>

#include "gpu/device.hh"
#include "metrics/request_trace.hh"
#include "sim/event_queue.hh"

namespace neon
{
namespace
{

struct TraceFixture : public ::testing::Test
{
    EventQueue eq;
    UsageMeter meter;
    DeviceConfig cfg;
    GpuDevice dev{eq, cfg, meter};
    RequestTrace trace;
    GpuContext *ctx = nullptr;
    Channel *chan = nullptr;

    void
    SetUp() override
    {
        trace.attach(dev);
        ctx = dev.createContext(7);
        chan = dev.createChannel(*ctx, RequestClass::Compute);
    }

    void
    submit(Tick service, bool awaited = true,
           RequestClass cls = RequestClass::Compute)
    {
        GpuRequest r;
        r.cls = cls;
        r.serviceTime = service;
        r.awaited = awaited;
        r.ref = chan->allocRef();
        dev.submit(*chan, r);
    }
};

TEST_F(TraceFixture, RecordsServiceTimes)
{
    submit(usec(50));
    eq.drain();
    submit(usec(150));
    eq.drain();

    const auto &pt = trace.of(7);
    EXPECT_EQ(pt.submissions, 2u);
    EXPECT_NEAR(pt.serviceAccumUs.mean(), 100.0, 0.01);
}

TEST_F(TraceFixture, InterArrivalHistogramFills)
{
    submit(usec(10));
    eq.runFor(usec(64)); // next submission 64us later -> bin 6
    submit(usec(10));
    eq.drain();

    const auto &pt = trace.of(7);
    EXPECT_EQ(pt.interArrivalUs.total(), 1u);
    EXPECT_EQ(pt.interArrivalUs.binCount(6), 1u);
}

TEST_F(TraceFixture, UnawaitedRequestsExcludedFromServiceStats)
{
    // A trivial request that lands while the engine is idle completes
    // on its own and must not pollute the awaited-service average.
    submit(nsec(500), false, RequestClass::Trivial);
    eq.drain();
    submit(usec(100));
    eq.drain();

    const auto &pt = trace.of(7);
    EXPECT_EQ(pt.submissions, 2u);
    EXPECT_EQ(pt.serviceAccumUs.count(), 1u);
    EXPECT_NEAR(pt.serviceAccumUs.mean(), 100.0, 0.01);
    EXPECT_EQ(pt.allServiceAccumUs.count(), 2u);
}

TEST_F(TraceFixture, ResetClears)
{
    submit(usec(10));
    eq.drain();
    trace.reset();
    EXPECT_FALSE(trace.has(7));
}

TEST_F(TraceFixture, MissingTaskPanics)
{
    EXPECT_DEATH(trace.of(999), "no trace");
}

} // namespace
} // namespace neon
