/**
 * @file
 * Unit tests for the evaluation metrics.
 */

#include <gtest/gtest.h>

#include "metrics/efficiency.hh"

namespace neon
{
namespace
{

TEST(Efficiency, PerfectSharingSumsToOne)
{
    // Two tasks each at exactly 2x their solo time.
    EXPECT_DOUBLE_EQ(concurrencyEfficiency({100, 200}, {200, 400}), 1.0);
}

TEST(Efficiency, LostResourcesSumBelowOne)
{
    EXPECT_LT(concurrencyEfficiency({100, 100}, {250, 250}), 1.0);
}

TEST(Efficiency, SynergySumsAboveOne)
{
    // Overlapped DMA/compute: both faster than 2x.
    EXPECT_GT(concurrencyEfficiency({100, 100}, {150, 150}), 1.0);
}

TEST(Efficiency, SoloTaskIsOne)
{
    EXPECT_DOUBLE_EQ(concurrencyEfficiency({100}, {100}), 1.0);
}

TEST(Efficiency, ZeroCorunTimeContributesNothing)
{
    EXPECT_DOUBLE_EQ(concurrencyEfficiency({100, 100}, {200, 0.0}), 0.5);
}

TEST(EfficiencyDeathTest, MismatchedSeriesPanics)
{
    EXPECT_DEATH(concurrencyEfficiency({1.0}, {1.0, 2.0}), "mismatch");
}

TEST(Slowdown, Basics)
{
    EXPECT_DOUBLE_EQ(slowdown(100, 200), 2.0);
    EXPECT_DOUBLE_EQ(slowdown(0, 200), 0.0);
}

TEST(JainIndex, EqualSharesGiveOne)
{
    EXPECT_DOUBLE_EQ(jainIndex({2.0, 2.0, 2.0, 2.0}), 1.0);
}

TEST(JainIndex, SkewLowersIndex)
{
    EXPECT_LT(jainIndex({1.0, 10.0}), 0.65);
    EXPECT_GT(jainIndex({1.0, 10.0}), 0.5); // lower bound 1/n
}

TEST(JainIndex, EmptyIsOne)
{
    EXPECT_DOUBLE_EQ(jainIndex({}), 1.0);
}

} // namespace
} // namespace neon
