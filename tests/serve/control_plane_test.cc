/**
 * @file
 * End-to-end tests of the serving control plane: token-bucket
 * throttling, SLO-predictive shedding, QoS preemption, exact outcome
 * conservation under every mix, sharded determinism with the control
 * plane on, and a regression pin that the disabled configuration has
 * zero behavioral footprint.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "harness/serve_runner.hh"

namespace neon
{
namespace
{

/** Small direct-access fleet for deterministic lifecycle scenarios. */
ExperimentConfig
controlConfig(std::size_t devices, std::size_t slots)
{
    ExperimentConfig cfg;
    cfg.sched = SchedKind::Direct;
    cfg.fleet.devices = devices;
    cfg.fleet.placement = PlacementKind::LeastLoaded;
    cfg.serve.slotsPerDevice = slots;
    cfg.measure = msec(200);
    return cfg;
}

ServeWorkloadSpec
classAt(const std::string &label, std::vector<Tick> times, Tick lifetime,
        QosClass qos = QosClass::Batch, Tick queueBudget = 0)
{
    WorkloadSpec w = WorkloadSpec::throttle(usec(100));
    w.label = label;
    ServeWorkloadSpec s{std::move(w), ArrivalSpec::trace(std::move(times)),
                        LifetimeSpec::fixed(lifetime)};
    s.qos = qos;
    s.queueBudget = queueBudget;
    return s;
}

/** Sessions still in-system at the horizon (no terminal outcome). */
std::uint64_t
inSystemCount(const ServeRunResult &r)
{
    std::uint64_t n = 0;
    for (const auto &s : r.sessions)
        if (!s.hasDeparted() && !s.killed && !s.shed && !s.throttled)
            ++n;
    return n;
}

/** The exact conservation identity every run must satisfy. */
void
expectExactConservation(const ServeRunResult &r)
{
    EXPECT_EQ(r.arrivals, r.departures + r.kills + r.shedSessions +
                              r.throttledSessions + inSystemCount(r));
    EXPECT_EQ(r.arrivals, r.sessions.size());
}

TEST(ControlPlane, ThrottledArrivalsCountedNeverDropped)
{
    // 100/s with burst 2: of five same-instant-ish arrivals, two pass
    // and three are throttled — each with a full session record, a
    // terminal outcome, and zero device time.
    ExperimentConfig cfg = controlConfig(1, 2);
    cfg.serve.rateLimit.ratePerSec = 100.0;
    cfg.serve.rateLimit.burst = 2.0;
    ServeRunner runner(cfg);

    const ServeRunResult r = runner.run(
        {classAt("t", {0, usec(1), usec(2), usec(3), usec(4)}, msec(10))},
        /*with_slowdowns=*/false);

    EXPECT_EQ(r.arrivals, 5u);
    EXPECT_EQ(r.throttledSessions, 3u);
    EXPECT_EQ(r.departures, 2u);
    EXPECT_EQ(r.shedSessions, 0u);
    EXPECT_EQ(r.slo.control.throttled, 3u);

    std::uint64_t throttled = 0;
    for (const auto &s : r.sessions) {
        if (!s.throttled)
            continue;
        ++throttled;
        EXPECT_FALSE(s.wasAdmitted()) << s.label;
        EXPECT_FALSE(s.shed) << s.label;
        EXPECT_EQ(s.busy, 0) << s.label;
        EXPECT_TRUE(s.devices.empty()) << s.label;
    }
    EXPECT_EQ(throttled, 3u);

    expectExactConservation(r);
    EXPECT_GT(r.audit.checks, 0u);
    EXPECT_TRUE(r.audit.clean()) << r.audit.summary();
}

TEST(ControlPlane, ThrottledTenantDoesNotStarvePeers)
{
    // Per-tenant buckets: one tenant hammering the front door must not
    // consume another tenant's tokens.
    ExperimentConfig cfg = controlConfig(2, 2);
    cfg.serve.rateLimit.ratePerSec = 100.0;
    cfg.serve.rateLimit.burst = 1.0;
    ServeRunner runner(cfg);

    const ServeRunResult r = runner.run(
        {classAt("noisy", {0, usec(1), usec(2), usec(3)}, msec(5)),
         classAt("quiet", {usec(10)}, msec(5))},
        /*with_slowdowns=*/false);

    EXPECT_EQ(r.arrivals, 5u);
    EXPECT_EQ(r.throttledSessions, 3u); // all from "noisy"
    EXPECT_TRUE(r.byLabel("quiet#4").hasDeparted());
    EXPECT_FALSE(r.byLabel("quiet#4").throttled);
    expectExactConservation(r);
}

TEST(ControlPlane, PredictiveShedFastFailsAtOverload)
{
    // One slot held for 50 ms and a 5 ms queue budget: the model
    // predicts a ~25 ms wait for the next arrivals and sheds them at
    // the front door — never admitted, never placed.
    ExperimentConfig cfg = controlConfig(1, 1);
    cfg.serve.shed.enabled = true;
    ServeRunner runner(cfg);

    const ServeRunResult r = runner.run(
        {classAt("c", {0, msec(1), msec(2)}, msec(50), QosClass::Batch,
                 msec(5))},
        /*with_slowdowns=*/false);

    EXPECT_EQ(r.arrivals, 3u);
    EXPECT_EQ(r.departures, 1u);
    EXPECT_EQ(r.shedSessions, 2u);
    EXPECT_EQ(r.predictiveSheds, 2u);
    EXPECT_EQ(r.slo.control.predictiveSheds, 2u);
    for (const auto &s : r.sessions) {
        if (!s.shed)
            continue;
        EXPECT_TRUE(s.shedPredicted) << s.label;
        EXPECT_FALSE(s.wasAdmitted()) << s.label;
        EXPECT_EQ(s.busy, 0) << s.label;
    }
    expectExactConservation(r);
    EXPECT_TRUE(r.audit.clean()) << r.audit.summary();
}

TEST(ControlPlane, ShedDisabledQueuesEverything)
{
    // The identical scenario with shedding off: arrivals queue and are
    // eventually served, at the cost of blowing the queue budget.
    ExperimentConfig cfg = controlConfig(1, 1);
    ServeRunner runner(cfg);

    const ServeRunResult r = runner.run(
        {classAt("c", {0, msec(1), msec(2)}, msec(50), QosClass::Batch,
                 msec(5))},
        /*with_slowdowns=*/false);

    EXPECT_EQ(r.arrivals, 3u);
    EXPECT_EQ(r.departures, 3u);
    EXPECT_EQ(r.shedSessions, 0u);
    EXPECT_EQ(r.predictiveSheds, 0u);
    // The budget was still measured: late departures miss it.
    ASSERT_FALSE(r.slo.goodputByClass.empty());
    EXPECT_LT(r.slo.goodputByClass[0].goodput.fraction, 1.0);
    expectExactConservation(r);
}

TEST(ControlPlane, PreemptionFreesSlotForInteractive)
{
    // A batch session holds the only slot; an interactive arrival
    // displaces it mid-request, takes the slot at its own arrival
    // tick, and the victim resumes after the backoff with its frozen
    // remaining lifetime — every device tick still accounted.
    ExperimentConfig cfg = controlConfig(1, 1);
    cfg.serve.qos.enabled = true;
    cfg.serve.qos.preemption = true;
    cfg.serve.qos.preemptionBackoff = msec(2);
    cfg.measure = msec(300);

    ServeWorld world(cfg, {
                              classAt("bat", {0}, msec(50)),
                              classAt("int", {msec(10)}, msec(5),
                                      QosClass::Interactive),
                          });
    world.start();
    world.runFor(cfg.measure);
    const ServeRunResult r = world.results();

    EXPECT_EQ(r.preemptions, 1u);
    EXPECT_EQ(r.slo.control.preemptions, 1u);
    EXPECT_EQ(r.departures, 2u);
    EXPECT_EQ(r.kills, 0u);
    EXPECT_EQ(r.shedSessions, 0u);

    const ServeSessionResult &inter = r.byLabel("int#1");
    EXPECT_EQ(inter.admitted, inter.arrived); // no queueing at all
    EXPECT_EQ(inter.departed, msec(15));
    EXPECT_EQ(inter.preemptions, 0);

    const ServeSessionResult &bat = r.byLabel("bat#0");
    EXPECT_EQ(bat.preemptions, 1);
    // Ran 10 ms, displaced, resumed when the interactive left (15 ms)
    // with its frozen 40 ms remainder.
    EXPECT_EQ(bat.departed, msec(55));
    EXPECT_EQ(bat.devices.size(), 2u); // one device per incarnation

    // Victim-mid-request reconciliation: the session ledger equals the
    // ground-truth meters exactly across the preemption fold.
    Tick session_busy = 0;
    std::uint64_t session_reqs = 0;
    for (const auto &s : r.sessions) {
        session_busy += s.busy;
        session_reqs += s.requests;
    }
    Tick meter_busy = 0;
    std::uint64_t meter_reqs = 0;
    for (std::size_t i = 0; i < world.fleet.deviceCount(); ++i) {
        const UsageMeter &m = world.fleet.stack(i).meter;
        meter_busy += m.totalBusy();
        for (const auto &kv : m.perTaskBusy())
            meter_reqs += m.requestsOf(kv.first);
    }
    EXPECT_EQ(session_busy, meter_busy);
    EXPECT_EQ(session_reqs, meter_reqs);
    EXPECT_GT(session_busy, 0);

    expectExactConservation(r);
    EXPECT_TRUE(r.audit.clean()) << r.audit.summary();
}

TEST(ControlPlane, InteractiveAdmitsDuringVictimBackoff)
{
    // While the preempted batch session sits out its backoff window, a
    // second interactive arrival takes the next free slot ahead of it
    // even though the batch session arrived far earlier.
    ExperimentConfig cfg = controlConfig(1, 1);
    cfg.serve.qos.enabled = true;
    cfg.serve.qos.preemption = true;
    cfg.serve.qos.preemptionBackoff = msec(10);
    cfg.measure = msec(300);

    ServeWorld world(cfg, {
                              classAt("bat", {0}, msec(50)),
                              classAt("int", {msec(10), msec(13)}, msec(5),
                                      QosClass::Interactive),
                          });
    world.start();
    world.runFor(cfg.measure);
    const ServeRunResult r = world.results();

    EXPECT_EQ(r.preemptions, 1u);
    EXPECT_EQ(r.departures, 3u);

    // First interactive preempts at 10 ms and departs at 15 ms; the
    // second (arrived 13 ms, mid-backoff) is admitted right then —
    // the batch victim only re-queues at 20 ms.
    const ServeSessionResult &i2 = r.byLabel("int#2");
    EXPECT_EQ(i2.admitted, msec(15));
    EXPECT_EQ(i2.departed, msec(20));

    const ServeSessionResult &bat = r.byLabel("bat#0");
    EXPECT_EQ(bat.preemptions, 1);
    EXPECT_EQ(bat.departed, msec(60)); // 10 ms served + 40 ms remainder
    expectExactConservation(r);
    EXPECT_TRUE(r.audit.clean()) << r.audit.summary();
}

/** 3x-oversubscribed two-class mix for the acceptance comparison. */
std::vector<ServeWorkloadSpec>
overloadSpecs(double rateScale = 1.0)
{
    WorkloadSpec inter = WorkloadSpec::throttle(usec(200));
    inter.label = "inter";
    WorkloadSpec batch = WorkloadSpec::throttle(usec(400));
    batch.label = "batch";
    ServeWorkloadSpec si{inter,
                         ArrivalSpec::poisson(80.0 * rateScale, msec(700)),
                         LifetimeSpec::fixed(msec(40))};
    si.qos = QosClass::Interactive;
    si.queueBudget = msec(25);
    ServeWorkloadSpec sb{batch,
                         ArrivalSpec::poisson(100.0 * rateScale, msec(700)),
                         LifetimeSpec::fixed(msec(80))};
    sb.qos = QosClass::Batch;
    return {si, sb};
}

const GoodputReport &
goodputOf(const ServeRunResult &r, const std::string &label)
{
    for (const auto &g : r.slo.goodputByClass)
        if (g.label == label)
            return g.goodput;
    static const GoodputReport none;
    ADD_FAILURE() << "no goodput for class " << label;
    return none;
}

TEST(ControlPlane, SheddingBeatsQueueEverythingAtOverload)
{
    // The acceptance criterion: at ~3x oversubscription (11+ slot-
    // equivalents of offered load on a 4-slot fleet), the control
    // plane — predictive shedding plus QoS release ordering — yields
    // strictly higher interactive goodput than the queue-everything
    // baseline: predicted-late arrivals fast-fail instead of blowing
    // every admitted session's queue budget behind the batch backlog.
    ExperimentConfig base = controlConfig(2, 2);
    base.measure = sec(1);

    ExperimentConfig shed = base;
    shed.serve.shed.enabled = true;
    shed.serve.qos.enabled = true;

    const ServeRunResult rBase =
        ServeRunner(base).run(overloadSpecs(), /*with_slowdowns=*/false);
    const ServeRunResult rShed =
        ServeRunner(shed).run(overloadSpecs(), /*with_slowdowns=*/false);

    // Same arrival sample under both policies (seeded identically).
    EXPECT_EQ(rBase.arrivals, rShed.arrivals);
    EXPECT_EQ(rBase.shedSessions, 0u);
    EXPECT_GT(rShed.predictiveSheds, 0u);

    const GoodputReport &gBase = goodputOf(rBase, "inter");
    const GoodputReport &gShed = goodputOf(rShed, "inter");
    EXPECT_TRUE(gBase.targeted);
    EXPECT_TRUE(gShed.targeted);
    EXPECT_GT(gBase.eligible, 0u);
    EXPECT_GT(gShed.eligible, 0u);
    EXPECT_GT(gShed.fraction, gBase.fraction)
        << "shed " << gShed.met << "/" << gShed.eligible << " vs base "
        << gBase.met << "/" << gBase.eligible;

    expectExactConservation(rBase);
    expectExactConservation(rShed);
    EXPECT_TRUE(rShed.audit.clean()) << rShed.audit.summary();
    EXPECT_TRUE(rBase.audit.clean()) << rBase.audit.summary();
}

TEST(ControlPlane, ConservationHoldsAcrossRateBudgetAndMixSweep)
{
    // Property sweep: arrival rate x queue budget x class mix, each
    // with shedding off and on. Every combination must satisfy the
    // exact outcome partition, keep the auditor clean, and — at
    // overload — never lose goodput by enabling shedding.
    const double rates[] = {0.3, 1.0};     // x the 3x-overload base
    const Tick budgets[] = {msec(10), msec(50)};
    const double mixes[] = {0.25, 0.75};   // interactive share scale

    for (double rate : rates) {
        for (Tick budget : budgets) {
            for (double mix : mixes) {
                SCOPED_TRACE("rate=" + std::to_string(rate) +
                             " budget=" + std::to_string(budget) +
                             " mix=" + std::to_string(mix));
                std::vector<ServeWorkloadSpec> specs = overloadSpecs(rate);
                specs[0].arrivals =
                    ArrivalSpec::poisson(200.0 * rate * mix, msec(400));
                specs[0].queueBudget = budget;

                ExperimentConfig off = controlConfig(2, 2);
                off.measure = msec(600);
                ExperimentConfig on = off;
                on.serve.shed.enabled = true;
                on.serve.qos.enabled = true;
                on.serve.rateLimit.ratePerSec = 150.0 * rate;
                on.serve.rateLimit.burst = 4.0;

                const ServeRunResult rOff = ServeRunner(off).run(
                    specs, /*with_slowdowns=*/false);
                const ServeRunResult rOn = ServeRunner(on).run(
                    specs, /*with_slowdowns=*/false);

                expectExactConservation(rOff);
                expectExactConservation(rOn);
                EXPECT_TRUE(rOff.audit.clean()) << rOff.audit.summary();
                EXPECT_TRUE(rOn.audit.clean()) << rOn.audit.summary();

                if (rate >= 1.0) {
                    const GoodputReport &gOff = goodputOf(rOff, "inter");
                    const GoodputReport &gOn = goodputOf(rOn, "inter");
                    EXPECT_GE(gOn.fraction, gOff.fraction)
                        << "shedding lost goodput at overload";
                }
            }
        }
    }
}

/** Sharded fleet with the whole control plane on (clock-steered). */
ExperimentConfig
shardedControlConfig()
{
    ExperimentConfig cfg;
    cfg.sched = SchedKind::DisengagedFq;
    cfg.fleet.devices = 8;
    cfg.fleet.speedFactors = {1.4, 1.0, 0.6, 1.0, 1.2, 0.8, 1.0, 1.0};
    cfg.serve.slotsPerDevice = 2;
    cfg.serve.useGlobalClock = true;
    cfg.serve.clockPeriod = msec(10);
    cfg.serve.migrationLag = msec(15);
    cfg.serve.migrationMinTasks = 1;
    cfg.measure = sec(1);
    // 200/s per tenant: the interactive class (300/s offered) loses a
    // third to the bucket, and what passes still saturates the fleet
    // on its own (~16 slot-equivalents), so equal-rank queueing forms
    // and the shedder fires despite preemption.
    cfg.serve.rateLimit.ratePerSec = 200.0;
    cfg.serve.rateLimit.burst = 3.0;
    cfg.serve.shed.enabled = true;
    cfg.serve.qos.enabled = true;
    cfg.serve.qos.preemption = true;
    cfg.serve.qos.preemptionBackoff = msec(5);
    return cfg;
}

std::vector<ServeWorkloadSpec>
shardedControlSpecs()
{
    WorkloadSpec heavy = WorkloadSpec::throttle(usec(400));
    heavy.label = "heavy";
    WorkloadSpec light = WorkloadSpec::throttle(usec(150), 0.3);
    light.label = "light";
    ServeWorkloadSpec sb{heavy, ArrivalSpec::poisson(150.0, msec(600)),
                         LifetimeSpec::fixed(msec(120))};
    sb.qos = QosClass::Batch;
    ServeWorkloadSpec si{light, ArrivalSpec::poisson(300.0, msec(600)),
                         LifetimeSpec::exponential(msec(80))};
    si.qos = QosClass::Interactive;
    si.queueBudget = msec(10);
    return {sb, si};
}

/**
 * Bit-level fingerprint including every control-plane outcome field —
 * any divergence in throttle/shed/preempt decisions, placement, or
 * usage shows up as a line diff.
 */
std::vector<std::string>
controlFingerprint(const ExperimentConfig &cfg,
                   const std::vector<ServeWorkloadSpec> &specs)
{
    ServeWorld world(cfg, specs);
    world.start();
    world.runFor(cfg.measure);
    const ServeRunResult r = world.results();

    std::vector<std::string> fp;
    for (const auto &s : r.sessions) {
        std::string devs;
        for (std::size_t d : s.devices)
            devs += std::to_string(d) + ",";
        fp.push_back(s.label + " arr=" + std::to_string(s.arrived) +
                     " adm=" + std::to_string(s.admitted) +
                     " dep=" + std::to_string(s.departed) +
                     " killed=" + std::to_string(s.killed) +
                     " shed=" + std::to_string(s.shed) +
                     " pshed=" + std::to_string(s.shedPredicted) +
                     " thr=" + std::to_string(s.throttled) +
                     " pre=" + std::to_string(s.preemptions) +
                     " evict=" + std::to_string(s.evictions) +
                     " mig=" + std::to_string(s.migrations) +
                     " busy=" + std::to_string(s.busy) +
                     " reqs=" + std::to_string(s.requests) +
                     " devs=" + devs);
    }
    fp.push_back("arrivals=" + std::to_string(r.arrivals) +
                 " departures=" + std::to_string(r.departures) +
                 " sheds=" + std::to_string(r.shedSessions) +
                 " psheds=" + std::to_string(r.predictiveSheds) +
                 " throttled=" + std::to_string(r.throttledSessions) +
                 " preempts=" + std::to_string(r.preemptions) +
                 " migrations=" + std::to_string(r.migrations));
    fp.push_back("fleetBusy=" + std::to_string(world.fleet.totalBusy()));
    fp.push_back("events=" + std::to_string(world.eventsExecuted()));
    return fp;
}

TEST(ControlPlane, ShardedRunsBitIdenticalAcrossRepeatsAndThreads)
{
    // Every control decision (bucket refill, shed prediction, victim
    // pick) runs on the coordinator queue, so the sharded run stays a
    // pure function of the simulation with the full plane enabled.
    ExperimentConfig cfg = shardedControlConfig();
    cfg.shards.count = 4;
    cfg.shards.threads = 1;

    const std::vector<std::string> base =
        controlFingerprint(cfg, shardedControlSpecs());
    ASSERT_GT(base.size(), 10u);
    EXPECT_EQ(controlFingerprint(cfg, shardedControlSpecs()), base);

    cfg.shards.threads = 2;
    EXPECT_EQ(controlFingerprint(cfg, shardedControlSpecs()), base);
    cfg.shards.threads = 4;
    EXPECT_EQ(controlFingerprint(cfg, shardedControlSpecs()), base);

    // The scenario exercised every actuator, not just the happy path.
    bool sawThrottle = false, sawShed = false;
    for (const std::string &line : base) {
        if (line.find("thr=1") != std::string::npos)
            sawThrottle = true;
        if (line.find("pshed=1") != std::string::npos)
            sawShed = true;
    }
    EXPECT_TRUE(sawThrottle);
    EXPECT_TRUE(sawShed);
}

TEST(ControlPlane, ControlDecisionsMatchAcrossShardCounts)
{
    // Front-door decisions depend only on control-queue state: the
    // serial core and the 4-shard decomposition must throttle and shed
    // the exact same sessions.
    ExperimentConfig serial = shardedControlConfig();
    const std::vector<std::string> base =
        controlFingerprint(serial, shardedControlSpecs());

    ExperimentConfig sharded = shardedControlConfig();
    sharded.shards.count = 4;
    sharded.shards.threads = 2;
    const std::vector<std::string> par =
        controlFingerprint(sharded, shardedControlSpecs());

    auto outcomes = [](const std::vector<std::string> &fp) {
        std::vector<std::string> out;
        for (const std::string &line : fp)
            if (line.find(" thr=1") != std::string::npos ||
                line.find(" pshed=1") != std::string::npos)
                out.push_back(line.substr(0, line.find(" adm=")));
        return out;
    };
    EXPECT_EQ(outcomes(par), outcomes(base));
}

/** The exact PR-9 scenario: no QoS metadata, no budgets, no limits. */
std::vector<ServeWorkloadSpec>
legacySpecs()
{
    WorkloadSpec heavy = WorkloadSpec::throttle(usec(400));
    heavy.label = "heavy";
    WorkloadSpec light = WorkloadSpec::throttle(usec(150), 0.3);
    light.label = "light";
    return {
        {heavy, ArrivalSpec::poisson(30.0, msec(600)),
         LifetimeSpec::fixed(msec(120))},
        {light, ArrivalSpec::poisson(50.0, msec(600)),
         LifetimeSpec::exponential(msec(80))},
    };
}

TEST(ControlPlane, DisabledPlaneHasZeroFootprint)
{
    // The regression pin for the pre-control-plane engine: a config
    // with every new feature at its default runs the legacy scenario
    // with zero control-plane outcomes — and configurations that
    // enable a feature without giving it anything to act on must not
    // perturb a single session, placement, or event.
    ExperimentConfig off = shardedControlConfig();
    off.serve.rateLimit = TokenBucketConfig{};
    off.serve.shed = PredictiveShedConfig{};
    off.serve.qos = QosConfig{};

    const std::vector<std::string> base = controlFingerprint(off, legacySpecs());
    ASSERT_GT(base.size(), 10u);
    for (const std::string &line : base) {
        EXPECT_EQ(line.find(" thr=1"), std::string::npos) << line;
        EXPECT_EQ(line.find(" pshed=1"), std::string::npos) << line;
        EXPECT_EQ(line.find(" shed=1"), std::string::npos) << line;
    }

    // Explicitly zeroed knobs == default-constructed structs.
    ExperimentConfig zeroed = shardedControlConfig();
    zeroed.serve.rateLimit.ratePerSec = 0.0;
    zeroed.serve.rateLimit.burst = 1.0;
    zeroed.serve.qos.enabled = false;
    zeroed.serve.qos.preemption = false;
    zeroed.serve.shed.enabled = false;
    EXPECT_EQ(controlFingerprint(zeroed, legacySpecs()), base);

    // An effectively unlimited bucket passes every arrival untouched.
    ExperimentConfig unlimited = off;
    unlimited.serve.rateLimit.ratePerSec = 1e9; // 1-tick period
    unlimited.serve.rateLimit.burst = 1e6;
    EXPECT_EQ(controlFingerprint(unlimited, legacySpecs()), base);

    // QoS over uniform (all-batch) classes: every rank equal, no
    // preemption candidates, release order unchanged.
    ExperimentConfig qosUniform = off;
    qosUniform.serve.qos.enabled = true;
    qosUniform.serve.qos.preemption = true;
    EXPECT_EQ(controlFingerprint(qosUniform, legacySpecs()), base);

    // Shedding armed but no class has a queue budget: the predictor
    // samples the clock yet never sheds, and touches nothing.
    ExperimentConfig shedNoBudget = off;
    shedNoBudget.serve.shed.enabled = true;
    EXPECT_EQ(controlFingerprint(shedNoBudget, legacySpecs()), base);
}

} // namespace
} // namespace neon
