/**
 * @file
 * Unit tests for the predictive-shedding model: the pure fluid delay
 * kernel, per-class EWMA holding-time estimates, the drain-factor
 * discount, and the shed decision threshold.
 */

#include <gtest/gtest.h>

#include "serve/slo_admission.hh"

namespace neon
{
namespace
{

PredictiveShedConfig
shedCfg(double safety = 1.0, double alpha = 0.2, Tick floor = msec(1))
{
    PredictiveShedConfig cfg;
    cfg.enabled = true;
    cfg.safety = safety;
    cfg.holdAlpha = alpha;
    cfg.holdFloor = floor;
    return cfg;
}

TEST(SloPredict, ZeroCapacityPredictsInfiniteDelay)
{
    // A fully-down fleet drains nothing: any queued work waits forever.
    EXPECT_EQ(SloAdmission::predictDelay(msec(1), 0, 0, 1.0), maxTick);
    EXPECT_EQ(SloAdmission::predictDelay(0, 0, 0, 1.0), maxTick);
}

TEST(SloPredict, DelayScalesInverselyWithCapacity)
{
    const Tick work = msec(80);
    EXPECT_EQ(SloAdmission::predictDelay(work, 0, 1, 1.0), msec(80));
    EXPECT_EQ(SloAdmission::predictDelay(work, 0, 2, 1.0), msec(40));
    EXPECT_EQ(SloAdmission::predictDelay(work, 0, 8, 1.0), msec(10));
}

TEST(SloPredict, ResidualAddsToQueuedWork)
{
    EXPECT_EQ(SloAdmission::predictDelay(msec(30), msec(10), 2, 1.0),
              msec(20));
}

TEST(SloPredict, DrainDiscountStretchesTheEstimate)
{
    // Half-speed fleet: the same queue takes twice as long to drain.
    const Tick full = SloAdmission::predictDelay(msec(40), 0, 2, 1.0);
    const Tick half = SloAdmission::predictDelay(msec(40), 0, 2, 0.5);
    EXPECT_EQ(half, 2 * full);
    // The clamp keeps a stalled fleet finite (ratio 0 -> 0.05 floor).
    const Tick stalled = SloAdmission::predictDelay(msec(40), 0, 2, 0.0);
    EXPECT_EQ(stalled, 20 * full);
    EXPECT_LT(stalled, maxTick);
}

TEST(SloHold, SeedPrimesFromLifetimeMeanWithFloor)
{
    SloAdmission m(shedCfg());
    m.seedHold("heavy", msec(50));
    m.seedHold("tiny", usec(10)); // below the 1 ms floor
    m.seedHold("unknown", 0);
    EXPECT_EQ(m.holdOf("heavy"), msec(50));
    EXPECT_EQ(m.holdOf("tiny"), msec(1));
    EXPECT_EQ(m.holdOf("unknown"), msec(1));
    // A class never seeded still reads the floor, never zero.
    EXPECT_EQ(m.holdOf("never-seen"), msec(1));
}

TEST(SloHold, EwmaFoldsObservationsDeterministically)
{
    SloAdmission m(shedCfg(1.0, 0.5));
    m.seedHold("c", msec(10));
    m.noteHold("c", msec(30)); // 0.5*30 + 0.5*10 = 20
    EXPECT_EQ(m.holdOf("c"), msec(20));
    m.noteHold("c", msec(20)); // converged
    EXPECT_EQ(m.holdOf("c"), msec(20));
}

TEST(SloHold, EwmaConvergesTowardRepeatedObservation)
{
    SloAdmission m(shedCfg(1.0, 0.2));
    m.seedHold("c", msec(100));
    for (int i = 0; i < 64; ++i)
        m.noteHold("c", msec(10));
    const Tick est = m.holdOf("c");
    EXPECT_GE(est, msec(10) - usec(10));
    EXPECT_LE(est, msec(11));
}

TEST(SloDrain, FirstSampleTakenDirectlyThenSmoothed)
{
    SloAdmission m(shedCfg(1.0, 0.5));
    EXPECT_DOUBLE_EQ(m.drainFactor(), 1.0); // unsampled default
    m.noteDrainRatio(0.4);
    EXPECT_DOUBLE_EQ(m.drainFactor(), 0.4); // first sample, no blend
    m.noteDrainRatio(0.8); // 0.5*0.8 + 0.5*0.4
    EXPECT_DOUBLE_EQ(m.drainFactor(), 0.6);
}

TEST(SloDrain, RatioClampsIntoWorkingRange)
{
    SloAdmission m(shedCfg());
    m.noteDrainRatio(0.0);
    EXPECT_DOUBLE_EQ(m.drainFactor(), 0.05);
    SloAdmission m2(shedCfg());
    m2.noteDrainRatio(3.0); // overshoot (clock jitter) caps at nominal
    EXPECT_DOUBLE_EQ(m2.drainFactor(), 1.0);
}

TEST(SloDecide, ShedsOnlyPastTheBudget)
{
    SloAdmission m(shedCfg());
    // 40 ms of work over 2 slots -> 20 ms predicted.
    ShedDecision d = m.decide(msec(40), 0, 2, msec(25));
    EXPECT_FALSE(d.shed);
    EXPECT_EQ(d.predicted, msec(20));
    EXPECT_EQ(d.budget, msec(25));
    d = m.decide(msec(40), 0, 2, msec(15));
    EXPECT_TRUE(d.shed);
}

TEST(SloDecide, SafetyMarginShedsEarlier)
{
    // safety 2.0: a 20 ms prediction breaches a 30 ms budget.
    SloAdmission strict(shedCfg(2.0));
    EXPECT_TRUE(strict.decide(msec(40), 0, 2, msec(30)).shed);
    SloAdmission lax(shedCfg(1.0));
    EXPECT_FALSE(lax.decide(msec(40), 0, 2, msec(30)).shed);
}

TEST(SloDecide, ZeroBudgetNeverSheds)
{
    // No queue target configured for the class: the front door stays
    // open no matter how deep the backlog is.
    SloAdmission m(shedCfg());
    EXPECT_FALSE(m.decide(sec(10), sec(1), 1, 0).shed);
}

TEST(SloDecide, DisabledConfigNeverSheds)
{
    PredictiveShedConfig off;
    SloAdmission m(off);
    const ShedDecision d = m.decide(sec(10), sec(1), 1, msec(1));
    EXPECT_FALSE(d.shed);
    // The prediction is still reported for observability.
    EXPECT_GT(d.predicted, msec(1));
}

} // namespace
} // namespace neon
