/**
 * @file
 * Unit tests for the GlobalVirtualClock's pure decision logic
 * (steering and migration planning over synthetic samples) and for
 * the live sampling path over a real fleet.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "serve/global_clock.hh"

namespace neon
{
namespace
{

DeviceClockSample
dev(std::size_t index, Tick norm_vtime, std::size_t live,
    double speed = 1.0)
{
    DeviceClockSample s;
    s.index = index;
    s.speedFactor = speed;
    s.hasVtime = true;
    s.vtime = static_cast<Tick>(static_cast<double>(norm_vtime) / speed);
    s.normVtime = norm_vtime;
    s.liveTasks = live;
    return s;
}

TEST(GlobalClock, SteeringPicksMostLaggingWithFreeSlot)
{
    const std::vector<DeviceClockSample> fleet = {
        dev(0, msec(50), 1),
        dev(1, msec(10), 1), // most lagging
        dev(2, msec(30), 1),
    };
    EXPECT_EQ(GlobalVirtualClock::pickLagging(fleet, 2), 1u);
}

TEST(GlobalClock, SteeringSkipsFullDevices)
{
    const std::vector<DeviceClockSample> fleet = {
        dev(0, msec(50), 1),
        dev(1, msec(10), 2), // most lagging but full
        dev(2, msec(30), 1),
    };
    EXPECT_EQ(GlobalVirtualClock::pickLagging(fleet, 2), 2u);
}

TEST(GlobalClock, SteeringTieBreaksByFewerTasksThenIndex)
{
    const std::vector<DeviceClockSample> idle = {
        dev(0, 0, 1),
        dev(1, 0, 0),
        dev(2, 0, 0),
    };
    EXPECT_EQ(GlobalVirtualClock::pickLagging(idle, 2), 1u);
}

TEST(GlobalClock, SteeringFallsBackToLeastCrowdedWhenAllFull)
{
    const std::vector<DeviceClockSample> full = {
        dev(0, msec(5), 3),
        dev(1, msec(9), 2),
    };
    EXPECT_EQ(GlobalVirtualClock::pickLagging(full, 2), 1u);
}

TEST(GlobalClock, MigrationMovesOffLaggingOntoAheadDevice)
{
    const std::vector<DeviceClockSample> fleet = {
        dev(0, msec(5), 2),  // over-committed: lags by 55 ms
        dev(1, msec(60), 1), // ahead, has a free slot
    };
    const MigrationPlan plan =
        GlobalVirtualClock::planMigration(fleet, msec(20), 2, 2);
    ASSERT_TRUE(plan.migrate);
    EXPECT_EQ(plan.from, 0u);
    EXPECT_EQ(plan.to, 1u);
    EXPECT_EQ(plan.lag, msec(55));
}

TEST(GlobalClock, MigrationRespectsThresholdAndMinTasks)
{
    const std::vector<DeviceClockSample> mild = {
        dev(0, msec(50), 2),
        dev(1, msec(60), 1),
    };
    // 10 ms spread is under the 20 ms threshold.
    EXPECT_FALSE(
        GlobalVirtualClock::planMigration(mild, msec(20), 2, 2).migrate);

    const std::vector<DeviceClockSample> lone = {
        dev(0, msec(5), 1), // lags badly, but only one task lives there
        dev(1, msec(60), 1),
    };
    EXPECT_FALSE(
        GlobalVirtualClock::planMigration(lone, msec(20), 2, 2).migrate);
    // Disabled threshold never migrates.
    EXPECT_FALSE(GlobalVirtualClock::planMigration(lone, 0, 1, 2).migrate);
}

TEST(GlobalClock, MigrationNeedsAFreeTargetSlot)
{
    const std::vector<DeviceClockSample> full_target = {
        dev(0, msec(5), 2),
        dev(1, msec(60), 2), // ahead but full
    };
    EXPECT_FALSE(GlobalVirtualClock::planMigration(full_target, msec(20),
                                                   2, 2)
                     .migrate);
}

TEST(GlobalClock, LiveSampleNormalizesBySpeedFactor)
{
    // Two DFQ devices, the first 2x fast. Saturate both and check the
    // sample: normVtime must equal vtime x speed.
    ExperimentConfig cfg;
    cfg.sched = SchedKind::DisengagedFq;
    cfg.fleet.devices = 2;
    cfg.fleet.placement = PlacementKind::RoundRobin;
    cfg.fleet.speedFactors = {2.0, 1.0};
    FleetWorld world(cfg);
    for (int i = 0; i < 4; ++i)
        world.spawn(WorkloadSpec::throttle(usec(430)));
    world.start();
    world.runFor(sec(1));

    GlobalVirtualClock clock(world.fleet, 2);
    const auto samples = clock.sample();
    ASSERT_EQ(samples.size(), 2u);
    for (const DeviceClockSample &s : samples) {
        EXPECT_TRUE(s.hasVtime);
        EXPECT_GT(s.vtime, 0);
        EXPECT_EQ(s.normVtime,
                  static_cast<Tick>(static_cast<double>(s.vtime) *
                                    s.speedFactor));
    }
    EXPECT_GT(clock.fleetVtime(), 0);
}

} // namespace
} // namespace neon
