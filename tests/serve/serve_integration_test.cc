/**
 * @file
 * The serving layer's acceptance scenario: four heterogeneous DFQ
 * devices under an open Poisson load whose peak in-system session
 * count is at least twice the fleet's channel capacity. The admission
 * queue must drain (no admitted session starves), every departed
 * session's usage must be accounted exactly, cross-device fairness
 * over speed-normalized service must stay within 10% of the
 * single-device DFQ bound, and at least one migration must occur and
 * be reflected consistently in per-device and per-task metrics.
 */

#include <gtest/gtest.h>

#include "fleet/fleet_metrics.hh"
#include "harness/serve_runner.hh"

namespace neon
{
namespace
{

TEST(ServeIntegration, OpenPoissonLoadOnHeterogeneousFleet)
{
    ExperimentConfig cfg;
    cfg.sched = SchedKind::DisengagedFq;
    cfg.fleet.devices = 4;
    cfg.fleet.speedFactors = {1.25, 1.0, 1.0, 0.75};
    cfg.serve.slotsPerDevice = 2; // fleet capacity: 8 sessions
    cfg.serve.admission = AdmissionKind::Fifo;
    cfg.serve.useGlobalClock = true;
    cfg.serve.clockPeriod = msec(10);
    cfg.serve.migrationLag = msec(10);
    cfg.serve.migrationMinTasks = 2;
    cfg.measure = sec(4);

    // Offered load: 100 sessions/s for 1.2 s, each living 250 ms once
    // admitted — a peak offered population of ~25 against 8 slots, so
    // the queue builds during the arrival window and drains after it.
    WorkloadSpec w = WorkloadSpec::throttle(usec(430));
    w.label = "open";
    ServeWorkloadSpec spec{w, ArrivalSpec::poisson(100.0, sec(1.2)),
                           LifetimeSpec::fixed(msec(250))};

    ServeWorld world(cfg, {spec});
    world.start();
    world.runFor(cfg.measure);
    const ServeRunResult r = world.results();

    // The load really was open and oversubscribed.
    EXPECT_GE(r.arrivals, 80u);
    EXPECT_EQ(r.capacity, 8u);
    EXPECT_GE(r.peakLiveSessions, 2 * r.capacity);
    EXPECT_GT(r.peakQueueDepth, 0u);

    // The admission queue drained: no queued session was left behind,
    // and every admitted session departed (none starved, none killed).
    EXPECT_EQ(r.queuedAtEnd, 0u);
    EXPECT_EQ(r.kills, 0u);
    std::uint64_t admitted = 0;
    for (const auto &s : r.sessions) {
        ASSERT_TRUE(s.wasAdmitted()) << s.label << " never admitted";
        ASSERT_TRUE(s.hasDeparted()) << s.label << " never departed";
        ++admitted;
        EXPECT_GT(s.requests, 0u) << s.label;
    }
    EXPECT_EQ(admitted, r.arrivals);
    EXPECT_EQ(r.departures, r.arrivals);

    // Every departed session's usage is accounted: session-side sums
    // equal the per-device ground-truth meters exactly.
    Tick session_busy = 0;
    std::uint64_t session_reqs = 0;
    for (const auto &s : r.sessions) {
        session_busy += s.busy;
        session_reqs += s.requests;
    }
    Tick meter_busy = 0;
    std::uint64_t meter_reqs = 0;
    for (std::size_t i = 0; i < world.fleet.deviceCount(); ++i) {
        const UsageMeter &m = world.fleet.stack(i).meter;
        meter_busy += m.totalBusy();
        for (const auto &kv : m.perTaskBusy())
            meter_reqs += m.requestsOf(kv.first);
    }
    EXPECT_EQ(session_busy, meter_busy);
    EXPECT_EQ(session_reqs, meter_reqs);
    EXPECT_EQ(session_reqs, r.requests);

    // All four devices served work.
    ASSERT_EQ(r.deviceBusy.size(), 4u);
    for (Tick busy : r.deviceBusy)
        EXPECT_GT(busy, 0);

    // Cross-device fairness over speed-normalized service: within 10%
    // of what a single DFQ device achieves for the same per-device
    // multiprogramming (two saturating tenants on one device).
    ExperimentConfig single_cfg;
    single_cfg.sched = SchedKind::DisengagedFq;
    single_cfg.measure = sec(2);
    const FleetRunResult single = FleetRunner(single_cfg).run({
        WorkloadSpec::throttle(usec(430)),
        WorkloadSpec::throttle(usec(430)),
    });
    EXPECT_GE(r.serviceFairness,
              0.9 * single.fairness.taskFairness)
        << "serve fairness " << r.serviceFairness
        << " vs single-device bound " << single.fairness.taskFairness;

    // At least one migration happened, and it is reflected
    // consistently: per-session counts sum to the engine total, each
    // migrated session's device history records the move, and every
    // device it visited logged usage for it (per-device metrics agree
    // with the per-task view).
    EXPECT_GE(r.migrations, 1u);
    std::uint64_t session_migrations = 0;
    bool saw_multi_device = false;
    for (const auto &s : r.sessions) {
        session_migrations += static_cast<std::uint64_t>(s.migrations);
        ASSERT_EQ(s.devices.size(),
                  static_cast<std::size_t>(s.migrations) + 1);
        if (s.devices.size() > 1)
            saw_multi_device = true;
        for (std::size_t i = 1; i < s.devices.size(); ++i)
            EXPECT_NE(s.devices[i], s.devices[i - 1]);
    }
    EXPECT_EQ(session_migrations, r.migrations);
    EXPECT_TRUE(saw_multi_device);

    // SLO accounting covered the whole population.
    EXPECT_EQ(r.slo.queueDelayMs.count, r.arrivals);
    EXPECT_EQ(r.slo.sojournMs.count, r.departures);
    EXPECT_GT(r.slo.queueDelayMs.max, 0.0);
    EXPECT_GE(r.slo.sojournMs.p50, 250.0 - 1.0);
}

TEST(ServeIntegration, FairShareAdmissionBalancesTenantsUnderOverload)
{
    // Tenant A floods the queue ahead of tenant B; fair-share release
    // still lets B in as slots free, while FIFO would make B wait out
    // A's whole backlog.
    ExperimentConfig cfg;
    cfg.sched = SchedKind::Direct;
    cfg.fleet.devices = 1;
    cfg.serve.slotsPerDevice = 2;
    cfg.serve.admission = AdmissionKind::FairShare;
    cfg.measure = sec(1);

    WorkloadSpec wa = WorkloadSpec::throttle(usec(100));
    wa.label = "A";
    WorkloadSpec wb = WorkloadSpec::throttle(usec(100));
    wb.label = "B";

    // A: 10 sessions at t=0; B: one at t=1ms. Lifetimes 50 ms.
    std::vector<Tick> burst(10, 0);
    ServeWorkloadSpec a{wa, ArrivalSpec::trace(burst),
                        LifetimeSpec::fixed(msec(50)), "A"};
    ServeWorkloadSpec b{wb, ArrivalSpec::trace({msec(1)}),
                        LifetimeSpec::fixed(msec(50)), "B"};

    ServeRunner runner(cfg);
    const ServeRunResult r = runner.run({a, b}, /*with_slowdowns=*/false);

    const ServeSessionResult &bs = r.byLabel("B#10");
    ASSERT_TRUE(bs.wasAdmitted());
    // B jumps the eight queued A sessions at the first departure.
    EXPECT_NEAR(toMsec(bs.admitted), 50.0, 2.0);
    EXPECT_EQ(r.departures, 11u);
    EXPECT_EQ(r.queuedAtEnd, 0u);
}

TEST(ServeIntegration, DeviceDeathAmidMigrationsReconcilesMeters)
{
    // Teardown race 1: the global clock keeps migrating sessions off
    // the slow device while a scripted death — landing on a clock-tick
    // boundary, after migrations have happened — takes that same
    // device down. Both paths retire incarnations; every one must be
    // folded exactly once into the session ledger.
    ExperimentConfig cfg;
    cfg.sched = SchedKind::DisengagedFq;
    cfg.fleet.devices = 2;
    cfg.fleet.speedFactors = {1.5, 0.5}; // heavy skew: migrations flow 1 -> 0
    cfg.serve.slotsPerDevice = 3;
    cfg.serve.useGlobalClock = true;
    cfg.serve.clockPeriod = msec(10);
    cfg.serve.migrationLag = msec(10);
    cfg.serve.migrationMinTasks = 1;
    cfg.measure = sec(3);

    cfg.fault.plan.script = {
        {msec(600), FaultKind::DeviceDeath, 1, msec(400)},
    };

    std::vector<Tick> arrivals;
    for (int i = 0; i < 10; ++i)
        arrivals.push_back(i * msec(20));
    WorkloadSpec w = WorkloadSpec::throttle(usec(430));
    w.label = "mig";
    const std::vector<ServeWorkloadSpec> specs = {
        {w, ArrivalSpec::trace(arrivals), LifetimeSpec::fixed(sec(1))},
    };

    ServeWorld world(cfg, specs);
    world.start();
    world.runFor(cfg.measure);
    const ServeRunResult r = world.results();

    // Migrations occurred, the death interrupted sessions, everyone
    // came back, and the run drained.
    EXPECT_GE(r.migrations, 1u);
    EXPECT_GE(r.evictions, 1u);
    EXPECT_EQ(r.kills, 0u);
    EXPECT_EQ(r.shedSessions, 0u);
    EXPECT_GE(r.recoveryRate, 0.95);
    EXPECT_EQ(r.departures, r.arrivals);
    EXPECT_EQ(r.queuedAtEnd, 0u);

    // Exact reconciliation: per-session sums equal the ground-truth
    // meters even with eviction and migration folds interleaved.
    Tick session_busy = 0;
    std::uint64_t session_reqs = 0;
    for (const auto &s : r.sessions) {
        session_busy += s.busy;
        session_reqs += s.requests;
        // Device history stays coherent across evict/migrate folds.
        ASSERT_GE(s.devices.size(), 1u);
    }
    Tick meter_busy = 0;
    std::uint64_t meter_reqs = 0;
    for (std::size_t i = 0; i < world.fleet.deviceCount(); ++i) {
        const UsageMeter &m = world.fleet.stack(i).meter;
        meter_busy += m.totalBusy();
        for (const auto &kv : m.perTaskBusy())
            meter_reqs += m.requestsOf(kv.first);
    }
    EXPECT_EQ(session_busy, meter_busy);
    EXPECT_EQ(session_reqs, meter_reqs);
}

TEST(ServeIntegration, VoluntaryRetireBeatsWatchdogAndMetersReconcile)
{
    // Teardown race 2: a channel hang wedges a session whose lifetime
    // expires before the watchdog's hangTimeout. The voluntary
    // Process::retire tears down the wedged incarnation first; the
    // watchdog must not convict anyone afterwards, and the partial
    // occupancy of the hung request must land in the meters exactly.
    ExperimentConfig cfg;
    cfg.sched = SchedKind::Direct;
    cfg.fleet.devices = 2;
    cfg.serve.slotsPerDevice = 2;
    cfg.measure = sec(1);

    cfg.fault.watchdog.enabled = true;
    cfg.fault.watchdog.checkPeriod = msec(5);
    cfg.fault.watchdog.hangTimeout = msec(200); // slower than the retire
    cfg.fault.watchdog.runawayTimeout = 0;

    cfg.fault.plan.script = {
        {msec(100), FaultKind::ChannelHang, 0, 0},
        {msec(100), FaultKind::ChannelHang, 1, 0},
    };

    WorkloadSpec w = WorkloadSpec::throttle(usec(300));
    w.label = "short";
    const std::vector<ServeWorkloadSpec> specs = {
        {w, ArrivalSpec::trace({0, 0, 0, 0}),
         LifetimeSpec::fixed(msec(150))},
    };

    ServeWorld world(cfg, specs);
    world.start();
    world.runFor(cfg.measure);
    const ServeRunResult r = world.results();

    // Every session departs on its own clock; no watchdog conviction.
    EXPECT_EQ(r.fault.injectedHangs, 2u);
    EXPECT_EQ(r.kills, 0u);
    EXPECT_EQ(r.fault.watchdogHangKills, 0u);
    EXPECT_EQ(r.departures, r.arrivals);
    EXPECT_EQ(r.queuedAtEnd, 0u);

    // The wedged requests occupied engines from injection to retire;
    // that occupancy is charged and reconciles exactly.
    Tick session_busy = 0;
    std::uint64_t session_reqs = 0;
    for (const auto &s : r.sessions) {
        session_busy += s.busy;
        session_reqs += s.requests;
    }
    Tick meter_busy = 0;
    std::uint64_t meter_reqs = 0;
    for (std::size_t i = 0; i < world.fleet.deviceCount(); ++i) {
        const UsageMeter &m = world.fleet.stack(i).meter;
        meter_busy += m.totalBusy();
        for (const auto &kv : m.perTaskBusy())
            meter_reqs += m.requestsOf(kv.first);
    }
    EXPECT_EQ(session_busy, meter_busy);
    EXPECT_EQ(session_reqs, meter_reqs);
    EXPECT_GT(session_busy, 0);
}

} // namespace
} // namespace neon
