/**
 * @file
 * Deterministic serve-engine scenarios: admission queueing and drain,
 * full usage accounting across departures, protection kills freeing
 * slots, sticky spill-and-return under dynamic arrivals/departures,
 * and clock-steered migration.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "harness/serve_runner.hh"
#include "workload/adversary.hh"

namespace neon
{
namespace
{

/** Base config: cheap Direct scheduling for pure lifecycle tests. */
ExperimentConfig
serveConfig(std::size_t devices, std::size_t slots,
            SchedKind sched = SchedKind::Direct)
{
    ExperimentConfig cfg;
    cfg.sched = sched;
    cfg.fleet.devices = devices;
    cfg.fleet.placement = PlacementKind::LeastLoaded;
    cfg.serve.slotsPerDevice = slots;
    return cfg;
}

ServeWorkloadSpec
throttleAt(const std::string &label, std::vector<Tick> times,
           Tick lifetime, const std::string &affinity = "")
{
    WorkloadSpec w = WorkloadSpec::throttle(usec(100));
    w.label = label;
    if (!affinity.empty())
        w.withAffinity(affinity);
    return {std::move(w), ArrivalSpec::trace(std::move(times)),
            LifetimeSpec::fixed(lifetime)};
}

TEST(ServeEngine, QueuesBeyondCapacityAndDrains)
{
    // One device, two slots, four arrivals: the third and fourth wait
    // for departures, strictly FIFO.
    ExperimentConfig cfg = serveConfig(1, 2);
    cfg.measure = msec(400);
    ServeRunner runner(cfg);

    const ServeRunResult r = runner.run(
        {
            throttleAt("a", {0}, msec(50)),
            throttleAt("b", {usec(10)}, msec(50)),
            throttleAt("c", {usec(20)}, msec(50)),
            throttleAt("d", {usec(30)}, msec(50)),
        },
        /*with_slowdowns=*/false);

    EXPECT_EQ(r.arrivals, 4u);
    EXPECT_EQ(r.departures, 4u);
    EXPECT_EQ(r.kills, 0u);
    EXPECT_EQ(r.queuedAtEnd, 0u);
    EXPECT_EQ(r.capacity, 2u);
    EXPECT_EQ(r.peakQueueDepth, 2u);
    EXPECT_EQ(r.peakLiveSessions, 4u);

    const ServeSessionResult &a = r.byLabel("a#0");
    const ServeSessionResult &c = r.byLabel("c#2");
    const ServeSessionResult &d = r.byLabel("d#3");
    // a and b admit immediately; c waits for a's departure, d for b's.
    EXPECT_EQ(a.admitted, a.arrived);
    EXPECT_GE(c.admitted, msec(50));
    EXPECT_GE(d.admitted, msec(50));
    EXPECT_GE(d.admitted, c.admitted);
    // Everyone got device time and departed after its 50 ms lifetime.
    for (const auto &s : r.sessions) {
        EXPECT_TRUE(s.hasDeparted()) << s.label;
        EXPECT_GT(s.busy, 0) << s.label;
        EXPECT_GT(s.requests, 0u) << s.label;
        EXPECT_NEAR(toMsec(s.departed - s.admitted), 50.0, 1.0);
    }
    // Queueing-delay SLO covers the two queued sessions.
    EXPECT_EQ(r.slo.queueDelayMs.count, 4u);
    EXPECT_GT(r.slo.queueDelayMs.max, 40.0);
    EXPECT_EQ(r.slo.sojournMs.count, 4u);
}

TEST(ServeEngine, UsageFullyAccountedAcrossDepartures)
{
    ExperimentConfig cfg = serveConfig(2, 2);
    cfg.measure = msec(300);
    ServeWorld world(cfg, {
                              throttleAt("a", {0, usec(10), usec(20),
                                               usec(30), msec(100)},
                                         msec(40)),
                          });
    world.start();
    world.runFor(cfg.measure);
    const ServeRunResult r = world.results();

    EXPECT_EQ(r.arrivals, 5u);
    EXPECT_EQ(r.departures, 5u);

    // Every departed session's usage stays accounted: the sum over
    // sessions equals the fleet's ground-truth meters exactly.
    Tick session_busy = 0;
    std::uint64_t session_reqs = 0;
    for (const auto &s : r.sessions) {
        session_busy += s.busy;
        session_reqs += s.requests;
    }
    Tick meter_busy = 0;
    for (std::size_t i = 0; i < world.fleet.deviceCount(); ++i)
        meter_busy += world.fleet.stack(i).meter.totalBusy();
    EXPECT_EQ(session_busy, meter_busy);
    EXPECT_EQ(session_reqs, r.requests);
    EXPECT_GT(session_busy, 0);
}

TEST(ServeEngine, ProtectionKillFreesAdmissionSlot)
{
    // A runaway tenant saturates the single slot; DFQ kills it, and
    // the queued well-behaved session takes the freed slot.
    ExperimentConfig cfg = serveConfig(1, 1, SchedKind::DisengagedFq);
    cfg.dfq.killThreshold = msec(100);
    cfg.measure = sec(1.5);

    WorkloadSpec evil = WorkloadSpec::custom(
        "evil", [](Task &t, std::uint64_t) {
            return infiniteKernelBody(t, 3, usec(100));
        });
    ServeWorkloadSpec evil_spec{evil, ArrivalSpec::trace({0}),
                                LifetimeSpec::forever()};
    ServeWorkloadSpec good_spec{WorkloadSpec::throttle(usec(100)),
                                ArrivalSpec::trace({msec(1)}),
                                LifetimeSpec::fixed(msec(100))};
    good_spec.workload.label = "good";

    ServeRunner runner(cfg);
    const ServeRunResult r =
        runner.run({evil_spec, good_spec}, /*with_slowdowns=*/false);

    EXPECT_EQ(r.kills, 1u);
    const ServeSessionResult &bad = r.byLabel("evil#0");
    const ServeSessionResult &good = r.byLabel("good#1");
    EXPECT_TRUE(bad.killed);
    EXPECT_TRUE(bad.hasDeparted());
    EXPECT_FALSE(good.killed);
    EXPECT_TRUE(good.wasAdmitted());
    EXPECT_GE(good.admitted, bad.departed);
    EXPECT_TRUE(good.hasDeparted());
    EXPECT_GT(good.requests, 0u);
    EXPECT_EQ(r.queuedAtEnd, 0u);
}

TEST(ServeEngine, StickySpillAndReturnWithEviction)
{
    // The ROADMAP's dynamic-arrival/departure sticky scenario:
    //  t=0      T-a arrives -> home device picked, affinity T mapped
    //  t=10ms   T-b arrives -> home at capacity, spills elsewhere
    //  t=30ms   T-a departs -> home frees, T-b still pins the mapping
    //  t=50ms   T-c arrives -> returns to the home device
    //  t=80ms   T-c departs; t=110ms T-b departs -> key evicted
    //  t=120ms  B arrives and occupies the old home device
    //  t=200ms  T-d arrives -> re-places against current load (not the
    //           dead mapping), landing on the other device
    ExperimentConfig cfg = serveConfig(2, 4);
    cfg.fleet.placement = PlacementKind::Sticky;
    cfg.fleet.stickyCapacity = 1;

    std::vector<ServeWorkloadSpec> specs = {
        throttleAt("T-a", {0}, msec(30), "T"),
        throttleAt("T-b", {msec(10)}, msec(100), "T"),
        throttleAt("T-c", {msec(50)}, msec(30), "T"),
        throttleAt("B", {msec(120)}, msec(300), "B"),
        throttleAt("T-d", {msec(200)}, msec(50), "T"),
    };

    ServeWorld world(cfg, specs);
    auto *sticky =
        dynamic_cast<StickyPlacement *>(&world.fleet.placement());
    ASSERT_NE(sticky, nullptr);

    world.start();
    world.runFor(msec(20));
    const int home = sticky->preferredOf("T");
    ASSERT_GE(home, 0);

    // T-b spilled off the over-capacity home while the mapping held.
    world.runFor(msec(20)); // t=40ms
    const ServeRunResult mid = world.results();
    const std::size_t home_dev = static_cast<std::size_t>(home);
    EXPECT_EQ(mid.byLabel("T-a#0").devices.at(0), home_dev);
    EXPECT_NE(mid.byLabel("T-b#1").devices.at(0), home_dev);
    EXPECT_EQ(sticky->preferredOf("T"), home);

    // T-c returns home after T-a's departure freed capacity.
    world.runFor(msec(30)); // t=70ms
    EXPECT_EQ(world.results().byLabel("T-c#2").devices.at(0), home_dev);

    // All T sessions gone: the affinity key is evicted.
    world.runFor(msec(45)); // t=115ms
    EXPECT_EQ(sticky->preferredOf("T"), -1);

    // Returning tenant re-places against current load: B occupies the
    // old home, so T-d maps to the other device.
    world.runFor(msec(100)); // t=215ms
    const ServeRunResult late = world.results();
    EXPECT_EQ(late.byLabel("B#3").devices.at(0), home_dev);
    EXPECT_NE(late.byLabel("T-d#4").devices.at(0), home_dev);
    EXPECT_EQ(sticky->preferredOf("T"),
              static_cast<int>(late.byLabel("T-d#4").devices.at(0)));
}

Co
openAndExitBody(Task &t)
{
    // Open a channel, then end the body while still holding it — the
    // shape of a real app whose later setup fails after earlier opens
    // succeeded. The task goes State::Done with live channels.
    co_await t.openChannel(RequestClass::Compute);
    co_return;
}

TEST(ServeEngine, EarlyExitingBodyStillReleasesChannelsAndAffinity)
{
    ExperimentConfig cfg = serveConfig(2, 2);
    cfg.fleet.placement = PlacementKind::Sticky;

    WorkloadSpec w = WorkloadSpec::custom(
        "early",
        [](Task &t, std::uint64_t) { return openAndExitBody(t); });
    w.withAffinity("E");
    ServeWorkloadSpec spec{w, ArrivalSpec::trace({0}),
                           LifetimeSpec::fixed(msec(20))};

    ServeWorld world(cfg, {spec});
    auto *sticky =
        dynamic_cast<StickyPlacement *>(&world.fleet.placement());
    ASSERT_NE(sticky, nullptr);
    world.start();

    // Mid-lifetime: the body has finished but the session still holds
    // its slot, channel, and affinity mapping.
    world.runFor(msec(10));
    EXPECT_GE(sticky->preferredOf("E"), 0);
    std::size_t active = 0;
    for (std::size_t i = 0; i < world.fleet.deviceCount(); ++i)
        active += world.fleet.stack(i).kernel.activeChannels().size();
    EXPECT_EQ(active, 1u);

    // Departure must reclaim the held channel and evict the affinity
    // key even though the task was already Done, not Running.
    world.runFor(msec(30));
    const ServeRunResult r = world.results();
    EXPECT_EQ(r.departures, 1u);
    EXPECT_EQ(sticky->preferredOf("E"), -1);
    for (std::size_t i = 0; i < world.fleet.deviceCount(); ++i) {
        EXPECT_TRUE(world.fleet.stack(i).kernel.activeChannels().empty())
            << "device " << i << " leaked a channel";
    }
}

TEST(ServeEngine, GlobalClockMigratesOffCrowdedDevice)
{
    // Three forever-sessions on two DFQ devices: steering packs two on
    // one device, whose virtual time then lags the solo device; the
    // clock migrates the crowded device's most-ahead session over.
    ExperimentConfig cfg = serveConfig(2, 2, SchedKind::DisengagedFq);
    cfg.serve.useGlobalClock = true;
    cfg.serve.clockPeriod = msec(10);
    cfg.serve.migrationLag = msec(10);
    cfg.serve.migrationMinTasks = 2;
    cfg.measure = sec(1);

    WorkloadSpec w = WorkloadSpec::throttle(usec(430));
    w.label = "long";
    ServeWorkloadSpec spec{w, ArrivalSpec::trace({0, 0, 0}),
                           LifetimeSpec::forever()};

    ServeWorld world(cfg, {spec});
    world.start();
    world.runFor(cfg.measure);
    const ServeRunResult r = world.results();

    EXPECT_EQ(r.arrivals, 3u);
    EXPECT_GE(r.migrations, 1u);

    // Consistency: per-session migration counts sum to the engine's
    // total, and each migrated session's device history shows a move.
    std::uint64_t session_migrations = 0;
    for (const auto &s : r.sessions) {
        session_migrations += static_cast<std::uint64_t>(s.migrations);
        ASSERT_EQ(s.devices.size(),
                  static_cast<std::size_t>(s.migrations) + 1);
        for (std::size_t i = 1; i < s.devices.size(); ++i)
            EXPECT_NE(s.devices[i], s.devices[i - 1]);
    }
    EXPECT_EQ(session_migrations, r.migrations);

    // Usage is still fully accounted across incarnations.
    Tick session_busy = 0;
    for (const auto &s : r.sessions)
        session_busy += s.busy;
    Tick meter_busy = 0;
    for (std::size_t i = 0; i < world.fleet.deviceCount(); ++i)
        meter_busy += world.fleet.stack(i).meter.totalBusy();
    EXPECT_EQ(session_busy, meter_busy);

    // Both devices ended up doing real work.
    ASSERT_EQ(r.deviceBusy.size(), 2u);
    EXPECT_GT(r.deviceBusy[0], 0);
    EXPECT_GT(r.deviceBusy[1], 0);
}

} // namespace
} // namespace neon
