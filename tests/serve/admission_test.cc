/**
 * @file
 * Unit tests for the AdmissionController: capacity gating, queue
 * ordering under each release policy, tenant accounting, and stats.
 */

#include <gtest/gtest.h>

#include "serve/admission.hh"

namespace neon
{
namespace
{

QueuedRequest
req(std::uint64_t id, const std::string &tenant, double demand = 1.0,
    Tick when = 0)
{
    QueuedRequest r;
    r.session = id;
    r.tenant = tenant;
    r.demand = demand;
    r.enqueued = when;
    return r;
}

TEST(Admission, AdmitsUntilCapacityThenQueues)
{
    AdmissionController adm(AdmissionKind::Fifo, 2);
    EXPECT_TRUE(adm.arrive(req(0, "a")));
    EXPECT_TRUE(adm.arrive(req(1, "b")));
    EXPECT_FALSE(adm.arrive(req(2, "c")));
    EXPECT_EQ(adm.live(), 2u);
    EXPECT_EQ(adm.pendingCount(), 1u);
    EXPECT_EQ(adm.admittedDirect(), 2u);
    EXPECT_EQ(adm.arrivals(), 3u);
}

TEST(Admission, DepartureReleasesFifoOrder)
{
    AdmissionController adm(AdmissionKind::Fifo, 1);
    EXPECT_TRUE(adm.arrive(req(0, "a")));
    EXPECT_FALSE(adm.arrive(req(1, "b", 1.0, usec(1))));
    EXPECT_FALSE(adm.arrive(req(2, "c", 1.0, usec(2))));

    auto rel = adm.depart("a");
    ASSERT_TRUE(rel.has_value());
    EXPECT_EQ(rel->session, 1u);
    rel = adm.depart("b");
    ASSERT_TRUE(rel.has_value());
    EXPECT_EQ(rel->session, 2u);
    rel = adm.depart("c");
    EXPECT_FALSE(rel.has_value());
    EXPECT_EQ(adm.live(), 0u);
    EXPECT_EQ(adm.admittedFromQueue(), 2u);
}

TEST(Admission, NoQueueJumpWhileOthersWait)
{
    // A free slot must not let a newcomer jump an existing queue.
    AdmissionController adm(AdmissionKind::ShortestDemand, 1);
    EXPECT_TRUE(adm.arrive(req(0, "a")));
    EXPECT_FALSE(adm.arrive(req(1, "b", 5.0)));
    auto rel = adm.depart("a");
    ASSERT_TRUE(rel.has_value());
    EXPECT_EQ(rel->session, 1u);
    // Queue was drained before this arrival, so it admits directly.
    EXPECT_FALSE(adm.arrive(req(2, "c", 0.1)));
    EXPECT_EQ(adm.pendingCount(), 1u);
}

TEST(Admission, ShortestDemandPicksLightestRequest)
{
    AdmissionController adm(AdmissionKind::ShortestDemand, 1);
    EXPECT_TRUE(adm.arrive(req(0, "a")));
    EXPECT_FALSE(adm.arrive(req(1, "heavy", 8.0)));
    EXPECT_FALSE(adm.arrive(req(2, "light", 0.5)));
    EXPECT_FALSE(adm.arrive(req(3, "medium", 2.0)));

    auto rel = adm.depart("a");
    ASSERT_TRUE(rel.has_value());
    EXPECT_EQ(rel->session, 2u); // lightest first
    rel = adm.depart("light");
    ASSERT_TRUE(rel.has_value());
    EXPECT_EQ(rel->session, 3u);
    rel = adm.depart("medium");
    ASSERT_TRUE(rel.has_value());
    EXPECT_EQ(rel->session, 1u);
}

TEST(Admission, ShortestDemandBreaksTiesByArrival)
{
    AdmissionController adm(AdmissionKind::ShortestDemand, 1);
    EXPECT_TRUE(adm.arrive(req(0, "a")));
    EXPECT_FALSE(adm.arrive(req(1, "b", 1.0)));
    EXPECT_FALSE(adm.arrive(req(2, "c", 1.0)));
    auto rel = adm.depart("a");
    ASSERT_TRUE(rel.has_value());
    EXPECT_EQ(rel->session, 1u);
}

TEST(Admission, FairSharePrefersTenantWithFewestLive)
{
    AdmissionController adm(AdmissionKind::FairShare, 3);
    // Tenant A fills the fleet; A and B queue behind.
    EXPECT_TRUE(adm.arrive(req(0, "A")));
    EXPECT_TRUE(adm.arrive(req(1, "A")));
    EXPECT_TRUE(adm.arrive(req(2, "A")));
    EXPECT_FALSE(adm.arrive(req(3, "A")));
    EXPECT_FALSE(adm.arrive(req(4, "B")));

    // B has zero live sessions and wins the freed slot despite
    // arriving after A's fourth request.
    auto rel = adm.depart("A");
    ASSERT_TRUE(rel.has_value());
    EXPECT_EQ(rel->session, 4u);
    EXPECT_EQ(adm.liveOf("B"), 1u);
    EXPECT_EQ(adm.liveOf("A"), 2u);

    // Now A (2 live) vs B (1 live): the queued A request still loses
    // to nothing — it is the only one left, so it admits.
    rel = adm.depart("A");
    ASSERT_TRUE(rel.has_value());
    EXPECT_EQ(rel->session, 3u);
}

QueuedRequest
qosReq(std::uint64_t id, const std::string &tenant, int rank,
       Tick deadline = 0, double demand = 1.0)
{
    QueuedRequest r = req(id, tenant, demand);
    r.qosPriority = rank;
    r.deadline = deadline;
    return r;
}

TEST(Admission, QosRankReleasesInteractiveFirst)
{
    // An interactive (rank 0) arrival beats an earlier batch (rank 1)
    // request to the freed slot.
    AdmissionController adm(AdmissionKind::Fifo, 1);
    EXPECT_TRUE(adm.arrive(req(0, "a")));
    EXPECT_FALSE(adm.arrive(qosReq(1, "batch", 1)));
    EXPECT_FALSE(adm.arrive(qosReq(2, "inter", 0)));
    auto rel = adm.depart("a");
    ASSERT_TRUE(rel.has_value());
    EXPECT_EQ(rel->session, 2u);
    rel = adm.depart("inter");
    ASSERT_TRUE(rel.has_value());
    EXPECT_EQ(rel->session, 1u);
}

TEST(Admission, DeadlineBreaksTiesWithinRank)
{
    // Same rank and policy key: the earlier absolute deadline releases
    // first, regardless of enqueue order.
    AdmissionController adm(AdmissionKind::Fifo, 1);
    EXPECT_TRUE(adm.arrive(req(0, "a")));
    EXPECT_FALSE(adm.arrive(qosReq(1, "late", 0, msec(20))));
    EXPECT_FALSE(adm.arrive(qosReq(2, "soon", 0, msec(10))));
    auto rel = adm.depart("a");
    ASSERT_TRUE(rel.has_value());
    EXPECT_EQ(rel->session, 2u);
}

TEST(Admission, NoDeadlineSortsAfterEveryRealDeadline)
{
    // deadline == 0 means "no queue budget" and must lose to any
    // session that actually has one, even a very distant one.
    AdmissionController adm(AdmissionKind::Fifo, 1);
    EXPECT_TRUE(adm.arrive(req(0, "a")));
    EXPECT_FALSE(adm.arrive(qosReq(1, "none", 0, 0)));
    EXPECT_FALSE(adm.arrive(qosReq(2, "far", 0, sec(100))));
    auto rel = adm.depart("a");
    ASSERT_TRUE(rel.has_value());
    EXPECT_EQ(rel->session, 2u);
}

TEST(Admission, SessionIdBreaksFinalTies)
{
    // Identical rank, key, and deadline: the lower session id wins —
    // a total order with no dependence on container layout.
    AdmissionController adm(AdmissionKind::Fifo, 1);
    EXPECT_TRUE(adm.arrive(req(0, "a")));
    EXPECT_FALSE(adm.arrive(qosReq(2, "x", 0, msec(5))));
    EXPECT_FALSE(adm.arrive(qosReq(1, "y", 0, msec(5))));
    auto rel = adm.depart("a");
    ASSERT_TRUE(rel.has_value());
    EXPECT_EQ(rel->session, 1u);
}

TEST(Admission, PolicyKeyOutranksDeadline)
{
    // Within a rank the release policy still rules: shortest-demand
    // picks the lighter request even against a tighter deadline.
    AdmissionController adm(AdmissionKind::ShortestDemand, 1);
    EXPECT_TRUE(adm.arrive(req(0, "a")));
    EXPECT_FALSE(adm.arrive(qosReq(1, "heavy", 0, msec(1), 5.0)));
    EXPECT_FALSE(adm.arrive(qosReq(2, "light", 0, msec(100), 1.0)));
    auto rel = adm.depart("a");
    ASSERT_TRUE(rel.has_value());
    EXPECT_EQ(rel->session, 2u);
}

TEST(Admission, RetryPriorityStillBeatsQosRank)
{
    // A fault-retry request re-enters ahead of everything, including
    // interactive newcomers — it already paid its queueing delay.
    AdmissionController adm(AdmissionKind::Fifo, 1);
    EXPECT_TRUE(adm.arrive(req(0, "a")));
    QueuedRequest retry = qosReq(1, "victim", 1);
    retry.priority = true;
    EXPECT_FALSE(adm.arrive(retry));
    EXPECT_FALSE(adm.arrive(qosReq(2, "inter", 0)));
    auto rel = adm.depart("a");
    ASSERT_TRUE(rel.has_value());
    EXPECT_EQ(rel->session, 1u);
}

TEST(Admission, QosRankDominatesFairShareKey)
{
    // Rank is compared before the fair-share live count: interactive
    // wins the slot even when its tenant already holds more sessions.
    AdmissionController adm(AdmissionKind::FairShare, 2);
    EXPECT_TRUE(adm.arrive(req(0, "I")));
    EXPECT_TRUE(adm.arrive(req(1, "I")));
    EXPECT_FALSE(adm.arrive(qosReq(2, "B", 1)));
    EXPECT_FALSE(adm.arrive(qosReq(3, "I", 0)));
    auto rel = adm.depart("I");
    ASSERT_TRUE(rel.has_value());
    EXPECT_EQ(rel->session, 3u); // rank 0 beats B's lower live count
}

TEST(Admission, PeakPendingTracksHighWaterMark)
{
    AdmissionController adm(AdmissionKind::Fifo, 1);
    EXPECT_TRUE(adm.arrive(req(0, "a")));
    EXPECT_FALSE(adm.arrive(req(1, "b")));
    EXPECT_FALSE(adm.arrive(req(2, "c")));
    EXPECT_EQ(adm.peakPending(), 2u);
    (void)adm.depart("a");
    (void)adm.depart("b");
    EXPECT_EQ(adm.pendingCount(), 0u);
    EXPECT_EQ(adm.peakPending(), 2u);
}

} // namespace
} // namespace neon
