/**
 * @file
 * Unit tests for the token-bucket rate limiter: exact integer refill on
 * the virtual clock, burst exhaustion, per-tenant isolation, and
 * bit-identical decisions across repeats.
 */

#include <gtest/gtest.h>

#include <vector>

#include "serve/rate_limit.hh"

namespace neon
{
namespace
{

TokenBucketConfig
bucketCfg(double rate, double burst = 1.0)
{
    TokenBucketConfig cfg;
    cfg.ratePerSec = rate;
    cfg.burst = burst;
    return cfg;
}

TEST(TokenBucket, FullAtCreationAdmitsTheBurst)
{
    // 100/s with burst 4: four tokens at t=0, the fifth call fails.
    TokenBucket b(bucketCfg(100.0, 4.0));
    EXPECT_EQ(b.availableTokens(0), 4u);
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(b.tryAcquire(0)) << "token " << i;
    EXPECT_FALSE(b.tryAcquire(0));
    EXPECT_EQ(b.availableTokens(0), 0u);
}

TEST(TokenBucket, PeriodIsExactIntegerTicks)
{
    // 100/s -> one token per 10 ms of virtual time, exactly.
    TokenBucket b(bucketCfg(100.0, 1.0));
    EXPECT_EQ(b.tokenPeriod(), msec(10));
    EXPECT_EQ(b.capacityTicks(), msec(10));
}

TEST(TokenBucket, RefillsExactlyOnePeriodPerToken)
{
    TokenBucket b(bucketCfg(100.0, 1.0));
    EXPECT_TRUE(b.tryAcquire(0));
    EXPECT_FALSE(b.tryAcquire(0));
    // One tick short of the period: still empty.
    EXPECT_FALSE(b.tryAcquire(msec(10) - 1));
    // Exactly one period later the token is back.
    EXPECT_TRUE(b.tryAcquire(msec(10)));
    EXPECT_FALSE(b.tryAcquire(msec(10)));
}

TEST(TokenBucket, PartialCreditCarriesAcrossCalls)
{
    // Refill credit accumulates in tick-units: two half-periods make a
    // whole token even though neither alone does.
    TokenBucket b(bucketCfg(100.0, 1.0));
    EXPECT_TRUE(b.tryAcquire(0));
    EXPECT_FALSE(b.tryAcquire(msec(5)));
    EXPECT_TRUE(b.tryAcquire(msec(10)));
}

TEST(TokenBucket, IdleAccumulationCapsAtBurst)
{
    // A long idle gap refills to capacity, never beyond it.
    TokenBucket b(bucketCfg(1000.0, 3.0));
    for (int i = 0; i < 3; ++i)
        EXPECT_TRUE(b.tryAcquire(0));
    EXPECT_EQ(b.availableTokens(sec(100)), 3u);
    for (int i = 0; i < 3; ++i)
        EXPECT_TRUE(b.tryAcquire(sec(100))) << "token " << i;
    EXPECT_FALSE(b.tryAcquire(sec(100)));
}

TEST(TokenBucket, DecisionsAreBitIdenticalAcrossRepeats)
{
    // The same virtual-time call sequence yields the same admit/deny
    // pattern every run — the property the sharded engine leans on.
    const std::vector<Tick> calls = {0,        usec(100), usec(900),
                                     msec(1),  msec(1),   msec(2),
                                     msec(25), msec(25),  msec(26)};
    std::vector<bool> first;
    for (int rep = 0; rep < 3; ++rep) {
        TokenBucket b(bucketCfg(200.0, 2.0));
        std::vector<bool> got;
        for (Tick t : calls)
            got.push_back(b.tryAcquire(t));
        if (rep == 0)
            first = got;
        else
            EXPECT_EQ(got, first) << "repeat " << rep;
    }
}

TEST(TokenBucket, HighRateFloorsPeriodAtOneTick)
{
    // Faster than one token per tick collapses to period 1: every
    // distinct tick has credit, so nothing is ever throttled for long.
    TokenBucket b(bucketCfg(2e9, 1.0));
    EXPECT_EQ(b.tokenPeriod(), 1);
    EXPECT_TRUE(b.tryAcquire(0));
    EXPECT_TRUE(b.tryAcquire(1));
}

TEST(TenantRateLimiter, DisabledPassesEverything)
{
    TenantRateLimiter lim(TokenBucketConfig{});
    EXPECT_FALSE(lim.enabled());
    for (int i = 0; i < 50; ++i)
        EXPECT_TRUE(lim.allow("anyone", 0));
    EXPECT_EQ(lim.passed(), 50u);
    EXPECT_EQ(lim.throttled(), 0u);
}

TEST(TenantRateLimiter, IsolatesTenants)
{
    // Tenant A burning its burst must not spend tenant B's tokens.
    TenantRateLimiter lim(bucketCfg(10.0, 2.0));
    EXPECT_TRUE(lim.allow("A", 0));
    EXPECT_TRUE(lim.allow("A", 0));
    EXPECT_FALSE(lim.allow("A", 0));
    EXPECT_TRUE(lim.allow("B", 0));
    EXPECT_TRUE(lim.allow("B", 0));
    EXPECT_FALSE(lim.allow("B", 0));
    EXPECT_EQ(lim.throttledOf("A"), 1u);
    EXPECT_EQ(lim.throttledOf("B"), 1u);
    EXPECT_EQ(lim.throttledOf("C"), 0u);
}

TEST(TenantRateLimiter, CountersPartitionAllArrivals)
{
    TenantRateLimiter lim(bucketCfg(100.0, 1.0));
    std::uint64_t calls = 0;
    for (int i = 0; i < 20; ++i, ++calls)
        (void)lim.allow("t", msec(i)); // one token per 10 ms: half pass
    EXPECT_EQ(lim.passed() + lim.throttled(), calls);
    EXPECT_GT(lim.passed(), 0u);
    EXPECT_GT(lim.throttled(), 0u);
    EXPECT_EQ(lim.throttledOf("t"), lim.throttled());
}

TEST(TenantRateLimiter, RefillRestoresThrottledTenant)
{
    TenantRateLimiter lim(bucketCfg(100.0, 1.0));
    EXPECT_TRUE(lim.allow("t", 0));
    EXPECT_FALSE(lim.allow("t", usec(1)));
    EXPECT_TRUE(lim.allow("t", msec(10) + usec(1)));
    EXPECT_EQ(lim.passed(), 2u);
    EXPECT_EQ(lim.throttled(), 1u);
}

} // namespace
} // namespace neon
