/**
 * @file
 * End-to-end determinism of sharded serving runs: a 1-shard run is
 * bit-identical to the legacy serial core, an N-shard run is
 * bit-identical across repeats and worker-thread counts, and the
 * session ledger reconciles exactly against the device meters under
 * sharded migration and scripted device death.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "harness/serve_runner.hh"

namespace neon
{
namespace
{

/** Open-system base config: skewed 8-device fleet, clock-steered. */
ExperimentConfig
shardedServeConfig()
{
    ExperimentConfig cfg;
    cfg.sched = SchedKind::DisengagedFq;
    cfg.fleet.devices = 8;
    cfg.fleet.speedFactors = {1.4, 1.0, 0.6, 1.0, 1.2, 0.8, 1.0, 1.0};
    cfg.serve.slotsPerDevice = 2;
    cfg.serve.useGlobalClock = true;
    cfg.serve.clockPeriod = msec(10);
    cfg.serve.migrationLag = msec(15);
    cfg.serve.migrationMinTasks = 1;
    cfg.measure = sec(1);
    return cfg;
}

std::vector<ServeWorkloadSpec>
shardedServeSpecs()
{
    WorkloadSpec heavy = WorkloadSpec::throttle(usec(400));
    heavy.label = "heavy";
    WorkloadSpec light = WorkloadSpec::throttle(usec(150), 0.3);
    light.label = "light";
    return {
        {heavy, ArrivalSpec::poisson(30.0, msec(600)),
         LifetimeSpec::fixed(msec(120))},
        {light, ArrivalSpec::poisson(50.0, msec(600)),
         LifetimeSpec::exponential(msec(80))},
    };
}

/**
 * Full bit-level fingerprint of a run: one line per session with every
 * ledger field plus whole-run counters and the event totals. Any
 * divergence — ordering, placement, usage, event counts — shows up as
 * a line diff.
 */
std::vector<std::string>
runFingerprint(const ExperimentConfig &cfg)
{
    ServeWorld world(cfg, shardedServeSpecs());
    world.start();
    world.runFor(cfg.measure);
    const ServeRunResult r = world.results();

    std::vector<std::string> fp;
    for (const auto &s : r.sessions) {
        std::string devs;
        for (std::size_t d : s.devices)
            devs += std::to_string(d) + ",";
        fp.push_back(s.label + " arr=" + std::to_string(s.arrived) +
                     " adm=" + std::to_string(s.admitted) +
                     " dep=" + std::to_string(s.departed) +
                     " killed=" + std::to_string(s.killed) +
                     " evict=" + std::to_string(s.evictions) +
                     " mig=" + std::to_string(s.migrations) +
                     " busy=" + std::to_string(s.busy) +
                     " reqs=" + std::to_string(s.requests) +
                     " devs=" + devs);
    }
    fp.push_back("arrivals=" + std::to_string(r.arrivals) +
                 " departures=" + std::to_string(r.departures) +
                 " migrations=" + std::to_string(r.migrations) +
                 " kills=" + std::to_string(r.kills) +
                 " evictions=" + std::to_string(r.evictions));
    fp.push_back("fleetBusy=" + std::to_string(world.fleet.totalBusy()));
    fp.push_back("events=" + std::to_string(world.eventsExecuted()));
    return fp;
}

TEST(ShardedServe, OneShardBitIdenticalToSerial)
{
    // shards.count = 0 (the legacy serial core) and count = 1 must
    // take the identical code path: one queue, no threads, no windows.
    ExperimentConfig serial = shardedServeConfig();
    const std::vector<std::string> base = runFingerprint(serial);
    ASSERT_GT(base.size(), 10u) << "scenario too small to mean anything";

    ExperimentConfig one = shardedServeConfig();
    one.shards.count = 1;
    one.shards.threads = 4; // ignored in serial mode
    EXPECT_EQ(runFingerprint(one), base);
}

TEST(ShardedServe, NShardDeterministicAcrossRepeatsAndThreads)
{
    // The parallel decomposition must be a pure function of the
    // simulation: repeats and worker-thread counts change wall-clock
    // interleaving only, never results.
    ExperimentConfig cfg = shardedServeConfig();
    cfg.shards.count = 4;
    cfg.shards.threads = 1;

    const std::vector<std::string> base = runFingerprint(cfg);
    ASSERT_GT(base.size(), 10u);
    EXPECT_EQ(runFingerprint(cfg), base); // repeat, same shape

    cfg.shards.threads = 2;
    EXPECT_EQ(runFingerprint(cfg), base); // oversubscribed workers
    cfg.shards.threads = 4;
    EXPECT_EQ(runFingerprint(cfg), base);
}

TEST(ShardedServe, ShardCountCoversFleetAndWindows)
{
    ExperimentConfig cfg = shardedServeConfig();
    cfg.shards.count = 4;
    cfg.measure = msec(200);

    ServeWorld world(cfg, shardedServeSpecs());
    ASSERT_TRUE(world.shardCore.parallel());
    EXPECT_EQ(world.shardCore.shardCount(), 4u);
    // Harness-derived window: min(poll period, serve clock period).
    EXPECT_EQ(world.shardCore.window(),
              std::min(cfg.pollPeriod > 0 ? cfg.pollPeriod : msec(1),
                       cfg.serve.clockPeriod));

    world.start();
    world.runFor(cfg.measure);
    EXPECT_GT(world.shardCore.windowsRun(), 0u);
    EXPECT_EQ(world.shardCore.now(), msec(200));
}

TEST(ShardedServe, MetersReconcileUnderShardedMigrationAndDeath)
{
    // The hard case from the serial suite, now sharded: clock-steered
    // migration keeps retiring incarnations while a scripted death —
    // injected at a window barrier — evicts the victims, and watchdog
    // hang kills cross shards through the mailboxes. Every incarnation
    // must fold into the session ledger exactly once.
    ExperimentConfig cfg = shardedServeConfig();
    cfg.shards.count = 4;
    cfg.measure = sec(2);

    cfg.fault.watchdog.enabled = true;
    cfg.fault.watchdog.checkPeriod = msec(5);
    cfg.fault.watchdog.hangTimeout = msec(30);
    cfg.fault.watchdog.runawayTimeout = 0;
    cfg.fault.plan.script = {
        {msec(300), FaultKind::DeviceDeath, 0, msec(400)},
        {msec(500), FaultKind::ChannelHang, 1, 0},
    };

    ServeWorld world(cfg, shardedServeSpecs());
    world.start();
    world.runFor(cfg.measure);
    const ServeRunResult r = world.results();

    // The scenario actually exercised the cross-shard paths.
    EXPECT_GE(r.migrations, 1u);
    EXPECT_GE(r.evictions, 1u);
    EXPECT_EQ(r.fault.injectedDeaths, 1u);

    // Exact reconciliation: per-session sums equal the ground-truth
    // per-device meters across eviction, migration, and kill folds.
    Tick session_busy = 0;
    std::uint64_t session_reqs = 0;
    for (const auto &s : r.sessions) {
        session_busy += s.busy;
        session_reqs += s.requests;
    }
    Tick meter_busy = 0;
    std::uint64_t meter_reqs = 0;
    for (std::size_t i = 0; i < world.fleet.deviceCount(); ++i) {
        const UsageMeter &m = world.fleet.stack(i).meter;
        meter_busy += m.totalBusy();
        for (const auto &kv : m.perTaskBusy())
            meter_reqs += m.requestsOf(kv.first);
    }
    EXPECT_EQ(session_busy, meter_busy);
    EXPECT_EQ(session_reqs, meter_reqs);
    EXPECT_GT(session_busy, 0);

    // And the sharded run with faults is still deterministic.
    ServeWorld again(cfg, shardedServeSpecs());
    again.start();
    again.runFor(cfg.measure);
    EXPECT_EQ(again.eventsExecuted(), world.eventsExecuted());
    EXPECT_EQ(again.fleet.totalBusy(), world.fleet.totalBusy());
}

} // namespace
} // namespace neon
