/**
 * @file
 * Integration tests for the fleet layer: routing through FleetWorld,
 * heterogeneous speed factors end to end, throughput scaling, and
 * cross-device fairness under Disengaged Fair Queueing staying within
 * a bound of single-device fairness.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "harness/experiment.hh"
#include "workload/adversary.hh"

namespace neon
{
namespace
{

ExperimentConfig
fleetConfig(std::size_t devices, SchedKind sched = SchedKind::DisengagedFq)
{
    ExperimentConfig cfg;
    cfg.sched = sched;
    cfg.fleet.devices = devices;
    cfg.fleet.placement = PlacementKind::LeastLoaded;
    cfg.measure = sec(2);
    return cfg;
}

TEST(FleetWorld, SpawnRoutesTasksAcrossDevices)
{
    ExperimentConfig cfg = fleetConfig(2);
    cfg.fleet.placement = PlacementKind::RoundRobin;
    FleetWorld world(cfg);
    Task &a = world.spawn(WorkloadSpec::throttle(usec(100)));
    Task &b = world.spawn(WorkloadSpec::throttle(usec(100)));
    Task &c = world.spawn(WorkloadSpec::throttle(usec(100)));

    EXPECT_EQ(world.fleet.deviceOf(a), 0u);
    EXPECT_EQ(world.fleet.deviceOf(b), 1u);
    EXPECT_EQ(world.fleet.deviceOf(c), 0u);
}

TEST(FleetWorld, EachDeviceRunsItsOwnSchedulerInstance)
{
    FleetWorld world(fleetConfig(4));
    ASSERT_EQ(world.fleet.deviceCount(), 4u);
    for (std::size_t i = 0; i < 4; ++i) {
        ASSERT_NE(world.fleet.stack(i).sched, nullptr);
        EXPECT_EQ(world.fleet.stack(i).sched->name(), "disengaged-fq");
        for (std::size_t j = i + 1; j < 4; ++j) {
            EXPECT_NE(world.fleet.stack(i).sched.get(),
                      world.fleet.stack(j).sched.get());
        }
    }
}

TEST(FleetWorld, SingleDeviceFleetMatchesWorldBehaviour)
{
    // devices=1 must reproduce the unsharded world's results closely.
    ExperimentConfig cfg = fleetConfig(1);
    FleetRunner fleet_runner(cfg);
    const FleetRunResult fr =
        fleet_runner.run({WorkloadSpec::throttle(usec(430))});

    ExperimentRunner runner(cfg);
    const RunResult r = runner.run({WorkloadSpec::throttle(usec(430))});

    ASSERT_EQ(fr.tasks.size(), 1u);
    EXPECT_NEAR(fr.tasks[0].meanRoundUs, r.tasks[0].meanRoundUs,
                0.05 * r.tasks[0].meanRoundUs);
}

TEST(FleetWorld, SpeedFactorScalesThroughputEndToEnd)
{
    // Two saturating tasks on two devices, one of which is 2x faster:
    // the task on the fast device completes ~2x the requests.
    ExperimentConfig cfg = fleetConfig(2);
    cfg.fleet.placement = PlacementKind::RoundRobin;
    cfg.fleet.speedFactors = {2.0, 1.0};
    FleetRunner runner(cfg);

    const FleetRunResult r = runner.run({
        WorkloadSpec::throttle(usec(430)),
        WorkloadSpec::throttle(usec(430)),
    });

    ASSERT_EQ(r.tasks[0].device, 0u);
    ASSERT_EQ(r.tasks[1].device, 1u);
    const double ratio = static_cast<double>(r.tasks[0].requests) /
        static_cast<double>(r.tasks[1].requests);
    EXPECT_NEAR(ratio, 2.0, 0.3);
}

TEST(FleetWorld, ThroughputScalesWithDevices)
{
    // Four saturating tasks: two devices should complete close to 2x
    // the requests of one device hosting all four.
    const std::vector<WorkloadSpec> mix = {
        WorkloadSpec::throttle(usec(430)),
        WorkloadSpec::throttle(usec(430)),
        WorkloadSpec::throttle(usec(430)),
        WorkloadSpec::throttle(usec(430)),
    };

    FleetRunner one(fleetConfig(1));
    FleetRunner two(fleetConfig(2));
    const FleetRunResult r1 = one.run(mix);
    const FleetRunResult r2 = two.run(mix);

    EXPECT_GT(r2.throughputRps, 1.7 * r1.throughputRps);
}

TEST(FleetFairness, CrossDeviceWithinBoundOfSingleDevice)
{
    // The acceptance bound: sharding tasks over a fleet must not cost
    // (much) fairness relative to one DFQ device serving them all.
    const std::vector<WorkloadSpec> mix = {
        WorkloadSpec::app("DCT"),
        WorkloadSpec::throttle(usec(1700)),
        WorkloadSpec::app("DCT"),
        WorkloadSpec::throttle(usec(1700)),
    };

    ExperimentConfig single_cfg = fleetConfig(1);
    single_cfg.measure = sec(3);
    ExperimentConfig fleet_cfg = fleetConfig(2);
    fleet_cfg.measure = sec(3);

    const FleetRunResult single = FleetRunner(single_cfg).run(mix);
    const FleetRunResult sharded = FleetRunner(fleet_cfg).run(mix);

    EXPECT_GE(sharded.fairness.taskFairness,
              single.fairness.taskFairness - 0.1);
    // And sharding two like pairs over two devices balances them.
    EXPECT_GT(sharded.fairness.deviceBalance, 0.95);
}

TEST(FleetFairness, DfqVtimesAdvanceOnEveryDevice)
{
    ExperimentConfig cfg = fleetConfig(2);
    FleetWorld world(cfg);
    for (int i = 0; i < 4; ++i)
        world.spawn(WorkloadSpec::throttle(usec(430)));
    world.start();
    world.runFor(sec(1));

    const std::vector<Tick> vts = fleetDfqVtimes(world.fleet);
    ASSERT_EQ(vts.size(), 2u);
    EXPECT_GT(vts[0], 0);
    EXPECT_GT(vts[1], 0);
    // Symmetric halves advance roughly in step.
    EXPECT_LT(fleetVtimeSpreadMs(world.fleet),
              0.5 * toMsec(std::max(vts[0], vts[1])));
}

TEST(FleetFairness, ProtectionStillKillsPerDevice)
{
    // A runaway task on one device is killed without disturbing the
    // tenant of the other device.
    ExperimentConfig cfg = fleetConfig(2);
    cfg.fleet.placement = PlacementKind::RoundRobin;
    cfg.dfq.killThreshold = msec(100);
    FleetRunner runner(cfg);

    const FleetRunResult r = runner.run({
        WorkloadSpec::custom("malicious",
                             [](Task &t, std::uint64_t) {
                                 return infiniteKernelBody(t, 3,
                                                           usec(100));
                             }),
        WorkloadSpec::throttle(usec(100)),
    });

    EXPECT_EQ(r.kills, 1u);
    EXPECT_TRUE(r.tasks[0].killed);
    EXPECT_FALSE(r.tasks[1].killed);
    EXPECT_GT(r.tasks[1].rounds, 10000u);
}

TEST(FleetWorld, StickyPlacementKeepsTenantTogether)
{
    ExperimentConfig cfg = fleetConfig(3);
    cfg.fleet.placement = PlacementKind::Sticky;
    cfg.fleet.stickyCapacity = 2;
    FleetWorld world(cfg);

    Task &a =
        world.spawn(WorkloadSpec::throttle(usec(100)).withAffinity("T"));
    Task &b =
        world.spawn(WorkloadSpec::throttle(usec(100)).withAffinity("T"));
    Task &c =
        world.spawn(WorkloadSpec::throttle(usec(100)).withAffinity("T"));

    EXPECT_EQ(world.fleet.deviceOf(a), world.fleet.deviceOf(b));
    EXPECT_NE(world.fleet.deviceOf(c), world.fleet.deviceOf(a));
}

} // namespace
} // namespace neon
