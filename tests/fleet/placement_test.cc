/**
 * @file
 * Unit tests for the fleet placement policies: deterministic routing,
 * load balance under skew, sticky affinity and overflow spill, and
 * heterogeneity-aware proportional assignment.
 */

#include <gtest/gtest.h>

#include "fleet/placement.hh"

namespace neon
{
namespace
{

std::vector<DeviceLoadView>
homogeneous(std::size_t n)
{
    std::vector<DeviceLoadView> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i].index = i;
    return v;
}

PlacementRequest
req(const std::string &label, const std::string &affinity = "")
{
    PlacementRequest r;
    r.label = label;
    r.affinityKey = affinity;
    return r;
}

TEST(RoundRobinPlacement, CyclesDeterministically)
{
    RoundRobinPlacement p;
    auto devices = homogeneous(3);
    for (int round = 0; round < 3; ++round) {
        EXPECT_EQ(p.place(devices, req("a")), 0u);
        EXPECT_EQ(p.place(devices, req("b")), 1u);
        EXPECT_EQ(p.place(devices, req("c")), 2u);
    }
}

TEST(RoundRobinPlacement, IgnoresLoad)
{
    RoundRobinPlacement p;
    auto devices = homogeneous(2);
    devices[0].busyTime = sec(100); // heavily loaded, still first
    EXPECT_EQ(p.place(devices, req("a")), 0u);
    EXPECT_EQ(p.place(devices, req("b")), 1u);
}

TEST(LeastLoadedPlacement, PicksIdleDeviceUnderSkew)
{
    LeastLoadedPlacement p;
    auto devices = homogeneous(3);
    devices[0].busyTime = msec(800);
    devices[1].busyTime = msec(10);
    devices[2].busyTime = msec(300);
    EXPECT_EQ(p.place(devices, req("a")), 1u);

    // Skew flips; the policy follows.
    devices[1].busyTime = sec(2);
    EXPECT_EQ(p.place(devices, req("b")), 2u);
}

TEST(LeastLoadedPlacement, TieBreaksByTaskCountThenIndex)
{
    LeastLoadedPlacement p;
    auto devices = homogeneous(3);
    devices[0].assignedTasks = 2;
    devices[1].assignedTasks = 1;
    EXPECT_EQ(p.place(devices, req("a")), 2u); // zero tasks wins

    devices[2].assignedTasks = 1;
    EXPECT_EQ(p.place(devices, req("b")), 1u); // equal count: low index
}

TEST(LeastLoadedPlacement, BalancesSequentialArrivals)
{
    // Simulate spawn-time placement: tasks arrive one by one and the
    // snapshot's task counts grow accordingly. Arrivals must spread.
    LeastLoadedPlacement p;
    auto devices = homogeneous(4);
    std::vector<int> perDevice(4, 0);
    for (int i = 0; i < 8; ++i) {
        const std::size_t d = p.place(devices, req("t"));
        ++perDevice[d];
        ++devices[d].assignedTasks;
    }
    for (int count : perDevice)
        EXPECT_EQ(count, 2);
}

TEST(StickyPlacement, SameKeyPrefersTheSameDevice)
{
    StickyPlacement p(4);
    auto devices = homogeneous(3);
    const std::size_t first = p.place(devices, req("a", "tenantX"));
    ++devices[first].assignedTasks;

    // Make another device strictly less loaded; affinity still wins.
    devices[(first + 1) % 3].busyTime = 0;
    devices[first].busyTime = msec(50);
    EXPECT_EQ(p.place(devices, req("b", "tenantX")), first);
    EXPECT_EQ(p.preferredOf("tenantX"), static_cast<int>(first));
}

TEST(StickyPlacement, FallsBackToLabelWhenNoKey)
{
    StickyPlacement p(4);
    auto devices = homogeneous(2);
    const std::size_t first = p.place(devices, req("lbl"));
    ++devices[first].assignedTasks;
    EXPECT_EQ(p.place(devices, req("lbl")), first);
}

TEST(StickyPlacement, OverflowSpillsToLeastLoaded)
{
    StickyPlacement p(2); // capacity: 2 tasks per device
    auto devices = homogeneous(3);

    const std::size_t home = p.place(devices, req("a", "hot"));
    ++devices[home].assignedTasks;
    EXPECT_EQ(p.place(devices, req("b", "hot")), home);
    ++devices[home].assignedTasks;

    // Home is at capacity: the next arrival spills elsewhere — even
    // when home is the least-loaded device by busy time.
    devices[home].busyTime = 0;
    for (auto &d : devices) {
        if (d.index != home)
            d.busyTime = msec(50);
    }
    const std::size_t spill = p.place(devices, req("c", "hot"));
    EXPECT_NE(spill, home);
    ++devices[spill].assignedTasks;

    // ...but the mapping survives, so arrivals return once it drains.
    devices[home].assignedTasks = 1;
    EXPECT_EQ(p.place(devices, req("d", "hot")), home);
}

TEST(StickyPlacement, SingleDeviceNeverSpills)
{
    StickyPlacement p(1);
    auto devices = homogeneous(1);
    devices[0].assignedTasks = 5; // far over capacity, nowhere to go
    EXPECT_EQ(p.place(devices, req("a", "hot")), 0u);
    EXPECT_EQ(p.place(devices, req("b", "hot")), 0u);
}

TEST(StickyPlacement, DistinctKeysSpreadAcrossDevices)
{
    StickyPlacement p(2);
    auto devices = homogeneous(3);
    std::vector<int> perDevice(3, 0);
    for (int i = 0; i < 6; ++i) {
        const std::size_t d =
            p.place(devices, req("t", "key" + std::to_string(i)));
        ++perDevice[d];
        ++devices[d].assignedTasks;
    }
    for (int count : perDevice)
        EXPECT_EQ(count, 2);
}

TEST(StickyPlacement, EvictsKeyWhenLastLiveTaskDeparts)
{
    StickyPlacement p(2);
    auto devices = homogeneous(2);

    // Two tasks of tenant "hot" land on device 0.
    EXPECT_EQ(p.place(devices, req("a", "hot")), 0u);
    p.noteTaskPlaced(req("a", "hot"), 0);
    EXPECT_EQ(p.place(devices, req("b", "hot")), 0u);
    p.noteTaskPlaced(req("b", "hot"), 0);
    EXPECT_EQ(p.preferredOf("hot"), 0);

    // One departs: the mapping survives for the remaining task.
    p.noteTaskDeparted(req("a", "hot"), 0);
    EXPECT_EQ(p.preferredOf("hot"), 0);

    // Last one departs: the key is evicted, and a returning tenant
    // re-places against current load (device 1 is now emptier).
    p.noteTaskDeparted(req("b", "hot"), 0);
    EXPECT_EQ(p.preferredOf("hot"), -1);

    devices[0].busyTime = msec(500);
    devices[1].busyTime = msec(5);
    EXPECT_EQ(p.place(devices, req("c", "hot")), 1u);
}

TEST(StickyPlacement, ForcedPlacementKeepsLiveCountBalanced)
{
    // noteTaskPlaced without a preceding place() (serve steering or
    // migration) must create the mapping and count the task, so a
    // later departure still balances to eviction.
    StickyPlacement p(2);
    p.noteTaskPlaced(req("m", "mig"), 1);
    EXPECT_EQ(p.preferredOf("mig"), 1);
    p.noteTaskDeparted(req("m", "mig"), 1);
    EXPECT_EQ(p.preferredOf("mig"), -1);
    // Departures for unknown keys are ignored, not fatal.
    p.noteTaskDeparted(req("x", "ghost"), 0);
}

TEST(HeterogeneityAwarePlacement, FasterDeviceAbsorbsProportionalShare)
{
    HeterogeneityAwarePlacement p;
    auto devices = homogeneous(3);
    devices[0].speedFactor = 2.0;

    std::vector<int> perDevice(3, 0);
    for (int i = 0; i < 8; ++i) {
        const std::size_t d = p.place(devices, req("t"));
        ++perDevice[d];
        ++devices[d].assignedTasks;
        devices[d].assignedDemand += 1.0;
    }
    // Speeds 2:1:1 over 8 tasks -> 4:2:2.
    EXPECT_EQ(perDevice[0], 4);
    EXPECT_EQ(perDevice[1], 2);
    EXPECT_EQ(perDevice[2], 2);
}

TEST(HeterogeneityAwarePlacement, EqualSpeedsDegradeToBalance)
{
    HeterogeneityAwarePlacement p;
    auto devices = homogeneous(2);
    std::vector<int> perDevice(2, 0);
    for (int i = 0; i < 6; ++i) {
        const std::size_t d = p.place(devices, req("t"));
        ++perDevice[d];
        ++devices[d].assignedTasks;
        devices[d].assignedDemand += 1.0;
    }
    EXPECT_EQ(perDevice[0], 3);
    EXPECT_EQ(perDevice[1], 3);
}

TEST(HeterogeneityAwarePlacement, ResidentDemandCountsNotTaskCount)
{
    // A heavy resident task (demand 4) must keep attracting less new
    // work to its device than four light tasks would elsewhere.
    HeterogeneityAwarePlacement p;
    auto devices = homogeneous(2);

    PlacementRequest heavy = req("heavy");
    heavy.demand = 4.0;
    const std::size_t d0 = p.place(devices, heavy);
    EXPECT_EQ(d0, 0u);
    ++devices[d0].assignedTasks;
    devices[d0].assignedDemand += heavy.demand;

    // Demand-1 arrivals all avoid the heavy device until the other
    // side carries comparable demand.
    for (int i = 0; i < 3; ++i) {
        const std::size_t d = p.place(devices, req("light"));
        EXPECT_EQ(d, 1u);
        ++devices[d].assignedTasks;
        devices[d].assignedDemand += 1.0;
    }
    // Now 4 vs 3: the next arrival balances demand, not task count.
    EXPECT_EQ(p.place(devices, req("light")), 1u);
}

TEST(MakePlacementPolicy, BuildsEveryKind)
{
    FleetConfig cfg;
    for (PlacementKind k :
         {PlacementKind::RoundRobin, PlacementKind::LeastLoaded,
          PlacementKind::Sticky, PlacementKind::HeterogeneityAware}) {
        cfg.placement = k;
        auto p = makePlacementPolicy(cfg);
        ASSERT_NE(p, nullptr);
        EXPECT_EQ(p->name(), placementKindName(k));
    }
}

} // namespace
} // namespace neon
