/**
 * @file
 * Unit tests for the Chrome trace-event export: lane assignment, span
 * pairing (orphan Ends dropped, dangling Begins closed), async/flow
 * binding by session id, counter values, and JSON well-formedness.
 */

#include <gtest/gtest.h>

#include <bit>
#include <map>
#include <sstream>

#include "obs/chrome_trace.hh"

namespace neon
{
namespace
{

using namespace obs;

TraceRecord
rec(Tick when, const char *name, TraceKind kind, std::int16_t device,
    std::int64_t a0 = 0, std::int64_t a1 = 0, std::int32_t session = -1)
{
    TraceRecord r;
    r.when = when;
    r.name = internTraceName(name);
    r.cat = 1; // Sched
    r.kind = kind;
    r.device = device;
    r.session = session;
    r.arg0 = a0;
    r.arg1 = a1;
    return r;
}

/** Every track (pid, tid) must have non-decreasing timestamps. */
void
expectTrackMonotone(const ChromeTimeline &tl)
{
    std::map<std::pair<std::uint32_t, std::uint32_t>, double> last;
    for (const auto &e : tl.events) {
        auto [it, fresh] = last.try_emplace({e.pid, e.tid}, e.ts);
        if (!fresh) {
            EXPECT_GE(e.ts, it->second)
                << e.name << " on pid " << e.pid << " tid " << e.tid;
            it->second = e.ts;
        }
    }
}

TEST(ChromeTrace, SpansPairUpPerDeviceLane)
{
    const auto tl = buildChromeEvents({
        rec(usec(1), "span.x", TraceKind::Begin, 0),
        rec(usec(2), "span.y", TraceKind::Begin, 0), // overlaps on own lane
        rec(usec(3), "span.x", TraceKind::End, 0),
        rec(usec(4), "span.y", TraceKind::End, 0),
        rec(usec(5), "span.x", TraceKind::Begin, 1), // other device track
        rec(usec(6), "span.x", TraceKind::End, 1),
    });

    ASSERT_EQ(tl.events.size(), 6u);
    EXPECT_EQ(tl.processCount, 3u); // global + device0 + device1

    // x and y live on different lanes of pid 1; device 1's x elsewhere.
    const auto &ev = tl.events;
    EXPECT_EQ(ev[0].ph, 'B');
    EXPECT_EQ(ev[0].pid, 1u);
    EXPECT_EQ(ev[2].ph, 'E');
    EXPECT_EQ(ev[2].tid, ev[0].tid);
    EXPECT_NE(ev[1].tid, ev[0].tid);
    EXPECT_EQ(ev[4].pid, 2u);
    expectTrackMonotone(tl);
}

TEST(ChromeTrace, OrphanEndIsDroppedNotEmitted)
{
    // The Begin fell off the ring: only the Begin-less End arrives.
    const auto tl = buildChromeEvents({
        rec(usec(1), "span.orphan", TraceKind::End, 0),
        rec(usec(2), "span.ok", TraceKind::Begin, 0),
        rec(usec(3), "span.ok", TraceKind::End, 0),
    });

    std::size_t begins = 0, ends = 0;
    for (const auto &e : tl.events) {
        begins += e.ph == 'B';
        ends += e.ph == 'E';
    }
    EXPECT_EQ(begins, 1u);
    EXPECT_EQ(ends, 1u);
}

TEST(ChromeTrace, DanglingBeginClosedAtLastTimestamp)
{
    const auto tl = buildChromeEvents({
        rec(usec(1), "span.open", TraceKind::Begin, 0),
        rec(usec(9), "mark", TraceKind::Instant, 0),
    });

    const ChromeEvent *close = nullptr;
    for (const auto &e : tl.events) {
        if (e.ph == 'E' && e.name == "span.open")
            close = &e;
    }
    ASSERT_NE(close, nullptr);
    EXPECT_DOUBLE_EQ(close->ts, toUsec(usec(9)));
    expectTrackMonotone(tl);
}

TEST(ChromeTrace, AsyncAndFlowEventsBindBySessionId)
{
    const auto tl = buildChromeEvents({
        rec(usec(1), "session", TraceKind::AsyncBegin, -1, 0, 0, 42),
        rec(usec(2), "session.flow", TraceKind::FlowStart, 0, 0, 0, 42),
        rec(usec(3), "session.flow", TraceKind::FlowStep, 1, 0, 0, 42),
        rec(usec(4), "session.flow", TraceKind::FlowEnd, 1, 0, 0, 42),
        rec(usec(5), "session", TraceKind::AsyncEnd, 1, 0, 0, 42),
    });

    ASSERT_EQ(tl.events.size(), 5u);
    // Async events live on the global sessions lane regardless of the
    // device the record carried; flows ride the device tracks.
    EXPECT_EQ(tl.events[0].ph, 'b');
    EXPECT_EQ(tl.events[0].pid, 0u);
    EXPECT_EQ(tl.events[4].ph, 'e');
    EXPECT_EQ(tl.events[4].pid, 0u);
    EXPECT_EQ(tl.events[1].ph, 's');
    EXPECT_EQ(tl.events[1].pid, 1u);
    EXPECT_EQ(tl.events[2].ph, 't');
    EXPECT_EQ(tl.events[2].pid, 2u);
    EXPECT_EQ(tl.events[3].ph, 'f');
    for (const auto &e : tl.events)
        EXPECT_EQ(e.id, 42);
}

TEST(ChromeTrace, CounterValuesRoundTripThroughBitCast)
{
    TraceRecord r = rec(usec(1), "queue_depth", TraceKind::CounterVal, -1);
    r.arg0 = std::bit_cast<std::int64_t>(3.75);
    const auto tl = buildChromeEvents({r});

    ASSERT_EQ(tl.events.size(), 1u);
    EXPECT_EQ(tl.events[0].ph, 'C');
    EXPECT_EQ(tl.events[0].pid, 0u);
    ASSERT_TRUE(tl.events[0].hasValue);
    EXPECT_DOUBLE_EQ(tl.events[0].value, 3.75);
}

TEST(ChromeTrace, JsonEscapeHandlesSpecials)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb"), "a\\nb");
    EXPECT_EQ(jsonEscape(std::string("a\x01") + "b"), "a\\u0001b");
}

/**
 * Minimal structural JSON check: braces/brackets balance outside of
 * string literals and the document is a single object. The CI step
 * additionally validates a real trace with python's json module.
 */
void
expectBalancedJson(const std::string &s)
{
    int depth = 0;
    bool in_string = false, escaped = false;
    for (char c : s) {
        if (in_string) {
            if (escaped)
                escaped = false;
            else if (c == '\\')
                escaped = true;
            else if (c == '"')
                in_string = false;
            continue;
        }
        if (c == '"')
            in_string = true;
        else if (c == '{' || c == '[')
            ++depth;
        else if (c == '}' || c == ']') {
            --depth;
            ASSERT_GE(depth, 0);
        }
    }
    EXPECT_FALSE(in_string);
    EXPECT_EQ(depth, 0);
}

TEST(ChromeTrace, WriterEmitsBalancedJsonWithTrackMetadata)
{
    TraceRecorder ring(64);
    ring.push(rec(usec(1), "span.w", TraceKind::Begin, 0, 7, 8));
    ring.push(rec(usec(2), "span.w", TraceKind::End, 0));
    ring.push(rec(usec(3), "mark \"quoted\"", TraceKind::Instant, 1));

    std::ostringstream os;
    writeChromeTrace(os, ring);
    const std::string out = os.str();

    expectBalancedJson(out);
    EXPECT_NE(out.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(out.find("\"process_name\""), std::string::npos);
    EXPECT_NE(out.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(out.find("\"device0\""), std::string::npos);
    EXPECT_NE(out.find("\"device1\""), std::string::npos);
    EXPECT_NE(out.find("mark \\\"quoted\\\""), std::string::npos);
}

} // namespace
} // namespace neon
