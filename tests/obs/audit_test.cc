/**
 * @file
 * The invariant auditor: the AuditLog hot path counts every check and
 * records violations per name with capped samples; the Auditor drives
 * periodic/monotone/final checks on the virtual-time cadence and
 * actually detects seeded violations; and the default-on auditor
 * reports clean on healthy closed and open-system runs (the always-on
 * acceptance the examples rely on).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "harness/serve_runner.hh"
#include "obs/audit.hh"
#include "sim/event_queue.hh"

namespace neon
{
namespace
{

using namespace obs;

TEST(AuditLog, CountsChecksAndCapsSamples)
{
    AuditLog log(2);
    for (int i = 0; i < 3; ++i)
        log.check(true, "fine", i);
    log.check(false, "bad_a", 10, 5, 4);
    log.check(false, "bad_a", 11, 5, 3);
    log.check(false, "bad_b", 12, 1, 0);
    log.check(false, "bad_b", 13, 2, 0);

    EXPECT_EQ(log.checks(), 7u);
    EXPECT_EQ(log.violations(), 4u);

    const AuditReport r = log.report();
    EXPECT_FALSE(r.clean());
    EXPECT_EQ(r.checks, 7u);
    EXPECT_EQ(r.violations, 4u);

    // Counts are exact per check name; samples cap at the limit.
    ASSERT_EQ(r.byCheck.size(), 2u);
    EXPECT_EQ(r.byCheck[0].first, "bad_a");
    EXPECT_EQ(r.byCheck[0].second, 2u);
    EXPECT_EQ(r.byCheck[1].first, "bad_b");
    EXPECT_EQ(r.byCheck[1].second, 2u);
    ASSERT_EQ(r.samples.size(), 2u);
    EXPECT_EQ(r.samples[0].check, "bad_a");
    EXPECT_EQ(r.samples[0].when, 10);
    EXPECT_EQ(r.samples[0].expected, 5);
    EXPECT_EQ(r.samples[0].actual, 4);

    // The summary names the failing checks, not just totals.
    const std::string s = r.summary();
    EXPECT_NE(s.find("bad_a"), std::string::npos);
}

TEST(AuditLog, CleanReportAfterPassingChecks)
{
    AuditLog log;
    for (int i = 0; i < 100; ++i)
        log.check(true, "inv", i);
    const AuditReport r = log.report();
    EXPECT_TRUE(r.clean());
    EXPECT_EQ(r.checks, 100u);
    EXPECT_TRUE(r.byCheck.empty());
    EXPECT_TRUE(r.samples.empty());
}

TEST(Auditor, PeriodicCadenceAndSeededViolations)
{
    EventQueue eq;
    AuditConfig cfg;
    cfg.period = msec(10);
    Auditor a(eq, cfg);

    // A passing periodic check, a failing one, a decreasing monotone
    // probe, and a final check that only runs at finalize.
    int periodic_runs = 0;
    a.addPeriodic("ok", [&](AuditLog &log, Tick now) {
        ++periodic_runs;
        log.check(true, "ok", now);
    });
    a.addPeriodic("seeded", [](AuditLog &log, Tick now) {
        log.check(false, "seeded", now, 1, 0);
    });
    double probe_value = 100.0;
    a.addMonotone("shrinking", [&] { return probe_value -= 1.0; });
    int final_runs = 0;
    a.addFinal("final_only", [&](AuditLog &log, Tick now) {
        ++final_runs;
        log.check(true, "final_only", now);
    });

    a.start();
    eq.runFor(msec(45)); // boundaries at 10, 20, 30, 40
    EXPECT_EQ(final_runs, 0);
    a.finalize();

    // 4 periodic ticks + the finalize pass.
    EXPECT_EQ(periodic_runs, 5);
    EXPECT_EQ(final_runs, 1);

    const AuditReport r = a.report();
    EXPECT_FALSE(r.clean());
    std::uint64_t seeded = 0, shrinking = 0;
    for (const auto &kv : r.byCheck) {
        if (kv.first == "seeded")
            seeded = kv.second;
        if (kv.first == "shrinking")
            shrinking = kv.second;
    }
    EXPECT_EQ(seeded, 5u);
    // Every observation after the first sees a smaller value.
    EXPECT_GE(shrinking, 4u);

    // finalize is idempotent: no further checks accrue.
    const std::uint64_t checks = r.checks;
    a.finalize();
    EXPECT_EQ(a.report().checks, checks);
}

TEST(Auditor, MonotoneProbePassesWhenNonDecreasing)
{
    EventQueue eq;
    AuditConfig cfg;
    cfg.period = msec(5);
    Auditor a(eq, cfg);
    double v = 0.0;
    a.addMonotone("growing", [&] { return v += 2.0; });
    a.start();
    eq.runFor(msec(30));
    a.finalize();
    const AuditReport r = a.report();
    EXPECT_TRUE(r.clean()) << r.summary();
    EXPECT_GT(r.checks, 0u);
}

TEST(Audit, ClosedWorldRunsCleanByDefault)
{
    // The auditor is on by default in every world; a healthy two-task
    // closed run must pass vtime/busy monotonicity with zero
    // violations and a nonzero check count.
    ExperimentConfig cfg;
    cfg.sched = SchedKind::DisengagedFq;
    cfg.warmup = msec(50);
    cfg.measure = msec(500);
    ExperimentRunner runner(cfg);
    const RunResult r = runner.run({
        WorkloadSpec::app("DCT"),
        WorkloadSpec::throttle(usec(430)),
    });
    EXPECT_GT(r.audit.checks, 0u);
    EXPECT_TRUE(r.audit.clean()) << r.audit.summary();
}

TEST(Audit, HealthyServeRunIsCleanAndReconcilesUsage)
{
    ExperimentConfig cfg;
    cfg.sched = SchedKind::DisengagedFq;
    cfg.fleet.devices = 4;
    cfg.serve.slotsPerDevice = 2;
    cfg.serve.useGlobalClock = true;
    cfg.serve.clockPeriod = msec(10);
    cfg.measure = sec(1);

    WorkloadSpec w = WorkloadSpec::throttle(usec(430));
    w.label = "open";
    const std::vector<ServeWorkloadSpec> specs = {
        {w, ArrivalSpec::poisson(60.0, msec(600)),
         LifetimeSpec::exponential(msec(150))},
    };

    ServeWorld world(cfg, specs);
    ASSERT_NE(world.auditor, nullptr);
    world.start();
    world.runFor(cfg.measure);
    const ServeRunResult r = world.results();

    EXPECT_GT(r.arrivals, 0u);
    EXPECT_GT(r.audit.checks, 0u);
    EXPECT_TRUE(r.audit.clean()) << r.audit.summary();
}

TEST(Audit, DisabledAuditorReportsNoChecks)
{
    ExperimentConfig cfg;
    cfg.sched = SchedKind::DisengagedFq;
    cfg.fleet.devices = 2;
    cfg.serve.slotsPerDevice = 2;
    cfg.measure = msec(200);
    cfg.observe.audit.enabled = false;

    WorkloadSpec w = WorkloadSpec::throttle(usec(430));
    w.label = "off";
    const std::vector<ServeWorkloadSpec> specs = {
        {w, ArrivalSpec::poisson(40.0, msec(100)),
         LifetimeSpec::fixed(msec(50))},
    };

    ServeWorld world(cfg, specs);
    EXPECT_EQ(world.auditor, nullptr);
    world.start();
    world.runFor(cfg.measure);
    const ServeRunResult r = world.results();
    EXPECT_EQ(r.audit.checks, 0u);
    EXPECT_TRUE(r.audit.clean());
}

TEST(Audit, FaultyServeRunStaysClean)
{
    // Device death, watchdog kills, failover, retry backoff: the
    // conservation and reconciliation invariants must hold through all
    // of it (the runtime form of the fault-integration accounting
    // assertions).
    ExperimentConfig cfg;
    cfg.sched = SchedKind::DisengagedFq;
    cfg.dfq.killThreshold = sec(30);
    cfg.fleet.devices = 4;
    cfg.serve.slotsPerDevice = 2;
    cfg.serve.useGlobalClock = true;
    cfg.serve.clockPeriod = msec(10);
    cfg.serve.migrationLag = msec(25);
    cfg.measure = sec(2);
    cfg.fault.watchdog.enabled = true;
    cfg.fault.watchdog.checkPeriod = msec(2);
    cfg.fault.watchdog.hangTimeout = msec(20);
    cfg.fault.watchdog.runawayTimeout = 0;
    cfg.fault.plan.script = {
        {msec(200), FaultKind::ChannelHang, 1, 0},
        {msec(500), FaultKind::DeviceDeath, 2, msec(300)},
    };

    WorkloadSpec w = WorkloadSpec::throttle(usec(300));
    w.label = "sess";
    std::vector<Tick> arrivals;
    for (int i = 0; i < 12; ++i)
        arrivals.push_back(i * msec(30));
    const std::vector<ServeWorkloadSpec> specs = {
        {w, ArrivalSpec::trace(arrivals), LifetimeSpec::fixed(msec(700))},
    };

    ServeWorld world(cfg, specs);
    world.start();
    world.runFor(cfg.measure);
    const ServeRunResult r = world.results();

    ASSERT_GE(r.kills + r.evictions, 1u) << "faults must have landed";
    EXPECT_GT(r.audit.checks, 0u);
    EXPECT_TRUE(r.audit.clean()) << r.audit.summary();
}

} // namespace
} // namespace neon
