/**
 * @file
 * Acceptance tests for the observability plane on the PR-4 open-system
 * serving scenario: a traced oversubscribed run over a heterogeneous
 * DFQ fleet must yield a Chrome timeline with engage/disengage spans
 * on every device track, session flow events spanning a migration,
 * and counter tracks for queue depth and virtual-time lag — and
 * switching tracing on must not change the simulation's results.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>

#include "harness/serve_runner.hh"
#include "obs/chrome_trace.hh"

namespace neon
{
namespace
{

using namespace obs;

/** The serve_integration scenario: guaranteed queueing + migration. */
ExperimentConfig
scenarioConfig()
{
    ExperimentConfig cfg;
    cfg.sched = SchedKind::DisengagedFq;
    cfg.fleet.devices = 4;
    cfg.fleet.speedFactors = {1.25, 1.0, 1.0, 0.75};
    cfg.serve.slotsPerDevice = 2;
    cfg.serve.admission = AdmissionKind::Fifo;
    cfg.serve.useGlobalClock = true;
    cfg.serve.clockPeriod = msec(10);
    cfg.serve.migrationLag = msec(10);
    cfg.serve.migrationMinTasks = 2;
    cfg.measure = sec(4);
    return cfg;
}

std::vector<ServeWorkloadSpec>
scenarioClasses()
{
    WorkloadSpec w = WorkloadSpec::throttle(usec(430));
    w.label = "open";
    return {{w, ArrivalSpec::poisson(100.0, sec(1.2)),
             LifetimeSpec::fixed(msec(250))}};
}

TEST(ObserveIntegration, TracedServeRunProducesCompleteTimeline)
{
    ExperimentConfig cfg = scenarioConfig();
    cfg.observe.categories = defaultTraceCategories;
    cfg.observe.bufferCapacity = std::size_t(1) << 18;
    cfg.observe.samplePeriod = msec(5);

    ServeWorld world(cfg, scenarioClasses());
    world.start();
    world.runFor(cfg.measure);
    const ServeRunResult r = world.results();
    ASSERT_NE(world.observer, nullptr);
    ASSERT_GE(r.migrations, 1u) << "scenario must migrate to be a "
                                   "meaningful flow-event test";

    const auto records = world.observer->recorder().snapshot();
    ASSERT_FALSE(records.empty());
    const ChromeTimeline tl = buildChromeEvents(records);

    // Timestamps are non-decreasing per track (Chrome requirement).
    std::map<std::pair<std::uint32_t, std::uint32_t>, double> last;
    for (const auto &e : tl.events) {
        auto [it, fresh] = last.try_emplace({e.pid, e.tid}, e.ts);
        if (!fresh) {
            ASSERT_GE(e.ts, it->second) << e.name;
            it->second = e.ts;
        }
    }

    // Every device track carries at least one complete engage span
    // (the B and the E of dfq.engage) and at least one free-run span.
    for (std::uint32_t dev = 0; dev < 4; ++dev) {
        const std::uint32_t pid = dev + 1;
        std::size_t engage_b = 0, engage_e = 0, freerun_b = 0;
        for (const auto &e : tl.events) {
            if (e.pid != pid)
                continue;
            engage_b += e.ph == 'B' && e.name == "dfq.engage";
            engage_e += e.ph == 'E' && e.name == "dfq.engage";
            freerun_b += e.ph == 'B' && e.name == "dfq.free_run";
        }
        EXPECT_GE(engage_b, 1u) << "device " << dev;
        EXPECT_GE(engage_e, 1u) << "device " << dev;
        EXPECT_GE(freerun_b, 1u) << "device " << dev;
    }

    // At least one session's flow arrow spans two device tracks: the
    // FlowStep emitted at migration lands on a different pid than the
    // session's FlowStart at admission.
    std::map<std::int64_t, std::set<std::uint32_t>> flow_pids;
    for (const auto &e : tl.events) {
        if (e.ph == 's' || e.ph == 't' || e.ph == 'f')
            flow_pids[e.id].insert(e.pid);
    }
    bool crossed = false;
    for (const auto &[sid, pids] : flow_pids)
        crossed = crossed || pids.size() >= 2;
    EXPECT_TRUE(crossed) << "no session flow spans a migration";

    // Counter tracks exist for per-device queue depth and fleet-wide
    // virtual-time lag, with at least a few samples each.
    std::map<std::string, std::size_t> counter_samples;
    for (const auto &e : tl.events) {
        if (e.ph == 'C')
            ++counter_samples[e.name];
    }
    EXPECT_GE(counter_samples["dev0.queue_depth"], 3u);
    EXPECT_GE(counter_samples["fleet.vtime_lag_ms"], 3u);
    EXPECT_GE(counter_samples["serve.queue_len"], 3u);

    // Session lifecycle: async begin/end pairs on the sessions lane.
    std::size_t async_b = 0, async_e = 0;
    for (const auto &e : tl.events) {
        async_b += e.ph == 'b';
        async_e += e.ph == 'e';
    }
    EXPECT_GE(async_b, r.departures > 0 ? 1u : 0u);
    EXPECT_GE(async_e, 1u);

    // The serialized timeline is structurally sound JSON (the CI step
    // re-validates a real run with python -m json.tool).
    std::ostringstream os;
    writeChromeTrace(os, tl);
    const std::string out = os.str();
    int depth = 0;
    bool in_string = false, escaped = false;
    for (char c : out) {
        if (in_string) {
            if (escaped)
                escaped = false;
            else if (c == '\\')
                escaped = true;
            else if (c == '"')
                in_string = false;
            continue;
        }
        if (c == '"')
            in_string = true;
        else if (c == '{' || c == '[')
            ++depth;
        else if (c == '}' || c == ']')
            --depth;
    }
    EXPECT_EQ(depth, 0);
    EXPECT_FALSE(in_string);
    EXPECT_NE(out.find("\"traceEvents\""), std::string::npos);
}

TEST(ObserveIntegration, TracingDoesNotPerturbSimulationResults)
{
    const auto classes = scenarioClasses();

    ExperimentConfig plain_cfg = scenarioConfig();
    ServeWorld plain(plain_cfg, classes);
    plain.start();
    plain.runFor(plain_cfg.measure);
    const ServeRunResult a = plain.results();

    ExperimentConfig traced_cfg = scenarioConfig();
    traced_cfg.observe.categories = allTraceCategories;
    traced_cfg.observe.bufferCapacity = std::size_t(1) << 14; // wraps
    traced_cfg.observe.samplePeriod = msec(2);
    ServeWorld traced(traced_cfg, classes);
    traced.start();
    traced.runFor(traced_cfg.measure);
    const ServeRunResult b = traced.results();

    // The traced world really captured something (and wrapped).
    ASSERT_NE(traced.observer, nullptr);
    EXPECT_GT(traced.observer->recorder().written(), 0u);
    EXPECT_GT(traced.observer->recorder().dropped(), 0u);

    // Identical simulation outcomes: tracing only observes.
    EXPECT_EQ(a.arrivals, b.arrivals);
    EXPECT_EQ(a.departures, b.departures);
    EXPECT_EQ(a.kills, b.kills);
    EXPECT_EQ(a.migrations, b.migrations);
    EXPECT_EQ(a.requests, b.requests);
    EXPECT_EQ(a.elapsed, b.elapsed);
    ASSERT_EQ(a.deviceBusy.size(), b.deviceBusy.size());
    for (std::size_t i = 0; i < a.deviceBusy.size(); ++i)
        EXPECT_EQ(a.deviceBusy[i], b.deviceBusy[i]);
    ASSERT_EQ(a.sessions.size(), b.sessions.size());
    for (std::size_t i = 0; i < a.sessions.size(); ++i) {
        EXPECT_EQ(a.sessions[i].arrived, b.sessions[i].arrived);
        EXPECT_EQ(a.sessions[i].admitted, b.sessions[i].admitted);
        EXPECT_EQ(a.sessions[i].departed, b.sessions[i].departed);
        EXPECT_EQ(a.sessions[i].requests, b.sessions[i].requests);
        EXPECT_EQ(a.sessions[i].migrations, b.sessions[i].migrations);
    }
}

} // namespace
} // namespace neon
