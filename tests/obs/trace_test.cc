/**
 * @file
 * Unit tests for the trace plane: ring-buffer wrap semantics, name
 * interning, category gating, and the NEON_TRACE macro's disabled
 * path recording nothing.
 */

#include <gtest/gtest.h>

#include "obs/trace.hh"
#include "sim/event_queue.hh"

namespace neon
{
namespace
{

using namespace obs;

/** RAII guard so a failing test never leaves a stale sink installed. */
struct SinkGuard
{
    ~SinkGuard() { setTraceSink(nullptr, 0); }
};

TEST(TraceRecorder, CapacityRoundsUpToPowerOfTwo)
{
    EXPECT_EQ(TraceRecorder(1).capacity(), 64u);   // floor is 64
    EXPECT_EQ(TraceRecorder(64).capacity(), 64u);
    EXPECT_EQ(TraceRecorder(65).capacity(), 128u);
    EXPECT_EQ(TraceRecorder(1000).capacity(), 1024u);
}

TEST(TraceRecorder, WrapKeepsNewestAndCountsDrops)
{
    TraceRecorder rec(64);
    for (std::int64_t i = 0; i < 100; ++i) {
        TraceRecord r;
        r.arg0 = i;
        rec.push(r);
    }
    EXPECT_EQ(rec.written(), 100u);
    EXPECT_EQ(rec.size(), 64u);
    EXPECT_EQ(rec.dropped(), 36u);

    // The snapshot holds exactly the newest 64 records, oldest first.
    const auto snap = rec.snapshot();
    ASSERT_EQ(snap.size(), 64u);
    for (std::size_t i = 0; i < snap.size(); ++i)
        EXPECT_EQ(snap[i].arg0, static_cast<std::int64_t>(36 + i));

    rec.clear();
    EXPECT_EQ(rec.size(), 0u);
    EXPECT_EQ(rec.dropped(), 0u);
    EXPECT_EQ(rec.capacity(), 64u);
}

TEST(TraceNames, InterningIsStableAndSurvivesWrap)
{
    const std::uint16_t a = internTraceName("test.intern_a");
    const std::uint16_t b = internTraceName("test.intern_b");
    EXPECT_NE(a, b);
    EXPECT_EQ(traceNameOf(a), "test.intern_a");
    EXPECT_EQ(traceNameOf(b), "test.intern_b");

    // Ids are process-global: wrapping a ring doesn't perturb them.
    TraceRecorder rec(64);
    for (int i = 0; i < 200; ++i) {
        TraceRecord r;
        r.name = i % 2 ? a : b;
        rec.push(r);
    }
    EXPECT_EQ(internTraceName("test.intern_a"), a);
    EXPECT_EQ(internTraceName("test.intern_b"), b);
    for (const auto &r : rec.snapshot())
        EXPECT_TRUE(r.name == a || r.name == b);
}

TEST(TraceMacro, DisabledCategoriesRecordNothing)
{
    SinkGuard guard;
    TraceRecorder rec(64);

    // No sink installed: every category is off.
    EXPECT_FALSE(traceEnabled(TraceCategory::Sched));
    NEON_TRACE(TraceCategory::Sched, TraceKind::Instant, "test.off",
               TraceIds{}, 1, 2);
    EXPECT_EQ(rec.written(), 0u);

    // Sink installed for Serve only: Sched points still record nothing.
    setTraceSink(&rec, static_cast<std::uint32_t>(TraceCategory::Serve));
    EXPECT_TRUE(traceEnabled(TraceCategory::Serve));
    EXPECT_FALSE(traceEnabled(TraceCategory::Sched));
    NEON_TRACE(TraceCategory::Sched, TraceKind::Instant, "test.off",
               TraceIds{}, 1, 2);
    EXPECT_EQ(rec.written(), 0u);

    NEON_TRACE(TraceCategory::Serve, TraceKind::Instant, "test.on",
               TraceIds{}, 1, 2);
    EXPECT_EQ(rec.written(), 1u);
}

TEST(TraceMacro, RecordsCarryClockIdsAndArgs)
{
    SinkGuard guard;
    EventQueue eq;
    TraceRecorder rec(64);
    // Default mask: SimCore stays off so the event-queue step itself
    // doesn't add eq.step records alongside the one under test.
    setTraceSink(&rec, defaultTraceCategories, &eq);

    eq.schedule(usec(5), [] {
        NEON_TRACE(TraceCategory::Fleet, TraceKind::Begin, "test.full",
                   (TraceIds{2, 17, 99}), -4, 1234567890123ll);
    });
    eq.runFor(usec(10));

    const auto snap = rec.snapshot();
    ASSERT_EQ(snap.size(), 1u);
    const TraceRecord &r = snap[0];
    EXPECT_EQ(r.when, usec(5));
    EXPECT_EQ(r.category(), TraceCategory::Fleet);
    EXPECT_EQ(r.kind, TraceKind::Begin);
    EXPECT_EQ(traceNameOf(r.name), "test.full");
    EXPECT_EQ(r.device, 2);
    EXPECT_EQ(r.pid, 17);
    EXPECT_EQ(r.session, 99);
    EXPECT_EQ(r.arg0, -4);
    EXPECT_EQ(r.arg1, 1234567890123ll);
}

TEST(TraceSink, UninstallDeactivatesEveryCategory)
{
    SinkGuard guard;
    TraceRecorder rec(64);
    setTraceSink(&rec, allTraceCategories);
    EXPECT_EQ(traceSink(), &rec);
    EXPECT_TRUE(traceEnabled(TraceCategory::SimCore));

    setTraceSink(nullptr, allTraceCategories); // mask forced to 0
    EXPECT_EQ(traceSink(), nullptr);
    for (std::uint32_t bit = 1; bit < (1u << 7); bit <<= 1) {
        EXPECT_FALSE(traceEnabled(static_cast<TraceCategory>(bit)));
    }
}

TEST(TraceCategories, ParseSpecs)
{
    EXPECT_EQ(parseTraceCategories("all"), allTraceCategories);
    EXPECT_EQ(parseTraceCategories("default"), defaultTraceCategories);
    EXPECT_EQ(parseTraceCategories("sched"),
              static_cast<std::uint32_t>(TraceCategory::Sched));
    EXPECT_EQ(parseTraceCategories("sched,serve"),
              static_cast<std::uint32_t>(TraceCategory::Sched) |
                  static_cast<std::uint32_t>(TraceCategory::Serve));
    EXPECT_EQ(parseTraceCategories("bogus"), 0u);
    EXPECT_EQ(parseTraceCategories(""), 0u);
}

TEST(TraceRecord, StaysPodLean)
{
    static_assert(sizeof(TraceRecord) == 40);
    static_assert(std::is_trivially_copyable_v<TraceRecord>);
}

} // namespace
} // namespace neon
