/**
 * @file
 * Acceptance tests for the analysis plane: phase attribution must
 * exactly partition every session's in-system time — across
 * migrations, device death, failover, retry backoff, and watchdog
 * kills — a single whole-run window must reproduce the final service
 * fairness index bit-for-bit, the windowed timeline must be
 * deterministic across repeats and worker-thread counts, and replaying
 * an exported trace must reproduce the in-process attribution.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "harness/serve_runner.hh"

namespace neon
{
namespace
{

using namespace obs;

/**
 * The fault-integration scenario: a 4-device fleet at 2.5x
 * oversubscription with a scripted stall, two channel hangs (watchdog
 * kills), and a repaired device death (evictions + failover) — every
 * lifecycle transition the phase state machine has to handle.
 */
ExperimentConfig
faultyScenarioConfig()
{
    ExperimentConfig cfg;
    cfg.sched = SchedKind::DisengagedFq;
    cfg.dfq.killThreshold = sec(30); // kills below are the watchdog's
    cfg.fleet.devices = 4;
    cfg.serve.slotsPerDevice = 2;
    cfg.serve.useGlobalClock = true;
    cfg.serve.clockPeriod = msec(10);
    cfg.serve.migrationLag = msec(25);
    cfg.measure = sec(4);

    cfg.fault.watchdog.enabled = true;
    cfg.fault.watchdog.checkPeriod = msec(2);
    cfg.fault.watchdog.hangTimeout = msec(20);
    cfg.fault.watchdog.runawayTimeout = 0;

    cfg.fault.plan.script = {
        {msec(150), FaultKind::DeviceStall, 0, msec(10)},
        {msec(300), FaultKind::ChannelHang, 2, 0},
        {msec(350), FaultKind::ChannelHang, 3, 0},
        {msec(600), FaultKind::DeviceDeath, 1, msec(300)},
    };
    return cfg;
}

std::vector<ServeWorkloadSpec>
faultyScenarioSpecs()
{
    std::vector<Tick> arrivals;
    for (int i = 0; i < 20; ++i)
        arrivals.push_back(i * msec(25));
    WorkloadSpec w = WorkloadSpec::throttle(usec(300));
    w.label = "sess";
    return {
        {w, ArrivalSpec::trace(arrivals), LifetimeSpec::fixed(sec(1))},
    };
}

TEST(Analyze, PhasePartitionExactUnderScriptedFaults)
{
    ExperimentConfig cfg = faultyScenarioConfig();
    cfg.observe.analyze.phases = true;
    // One window spanning the whole run: its fairness must reduce to
    // the final whole-run index.
    cfg.observe.analyze.window = 2 * cfg.measure;
    cfg.serve.slo.sojournTarget = sec(2);

    ServeWorld world(cfg, faultyScenarioSpecs());
    world.start();
    world.runFor(cfg.measure);
    const ServeRunResult r = world.results();

    // The scenario exercised every transition the tracker models.
    ASSERT_EQ(r.arrivals, 20u);
    ASSERT_EQ(r.kills, 2u);
    ASSERT_GE(r.evictions, 1u);
    ASSERT_GE(r.migrations, 1u);

    // Exact partition: queue + service + migration + stall covers the
    // arrival-to-end interval of every session, in integer ticks.
    ASSERT_EQ(r.sessionPhases.size(), r.sessions.size());
    for (const SessionPhases &s : r.sessionPhases) {
        EXPECT_EQ(s.phases.total(), s.inSystem()) << "session " << s.session;
        EXPECT_GE(s.phases.queue, 0);
        EXPECT_GE(s.phases.service, 0);
        EXPECT_GE(s.phases.migration, 0);
        EXPECT_GE(s.phases.stall, 0);

        // The ledger agrees with the harness's own session results.
        const ServeSessionResult &ref = r.sessions[s.session];
        EXPECT_EQ(s.arrived, ref.arrived);
        EXPECT_EQ(s.admitted, ref.admitted);
        EXPECT_EQ(s.killed, ref.killed);
        // The ledger stamps a departure time for kills too; the
        // tracker's departed flag means a clean departure.
        EXPECT_EQ(s.departed, ref.hasDeparted() && !ref.killed);
        if (ref.hasDeparted()) {
            EXPECT_EQ(s.ended, ref.departed);
            EXPECT_GT(s.phases.service, 0);
        }
        // A device-death eviction forces a backoff interval before the
        // retry re-queues: attributed to the stall phase.
        if (ref.evictions > 0) {
            EXPECT_GT(s.phases.stall, 0) << "session " << s.session;
        }
    }

    // Everyone was admitted eventually, so queue time is bounded by
    // in-system time and at least one oversubscribed session waited.
    Tick total_queue = 0;
    for (const SessionPhases &s : r.sessionPhases)
        total_queue += s.phases.queue;
    EXPECT_GT(total_queue, 0);

    // Whole-run window: event counts match the run, the fairness index
    // is the final one bit-for-bit, and goodput agrees with the SLO
    // report.
    ASSERT_EQ(r.timeline.size(), 1u);
    const WindowStats &w = r.timeline.front();
    EXPECT_EQ(w.start, 0);
    EXPECT_EQ(w.arrivals, r.arrivals);
    EXPECT_EQ(w.departures, r.departures);
    EXPECT_EQ(w.kills, r.kills);
    EXPECT_EQ(w.sheds, r.shedSessions);
    EXPECT_DOUBLE_EQ(w.fairness, r.serviceFairness);
    EXPECT_TRUE(r.slo.goodput.targeted);
    EXPECT_EQ(w.goodputEligible, r.slo.goodput.eligible);
    EXPECT_EQ(w.goodputMet, r.slo.goodput.met);
    ASSERT_EQ(w.deviceUtil.size(), 4u);
    ASSERT_EQ(w.occupancy.size(), 4u);
    for (double u : w.deviceUtil) {
        EXPECT_GE(u, 0.0);
        EXPECT_LE(u, 1.0);
    }

    // The tail report groups the single tenant/class coherently.
    EXPECT_EQ(r.phases.overall.sessions, r.arrivals);
    ASSERT_EQ(r.phases.byTenant.size(), 1u);
    ASSERT_EQ(r.phases.byClass.size(), 1u);
    EXPECT_EQ(r.phases.byTenant[0].sessions, r.arrivals);
    EXPECT_FALSE(r.phases.overall.dominantPhase.empty());

    // The always-on auditor rode along and found nothing.
    EXPECT_GT(r.audit.checks, 0u);
    EXPECT_TRUE(r.audit.clean()) << r.audit.summary();
}

TEST(Analyze, TraceReplayMatchesDirectAttribution)
{
    // Recording the run and replaying the exported lifecycle records
    // through a fresh PhaseTracker must reproduce the in-process
    // attribution exactly (the capture is sized to be drop-free).
    ExperimentConfig cfg = faultyScenarioConfig();
    cfg.observe.analyze.phases = true;
    cfg.observe.categories = defaultTraceCategories;
    cfg.observe.bufferCapacity = std::size_t(1) << 20;

    ServeWorld world(cfg, faultyScenarioSpecs());
    world.start();
    world.runFor(cfg.measure);
    const ServeRunResult r = world.results();
    ASSERT_NE(world.observer, nullptr);
    ASSERT_EQ(r.traceDrops, 0u) << "capture must be exact for replay";

    const std::vector<SessionEvent> events =
        sessionEventsFromTrace(world.observer->mergedRecords());
    ASSERT_FALSE(events.empty());

    PhaseTracker replay;
    for (const SessionEvent &e : events)
        replay.onEvent(e);
    replay.finalize(cfg.measure);

    ASSERT_EQ(replay.sessions().size(), r.sessionPhases.size());
    for (std::size_t i = 0; i < replay.sessions().size(); ++i) {
        const SessionPhases &a = replay.sessions()[i];
        const SessionPhases &b = r.sessionPhases[i];
        EXPECT_EQ(a.arrived, b.arrived) << "session " << i;
        EXPECT_EQ(a.admitted, b.admitted) << "session " << i;
        EXPECT_EQ(a.ended, b.ended) << "session " << i;
        EXPECT_EQ(a.departed, b.departed) << "session " << i;
        EXPECT_EQ(a.killed, b.killed) << "session " << i;
        EXPECT_EQ(a.shed, b.shed) << "session " << i;
        EXPECT_EQ(a.cls, b.cls) << "session " << i;
        EXPECT_EQ(a.phases.queue, b.phases.queue) << "session " << i;
        EXPECT_EQ(a.phases.service, b.phases.service) << "session " << i;
        EXPECT_EQ(a.phases.migration, b.phases.migration) << "session " << i;
        EXPECT_EQ(a.phases.stall, b.phases.stall) << "session " << i;
    }
}

TEST(Analyze, ShardedTimelineDeterministicAcrossRepeatsAndThreads)
{
    // The windowed series is part of the simulation's deterministic
    // output: bit-identical CSV across repeats and across worker-thread
    // counts at a fixed shard count.
    ExperimentConfig cfg;
    cfg.sched = SchedKind::DisengagedFq;
    cfg.fleet.devices = 8;
    cfg.fleet.speedFactors = {1.4, 1.0, 0.6, 1.0, 1.2, 0.8, 1.0, 1.0};
    cfg.serve.slotsPerDevice = 2;
    cfg.serve.useGlobalClock = true;
    cfg.serve.clockPeriod = msec(10);
    cfg.serve.migrationLag = msec(15);
    cfg.serve.migrationMinTasks = 1;
    cfg.serve.slo.sojournTarget = msec(300);
    cfg.measure = sec(1);
    cfg.shards.count = 2;
    cfg.observe.analyze.phases = true;
    cfg.observe.analyze.window = msec(100);

    WorkloadSpec heavy = WorkloadSpec::throttle(usec(400));
    heavy.label = "heavy";
    WorkloadSpec light = WorkloadSpec::throttle(usec(150), 0.3);
    light.label = "light";
    const std::vector<ServeWorkloadSpec> specs = {
        {heavy, ArrivalSpec::poisson(30.0, msec(600)),
         LifetimeSpec::fixed(msec(120))},
        {light, ArrivalSpec::poisson(50.0, msec(600)),
         LifetimeSpec::exponential(msec(80))},
    };

    const auto run_csv = [&](unsigned threads) {
        ExperimentConfig c = cfg;
        c.shards.threads = threads;
        ServeWorld world(c, specs);
        world.start();
        world.runFor(c.measure);
        const ServeRunResult r = world.results();
        // The partition invariant holds in sharded runs too.
        for (const SessionPhases &s : r.sessionPhases)
            EXPECT_EQ(s.phases.total(), s.inSystem());
        EXPECT_TRUE(r.audit.clean()) << r.audit.summary();
        return world.analyzer->timelineCsv();
    };

    const std::string base = run_csv(1);
    ASSERT_GT(base.size(), 100u);
    EXPECT_EQ(run_csv(1), base); // repeat, same shape
    EXPECT_EQ(run_csv(2), base); // more workers, same series
}

TEST(Analyze, PhaseTrackerChargesTransitionsExactly)
{
    // Synthetic lifecycle walking every state: arrive -> admit ->
    // evict -> retry backoff -> failover -> migrate -> depart.
    PhaseTracker t;
    const auto ev = [](SessionEvent::Kind k, Tick when,
                       std::uint64_t sess = 0) {
        SessionEvent e;
        e.kind = k;
        e.when = when;
        e.session = sess;
        return e;
    };

    t.onEvent(ev(SessionEvent::Kind::Arrive, 0));
    t.onEvent(ev(SessionEvent::Kind::Admit, 10));
    t.onEvent(ev(SessionEvent::Kind::Evict, 30));
    t.onEvent(ev(SessionEvent::Kind::RetryEnqueue, 35));
    t.onEvent(ev(SessionEvent::Kind::Admit, 40)); // failover
    t.onEvent(ev(SessionEvent::Kind::Migrate, 60));
    t.onEvent(ev(SessionEvent::Kind::Depart, 100));

    // A second session that never gets admitted before the horizon.
    t.onEvent(ev(SessionEvent::Kind::Arrive, 50, 1));
    t.finalize(120);

    ASSERT_EQ(t.sessions().size(), 2u);
    const SessionPhases &a = t.sessions()[0];
    EXPECT_EQ(a.phases.queue, 15);   // 0..10 arrival wait + 35..40 retry
    EXPECT_EQ(a.phases.service, 80); // 10..30 + 40..100 (migrate instant)
    EXPECT_EQ(a.phases.stall, 5);    // 30..35 eviction backoff
    EXPECT_EQ(a.phases.migration, 0);
    EXPECT_EQ(a.phases.total(), a.inSystem());
    EXPECT_TRUE(a.departed);
    EXPECT_FALSE(a.open);
    EXPECT_EQ(a.admitted, 10);

    const SessionPhases &b = t.sessions()[1];
    EXPECT_TRUE(b.open);
    EXPECT_EQ(b.admitted, -1);
    EXPECT_EQ(b.phases.queue, 70); // charged up to the horizon
    EXPECT_EQ(b.ended, 120);
    EXPECT_EQ(b.phases.total(), b.inSystem());

    // finalize is idempotent: a second pass charges nothing more.
    t.finalize(200);
    EXPECT_EQ(t.sessions()[1].phases.queue, 70);
}

TEST(Analyze, PhaseReportAttributesQueueDominatedTail)
{
    // Hand-built population: most sessions are service-dominated, the
    // slowest 10% sit in queue — the tail report must say so.
    std::vector<SessionPhases> pop;
    for (int i = 0; i < 90; ++i) {
        SessionPhases s;
        s.session = static_cast<std::uint64_t>(i);
        s.arrived = 0;
        s.ended = msec(100);
        s.phases.queue = msec(10);
        s.phases.service = msec(90);
        s.departed = true;
        pop.push_back(s);
    }
    for (int i = 90; i < 100; ++i) {
        SessionPhases s;
        s.session = static_cast<std::uint64_t>(i);
        s.arrived = 0;
        s.ended = msec(500);
        s.phases.queue = msec(450);
        s.phases.service = msec(50);
        s.departed = true;
        pop.push_back(s);
    }

    const auto one = [](const SessionPhases &) { return std::string("t"); };
    const PhaseReport rep = buildPhaseReport(pop, one, one);
    EXPECT_EQ(rep.overall.sessions, 100u);
    EXPECT_EQ(rep.overall.dominantPhase, "queue");
    EXPECT_GT(rep.overall.tailShare.queue, rep.overall.tailShare.service);
    // The body of the population is still service-dominated on average.
    EXPECT_GT(rep.overall.meanShare.service, rep.overall.meanShare.queue);
    EXPECT_GE(rep.overall.p99Ms, rep.overall.p95Ms);
    EXPECT_GE(rep.overall.p95Ms, rep.overall.meanMs);

    const std::string text = formatPhaseReport(rep);
    EXPECT_NE(text.find("queue"), std::string::npos);
}

} // namespace
} // namespace neon
