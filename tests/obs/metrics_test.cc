/**
 * @file
 * Unit tests for the metrics registry: counters, gauges, probes,
 * virtual-time sampling, trace-ring mirroring, and CSV/JSON dumps.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <sstream>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/event_queue.hh"

namespace neon
{
namespace
{

using namespace obs;

TEST(Metrics, RegistrationIsIdempotent)
{
    MetricsRegistry reg;
    Counter &c1 = reg.counter("m.count");
    Counter &c2 = reg.counter("m.count");
    EXPECT_EQ(&c1, &c2);
    c1.add(3);
    EXPECT_EQ(c2.value(), 3u);

    Gauge &g = reg.gauge("m.gauge");
    g.set(2.5);
    EXPECT_DOUBLE_EQ(reg.gauge("m.gauge").value(), 2.5);

    Log2Histogram &h1 = reg.histogram("m.hist");
    Log2Histogram &h2 = reg.histogram("m.hist");
    EXPECT_EQ(&h1, &h2);
}

TEST(Metrics, SamplingCadenceRecordsEveryMetric)
{
    EventQueue eq;
    MetricsRegistry reg;
    Counter &events = reg.counter("events");
    Gauge &depth = reg.gauge("depth");
    int probe_calls = 0;
    reg.probe("lag", [&probe_calls] {
        ++probe_calls;
        return 7.0;
    });

    // Simulated activity: the counter grows once per 100us, the gauge
    // tracks the current step index.
    for (int i = 1; i <= 10; ++i) {
        eq.schedule(usec(100) * i, [&events, &depth, i] {
            events.add(2);
            depth.set(i);
        });
    }

    reg.startSampling(eq, usec(250));
    eq.runFor(msec(1));
    reg.stopSampling();

    ASSERT_EQ(reg.series().size(), 3u);
    const MetricSeries &es = reg.series()[0];
    EXPECT_EQ(es.name, "events");
    ASSERT_EQ(es.samples.size(), 4u); // t=250,500,750,1000us
    EXPECT_EQ(es.samples[0].when, usec(250));
    EXPECT_DOUBLE_EQ(es.samples[0].value, 4.0);  // after 2 ticks
    EXPECT_DOUBLE_EQ(es.samples[3].value, 20.0); // after all 10

    const MetricSeries &ds = reg.series()[1];
    EXPECT_DOUBLE_EQ(ds.samples[0].value, 2.0);
    EXPECT_DOUBLE_EQ(ds.samples[3].value, 10.0);

    const MetricSeries &ls = reg.series()[2];
    EXPECT_EQ(probe_calls, 4);
    for (const auto &s : ls.samples)
        EXPECT_DOUBLE_EQ(s.value, 7.0);
}

TEST(Metrics, SamplesMirrorIntoTraceRingWhenCounterCategoryOn)
{
    EventQueue eq;
    TraceRecorder rec(256);
    setTraceSink(&rec, static_cast<std::uint32_t>(TraceCategory::Counter),
                 &eq);

    MetricsRegistry reg;
    reg.gauge("mirrored").set(42.5);
    reg.startSampling(eq, usec(100));
    eq.runFor(usec(350)); // 3 samples
    setTraceSink(nullptr, 0);

    const auto snap = rec.snapshot();
    ASSERT_EQ(snap.size(), 3u);
    for (const auto &r : snap) {
        EXPECT_EQ(r.kind, TraceKind::CounterVal);
        EXPECT_EQ(traceNameOf(r.name), "mirrored");
        EXPECT_DOUBLE_EQ(std::bit_cast<double>(r.arg0), 42.5);
    }
}

TEST(Metrics, NoMirroringWhenCounterCategoryOff)
{
    EventQueue eq;
    TraceRecorder rec(256);
    setTraceSink(&rec, static_cast<std::uint32_t>(TraceCategory::Sched),
                 &eq);

    MetricsRegistry reg;
    reg.gauge("silent").set(1.0);
    reg.startSampling(eq, usec(100));
    eq.runFor(usec(500));
    setTraceSink(nullptr, 0);

    EXPECT_EQ(rec.written(), 0u);
    EXPECT_EQ(reg.series()[0].samples.size(), 5u); // series still fill
}

TEST(Metrics, CsvDumpAlignsSeriesByRow)
{
    EventQueue eq;
    MetricsRegistry reg;
    reg.counter("a").add(1);
    reg.gauge("b").set(0.5);
    reg.startSampling(eq, usec(10));
    eq.runFor(usec(30));

    std::ostringstream os;
    reg.printCsv(os);
    std::istringstream is(os.str());
    std::string line;
    ASSERT_TRUE(std::getline(is, line));
    EXPECT_EQ(line, "time_us,a,b");
    std::size_t rows = 0;
    while (std::getline(is, line)) {
        ++rows;
        EXPECT_EQ(std::count(line.begin(), line.end(), ','), 2);
    }
    EXPECT_EQ(rows, 3u);
}

TEST(Metrics, JsonDumpEmitsEverySeries)
{
    EventQueue eq;
    MetricsRegistry reg;
    reg.gauge("x").set(3.0);
    reg.startSampling(eq, usec(10));
    eq.runFor(usec(20));

    std::ostringstream os;
    reg.printJson(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("\"x\""), std::string::npos);
    EXPECT_NE(out.find("[10, 3]"), std::string::npos);
}

} // namespace
} // namespace neon
