/**
 * @file
 * Acceptance integration for the fault plane: a 4-device fleet at
 * >2x oversubscription with a scripted plan — one mid-run device
 * death (repaired), a transient stall, and channel hangs. The
 * watchdog must detect every injected hang within its latency bound,
 * interrupted sessions must recover through failover/retry with
 * exact usage accounting, the availability report must match the
 * injected counts, and an empty plan must leave the run bit-identical
 * to a faults-off run at the same seed.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "harness/serve_runner.hh"

namespace neon
{
namespace
{

/** Session-side usage sums must equal the device meters exactly. */
void
expectExactAccounting(ServeWorld &world, const ServeRunResult &r)
{
    Tick session_busy = 0;
    std::uint64_t session_reqs = 0;
    for (const auto &s : r.sessions) {
        session_busy += s.busy;
        session_reqs += s.requests;
    }
    Tick meter_busy = 0;
    std::uint64_t meter_reqs = 0;
    for (std::size_t i = 0; i < world.fleet.deviceCount(); ++i) {
        const UsageMeter &m = world.fleet.stack(i).meter;
        meter_busy += m.totalBusy();
        for (const auto &kv : m.perTaskBusy())
            meter_reqs += m.requestsOf(kv.first);
    }
    EXPECT_EQ(session_busy, meter_busy);
    EXPECT_EQ(session_reqs, meter_reqs);
}

TEST(FaultIntegration, OversubscribedFleetSurvivesScriptedFaults)
{
    ExperimentConfig cfg;
    cfg.sched = SchedKind::DisengagedFq;
    cfg.dfq.killThreshold = sec(30); // kills below are the watchdog's
    cfg.fleet.devices = 4;
    cfg.serve.slotsPerDevice = 2; // fleet capacity: 8 sessions
    cfg.serve.useGlobalClock = true;
    cfg.serve.clockPeriod = msec(10);
    cfg.serve.migrationLag = msec(25);
    cfg.measure = sec(4);

    cfg.fault.watchdog.enabled = true;
    cfg.fault.watchdog.checkPeriod = msec(2);
    cfg.fault.watchdog.hangTimeout = msec(20);
    cfg.fault.watchdog.runawayTimeout = 0;

    // Scripted, so every fault lands deterministically mid-run while
    // the fleet is saturated: a transient stall, two channel hangs on
    // different devices, and a device death repaired 300ms later.
    cfg.fault.plan.script = {
        {msec(150), FaultKind::DeviceStall, 0, msec(10)},
        {msec(300), FaultKind::ChannelHang, 2, 0},
        {msec(350), FaultKind::ChannelHang, 3, 0},
        {msec(600), FaultKind::DeviceDeath, 1, msec(300)},
    };

    // 20 sessions arriving over 475ms, each wanting 1s of residency:
    // 20 in-system against capacity 8 is 2.5x oversubscription.
    std::vector<Tick> arrivals;
    for (int i = 0; i < 20; ++i)
        arrivals.push_back(i * msec(25));
    WorkloadSpec w = WorkloadSpec::throttle(usec(300));
    w.label = "sess";
    const std::vector<ServeWorkloadSpec> specs = {
        {w, ArrivalSpec::trace(arrivals), LifetimeSpec::fixed(sec(1))},
    };

    ServeWorld world(cfg, specs);
    world.start();
    world.runFor(cfg.measure);
    const ServeRunResult r = world.results();
    const AvailabilityReport &f = r.fault;

    // The offered load really oversubscribed the fleet.
    EXPECT_EQ(r.arrivals, 20u);
    EXPECT_EQ(r.capacity, 8u);
    EXPECT_GE(r.peakLiveSessions, 2 * r.capacity);

    // Injection matches the script exactly; nothing was skipped.
    EXPECT_EQ(f.injectedDeaths, 1u);
    EXPECT_EQ(f.injectedStalls, 1u);
    EXPECT_EQ(f.injectedHangs, 2u);
    EXPECT_EQ(f.skippedInjections, 0u);
    EXPECT_EQ(f.repairs, 1u);

    // The watchdog detected every injected hang — and nothing else —
    // within the hangTimeout + scan-granularity bound.
    EXPECT_EQ(f.detectedHangs, f.injectedHangs);
    EXPECT_EQ(f.watchdogHangKills, 2u);
    EXPECT_EQ(f.watchdogRunawayKills, 0u);
    EXPECT_EQ(f.schedulerKills, 0u);
    EXPECT_EQ(r.kills, 2u);
    ASSERT_NE(world.injector, nullptr);
    for (const HangRecord &h : world.injector->hangs())
        EXPECT_TRUE(h.detected);
    const Tick bound = cfg.fault.watchdog.hangTimeout +
        2 * cfg.fault.watchdog.checkPeriod;
    for (const WatchdogKill &k : world.fleet.watchdogKillLog()) {
        EXPECT_EQ(k.cause, WatchdogCause::Hang);
        EXPECT_LE(k.latency, bound);
    }
    EXPECT_GT(f.mttdMs, 0.0);
    EXPECT_LE(f.mttdMs, toMsec(bound));

    // The death interrupted live sessions; every one of them failed
    // over and eventually departed (acceptance asks for >= 95%).
    EXPECT_GE(r.evictions, 1u);
    EXPECT_EQ(f.evictedSessions, r.evictions);
    EXPECT_GE(r.recoveryRate, 0.95);
    EXPECT_EQ(r.shedSessions, 0u);
    EXPECT_GE(r.failovers, r.evictions); // every interruption resumed
    for (const auto &s : r.sessions) {
        if (s.evictions > 0 && !s.killed) {
            EXPECT_EQ(s.failovers, s.evictions);
            EXPECT_TRUE(s.hasDeparted());
        }
    }

    // The run drains: everyone departs except the two hang casualties.
    EXPECT_EQ(r.queuedAtEnd, 0u);
    std::uint64_t killed = 0;
    for (const auto &s : r.sessions)
        killed += s.killed ? 1u : 0u;
    EXPECT_EQ(killed, 2u);
    EXPECT_EQ(r.departures, r.arrivals - killed);

    // Exact accounting across evictions, kills, and failovers.
    expectExactAccounting(world, r);

    // Availability reflects exactly one 300ms outage over 4 device-
    // seconds x 4 devices, closed within the run.
    EXPECT_NEAR(f.mttrMs, 300.0, 1e-9);
    EXPECT_NEAR(f.availability,
                1.0 -
                    static_cast<double>(msec(300)) /
                        static_cast<double>(4 * sec(4)),
                1e-9);
}

TEST(FaultIntegration, EmptyPlanIsBitIdenticalToFaultsOff)
{
    // Stream isolation end to end: enabling the fault plane with an
    // empty plan (watchdog scanning included) must not shift a single
    // arrival, placement, service draw, or migration.
    ExperimentConfig base;
    base.sched = SchedKind::DisengagedFq;
    base.fleet.devices = 4;
    base.serve.slotsPerDevice = 2;
    base.serve.useGlobalClock = true;
    base.serve.clockPeriod = msec(10);
    base.serve.migrationLag = msec(10);
    base.measure = sec(2);
    base.seed = 1234;

    WorkloadSpec w = WorkloadSpec::throttle(usec(430));
    w.label = "open";
    const std::vector<ServeWorkloadSpec> specs = {
        {w, ArrivalSpec::poisson(80.0, sec(1)),
         LifetimeSpec::exponential(msec(200))},
    };

    ExperimentConfig guarded = base;
    guarded.fault.watchdog.enabled = true;
    guarded.fault.watchdog.checkPeriod = msec(2);
    guarded.fault.plan.enabled = true; // enabled, but nothing to inject
    guarded.fault.plan.horizon = base.measure;

    ServeWorld a(base, specs);
    a.start();
    a.runFor(base.measure);
    const ServeRunResult ra = a.results();

    ServeWorld b(guarded, specs);
    b.start();
    b.runFor(guarded.measure);
    const ServeRunResult rb = b.results();

    EXPECT_EQ(b.injector, nullptr); // an empty plan schedules nothing

    EXPECT_EQ(ra.arrivals, rb.arrivals);
    EXPECT_EQ(ra.departures, rb.departures);
    EXPECT_EQ(ra.requests, rb.requests);
    EXPECT_EQ(ra.migrations, rb.migrations);
    EXPECT_EQ(ra.kills, rb.kills);
    ASSERT_EQ(ra.sessions.size(), rb.sessions.size());
    for (std::size_t i = 0; i < ra.sessions.size(); ++i) {
        const ServeSessionResult &sa = ra.sessions[i];
        const ServeSessionResult &sb = rb.sessions[i];
        EXPECT_EQ(sa.label, sb.label);
        EXPECT_EQ(sa.arrived, sb.arrived);
        EXPECT_EQ(sa.admitted, sb.admitted);
        EXPECT_EQ(sa.departed, sb.departed);
        EXPECT_EQ(sa.busy, sb.busy);
        EXPECT_EQ(sa.requests, sb.requests);
        EXPECT_EQ(sa.migrations, sb.migrations);
        EXPECT_EQ(sa.devices, sb.devices);
    }
    ASSERT_EQ(ra.deviceBusy.size(), rb.deviceBusy.size());
    for (std::size_t i = 0; i < ra.deviceBusy.size(); ++i)
        EXPECT_EQ(ra.deviceBusy[i], rb.deviceBusy[i]);
}

} // namespace
} // namespace neon
