/**
 * @file
 * Watchdog service tests: hang detection by doorbell-progress timeout
 * within the configured latency bound, runaway containment, no false
 * positives on healthy or merely-stalled devices, and the
 * hog-then-hang adversary under Disengaged Fair Queueing.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "fault/watchdog.hh"
#include "harness/experiment.hh"
#include "workload/adversary.hh"

namespace neon
{
namespace
{

/** Watchdog knobs shared by most tests here. */
WatchdogConfig
fastWatchdog()
{
    WatchdogConfig w;
    w.enabled = true;
    w.checkPeriod = msec(2);
    w.hangTimeout = msec(30);
    w.runawayTimeout = 0; // isolate the hang check
    return w;
}

TEST(Watchdog, KillsInfiniteKernelWithinLatencyBound)
{
    // Direct scheduling has no protection of its own — any kill is the
    // watchdog's.
    ExperimentConfig cfg;
    cfg.sched = SchedKind::Direct;
    cfg.fault.watchdog = fastWatchdog();
    cfg.warmup = 0;
    cfg.measure = sec(1);

    World world(cfg);
    world.spawn(WorkloadSpec::custom(
        "wedged", [](Task &t, std::uint64_t) {
            return infiniteKernelBody(t, 5, usec(100));
        }));
    Task &victim = world.spawn(WorkloadSpec::throttle(usec(100)));
    world.start();
    world.runFor(cfg.measure);
    const RunResult r = world.results();

    ASSERT_NE(world.watchdog, nullptr);
    EXPECT_GT(world.watchdog->scans(), 0u);
    EXPECT_EQ(world.watchdog->hangKills(), 1u);
    EXPECT_EQ(world.watchdog->runawayKills(), 0u);
    EXPECT_EQ(r.kills, 1u);
    EXPECT_TRUE(r.byLabel("wedged").killed);

    // Detection latency is bounded by hangTimeout plus scan
    // granularity (one period to stamp, one to convict).
    ASSERT_EQ(world.watchdog->killLog().size(), 1u);
    const WatchdogKill &k = world.watchdog->killLog().front();
    EXPECT_EQ(k.cause, WatchdogCause::Hang);
    EXPECT_GE(k.latency, cfg.fault.watchdog.hangTimeout);
    EXPECT_LE(k.latency,
              cfg.fault.watchdog.hangTimeout +
                  2 * cfg.fault.watchdog.checkPeriod);

    // The victim survives the hang and owns the device afterwards.
    EXPECT_TRUE(victim.alive());
    EXPECT_GT(r.byLabel("Throttle(100us)").rounds, 5000u);
}

TEST(Watchdog, QuietOnHealthyWorkloads)
{
    ExperimentConfig cfg;
    cfg.sched = SchedKind::DisengagedFq;
    cfg.fault.watchdog = fastWatchdog();
    cfg.fault.watchdog.runawayTimeout = msec(150);
    cfg.warmup = 0;
    cfg.measure = sec(1);

    World world(cfg);
    world.spawn(WorkloadSpec::app("DCT"));
    world.spawn(WorkloadSpec::throttle(usec(430)));
    world.start();
    world.runFor(cfg.measure);
    const RunResult r = world.results();

    EXPECT_GT(world.watchdog->scans(), 100u);
    EXPECT_TRUE(world.watchdog->killLog().empty());
    EXPECT_EQ(r.kills, 0u);
}

TEST(Watchdog, StallIsNotMistakenForHang)
{
    // A Degraded window freezes every channel's doorbell progress; the
    // watchdog must not convict anyone for it, even when the stall
    // lasts far longer than hangTimeout.
    ExperimentConfig cfg;
    cfg.sched = SchedKind::Direct;
    cfg.fault.watchdog = fastWatchdog();
    cfg.warmup = 0;
    cfg.measure = sec(1);

    World world(cfg);
    world.spawn(WorkloadSpec::throttle(usec(430)));
    world.eq.schedule(msec(100), [&world] {
        world.device.stall(msec(200));
    });
    world.start();
    world.runFor(cfg.measure);
    const RunResult r = world.results();

    EXPECT_EQ(world.device.health(), DeviceHealth::Up);
    EXPECT_TRUE(world.watchdog->killLog().empty());
    EXPECT_EQ(r.kills, 0u);
    EXPECT_GT(r.byLabel("Throttle(430us)").rounds, 0u);
}

TEST(Watchdog, RunawayRequestIsKilledWithoutVictims)
{
    // One tenant, one huge request per round: no starved victim ever
    // stops making progress (there is nobody else), so the hang check
    // stays silent — the runaway check alone must catch it.
    ExperimentConfig cfg;
    cfg.sched = SchedKind::Direct;
    cfg.fault.watchdog.enabled = true;
    cfg.fault.watchdog.checkPeriod = msec(2);
    cfg.fault.watchdog.hangTimeout = sec(5); // out of the picture
    cfg.fault.watchdog.runawayTimeout = msec(5);
    cfg.warmup = 0;
    cfg.measure = sec(1);

    World world(cfg);
    world.spawn(WorkloadSpec::custom(
        "hog", [](Task &t, std::uint64_t) {
            return batchingHogBody(t, msec(8));
        }));
    world.start();
    world.runFor(cfg.measure);
    const RunResult r = world.results();

    EXPECT_EQ(world.watchdog->runawayKills(), 1u);
    EXPECT_EQ(world.watchdog->hangKills(), 0u);
    EXPECT_TRUE(r.byLabel("hog").killed);
    ASSERT_EQ(world.watchdog->killLog().size(), 1u);
    const WatchdogKill &k = world.watchdog->killLog().front();
    EXPECT_EQ(k.cause, WatchdogCause::Runaway);
    EXPECT_GE(k.latency, cfg.fault.watchdog.runawayTimeout);
}

TEST(Watchdog, HogThenHangKilledUnderDfqFairnessHoldsForVictims)
{
    // The worst watchdog tenant: indistinguishable from a legitimate
    // heavy app until it wedges. The scheduler's own kill threshold is
    // parked out of reach so detection is provably the watchdog's, and
    // the DFQ fairness bound must hold for the two victims throughout.
    ExperimentConfig cfg;
    cfg.sched = SchedKind::DisengagedFq;
    cfg.dfq.killThreshold = sec(30);
    cfg.fault.watchdog = fastWatchdog();
    cfg.warmup = 0;
    cfg.measure = sec(2);

    World world(cfg);
    world.spawn(WorkloadSpec::custom(
        "hogThenHang", [](Task &t, std::uint64_t) {
            return hogThenHangBody(t, 40, msec(2));
        }));
    WorkloadSpec va = WorkloadSpec::throttle(usec(430));
    va.label = "victimA";
    WorkloadSpec vb = WorkloadSpec::throttle(usec(430));
    vb.label = "victimB";
    world.spawn(va);
    world.spawn(vb);
    world.start();
    world.runFor(cfg.measure);
    const RunResult r = world.results();

    // Killed by the watchdog, within the hang-detection bound.
    EXPECT_EQ(world.watchdog->hangKills(), 1u);
    EXPECT_EQ(r.kills, 1u);
    EXPECT_TRUE(r.byLabel("hogThenHang").killed);
    ASSERT_EQ(world.watchdog->killLog().size(), 1u);
    const WatchdogKill &k = world.watchdog->killLog().front();
    EXPECT_EQ(k.cause, WatchdogCause::Hang);
    EXPECT_LE(k.latency,
              cfg.fault.watchdog.hangTimeout +
                  2 * cfg.fault.watchdog.checkPeriod);

    // DFQ keeps the victims fair: equal-weight identical workloads end
    // the run with near-identical device time, both substantial.
    const Tick a = r.byLabel("victimA").gpuBusy;
    const Tick b = r.byLabel("victimB").gpuBusy;
    ASSERT_GT(a, 0);
    ASSERT_GT(b, 0);
    const double ratio = static_cast<double>(std::min(a, b)) /
        static_cast<double>(std::max(a, b));
    EXPECT_GT(ratio, 0.85);
    EXPECT_GT(a + b, msec(1000)); // they own the device after the kill
}

} // namespace
} // namespace neon
