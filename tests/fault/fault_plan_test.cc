/**
 * @file
 * Unit tests for deterministic fault-plan generation: purity in
 * (config, device count, seed), time ordering, script merging, and
 * RNG-stream isolation from workload draws.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "fault/fault_plan.hh"
#include "sim/random.hh"

namespace neon
{
namespace
{

bool
samePlan(const std::vector<FaultEvent> &a, const std::vector<FaultEvent> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].at != b[i].at || a[i].kind != b[i].kind ||
            a[i].device != b[i].device || a[i].duration != b[i].duration)
            return false;
    }
    return true;
}

FaultPlanConfig
stochasticCfg()
{
    FaultPlanConfig cfg;
    cfg.enabled = true;
    cfg.horizon = sec(10);
    cfg.deathRatePerSec = 0.5;
    cfg.meanRepair = msec(100);
    cfg.stallRatePerSec = 2.0;
    cfg.meanStall = msec(5);
    cfg.hangRatePerSec = 1.0;
    return cfg;
}

TEST(FaultPlan, EmptyConfigYieldsEmptyPlan)
{
    FaultPlanConfig cfg;
    EXPECT_FALSE(cfg.any());
    EXPECT_TRUE(buildFaultPlan(cfg, 4, 42).empty());

    // Rates set but the master switch off: still nothing.
    FaultPlanConfig off = stochasticCfg();
    off.enabled = false;
    EXPECT_FALSE(off.any());
    EXPECT_TRUE(buildFaultPlan(off, 4, 42).empty());
}

TEST(FaultPlan, SameInputsSamePlan)
{
    const FaultPlanConfig cfg = stochasticCfg();
    const auto a = buildFaultPlan(cfg, 4, 42);
    const auto b = buildFaultPlan(cfg, 4, 42);
    ASSERT_FALSE(a.empty());
    EXPECT_TRUE(samePlan(a, b));
}

TEST(FaultPlan, DifferentSeedOrShapeChangesPlan)
{
    const FaultPlanConfig cfg = stochasticCfg();
    const auto base = buildFaultPlan(cfg, 4, 42);
    EXPECT_FALSE(samePlan(base, buildFaultPlan(cfg, 4, 43)));
    EXPECT_FALSE(samePlan(base, buildFaultPlan(cfg, 3, 42)));
}

TEST(FaultPlan, PlanIsTimeOrderedWithinHorizonAndDeviceRange)
{
    const FaultPlanConfig cfg = stochasticCfg();
    const auto plan = buildFaultPlan(cfg, 4, 7);
    ASSERT_FALSE(plan.empty());
    for (std::size_t i = 0; i < plan.size(); ++i) {
        EXPECT_GE(plan[i].at, 0);
        EXPECT_LE(plan[i].at, cfg.horizon);
        EXPECT_LT(plan[i].device, 4u);
        if (i > 0)
            EXPECT_LE(plan[i - 1].at, plan[i].at);
    }
}

TEST(FaultPlan, ScriptMergedInOrder)
{
    FaultPlanConfig cfg = stochasticCfg();
    cfg.script = {
        {sec(20), FaultKind::DeviceDeath, 2, msec(300)},
        {msec(1), FaultKind::ChannelHang, 0, 0},
    };
    const auto plan = buildFaultPlan(cfg, 4, 42);

    int scriptedSeen = 0;
    for (std::size_t i = 0; i < plan.size(); ++i) {
        if (i > 0)
            EXPECT_LE(plan[i - 1].at, plan[i].at);
        if (plan[i].at == sec(20) && plan[i].kind == FaultKind::DeviceDeath &&
            plan[i].device == 2 && plan[i].duration == msec(300))
            ++scriptedSeen;
        if (plan[i].at == msec(1) && plan[i].kind == FaultKind::ChannelHang &&
            plan[i].device == 0)
            ++scriptedSeen;
    }
    EXPECT_EQ(scriptedSeen, 2);

    // A script alone (generator off) is a plan, verbatim but sorted.
    FaultPlanConfig scriptOnly;
    scriptOnly.script = cfg.script;
    EXPECT_TRUE(scriptOnly.any());
    const auto bare = buildFaultPlan(scriptOnly, 4, 42);
    ASSERT_EQ(bare.size(), 2u);
    EXPECT_EQ(bare[0].at, msec(1));
    EXPECT_EQ(bare[1].at, sec(20));
}

TEST(FaultPlan, GenerationDoesNotPerturbWorkloadStreams)
{
    // The plan draws only from the "fault.plan" named stream; the
    // workload streams derived from the same root stay bit-identical
    // whether or not a plan was built.
    Rng before = namedStream(42, "serve.arrivals");
    std::vector<std::uint64_t> clean;
    for (int i = 0; i < 32; ++i)
        clean.push_back(before.next());

    (void)buildFaultPlan(stochasticCfg(), 4, 42);

    Rng after = namedStream(42, "serve.arrivals");
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(after.next(), clean[static_cast<std::size_t>(i)]);
}

TEST(FaultPlan, KindNames)
{
    EXPECT_STREQ(faultKindName(FaultKind::DeviceStall), "stall");
    EXPECT_STREQ(faultKindName(FaultKind::DeviceDeath), "death");
    EXPECT_STREQ(faultKindName(FaultKind::ChannelHang), "hang");
}

} // namespace
} // namespace neon
