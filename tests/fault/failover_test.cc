/**
 * @file
 * Device availability state machine and fleet failover: stall
 * pause/resume with exact accounting, forced death with partial
 * occupancy charging, hang injection, placement steering around down
 * devices, and FleetManager drain/repair.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "fleet/placement.hh"
#include "gpu/device.hh"
#include "harness/experiment.hh"
#include "sim/event_queue.hh"

namespace neon
{
namespace
{

struct DeviceHealthFixture : public ::testing::Test
{
    EventQueue eq;
    UsageMeter meter;
    DeviceConfig cfg;
    std::unique_ptr<GpuDevice> dev;
    GpuContext *ctx = nullptr;
    Channel *chan = nullptr;

    void
    build()
    {
        dev = std::make_unique<GpuDevice>(eq, cfg, meter);
        ctx = dev->createContext(1);
        chan = dev->createChannel(*ctx, RequestClass::Compute);
        ASSERT_NE(chan, nullptr);
    }

    void
    submit(Tick service)
    {
        GpuRequest r;
        r.cls = RequestClass::Compute;
        r.serviceTime = service;
        r.ref = chan->allocRef();
        dev->submit(*chan, r);
    }
};

TEST_F(DeviceHealthFixture, StallPausesInFlightAndChargesExecutionOnly)
{
    build();
    submit(usec(100));
    eq.schedule(usec(30), [this] { dev->stall(usec(40)); });
    eq.drain();

    // 30us run + 40us pause + 70us remainder: completion shifts by
    // exactly the pause, but the meter sees pure execution time.
    EXPECT_EQ(chan->completedRef(), 1u);
    EXPECT_EQ(eq.now(), usec(140));
    EXPECT_EQ(meter.busyOf(1), usec(100));
    EXPECT_EQ(dev->health(), DeviceHealth::Up);
}

TEST_F(DeviceHealthFixture, OverlappingStallsExtendTheWindow)
{
    build();
    submit(usec(100));
    eq.schedule(usec(30), [this] { dev->stall(usec(40)); });
    eq.schedule(usec(40), [this] { dev->stall(usec(60)); });
    eq.drain();

    // Second stall pushes resumption to t=100; 70us remained.
    EXPECT_EQ(chan->completedRef(), 1u);
    EXPECT_EQ(eq.now(), usec(170));
    EXPECT_EQ(meter.busyOf(1), usec(100));
}

TEST_F(DeviceHealthFixture, ForceDownLosesInFlightButChargesOccupancy)
{
    build();
    submit(usec(100));
    eq.schedule(usec(30), [this] { dev->forceDown(); });
    eq.runFor(msec(10));

    // The request never completes, but the 30us it held the engine is
    // real and charged — the meter-reconciliation invariant.
    EXPECT_EQ(chan->completedRef(), 0u);
    EXPECT_EQ(meter.busyOf(1), usec(30));
    EXPECT_EQ(dev->health(), DeviceHealth::Down);

    // Nothing dispatches while down; repair revives the device.
    submit(usec(50));
    eq.runFor(msec(1));
    EXPECT_EQ(chan->completedRef(), 0u);
    dev->repair();
    EXPECT_EQ(dev->health(), DeviceHealth::Up);
    eq.drain();
    EXPECT_EQ(chan->completedRef(), 2u);
    EXPECT_EQ(meter.busyOf(1), usec(80));
}

TEST_F(DeviceHealthFixture, DownDeviceEndsAnActiveStall)
{
    build();
    submit(usec(100));
    eq.schedule(usec(20), [this] { dev->stall(usec(50)); });
    eq.schedule(usec(40), [this] { dev->forceDown(); });
    eq.runFor(msec(10));

    // Paused at t=20 with 80us left, then killed: only the 20us of
    // actual execution before the pause is charged.
    EXPECT_EQ(dev->health(), DeviceHealth::Down);
    EXPECT_EQ(chan->completedRef(), 0u);
    EXPECT_EQ(meter.busyOf(1), usec(20));
}

TEST_F(DeviceHealthFixture, InjectHangWedgesActiveRequest)
{
    build();
    submit(usec(100));
    eq.schedule(usec(10), [this] { dev->injectHang(*chan); });
    eq.runFor(sec(1));

    EXPECT_EQ(chan->completedRef(), 0u);
    EXPECT_TRUE(dev->engineBusy(EngineKind::Execute));
}

TEST_F(DeviceHealthFixture, InjectHangOnIdleChannelArmsNextSubmit)
{
    build();
    dev->injectHang(*chan); // idle: arms the trap instead
    submit(usec(100));
    eq.runFor(sec(1));

    EXPECT_EQ(chan->completedRef(), 0u);
    EXPECT_TRUE(dev->engineBusy(EngineKind::Execute));
}

std::vector<DeviceLoadView>
fleetView(std::size_t n)
{
    std::vector<DeviceLoadView> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i].index = i;
    return v;
}

TEST(PlacementAvailability, RoundRobinSkipsDownDevices)
{
    RoundRobinPlacement p;
    auto devices = fleetView(3);
    devices[1].up = false;
    PlacementRequest r;
    r.label = "t";
    EXPECT_EQ(p.place(devices, r), 0u);
    EXPECT_EQ(p.place(devices, r), 2u);
    EXPECT_EQ(p.place(devices, r), 0u);
    EXPECT_EQ(p.place(devices, r), 2u);
}

TEST(PlacementAvailability, LeastLoadedSkipsDownDevices)
{
    LeastLoadedPlacement p;
    auto devices = fleetView(3);
    devices[0].busyTime = msec(500);
    devices[1].busyTime = 0; // idlest, but down
    devices[1].up = false;
    devices[2].busyTime = msec(100);
    PlacementRequest r;
    r.label = "t";
    EXPECT_EQ(p.place(devices, r), 2u);
}

TEST(PlacementAvailability, StickySpillsOffDownAffinityHome)
{
    StickyPlacement p(4);
    auto devices = fleetView(2);
    PlacementRequest r;
    r.label = "fnA";
    r.affinityKey = "fnA";
    const std::size_t home = p.place(devices, r);
    p.noteTaskPlaced(r, home);
    devices[home].up = false;
    EXPECT_NE(p.place(devices, r), home);
}

TEST(FleetFailover, FailDeviceDrainsRepairRestores)
{
    ExperimentConfig cfg;
    cfg.sched = SchedKind::Direct;
    cfg.fleet.devices = 2;
    cfg.fleet.placement = PlacementKind::RoundRobin;
    cfg.measure = sec(1);

    FleetWorld world(cfg);
    for (int i = 0; i < 4; ++i)
        world.spawn(WorkloadSpec::throttle(usec(430)));
    world.start();
    world.runFor(msec(50));

    int evicted = 0;
    std::vector<std::size_t> downs, ups;
    world.fleet.onTaskEvicted = [&](Task &t) {
        ++evicted;
        world.fleet.retireTask(t);
    };
    world.fleet.onDeviceDown = [&](std::size_t i) { downs.push_back(i); };
    world.fleet.onDeviceUp = [&](std::size_t i) { ups.push_back(i); };

    ASSERT_EQ(world.fleet.upDeviceCount(), 2u);
    world.fleet.failDevice(0);

    // Round-robin put two of the four tasks there; both drained.
    EXPECT_EQ(evicted, 2);
    EXPECT_EQ(world.fleet.upDeviceCount(), 1u);
    EXPECT_FALSE(world.fleet.deviceUp(0));
    EXPECT_EQ(world.fleet.stack(0).device.health(), DeviceHealth::Down);
    ASSERT_EQ(downs, (std::vector<std::size_t>{0}));

    // Survivors keep serving on device 1 while 0 is dark.
    const Tick busy0 = world.fleet.stack(0).meter.totalBusy();
    const Tick busy1 = world.fleet.stack(1).meter.totalBusy();
    world.runFor(msec(50));
    EXPECT_EQ(world.fleet.stack(0).meter.totalBusy(), busy0);
    EXPECT_GT(world.fleet.stack(1).meter.totalBusy(), busy1);

    world.fleet.repairDevice(0);
    EXPECT_EQ(world.fleet.upDeviceCount(), 2u);
    EXPECT_EQ(world.fleet.stack(0).device.health(), DeviceHealth::Up);
    ASSERT_EQ(ups, (std::vector<std::size_t>{0}));
}

} // namespace
} // namespace neon
