/**
 * @file
 * Unit tests for the channel ring buffer.
 */

#include <gtest/gtest.h>

#include "gpu/ring_buffer.hh"

namespace neon
{
namespace
{

GpuRequest
req(std::uint64_t ref, Tick service = usec(10))
{
    GpuRequest r;
    r.ref = ref;
    r.serviceTime = service;
    return r;
}

TEST(RingBuffer, StartsEmpty)
{
    RingBuffer rb(4);
    EXPECT_TRUE(rb.empty());
    EXPECT_FALSE(rb.full());
    EXPECT_EQ(rb.size(), 0u);
    EXPECT_EQ(rb.capacity(), 4u);
}

TEST(RingBuffer, FifoOrder)
{
    RingBuffer rb(8);
    for (std::uint64_t i = 1; i <= 5; ++i)
        ASSERT_TRUE(rb.push(req(i)));
    for (std::uint64_t i = 1; i <= 5; ++i)
        EXPECT_EQ(rb.pop().ref, i);
    EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, RejectsWhenFull)
{
    RingBuffer rb(2);
    EXPECT_TRUE(rb.push(req(1)));
    EXPECT_TRUE(rb.push(req(2)));
    EXPECT_TRUE(rb.full());
    EXPECT_FALSE(rb.push(req(3)));
    EXPECT_EQ(rb.size(), 2u);
}

TEST(RingBuffer, FrontDoesNotPop)
{
    RingBuffer rb(4);
    rb.push(req(7));
    EXPECT_EQ(rb.front().ref, 7u);
    EXPECT_EQ(rb.size(), 1u);
    EXPECT_EQ(rb.pop().ref, 7u);
}

TEST(RingBuffer, ClearDropsEverything)
{
    RingBuffer rb(4);
    rb.push(req(1));
    rb.push(req(2));
    rb.clear();
    EXPECT_TRUE(rb.empty());
    EXPECT_TRUE(rb.push(req(3)));
}

TEST(RingBuffer, ReusableAfterDrain)
{
    RingBuffer rb(2);
    for (int round = 0; round < 100; ++round) {
        ASSERT_TRUE(rb.push(req(2 * round + 1)));
        ASSERT_TRUE(rb.push(req(2 * round + 2)));
        ASSERT_TRUE(rb.full());
        rb.pop();
        rb.pop();
        ASSERT_TRUE(rb.empty());
    }
}

} // namespace
} // namespace neon
