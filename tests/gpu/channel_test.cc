/**
 * @file
 * Unit tests for channel state: reference counters, waiters, doorbell
 * protection bits.
 */

#include <gtest/gtest.h>

#include <vector>

#include "gpu/channel.hh"
#include "gpu/context.hh"

namespace neon
{
namespace
{

struct ChannelFixture : public ::testing::Test
{
    GpuContext ctx{1, 42};
    Channel chan{7, ctx, RequestClass::Compute, 16};
};

TEST_F(ChannelFixture, Identity)
{
    EXPECT_EQ(chan.id(), 7);
    EXPECT_EQ(chan.context().taskId(), 42);
    EXPECT_EQ(chan.engine(), EngineKind::Execute);
}

TEST_F(ChannelFixture, DmaChannelsUseCopyEngine)
{
    Channel dma(8, ctx, RequestClass::Dma, 16);
    EXPECT_EQ(dma.engine(), EngineKind::Copy);
}

TEST_F(ChannelFixture, RefAllocationIsMonotone)
{
    EXPECT_EQ(chan.allocRef(), 1u);
    EXPECT_EQ(chan.allocRef(), 2u);
    EXPECT_EQ(chan.allocRef(), 3u);
    EXPECT_EQ(chan.lastAllocatedRef(), 3u);
}

TEST_F(ChannelFixture, CompletionAdvancesCounterMonotonically)
{
    chan.complete(5);
    EXPECT_EQ(chan.completedRef(), 5u);
    chan.complete(3); // stale write must not move the counter back
    EXPECT_EQ(chan.completedRef(), 5u);
    chan.complete(9);
    EXPECT_EQ(chan.completedRef(), 9u);
}

TEST_F(ChannelFixture, WaitersFireWhenTargetReached)
{
    std::vector<int> fired;
    chan.waitRef(3, [&] { fired.push_back(3); });
    chan.waitRef(5, [&] { fired.push_back(5); });

    chan.complete(2);
    EXPECT_TRUE(fired.empty());

    chan.complete(3);
    EXPECT_EQ(fired, (std::vector<int>{3}));

    chan.complete(7);
    EXPECT_EQ(fired, (std::vector<int>{3, 5}));
}

TEST_F(ChannelFixture, MultipleWaitersOnSameRef)
{
    int count = 0;
    chan.waitRef(2, [&] { ++count; });
    chan.waitRef(2, [&] { ++count; });
    chan.complete(2);
    EXPECT_EQ(count, 2);
}

TEST_F(ChannelFixture, WaiterFiresOnceOnly)
{
    int count = 0;
    chan.waitRef(1, [&] { ++count; });
    chan.complete(1);
    chan.complete(2);
    EXPECT_EQ(count, 1);
}

TEST_F(ChannelFixture, DoorbellStartsProtected)
{
    EXPECT_FALSE(chan.doorbell().present());
}

TEST_F(ChannelFixture, DoorbellToggleCountsTransitions)
{
    auto &bell = chan.doorbell();
    bell.setPresent(true);
    bell.setPresent(true); // no-op, not a toggle
    bell.setPresent(false);
    EXPECT_EQ(bell.toggles(), 2u);
}

TEST_F(ChannelFixture, DoorbellAccessCounters)
{
    auto &bell = chan.doorbell();
    bell.noteDirectWrite();
    bell.noteDirectWrite();
    bell.noteFault();
    EXPECT_EQ(bell.directWrites(), 2u);
    EXPECT_EQ(bell.faults(), 1u);
}

TEST_F(ChannelFixture, DrainedReflectsQueueAndEngine)
{
    EXPECT_TRUE(chan.drained());
    GpuRequest r;
    r.ref = chan.allocRef();
    chan.ring().push(r);
    EXPECT_FALSE(chan.drained());
    chan.ring().pop();
    chan.setBusyOnDevice(true);
    EXPECT_FALSE(chan.drained());
    chan.setBusyOnDevice(false);
    EXPECT_TRUE(chan.drained());
}

} // namespace
} // namespace neon
