/**
 * @file
 * Unit tests for round-robin arbitration, including the graphics
 * penalty that models the device's non-uniform internal scheduling.
 */

#include <gtest/gtest.h>

#include <map>

#include "gpu/arbiter.hh"
#include "gpu/context.hh"

namespace neon
{
namespace
{

GpuRequest
req(std::uint64_t ref)
{
    GpuRequest r;
    r.ref = ref;
    r.serviceTime = usec(10);
    return r;
}

struct ArbiterFixture : public ::testing::Test
{
    GpuContext ctxA{1, 1};
    GpuContext ctxB{2, 2};

    void
    fill(Channel &c, int n)
    {
        for (int i = 0; i < n; ++i)
            c.ring().push(req(c.allocRef()));
    }

    /** Serve @p n picks and count how many each channel won. */
    std::map<int, int>
    tally(Arbiter &arb, int n)
    {
        std::map<int, int> counts;
        for (int i = 0; i < n; ++i) {
            Channel *c = arb.pick();
            if (!c)
                break;
            ++counts[c->id()];
            c->ring().pop();
            c->ring().push(req(c->allocRef())); // keep it saturated
        }
        return counts;
    }
};

TEST_F(ArbiterFixture, EmptyRotationYieldsNull)
{
    Arbiter arb;
    EXPECT_EQ(arb.pick(), nullptr);
}

TEST_F(ArbiterFixture, SkipsIdleChannels)
{
    Arbiter arb;
    Channel a(1, ctxA, RequestClass::Compute, 8);
    Channel b(2, ctxB, RequestClass::Compute, 8);
    arb.registerChannel(&a);
    arb.registerChannel(&b);
    fill(b, 1);
    EXPECT_EQ(arb.pick(), &b);
}

TEST_F(ArbiterFixture, AlternatesBetweenSaturatedComputeChannels)
{
    Arbiter arb;
    Channel a(1, ctxA, RequestClass::Compute, 8);
    Channel b(2, ctxB, RequestClass::Compute, 8);
    arb.registerChannel(&a);
    arb.registerChannel(&b);
    fill(a, 2);
    fill(b, 2);

    auto counts = tally(arb, 100);
    EXPECT_EQ(counts[1], 50);
    EXPECT_EQ(counts[2], 50);
}

TEST_F(ArbiterFixture, RoundRobinShareIsPerChannelNotPerRequestSize)
{
    // Three channels, equal visits regardless of queue depth.
    Arbiter arb;
    Channel a(1, ctxA, RequestClass::Compute, 64);
    Channel b(2, ctxB, RequestClass::Compute, 64);
    Channel c(3, ctxB, RequestClass::Compute, 64);
    arb.registerChannel(&a);
    arb.registerChannel(&b);
    arb.registerChannel(&c);
    fill(a, 30);
    fill(b, 2);
    fill(c, 2);

    auto counts = tally(arb, 99);
    EXPECT_EQ(counts[1], 33);
    EXPECT_EQ(counts[2], 33);
    EXPECT_EQ(counts[3], 33);
}

TEST_F(ArbiterFixture, GraphicsPenaltyGivesOneThirdRate)
{
    Arbiter arb(3);
    Channel comp(1, ctxA, RequestClass::Compute, 8);
    Channel gfx(2, ctxB, RequestClass::Graphics, 8);
    arb.registerChannel(&comp);
    arb.registerChannel(&gfx);
    fill(comp, 2);
    fill(gfx, 2);

    auto counts = tally(arb, 120);
    // Graphics requests complete at ~1/3 the rate of the compute
    // co-runner's (the paper's glxgears observation).
    EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 1.0 / 3.0,
                0.05);
    EXPECT_EQ(counts[1] + counts[2], 120);
}

TEST_F(ArbiterFixture, GraphicsAloneRunsAtFullRate)
{
    Arbiter arb(3);
    Channel gfx(2, ctxB, RequestClass::Graphics, 8);
    arb.registerChannel(&gfx);
    fill(gfx, 2);

    auto counts = tally(arb, 50);
    EXPECT_EQ(counts[2], 50);
}

TEST_F(ArbiterFixture, NoPenaltyWhenConfiguredUniform)
{
    Arbiter arb(1);
    Channel comp(1, ctxA, RequestClass::Compute, 8);
    Channel gfx(2, ctxB, RequestClass::Graphics, 8);
    arb.registerChannel(&comp);
    arb.registerChannel(&gfx);
    fill(comp, 2);
    fill(gfx, 2);

    auto counts = tally(arb, 100);
    EXPECT_EQ(counts[1], 50);
    EXPECT_EQ(counts[2], 50);
}

TEST_F(ArbiterFixture, RemoveChannelKeepsRotationConsistent)
{
    Arbiter arb;
    Channel a(1, ctxA, RequestClass::Compute, 8);
    Channel b(2, ctxB, RequestClass::Compute, 8);
    Channel c(3, ctxB, RequestClass::Compute, 8);
    arb.registerChannel(&a);
    arb.registerChannel(&b);
    arb.registerChannel(&c);
    fill(a, 1);
    fill(b, 1);
    fill(c, 1);

    EXPECT_EQ(arb.pick(), &a);
    arb.removeChannel(&b);
    EXPECT_EQ(arb.channelCount(), 2u);
    a.ring().pop();
    EXPECT_EQ(arb.pick(), &c);
}

} // namespace
} // namespace neon
