/**
 * @file
 * Unit tests for the device model: dispatch, completion, reference
 * counters, context-switch accounting, DMA overlap, channel pool
 * exhaustion, abort.
 */

#include <gtest/gtest.h>

#include "gpu/device.hh"
#include "sim/event_queue.hh"

namespace neon
{
namespace
{

struct DeviceFixture : public ::testing::Test
{
    EventQueue eq;
    UsageMeter meter;
    DeviceConfig cfg;
    std::unique_ptr<GpuDevice> dev;

    void
    build()
    {
        dev = std::make_unique<GpuDevice>(eq, cfg, meter);
    }

    GpuRequest
    req(Channel &c, Tick service, RequestClass cls = RequestClass::Compute)
    {
        GpuRequest r;
        r.cls = cls;
        r.serviceTime = service;
        r.ref = c.allocRef();
        return r;
    }
};

TEST_F(DeviceFixture, SingleRequestCompletesAfterServiceTime)
{
    build();
    auto *ctx = dev->createContext(1);
    auto *c = dev->createChannel(*ctx, RequestClass::Compute);
    ASSERT_NE(c, nullptr);

    dev->submit(*c, req(*c, usec(100)));
    EXPECT_TRUE(dev->engineBusy(EngineKind::Execute));

    eq.drain();
    EXPECT_EQ(c->completedRef(), 1u);
    EXPECT_EQ(eq.now(), usec(100));
    EXPECT_EQ(meter.busyOf(1), usec(100));
}

TEST_F(DeviceFixture, FifoWithinChannel)
{
    build();
    auto *ctx = dev->createContext(1);
    auto *c = dev->createChannel(*ctx, RequestClass::Compute);

    std::vector<std::uint64_t> completions;
    dev->traceComplete = [&](Channel &, const GpuRequest &r, Tick, Tick) {
        completions.push_back(r.ref);
    };

    dev->submit(*c, req(*c, usec(10)));
    dev->submit(*c, req(*c, usec(10)));
    dev->submit(*c, req(*c, usec(10)));
    eq.drain();

    EXPECT_EQ(completions, (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST_F(DeviceFixture, RoundRobinAcrossChannels)
{
    build();
    auto *ctxa = dev->createContext(1);
    auto *ctxb = dev->createContext(2);
    auto *a = dev->createChannel(*ctxa, RequestClass::Compute);
    auto *b = dev->createChannel(*ctxb, RequestClass::Compute);

    // Large vs small request sizes: with per-request round-robin, the
    // large-request channel receives proportionally more device time.
    for (int i = 0; i < 10; ++i) {
        dev->submit(*a, req(*a, usec(100)));
        dev->submit(*b, req(*b, usec(10)));
    }
    eq.drain();

    EXPECT_EQ(meter.busyOf(1), 10 * usec(100));
    EXPECT_EQ(meter.busyOf(2), 10 * usec(10));
    // Switch overhead was paid for the alternation.
    EXPECT_GT(meter.totalSwitchOverhead(), 0);
}

TEST_F(DeviceFixture, ContextSwitchCostsAccrue)
{
    cfg.contextSwitchCost = usec(5);
    build();
    auto *ctxa = dev->createContext(1);
    auto *ctxb = dev->createContext(2);
    auto *a = dev->createChannel(*ctxa, RequestClass::Compute);
    auto *b = dev->createChannel(*ctxb, RequestClass::Compute);

    dev->submit(*a, req(*a, usec(10)));
    dev->submit(*b, req(*b, usec(10)));
    eq.drain();

    // One switch between the two contexts (first dispatch is free).
    EXPECT_EQ(meter.totalSwitchOverhead(), usec(5));
    EXPECT_EQ(eq.now(), usec(10) + usec(5) + usec(10));
}

TEST_F(DeviceFixture, DmaOverlapsCompute)
{
    build();
    auto *ctx = dev->createContext(1);
    auto *c = dev->createChannel(*ctx, RequestClass::Compute);
    auto *d = dev->createChannel(*ctx, RequestClass::Dma);

    dev->submit(*c, req(*c, usec(100)));
    dev->submit(*d, req(*d, usec(100), RequestClass::Dma));
    eq.drain();

    // Both engines ran concurrently: elapsed ~100us, not 200us.
    EXPECT_EQ(eq.now(), usec(100));
    EXPECT_EQ(meter.busyOf(1), usec(200));
    EXPECT_EQ(meter.totalDmaBusy(), usec(100));
}

TEST_F(DeviceFixture, TriviaCoalesceWithFollowingRequest)
{
    build();
    auto *ctx = dev->createContext(1);
    auto *c = dev->createChannel(*ctx, RequestClass::Compute);

    std::vector<std::uint64_t> completions;
    dev->traceComplete = [&](Channel &, const GpuRequest &r, Tick, Tick) {
        completions.push_back(r.ref);
    };

    // Busy the engine so the trivia queue up behind it.
    dev->submit(*c, req(*c, usec(50)));
    GpuRequest t1 = req(*c, nsec(500), RequestClass::Trivial);
    GpuRequest t2 = req(*c, nsec(500), RequestClass::Trivial);
    GpuRequest main = req(*c, usec(10));
    dev->submit(*c, t1);
    dev->submit(*c, t2);
    dev->submit(*c, main);
    eq.drain();

    // The two trivia were absorbed into the following request: only
    // two completion events, and the counter lands on the last ref.
    EXPECT_EQ(completions.size(), 2u);
    EXPECT_EQ(c->completedRef(), main.ref);
    EXPECT_EQ(eq.now(), usec(50) + nsec(500) * 2 + usec(10));
}

TEST_F(DeviceFixture, ChannelPoolExhaustion)
{
    cfg.maxChannels = 4;
    build();
    auto *ctx = dev->createContext(1);
    for (int i = 0; i < 4; ++i)
        ASSERT_NE(dev->createChannel(*ctx, RequestClass::Compute), nullptr);

    EXPECT_EQ(dev->createChannel(*ctx, RequestClass::Compute), nullptr);
    EXPECT_EQ(dev->freeChannels(), 0u);
}

TEST_F(DeviceFixture, DestroyChannelFreesPoolSlot)
{
    cfg.maxChannels = 2;
    build();
    auto *ctx = dev->createContext(1);
    auto *a = dev->createChannel(*ctx, RequestClass::Compute);
    auto *b = dev->createChannel(*ctx, RequestClass::Compute);
    ASSERT_EQ(dev->createChannel(*ctx, RequestClass::Compute), nullptr);

    dev->destroyChannel(a);
    EXPECT_NE(dev->createChannel(*ctx, RequestClass::Compute), nullptr);
    (void)b;
}

TEST_F(DeviceFixture, InfiniteRequestOccupiesEngineUntilAbort)
{
    build();
    auto *ctx = dev->createContext(1);
    auto *c = dev->createChannel(*ctx, RequestClass::Compute);

    GpuRequest inf = req(*c, maxTick);
    dev->submit(*c, inf);
    eq.runFor(msec(10));
    EXPECT_TRUE(dev->engineBusy(EngineKind::Execute));
    EXPECT_EQ(c->completedRef(), 0u);

    dev->abortChannel(*c);
    eq.drain();
    EXPECT_FALSE(dev->engineBusy(EngineKind::Execute));
    // No reference-counter write for the aborted request.
    EXPECT_EQ(c->completedRef(), 0u);
    // The occupied time was still accounted to the offender.
    EXPECT_EQ(meter.busyOf(1), msec(10));
}

TEST_F(DeviceFixture, AbortUnblocksOtherChannels)
{
    build();
    auto *ctxa = dev->createContext(1);
    auto *ctxb = dev->createContext(2);
    auto *bad = dev->createChannel(*ctxa, RequestClass::Compute);
    auto *good = dev->createChannel(*ctxb, RequestClass::Compute);

    dev->submit(*bad, req(*bad, maxTick));
    dev->submit(*good, req(*good, usec(10)));
    eq.runFor(msec(5));
    EXPECT_EQ(good->completedRef(), 0u); // starved behind the hog

    dev->abortChannel(*bad);
    eq.drain();
    EXPECT_EQ(good->completedRef(), 1u);
    EXPECT_EQ(eq.now(),
              msec(5) + cfg.abortCleanupCost + cfg.contextSwitchCost +
                  usec(10));
}

TEST_F(DeviceFixture, AbortClearsQueuedRequests)
{
    build();
    auto *ctx = dev->createContext(1);
    auto *c = dev->createChannel(*ctx, RequestClass::Compute);
    dev->submit(*c, req(*c, usec(50)));
    dev->submit(*c, req(*c, usec(50)));
    dev->submit(*c, req(*c, usec(50)));
    eq.runFor(usec(10)); // first one mid-flight

    dev->abortChannel(*c);
    eq.drain();
    EXPECT_TRUE(c->ring().empty());
    EXPECT_EQ(c->completedRef(), 0u);
}

TEST_F(DeviceFixture, DestroyBusyChannelPanics)
{
    build();
    auto *ctx = dev->createContext(1);
    auto *c = dev->createChannel(*ctx, RequestClass::Compute);
    dev->submit(*c, req(*c, usec(50)));
    EXPECT_DEATH(dev->destroyChannel(c), "busy");
}

TEST_F(DeviceFixture, KernelCompletionHookObservesServiceTime)
{
    build();
    auto *ctx = dev->createContext(1);
    auto *c = dev->createChannel(*ctx, RequestClass::Compute);

    Tick seen_service = 0;
    std::uint64_t seen_ref = 0;
    c->kernelCompletionHook = [&](std::uint64_t ref, Tick, Tick service) {
        seen_ref = ref;
        seen_service = service;
    };

    dev->submit(*c, req(*c, usec(66)));
    eq.drain();
    EXPECT_EQ(seen_ref, 1u);
    EXPECT_EQ(seen_service, usec(66));
}

} // namespace
} // namespace neon
