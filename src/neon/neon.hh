/**
 * @file
 * Umbrella header: the NEON-Sim public API.
 *
 * Typical use:
 *
 *   #include "neon/neon.hh"
 *
 *   neon::ExperimentConfig cfg;
 *   cfg.sched = neon::SchedKind::DisengagedFq;
 *   neon::ExperimentRunner runner(cfg);
 *   auto result = runner.run({
 *       neon::WorkloadSpec::app("DCT"),
 *       neon::WorkloadSpec::throttle(neon::usec(1700)),
 *   });
 */

#ifndef NEON_NEON_HH
#define NEON_NEON_HH

#include "fault/availability.hh"
#include "fault/fault_config.hh"
#include "fault/fault_plan.hh"
#include "fault/injector.hh"
#include "fault/watchdog.hh"
#include "fleet/device_stack.hh"
#include "fleet/fleet_config.hh"
#include "fleet/fleet_manager.hh"
#include "fleet/fleet_metrics.hh"
#include "fleet/placement.hh"
#include "gpu/device.hh"
#include "gpu/usage_meter.hh"
#include "harness/experiment.hh"
#include "harness/serve_runner.hh"
#include "metrics/efficiency.hh"
#include "metrics/reporter.hh"
#include "metrics/request_trace.hh"
#include "metrics/slo.hh"
#include "obs/analyze.hh"
#include "obs/audit.hh"
#include "obs/chrome_trace.hh"
#include "obs/metrics.hh"
#include "obs/observe.hh"
#include "obs/trace.hh"
#include "os/kernel.hh"
#include "os/scheduler.hh"
#include "os/task.hh"
#include "sched/direct.hh"
#include "sched/disengaged_fq.hh"
#include "sched/disengaged_timeslice.hh"
#include "sched/engaged_fq.hh"
#include "sched/timeslice.hh"
#include "sched/vtime_tap.hh"
#include "serve/admission.hh"
#include "serve/global_clock.hh"
#include "serve/serve_config.hh"
#include "serve/serve_engine.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "sim/shard_mailbox.hh"
#include "sim/sharded_engine.hh"
#include "sim/stats.hh"
#include "sim/types.hh"
#include "workload/adversary.hh"
#include "workload/app_profile.hh"
#include "workload/arrival.hh"
#include "workload/synthetic_app.hh"
#include "workload/throttle.hh"
#include "workload/trace.hh"

#endif // NEON_NEON_HH
