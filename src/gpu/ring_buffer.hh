/**
 * @file
 * Bounded FIFO of submitted-but-unprocessed requests for one channel.
 */

#ifndef NEON_GPU_RING_BUFFER_HH
#define NEON_GPU_RING_BUFFER_HH

#include <cstddef>
#include <deque>

#include "gpu/request.hh"

namespace neon
{

/**
 * The channel's ring of pending request descriptors. The device pops
 * entries in FIFO order; user code must not submit when full (real
 * libraries spin on free space; our workloads bound their pipelining
 * depth well below the capacity).
 */
class RingBuffer
{
  public:
    explicit RingBuffer(std::size_t capacity) : cap(capacity) {}

    bool empty() const { return q.empty(); }
    bool full() const { return q.size() >= cap; }
    std::size_t size() const { return q.size(); }
    std::size_t capacity() const { return cap; }

    /** Append a request; returns false (drop) if full. */
    bool
    push(const GpuRequest &r)
    {
        if (full())
            return false;
        q.push_back(r);
        return true;
    }

    /** Front request; undefined if empty. */
    const GpuRequest &front() const { return q.front(); }

    /** Pop the front request. */
    GpuRequest
    pop()
    {
        GpuRequest r = q.front();
        q.pop_front();
        return r;
    }

    /** Drop everything (abort/teardown). */
    void clear() { q.clear(); }

  private:
    std::size_t cap;
    std::deque<GpuRequest> q;
};

} // namespace neon

#endif // NEON_GPU_RING_BUFFER_HH
