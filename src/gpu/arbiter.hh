/**
 * @file
 * Round-robin channel arbitration for one engine.
 *
 * The device cycles among channels with pending requests, processing one
 * request per visit. Graphics channels may be configured with a penalty
 * N: when compute channels are also pending, a graphics channel wins
 * only one in N of its arbitration opportunities. This models the
 * non-uniform internal scheduling the paper observed for OpenGL work
 * (Section 5.3, the glxgears anomaly).
 */

#ifndef NEON_GPU_ARBITER_HH
#define NEON_GPU_ARBITER_HH

#include <cstddef>
#include <vector>

#include "gpu/channel.hh"
#include "gpu/request.hh"

namespace neon
{

/** Deterministic round-robin picker over registered channels. */
class Arbiter
{
  public:
    explicit Arbiter(int gfx_penalty = 1) : gfxPenalty(gfx_penalty) {}

    /** Add a channel to the rotation. */
    void
    registerChannel(Channel *c)
    {
        rotation.push_back(c);
    }

    /** Remove a channel (teardown/abort). */
    void
    removeChannel(Channel *c)
    {
        for (std::size_t i = 0; i < rotation.size(); ++i) {
            if (rotation[i] == c) {
                rotation.erase(rotation.begin() + i);
                if (cursor > i)
                    --cursor;
                if (cursor >= rotation.size())
                    cursor = 0;
                return;
            }
        }
    }

    std::size_t channelCount() const { return rotation.size(); }

    /**
     * Pick the next channel to serve, advancing the round-robin cursor.
     * @return nullptr if no channel has pending work.
     */
    Channel *
    pick()
    {
        if (rotation.empty())
            return nullptr;

        const std::size_t n = rotation.size();
        Channel *fallback = nullptr;

        bool computePending = false;
        for (Channel *c : rotation) {
            if (!c->ring().empty() &&
                c->channelClass() != RequestClass::Graphics) {
                computePending = true;
                break;
            }
        }

        for (std::size_t step = 0; step < n; ++step) {
            Channel *c = rotation[(cursor + step) % n];
            if (c->ring().empty())
                continue;

            const bool penalized = computePending && gfxPenalty > 1 &&
                c->channelClass() == RequestClass::Graphics;
            if (penalized && c->arbCredit > 0) {
                --c->arbCredit;
                if (!fallback)
                    fallback = c;
                continue;
            }

            c->arbCredit = penalized ? gfxPenalty - 1 : 0;
            cursor = (cursor + step + 1) % n;
            return c;
        }

        // Only penalized channels had work and all were skipped this
        // pass; serve the first of them rather than idle the engine.
        if (fallback) {
            fallback->arbCredit = gfxPenalty - 1;
            return fallback;
        }
        return nullptr;
    }

  private:
    std::vector<Channel *> rotation;
    std::size_t cursor = 0;
    int gfxPenalty;
};

} // namespace neon

#endif // NEON_GPU_ARBITER_HH
