/**
 * @file
 * The unit of work submitted to the accelerator.
 */

#ifndef NEON_GPU_REQUEST_HH
#define NEON_GPU_REQUEST_HH

#include <cstdint>

#include "sim/types.hh"

namespace neon
{

/**
 * Classes of acceleration requests. The execution engine serves compute
 * and graphics channels; a separate copy engine serves DMA channels.
 * "Trivial" requests model the mode/state-change commands the paper
 * observed, which occupy the doorbell path (and fault when intercepted)
 * but take almost no device time and are never awaited by the app.
 */
enum class RequestClass { Compute, Graphics, Dma, Trivial };

/** Engines inside the device. */
enum class EngineKind { Execute, Copy };

/** Which engine serves a given request class. */
constexpr EngineKind
engineFor(RequestClass c)
{
    return c == RequestClass::Dma ? EngineKind::Copy : EngineKind::Execute;
}

/**
 * One acceleration request as it sits in a channel's ring buffer.
 *
 * The reference value is assigned by the user-level library before the
 * doorbell write (it is part of the command stream); the device writes
 * it to the channel's reference counter upon completion.
 */
struct GpuRequest
{
    RequestClass cls = RequestClass::Compute;

    /** Device occupancy; maxTick means "runs forever" (malicious/buggy). */
    Tick serviceTime = 0;

    /** Per-channel monotonically increasing completion reference. */
    std::uint64_t ref = 0;

    /** True for requests whose completion the application awaits. */
    bool awaited = true;

    bool isInfinite() const { return serviceTime >= maxTick; }
};

} // namespace neon

#endif // NEON_GPU_REQUEST_HH
