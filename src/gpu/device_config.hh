/**
 * @file
 * Calibration constants for the device model (Kepler-class defaults).
 */

#ifndef NEON_GPU_DEVICE_CONFIG_HH
#define NEON_GPU_DEVICE_CONFIG_HH

#include <cstddef>

#include "sim/types.hh"

namespace neon
{

/**
 * Timing and capacity parameters of the simulated accelerator.
 *
 * Defaults approximate the paper's GTX670 ("Kepler") as far as its
 * externally visible behaviour goes: fast context switching among
 * channels, a fixed pool of channels (48 contexts x (compute + DMA)
 * exhaust it), and round-robin cycling among channels with pending
 * requests. Graphics channels receive a configurable arbitration
 * penalty, reproducing the non-uniform internal scheduling the paper
 * observed for OpenGL workloads (glxgears completing at roughly 1/3 the
 * rate of a compute co-runner).
 */
struct DeviceConfig
{
    /** Total channels available on the device (Sec. 6.3 DoS bound). */
    std::size_t maxChannels = 96;

    /** Ring-buffer entries per channel. */
    std::size_t ringCapacity = 512;

    /** Cost of switching the execute engine between GPU contexts. */
    Tick contextSwitchCost = usec(5);

    /** Cost of switching between channels of the same context. */
    Tick channelSwitchCost = usec(1);

    /**
     * Cost of reconfiguring the execute engine between the graphics
     * and compute pipelines. This is what starves graphics work when a
     * compute co-runner keeps the device busy (the paper's glxgears
     * observation: gears' requests complete at roughly a third of the
     * co-runner's rate during free-run periods), and it is invisible
     * to a size-based usage estimator.
     */
    Tick pipelineSwitchCost = usec(25);

    /**
     * Graphics channels win arbitration only once per this many
     * opportunities when competing with compute channels (1 = uniform
     * round-robin per channel, the default).
     */
    int gfxArbPenalty = 1;

    /** Device-side cleanup time when a channel is aborted (task kill). */
    Tick abortCleanupCost = usec(50);

    /**
     * Relative execution speed of this device. Execute-engine service
     * times (compute/graphics) are divided by this factor at dispatch,
     * so a factor of 2.0 models a device twice as fast as the
     * calibration baseline. Heterogeneous fleets (src/fleet) use it
     * for throughput-aware placement. DMA transfers, switch and
     * cleanup costs are unaffected — they are interconnect/driver
     * latencies, not shader throughput. Must be positive.
     */
    double speedFactor = 1.0;
};

} // namespace neon

#endif // NEON_GPU_DEVICE_CONFIG_HH
