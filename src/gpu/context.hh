/**
 * @file
 * GPU context: the device-side address space a task's channels live in.
 *
 * Requests within one context may be causally related; NEON never
 * reorders them relative to each other. Contexts are also the unit the
 * execute engine pays a switch penalty between.
 */

#ifndef NEON_GPU_CONTEXT_HH
#define NEON_GPU_CONTEXT_HH

#include <vector>

namespace neon
{

class Channel;

/** Device-side context owned by one task. */
class GpuContext
{
  public:
    GpuContext(int id, int task_id) : ctxId(id), owningTask(task_id) {}

    GpuContext(const GpuContext &) = delete;
    GpuContext &operator=(const GpuContext &) = delete;

    int id() const { return ctxId; }
    int taskId() const { return owningTask; }

    void addChannel(Channel *c) { chans.push_back(c); }

    void
    removeChannel(Channel *c)
    {
        std::erase(chans, c);
    }

    const std::vector<Channel *> &channels() const { return chans; }

  private:
    int ctxId;
    int owningTask;
    std::vector<Channel *> chans;
};

} // namespace neon

#endif // NEON_GPU_CONTEXT_HH
