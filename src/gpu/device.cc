#include "gpu/device.hh"

#include <algorithm>

#include "obs/trace.hh"
#include "sim/logging.hh"

namespace neon
{

GpuDevice::GpuDevice(EventQueue &eq, const DeviceConfig &cfg,
                     UsageMeter &meter)
    : eq(eq), cfg(cfg), meter(meter),
      engines{Engine(EngineKind::Execute, cfg.gfxArbPenalty),
              Engine(EngineKind::Copy, 1)}
{
    if (cfg.speedFactor <= 0.0)
        panic("device: speedFactor must be positive, got ",
              cfg.speedFactor);
}

GpuContext *
GpuDevice::createContext(int task_id)
{
    contexts.push_back(std::make_unique<GpuContext>(nextCtxId++, task_id));
    return contexts.back().get();
}

void
GpuDevice::destroyContext(GpuContext *ctx)
{
    if (!ctx)
        return;
    if (!ctx->channels().empty())
        panic("destroying context ", ctx->id(), " with live channels");
    std::erase_if(contexts, [ctx](const std::unique_ptr<GpuContext> &p) {
        return p.get() == ctx;
    });
}

Channel *
GpuDevice::createChannel(GpuContext &ctx, RequestClass cls)
{
    if (liveChannels >= cfg.maxChannels)
        return nullptr; // device channel pool exhausted

    channels.push_back(std::make_unique<Channel>(
        nextChanId++, ctx, cls, cfg.ringCapacity));
    Channel *c = channels.back().get();
    ctx.addChannel(c);
    engineOf(c->engine()).arb.registerChannel(c);
    ++liveChannels;
    return c;
}

void
GpuDevice::destroyChannel(Channel *c)
{
    if (!c)
        return;
    if (c->busyOnDevice())
        panic("destroying channel ", c->id(), " while busy; abort first");

    engineOf(c->engine()).arb.removeChannel(c);
    c->context().removeChannel(c);
    std::erase_if(channels, [c](const std::unique_ptr<Channel> &p) {
        return p.get() == c;
    });
    --liveChannels;
}

void
GpuDevice::submit(Channel &c, GpuRequest req)
{
    if (!c.ring().push(req))
        panic("ring buffer overflow on channel ", c.id());
    c.noteSubmitted(req.ref);

    if (traceSubmit)
        traceSubmit(c, req, eq.now());

    tryDispatch(engineOf(c.engine()));
}

void
GpuDevice::tryDispatch(Engine &e)
{
    if (e.busy || health_ != DeviceHealth::Up)
        return;

    Channel *c = e.arb.pick();
    if (!c)
        return;

    GpuRequest req = c->ring().pop();

    // The command fetcher drains consecutive trivial (state-change)
    // entries together with the request that follows them in the same
    // ring — the device does not rearbitrate after every tiny entry.
    while (req.cls == RequestClass::Trivial && !c->ring().empty()) {
        GpuRequest next = c->ring().pop();
        next.serviceTime += req.serviceTime;
        req = next;
    }

    // An armed hang fault turns this request infinite at dispatch.
    if (c->hangArmed) {
        c->hangArmed = false;
        req.serviceTime = maxTick;
    }

    // The very first dispatch after power-on pays no switch penalty.
    Tick switch_cost = 0;
    if (e.lastContext != -1) {
        if (e.lastContext != c->context().id())
            switch_cost = cfg.contextSwitchCost;
        else if (e.lastChannel != c->id())
            switch_cost = cfg.channelSwitchCost;

        // Crossing between the graphics and compute pipelines costs
        // extra on the execute engine (trivia inherit their channel's
        // side of the fence).
        if (e.kind == EngineKind::Execute) {
            const bool was_gfx =
                e.lastClass == RequestClass::Graphics;
            const bool is_gfx =
                c->channelClass() == RequestClass::Graphics;
            if (was_gfx != is_gfx)
                switch_cost += cfg.pipelineSwitchCost;
        }
    }
    if (switch_cost > 0)
        meter.recordSwitch(switch_cost);

    const obs::TraceIds dispatch_ids{devIndex, c->context().taskId(), -1};
    if (e.kind == EngineKind::Execute) {
        NEON_TRACE(obs::TraceCategory::Device, obs::TraceKind::Begin,
                   "engine.exec", dispatch_ids, req.serviceTime,
                   switch_cost);
    } else {
        NEON_TRACE(obs::TraceCategory::Device, obs::TraceKind::Begin,
                   "engine.dma", dispatch_ids, req.serviceTime,
                   switch_cost);
    }

    e.lastContext = c->context().id();
    e.lastChannel = c->id();
    e.lastClass = c->channelClass();
    e.busy = true;
    e.current = c;
    e.active = req;
    e.serviceStart = eq.now() + switch_cost;
    c->setBusyOnDevice(true);

    if (!req.isInfinite()) {
        // Heterogeneous fleets: a faster device completes the same
        // request in proportionally less wall time. Only the execute
        // engine scales — DMA is interconnect-bound, like the switch
        // and cleanup costs.
        Tick service = req.serviceTime;
        if (cfg.speedFactor != 1.0 && e.kind == EngineKind::Execute) {
            service = std::max<Tick>(
                1, static_cast<Tick>(static_cast<double>(service) /
                                     cfg.speedFactor));
        }
        // Hot path: one completion event per dispatched request.
        auto completion = [this, &e] { finish(e); };
        static_assert(EventCallback::fitsInline<decltype(completion)>);
        e.completionAt = e.serviceStart + service;
        e.completionEvent =
            eq.schedule(e.completionAt, std::move(completion));
    } else {
        e.completionEvent = invalidEventId;
    }
}

void
GpuDevice::finish(Engine &e)
{
    Channel *c = e.current;
    const GpuRequest req = e.active;
    const Tick end = eq.now();
    const Tick service = end - e.serviceStart;
    const int task_id = c->context().taskId();

    meter.recordBusy(task_id, service, req.cls);
    meter.noteRequest(task_id);

    const obs::TraceIds finish_ids{devIndex, task_id, -1};
    if (e.kind == EngineKind::Execute) {
        NEON_TRACE(obs::TraceCategory::Device, obs::TraceKind::End,
                   "engine.exec", finish_ids, service, req.ref);
    } else {
        NEON_TRACE(obs::TraceCategory::Device, obs::TraceKind::End,
                   "engine.dma", finish_ids, service, req.ref);
    }

    e.busy = false;
    e.current = nullptr;
    e.completionEvent = invalidEventId;
    c->setBusyOnDevice(false);

    if (traceComplete)
        traceComplete(*c, req, e.serviceStart, end);

    // Reference-counter write: user spinners wake now; the kernel only
    // notices at its next poll.
    c->complete(req.ref);
    if (c->kernelCompletionHook)
        c->kernelCompletionHook(req.ref, end, service);

    tryDispatch(e);
}

void
GpuDevice::abortChannel(Channel &c)
{
    Engine &e = engineOf(c.engine());

    if (e.busy && e.current == &c) {
        if (e.completionEvent != invalidEventId) {
            eq.cancel(e.completionEvent);
            e.completionEvent = invalidEventId;
        }

        // The aborted request did occupy the device until now.
        const Tick occupied =
            std::max<Tick>(0, eq.now() - e.serviceStart);
        meter.recordBusy(c.context().taskId(), occupied, e.active.cls);

        const obs::TraceIds abort_ids{devIndex, c.context().taskId(), -1};
        if (e.kind == EngineKind::Execute) {
            NEON_TRACE(obs::TraceCategory::Device, obs::TraceKind::End,
                       "engine.exec", abort_ids, occupied, 0);
        } else {
            NEON_TRACE(obs::TraceCategory::Device, obs::TraceKind::End,
                       "engine.dma", abort_ids, occupied, 0);
        }
        NEON_TRACE(obs::TraceCategory::Device, obs::TraceKind::Instant,
                   "engine.abort", abort_ids, c.id(), 0);

        e.current = nullptr;
        e.pausedRemaining = -1;
        c.setBusyOnDevice(false);

        // Engine stays busy for the cleanup period, then resumes.
        eq.scheduleIn(cfg.abortCleanupCost, [this, &e] {
            e.busy = false;
            tryDispatch(e);
        });
    }

    c.ring().clear();
}

void
GpuDevice::stall(Tick duration)
{
    if (health_ == DeviceHealth::Down || duration <= 0)
        return;

    const Tick until = eq.now() + duration;
    if (health_ == DeviceHealth::Degraded) {
        // Overlapping stall: extend the existing window if it is longer.
        if (until > stallUntil) {
            eq.cancel(stallResumeEvent);
            stallUntil = until;
            stallResumeEvent =
                eq.schedule(stallUntil, [this] { resumeFromStall(); });
        }
        return;
    }

    health_ = DeviceHealth::Degraded;
    stallUntil = until;
    pauseStart = eq.now();

    // Freeze in-flight finite requests: remember how much service each
    // had left and cancel its completion. Infinite (hung) requests have
    // no completion to pause; they keep occupying the engine.
    for (Engine &e : engines) {
        if (e.busy && e.completionEvent != invalidEventId) {
            eq.cancel(e.completionEvent);
            e.completionEvent = invalidEventId;
            e.pausedRemaining = std::max<Tick>(0, e.completionAt - eq.now());
        }
    }

    NEON_TRACE(obs::TraceCategory::Fault, obs::TraceKind::Begin,
               "dev.stall", obs::TraceIds{devIndex, -1, -1}, duration, 0);

    stallResumeEvent =
        eq.schedule(stallUntil, [this] { resumeFromStall(); });
}

void
GpuDevice::resumeFromStall()
{
    stallResumeEvent = invalidEventId;
    health_ = DeviceHealth::Up;

    NEON_TRACE(obs::TraceCategory::Fault, obs::TraceKind::End,
               "dev.stall", obs::TraceIds{devIndex, -1, -1},
               eq.now() - pauseStart, 0);

    // Thaw paused requests: shift their service window by the pause so
    // accounting at finish() charges only true execution time.
    const Tick paused = eq.now() - pauseStart;
    for (Engine &e : engines) {
        if (e.busy && e.pausedRemaining >= 0) {
            Engine *ep = &e;
            e.serviceStart += paused;
            e.completionAt = eq.now() + e.pausedRemaining;
            e.pausedRemaining = -1;
            e.completionEvent =
                eq.schedule(e.completionAt, [this, ep] { finish(*ep); });
        }
    }
    for (Engine &e : engines)
        tryDispatch(e);
}

void
GpuDevice::forceDown()
{
    if (health_ == DeviceHealth::Down)
        return;
    if (health_ == DeviceHealth::Degraded) {
        eq.cancel(stallResumeEvent);
        stallResumeEvent = invalidEventId;
    }
    health_ = DeviceHealth::Down;

    NEON_TRACE(obs::TraceCategory::Fault, obs::TraceKind::Instant,
               "dev.down", obs::TraceIds{devIndex, -1, -1}, 0, 0);

    // In-flight requests are lost — their reference counters never
    // advance — but the time they occupied the engines is real and is
    // charged to their tasks, so usage meters reconcile exactly.
    for (Engine &e : engines) {
        if (!e.busy || !e.current)
            continue;
        if (e.completionEvent != invalidEventId) {
            eq.cancel(e.completionEvent);
            e.completionEvent = invalidEventId;
        }
        const Tick effective_end =
            e.pausedRemaining >= 0 ? pauseStart : eq.now();
        const Tick occupied =
            std::max<Tick>(0, effective_end - e.serviceStart);
        const int task_id = e.current->context().taskId();
        meter.recordBusy(task_id, occupied, e.active.cls);

        const obs::TraceIds lost_ids{devIndex, task_id, -1};
        if (e.kind == EngineKind::Execute) {
            NEON_TRACE(obs::TraceCategory::Device, obs::TraceKind::End,
                       "engine.exec", lost_ids, occupied, 0);
        } else {
            NEON_TRACE(obs::TraceCategory::Device, obs::TraceKind::End,
                       "engine.dma", lost_ids, occupied, 0);
        }
        NEON_TRACE(obs::TraceCategory::Fault, obs::TraceKind::Instant,
                   "dev.lost_request", lost_ids, e.current->id(), 0);

        e.current->setBusyOnDevice(false);
        e.current = nullptr;
        e.busy = false;
        e.pausedRemaining = -1;
    }
}

void
GpuDevice::repair()
{
    if (health_ != DeviceHealth::Down)
        return;
    health_ = DeviceHealth::Up;

    NEON_TRACE(obs::TraceCategory::Fault, obs::TraceKind::Instant,
               "dev.repair", obs::TraceIds{devIndex, -1, -1}, 0, 0);

    for (Engine &e : engines)
        tryDispatch(e);
}

void
GpuDevice::injectHang(Channel &c)
{
    Engine &e = engineOf(c.engine());
    if (e.busy && e.current == &c) {
        if (e.completionEvent != invalidEventId) {
            eq.cancel(e.completionEvent);
            e.completionEvent = invalidEventId;
        }
        e.active.serviceTime = maxTick;
        e.pausedRemaining = -1;
    } else {
        c.hangArmed = true;
    }
    NEON_TRACE(obs::TraceCategory::Fault, obs::TraceKind::Instant,
               "dev.hang_inject",
               obs::TraceIds{devIndex, c.context().taskId(), -1}, c.id(), 0);
}

} // namespace neon
