/**
 * @file
 * Ground-truth device-time accounting.
 *
 * The meter records exactly how the device spent its time. It exists for
 * metrics and tests only: schedulers must not read it (the whole point
 * of the paper is that the OS lacks this information and must estimate
 * it through interception and sampling).
 */

#ifndef NEON_GPU_USAGE_METER_HH
#define NEON_GPU_USAGE_METER_HH

#include <cstdint>
#include <map>

#include "gpu/request.hh"
#include "sim/types.hh"

namespace neon
{

/** Per-task and aggregate busy-time counters for the device. */
class UsageMeter
{
  public:
    /** Attribute service time to a task. */
    void
    recordBusy(int task_id, Tick duration, RequestClass cls)
    {
        perTask[task_id] += duration;
        busy += duration;
        if (cls == RequestClass::Dma)
            dmaBusy += duration;
    }

    /** Record arbitration overhead (context/channel switches). */
    void recordSwitch(Tick duration) { switchOverhead += duration; }

    /** Record completed request count for a task. */
    void noteRequest(int task_id) { ++requests[task_id]; }

    Tick busyOf(int task_id) const
    {
        auto it = perTask.find(task_id);
        return it == perTask.end() ? 0 : it->second;
    }

    std::uint64_t requestsOf(int task_id) const
    {
        auto it = requests.find(task_id);
        return it == requests.end() ? 0 : it->second;
    }

    Tick totalBusy() const { return busy; }
    Tick totalDmaBusy() const { return dmaBusy; }
    Tick totalSwitchOverhead() const { return switchOverhead; }

    const std::map<int, Tick> &perTaskBusy() const { return perTask; }

    void
    reset()
    {
        perTask.clear();
        requests.clear();
        busy = dmaBusy = switchOverhead = 0;
    }

  private:
    std::map<int, Tick> perTask;
    std::map<int, std::uint64_t> requests;
    Tick busy = 0;
    Tick dmaBusy = 0;
    Tick switchOverhead = 0;
};

} // namespace neon

#endif // NEON_GPU_USAGE_METER_HH
