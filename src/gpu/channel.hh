/**
 * @file
 * A GPU channel: one request queue and its software infrastructure.
 *
 * A channel bundles the command/ring buffers, the user-mapped doorbell
 * register, and the reference counter the device writes on completion.
 * Channels belong to a GPU context (address space) and are held by the
 * creating task until teardown — the device does not multiplex requests
 * from different tasks on one channel.
 */

#ifndef NEON_GPU_CHANNEL_HH
#define NEON_GPU_CHANNEL_HH

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "gpu/request.hh"
#include "gpu/ring_buffer.hh"
#include "mmio/doorbell.hh"
#include "sim/types.hh"

namespace neon
{

class GpuContext;

/**
 * Channel state shared (conceptually) between the user library, the
 * device, and — through interception or polling — the OS kernel.
 */
class Channel
{
  public:
    Channel(int id, GpuContext &ctx, RequestClass cls, std::size_t ring_cap)
        : chanId(id), owner(ctx), chanClass(cls), pending(ring_cap)
    {
    }

    Channel(const Channel &) = delete;
    Channel &operator=(const Channel &) = delete;

    int id() const { return chanId; }
    GpuContext &context() { return owner; }
    const GpuContext &context() const { return owner; }
    RequestClass channelClass() const { return chanClass; }
    EngineKind engine() const { return engineFor(chanClass); }

    /** The user-mapped register the kernel can protect/unprotect. */
    DoorbellRegister &doorbell() { return bell; }
    const DoorbellRegister &doorbell() const { return bell; }

    /** Pending (submitted, not yet dispatched) requests. */
    RingBuffer &ring() { return pending; }
    const RingBuffer &ring() const { return pending; }

    /**
     * Allocate the completion reference for the next request. Performed
     * by the user library while building the command before the doorbell
     * write, so the app knows what value to spin on.
     */
    std::uint64_t allocRef() { return ++refSequence; }

    /** Value of the last reference handed out (user-side view). */
    std::uint64_t lastAllocatedRef() const { return refSequence; }

    /**
     * Reference of the most recently *submitted* request — what NEON's
     * re-engagement command-queue scan recovers.
     */
    std::uint64_t lastSubmittedRef() const { return submittedRef; }
    void noteSubmitted(std::uint64_t r) { submittedRef = r; }

    /** The reference counter the device writes upon completion. */
    std::uint64_t completedRef() const { return doneRef; }

    /**
     * Device-side completion: advance the reference counter and wake any
     * user-space spinners whose target has been reached.
     */
    void
    complete(std::uint64_t r)
    {
        if (r > doneRef)
            doneRef = r;
        std::size_t kept = 0;
        for (std::size_t i = 0; i < waiters.size(); ++i) {
            if (waiters[i].first <= doneRef) {
                auto fn = std::move(waiters[i].second);
                fn();
            } else {
                waiters[kept++] = std::move(waiters[i]);
            }
        }
        waiters.resize(kept);
    }

    /**
     * Register a user-space spin on the reference counter reaching
     * @p ref. Fires immediately via the callback when complete() catches
     * up (the app polls shared memory, so there is no kernel latency).
     */
    void
    waitRef(std::uint64_t ref, std::function<void()> fn)
    {
        waiters.emplace_back(ref, std::move(fn));
    }

    /** True if the channel's queue has been fully drained. */
    bool drained() const { return pending.empty() && !running; }

    /** Set while the device is actively executing a request from here. */
    bool busyOnDevice() const { return running; }
    void setBusyOnDevice(bool b) { running = b; }

    /**
     * Optional kernel-installed completion hook (used while a channel is
     * being actively sampled; models the aggressive monitoring NEON does
     * during engagement). Receives (ref, completion time, service time).
     */
    std::function<void(std::uint64_t, Tick, Tick)> kernelCompletionHook;

    /** Arbitration bookkeeping (owned by the device's arbiter). */
    int arbCredit = 0;

    /**
     * Fault-injection arming: the next request dispatched from this
     * channel hangs (its service time becomes infinite). Set by the
     * fault injector when the channel is idle; consumed at dispatch.
     */
    bool hangArmed = false;

  private:
    int chanId;
    GpuContext &owner;
    RequestClass chanClass;
    RingBuffer pending;
    DoorbellRegister bell;

    std::uint64_t refSequence = 0;
    std::uint64_t submittedRef = 0;
    std::uint64_t doneRef = 0;
    bool running = false;

    std::vector<std::pair<std::uint64_t, std::function<void()>>> waiters;
};

} // namespace neon

#endif // NEON_GPU_CHANNEL_HH
