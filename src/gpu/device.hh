/**
 * @file
 * The simulated accelerator.
 *
 * Behavioural contract (all the schedulers ever rely on):
 *  - requests enter per-channel ring buffers via doorbell notification
 *    and are processed in FIFO order within a channel;
 *  - the execute engine cycles round-robin among channels with pending
 *    work (graphics channels optionally penalized), one request per
 *    visit, paying a context-switch cost between contexts;
 *  - a separate copy engine serves DMA channels concurrently;
 *  - on completion the device writes the request's reference value to
 *    the channel's reference counter (visible to user spinners at once,
 *    to the kernel at polling granularity);
 *  - requests may run forever (malicious/buggy); the only remedy is
 *    aborting the channel, which models killing the owning process and
 *    letting the driver's exit protocol reclaim resources.
 */

#ifndef NEON_GPU_DEVICE_HH
#define NEON_GPU_DEVICE_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "gpu/arbiter.hh"
#include "gpu/channel.hh"
#include "gpu/context.hh"
#include "gpu/device_config.hh"
#include "gpu/request.hh"
#include "gpu/usage_meter.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace neon
{

/** Availability of a device (the fault plane's state machine). */
enum class DeviceHealth
{
    Up,       ///< serving normally
    Degraded, ///< transient stall: in-flight work paused, nothing dispatches
    Down,     ///< dead: in-flight work lost, nothing dispatches until repair
};

/** The accelerator device model. */
class GpuDevice
{
  public:
    GpuDevice(EventQueue &eq, const DeviceConfig &cfg, UsageMeter &meter);

    GpuDevice(const GpuDevice &) = delete;
    GpuDevice &operator=(const GpuDevice &) = delete;

    const DeviceConfig &config() const { return cfg; }

    /** Fleet position, stamped into trace records (DeviceStack sets). */
    void setDeviceIndex(int i) { devIndex = static_cast<std::int16_t>(i); }
    std::int16_t deviceIndex() const { return devIndex; }

    /** Create a device context for a task. */
    GpuContext *createContext(int task_id);

    /** Tear down a context; all its channels must be gone already. */
    void destroyContext(GpuContext *ctx);

    /**
     * Allocate a channel in @p ctx.
     * @return nullptr when the device's channel pool is exhausted
     *         (the Section 6.3 denial-of-service scenario).
     */
    Channel *createChannel(GpuContext &ctx, RequestClass cls);

    /** Remove an idle channel. Busy channels must be aborted first. */
    void destroyChannel(Channel *c);

    /**
     * Doorbell landing: a request descriptor is now visible in the
     * channel's ring buffer. Called by the kernel model once the user's
     * store retires (directly or after interception).
     */
    void submit(Channel &c, GpuRequest req);

    /**
     * Abort a channel: cancel its active request (if any) without
     * writing the reference counter, drop queued requests, and occupy
     * the engine for the cleanup period. Models the process-kill path.
     */
    void abortChannel(Channel &c);

    bool engineBusy(EngineKind k) const { return engineOf(k).busy; }
    Channel *engineCurrent(EngineKind k) const { return engineOf(k).current; }

    /** Current availability state. */
    DeviceHealth health() const { return health_; }

    /**
     * Transient stall: pause in-flight requests and suspend dispatch
     * for @p duration (overlapping stalls extend the window). Paused
     * requests resume where they left off; no work is lost.
     */
    void stall(Tick duration);

    /**
     * Full device death. In-flight requests are lost: their reference
     * counters never advance, but the time they occupied the engines is
     * still charged to their tasks. Dispatch stops until repair().
     */
    void forceDown();

    /** Bring a Down device back to Up and restart dispatch. */
    void repair();

    /**
     * Hang injection: if @p c is executing now, its active request
     * becomes infinite; otherwise the next request dispatched from the
     * channel hangs. Either way only the watchdog/scheduler can clear it.
     */
    void injectHang(Channel &c);

    /** Start time of the request currently on the engine (debug/tests). */
    Tick engineServiceStart(EngineKind k) const
    {
        return engineOf(k).serviceStart;
    }

    std::size_t channelsInUse() const { return liveChannels; }
    std::size_t freeChannels() const
    {
        return cfg.maxChannels - liveChannels;
    }

    /** Ground-truth tracing hooks (metrics only; not scheduler-visible). */
    std::function<void(Channel &, const GpuRequest &, Tick)> traceSubmit;
    std::function<void(Channel &, const GpuRequest &, Tick, Tick)>
        traceComplete;

  private:
    struct Engine
    {
        EngineKind kind = EngineKind::Execute;
        Arbiter arb;
        bool busy = false;
        Channel *current = nullptr;
        GpuRequest active;
        Tick serviceStart = 0;
        EventId completionEvent = invalidEventId;
        Tick completionAt = 0;      ///< when completionEvent fires
        Tick pausedRemaining = -1;  ///< service left across a stall; -1 idle
        int lastContext = -1;
        int lastChannel = -1;
        RequestClass lastClass = RequestClass::Compute;

        explicit Engine(EngineKind k, int gfx_penalty)
            : kind(k), arb(gfx_penalty)
        {
        }
    };

    Engine &engineOf(EngineKind k)
    {
        return k == EngineKind::Execute ? engines[0] : engines[1];
    }

    const Engine &engineOf(EngineKind k) const
    {
        return k == EngineKind::Execute ? engines[0] : engines[1];
    }

    void tryDispatch(Engine &e);
    void finish(Engine &e);
    void resumeFromStall();

    EventQueue &eq;
    DeviceConfig cfg;
    UsageMeter &meter;
    std::int16_t devIndex = 0;

    DeviceHealth health_ = DeviceHealth::Up;
    Tick stallUntil = 0;
    Tick pauseStart = 0;
    EventId stallResumeEvent = invalidEventId;

    std::array<Engine, 2> engines;
    std::vector<std::unique_ptr<GpuContext>> contexts;
    std::vector<std::unique_ptr<Channel>> channels;
    std::size_t liveChannels = 0;
    int nextCtxId = 1;
    int nextChanId = 1;
};

} // namespace neon

#endif // NEON_GPU_DEVICE_HH
