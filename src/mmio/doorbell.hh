/**
 * @file
 * The user-mapped channel ("doorbell") register.
 *
 * On real hardware this is a device register mapped into the
 * application's address space; user libraries notify the GPU of new
 * ring-buffer entries by storing to it. The kernel can intercept those
 * stores by marking the containing page non-present and catching the
 * fault. Here the register carries exactly that protection bit plus
 * submission statistics; the fault/allow decision itself lives in the
 * kernel model (neon::KernelModule).
 */

#ifndef NEON_MMIO_DOORBELL_HH
#define NEON_MMIO_DOORBELL_HH

#include <cstdint>

namespace neon
{

/**
 * Protection state and access counters for one channel register page.
 */
class DoorbellRegister
{
  public:
    /** True if user-space stores reach the device without faulting. */
    bool present() const { return _present; }

    /** Map (unprotect) or unmap (protect) the register page. */
    void
    setPresent(bool p)
    {
        if (p != _present)
            ++_toggles;
        _present = p;
    }

    /** Record a direct (non-faulting) write. */
    void noteDirectWrite() { ++_directWrites; }

    /** Record an intercepted (faulting) write. */
    void noteFault() { ++_faults; }

    std::uint64_t directWrites() const { return _directWrites; }
    std::uint64_t faults() const { return _faults; }
    std::uint64_t toggles() const { return _toggles; }

  private:
    bool _present = false; // channels start protected until tracked
    std::uint64_t _directWrites = 0;
    std::uint64_t _faults = 0;
    std::uint64_t _toggles = 0;
};

} // namespace neon

#endif // NEON_MMIO_DOORBELL_HH
