/**
 * @file
 * Virtual-memory-area bookkeeping for the channel-tracker state machine.
 *
 * NEON's initialization phase (paper Section 4) identifies, for every
 * channel, three key VMAs established by the driver: the command buffer,
 * the ring buffer, and the channel register. A channel becomes
 * schedulable ("active") only once all three have been observed. We
 * model the mmap stream the kernel would see and the per-task address
 * space it populates.
 */

#ifndef NEON_MMIO_ADDRESS_SPACE_HH
#define NEON_MMIO_ADDRESS_SPACE_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace neon
{

/** The three VMA kinds NEON must identify per channel. */
enum class VmaKind { CommandBuffer, RingBuffer, ChannelRegister };

/** One mapped region as observed at mmap time. */
struct Vma
{
    VmaKind kind;
    int channelId;
    std::uint64_t base;
    std::uint64_t size;
};

/**
 * Per-task collection of device-related VMAs.
 */
class AddressSpace
{
  public:
    /** Record a new mapping; returns the stored VMA. */
    const Vma &
    addVma(VmaKind kind, int channel_id, std::uint64_t base,
           std::uint64_t size)
    {
        vmas.push_back({kind, channel_id, base, size});
        return vmas.back();
    }

    /** Drop all mappings belonging to @p channel_id (munmap at teardown). */
    void
    removeChannel(int channel_id)
    {
        std::erase_if(vmas, [channel_id](const Vma &v) {
            return v.channelId == channel_id;
        });
    }

    /** Find a channel's VMA of the given kind, or nullptr. */
    const Vma *
    find(int channel_id, VmaKind kind) const
    {
        for (const auto &v : vmas) {
            if (v.channelId == channel_id && v.kind == kind)
                return &v;
        }
        return nullptr;
    }

    std::size_t size() const { return vmas.size(); }

  private:
    std::vector<Vma> vmas;
};

} // namespace neon

#endif // NEON_MMIO_ADDRESS_SPACE_HH
