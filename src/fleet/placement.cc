#include "fleet/placement.hh"

#include "sim/logging.hh"

namespace neon
{

std::string
placementKindName(PlacementKind k)
{
    switch (k) {
      case PlacementKind::RoundRobin:
        return "round-robin";
      case PlacementKind::LeastLoaded:
        return "least-loaded";
      case PlacementKind::Sticky:
        return "sticky";
      case PlacementKind::HeterogeneityAware:
        return "heterogeneity-aware";
    }
    return "?";
}

namespace
{

constexpr std::size_t noExclusion = static_cast<std::size_t>(-1);

/**
 * Index of the device minimizing busy time, tie-broken by live task
 * count and then by index. @p exclude names a device to skip (sticky
 * overflow must not spill back onto the over-capacity home device);
 * it is ignored when it would leave no candidates.
 */
/** Any device currently up? (All-down fleets fall back to ignoring it.) */
bool
anyUp(const std::vector<DeviceLoadView> &devices)
{
    for (const DeviceLoadView &d : devices) {
        if (d.up)
            return true;
    }
    return false;
}

std::size_t
leastLoadedIndex(const std::vector<DeviceLoadView> &devices,
                 std::size_t exclude = noExclusion)
{
    const bool skip_down = anyUp(devices);
    std::size_t best = 0;
    double best_busy = 0.0, best_tasks = 0.0;
    bool first = true;
    for (const DeviceLoadView &d : devices) {
        if (d.index == exclude && devices.size() > 1)
            continue;
        if (skip_down && !d.up)
            continue;
        const double busy = static_cast<double>(d.busyTime);
        const double tasks = static_cast<double>(d.assignedTasks);
        if (first || busy < best_busy ||
            (busy == best_busy && tasks < best_tasks)) {
            first = false;
            best = d.index;
            best_busy = busy;
            best_tasks = tasks;
        }
    }
    if (first) {
        // Everything filtered (exclude + down): retry without exclusion.
        for (const DeviceLoadView &d : devices) {
            if (skip_down && !d.up)
                continue;
            const double busy = static_cast<double>(d.busyTime);
            const double tasks = static_cast<double>(d.assignedTasks);
            if (first || busy < best_busy ||
                (busy == best_busy && tasks < best_tasks)) {
                first = false;
                best = d.index;
                best_busy = busy;
                best_tasks = tasks;
            }
        }
    }
    return best;
}

} // namespace

std::size_t
RoundRobinPlacement::place(const std::vector<DeviceLoadView> &devices,
                           const PlacementRequest &req)
{
    (void)req;
    // Rotate past down devices; an all-down fleet keeps the plain
    // rotation so behavior is unchanged when the fault plane is idle.
    if (anyUp(devices)) {
        for (std::size_t k = 0; k < devices.size(); ++k) {
            const std::size_t slot = (next + k) % devices.size();
            if (devices[slot].up) {
                next = (slot + 1) % devices.size();
                return devices[slot].index;
            }
        }
    }
    const std::size_t chosen = next % devices.size();
    next = (next + 1) % devices.size();
    return devices[chosen].index;
}

std::size_t
LeastLoadedPlacement::place(const std::vector<DeviceLoadView> &devices,
                            const PlacementRequest &req)
{
    (void)req;
    return leastLoadedIndex(devices);
}

std::string
StickyPlacement::keyOf(const PlacementRequest &req)
{
    return req.affinityKey.empty() ? req.label : req.affinityKey;
}

std::size_t
StickyPlacement::place(const std::vector<DeviceLoadView> &devices,
                       const PlacementRequest &req)
{
    auto it = affinity.find(keyOf(req));
    if (it != affinity.end()) {
        // Prefer the mapped device unless it is over capacity or down;
        // spill keeps the mapping so later arrivals return once load
        // drains (or the device is repaired).
        for (const DeviceLoadView &d : devices) {
            if (d.index == it->second.device) {
                if (d.up && d.assignedTasks < capacity)
                    return d.index;
                break;
            }
        }
        return leastLoadedIndex(devices, it->second.device);
    }

    const std::size_t chosen = leastLoadedIndex(devices);
    affinity.emplace(keyOf(req), Mapping{chosen, 0});
    return chosen;
}

void
StickyPlacement::noteTaskPlaced(const PlacementRequest &req,
                                std::size_t device)
{
    // Forced placements (serve steering, migration) reach here without
    // a place() call, so create the mapping on demand. The live count
    // belongs to the key, not the device the task landed on: a spilled
    // task still pins its tenant's affinity.
    auto it = affinity.emplace(keyOf(req), Mapping{device, 0}).first;
    ++it->second.liveTasks;
}

void
StickyPlacement::noteTaskDeparted(const PlacementRequest &req,
                                  std::size_t device)
{
    (void)device;
    auto it = affinity.find(keyOf(req));
    if (it == affinity.end())
        return;
    if (it->second.liveTasks > 0)
        --it->second.liveTasks;
    // Last live task gone: evict so a returning tenant re-places
    // against current load instead of a dead mapping.
    if (it->second.liveTasks == 0)
        affinity.erase(it);
}

int
StickyPlacement::preferredOf(const std::string &key) const
{
    auto it = affinity.find(key);
    return it == affinity.end() ? -1
                                : static_cast<int>(it->second.device);
}

std::size_t
HeterogeneityAwarePlacement::place(
    const std::vector<DeviceLoadView> &devices,
    const PlacementRequest &req)
{
    // Score = normalized load after accepting the task: (resident
    // demand + arriving demand) / speed, tie-broken by normalized busy
    // time. Faster devices absorb proportionally more demand,
    // reproducing a throughput-aware assignment.
    const bool skip_down = anyUp(devices);
    std::size_t best = 0;
    double best_score = 0.0, best_busy = 0.0;
    bool first = true;
    for (const DeviceLoadView &d : devices) {
        if (skip_down && !d.up)
            continue;
        const double speed = d.speedFactor > 0.0 ? d.speedFactor : 1.0;
        const double score = (d.assignedDemand + req.demand) / speed;
        const double busy = static_cast<double>(d.busyTime) / speed;
        if (first || score < best_score ||
            (score == best_score && busy < best_busy)) {
            first = false;
            best = d.index;
            best_score = score;
            best_busy = busy;
        }
    }
    return best;
}

std::unique_ptr<PlacementPolicy>
makePlacementPolicy(const FleetConfig &cfg)
{
    switch (cfg.placement) {
      case PlacementKind::RoundRobin:
        return std::make_unique<RoundRobinPlacement>();
      case PlacementKind::LeastLoaded:
        return std::make_unique<LeastLoadedPlacement>();
      case PlacementKind::Sticky:
        return std::make_unique<StickyPlacement>(cfg.stickyCapacity);
      case PlacementKind::HeterogeneityAware:
        return std::make_unique<HeterogeneityAwarePlacement>();
    }
    panic("unknown placement kind");
}

} // namespace neon
