#include "fleet/fleet_manager.hh"

#include <utility>

#include "sim/logging.hh"

namespace neon
{

FleetManager::FleetManager(EventQueue &eq, const FleetConfig &cfg,
                           const DeviceConfig &device_template,
                           const CostModel &costs,
                           const ChannelPolicy &channel_policy,
                           Tick poll_period,
                           const SchedulerFactory &make_scheduler)
    : policy(makePlacementPolicy(cfg))
{
    if (cfg.devices == 0)
        panic("fleet: device count must be at least 1");

    stacks.reserve(cfg.devices);
    for (std::size_t i = 0; i < cfg.devices; ++i) {
        DeviceConfig dcfg = device_template;
        dcfg.speedFactor =
            cfg.speedFactorOf(i, device_template.speedFactor);
        auto stack = std::make_unique<DeviceStack>(
            eq, i, dcfg, costs, channel_policy, poll_period);
        stack->setScheduler(
            make_scheduler(stack->kernel, stack->meter, i));
        stacks.push_back(std::move(stack));
    }
}

Task &
FleetManager::createTask(const PlacementRequest &req)
{
    const std::size_t device = policy->place(loadViews(), req);
    if (device >= stacks.size())
        panic("fleet: placement chose device ", device, " of ",
              stacks.size());

    auto task =
        std::make_unique<Task>(stacks[device]->kernel, req.label);
    Task &ref = *task;
    placed.push_back({std::move(task), req, device});
    taskRefs.push_back(&ref);
    return ref;
}

void
FleetManager::startTask(Task &t, Co body)
{
    stacks[deviceOf(t)]->kernel.startTask(t, std::move(body));
}

void
FleetManager::start()
{
    for (auto &s : stacks)
        s->kernel.start();
}

std::size_t
FleetManager::deviceOf(const Task &t) const
{
    for (const Placed &p : placed) {
        if (p.task.get() == &t)
            return p.device;
    }
    panic("fleet: task ", t.name(), " was not placed by this manager");
}

std::vector<DeviceLoadView>
FleetManager::loadViews() const
{
    std::vector<DeviceLoadView> views;
    views.reserve(stacks.size());
    for (const auto &s : stacks) {
        DeviceLoadView v;
        v.index = s->index;
        v.speedFactor = s->device.config().speedFactor;
        v.busyTime = s->meter.totalBusy();
        views.push_back(v);
    }
    // Killed/finished tasks no longer hold a placement slot, so sticky
    // capacity (and load tie-breaks) drain as tenants depart.
    for (const Placed &p : placed) {
        if (!p.task->killed() && !p.task->done()) {
            ++views[p.device].assignedTasks;
            views[p.device].assignedDemand += p.req.demand;
        }
    }
    return views;
}

std::vector<FleetTaskUsage>
FleetManager::taskUsage() const
{
    std::vector<FleetTaskUsage> out;
    out.reserve(placed.size());
    for (const Placed &p : placed) {
        const UsageMeter &m = stacks[p.device]->meter;
        FleetTaskUsage u;
        u.label = p.req.label;
        u.device = p.device;
        u.pid = p.task->pid();
        u.busy = m.busyOf(p.task->pid());
        u.requests = m.requestsOf(p.task->pid());
        u.killed = p.task->killed();
        out.push_back(std::move(u));
    }
    return out;
}

std::vector<Tick>
FleetManager::perDeviceBusy() const
{
    std::vector<Tick> out;
    out.reserve(stacks.size());
    for (const auto &s : stacks)
        out.push_back(s->meter.totalBusy());
    return out;
}

Tick
FleetManager::totalBusy() const
{
    Tick sum = 0;
    for (const auto &s : stacks)
        sum += s->meter.totalBusy();
    return sum;
}

std::uint64_t
FleetManager::totalRequests() const
{
    std::uint64_t sum = 0;
    for (const Placed &p : placed)
        sum += stacks[p.device]->meter.requestsOf(p.task->pid());
    return sum;
}

std::uint64_t
FleetManager::totalKills() const
{
    std::uint64_t sum = 0;
    for (const auto &s : stacks)
        sum += s->kernel.killCount();
    return sum;
}

} // namespace neon
