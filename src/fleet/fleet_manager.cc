#include "fleet/fleet_manager.hh"

#include <utility>

#include "obs/trace.hh"
#include "sim/logging.hh"
#include "sim/sharded_engine.hh"

namespace neon
{

FleetManager::FleetManager(EventQueue &eq, const FleetConfig &cfg,
                           const DeviceConfig &device_template,
                           const CostModel &costs,
                           const ChannelPolicy &channel_policy,
                           Tick poll_period,
                           const SchedulerFactory &make_scheduler)
    : policy(makePlacementPolicy(cfg))
{
    buildStacks(cfg, device_template, costs, channel_policy, poll_period,
                make_scheduler,
                [&eq](std::size_t) -> EventQueue & { return eq; });
}

FleetManager::FleetManager(ShardedEngine &shards, const FleetConfig &cfg,
                           const DeviceConfig &device_template,
                           const CostModel &costs,
                           const ChannelPolicy &channel_policy,
                           Tick poll_period,
                           const SchedulerFactory &make_scheduler)
    : policy(makePlacementPolicy(cfg))
{
    buildStacks(cfg, device_template, costs, channel_policy, poll_period,
                make_scheduler,
                [&shards](std::size_t i) -> EventQueue & {
                    return shards.queueOfDevice(i);
                });
}

void
FleetManager::buildStacks(const FleetConfig &cfg,
                          const DeviceConfig &device_template,
                          const CostModel &costs,
                          const ChannelPolicy &channel_policy,
                          Tick poll_period,
                          const SchedulerFactory &make_scheduler,
                          const std::function<EventQueue &(std::size_t)>
                              &queue_of)
{
    if (cfg.devices == 0)
        panic("fleet: device count must be at least 1");

    liveTasksPerDevice.assign(cfg.devices, 0);
    liveDemandPerDevice.assign(cfg.devices, 0.0);
    deviceUp_.assign(cfg.devices, 1);
    stacks.reserve(cfg.devices);
    for (std::size_t i = 0; i < cfg.devices; ++i) {
        DeviceConfig dcfg = device_template;
        dcfg.speedFactor =
            cfg.speedFactorOf(i, device_template.speedFactor);
        auto stack = std::make_unique<DeviceStack>(
            queue_of(i), i, dcfg, costs, channel_policy, poll_period);
        stack->setScheduler(
            make_scheduler(stack->kernel, stack->meter, i));
        stacks.push_back(std::move(stack));
    }
}

Task &
FleetManager::emplaceTask(std::size_t device, const PlacementRequest &req)
{
    if (device >= stacks.size())
        panic("fleet: placement chose device ", device, " of ",
              stacks.size());
    if (!deviceUp_[device])
        panic("fleet: placing task ", req.label, " on down device ",
              device);

    auto task =
        std::make_unique<Task>(stacks[device]->kernel, req.label);
    Task &ref = *task;
    placedIndex[&ref] = placed.size();
    placed.push_back({std::move(task), req, device, /*live=*/true});
    taskRefs.push_back(&ref);
    ++liveTasksPerDevice[device];
    liveDemandPerDevice[device] += req.demand;
    policy->noteTaskPlaced(req, device);
    NEON_TRACE(obs::TraceCategory::Fleet, obs::TraceKind::Instant,
               "fleet.place",
               obs::TraceIds{static_cast<std::int16_t>(device), ref.pid(),
                             -1},
               liveTasksPerDevice[device], 0);

    // Protection kills happen inside the per-device scheduler; surface
    // them to fleet-level observers (admission control) and keep the
    // placement policy's live-task bookkeeping honest. In a sharded
    // run the kill fires on the device's shard thread, so the shared-
    // state half is deferred to the window barrier via the mailbox
    // (the trace record still lands shard-side at the kill's time).
    ref.onKilled = [this](Process &p) {
        Task &t = static_cast<Task &>(p);
        NEON_TRACE(obs::TraceCategory::Fleet, obs::TraceKind::Instant,
                   "fleet.task_killed",
                   obs::TraceIds{
                       static_cast<std::int16_t>(placedOf(t).device),
                       t.pid(), -1},
                   0, 0);
        if (ShardedEngine::inShardPhase()) {
            ShardedEngine::postFromShard(
                [this, task = &t] { handleTaskKilled(*task); });
        } else {
            handleTaskKilled(t);
        }
    };
    return ref;
}

void
FleetManager::handleTaskKilled(Task &t)
{
    releasePlacement(placedOf(t));
    if (onTaskKilled)
        onTaskKilled(t);
}

FleetManager::Placed &
FleetManager::placedOf(const Task &t)
{
    auto it = placedIndex.find(&t);
    if (it == placedIndex.end())
        panic("fleet: task ", t.name(),
              " was not placed by this manager");
    return placed[it->second];
}

const FleetManager::Placed &
FleetManager::placedOf(const Task &t) const
{
    auto it = placedIndex.find(&t);
    if (it == placedIndex.end())
        panic("fleet: task ", t.name(),
              " was not placed by this manager");
    return placed[it->second];
}

void
FleetManager::releasePlacement(Placed &entry)
{
    if (!entry.live)
        return;
    entry.live = false;
    --liveTasksPerDevice[entry.device];
    liveDemandPerDevice[entry.device] -= entry.req.demand;
    policy->noteTaskDeparted(entry.req, entry.device);
}

Task &
FleetManager::createTask(const PlacementRequest &req)
{
    return emplaceTask(policy->place(loadViews(), req), req);
}

Task &
FleetManager::createTaskOn(std::size_t device, const PlacementRequest &req)
{
    return emplaceTask(device, req);
}

void
FleetManager::startTask(Task &t, Co body)
{
    stacks[deviceOf(t)]->kernel.startTask(t, std::move(body));
}

void
FleetManager::retireTask(Task &t)
{
    // Killed tasks were torn down (and their slot released) by the
    // kill path; everything else — Running bodies and bodies that
    // already co_returned while still holding channels — goes through
    // the kernel's graceful teardown.
    if (t.killed())
        return;
    Placed &entry = placedOf(t);
    NEON_TRACE(obs::TraceCategory::Fleet, obs::TraceKind::Instant,
               "fleet.retire",
               obs::TraceIds{static_cast<std::int16_t>(entry.device),
                             t.pid(), -1},
               liveTasksPerDevice[entry.device], 0);
    stacks[entry.device]->kernel.retireTask(t);
    releasePlacement(entry);
}

Task &
FleetManager::migrateTask(Task &t, std::size_t target)
{
    if (target >= stacks.size())
        panic("fleet: migration target ", target, " of ", stacks.size());
    Placed &entry = placedOf(t);
    if (entry.device == target)
        panic("fleet: migrating task ", t.name(), " onto its own device");

    // Copy the request before retiring: retireTask may not invalidate
    // `entry`, but emplaceTask below grows `placed` and can reallocate.
    const PlacementRequest req = entry.req;
    NEON_TRACE(obs::TraceCategory::Fleet, obs::TraceKind::Instant,
               "fleet.migrate",
               obs::TraceIds{static_cast<std::int16_t>(entry.device),
                             t.pid(), -1},
               entry.device, target);
    retireTask(t);
    return emplaceTask(target, req);
}

void
FleetManager::start()
{
    for (auto &s : stacks)
        s->kernel.start();
    for (auto &w : watchdogs)
        w->start();
}

void
FleetManager::failDevice(std::size_t i)
{
    if (i >= stacks.size())
        panic("fleet: failing device ", i, " of ", stacks.size());
    if (!deviceUp_[i])
        return;
    deviceUp_[i] = 0;

    NEON_TRACE(obs::TraceCategory::Fault, obs::TraceKind::Instant,
               "fleet.device_down",
               obs::TraceIds{static_cast<std::int16_t>(i), -1, -1},
               liveTasksPerDevice[i], 0);

    // Lose in-flight work first (charging partial occupancy), then let
    // the serve layer shrink its capacity before any eviction can
    // release a queued session toward the dead device.
    stacks[i]->device.forceDown();
    if (onDeviceDown)
        onDeviceDown(i);

    // Snapshot the victims: eviction handling may create replacement
    // tasks, growing `placed` and invalidating iterators.
    std::vector<Task *> victims;
    for (const Placed &p : placed) {
        if (p.live && p.device == i)
            victims.push_back(p.task.get());
    }
    for (Task *t : victims) {
        if (t->killed())
            continue;
        if (onTaskEvicted)
            onTaskEvicted(*t);
        else
            retireTask(*t);
    }
}

void
FleetManager::repairDevice(std::size_t i)
{
    if (i >= stacks.size())
        panic("fleet: repairing device ", i, " of ", stacks.size());
    if (deviceUp_[i])
        return;
    deviceUp_[i] = 1;
    stacks[i]->device.repair();
    NEON_TRACE(obs::TraceCategory::Fault, obs::TraceKind::Instant,
               "fleet.device_up",
               obs::TraceIds{static_cast<std::int16_t>(i), -1, -1}, 0, 0);
    if (onDeviceUp)
        onDeviceUp(i);
}

std::size_t
FleetManager::upDeviceCount() const
{
    std::size_t n = 0;
    for (const char up : deviceUp_)
        n += up ? 1 : 0;
    return n;
}

void
FleetManager::enableWatchdog(const WatchdogConfig &cfg)
{
    if (!watchdogs.empty())
        panic("fleet: watchdog already enabled");
    watchdogs.reserve(stacks.size());
    for (std::size_t i = 0; i < stacks.size(); ++i) {
        auto w = std::make_unique<Watchdog>(
            stacks[i]->kernel.eventQueue(), stacks[i]->kernel, cfg, i);
        // The watchdog fires on its device's shard; fleet-level
        // observers (the serve layer) only see the verdict at the
        // window barrier. The device-side kill itself already went
        // through Process::onKilled above.
        w->onKill = [this](const WatchdogKill &k) {
            if (!onWatchdogKill)
                return;
            if (ShardedEngine::inShardPhase()) {
                ShardedEngine::postFromShard(
                    [this, k] { onWatchdogKill(k); });
            } else {
                onWatchdogKill(k);
            }
        };
        watchdogs.push_back(std::move(w));
    }
}

std::vector<WatchdogKill>
FleetManager::watchdogKillLog() const
{
    std::vector<WatchdogKill> out;
    for (const auto &w : watchdogs)
        out.insert(out.end(), w->killLog().begin(), w->killLog().end());
    return out;
}

std::uint64_t
FleetManager::watchdogHangKills() const
{
    std::uint64_t n = 0;
    for (const auto &w : watchdogs)
        n += w->hangKills();
    return n;
}

std::uint64_t
FleetManager::watchdogRunawayKills() const
{
    std::uint64_t n = 0;
    for (const auto &w : watchdogs)
        n += w->runawayKills();
    return n;
}

std::size_t
FleetManager::deviceOf(const Task &t) const
{
    return placedOf(t).device;
}

std::vector<DeviceLoadView>
FleetManager::loadViews() const
{
    // O(devices): retired/migrated/killed tasks released their slot in
    // the per-device aggregates, so sticky capacity (and load
    // tie-breaks) drain as tenants depart without rescanning the
    // ever-growing placement log.
    std::vector<DeviceLoadView> views;
    views.reserve(stacks.size());
    for (const auto &s : stacks) {
        DeviceLoadView v;
        v.index = s->index;
        v.speedFactor = s->device.config().speedFactor;
        v.busyTime = s->meter.totalBusy();
        v.assignedTasks = liveTasksPerDevice[s->index];
        v.assignedDemand = liveDemandPerDevice[s->index];
        v.up = deviceUp_[s->index] != 0;
        views.push_back(v);
    }
    return views;
}

std::vector<FleetTaskUsage>
FleetManager::taskUsage() const
{
    std::vector<FleetTaskUsage> out;
    out.reserve(placed.size());
    for (const Placed &p : placed) {
        const UsageMeter &m = stacks[p.device]->meter;
        FleetTaskUsage u;
        u.label = p.req.label;
        u.device = p.device;
        u.pid = p.task->pid();
        u.busy = m.busyOf(p.task->pid());
        u.requests = m.requestsOf(p.task->pid());
        u.killed = p.task->killed();
        out.push_back(std::move(u));
    }
    return out;
}

std::vector<Tick>
FleetManager::perDeviceBusy() const
{
    std::vector<Tick> out;
    out.reserve(stacks.size());
    for (const auto &s : stacks)
        out.push_back(s->meter.totalBusy());
    return out;
}

Tick
FleetManager::totalBusy() const
{
    Tick sum = 0;
    for (const auto &s : stacks)
        sum += s->meter.totalBusy();
    return sum;
}

std::uint64_t
FleetManager::totalRequests() const
{
    std::uint64_t sum = 0;
    for (const Placed &p : placed)
        sum += stacks[p.device]->meter.requestsOf(p.task->pid());
    return sum;
}

std::uint64_t
FleetManager::totalKills() const
{
    std::uint64_t sum = 0;
    for (const auto &s : stacks)
        sum += s->kernel.killCount();
    return sum;
}

} // namespace neon
