/**
 * @file
 * One device's full stack inside a fleet: ground-truth meter, device
 * model, kernel module, and the per-device scheduling policy. Stacks
 * share their device group's event queue — the fleet's single queue
 * in the serial core, the group's shard queue under ShardedEngine —
 * but are otherwise fully independent: exactly N copies of the
 * single-device world the paper evaluates, which is what makes the
 * conservative-window parallelization sound.
 */

#ifndef NEON_FLEET_DEVICE_STACK_HH
#define NEON_FLEET_DEVICE_STACK_HH

#include <cstddef>
#include <memory>

#include "gpu/device.hh"
#include "gpu/usage_meter.hh"
#include "os/kernel.hh"
#include "sim/event_queue.hh"

namespace neon
{

/** A single accelerator stack within a fleet. */
class DeviceStack
{
  public:
    DeviceStack(EventQueue &eq, std::size_t index,
                const DeviceConfig &device_cfg, const CostModel &costs,
                const ChannelPolicy &channel_policy, Tick poll_period)
        : index(index), device(eq, device_cfg, meter),
          kernel(eq, device, costs, channel_policy)
    {
        device.setDeviceIndex(static_cast<int>(index));
        kernel.polling().setPeriod(poll_period);
    }

    DeviceStack(const DeviceStack &) = delete;
    DeviceStack &operator=(const DeviceStack &) = delete;

    /** Install the per-device scheduling policy (owned by the stack). */
    void
    setScheduler(std::unique_ptr<Scheduler> s)
    {
        sched = std::move(s);
        kernel.setScheduler(sched.get());
    }

    /** Position of this stack in the fleet. */
    const std::size_t index;

    UsageMeter meter;
    GpuDevice device;
    KernelModule kernel;
    std::unique_ptr<Scheduler> sched;
};

} // namespace neon

#endif // NEON_FLEET_DEVICE_STACK_HH
