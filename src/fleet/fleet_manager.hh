/**
 * @file
 * FleetManager: N device stacks behind one placement policy.
 *
 * The manager owns the stacks and the task principals, routes each new
 * task to a device via the configured PlacementPolicy, and aggregates
 * per-task and per-device usage across the fleet. Scheduling policy
 * construction is delegated to a factory so any single-device policy
 * (Direct, Timeslice, DisengagedTimeslice, DisengagedFq, EngagedFq)
 * composes unchanged with the fleet layer.
 */

#ifndef NEON_FLEET_FLEET_MANAGER_HH
#define NEON_FLEET_FLEET_MANAGER_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fault/fault_config.hh"
#include "fault/watchdog.hh"
#include "fleet/device_stack.hh"
#include "fleet/fleet_config.hh"
#include "fleet/placement.hh"
#include "os/task.hh"
#include "sim/coroutine.hh"

namespace neon
{

class ShardedEngine;

/**
 * Builds the per-device scheduling policy. The device's ground-truth
 * meter is passed so vendor-assisted modes (DfqConfig::Attribution::
 * DeviceCounters) can be wired per device.
 */
using SchedulerFactory = std::function<std::unique_ptr<Scheduler>(
    KernelModule &, const UsageMeter &, std::size_t device_index)>;

/** Aggregated view of one fleet task (metrics/benches). */
struct FleetTaskUsage
{
    std::string label;
    std::size_t device = 0;
    int pid = 0;              ///< pid within the owning device's kernel
    Tick busy = 0;            ///< ground-truth device time
    std::uint64_t requests = 0;
    bool killed = false;
};

/** A pool of device stacks with placement-based task routing. */
class FleetManager
{
  public:
    FleetManager(EventQueue &eq, const FleetConfig &cfg,
                 const DeviceConfig &device_template,
                 const CostModel &costs,
                 const ChannelPolicy &channel_policy, Tick poll_period,
                 const SchedulerFactory &make_scheduler);

    /**
     * Group-aware construction: each device stack is built on its
     * shard's event queue (ShardedEngine::queueOfDevice), so the
     * stacks of one group share a timeline and groups advance in
     * parallel. With a serial engine (shardCount() == 1) this is
     * exactly the single-queue constructor above. Cross-shard effects
     * originating inside a shard phase (protection kills, watchdog
     * verdicts) are deferred through the engine's mailboxes and land
     * at the window barrier; everything the manager does from the
     * coordinator (placement, retirement, migration, failover) runs
     * with the workers parked and may touch any shard directly.
     */
    FleetManager(ShardedEngine &shards, const FleetConfig &cfg,
                 const DeviceConfig &device_template,
                 const CostModel &costs,
                 const ChannelPolicy &channel_policy, Tick poll_period,
                 const SchedulerFactory &make_scheduler);

    FleetManager(const FleetManager &) = delete;
    FleetManager &operator=(const FleetManager &) = delete;

    std::size_t deviceCount() const { return stacks.size(); }
    DeviceStack &stack(std::size_t i) { return *stacks.at(i); }
    const DeviceStack &stack(std::size_t i) const { return *stacks.at(i); }
    PlacementPolicy &placement() { return *policy; }

    /**
     * Create a task and place it on a device chosen by the policy.
     * The manager owns the task for the fleet's lifetime.
     */
    Task &createTask(const PlacementRequest &req);

    /**
     * Create a task on an explicit device, bypassing the placement
     * policy's choice (serve-layer steering, migration targets). The
     * policy is still notified so its bookkeeping stays consistent.
     */
    Task &createTaskOn(std::size_t device, const PlacementRequest &req);

    /** Begin executing a placed task's body on its device's kernel. */
    void startTask(Task &t, Co body);

    /**
     * Gracefully tear down a live task (open-system departure): close
     * its channels, end its process without a protection kill, free its
     * placement slot, and notify the placement policy. The Task object
     * (and its accumulated usage in the device meter) stays owned by
     * the manager so departed work remains accounted.
     */
    void retireTask(Task &t);

    /**
     * Migrate a task to @p target: retire the incarnation on its
     * current device and create a fresh Task (same placement request)
     * on the target. Returns the new incarnation; the caller restarts
     * the workload body on it. Models checkpoint/restart migration —
     * in-flight requests on the old device are aborted.
     */
    Task &migrateTask(Task &t, std::size_t target);

    /** Start every device's kernel (polling + policy timers). */
    void start();

    /** Device index a task was placed on. */
    std::size_t deviceOf(const Task &t) const;

    // ------------------------------------------------------------------
    // Fault plane: availability, failover, watchdog protection
    // ------------------------------------------------------------------

    /**
     * Take device @p i down (fault injection): force its device model
     * Down (losing in-flight work), notify onDeviceDown (the serve
     * layer shrinks admission capacity before the evictions land), and
     * drain every live task through onTaskEvicted — or plain
     * retirement when no eviction handler is installed.
     */
    void failDevice(std::size_t i);

    /** Bring device @p i back and notify onDeviceUp. */
    void repairDevice(std::size_t i);

    bool deviceUp(std::size_t i) const { return deviceUp_.at(i) != 0; }

    /** Devices currently up. */
    std::size_t upDeviceCount() const;

    /**
     * Install a watchdog service on every device stack. Call before
     * start(); the watchdogs arm with the kernels.
     */
    void enableWatchdog(const WatchdogConfig &cfg);

    /** The per-device watchdog, or nullptr when not enabled. */
    const Watchdog *watchdog(std::size_t i) const
    {
        return i < watchdogs.size() ? watchdogs[i].get() : nullptr;
    }

    /** Watchdog kills across the fleet, device order then kill order. */
    std::vector<WatchdogKill> watchdogKillLog() const;

    std::uint64_t watchdogHangKills() const;
    std::uint64_t watchdogRunawayKills() const;

    /**
     * Observer invoked after a task is killed by per-device protection
     * (scheduler kill path). The serve layer uses it to free admission
     * slots; the placement policy has already been notified.
     */
    std::function<void(Task &)> onTaskKilled;

    /**
     * Observer handed each live task of a dying device, in placement
     * order. The handler owns the disposition (the serve layer retires
     * the incarnation and re-queues the session); without one the task
     * is simply retired.
     */
    std::function<void(Task &)> onTaskEvicted;

    /** Device availability transitions (serve capacity tracking). */
    std::function<void(std::size_t)> onDeviceDown;
    std::function<void(std::size_t)> onDeviceUp;

    /** Observer forwarded every watchdog kill across the fleet. */
    std::function<void(const WatchdogKill &)> onWatchdogKill;

    /** Snapshot of per-device load, ordered by device index. */
    std::vector<DeviceLoadView> loadViews() const;

    /** Per-task usage aggregated across all devices, placement order. */
    std::vector<FleetTaskUsage> taskUsage() const;

    /** Per-device busy time, ordered by device index. */
    std::vector<Tick> perDeviceBusy() const;

    /** Total busy time across the fleet. */
    Tick totalBusy() const;

    /** Total completed requests across the fleet's tasks. */
    std::uint64_t totalRequests() const;

    /** Total protection kills across the fleet. */
    std::uint64_t totalKills() const;

    const std::vector<Task *> &tasks() const { return taskRefs; }

  private:
    struct Placed
    {
        std::unique_ptr<Task> task;
        PlacementRequest req;
        std::size_t device;

        /** Holds a placement slot (cleared on retire/migrate/kill). */
        bool live = true;
    };

    void buildStacks(const FleetConfig &cfg,
                     const DeviceConfig &device_template,
                     const CostModel &costs,
                     const ChannelPolicy &channel_policy,
                     Tick poll_period,
                     const SchedulerFactory &make_scheduler,
                     const std::function<EventQueue &(std::size_t)> &queue_of);

    Task &emplaceTask(std::size_t device, const PlacementRequest &req);
    Placed &placedOf(const Task &t);
    const Placed &placedOf(const Task &t) const;

    /**
     * Barrier half of the protection-kill path: release the slot and
     * notify fleet-level observers. Runs directly when the kill fires
     * on the coordinator (serial core, window barriers) and via the
     * shard mailbox when it fires inside a parallel phase — placement
     * tables and the serve layer are only ever mutated with the
     * workers parked.
     */
    void handleTaskKilled(Task &t);

    /** Drop a live entry's slot and notify the policy (idempotent). */
    void releasePlacement(Placed &entry);

    std::vector<std::unique_ptr<DeviceStack>> stacks;
    std::vector<std::unique_ptr<Watchdog>> watchdogs;
    std::vector<char> deviceUp_; ///< availability flags, device order
    std::unique_ptr<PlacementPolicy> policy;
    std::vector<Placed> placed;
    std::vector<Task *> taskRefs;

    /**
     * Open-system churn makes `placed` grow for the run's lifetime
     * (departed tasks stay owned so their usage stays accounted), so
     * the hot paths must not scan it: lookups go through this index
     * and load snapshots through the per-device live aggregates.
     */
    std::map<const Task *, std::size_t> placedIndex;
    std::vector<std::size_t> liveTasksPerDevice;
    std::vector<double> liveDemandPerDevice;
};

} // namespace neon

#endif // NEON_FLEET_FLEET_MANAGER_HH
