/**
 * @file
 * Configuration for a multi-device fleet (src/fleet).
 *
 * A fleet instantiates N independent device stacks (GpuDevice +
 * KernelModule + Scheduler) behind one FleetManager and routes task
 * principals to devices through a pluggable placement policy. Devices
 * may be heterogeneous: per-device speed factors scale request service
 * times (DeviceConfig::speedFactor).
 */

#ifndef NEON_FLEET_FLEET_CONFIG_HH
#define NEON_FLEET_FLEET_CONFIG_HH

#include <cstddef>
#include <string>
#include <vector>

namespace neon
{

/** Which placement policy routes tasks to devices. */
enum class PlacementKind
{
    /** Cycle through devices in index order. */
    RoundRobin,

    /** Least accumulated busy time (UsageMeter), then fewest tasks. */
    LeastLoaded,

    /**
     * MQFQ-Sticky-style affinity: tasks with the same affinity key
     * prefer the same device, spilling to the least-loaded device when
     * the preferred one is over its stickiness capacity.
     */
    Sticky,

    /**
     * Gavel-style heterogeneity awareness: places where the
     * speed-normalized resident demand (sum of the tasks' demand
     * hints divided by the device's speed factor) stays lowest, with
     * normalized busy time as the tie-break — so faster devices
     * receive proportionally more work.
     */
    HeterogeneityAware,
};

/** Display name of a placement policy. */
std::string placementKindName(PlacementKind k);

/** Fleet-level configuration. */
struct FleetConfig
{
    /** Number of device stacks. 1 keeps single-device behaviour. */
    std::size_t devices = 1;

    /** Task-to-device routing policy. */
    PlacementKind placement = PlacementKind::RoundRobin;

    /**
     * Per-device speed factors (see DeviceConfig::speedFactor).
     * Devices beyond the vector's length keep the device template's
     * own factor; empty = homogeneous at the template's speed.
     */
    std::vector<double> speedFactors;

    /**
     * Sticky placement: tasks a device will hold before an arriving
     * task with a mapped affinity key spills elsewhere.
     */
    std::size_t stickyCapacity = 2;

    /** Effective speed factor of device @p i; @p fallback when unset. */
    double
    speedFactorOf(std::size_t i, double fallback = 1.0) const
    {
        return i < speedFactors.size() ? speedFactors[i] : fallback;
    }
};

} // namespace neon

#endif // NEON_FLEET_FLEET_CONFIG_HH
