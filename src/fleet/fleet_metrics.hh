/**
 * @file
 * Fleet-level fairness and throughput accounting.
 *
 * Single-device fairness compares per-task service within one
 * scheduler's reach; a fleet must also show that placement did not
 * concentrate service on a subset of tasks or devices. The helpers here
 * aggregate per-device ground-truth usage (and, where the per-device
 * policy is Disengaged Fair Queueing, its virtual times) into
 * cross-device indices.
 */

#ifndef NEON_FLEET_FLEET_METRICS_HH
#define NEON_FLEET_FLEET_METRICS_HH

#include <cstdint>
#include <vector>

#include "fleet/fleet_manager.hh"
#include "metrics/efficiency.hh"
#include "sched/disengaged_fq.hh"

namespace neon
{

/** Cross-device fairness summary for one measurement window. */
struct FleetFairnessReport
{
    /**
     * Jain index over per-task device time across the whole fleet,
     * normalized by each task's device speed so a task served by a 2x
     * device is credited 2x the work. 1.0 = perfectly even service.
     */
    double taskFairness = 1.0;

    /**
     * Jain index over per-device busy (wall) time: how evenly
     * placement kept devices occupied. A fully proportional placement
     * on a heterogeneous fleet scores 1 — the fast device does more
     * work in the same busy time.
     */
    double deviceBalance = 1.0;

    /**
     * Spread (max - min, in ms) of per-device DFQ system virtual
     * times; 0 when the per-device policy is not DisengagedFq. A small
     * spread means the per-device fair queues advanced in step, i.e.
     * no device's tenants got globally ahead.
     */
    double vtimeSpreadMs = 0.0;
};

/**
 * Jain fairness over per-task busy-time deltas. @p busy must be in
 * placement order (FleetManager::taskUsage), with each entry already
 * adjusted to the measurement window by the caller.
 */
inline double
fleetTaskFairness(const std::vector<FleetTaskUsage> &usage,
                  const FleetManager &fleet)
{
    std::vector<double> work;
    work.reserve(usage.size());
    for (const FleetTaskUsage &u : usage) {
        const double speed =
            fleet.stack(u.device).device.config().speedFactor;
        work.push_back(static_cast<double>(u.busy) *
                       (speed > 0.0 ? speed : 1.0));
    }
    return jainIndex(work);
}

/** Jain fairness over per-device busy (wall) time. */
inline double
fleetDeviceBalance(const std::vector<Tick> &per_device_busy)
{
    std::vector<double> load;
    load.reserve(per_device_busy.size());
    for (Tick busy : per_device_busy)
        load.push_back(static_cast<double>(busy));
    return jainIndex(load);
}

/** Sentinel for devices whose policy exports no virtual times. */
constexpr Tick notDfqVtime = -1;

/**
 * Per-device system virtual times, read through the VirtualTimeTap
 * every fair-queueing policy implements (DisengagedFq, EngagedFq);
 * entries are notDfqVtime for devices running another policy. A
 * genuine 0 means an idle fair-queueing device — it counts toward the
 * spread (it IS maximally behind).
 */
inline std::vector<Tick>
fleetDfqVtimes(FleetManager &fleet)
{
    std::vector<Tick> vts;
    vts.reserve(fleet.deviceCount());
    for (std::size_t i = 0; i < fleet.deviceCount(); ++i) {
        auto *tap =
            dynamic_cast<VirtualTimeTap *>(fleet.stack(i).sched.get());
        vts.push_back(tap ? tap->tapSystemVtime() : notDfqVtime);
    }
    return vts;
}

/**
 * Max-min spread of per-device DFQ virtual times, in milliseconds.
 * @p baseline (a fleetDfqVtimes snapshot, e.g. taken at the start of
 * a measurement window) is subtracted per device when provided, so
 * the spread covers only the window's advancement.
 */
inline double
fleetVtimeSpreadMs(FleetManager &fleet,
                   const std::vector<Tick> &baseline = {})
{
    const std::vector<Tick> vts = fleetDfqVtimes(fleet);
    Tick lo = 0, hi = 0;
    bool any = false;
    for (std::size_t i = 0; i < vts.size(); ++i) {
        if (vts[i] == notDfqVtime)
            continue;
        Tick v = vts[i];
        if (i < baseline.size() && baseline[i] != notDfqVtime)
            v -= baseline[i];
        if (!any) {
            lo = hi = v;
            any = true;
        } else {
            lo = v < lo ? v : lo;
            hi = v > hi ? v : hi;
        }
    }
    return any ? toMsec(hi - lo) : 0.0;
}

/** Aggregate requests-per-second across the fleet in a window. */
inline double
fleetThroughputRps(std::uint64_t requests, Tick elapsed)
{
    return elapsed > 0 ? static_cast<double>(requests) / toSec(elapsed)
                       : 0.0;
}

} // namespace neon

#endif // NEON_FLEET_FLEET_METRICS_HH
