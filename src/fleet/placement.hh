/**
 * @file
 * Pluggable task-to-device placement policies.
 *
 * Policies are pure routing logic: they see a snapshot of per-device
 * load (DeviceLoadView) plus a description of the arriving task
 * (PlacementRequest) and return a device index. Keeping them free of
 * simulator state makes them unit-testable with hand-built snapshots.
 */

#ifndef NEON_FLEET_PLACEMENT_HH
#define NEON_FLEET_PLACEMENT_HH

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fleet/fleet_config.hh"
#include "sim/types.hh"

namespace neon
{

/** Snapshot of one device's load at placement time. */
struct DeviceLoadView
{
    std::size_t index = 0;

    /** Relative execution speed (DeviceConfig::speedFactor). */
    double speedFactor = 1.0;

    /** Live tasks currently placed on the device. */
    std::size_t assignedTasks = 0;

    /** Sum of the live tasks' demand hints (PlacementRequest::demand). */
    double assignedDemand = 0.0;

    /** Accumulated device busy time (UsageMeter::totalBusy). */
    Tick busyTime = 0;

    /**
     * Availability: false while the device is Down (fault plane).
     * Policies never place onto a down device while any up device
     * exists.
     */
    bool up = true;
};

/** Description of the task being placed. */
struct PlacementRequest
{
    std::string label;

    /**
     * Sticky-affinity key: tasks sharing a key prefer the same device
     * (think per-function affinity in a serverless GPU pool). Empty
     * means no affinity; Sticky then falls back to the label.
     */
    std::string affinityKey;

    /** Relative expected load of the task (heterogeneity weighting). */
    double demand = 1.0;
};

/** Base class for placement policies. */
class PlacementPolicy
{
  public:
    virtual ~PlacementPolicy() = default;

    /** Display name (benches/examples). */
    virtual std::string name() const = 0;

    /**
     * Choose a device for @p req given current loads. @p devices is
     * never empty and is ordered by device index. Pure routing: the
     * fleet reports the outcome through noteTaskPlaced (which also
     * covers forced placements that bypass place(), e.g. serve-layer
     * steering and migration).
     */
    virtual std::size_t place(const std::vector<DeviceLoadView> &devices,
                              const PlacementRequest &req) = 0;

    /** A task from @p req now lives on @p device (any placement path). */
    virtual void
    noteTaskPlaced(const PlacementRequest &req, std::size_t device)
    {
        (void)req;
        (void)device;
    }

    /**
     * A task placed from @p req departed (retired, migrated away, or
     * killed). Policies drop per-task bookkeeping here — StickyPlacement
     * evicts an affinity key once its last live task is gone, so a
     * returning tenant re-places against current load instead of a dead
     * mapping.
     */
    virtual void
    noteTaskDeparted(const PlacementRequest &req, std::size_t device)
    {
        (void)req;
        (void)device;
    }
};

/** Strict rotation, ignoring load. */
class RoundRobinPlacement : public PlacementPolicy
{
  public:
    std::string name() const override { return "round-robin"; }
    std::size_t place(const std::vector<DeviceLoadView> &devices,
                      const PlacementRequest &req) override;

  private:
    std::size_t next = 0;
};

/** Least accumulated busy time, tie-broken by task count then index. */
class LeastLoadedPlacement : public PlacementPolicy
{
  public:
    std::string name() const override { return "least-loaded"; }
    std::size_t place(const std::vector<DeviceLoadView> &devices,
                      const PlacementRequest &req) override;
};

/** Affinity-first with overflow spill (MQFQ-Sticky flavour). */
class StickyPlacement : public PlacementPolicy
{
  public:
    explicit StickyPlacement(std::size_t capacity) : capacity(capacity) {}

    std::string name() const override { return "sticky"; }
    std::size_t place(const std::vector<DeviceLoadView> &devices,
                      const PlacementRequest &req) override;

    void noteTaskPlaced(const PlacementRequest &req,
                        std::size_t device) override;
    void noteTaskDeparted(const PlacementRequest &req,
                          std::size_t device) override;

    /** Preferred device of @p key; -1 when unmapped (tests). */
    int preferredOf(const std::string &key) const;

  private:
    struct Mapping
    {
        std::size_t device = 0;
        std::size_t liveTasks = 0; ///< live tasks sharing the key
    };

    static std::string keyOf(const PlacementRequest &req);

    std::size_t capacity;
    std::map<std::string, Mapping> affinity;
};

/** Normalized-load placement for heterogeneous fleets (Gavel flavour). */
class HeterogeneityAwarePlacement : public PlacementPolicy
{
  public:
    std::string name() const override { return "heterogeneity-aware"; }
    std::size_t place(const std::vector<DeviceLoadView> &devices,
                      const PlacementRequest &req) override;
};

/** Build the policy selected by @p cfg. */
std::unique_ptr<PlacementPolicy>
makePlacementPolicy(const FleetConfig &cfg);

} // namespace neon

#endif // NEON_FLEET_PLACEMENT_HH
