/**
 * @file
 * Configuration for the open-system serving layer (src/serve).
 *
 * The serving layer turns the closed, spawn-everything-at-t0 harness
 * into an open system: sessions arrive by a stochastic or traced
 * process, queue in an AdmissionController while the fleet is at
 * channel capacity, are placed (optionally steered by the
 * GlobalVirtualClock), run for a finite lifetime, may migrate between
 * devices, and depart.
 */

#ifndef NEON_SERVE_SERVE_CONFIG_HH
#define NEON_SERVE_SERVE_CONFIG_HH

#include <cstddef>
#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace neon
{

/** Order in which queued placement requests are released. */
enum class AdmissionKind
{
    /** Arrival order. */
    Fifo,

    /**
     * Smallest expected-demand hint first (shortest-expected-demand;
     * ties broken by arrival order). Cuts mean queueing delay at the
     * cost of potentially delaying heavy tenants.
     */
    ShortestDemand,

    /**
     * The pending request whose tenant currently holds the fewest live
     * sessions goes first (max-min fair share across tenants; ties
     * broken by arrival order).
     */
    FairShare,
};

/** Display name of an admission policy. */
std::string admissionKindName(AdmissionKind k);

/**
 * Priority/QoS class of a serving workload. Interactive traffic is
 * released ahead of Batch in the admission queue (when QosConfig is
 * enabled) and may preempt Batch incarnations to free a slot.
 */
enum class QosClass : std::uint8_t
{
    Interactive = 0, ///< latency-sensitive; wins release ties, may preempt
    Batch = 1,       ///< throughput traffic; preemptible victim pool
};

/** Display name of a QoS class. */
std::string qosClassName(QosClass c);

/** Release-ordering priority of a QoS class (lower wins). */
constexpr int
qosPriorityOf(QosClass c)
{
    return static_cast<int>(c);
}

/**
 * Per-tenant token-bucket rate limit applied ahead of the
 * AdmissionController. Each tenant gets its own bucket built from this
 * template; a session arriving with an empty bucket is *throttled* — a
 * distinct terminal outcome, counted and recorded, never silently
 * dropped. Refill is computed in integer ticks on the virtual clock,
 * so runs are bit-identical across repeats and shard counts.
 */
struct TokenBucketConfig
{
    /** Sustained admission rate, tokens (sessions) per simulated
     *  second. 0 disables rate limiting entirely. */
    double ratePerSec = 0.0;

    /** Bucket capacity in tokens: the largest burst admitted from a
     *  full bucket before throttling begins. */
    double burst = 1.0;

    bool enabled() const { return ratePerSec > 0.0; }
};

/**
 * SLO-driven predictive shedding. On an arrival that would queue, the
 * engine predicts the session's admission delay from the queued work
 * ahead of it (per-class holding-time estimates) over the fleet's
 * drain rate (slot capacity, discounted by the GlobalVirtualClock's
 * observed speed-normalized advance when steering is on). If the
 * prediction exceeds the class's queue-delay budget the session is
 * shed immediately — a fast-fail at the front door instead of a
 * queue-forever — with a distinct outcome in the session record.
 */
struct PredictiveShedConfig
{
    /** Master switch; off = queue-everything (PR 9 behaviour). */
    bool enabled = false;

    /**
     * Margin multiplier on the predicted delay before comparing with
     * the budget: > 1 sheds earlier (conservative front door), < 1
     * sheds later (optimistic).
     */
    double safety = 1.0;

    /** EWMA weight of the newest observed holding time (0..1]. */
    double holdAlpha = 0.2;

    /** Floor on any per-class holding estimate. */
    Tick holdFloor = msec(1);
};

/**
 * Priority/QoS serving classes. When enabled, the admission queue
 * releases Interactive ahead of Batch (then deadline, then session id
 * — a total deterministic order), and — with preemption on — an
 * Interactive arrival that would otherwise queue evicts the youngest
 * Batch incarnation, takes its slot, and the victim re-enters the
 * queue after a fixed backoff with its remaining lifetime frozen
 * (exactly the fault plane's eviction bookkeeping, minus the fault).
 */
struct QosConfig
{
    /** Priority + deadline release ordering in the admission queue. */
    bool enabled = false;

    /** Preempt Batch incarnations to free slots for Interactive. */
    bool preemption = false;

    /** Delay before a preempted victim re-enters the admission queue. */
    Tick preemptionBackoff = msec(2);
};

/**
 * Retry policy for sessions interrupted by device failure. An evicted
 * session re-enters admission after a capped exponential backoff; once
 * the budget is spent (or the fleet stays hopeless), it is shed.
 */
struct RetryConfig
{
    /** Retry attempts before the session is shed (fast-failed). */
    int maxRetries = 3;

    /** First backoff; attempt k waits base << k, capped below. */
    Tick backoffBase = msec(2);

    /** Ceiling on any single backoff. */
    Tick backoffCap = msec(64);
};

/**
 * Service-level objective targets for goodput accounting. A departed,
 * un-killed session "meets SLO" when it satisfies every configured
 * target; goodput is the fraction of such sessions (SloReport::goodput,
 * and per window in the analysis plane's timeline). Both targets off
 * (the default) keeps goodput reporting untargeted: every departure
 * counts as met.
 */
struct SloTargetConfig
{
    /** Admission-to-departure residency bound (0 = no target). */
    Tick sojournTarget = 0;

    /**
     * Arrival-to-admission queueing bound (0 = no target). This is the
     * budget the predictive shedder compares its delay estimate with,
     * and the target under which queue-heavy sessions stop counting as
     * goodput — the knob that makes shedding *raise* goodput at
     * overload instead of merely shrinking the served count.
     */
    Tick queueTarget = 0;

    /**
     * Bound on per-session slowdown vs. the class's isolated solo
     * baseline (0 = no target). Needs the runner's with_slowdowns
     * baselines; the windowed timeline uses the sojourn target only.
     */
    double slowdownTarget = 0.0;

    bool any() const
    {
        return sojournTarget > 0 || queueTarget > 0 || slowdownTarget > 0.0;
    }
};

/** Serving-layer configuration. */
struct ServeConfig
{
    /** Queued-request release order. */
    AdmissionKind admission = AdmissionKind::Fifo;

    /**
     * Live-session capacity per device ("channel slots"). The fleet's
     * admission capacity is devices x slotsPerDevice. 0 derives the
     * slot count from the device's channel pool and the protection
     * policy's per-task limit (maxChannels / perTaskLimit), mirroring
     * the Section 6.3 user bound.
     */
    std::size_t slotsPerDevice = 0;

    /**
     * Aggregate per-device fair-queueing virtual times into a global
     * cross-device clock that steers placement toward the most-lagging
     * device and triggers migration. Off = admitted sessions go
     * through the fleet's placement policy unchanged.
     */
    bool useGlobalClock = false;

    /**
     * Global-clock sampling/steering period. Also one of the two
     * cadences (with the kernel poll period) that bound the sharded
     * core's conservative synchronization window: the serve layer
     * never reacts to cross-device state faster than this, so shards
     * can run that far ahead without observable reordering
     * (resolveShardWindow).
     */
    Tick clockPeriod = msec(20);

    /**
     * Migrate a session off a device once the device's speed-normalized
     * virtual time lags the fleet's most-advanced device by more than
     * this. 0 disables migration.
     */
    Tick migrationLag = msec(50);

    /** Only migrate off devices with at least this many live sessions. */
    std::size_t migrationMinTasks = 2;

    /** Ceiling on total migrations (0 = unlimited); stability valve. */
    std::uint64_t migrationBudget = 0;

    /** Recovery policy for sessions evicted by device failure. */
    RetryConfig retry;

    /** Goodput targets (queue/sojourn/slowdown bounds for "meets SLO"). */
    SloTargetConfig slo;

    /** Per-tenant token-bucket rate limit ahead of admission. */
    TokenBucketConfig rateLimit;

    /** Priority/QoS classes and batch preemption. */
    QosConfig qos;

    /** SLO-driven predictive shedding at the admission front door. */
    PredictiveShedConfig shed;
};

} // namespace neon

#endif // NEON_SERVE_SERVE_CONFIG_HH
