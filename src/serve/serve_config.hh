/**
 * @file
 * Configuration for the open-system serving layer (src/serve).
 *
 * The serving layer turns the closed, spawn-everything-at-t0 harness
 * into an open system: sessions arrive by a stochastic or traced
 * process, queue in an AdmissionController while the fleet is at
 * channel capacity, are placed (optionally steered by the
 * GlobalVirtualClock), run for a finite lifetime, may migrate between
 * devices, and depart.
 */

#ifndef NEON_SERVE_SERVE_CONFIG_HH
#define NEON_SERVE_SERVE_CONFIG_HH

#include <cstddef>
#include <string>

#include "sim/types.hh"

namespace neon
{

/** Order in which queued placement requests are released. */
enum class AdmissionKind
{
    /** Arrival order. */
    Fifo,

    /**
     * Smallest expected-demand hint first (shortest-expected-demand;
     * ties broken by arrival order). Cuts mean queueing delay at the
     * cost of potentially delaying heavy tenants.
     */
    ShortestDemand,

    /**
     * The pending request whose tenant currently holds the fewest live
     * sessions goes first (max-min fair share across tenants; ties
     * broken by arrival order).
     */
    FairShare,
};

/** Display name of an admission policy. */
std::string admissionKindName(AdmissionKind k);

/**
 * Retry policy for sessions interrupted by device failure. An evicted
 * session re-enters admission after a capped exponential backoff; once
 * the budget is spent (or the fleet stays hopeless), it is shed.
 */
struct RetryConfig
{
    /** Retry attempts before the session is shed (fast-failed). */
    int maxRetries = 3;

    /** First backoff; attempt k waits base << k, capped below. */
    Tick backoffBase = msec(2);

    /** Ceiling on any single backoff. */
    Tick backoffCap = msec(64);
};

/**
 * Service-level objective targets for goodput accounting. A departed,
 * un-killed session "meets SLO" when it satisfies every configured
 * target; goodput is the fraction of such sessions (SloReport::goodput,
 * and per window in the analysis plane's timeline). Both targets off
 * (the default) keeps goodput reporting untargeted: every departure
 * counts as met.
 */
struct SloTargetConfig
{
    /** Admission-to-departure residency bound (0 = no target). */
    Tick sojournTarget = 0;

    /**
     * Bound on per-session slowdown vs. the class's isolated solo
     * baseline (0 = no target). Needs the runner's with_slowdowns
     * baselines; the windowed timeline uses the sojourn target only.
     */
    double slowdownTarget = 0.0;

    bool any() const { return sojournTarget > 0 || slowdownTarget > 0.0; }
};

/** Serving-layer configuration. */
struct ServeConfig
{
    /** Queued-request release order. */
    AdmissionKind admission = AdmissionKind::Fifo;

    /**
     * Live-session capacity per device ("channel slots"). The fleet's
     * admission capacity is devices x slotsPerDevice. 0 derives the
     * slot count from the device's channel pool and the protection
     * policy's per-task limit (maxChannels / perTaskLimit), mirroring
     * the Section 6.3 user bound.
     */
    std::size_t slotsPerDevice = 0;

    /**
     * Aggregate per-device fair-queueing virtual times into a global
     * cross-device clock that steers placement toward the most-lagging
     * device and triggers migration. Off = admitted sessions go
     * through the fleet's placement policy unchanged.
     */
    bool useGlobalClock = false;

    /**
     * Global-clock sampling/steering period. Also one of the two
     * cadences (with the kernel poll period) that bound the sharded
     * core's conservative synchronization window: the serve layer
     * never reacts to cross-device state faster than this, so shards
     * can run that far ahead without observable reordering
     * (resolveShardWindow).
     */
    Tick clockPeriod = msec(20);

    /**
     * Migrate a session off a device once the device's speed-normalized
     * virtual time lags the fleet's most-advanced device by more than
     * this. 0 disables migration.
     */
    Tick migrationLag = msec(50);

    /** Only migrate off devices with at least this many live sessions. */
    std::size_t migrationMinTasks = 2;

    /** Ceiling on total migrations (0 = unlimited); stability valve. */
    std::uint64_t migrationBudget = 0;

    /** Recovery policy for sessions evicted by device failure. */
    RetryConfig retry;

    /** Goodput targets (sojourn/slowdown bounds for "meets SLO"). */
    SloTargetConfig slo;
};

} // namespace neon

#endif // NEON_SERVE_SERVE_CONFIG_HH
