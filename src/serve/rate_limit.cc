#include "serve/rate_limit.hh"

#include <cmath>

#include "sim/logging.hh"

namespace neon
{

TokenBucket::TokenBucket(const TokenBucketConfig &cfg)
{
    if (!cfg.enabled())
        panic("token bucket: ratePerSec must be positive");
    if (cfg.burst < 1.0)
        panic("token bucket: burst must be at least one token");

    period = static_cast<Tick>(std::llround(1e9 / cfg.ratePerSec));
    if (period < 1)
        period = 1;
    capacity = static_cast<Tick>(std::llround(cfg.burst *
                                              static_cast<double>(period)));
    balance = capacity; // full at creation: the first burst is free
}

void
TokenBucket::refill(Tick now)
{
    if (now < lastRefill)
        panic("token bucket: virtual time moved backwards");
    const Tick credit = now - lastRefill;
    lastRefill = now;
    balance = std::min<Tick>(capacity, balance + credit);
}

bool
TokenBucket::tryAcquire(Tick now)
{
    refill(now);
    if (balance < period)
        return false;
    balance -= period;
    return true;
}

std::uint64_t
TokenBucket::availableTokens(Tick now)
{
    refill(now);
    return static_cast<std::uint64_t>(balance / period);
}

bool
TenantRateLimiter::allow(const std::string &tenant, Tick now)
{
    if (!cfg.enabled()) {
        ++nPassed;
        return true;
    }

    auto it = buckets.find(tenant);
    if (it == buckets.end())
        it = buckets.emplace(tenant, TokenBucket(cfg)).first;

    if (it->second.tryAcquire(now)) {
        ++nPassed;
        return true;
    }
    ++nThrottled;
    ++throttledByTenant[tenant];
    return false;
}

std::uint64_t
TenantRateLimiter::throttledOf(const std::string &tenant) const
{
    auto it = throttledByTenant.find(tenant);
    return it == throttledByTenant.end() ? 0 : it->second;
}

} // namespace neon
