/**
 * @file
 * SLO-driven predictive admission: estimate the queueing delay an
 * arriving session would suffer and shed it at the front door when the
 * estimate exceeds its class's queue budget.
 *
 * The model is a fluid M/G/c approximation: the queued work ahead of
 * the arrival (per-class EWMA holding-time estimates, seeded from the
 * configured lifetime means) drains at `capacity x drainFactor` slots'
 * worth of service per tick, where drainFactor discounts the nominal
 * slot count by the fleet's observed speed-normalized advance (from
 * GlobalVirtualClock samples) — a fleet running slow or degraded sheds
 * earlier. Everything is plain arithmetic on values produced in
 * control-plane order, so decisions are deterministic across repeats
 * and shard counts.
 */

#ifndef NEON_SERVE_SLO_ADMISSION_HH
#define NEON_SERVE_SLO_ADMISSION_HH

#include <cstddef>
#include <map>
#include <string>

#include "serve/serve_config.hh"
#include "sim/types.hh"

namespace neon
{

/** Outcome of one front-door prediction. */
struct ShedDecision
{
    bool shed = false;   ///< prediction exceeded the budget
    Tick predicted = 0;  ///< estimated queueing delay
    Tick budget = 0;     ///< class queue budget compared against
};

/** Per-class holding-time estimator + fleet drain model. */
class SloAdmission
{
  public:
    explicit SloAdmission(const PredictiveShedConfig &cfg) : cfg(cfg) {}

    /**
     * Prime a class's holding estimate from its configured lifetime
     * mean, so the first predictions are sane before any departure has
     * been observed. A zero/unknown mean primes to the floor.
     */
    void seedHold(const std::string &label, Tick mean);

    /** Fold an observed admission-to-end holding time into the EWMA. */
    void noteHold(const std::string &label, Tick held);

    /** Current holding estimate of a class (>= cfg.holdFloor). */
    Tick holdOf(const std::string &label) const;

    /**
     * Fold a fleet progress observation: @p ratio is the observed
     * speed-normalized vtime advance over nominal (1.0 = fleet serving
     * at full configured speed). Clamped into [0.05, 1.0] so a paused
     * fleet predicts huge-but-finite delays.
     */
    void noteDrainRatio(double ratio);

    /** Smoothed drain discount in [0.05, 1.0] (1.0 until sampled). */
    double drainFactor() const { return drain; }

    /**
     * Pure prediction kernel (unit-testable without an engine):
     * queueing delay for work of @p aheadWork ticks queued ahead plus
     * @p residual ticks until the first slot frees, drained by
     * @p capacity slots discounted by @p drainFactor.
     */
    static Tick predictDelay(Tick aheadWork, Tick residual,
                             std::size_t capacity, double drainFactor);

    /**
     * Front-door decision for an arrival with queue budget @p budget:
     * shed iff safety x predicted > budget. A zero budget never sheds
     * (no queue target configured for the class).
     */
    ShedDecision decide(Tick aheadWork, Tick residual,
                        std::size_t capacity, Tick budget) const;

  private:
    PredictiveShedConfig cfg;
    std::map<std::string, Tick> holds; ///< per-class EWMA, ticks
    double drain = 1.0;
    bool drainSampled = false;
};

} // namespace neon

#endif // NEON_SERVE_SLO_ADMISSION_HH
