#include "serve/slo_admission.hh"

#include <algorithm>
#include <cmath>

namespace neon
{

void
SloAdmission::seedHold(const std::string &label, Tick mean)
{
    holds[label] = std::max(mean, cfg.holdFloor);
}

void
SloAdmission::noteHold(const std::string &label, Tick held)
{
    held = std::max(held, cfg.holdFloor);
    auto it = holds.find(label);
    if (it == holds.end()) {
        holds[label] = held;
        return;
    }
    const double a = cfg.holdAlpha;
    const double next = a * static_cast<double>(held) +
                        (1.0 - a) * static_cast<double>(it->second);
    it->second = std::max(static_cast<Tick>(std::llround(next)),
                          cfg.holdFloor);
}

Tick
SloAdmission::holdOf(const std::string &label) const
{
    auto it = holds.find(label);
    return it == holds.end() ? cfg.holdFloor : it->second;
}

void
SloAdmission::noteDrainRatio(double ratio)
{
    ratio = std::clamp(ratio, 0.05, 1.0);
    if (!drainSampled) {
        drain = ratio;
        drainSampled = true;
        return;
    }
    drain = std::clamp(cfg.holdAlpha * ratio + (1.0 - cfg.holdAlpha) * drain,
                       0.05, 1.0);
}

Tick
SloAdmission::predictDelay(Tick aheadWork, Tick residual,
                           std::size_t capacity, double drainFactor)
{
    if (capacity == 0)
        return maxTick; // fully-down fleet: nothing ever drains

    const double servers = static_cast<double>(capacity) *
                           std::clamp(drainFactor, 0.05, 1.0);
    const double delay =
        static_cast<double>(aheadWork + residual) / servers;
    if (delay >= static_cast<double>(maxTick))
        return maxTick;
    return static_cast<Tick>(std::llround(delay));
}

ShedDecision
SloAdmission::decide(Tick aheadWork, Tick residual, std::size_t capacity,
                     Tick budget) const
{
    ShedDecision d;
    d.budget = budget;
    d.predicted = predictDelay(aheadWork, residual, capacity, drain);
    if (!cfg.enabled || budget <= 0)
        return d; // no shedding without a master switch and a target

    const double margin =
        cfg.safety * static_cast<double>(d.predicted);
    d.shed = margin > static_cast<double>(budget);
    return d;
}

} // namespace neon
