/**
 * @file
 * Per-tenant token-bucket rate limiting ahead of the AdmissionController.
 *
 * Buckets hold integer tick-units (one token == `period` ticks of
 * credit, with period = 1e9 / ratePerSec), refill 1:1 with virtual
 * time, and are full at creation. All arithmetic past the one-time
 * rounding of period and capacity is exact integer math on the virtual
 * clock, so decisions are bit-identical across repeats and shard
 * counts. The limiter is pure bookkeeping like the AdmissionController:
 * it never touches the fleet or the event queue.
 */

#ifndef NEON_SERVE_RATE_LIMIT_HH
#define NEON_SERVE_RATE_LIMIT_HH

#include <cstdint>
#include <map>
#include <string>

#include "serve/serve_config.hh"
#include "sim/types.hh"

namespace neon
{

/** One tenant's bucket. Balance and capacity are in tick-units. */
class TokenBucket
{
  public:
    TokenBucket(const TokenBucketConfig &cfg);

    /**
     * Refill up to @p now and try to spend one token. Returns true if
     * the token was available (arrival passes), false if the bucket is
     * empty (arrival throttled). @p now must be non-decreasing across
     * calls — virtual time, not wall time.
     */
    bool tryAcquire(Tick now);

    /** Whole tokens currently available at @p now (refills first). */
    std::uint64_t availableTokens(Tick now);

    /** Ticks of credit one token costs (1e9 / ratePerSec, rounded). */
    Tick tokenPeriod() const { return period; }

    /** Bucket capacity in tick-units (burst * period, rounded). */
    Tick capacityTicks() const { return capacity; }

  private:
    void refill(Tick now);

    Tick period = 0;     ///< tick-units per token
    Tick capacity = 0;   ///< max balance
    Tick balance = 0;    ///< current credit, tick-units
    Tick lastRefill = 0; ///< virtual time of last refill
};

/**
 * The front door's rate limiter: one lazily-created TokenBucket per
 * tenant, all built from the same config template. Disabled config
 * (ratePerSec == 0) admits everything and creates nothing.
 */
class TenantRateLimiter
{
  public:
    explicit TenantRateLimiter(const TokenBucketConfig &cfg) : cfg(cfg) {}

    /**
     * Charge an arrival of @p tenant at virtual time @p now against
     * its bucket. True = pass on to admission; false = throttle (the
     * caller records the session with a Throttled outcome — throttled
     * arrivals are counted, never silently dropped).
     */
    bool allow(const std::string &tenant, Tick now);

    bool enabled() const { return cfg.enabled(); }
    std::uint64_t passed() const { return nPassed; }
    std::uint64_t throttled() const { return nThrottled; }

    /** Throttled arrivals of one tenant (tests/metrics). */
    std::uint64_t throttledOf(const std::string &tenant) const;

  private:
    TokenBucketConfig cfg;
    std::map<std::string, TokenBucket> buckets;
    std::map<std::string, std::uint64_t> throttledByTenant;
    std::uint64_t nPassed = 0;
    std::uint64_t nThrottled = 0;
};

} // namespace neon

#endif // NEON_SERVE_RATE_LIMIT_HH
