#include "serve/global_clock.hh"

#include "obs/trace.hh"
#include "sched/vtime_tap.hh"

namespace neon
{

GlobalVirtualClock::GlobalVirtualClock(FleetManager &fleet,
                                       std::size_t slots_per_device)
    : fleet(fleet), slotsPerDevice(slots_per_device)
{
}

std::vector<DeviceClockSample>
GlobalVirtualClock::sample() const
{
    const std::vector<DeviceLoadView> views = fleet.loadViews();
    std::vector<DeviceClockSample> out;
    out.reserve(views.size());
    for (const DeviceLoadView &v : views) {
        DeviceClockSample s;
        s.index = v.index;
        s.speedFactor = v.speedFactor > 0.0 ? v.speedFactor : 1.0;
        s.liveTasks = v.assignedTasks;
        s.up = v.up;
        const auto *tap = dynamic_cast<const VirtualTimeTap *>(
            fleet.stack(v.index).sched.get());
        if (tap) {
            s.hasVtime = true;
            s.vtime = tap->tapSystemVtime();
            s.normVtime = static_cast<Tick>(
                static_cast<double>(s.vtime) * s.speedFactor);
        }
        out.push_back(s);
    }
    return out;
}

Tick
GlobalVirtualClock::fleetVtime() const
{
    const std::vector<DeviceClockSample> devices = sample();
    Tick sum = 0;
    std::size_t n = 0;
    for (const DeviceClockSample &d : devices) {
        if (d.hasVtime) {
            sum += d.normVtime;
            ++n;
        }
    }
    return n > 0 ? sum / static_cast<Tick>(n) : 0;
}

std::size_t
GlobalVirtualClock::placeSteered() const
{
    return pickLagging(sample(), slotsPerDevice);
}

MigrationPlan
GlobalVirtualClock::checkMigration(Tick lag_threshold,
                                   std::size_t min_tasks) const
{
    const MigrationPlan plan = planMigration(
        sample(), lag_threshold, min_tasks, slotsPerDevice);
    NEON_TRACE(obs::TraceCategory::Serve, obs::TraceKind::Instant,
               "clock.lag_check",
               obs::TraceIds{plan.migrate
                                 ? static_cast<std::int16_t>(plan.from)
                                 : std::int16_t(-1),
                             -1, -1},
               plan.lag, plan.migrate ? 1 : 0);
    return plan;
}

std::size_t
GlobalVirtualClock::pickLagging(
    const std::vector<DeviceClockSample> &devices,
    std::size_t slots_per_device)
{
    // Most-lagging (lowest normalized vtime) device with a free slot;
    // ties break toward fewer live sessions, then lower index, so an
    // all-idle fleet fills in index order. Devices without a vtime tap
    // sort as maximally lagging (vtime 0).
    bool have = false;
    std::size_t best = 0;
    Tick best_v = 0;
    std::size_t best_tasks = 0;
    for (const DeviceClockSample &d : devices) {
        if (!d.up || d.liveTasks >= slots_per_device)
            continue;
        const Tick v = d.hasVtime ? d.normVtime : 0;
        if (!have || v < best_v ||
            (v == best_v && d.liveTasks < best_tasks)) {
            have = true;
            best = d.index;
            best_v = v;
            best_tasks = d.liveTasks;
        }
    }
    if (have)
        return best;

    // Every up device is at capacity (the admission controller normally
    // prevents this): least-crowded up device wins; only an all-down
    // fleet falls back to ignoring availability.
    bool have_up = false;
    for (const DeviceClockSample &d : devices)
        have_up = have_up || d.up;
    bool seeded = false;
    best = devices.empty() ? 0 : devices[0].index;
    for (const DeviceClockSample &d : devices) {
        if (have_up && !d.up)
            continue;
        if (!seeded || d.liveTasks < best_tasks) {
            seeded = true;
            best = d.index;
            best_tasks = d.liveTasks;
        }
    }
    return best;
}

MigrationPlan
GlobalVirtualClock::planMigration(
    const std::vector<DeviceClockSample> &devices, Tick lag_threshold,
    std::size_t min_tasks, std::size_t slots_per_device)
{
    MigrationPlan plan;
    if (lag_threshold <= 0)
        return plan;

    // From: lowest normalized vtime among devices crowded enough to be
    // worth relieving. To: highest normalized vtime with a free slot.
    bool have_from = false, have_to = false;
    std::size_t from = 0, to = 0;
    Tick from_v = 0, to_v = 0;
    for (const DeviceClockSample &d : devices) {
        if (!d.hasVtime || !d.up)
            continue;
        if (d.liveTasks >= min_tasks &&
            (!have_from || d.normVtime < from_v)) {
            have_from = true;
            from = d.index;
            from_v = d.normVtime;
        }
        if (d.liveTasks < slots_per_device &&
            (!have_to || d.normVtime > to_v)) {
            have_to = true;
            to = d.index;
            to_v = d.normVtime;
        }
    }

    if (!have_from || !have_to || from == to)
        return plan;
    if (to_v - from_v <= lag_threshold)
        return plan;

    plan.migrate = true;
    plan.from = from;
    plan.to = to;
    plan.lag = to_v - from_v;
    return plan;
}

} // namespace neon
