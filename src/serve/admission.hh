/**
 * @file
 * Fleet admission control: a bounded pool of live-session slots and a
 * policy-ordered queue of placement requests waiting for one.
 *
 * The controller is pure bookkeeping — it never touches the fleet or
 * the event queue. The ServeEngine asks it on every arrival (admit now
 * or queue?) and on every departure (which queued request, if any,
 * takes the freed slot?), so the policies stay unit-testable with
 * hand-built sequences.
 */

#ifndef NEON_SERVE_ADMISSION_HH
#define NEON_SERVE_ADMISSION_HH

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "serve/serve_config.hh"
#include "sim/types.hh"

namespace neon
{

/** One queued admission request. */
struct QueuedRequest
{
    std::uint64_t session = 0; ///< serve-layer session id
    std::string tenant;        ///< fair-share principal
    double demand = 1.0;       ///< expected-demand hint
    Tick enqueued = 0;         ///< arrival time (FIFO order basis)

    /**
     * Interrupted session returning through retry: it already paid its
     * queueing delay, so it may take a free slot past the queue and is
     * released ahead of ordinary requests (FIFO among priorities).
     */
    bool priority = false;

    /**
     * QoS release rank (qosPriorityOf; lower releases first). All
     * requests share rank 0 when QoS classes are off, which keeps the
     * release order bit-identical to the pre-QoS engine.
     */
    int qosPriority = 0;

    /**
     * Absolute queue deadline (arrival + class queue budget); 0 means
     * none and sorts after every real deadline. Breaks release ties
     * within a QoS rank and policy key ahead of the session id.
     */
    Tick deadline = 0;
};

/** Slot-capacity admission control with pluggable release order. */
class AdmissionController
{
  public:
    AdmissionController(AdmissionKind kind, std::size_t capacity);

    /**
     * A session arrived. Returns true if it was admitted immediately
     * (a slot was free and nothing was queued ahead of it); otherwise
     * the request is queued and false is returned.
     */
    bool arrive(const QueuedRequest &req);

    /**
     * A live session departed (retirement or kill): its slot is freed
     * and, if requests are queued, the policy picks one to admit.
     * Returns the released request, already accounted as live.
     */
    std::optional<QueuedRequest> depart(const std::string &tenant);

    /**
     * Release one queued request if a slot is free, without a
     * departure. Used when capacity grows (device repair) to drain the
     * queue onto the restored slots; call until it returns nullopt.
     */
    std::optional<QueuedRequest> releaseIfFree();

    /**
     * Retarget the slot pool (device failure/repair). 0 is legal at
     * runtime — a fully-down fleet admits nothing; live sessions above
     * the new capacity stay live and drain through departures.
     */
    void setCapacity(std::size_t n) { slots = n; }

    /** Drop a pending request (session shed while queued). */
    bool removePending(std::uint64_t session);

    std::size_t capacity() const { return slots; }
    std::size_t live() const { return liveCount; }
    std::size_t pendingCount() const { return pending.size(); }
    std::size_t peakPending() const { return peakQueue; }
    std::uint64_t arrivals() const { return nArrivals; }
    std::uint64_t admittedDirect() const { return nDirect; }
    std::uint64_t admittedFromQueue() const { return nReleased; }

    /** Live sessions of @p tenant (fair-share bookkeeping). */
    std::size_t liveOf(const std::string &tenant) const;

    /** Queued requests in arrival order (tests/metrics). */
    const std::vector<QueuedRequest> &queued() const { return pending; }

  private:
    std::size_t pickNext() const; ///< index into pending, per policy

    /**
     * Total deterministic release order: QoS rank, then the policy key
     * (demand / tenant live count; none for FIFO), then deadline, then
     * session id. Never falls back to queue position, so the pick is
     * independent of incidental container order (sharding-safe), yet
     * reduces exactly to the old first-strict-min scan when QoS is off
     * because session ids are monotone in enqueue order.
     */
    bool releasesBefore(const QueuedRequest &a,
                        const QueuedRequest &b) const;

    std::optional<QueuedRequest> releaseOne(); ///< unconditional pick

    void
    noteLive(const std::string &tenant)
    {
        ++liveCount;
        ++liveByTenant[tenant];
    }

    AdmissionKind kind;
    std::size_t slots;
    std::size_t liveCount = 0;
    std::size_t peakQueue = 0;
    std::uint64_t nArrivals = 0;
    std::uint64_t nDirect = 0;
    std::uint64_t nReleased = 0;

    std::vector<QueuedRequest> pending; ///< arrival order
    std::map<std::string, std::size_t> liveByTenant;
};

} // namespace neon

#endif // NEON_SERVE_ADMISSION_HH
