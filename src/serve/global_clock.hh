/**
 * @file
 * GlobalVirtualClock: one speed-normalized virtual clock for the fleet.
 *
 * Each device's fair-queueing policy maintains a system virtual time
 * in its own device-time units: it advances with the per-task service
 * the device delivers, so an idle or over-committed device lags while
 * a lightly loaded one runs ahead. Normalizing by the device's speed
 * factor puts all devices on one work-equivalent scale (the MQFQ /
 * Gavel cross-device analogue of DFQ virtual time). The clock

 * aggregates those normalized times and derives two decisions:
 *
 *  - placement steering: an admitted session goes to the most-lagging
 *    device that still has a free slot (it is the device whose tenants
 *    have received the least normalized service — an idle device lags
 *    maximally and attracts work first);
 *  - migration: when a device lags the fleet's most-advanced device by
 *    more than a threshold, its locally most-ahead session moves to
 *    that ahead device, narrowing the spread from both sides.
 *
 * Decision logic is pure/static over DeviceClockSample vectors so it
 * unit-tests with hand-built snapshots; the instance methods only
 * gather samples from a live fleet.
 */

#ifndef NEON_SERVE_GLOBAL_CLOCK_HH
#define NEON_SERVE_GLOBAL_CLOCK_HH

#include <cstddef>
#include <vector>

#include "fleet/fleet_manager.hh"
#include "sim/types.hh"

namespace neon
{

/** One device's contribution to the global clock. */
struct DeviceClockSample
{
    std::size_t index = 0;
    double speedFactor = 1.0;
    bool hasVtime = false; ///< policy implements VirtualTimeTap
    Tick vtime = 0;        ///< raw system vtime (device-time units)
    Tick normVtime = 0;    ///< vtime x speedFactor (work units)
    std::size_t liveTasks = 0;
    bool up = true;        ///< down devices never steer or host migrants
};

/** A migration decision derived from one clock sample. */
struct MigrationPlan
{
    bool migrate = false;
    std::size_t from = 0; ///< over-committed (lagging) device
    std::size_t to = 0;   ///< most-advanced device with a free slot
    Tick lag = 0;         ///< normalized vtime spread driving the move
};

/** Aggregates per-device virtual times into one fleet clock. */
class GlobalVirtualClock
{
  public:
    /**
     * @p slots_per_device bounds live sessions per device for steering
     * eligibility and migration targets.
     */
    GlobalVirtualClock(FleetManager &fleet, std::size_t slots_per_device);

    /** Snapshot every device's normalized virtual time and live load. */
    std::vector<DeviceClockSample> sample() const;

    /** The fleet clock: mean normalized vtime across tapped devices. */
    Tick fleetVtime() const;

    /** Steered placement for an admitted session. */
    std::size_t placeSteered() const;

    /** Migration decision under the given thresholds. */
    MigrationPlan checkMigration(Tick lag_threshold,
                                 std::size_t min_tasks) const;

    // Pure decision logic (unit-testable with synthetic samples).

    /**
     * Most-lagging device with a free slot; falls back to the device
     * with the fewest live sessions when every device is full.
     */
    static std::size_t
    pickLagging(const std::vector<DeviceClockSample> &devices,
                std::size_t slots_per_device);

    /**
     * From: the most-lagging device with >= @p min_tasks live sessions;
     * To: the most-advanced device with a free slot. Migrate only when
     * the normalized spread between them exceeds @p lag_threshold.
     */
    static MigrationPlan
    planMigration(const std::vector<DeviceClockSample> &devices,
                  Tick lag_threshold, std::size_t min_tasks,
                  std::size_t slots_per_device);

  private:
    FleetManager &fleet;
    std::size_t slotsPerDevice;
};

} // namespace neon

#endif // NEON_SERVE_GLOBAL_CLOCK_HH
