#include "serve/admission.hh"

#include "obs/trace.hh"
#include "sim/logging.hh"

namespace neon
{

std::string
qosClassName(QosClass c)
{
    switch (c) {
      case QosClass::Interactive:
        return "interactive";
      case QosClass::Batch:
        return "batch";
    }
    return "?";
}

std::string
admissionKindName(AdmissionKind k)
{
    switch (k) {
      case AdmissionKind::Fifo:
        return "fifo";
      case AdmissionKind::ShortestDemand:
        return "shortest-demand";
      case AdmissionKind::FairShare:
        return "fair-share";
    }
    return "?";
}

AdmissionController::AdmissionController(AdmissionKind kind,
                                         std::size_t capacity)
    : kind(kind), slots(capacity)
{
    if (capacity == 0)
        panic("admission: capacity must be at least 1");
}

bool
AdmissionController::arrive(const QueuedRequest &req)
{
    ++nArrivals;

    // Even with a free slot, a nonempty queue means someone is ahead;
    // jumping it would undermine the release policy's ordering. A
    // priority request (interrupted session retrying) is the exception:
    // it already served its wait before the fault.
    if (liveCount < slots && (pending.empty() || req.priority)) {
        noteLive(req.tenant);
        ++nDirect;
        NEON_TRACE(obs::TraceCategory::Serve, obs::TraceKind::Instant,
                   "adm.admit_direct",
                   obs::TraceIds{-1, -1,
                                 static_cast<std::int32_t>(req.session)},
                   liveCount, slots);
        return true;
    }

    pending.push_back(req);
    if (pending.size() > peakQueue)
        peakQueue = pending.size();
    NEON_TRACE(obs::TraceCategory::Serve, obs::TraceKind::Instant,
               "adm.enqueue",
               obs::TraceIds{-1, -1,
                             static_cast<std::int32_t>(req.session)},
               pending.size(), liveCount);
    return false;
}

std::optional<QueuedRequest>
AdmissionController::depart(const std::string &tenant)
{
    if (liveCount == 0)
        panic("admission: departure with no live sessions");
    --liveCount;
    auto it = liveByTenant.find(tenant);
    if (it != liveByTenant.end() && it->second > 0) {
        if (--it->second == 0)
            liveByTenant.erase(it);
    }

    return releaseIfFree();
}

std::optional<QueuedRequest>
AdmissionController::releaseIfFree()
{
    if (pending.empty() || liveCount >= slots)
        return std::nullopt;
    return releaseOne();
}

std::optional<QueuedRequest>
AdmissionController::releaseOne()
{
    const std::size_t i = pickNext();
    QueuedRequest out = pending[i];
    pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(i));
    noteLive(out.tenant);
    ++nReleased;
    NEON_TRACE(obs::TraceCategory::Serve, obs::TraceKind::Instant,
               "adm.release",
               obs::TraceIds{-1, -1,
                             static_cast<std::int32_t>(out.session)},
               pending.size(), 0);
    return out;
}

bool
AdmissionController::removePending(std::uint64_t session)
{
    for (std::size_t i = 0; i < pending.size(); ++i) {
        if (pending[i].session == session) {
            pending.erase(pending.begin() +
                          static_cast<std::ptrdiff_t>(i));
            return true;
        }
    }
    return false;
}

std::size_t
AdmissionController::liveOf(const std::string &tenant) const
{
    auto it = liveByTenant.find(tenant);
    return it == liveByTenant.end() ? 0 : it->second;
}

bool
AdmissionController::releasesBefore(const QueuedRequest &a,
                                    const QueuedRequest &b) const
{
    if (a.qosPriority != b.qosPriority)
        return a.qosPriority < b.qosPriority;

    switch (kind) {
      case AdmissionKind::Fifo:
        break; // no policy key; fall through to deadline/id

      case AdmissionKind::ShortestDemand:
        if (a.demand != b.demand)
            return a.demand < b.demand;
        break;

      case AdmissionKind::FairShare: {
        const std::size_t la = liveOf(a.tenant);
        const std::size_t lb = liveOf(b.tenant);
        if (la != lb)
            return la < lb;
        break;
      }
    }

    // 0 = no deadline = infinitely late.
    const Tick da = a.deadline > 0 ? a.deadline : maxTick;
    const Tick db = b.deadline > 0 ? b.deadline : maxTick;
    if (da != db)
        return da < db;

    return a.session < b.session;
}

std::size_t
AdmissionController::pickNext() const
{
    // Interrupted sessions resume before ordinary admissions regardless
    // of policy, FIFO among themselves.
    for (std::size_t i = 0; i < pending.size(); ++i) {
        if (pending[i].priority)
            return i;
    }

    std::size_t best = 0;
    for (std::size_t i = 1; i < pending.size(); ++i) {
        if (releasesBefore(pending[i], pending[best]))
            best = i;
    }
    return best;
}

} // namespace neon
