#include "serve/serve_engine.hh"

#include <algorithm>
#include <utility>

#include "obs/trace.hh"
#include "sched/vtime_tap.hh"
#include "sim/logging.hh"

namespace neon
{

ServeEngine::ServeEngine(EventQueue &eq, FleetManager &fleet,
                         const ServeConfig &cfg,
                         std::vector<ServeClass> classes,
                         std::size_t slots_per_device, std::uint64_t seed)
    : eq(eq), fleet(fleet), cfg(cfg), classes(std::move(classes)),
      slots(slots_per_device), seed(seed),
      adm(cfg.admission, slots_per_device * fleet.deviceCount()),
      clock(fleet, slots_per_device), limiter(cfg.rateLimit),
      shedder(cfg.shed), lifetimeRng(namedStream(seed, "serve.lifetime"))
{
    if (this->classes.empty())
        panic("serve: at least one workload class is required");
    if (slots == 0)
        panic("serve: slotsPerDevice must be at least 1");

    // Prime per-class holding estimates from the configured lifetime
    // means so the first shed predictions are sane before any
    // departure has been observed (forever-lived classes prime to the
    // floor; their holds are unbounded anyway).
    for (const ServeClass &c : this->classes)
        shedder.seedHold(c.label, c.lifetime.finite() ? c.lifetime.mean : 0);

    // Named streams keep workload draws bit-identical whether or not
    // the fault plane (with its own streams) is enabled.
    Rng arrivalsRoot = namedStream(seed, "serve.arrivals");
    arrivalProcs.reserve(this->classes.size());
    for (const ServeClass &c : this->classes) {
        if (!c.makeBody)
            panic("serve: class ", c.label, " has no body factory");
        arrivalProcs.emplace_back(c.arrivals, arrivalsRoot.fork());
    }

    // Protection kills end a session from below the serve layer;
    // finish the lifecycle bookkeeping and free the admission slot.
    fleet.onTaskKilled = [this](Task &t) {
        auto it = byTask.find(&t);
        if (it == byTask.end())
            return;
        const std::uint64_t sid = it->second;
        // Minimal work here: this hook runs inside the kill path, so
        // releasing the slot (which may place and start a queued
        // session) is deferred to a fresh event.
        this->eq.scheduleIn(0, [this, sid] { finalizeKill(sid); });
    };

    // Device failure: capacity shrinks before the evictions land, each
    // evicted session re-queues through retry/backoff, and repair
    // restores capacity and drains the queue onto it.
    fleet.onTaskEvicted = [this](Task &t) { onEviction(t); };
    fleet.onDeviceDown = [this](std::size_t) {
        onFleetCapacityChange();
    };
    fleet.onDeviceUp = [this](std::size_t) {
        onFleetCapacityChange();
        while (auto released = adm.releaseIfFree())
            admitSession(released->session);
    };
}

void
ServeEngine::start()
{
    for (std::size_t c = 0; c < classes.size(); ++c)
        scheduleNextArrival(c);
    if (cfg.useGlobalClock && cfg.clockPeriod > 0) {
        eq.scheduleIn(cfg.clockPeriod, [this] { onClockTick(); });
    }
}

void
ServeEngine::scheduleNextArrival(std::size_t cls)
{
    Tick when = 0;
    if (!arrivalProcs[cls].next(when))
        return; // class exhausted (trace consumed or past `until`)
    if (when < eq.now())
        when = eq.now(); // defensive: never schedule into the past
    eq.schedule(when, [this, cls] { onArrival(cls); });
}

void
ServeEngine::onArrival(std::size_t cls)
{
    const ServeClass &c = classes[cls];
    const std::uint64_t sid = sessions.size();

    auto s = std::make_unique<SessionRecord>();
    s->id = sid;
    s->cls = cls;
    s->label = c.label + "#" + std::to_string(nArrivals);
    s->tenant = c.tenant.empty() ? c.label : c.tenant;
    s->arrived = eq.now();
    sessions.push_back(std::move(s));

    ++nArrivals;
    ++nLive;
    if (nLive > peakLive)
        peakLive = nLive;

    NEON_TRACE(obs::TraceCategory::Serve, obs::TraceKind::AsyncBegin,
               "session",
               obs::TraceIds{-1, -1, static_cast<std::int32_t>(sid)},
               cls, nLive);
    emitSession(SessionEvent::Kind::Arrive, *sessions[sid]);

    // Front door, stage 1: per-tenant token bucket. A throttled
    // arrival is recorded and counted, never silently dropped.
    if (!limiter.allow(sessions[sid]->tenant, eq.now())) {
        throttleSession(*sessions[sid]);
        scheduleNextArrival(cls);
        return;
    }

    const Tick budget = queueBudgetOf(cls);
    QueuedRequest qr;
    qr.session = sid;
    qr.tenant = sessions[sid]->tenant;
    qr.demand = c.demand;
    qr.enqueued = eq.now();
    qr.qosPriority = qosRankOf(cls);
    // Deadline-aware release ordering is part of the QoS feature; off,
    // the budget only drives shedding and goodput, never queue order.
    qr.deadline =
        cfg.qos.enabled && budget > 0 ? eq.now() + budget : 0;

    // Front door, stage 2: SLO prediction — but only for an arrival
    // that would actually queue; with a free slot and an empty queue
    // the delay is zero and admission is immediate.
    const bool wouldQueue =
        adm.live() >= adm.capacity() || adm.pendingCount() > 0;
    if (wouldQueue && cfg.shed.enabled && budget > 0) {
        const Tick residual =
            adm.live() >= adm.capacity() ? shedder.holdOf(c.label) / 2 : 0;
        const ShedDecision d = shedder.decide(
            queuedWorkAhead(qr.qosPriority), residual, adm.capacity(),
            budget);
        if (d.shed) {
            shedAtFrontDoor(*sessions[sid], d);
            scheduleNextArrival(cls);
            return;
        }
    }

    if (adm.arrive(qr)) {
        admitSession(sid);
    } else if (cfg.qos.enabled && cfg.qos.preemption &&
               !adm.queued().empty()) {
        // Queued interactive arrivals may displace a live batch
        // incarnation; the freed slot releases the queue's best
        // request (priority retries first, then this arrival by QoS
        // rank), so the preemption is never wasted on a worse pick.
        tryPreempt(qr.qosPriority);
    }

    scheduleNextArrival(cls);
}

void
ServeEngine::admitSession(std::uint64_t sid)
{
    SessionRecord &s = *sessions[sid];
    const ServeClass &c = classes[s.cls];
    // A session with more evictions than failovers is resuming after a
    // device failure; a preempted one resumes without counting as a
    // fault failover. Both restart the frozen departure clock.
    const bool faultResume = s.evictions > s.failovers;
    const bool resuming = faultResume || s.preemptResume;
    s.preemptResume = false;
    if (s.admitted < 0)
        s.admitted = eq.now();

    PlacementRequest req;
    req.label = s.label;
    req.affinityKey = c.affinityKey;
    req.demand = c.demand;

    // Steered placement consults the global clock; otherwise the
    // fleet's placement policy decides (consulted mid-run — load
    // snapshots now reflect arrivals and departures, not spawn order).
    Task *t = cfg.useGlobalClock
        ? &fleet.createTaskOn(clock.placeSteered(), req)
        : &fleet.createTask(req);

    s.task = t;
    s.device = fleet.deviceOf(*t);
    s.devices.push_back(s.device);
    byTask[t] = sid;

    const obs::TraceIds admit_ids{static_cast<std::int16_t>(s.device),
                                  t->pid(),
                                  static_cast<std::int32_t>(sid)};
    if (faultResume) {
        ++s.failovers;
        ++nFailovers;
        NEON_TRACE(obs::TraceCategory::Fault, obs::TraceKind::Instant,
                   "serve.failover", admit_ids, s.evictions, s.retries);
        NEON_TRACE(obs::TraceCategory::Serve, obs::TraceKind::FlowStep,
                   "session.flow", admit_ids, 0, 0);
    } else if (resuming) {
        NEON_TRACE(obs::TraceCategory::Serve, obs::TraceKind::Instant,
                   "serve.preempt_resume", admit_ids, s.preemptions, 0);
        NEON_TRACE(obs::TraceCategory::Serve, obs::TraceKind::FlowStep,
                   "session.flow", admit_ids, 0, 0);
    } else {
        NEON_TRACE(obs::TraceCategory::Serve, obs::TraceKind::Instant,
                   "serve.admit", admit_ids, s.admitted - s.arrived, 0);
        NEON_TRACE(obs::TraceCategory::Serve, obs::TraceKind::FlowStart,
                   "session.flow", admit_ids, 0, 0);
    }
    emitSession(SessionEvent::Kind::Admit, s,
                static_cast<std::int32_t>(s.device));

    startBody(s);

    if (resuming) {
        // The departure clock stopped at eviction; resume it from the
        // frozen remainder (none = infinite-lifetime session).
        if (s.remainingLifetime >= 0) {
            s.departAt = eq.now() + s.remainingLifetime;
            s.departureEv = eq.scheduleIn(
                s.remainingLifetime, [this, sid] { onDeparture(sid); });
            s.remainingLifetime = -1;
        }
    } else if (c.lifetime.finite()) {
        const Tick life = c.lifetime.sample(lifetimeRng);
        s.departAt = eq.now() + life;
        s.departureEv =
            eq.scheduleIn(life, [this, sid] { onDeparture(sid); });
    }
}

void
ServeEngine::startBody(SessionRecord &s)
{
    const ServeClass &c = classes[s.cls];
    fleet.startTask(*s.task, c.makeBody(*s.task, bodySeed(s)));
    ++s.incarnation;
}

std::uint64_t
ServeEngine::bodySeed(const SessionRecord &s) const
{
    // Distinct stream per (engine seed, session, incarnation) so a
    // migrated body replays different jitter than its predecessor.
    return (seed ^ ((s.id + 1) * 0x9e3779b97f4a7c15ull)) +
        0x1000ull * static_cast<std::uint64_t>(s.incarnation + 1);
}

void
ServeEngine::onDeparture(std::uint64_t sid)
{
    SessionRecord &s = *sessions[sid];
    if (s.done)
        return; // killed while the departure event was in flight
    if (!s.task)
        return; // evicted same-tick: the retry path owns this session
    if (s.task->killed())
        return; // same-tick kill: finalizeKill owns this session

    {
        const obs::TraceIds depart_ids{static_cast<std::int16_t>(s.device),
                                       s.task->pid(),
                                       static_cast<std::int32_t>(sid)};
        NEON_TRACE(obs::TraceCategory::Serve, obs::TraceKind::Instant,
                   "serve.depart", depart_ids, eq.now() - s.arrived, 0);
        NEON_TRACE(obs::TraceCategory::Serve, obs::TraceKind::FlowEnd,
                   "session.flow", depart_ids, 0, 0);
        NEON_TRACE(obs::TraceCategory::Serve, obs::TraceKind::AsyncEnd,
                   "session", depart_ids, 0, 0);
    }
    byTask.erase(s.task);
    // Retire first: aborting an in-flight request charges its device
    // occupancy to this pid, and the snapshot must include it.
    fleet.retireTask(*s.task);
    endIncarnation(s);
    s.task = nullptr;
    s.departureEv = invalidEventId;
    s.departAt = -1;
    s.departed = eq.now();
    s.done = true;
    --nLive;
    ++nDepartures;
    if (s.admitted >= 0)
        shedder.noteHold(classes[s.cls].label, eq.now() - s.admitted);
    // Before freeSlot: a release there admits the next queued session,
    // and its Admit must follow this Depart in listener order.
    emitSession(SessionEvent::Kind::Depart, s);

    freeSlot(s.tenant);
}

void
ServeEngine::finalizeKill(std::uint64_t sid)
{
    SessionRecord &s = *sessions[sid];
    if (s.done)
        return;

    {
        const obs::TraceIds kill_ids{static_cast<std::int16_t>(s.device),
                                     s.task ? s.task->pid() : -1,
                                     static_cast<std::int32_t>(sid)};
        NEON_TRACE(obs::TraceCategory::Serve, obs::TraceKind::Instant,
                   "serve.session_killed", kill_ids, eq.now() - s.arrived,
                   0);
        NEON_TRACE(obs::TraceCategory::Serve, obs::TraceKind::FlowEnd,
                   "session.flow", kill_ids, 0, 0);
        NEON_TRACE(obs::TraceCategory::Serve, obs::TraceKind::AsyncEnd,
                   "session", kill_ids, 0, 0);
    }
    endIncarnation(s);
    byTask.erase(s.task);
    eq.cancel(s.departureEv);
    s.departureEv = invalidEventId;
    eq.cancel(s.retryEv);
    s.retryEv = invalidEventId;
    s.departAt = -1;
    s.task = nullptr;
    s.departed = eq.now();
    s.done = true;
    s.killed = true;
    --nLive;
    ++nKilled;
    if (s.admitted >= 0)
        shedder.noteHold(classes[s.cls].label, eq.now() - s.admitted);
    emitSession(SessionEvent::Kind::Kill, s);

    freeSlot(s.tenant);
}

void
ServeEngine::onEviction(Task &t)
{
    auto it = byTask.find(&t);
    if (it == byTask.end()) {
        // Not a live serve incarnation (already departing); let the
        // fleet's default disposition tear it down.
        fleet.retireTask(t);
        return;
    }
    const std::uint64_t sid = it->second;
    SessionRecord &s = *sessions[sid];
    byTask.erase(it);

    // Retire the incarnation on the dead device (its in-flight request
    // was already lost and charged by the device's forceDown), snapshot
    // its usage, then freeze the departure clock.
    fleet.retireTask(t);
    endIncarnation(s);
    s.task = nullptr;
    ++s.evictions;
    ++nEvicted;

    if (s.departureEv != invalidEventId) {
        eq.cancel(s.departureEv);
        s.departureEv = invalidEventId;
        s.remainingLifetime = std::max<Tick>(0, s.departAt - eq.now());
        s.departAt = -1;
    } else {
        s.remainingLifetime = -1; // infinite lifetime stays infinite
    }

    NEON_TRACE(obs::TraceCategory::Fault, obs::TraceKind::Instant,
               "serve.evict",
               obs::TraceIds{static_cast<std::int16_t>(s.device), -1,
                             static_cast<std::int32_t>(sid)},
               s.evictions, s.remainingLifetime);
    emitSession(SessionEvent::Kind::Evict, s,
                static_cast<std::int32_t>(s.device));

    // The slot it held is returned (capacity already shrank via
    // onDeviceDown, so this normally releases nobody).
    freeSlot(s.tenant);
    scheduleRetry(s);
}

void
ServeEngine::onFleetCapacityChange()
{
    adm.setCapacity(slots * fleet.upDeviceCount());
}

void
ServeEngine::scheduleRetry(SessionRecord &s)
{
    if (s.retries >= cfg.retry.maxRetries) {
        shedSession(s);
        return;
    }
    Tick backoff = cfg.retry.backoffBase << s.retries;
    if (backoff > cfg.retry.backoffCap || backoff <= 0)
        backoff = cfg.retry.backoffCap;
    ++s.retries;

    const std::uint64_t sid = s.id;
    s.retryEv = eq.scheduleIn(backoff, [this, sid] { retryArrive(sid); });
    NEON_TRACE(obs::TraceCategory::Fault, obs::TraceKind::Instant,
               "serve.retry_backoff",
               obs::TraceIds{-1, -1, static_cast<std::int32_t>(s.id)},
               s.retries, backoff);
}

void
ServeEngine::retryArrive(std::uint64_t sid)
{
    SessionRecord &s = *sessions[sid];
    s.retryEv = invalidEventId;
    if (s.done)
        return;

    // Hopeless fleet (everything down): burn another backoff round
    // rather than queueing toward capacity that may never return.
    if (fleet.upDeviceCount() == 0 || adm.capacity() == 0) {
        scheduleRetry(s);
        return;
    }

    ++nRetries;
    // Past the hopeless-fleet check only: a re-backoff above stays in
    // the stall phase, while this point re-enters the admission queue.
    NEON_TRACE(obs::TraceCategory::Fault, obs::TraceKind::Instant,
               "serve.retry_arrive",
               obs::TraceIds{-1, -1, static_cast<std::int32_t>(sid)},
               s.retries, 0);
    emitSession(SessionEvent::Kind::RetryEnqueue, s);
    const ServeClass &c = classes[s.cls];
    QueuedRequest qr;
    qr.session = sid;
    qr.tenant = s.tenant;
    qr.demand = c.demand;
    qr.enqueued = eq.now();
    qr.priority = true;
    if (adm.arrive(qr))
        admitSession(sid);
    // else: queued at priority; a departure or repair releases it.
}

void
ServeEngine::shedSession(SessionRecord &s)
{
    eq.cancel(s.retryEv);
    s.retryEv = invalidEventId;
    adm.removePending(s.id);
    s.remainingLifetime = -1;
    s.shed = true;
    s.done = true;
    --nLive;
    ++nShed;

    const obs::TraceIds shed_ids{-1, -1,
                                 static_cast<std::int32_t>(s.id)};
    NEON_TRACE(obs::TraceCategory::Fault, obs::TraceKind::Instant,
               "serve.shed", shed_ids, s.retries, eq.now() - s.arrived);
    NEON_TRACE(obs::TraceCategory::Serve, obs::TraceKind::FlowEnd,
               "session.flow", shed_ids, 0, 0);
    NEON_TRACE(obs::TraceCategory::Serve, obs::TraceKind::AsyncEnd,
               "session", shed_ids, 0, 0);
    emitSession(SessionEvent::Kind::Shed, s);
}

void
ServeEngine::throttleSession(SessionRecord &s)
{
    s.throttled = true;
    s.done = true;
    --nLive;
    ++nThrottled;

    const obs::TraceIds ids{-1, -1, static_cast<std::int32_t>(s.id)};
    NEON_TRACE(obs::TraceCategory::Serve, obs::TraceKind::Instant,
               "serve.throttle", ids,
               limiter.throttledOf(s.tenant), 0);
    NEON_TRACE(obs::TraceCategory::Serve, obs::TraceKind::AsyncEnd,
               "session", ids, 0, 0);
    emitSession(SessionEvent::Kind::Throttle, s);
}

void
ServeEngine::shedAtFrontDoor(SessionRecord &s, const ShedDecision &d)
{
    s.shed = true;
    s.shedPredicted = true;
    s.done = true;
    --nLive;
    ++nShed;
    ++nShedPredicted;

    const obs::TraceIds ids{-1, -1, static_cast<std::int32_t>(s.id)};
    NEON_TRACE(obs::TraceCategory::Serve, obs::TraceKind::Instant,
               "serve.shed_predicted", ids, d.predicted, d.budget);
    NEON_TRACE(obs::TraceCategory::Serve, obs::TraceKind::AsyncEnd,
               "session", ids, 0, 0);
    emitSession(SessionEvent::Kind::Shed, s);
}

Tick
ServeEngine::queuedWorkAhead(int rank) const
{
    // Only work that would release before (or tied with) an arrival of
    // @p rank delays it: with QoS on, an interactive request jumps the
    // batch backlog, so batch holds must not inflate its prediction.
    // With QoS off every request carries rank 0 and all queued work
    // counts, exactly the rank-blind model.
    Tick work = 0;
    for (const QueuedRequest &r : adm.queued()) {
        if (r.qosPriority > rank)
            continue;
        work += shedder.holdOf(classes[sessions[r.session]->cls].label);
    }
    return work;
}

Tick
ServeEngine::queueBudgetOf(std::size_t cls) const
{
    const Tick own = classes[cls].queueBudget;
    return own > 0 ? own : cfg.slo.queueTarget;
}

int
ServeEngine::qosRankOf(std::size_t cls) const
{
    return cfg.qos.enabled ? qosPriorityOf(classes[cls].qos) : 0;
}

bool
ServeEngine::tryPreempt(int arrivingRank)
{
    // Transient free capacity (device repair mid-queue) beats paying
    // for a preemption.
    if (auto released = adm.releaseIfFree()) {
        admitSession(released->session);
        return true;
    }

    // Victim: the lowest-priority live incarnation, youngest first
    // (least sunk service wasted), strictly below the arriving rank.
    // byTask is keyed by task address, so every tie must break on
    // session state only — never map order (heap layout varies).
    SessionRecord *victim = nullptr;
    for (const auto &kv : byTask) {
        SessionRecord &s = *sessions[kv.second];
        if (s.done || !s.task || !s.task->alive())
            continue;
        const int rank = qosRankOf(s.cls);
        if (rank <= arrivingRank)
            continue;
        if (!victim || rank > qosRankOf(victim->cls) ||
            (rank == qosRankOf(victim->cls) &&
             (s.admitted > victim->admitted ||
              (s.admitted == victim->admitted && s.id > victim->id)))) {
            victim = &s;
        }
    }
    if (!victim)
        return false;

    preemptSession(*victim);
    return true;
}

void
ServeEngine::preemptSession(SessionRecord &s)
{
    // Identical bookkeeping to a fault eviction — retire the
    // incarnation (folding its exact meter usage), freeze the
    // departure clock — except the requeue is a plain backoff, not a
    // retry: preemption never burns the fault-retry budget.
    byTask.erase(s.task);
    fleet.retireTask(*s.task);
    endIncarnation(s);
    s.task = nullptr;
    ++s.preemptions;
    ++nPreemptions;
    s.preemptResume = true;

    if (s.departureEv != invalidEventId) {
        eq.cancel(s.departureEv);
        s.departureEv = invalidEventId;
        s.remainingLifetime = std::max<Tick>(0, s.departAt - eq.now());
        s.departAt = -1;
    } else {
        s.remainingLifetime = -1;
    }

    const obs::TraceIds ids{static_cast<std::int16_t>(s.device), -1,
                            static_cast<std::int32_t>(s.id)};
    NEON_TRACE(obs::TraceCategory::Serve, obs::TraceKind::Instant,
               "serve.preempt", ids, s.preemptions, s.remainingLifetime);
    NEON_TRACE(obs::TraceCategory::Serve, obs::TraceKind::FlowStep,
               "session.flow", ids, 0, 0);
    emitSession(SessionEvent::Kind::Preempt, s,
                static_cast<std::int32_t>(s.device));

    // The freed slot releases the queue's best request — the
    // preemption-causing interactive, unless a priority retry or an
    // earlier-deadline peer outranks it (all deterministic).
    freeSlot(s.tenant);

    const std::uint64_t sid = s.id;
    s.retryEv = eq.scheduleIn(cfg.qos.preemptionBackoff,
                              [this, sid] { preemptRequeue(sid); });
}

void
ServeEngine::preemptRequeue(std::uint64_t sid)
{
    SessionRecord &s = *sessions[sid];
    s.retryEv = invalidEventId;
    if (s.done)
        return;

    // Hopeless fleet mid-backoff: fall into the fault plane's capped
    // retry loop rather than queueing toward zero capacity.
    if (fleet.upDeviceCount() == 0 || adm.capacity() == 0) {
        scheduleRetry(s);
        return;
    }

    NEON_TRACE(obs::TraceCategory::Serve, obs::TraceKind::Instant,
               "serve.preempt_requeue",
               obs::TraceIds{-1, -1, static_cast<std::int32_t>(sid)},
               s.preemptions, 0);
    emitSession(SessionEvent::Kind::RetryEnqueue, s);

    const ServeClass &c = classes[s.cls];
    const Tick budget = queueBudgetOf(s.cls);
    QueuedRequest qr;
    qr.session = sid;
    qr.tenant = s.tenant;
    qr.demand = c.demand;
    qr.enqueued = eq.now();
    qr.qosPriority = qosRankOf(s.cls);
    qr.deadline =
        cfg.qos.enabled && budget > 0 ? eq.now() + budget : 0;
    // No priority flag: a preempted batch session re-queues behind
    // interactive traffic by rank, or preemption would just thrash.
    if (adm.arrive(qr))
        admitSession(sid);
}

void
ServeEngine::freeSlot(const std::string &tenant)
{
    if (auto released = adm.depart(tenant))
        admitSession(released->session);
}

void
ServeEngine::foldIncarnationUsage(SessionRecord &s) const
{
    // Incarnations get fresh pids, so the meter's per-pid counters are
    // exactly this incarnation's usage — no baseline arithmetic.
    const UsageMeter &m = fleet.stack(s.device).meter;
    const int pid = s.task->pid();
    s.busy += m.busyOf(pid);
    s.requests += m.requestsOf(pid);
    const Accum &rounds = s.task->roundTimes();
    s.roundUsSum += rounds.mean() * static_cast<double>(rounds.count());
    s.rounds += rounds.count();
}

void
ServeEngine::endIncarnation(SessionRecord &s)
{
    if (!s.task)
        return;
    foldIncarnationUsage(s);
}

void
ServeEngine::onClockTick()
{
    // Drain discount for the shed predictor: the aggregate speed of
    // the up devices over the whole fleet's nominal speed. Slot
    // capacity already shrinks with down devices, so this corrects
    // for the *quality* of the surviving slots (losing the fast
    // devices makes the queue drain slower than the count suggests).
    if (cfg.shed.enabled) {
        double upSpeed = 0.0;
        double allSpeed = 0.0;
        for (const DeviceClockSample &d : clock.sample()) {
            allSpeed += d.speedFactor;
            if (d.up)
                upSpeed += d.speedFactor;
        }
        if (allSpeed > 0.0)
            shedder.noteDrainRatio(upSpeed / allSpeed);
    }

    tryMigrate();
    eq.scheduleIn(cfg.clockPeriod, [this] { onClockTick(); });
}

void
ServeEngine::tryMigrate()
{
    if (cfg.migrationLag <= 0)
        return;
    if (cfg.migrationBudget > 0 && nMigrations >= cfg.migrationBudget)
        return;

    const MigrationPlan plan =
        clock.checkMigration(cfg.migrationLag, cfg.migrationMinTasks);
    if (!plan.migrate)
        return;

    // Victim: the source device's locally most-ahead session — under
    // DFQ it is the one most likely to be denied there, and the target
    // device's higher system vtime absorbs it without denial.
    const auto *tap = dynamic_cast<const VirtualTimeTap *>(
        fleet.stack(plan.from).sched.get());
    SessionRecord *victim = nullptr;
    Tick victim_v = 0;
    // byTask holds exactly the live incarnations, so this scan is
    // O(placed sessions), not O(sessions ever created). byTask is
    // keyed by task address, so vtime ties must break on the session
    // id — address order varies with heap layout and would make the
    // pick depend on unrelated allocations (e.g. tracing being on).
    for (const auto &kv : byTask) {
        SessionRecord &s = *sessions[kv.second];
        if (s.done || s.device != plan.from || !s.task->alive())
            continue;
        const Tick v = tap ? tap->tapTaskVtime(s.task->pid()) : 0;
        if (!victim || v > victim_v ||
            (v == victim_v && s.id < victim->id)) {
            victim = &s;
            victim_v = v;
        }
    }
    if (!victim)
        return;

    byTask.erase(victim->task);
    // Migrate first (retires the old incarnation, charging any aborted
    // in-flight occupancy to its pid), then snapshot it.
    Task &nt = fleet.migrateTask(*victim->task, plan.to);
    endIncarnation(*victim);
    victim->task = &nt;
    victim->device = plan.to;
    victim->devices.push_back(plan.to);
    ++victim->migrations;
    ++nMigrations;
    byTask[&nt] = victim->id;

    const obs::TraceIds mig_ids{static_cast<std::int16_t>(plan.to),
                                nt.pid(),
                                static_cast<std::int32_t>(victim->id)};
    NEON_TRACE(obs::TraceCategory::Serve, obs::TraceKind::Instant,
               "serve.migrate", mig_ids, plan.from, plan.to);
    NEON_TRACE(obs::TraceCategory::Serve, obs::TraceKind::FlowStep,
               "session.flow", mig_ids, plan.lag, 0);
    emitSession(SessionEvent::Kind::Migrate, *victim,
                static_cast<std::int32_t>(plan.to));

    startBody(*victim);
    // The session's departure event is untouched: lifetime is wall
    // time in the system, not time on any one device.
}

void
ServeEngine::emitSession(SessionEvent::Kind kind, const SessionRecord &s,
                         std::int32_t device)
{
    if (listeners.empty())
        return;
    SessionEvent e;
    e.kind = kind;
    e.when = eq.now();
    e.session = s.id;
    e.device = device;
    e.cls = s.cls;
    for (const auto &fn : listeners)
        fn(e);
}

void
ServeEngine::addSessionListener(std::function<void(const SessionEvent &)> fn)
{
    listeners.push_back(std::move(fn));
}

void
ServeEngine::visitSessions(
    const std::function<void(const SessionRecord &, Tick, std::uint64_t)>
        &fn) const
{
    for (const auto &sp : sessions) {
        Tick busy = sp->busy;
        std::uint64_t reqs = sp->requests;
        if (sp->task) {
            // Open incarnation: fresh pid, so the meter's per-pid
            // counters are exactly its usage (see foldIncarnationUsage).
            const UsageMeter &m = fleet.stack(sp->device).meter;
            const int pid = sp->task->pid();
            busy += m.busyOf(pid);
            reqs += m.requestsOf(pid);
        }
        fn(*sp, busy, reqs);
    }
}

std::vector<SessionRecord>
ServeEngine::sessionResults() const
{
    std::vector<SessionRecord> out;
    out.reserve(sessions.size());
    for (const auto &sp : sessions) {
        SessionRecord s = *sp; // copy
        if (s.task)
            foldIncarnationUsage(s); // open incarnation, not closed
        out.push_back(std::move(s));
    }
    return out;
}

} // namespace neon
