/**
 * @file
 * ServeEngine: the open-system serving loop over a device fleet.
 *
 * Sessions of configured workload classes arrive by their class's
 * ArrivalSpec, pass through the AdmissionController (queueing while
 * the fleet is at channel capacity), are placed — via the fleet's
 * placement policy, or steered by the GlobalVirtualClock toward the
 * most-lagging device — run for their sampled lifetime, possibly
 * migrate when the global clock finds a device lagging the fleet, and
 * depart, releasing their slot to the next queued request.
 *
 * A session is the stable identity across incarnations: each
 * placement or migration creates a fresh Task (new pid on the target
 * device's kernel) and restarts the workload body, while the session
 * accumulates usage, rounds, and per-device history across all of
 * them — so departed and migrated work stays fully accounted.
 *
 * Sharded runs: the whole engine lives on the coordinator's control
 * queue. Arrivals, admission, global-clock ticks, migration, and
 * departures execute at their exact timestamps during the window
 * barrier (shard workers parked), and anything they schedule into a
 * device's shard — a new incarnation's first doorbell — lands at the
 * next window open. Kill notifications travel the other way through
 * the shard mailboxes (FleetManager::handleTaskKilled), so the engine
 * never observes a shard mid-flight and N-shard serving runs stay
 * bit-identical across repeats and worker-thread counts.
 */

#ifndef NEON_SERVE_SERVE_ENGINE_HH
#define NEON_SERVE_SERVE_ENGINE_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fleet/fleet_manager.hh"
#include "serve/admission.hh"
#include "serve/global_clock.hh"
#include "serve/rate_limit.hh"
#include "serve/serve_config.hh"
#include "serve/slo_admission.hh"
#include "sim/random.hh"
#include "workload/arrival.hh"

namespace neon
{

/** One open-system workload class (a tenant's traffic). */
struct ServeClass
{
    std::string label;  ///< session labels become "label#N"
    std::string tenant; ///< fair-share principal (defaults to label)
    ArrivalSpec arrivals;
    LifetimeSpec lifetime;
    std::string affinityKey; ///< sticky placement (empty = label)
    double demand = 1.0;     ///< expected-demand hint

    /** QoS class; only ordered/preempted when ServeConfig::qos is on. */
    QosClass qos = QosClass::Batch;

    /**
     * Per-class queue-delay budget for predictive shedding and the
     * release deadline (0 = inherit ServeConfig::slo.queueTarget).
     */
    Tick queueBudget = 0;

    /** Builds a (re)startable workload body for one incarnation. */
    std::function<Co(Task &, std::uint64_t)> makeBody;
};

/** Lifecycle record of one session (stable across incarnations). */
struct SessionRecord
{
    std::uint64_t id = 0;
    std::size_t cls = 0;
    std::string label;
    std::string tenant;

    Tick arrived = 0;
    Tick admitted = -1;  ///< -1 while queued
    Tick departed = -1;  ///< -1 while live
    bool done = false;   ///< departed (or killed, shed, or throttled)
    bool killed = false; ///< ended by per-device protection
    bool shed = false;   ///< dropped: retry budget spent or front door
    bool shedPredicted = false; ///< shed by SLO prediction at arrival
    bool throttled = false;     ///< rejected by the token bucket

    int evictions = 0;   ///< times a device failure interrupted it
    int failovers = 0;   ///< times it resumed on the (shrunken) fleet
    int retries = 0;     ///< backoff attempts consumed
    int preemptions = 0; ///< times an interactive admit took its slot

    // Accumulated across completed incarnations (endIncarnation);
    // sessionResults() adds the open incarnation on top.
    Tick busy = 0;               ///< ground-truth device time
    std::uint64_t requests = 0;  ///< completed device requests
    double roundUsSum = 0.0;     ///< sum of round durations (us)
    std::uint64_t rounds = 0;    ///< completed rounds
    int migrations = 0;
    std::vector<std::size_t> devices; ///< device of each incarnation

    // Open-incarnation state (engine internals).
    Task *task = nullptr;
    std::size_t device = 0;
    int incarnation = 0;
    EventId departureEv = invalidEventId;
    EventId retryEv = invalidEventId;
    Tick departAt = -1; ///< scheduled departure time (-1 = none)

    /**
     * Lifetime left when a device failure interrupted the session;
     * the departure clock stops during backoff/queueing and resumes
     * from here on re-admission. -1 = no frozen remainder.
     */
    Tick remainingLifetime = -1;

    /**
     * Displaced by a preemption and not yet re-admitted: the next
     * admission resumes the frozen remainder instead of sampling a
     * fresh lifetime (and is not a fault failover).
     */
    bool preemptResume = false;
};

/**
 * One serve-layer lifecycle transition, delivered synchronously to
 * registered listeners (the analysis plane's phase tracker). Exact by
 * construction — unlike the trace ring, listener delivery never drops
 * — and read-only: listeners observe, they cannot steer.
 */
struct SessionEvent
{
    enum class Kind : std::uint8_t
    {
        Arrive,       ///< session entered the system (queued)
        Admit,        ///< placed on a device (first time or failover)
        Migrate,      ///< moved to another device by the global clock
        Evict,        ///< interrupted by device failure (backoff begins)
        RetryEnqueue, ///< backoff expired, re-entered the admission queue
        Depart,       ///< completed its lifetime and left
        Kill,         ///< ended by per-device protection
        Shed,         ///< dropped: retry budget spent or SLO front door
        Throttle,     ///< rejected by the token bucket on arrival
        Preempt,      ///< batch incarnation displaced by an interactive
    };

    Kind kind = Kind::Arrive;
    Tick when = 0;
    std::uint64_t session = 0;
    std::int32_t device = -1; ///< target device (Admit/Migrate), else -1
    std::size_t cls = 0;      ///< workload class index
};

/** Drives arrivals, admission, placement, migration, and departures. */
class ServeEngine
{
  public:
    /**
     * @p slots_per_device is the resolved per-device live-session
     * bound; fleet admission capacity is slots x deviceCount.
     */
    ServeEngine(EventQueue &eq, FleetManager &fleet,
                const ServeConfig &cfg, std::vector<ServeClass> classes,
                std::size_t slots_per_device, std::uint64_t seed);

    ServeEngine(const ServeEngine &) = delete;
    ServeEngine &operator=(const ServeEngine &) = delete;

    /** Schedule initial arrivals and the global-clock tick. */
    void start();

    // ------------------------------------------------------------------
    // Introspection (results, tests)
    // ------------------------------------------------------------------

    /**
     * Per-session records with the open incarnation's usage folded in
     * (safe to call mid-run; does not mutate engine state).
     */
    std::vector<SessionRecord> sessionResults() const;

    /**
     * Visit every session record in id order without copying; @p fn
     * receives the record plus busy/requests with the open
     * incarnation's meter usage folded in. The windowed analyzer calls
     * this at every window boundary, so it must stay allocation-free.
     */
    void visitSessions(
        const std::function<void(const SessionRecord &, Tick,
                                 std::uint64_t)> &fn) const;

    /**
     * Register a lifecycle listener; events are delivered synchronously
     * at each transition, in registration order. Call before start().
     */
    void addSessionListener(std::function<void(const SessionEvent &)> fn);

    const ServeConfig &config() const { return cfg; }
    const std::vector<ServeClass> &workloadClasses() const { return classes; }
    const AdmissionController &admissionState() const { return adm; }
    const GlobalVirtualClock &globalClock() const { return clock; }
    const TenantRateLimiter &rateLimiter() const { return limiter; }
    const SloAdmission &shedModel() const { return shedder; }

    std::uint64_t arrivalsSeen() const { return nArrivals; }
    std::uint64_t departures() const { return nDepartures; }
    std::uint64_t killedSessions() const { return nKilled; }
    std::uint64_t migrationCount() const { return nMigrations; }
    std::uint64_t evictedSessions() const { return nEvicted; }
    std::uint64_t retryAttempts() const { return nRetries; }
    std::uint64_t failoverCount() const { return nFailovers; }
    std::uint64_t shedSessions() const { return nShed; }
    std::uint64_t throttledSessions() const { return nThrottled; }
    std::uint64_t predictiveSheds() const { return nShedPredicted; }
    std::uint64_t preemptionCount() const { return nPreemptions; }
    std::size_t liveSessions() const { return nLive; }
    std::size_t peakLiveSessions() const { return peakLive; }
    std::size_t slotsPerDevice() const { return slots; }

  private:
    void scheduleNextArrival(std::size_t cls);
    void onArrival(std::size_t cls);
    void admitSession(std::uint64_t sid);
    void onDeparture(std::uint64_t sid);
    void finalizeKill(std::uint64_t sid);
    void onEviction(Task &t);
    void onFleetCapacityChange();
    void scheduleRetry(SessionRecord &s);
    void retryArrive(std::uint64_t sid);
    void shedSession(SessionRecord &s);
    void throttleSession(SessionRecord &s);
    void shedAtFrontDoor(SessionRecord &s, const ShedDecision &d);
    bool tryPreempt(int arrivingRank);
    void preemptSession(SessionRecord &victim);
    void preemptRequeue(std::uint64_t sid);
    Tick queuedWorkAhead(int rank) const;
    Tick queueBudgetOf(std::size_t cls) const;
    int qosRankOf(std::size_t cls) const;
    void freeSlot(const std::string &tenant);
    void foldIncarnationUsage(SessionRecord &s) const;
    void endIncarnation(SessionRecord &s);
    void startBody(SessionRecord &s);
    void onClockTick();
    void tryMigrate();
    std::uint64_t bodySeed(const SessionRecord &s) const;
    void emitSession(SessionEvent::Kind kind, const SessionRecord &s,
                     std::int32_t device = -1);

    EventQueue &eq;
    FleetManager &fleet;
    ServeConfig cfg;
    std::vector<ServeClass> classes;
    std::size_t slots;
    std::uint64_t seed;

    AdmissionController adm;
    GlobalVirtualClock clock;
    TenantRateLimiter limiter;
    SloAdmission shedder;
    Rng lifetimeRng;
    std::vector<ArrivalProcess> arrivalProcs; ///< parallel to classes

    std::vector<std::unique_ptr<SessionRecord>> sessions; ///< by id
    std::map<const Task *, std::uint64_t> byTask;
    std::vector<std::function<void(const SessionEvent &)>> listeners;

    std::uint64_t nArrivals = 0;
    std::uint64_t nDepartures = 0;
    std::uint64_t nKilled = 0;
    std::uint64_t nMigrations = 0;
    std::uint64_t nEvicted = 0;
    std::uint64_t nRetries = 0;
    std::uint64_t nFailovers = 0;
    std::uint64_t nShed = 0;
    std::uint64_t nShedPredicted = 0;
    std::uint64_t nThrottled = 0;
    std::uint64_t nPreemptions = 0;
    std::size_t nLive = 0;
    std::size_t peakLive = 0;
};

} // namespace neon

#endif // NEON_SERVE_SERVE_ENGINE_HH
