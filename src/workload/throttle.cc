#include "workload/throttle.hh"

#include "sim/random.hh"

namespace neon
{

Co
throttleBody(Task &t, ThrottleParams params, std::uint64_t seed)
{
    Rng rng(seed);

    Channel *chan = co_await t.openChannel(RequestClass::Compute);
    if (!chan)
        co_return;

    // Small initial setup, as in the real microbenchmark.
    co_await t.sleepFor(usec(50));

    Tick sleep_per_round = 0;
    if (params.sleepRatio > 0.0 && params.sleepRatio < 1.0) {
        sleep_per_round = static_cast<Tick>(
            static_cast<double>(params.requestSize) * params.sleepRatio /
            (1.0 - params.sleepRatio));
    }

    for (;;) {
        t.beginRound();

        const Tick size = usec(rng.lognormal(
            toUsec(params.requestSize), params.jitterCv));
        const std::uint64_t ref =
            co_await t.submit(*chan, RequestClass::Compute, size);
        co_await t.waitRef(*chan, ref);

        if (sleep_per_round > 0)
            co_await t.sleepFor(sleep_per_round);

        t.endRound();
    }
}

} // namespace neon
