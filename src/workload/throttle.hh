/**
 * @file
 * The paper's "Throttle" microbenchmark (Section 5.1).
 *
 * Repetitive blocking compute requests of a user-specified size, with
 * optional idle (sleep/think) time between requests to simulate
 * nonsaturating workloads. No data transfers; only a small amount of
 * initial setup.
 */

#ifndef NEON_WORKLOAD_THROTTLE_HH
#define NEON_WORKLOAD_THROTTLE_HH

#include <cstdint>

#include "os/task.hh"
#include "sim/coroutine.hh"
#include "sim/types.hh"

namespace neon
{

/** Knobs for the Throttle microbenchmark. */
struct ThrottleParams
{
    /** Device occupancy of each request. */
    Tick requestSize = usec(100);

    /**
     * Fraction of the steady-state cycle spent sleeping ("off" time
     * under standalone execution); 0 = fully saturating.
     */
    double sleepRatio = 0.0;

    /** Relative jitter of request sizes. */
    double jitterCv = 0.02;
};

/** One blocking request per round, plus the configured idle time. */
Co throttleBody(Task &t, ThrottleParams params, std::uint64_t seed);

} // namespace neon

#endif // NEON_WORKLOAD_THROTTLE_HH
