/**
 * @file
 * Application profiles calibrated against the paper's Table 1.
 *
 * Each profile describes the request stream one benchmark presents to
 * the device: how many awaited compute/graphics/DMA requests per
 * "round" (one iteration of the main loop, or one frame), the request
 * size distributions, how many trivial (state-change) submissions ride
 * along, and how much CPU-side think time separates rounds. Awaited
 * OpenCL requests are serialized (the SDK samples synchronize per
 * step); graphics requests pipeline within a frame and synchronize at
 * frame boundaries.
 */

#ifndef NEON_WORKLOAD_APP_PROFILE_HH
#define NEON_WORKLOAD_APP_PROFILE_HH

#include <string>
#include <vector>

#include "sim/random.hh"
#include "sim/types.hh"

namespace neon
{

/** A mixture distribution for request service times. */
struct RequestMix
{
    struct Component
    {
        double weight;  ///< relative weight
        double meanUs;  ///< arithmetic mean, microseconds
        double cv;      ///< coefficient of variation (lognormal)
    };

    std::vector<Component> components;

    /** Single-component convenience constructor. */
    static RequestMix
    fixed(double mean_us, double cv = 0.08)
    {
        return {{{1.0, mean_us, cv}}};
    }

    /** Draw one service time. */
    Tick sample(Rng &rng) const;

    /** Arithmetic mean of the mixture in microseconds. */
    double meanUs() const;
};

/** One benchmark's behavioural description. */
struct AppProfile
{
    std::string name;
    std::string area;

    // Awaited compute requests per round (serialized).
    int computeReqs = 0;
    RequestMix computeMix;

    // Awaited graphics requests per round (pipelined, frame sync).
    int graphicsReqs = 0;
    RequestMix graphicsMix;

    // DMA requests per round (pipelined on the copy engine).
    int dmaReqs = 0;
    double dmaMeanUs = 0.0;

    // Trivial (state-change) submissions per round: tiny, not awaited.
    int trivialReqs = 0;

    /**
     * True for apps whose kernels form dependent stages (sorting
     * networks, transforms, graph relaxation): each awaited compute
     * request is synchronized before the next is built. False for apps
     * with independent kernels, which pipeline the round's requests and
     * synchronize once at the end.
     */
    bool serialized = false;

    // CPU-only time per round, microseconds (spread around the work).
    double thinkUs = 0.0;

    // Paper's Table 1 reference values for reporting.
    double paperRoundUs = 0.0;
    double paperReqUs = 0.0;
    double paperReqUs2 = 0.0; ///< second value for combined apps

    bool usesGraphics() const { return graphicsReqs > 0; }
    bool usesCompute() const { return computeReqs > 0; }
    bool usesDma() const { return dmaReqs > 0; }

    /** Number of channels the app opens. */
    int
    channelCount() const
    {
        return (usesCompute() ? 1 : 0) + (usesGraphics() ? 1 : 0) +
            (usesDma() ? 1 : 0);
    }
};

/** The Table 1 registry. */
class AppRegistry
{
  public:
    /** All 18 benchmark profiles, in Table 1 order. */
    static const std::vector<AppProfile> &all();

    /** Look up a profile by name; fatal() if unknown. */
    static const AppProfile &byName(const std::string &name);
};

} // namespace neon

#endif // NEON_WORKLOAD_APP_PROFILE_HH
