#include "workload/adversary.hh"

#include "gpu/context.hh"
#include "os/kernel.hh"

namespace neon
{

Co
infiniteKernelBody(Task &t, int normal_rounds, Tick normal_size)
{
    Channel *chan = co_await t.openChannel(RequestClass::Compute);
    if (!chan)
        co_return;

    for (int i = 0; i < normal_rounds; ++i) {
        t.beginRound();
        const std::uint64_t ref =
            co_await t.submit(*chan, RequestClass::Compute, normal_size);
        co_await t.waitRef(*chan, ref);
        t.endRound();
    }

    // The kernel that never returns.
    const std::uint64_t ref =
        co_await t.submit(*chan, RequestClass::Compute, maxTick);
    co_await t.waitRef(*chan, ref); // never satisfied; killed instead
}

Co
batchingHogBody(Task &t, Tick batched_size)
{
    Channel *chan = co_await t.openChannel(RequestClass::Compute);
    if (!chan)
        co_return;

    for (;;) {
        t.beginRound();
        const std::uint64_t ref =
            co_await t.submit(*chan, RequestClass::Compute, batched_size);
        co_await t.waitRef(*chan, ref);
        t.endRound();
    }
}

Co
hogThenHangBody(Task &t, int hog_rounds, Tick hog_size)
{
    Channel *chan = co_await t.openChannel(RequestClass::Compute);
    if (!chan)
        co_return;

    for (int i = 0; i < hog_rounds; ++i) {
        t.beginRound();
        const std::uint64_t ref =
            co_await t.submit(*chan, RequestClass::Compute, hog_size);
        co_await t.waitRef(*chan, ref);
        t.endRound();
    }

    const std::uint64_t ref =
        co_await t.submit(*chan, RequestClass::Compute, maxTick);
    co_await t.waitRef(*chan, ref); // never satisfied; watchdog kills
}

Co
channelDosBody(Task &t, DosOutcome *outcome)
{
    for (;;) {
        GpuContext *ctx = t.kernelRef().createContext(t);

        Channel *comp =
            co_await t.openChannel(RequestClass::Compute, ctx);
        if (!comp) {
            outcome->firstFailure = t.openResult;
            co_return;
        }
        ++outcome->channelsCreated;

        Channel *dma = co_await t.openChannel(RequestClass::Dma, ctx);
        if (!dma) {
            outcome->firstFailure = t.openResult;
            co_return;
        }
        ++outcome->channelsCreated;

        ++outcome->contextsCreated;
    }
}

Co
dosVictimBody(Task &t, DosOutcome *outcome, Tick request_size,
              Tick start_delay)
{
    if (start_delay > 0)
        co_await t.sleepFor(start_delay);

    Channel *chan = co_await t.openChannel(RequestClass::Compute);
    if (!chan) {
        outcome->firstFailure = t.openResult;
        co_return;
    }
    ++outcome->channelsCreated;

    for (;;) {
        t.beginRound();
        const std::uint64_t ref =
            co_await t.submit(*chan, RequestClass::Compute, request_size);
        co_await t.waitRef(*chan, ref);
        t.endRound();
    }
}

} // namespace neon
