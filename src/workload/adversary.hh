/**
 * @file
 * Adversarial and misbehaving workloads used to exercise protection.
 */

#ifndef NEON_WORKLOAD_ADVERSARY_HH
#define NEON_WORKLOAD_ADVERSARY_HH

#include <cstdint>

#include "os/task.hh"
#include "sim/coroutine.hh"
#include "sim/types.hh"

namespace neon
{

/**
 * Behaves like a normal small-request app for @p normal_rounds rounds,
 * then submits a request that never completes (an infinite loop in a
 * compute kernel). Protection should kill the task.
 */
Co infiniteKernelBody(Task &t, int normal_rounds, Tick normal_size);

/**
 * A greedy application that "batches" its work into huge requests to
 * hog a work-conserving device (the paper's Section 1 motivation).
 * Submits back-to-back blocking requests of @p batched_size.
 */
Co batchingHogBody(Task &t, Tick batched_size);

/**
 * Hogs the device with @p hog_rounds back-to-back requests of
 * @p hog_size, then wedges: its final request never completes. The
 * worst tenant for a watchdog — it looks like a legitimate (if greedy)
 * heavy app right up to the hang, so detection must key on doorbell
 * progress, not on request size or submission rate.
 */
Co hogThenHangBody(Task &t, int hog_rounds, Tick hog_size);

/** Result record for the channel-exhaustion attack. */
struct DosOutcome
{
    int contextsCreated = 0;
    int channelsCreated = 0;
    OpenResult firstFailure = OpenResult::Ok;
};

/**
 * Denial-of-service attacker: creates context after context, each with
 * one compute and one DMA channel, until allocation fails (paper
 * Section 6.3). Writes what happened into @p outcome.
 */
Co channelDosBody(Task &t, DosOutcome *outcome);

/**
 * A victim that simply tries to open one compute channel and run small
 * requests; records whether it ever got access. An optional start
 * delay lets the attacker strike first.
 */
Co dosVictimBody(Task &t, DosOutcome *outcome, Tick request_size,
                 Tick start_delay = 0);

} // namespace neon

#endif // NEON_WORKLOAD_ADVERSARY_HH
