#include "workload/app_profile.hh"

#include "sim/logging.hh"

namespace neon
{

Tick
RequestMix::sample(Rng &rng) const
{
    if (components.empty())
        return 0;

    double total = 0.0;
    for (const auto &c : components)
        total += c.weight;

    double pick = rng.uniform() * total;
    for (const auto &c : components) {
        pick -= c.weight;
        if (pick <= 0.0)
            return usec(rng.lognormal(c.meanUs, c.cv));
    }
    return usec(rng.lognormal(components.back().meanUs,
                              components.back().cv));
}

double
RequestMix::meanUs() const
{
    double total = 0.0, weighted = 0.0;
    for (const auto &c : components) {
        total += c.weight;
        weighted += c.weight * c.meanUs;
    }
    return total > 0.0 ? weighted / total : 0.0;
}

namespace
{

/**
 * Build the Table 1 population. Request counts and think times are
 * derived from the paper's per-round and per-request averages; trivial
 * request counts are calibrated so the engaged-timeslice interception
 * overhead reported in Figure 4 emerges (BitonicSort 38%, FWT 30%,
 * FloydWarshall 40%).
 */
std::vector<AppProfile>
buildRegistry()
{
    std::vector<AppProfile> v;

    auto compute = [&v](std::string name, std::string area, int reqs,
                        double req_us, int trivial, double think_us,
                        bool serialized, double paper_round,
                        double paper_req) {
        AppProfile p;
        p.name = std::move(name);
        p.area = std::move(area);
        p.computeReqs = reqs;
        p.computeMix = RequestMix::fixed(req_us);
        p.trivialReqs = trivial;
        p.thinkUs = think_us;
        p.serialized = serialized;
        p.paperRoundUs = paper_round;
        p.paperReqUs = paper_req;
        v.push_back(std::move(p));
    };

    // Apps whose kernels form dependent stages serialize each request
    // (serial=1); apps with independent kernels pipeline the round.
    //       name                 area               n   req    triv think  serial round  req
    compute("BinarySearch",       "Searching",        2,  57.0,   2,  45.0, false,   161,  57);
    compute("BitonicSort",        "Sorting",          6, 202.0,  42,  75.0, true,   1292, 202);
    compute("DCT",                "Compression",      3,  66.0,   2,   0.0, false,   197,  66);
    compute("EigenValue",         "Algebra",          3,  56.0,   2,   0.0, false,   163,  56);
    compute("FastWalshTransform", "Encryption",       2, 119.0,   7,  70.0, true,    310, 119);
    compute("FFT",                "Signal Processing",5,  48.0,   2,  26.0, false,   268,  48);
    compute("FloydWarshall",      "Graph Analysis",  39, 141.0, 175,  45.0, true,   5631, 141);
    compute("LUDecomposition",    "Algebra",          4, 308.0,   4, 255.0, true,   1490, 308);
    compute("MatrixMulDouble",    "Algebra",         19, 637.0,   4, 520.0, false, 12628, 637);
    compute("MatrixMultiplication","Algebra",         8, 436.0,   4, 295.0, false,  3788, 436);
    compute("MatrixTranspose",    "Algebra",          4, 284.0,   2,  15.0, false,  1153, 284);
    compute("PrefixSum",          "Data Processing",  2,  55.0,   2,  45.0, false,   157,  55);
    compute("RadixSort",          "Sorting",         38, 210.0,  20, 100.0, true,   8082, 210);
    compute("Reduction",          "Data Processing",  4, 282.0,   2,  18.0, true,   1147, 282);
    compute("ScanLargeArrays",    "Data Processing",  2,  72.0,   2,  50.0, false,   197,  72);

    // glxgears: pure OpenGL; one awaited draw per frame whose size is a
    // mixture (many tiny draws, occasional big ones -> Fig. 2 shape),
    // plus trivial state changes.
    {
        AppProfile p;
        p.name = "glxgears";
        p.area = "Graphics";
        p.graphicsReqs = 1;
        p.graphicsMix = {{{0.70, 6.0, 0.4}, {0.30, 109.0, 0.3}}};
        p.trivialReqs = 2;
        p.thinkUs = 33.0;
        p.paperRoundUs = 72;
        p.paperReqUs = 37;
        v.push_back(std::move(p));
    }

    // oclParticles: OpenCL simulation + OpenGL rendering on separate
    // channels, with DMA traffic for vertex data.
    {
        AppProfile p;
        p.name = "oclParticles";
        p.area = "Physics/Graphics";
        p.computeReqs = 10;
        p.computeMix = RequestMix::fixed(12.0, 0.25);
        p.graphicsReqs = 2;
        p.graphicsMix = RequestMix::fixed(302.0, 0.2);
        p.dmaReqs = 2;
        p.dmaMeanUs = 55.0;
        p.trivialReqs = 10;
        p.thinkUs = 1270.0;
        p.paperRoundUs = 2006;
        p.paperReqUs = 12;
        p.paperReqUs2 = 302;
        v.push_back(std::move(p));
    }

    // simpleTexture3D: texture-filtering compute plus rendering.
    {
        AppProfile p;
        p.name = "simpleTexture3D";
        p.area = "Texturing/Graphics";
        p.computeReqs = 4;
        p.computeMix = RequestMix::fixed(108.0, 0.15);
        p.graphicsReqs = 2;
        p.graphicsMix = RequestMix::fixed(171.0, 0.2);
        p.dmaReqs = 1;
        p.dmaMeanUs = 80.0;
        p.trivialReqs = 6;
        p.thinkUs = 1695.0;
        p.paperRoundUs = 2472;
        p.paperReqUs = 108;
        p.paperReqUs2 = 171;
        v.push_back(std::move(p));
    }

    return v;
}

} // namespace

const std::vector<AppProfile> &
AppRegistry::all()
{
    static const std::vector<AppProfile> registry = buildRegistry();
    return registry;
}

const AppProfile &
AppRegistry::byName(const std::string &name)
{
    for (const auto &p : all()) {
        if (p.name == name)
            return p;
    }
    fatal("unknown application profile: ", name);
}

} // namespace neon
