/**
 * @file
 * Open-system arrival processes and task lifetimes.
 *
 * The closed harness spawns every task at t0 and runs them forever; an
 * open system needs tasks that arrive by some stochastic (or traced)
 * process and depart after a finite lifetime. ArrivalSpec describes
 * when sessions of a workload class enter the system; LifetimeSpec
 * describes how long an admitted session stays. Both are pure data —
 * ArrivalProcess turns a spec plus an Rng into a deterministic,
 * reproducible event stream for the serve layer.
 */

#ifndef NEON_WORKLOAD_ARRIVAL_HH
#define NEON_WORKLOAD_ARRIVAL_HH

#include <cstddef>
#include <vector>

#include "sim/random.hh"
#include "sim/types.hh"

namespace neon
{

/** How sessions of one class enter the system. */
struct ArrivalSpec
{
    enum class Kind
    {
        /** Memoryless arrivals at `ratePerSec` (M/·/· offered load). */
        Poisson,

        /** `burstSize` back-to-back arrivals every `burstPeriod`. */
        Burst,

        /** Explicit arrival times (replayed workload trace). */
        Trace,
    };

    Kind kind = Kind::Poisson;

    /** Poisson: mean arrivals per simulated second. */
    double ratePerSec = 10.0;

    /** Burst: arrivals per burst and gap between burst fronts. */
    std::size_t burstSize = 4;
    Tick burstPeriod = msec(100);

    /** Trace: absolute arrival times, nondecreasing. */
    std::vector<Tick> times;

    /**
     * Stop offering arrivals at this absolute time (0 = never). Lets
     * experiments close the arrival window and watch the admission
     * queue drain.
     */
    Tick until = 0;

    static ArrivalSpec
    poisson(double rate_per_sec, Tick until = 0)
    {
        ArrivalSpec s;
        s.kind = Kind::Poisson;
        s.ratePerSec = rate_per_sec;
        s.until = until;
        return s;
    }

    static ArrivalSpec
    burst(std::size_t size, Tick period, Tick until = 0)
    {
        ArrivalSpec s;
        s.kind = Kind::Burst;
        s.burstSize = size;
        s.burstPeriod = period;
        s.until = until;
        return s;
    }

    static ArrivalSpec
    trace(std::vector<Tick> times)
    {
        ArrivalSpec s;
        s.kind = Kind::Trace;
        s.times = std::move(times);
        return s;
    }
};

/** How long an admitted session stays before departing. */
struct LifetimeSpec
{
    enum class Kind
    {
        Forever,     ///< closed-system behaviour: never departs
        Fixed,       ///< exactly `mean`
        Exponential, ///< memoryless with mean `mean`
    };

    Kind kind = Kind::Forever;
    Tick mean = sec(1);

    /** Floor applied to sampled lifetimes (exponential tail safety). */
    Tick minimum = msec(1);

    static LifetimeSpec
    forever()
    {
        return LifetimeSpec{};
    }

    static LifetimeSpec
    fixed(Tick d)
    {
        LifetimeSpec s;
        s.kind = Kind::Fixed;
        s.mean = d;
        return s;
    }

    static LifetimeSpec
    exponential(Tick mean)
    {
        LifetimeSpec s;
        s.kind = Kind::Exponential;
        s.mean = mean;
        return s;
    }

    bool finite() const { return kind != Kind::Forever; }

    /** Draw one lifetime; maxTick when Forever. */
    Tick sample(Rng &rng) const;
};

/**
 * Stateful iterator over an ArrivalSpec's event stream. Deterministic
 * for a given (spec, rng) pair; the serve layer advances it one
 * arrival at a time and schedules the next event on the event queue.
 */
class ArrivalProcess
{
  public:
    ArrivalProcess(const ArrivalSpec &spec, Rng rng);

    /**
     * The next arrival's absolute time, or false when the process is
     * exhausted (trace consumed, or past `spec.until`). Monotone
     * nondecreasing across calls.
     */
    bool next(Tick &when);

    std::uint64_t produced() const { return count; }

  private:
    ArrivalSpec spec;
    Rng rng;
    Tick lastTime = 0;
    std::size_t traceIdx = 0;    ///< Trace: next entry
    std::size_t burstLeft = 0;   ///< Burst: arrivals left in this burst
    Tick burstFront = 0;         ///< Burst: time of the current front
    bool first = true;
    std::uint64_t count = 0;
};

} // namespace neon

#endif // NEON_WORKLOAD_ARRIVAL_HH
