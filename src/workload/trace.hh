/**
 * @file
 * Request-trace record and replay.
 *
 * A recorded trace captures the request stream one task presented to
 * the device — submission offsets, request classes, service times —
 * so experiments can be re-run against the exact same workload (e.g.
 * validating a scheduler change, or standing in for the production
 * traces a real deployment would capture). Traces serialize to a
 * simple line format and replay as ordinary task bodies.
 */

#ifndef NEON_WORKLOAD_TRACE_HH
#define NEON_WORKLOAD_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "gpu/device.hh"
#include "os/task.hh"
#include "sim/coroutine.hh"
#include "sim/types.hh"

namespace neon
{

/** One recorded submission. */
struct TraceRecord
{
    Tick offset = 0; ///< submission time relative to the trace start
    RequestClass cls = RequestClass::Compute;
    Tick service = 0;
    bool awaited = true;
};

/** A replayable request stream. */
struct RequestTraceLog
{
    std::vector<TraceRecord> events;

    bool empty() const { return events.empty(); }
    std::size_t size() const { return events.size(); }

    /** Total duration from first submission to last. */
    Tick span() const;

    /** Device time demanded by the trace. */
    Tick totalService() const;

    /** Serialize as "offset_ns class service_ns awaited" lines. */
    void save(std::ostream &os) const;

    /** Parse the save() format; fatal() on malformed input. */
    static RequestTraceLog load(std::istream &is);
};

/**
 * Records per-task request streams from a live device.
 */
class TraceRecorder
{
  public:
    /** Install on the device's submit hook (exclusive with other users). */
    void attach(GpuDevice &device);

    bool has(int task_id) const { return logs.count(task_id) > 0; }

    /** The recorded stream of a task, offsets rebased to its start. */
    RequestTraceLog traceOf(int task_id) const;

    void reset() { logs.clear(); }

  private:
    struct Raw
    {
        Tick firstAt = 0;
        std::vector<TraceRecord> events;
    };

    std::map<int, Raw> logs;
};

/**
 * Replay body: submits the trace's requests with their recorded
 * pacing (relative offsets), synchronizes at the end of each pass,
 * and loops until the simulation stops. Each pass is one round.
 */
Co traceReplayBody(Task &t, RequestTraceLog log);

} // namespace neon

#endif // NEON_WORKLOAD_TRACE_HH
