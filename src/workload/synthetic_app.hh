/**
 * @file
 * Round-structured synthetic application driven by an AppProfile.
 */

#ifndef NEON_WORKLOAD_SYNTHETIC_APP_HH
#define NEON_WORKLOAD_SYNTHETIC_APP_HH

#include <cstdint>

#include "os/task.hh"
#include "sim/coroutine.hh"
#include "workload/app_profile.hh"

namespace neon
{

/** Device time taken by a trivial (state-change) submission. */
constexpr Tick trivialServiceTime = nsec(500);

/**
 * The application body: open the profile's channels, then loop rounds
 * forever (the harness bounds the run by simulated time).
 *
 * Awaited compute requests are serialized (submit, spin, repeat), as
 * the SDK samples do; graphics requests pipeline within the round and
 * synchronize at the frame boundary; DMA overlaps on the copy engine.
 * Trivial submissions are sprinkled in front of awaited work.
 */
Co syntheticAppBody(Task &t, AppProfile profile, std::uint64_t seed);

} // namespace neon

#endif // NEON_WORKLOAD_SYNTHETIC_APP_HH
