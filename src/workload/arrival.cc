#include "workload/arrival.hh"

#include <utility>

#include "sim/logging.hh"

namespace neon
{

Tick
LifetimeSpec::sample(Rng &rng) const
{
    switch (kind) {
      case Kind::Forever:
        return maxTick;
      case Kind::Fixed:
        return mean > minimum ? mean : minimum;
      case Kind::Exponential: {
        const Tick d = static_cast<Tick>(
            rng.exponential(static_cast<double>(mean)));
        return d > minimum ? d : minimum;
      }
    }
    panic("unknown lifetime kind");
}

ArrivalProcess::ArrivalProcess(const ArrivalSpec &spec, Rng rng)
    : spec(spec), rng(std::move(rng))
{
    if (spec.kind == ArrivalSpec::Kind::Poisson && spec.ratePerSec <= 0.0)
        panic("arrival: Poisson rate must be positive");
    if (spec.kind == ArrivalSpec::Kind::Burst &&
        (spec.burstSize == 0 || spec.burstPeriod <= 0)) {
        panic("arrival: burst needs a size and a positive period");
    }
}

bool
ArrivalProcess::next(Tick &when)
{
    Tick t = 0;
    switch (spec.kind) {
      case ArrivalSpec::Kind::Poisson: {
        const double mean_gap_ticks = 1e9 / spec.ratePerSec;
        t = lastTime + static_cast<Tick>(rng.exponential(mean_gap_ticks));
        break;
      }
      case ArrivalSpec::Kind::Burst: {
        if (first) {
            burstFront = 0;
            burstLeft = spec.burstSize;
        }
        if (burstLeft == 0) {
            burstFront += spec.burstPeriod;
            burstLeft = spec.burstSize;
        }
        t = burstFront;
        --burstLeft;
        break;
      }
      case ArrivalSpec::Kind::Trace: {
        if (traceIdx >= spec.times.size())
            return false;
        t = spec.times[traceIdx++];
        if (t < lastTime)
            panic("arrival: trace times must be nondecreasing");
        break;
      }
    }

    if (spec.until > 0 && t > spec.until)
        return false;

    first = false;
    lastTime = t;
    when = t;
    ++count;
    return true;
}

} // namespace neon
