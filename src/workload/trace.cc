#include "workload/trace.hh"

#include <istream>
#include <ostream>
#include <sstream>

#include "sim/logging.hh"

namespace neon
{

Tick
RequestTraceLog::span() const
{
    return events.empty() ? 0 : events.back().offset;
}

Tick
RequestTraceLog::totalService() const
{
    Tick sum = 0;
    for (const auto &e : events)
        sum += e.service;
    return sum;
}

namespace
{

const char *
className(RequestClass c)
{
    switch (c) {
      case RequestClass::Compute:
        return "compute";
      case RequestClass::Graphics:
        return "graphics";
      case RequestClass::Dma:
        return "dma";
      case RequestClass::Trivial:
        return "trivial";
    }
    return "?";
}

RequestClass
classFromName(const std::string &s)
{
    if (s == "compute")
        return RequestClass::Compute;
    if (s == "graphics")
        return RequestClass::Graphics;
    if (s == "dma")
        return RequestClass::Dma;
    if (s == "trivial")
        return RequestClass::Trivial;
    fatal("trace: unknown request class '", s, "'");
}

} // namespace

void
RequestTraceLog::save(std::ostream &os) const
{
    for (const auto &e : events) {
        os << e.offset << " " << className(e.cls) << " " << e.service
           << " " << (e.awaited ? 1 : 0) << "\n";
    }
}

RequestTraceLog
RequestTraceLog::load(std::istream &is)
{
    RequestTraceLog log;
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        std::istringstream ls(line);
        TraceRecord r;
        std::string cls;
        int awaited = 1;
        if (!(ls >> r.offset >> cls >> r.service >> awaited))
            fatal("trace: malformed line '", line, "'");
        r.cls = classFromName(cls);
        r.awaited = awaited != 0;
        log.events.push_back(r);
    }
    return log;
}

void
TraceRecorder::attach(GpuDevice &device)
{
    device.traceSubmit = [this](Channel &c, const GpuRequest &r,
                                Tick when) {
        auto &raw = logs[c.context().taskId()];
        if (raw.events.empty())
            raw.firstAt = when;
        raw.events.push_back(
            {when - raw.firstAt, r.cls, r.serviceTime, r.awaited});
    };
}

RequestTraceLog
TraceRecorder::traceOf(int task_id) const
{
    auto it = logs.find(task_id);
    if (it == logs.end())
        panic("no trace recorded for task ", task_id);
    RequestTraceLog log;
    log.events = it->second.events;
    return log;
}

Co
traceReplayBody(Task &t, RequestTraceLog log)
{
    if (log.empty())
        co_return;

    // One channel per request class actually present in the trace.
    std::map<RequestClass, Channel *> chans;
    for (const auto &e : log.events) {
        const RequestClass key = e.cls == RequestClass::Trivial
            ? RequestClass::Compute : e.cls;
        if (!chans.count(key)) {
            Channel *c = co_await t.openChannel(key);
            if (!c)
                co_return;
            chans[key] = c;
        }
    }

    for (;;) {
        t.beginRound();
        const Tick pass_start = t.now();

        std::map<RequestClass, std::uint64_t> last_refs;
        for (const auto &e : log.events) {
            const Tick due = pass_start + e.offset;
            if (due > t.now())
                co_await t.sleepFor(due - t.now());

            const RequestClass key = e.cls == RequestClass::Trivial
                ? RequestClass::Compute : e.cls;
            const std::uint64_t ref = co_await t.submit(
                *chans[key], e.cls, e.service, e.awaited);
            if (e.awaited)
                last_refs[key] = ref;
        }

        // Synchronize each channel at the end of the pass.
        for (const auto &kv : last_refs)
            co_await t.waitRef(*chans.at(kv.first), kv.second);

        t.endRound();
    }
}

} // namespace neon
