#include "workload/synthetic_app.hh"

#include "sim/logging.hh"

namespace neon
{

namespace
{

/** Spread trivial submissions across the awaited requests of a round. */
int
triviaBefore(int slot, int awaited, int total_trivia)
{
    if (awaited <= 0)
        return slot == 0 ? total_trivia : 0;
    const int base = total_trivia / awaited;
    const int extra = slot < (total_trivia % awaited) ? 1 : 0;
    return base + extra;
}

} // namespace

Co
syntheticAppBody(Task &t, AppProfile profile, std::uint64_t seed)
{
    Rng rng(seed);

    Channel *comp = nullptr;
    Channel *gfx = nullptr;
    Channel *dma = nullptr;

    if (profile.usesCompute()) {
        comp = co_await t.openChannel(RequestClass::Compute);
        if (!comp)
            co_return;
    }
    if (profile.usesGraphics()) {
        gfx = co_await t.openChannel(RequestClass::Graphics);
        if (!gfx)
            co_return;
    }
    if (profile.usesDma()) {
        dma = co_await t.openChannel(RequestClass::Dma);
        if (!dma)
            co_return;
    }

    Channel *trivia_chan = comp ? comp : gfx;
    const int awaited = profile.computeReqs + profile.graphicsReqs;

    for (;;) {
        t.beginRound();

        // CPU-side work per round, jittered. Stage-dependent apps
        // interleave it between their synchronized steps; pipelined
        // apps do it after the round's sync (post-processing), so it
        // does not hide under the device time.
        const Tick think = usec(rng.lognormal(profile.thinkUs, 0.10));
        const Tick think_slice = profile.serialized
            ? think / static_cast<Tick>(awaited + 1) : 0;

        if (profile.serialized)
            co_await t.sleepFor(think_slice);

        // Input DMA, overlapped on the copy engine.
        std::uint64_t dma_ref = 0;
        for (int i = 0; i < profile.dmaReqs; ++i) {
            dma_ref = co_await t.submit(
                *dma, RequestClass::Dma,
                usec(rng.lognormal(profile.dmaMeanUs, 0.2)));
        }

        int slot = 0;

        // Compute steps: serialized apps synchronize per request,
        // pipelined apps queue the whole round and synchronize once.
        std::uint64_t comp_ref = 0;
        for (int i = 0; i < profile.computeReqs; ++i, ++slot) {
            const int trivia =
                triviaBefore(slot, awaited, profile.trivialReqs);
            for (int k = 0; k < trivia; ++k) {
                co_await t.submit(*trivia_chan, RequestClass::Trivial,
                                  trivialServiceTime, false);
            }
            comp_ref = co_await t.submit(
                *comp, RequestClass::Compute,
                profile.computeMix.sample(rng));
            if (profile.serialized) {
                co_await t.waitRef(*comp, comp_ref);
                comp_ref = 0;
                co_await t.sleepFor(think_slice);
            }
        }
        if (comp && comp_ref)
            co_await t.waitRef(*comp, comp_ref);

        // Pipelined rendering, synchronized at the frame boundary.
        std::uint64_t gfx_ref = 0;
        for (int i = 0; i < profile.graphicsReqs; ++i, ++slot) {
            const int trivia =
                triviaBefore(slot, awaited, profile.trivialReqs);
            for (int k = 0; k < trivia; ++k) {
                co_await t.submit(*trivia_chan, RequestClass::Trivial,
                                  trivialServiceTime, false);
            }
            gfx_ref = co_await t.submit(
                *gfx, RequestClass::Graphics,
                profile.graphicsMix.sample(rng));
        }

        if (gfx && gfx_ref)
            co_await t.waitRef(*gfx, gfx_ref);
        if (dma && dma_ref)
            co_await t.waitRef(*dma, dma_ref);

        // Post-sync CPU work for pipelined apps.
        if (!profile.serialized && think > 0)
            co_await t.sleepFor(think);

        t.endRound();
    }
}

} // namespace neon
