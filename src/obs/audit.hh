/**
 * @file
 * Always-on invariant auditor.
 *
 * The test suite asserts conservation invariants (session usage ==
 * device meters, admitted == live + departed + killed + shed, vtime
 * monotonicity, watchdog detection-latency bounds) — but only in
 * tests. This promotes them to a runtime plane: an AuditLog counts
 * every check and records violations (never silently), and an Auditor
 * drives registered checks on a virtual-time cadence plus a final pass
 * at harvest. Default-enabled in every world: checks are read-only
 * (they cannot perturb simulation outcomes) and the hot path of a
 * passing check is one predicted branch plus a counter bump, so the
 * auditor rides along in every example and bench the way disabled
 * trace points do.
 */

#ifndef NEON_OBS_AUDIT_HH
#define NEON_OBS_AUDIT_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sim/types.hh"

namespace neon
{

class EventQueue;
class FleetManager;
class ServeEngine;
struct WatchdogConfig;

namespace obs
{

/** Per-run auditor configuration (ObserveConfig::audit). */
struct AuditConfig
{
    /** Run the registered invariant checks (on by default). */
    bool enabled = true;

    /** Periodic check cadence in virtual time (0 = final pass only). */
    Tick period = msec(10);

    /** Violation samples retained for diagnostics (counts never cap). */
    std::size_t maxSamples = 8;
};

/** One recorded invariant violation (diagnostic sample). */
struct AuditViolation
{
    std::string check;
    Tick when = 0;
    std::int64_t expected = 0;
    std::int64_t actual = 0;
};

/** Harvested audit outcome (ServeRunResult / FleetRunResult / RunResult). */
struct AuditReport
{
    std::uint64_t checks = 0;     ///< individual checks evaluated
    std::uint64_t violations = 0; ///< checks that failed
    std::vector<std::pair<std::string, std::uint64_t>> byCheck;
    std::vector<AuditViolation> samples; ///< first maxSamples failures

    bool clean() const { return violations == 0; }
    std::string summary() const;
};

/**
 * Violation ledger with a bench-grade hot path: a passing check is one
 * branch and a counter increment — cheap enough to sit on a per-event
 * loop (the open_system_churn_audited bench case measures exactly
 * that). Failures are counted per check name and sampled, never
 * silent.
 */
class AuditLog
{
  public:
    explicit AuditLog(std::size_t max_samples = 8)
        : maxSamples(max_samples)
    {
    }

    /** Evaluate one invariant; @p name must be a literal/stable string. */
    void
    check(bool ok, const char *name, Tick when, std::int64_t expected = 0,
          std::int64_t actual = 0)
    {
        ++nChecks;
        if (ok) [[likely]]
            return;
        recordViolation(name, when, expected, actual);
    }

    std::uint64_t checks() const { return nChecks; }
    std::uint64_t violations() const { return nViolations; }

    AuditReport report() const;

  private:
    void recordViolation(const char *name, Tick when, std::int64_t expected,
                         std::int64_t actual);

    std::size_t maxSamples;
    std::uint64_t nChecks = 0;
    std::uint64_t nViolations = 0;
    std::map<std::string, std::uint64_t> perCheck; ///< violations by name
    std::vector<AuditViolation> samples;
};

/**
 * Drives registered checks against one world's EventQueue: periodic
 * checks every cfg.period of virtual time, monotonicity watches (a
 * probed value must never decrease between observations), and final
 * checks run once at finalize(). All checks are read-only observers of
 * simulation state; in sharded runs the periodic event executes on the
 * control queue at window barriers, where reading shard state is safe.
 */
class Auditor
{
  public:
    /** A check body: evaluate invariants into @p log at time @p now. */
    using Check = std::function<void(AuditLog &, Tick)>;

    Auditor(EventQueue &eq, const AuditConfig &cfg);

    Auditor(const Auditor &) = delete;
    Auditor &operator=(const Auditor &) = delete;

    /** Run @p fn every cfg.period (and once more at finalize). */
    void addPeriodic(std::string name, Check fn);

    /** Run @p fn once, at finalize. */
    void addFinal(std::string name, Check fn);

    /** Watch @p probe: its value must never decrease. */
    void addMonotone(const std::string &name, std::function<double()> probe);

    /** Arm the periodic cadence (no-op when cfg.period == 0). */
    void start();

    /**
     * Run every periodic check once more plus all final checks, and
     * stop the cadence. Idempotent; results() paths call it freely.
     */
    void finalize();

    AuditLog &log() { return log_; }
    AuditReport report() const { return log_.report(); }

  private:
    void tick();

    EventQueue &eq;
    AuditConfig cfg;
    AuditLog log_;
    std::vector<std::pair<std::string, Check>> periodic;
    std::vector<std::pair<std::string, Check>> finals;
    bool started = false;
    bool finalized = false;
};

/**
 * Register the standard fleet invariants: per-device scheduler vtime
 * monotonicity (fair-queueing policies only), per-device meter busy
 * monotonicity, and — when @p wd is given — the watchdog
 * detection-latency bound (kill latency <= timeout + 2 x checkPeriod)
 * as a final check over the fleet's kill log.
 */
void registerFleetAudits(Auditor &a, FleetManager &fleet,
                         const WatchdogConfig *wd = nullptr);

/**
 * Register the serving-layer invariants: admitted-session conservation
 * (arrivals == live + departures + kills + sheds, checked continuously)
 * and exact usage reconciliation (session busy/request sums == device
 * meter sums, final — the runtime form of the fault-integration test's
 * expectExactAccounting).
 */
void registerServeAudits(Auditor &a, ServeEngine &engine,
                         FleetManager &fleet);

} // namespace obs
} // namespace neon

#endif // NEON_OBS_AUDIT_HH
