/**
 * @file
 * Named metrics registry with virtual-time sampling.
 *
 * Instrumented code registers metrics once at construction and updates
 * them with plain stores/increments; the registry samples every metric
 * on a configurable virtual-time cadence into an in-memory time series
 * and (when the Counter trace category is enabled) mirrors each sample
 * into the trace ring so exported timelines get counter tracks.
 *
 * Three metric shapes:
 *  - Counter: monotonic accumulator (events processed, denials, ...).
 *  - Gauge: instantaneous value set by the owner or computed on demand
 *    by a probe callback (queue depth, live sessions, vtime lag).
 *  - Log2Histogram-backed distribution for latency-shaped data.
 */

#ifndef NEON_OBS_METRICS_HH
#define NEON_OBS_METRICS_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace neon
{
namespace obs
{

/** Monotonic counter. */
class Counter
{
  public:
    void add(std::uint64_t n = 1) { value_ += n; }
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/** Instantaneous value. */
class Gauge
{
  public:
    void set(double v) { value_ = v; }
    double value() const { return value_; }

  private:
    double value_ = 0.0;
};

/** One (virtual time, value) sample. */
struct MetricSample
{
    Tick when;
    double value;
};

/** A sampled metric's recorded time series. */
struct MetricSeries
{
    std::string name;
    std::vector<MetricSample> samples;
};

/**
 * Owns the metrics of one simulation run and samples them on a
 * virtual-time cadence. Registration returns references that stay
 * valid for the registry's lifetime (metrics are heap-pinned).
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    ~MetricsRegistry();

    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** Register (or look up) a monotonic counter. */
    Counter &counter(const std::string &name);

    /** Register (or look up) a gauge. */
    Gauge &gauge(const std::string &name);

    /**
     * Register a computed gauge: @p fn is evaluated at each sampling
     * tick. Useful when the value lives in simulation state (queue
     * depth, lag) and should not be mirrored on every change.
     */
    void probe(const std::string &name, std::function<double()> fn);

    /** Register (or look up) a log2 distribution. */
    Log2Histogram &histogram(const std::string &name,
                             unsigned max_bin = 20);

    /**
     * Begin sampling every registered metric each @p period of virtual
     * time on @p eq (first sample at now + period). Stops automatically
     * at destruction; calling again re-arms with the new cadence.
     */
    void startSampling(EventQueue &eq, Tick period);

    /** Cancel the sampling cadence (series are kept). */
    void stopSampling();

    /** Take one sample of every metric right now (time from @p eq). */
    void sampleNow(EventQueue &eq);

    /** Recorded series for every sampled metric (stable order). */
    const std::vector<MetricSeries> &series() const { return series_; }

    /** Registered histograms, for end-of-run reporting. */
    const std::vector<std::pair<std::string, const Log2Histogram *>>
    histograms() const;

    /**
     * Dump the time series as CSV: one row per sample time, one column
     * per metric ("time_us,metric,...").
     */
    void printCsv(std::ostream &os) const;

    /** Dump the time series as a JSON object keyed by metric name. */
    void printJson(std::ostream &os) const;

  private:
    struct Entry
    {
        enum class Kind { Count, Gaug, Probe } kind;
        std::string name;
        std::unique_ptr<Counter> count;
        std::unique_ptr<Gauge> gaug;
        std::function<double()> fn;
        std::size_t seriesIdx;

        double read() const;
    };

    Entry &ensure(Entry::Kind kind, const std::string &name);
    void scheduleNext();

    std::vector<std::unique_ptr<Entry>> entries;
    std::vector<std::pair<std::string, std::unique_ptr<Log2Histogram>>>
        hists;
    std::vector<MetricSeries> series_;

    EventQueue *eq = nullptr;
    Tick period = 0;
    EventId pending{};
};

} // namespace obs
} // namespace neon

#endif // NEON_OBS_METRICS_HH
