/**
 * @file
 * Analysis plane over the serving layer: per-session phase attribution
 * and windowed fairness/goodput/utilization timelines.
 *
 * Phase attribution decomposes every session's in-system time into an
 * exact integer-tick partition — admission-queue wait, on-device
 * service, migration gaps, and fault stall/backoff — driven by the
 * engine's lifecycle SessionEvents (exact by construction; the trace
 * ring can drop under wrap, listener delivery cannot). The same events
 * can be replayed from an exported trace (sessionEventsFromTrace /
 * bench_trace_analyze), so post-hoc analysis of a recorded run prints
 * the same report.
 *
 * The windowed analyzer samples the run on a virtual-time grid: per
 * window it reports the Jain fairness index over speed-normalized
 * session service rates (the same statistic ServeRunResult reports for
 * the whole run — a single whole-run window reproduces it bit-exactly),
 * goodput against the ServeConfig SLO target, per-device utilization
 * and occupancy, and queue depth. Series export as CSV/JSON next to
 * the counter tracks and are as deterministic as the run itself.
 */

#ifndef NEON_OBS_ANALYZE_HH
#define NEON_OBS_ANALYZE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/trace.hh"
#include "serve/serve_engine.hh"

namespace neon
{

class EventQueue;
class FleetManager;

namespace obs
{

/** Per-run analysis configuration (ObserveConfig::analyze). */
struct AnalyzeConfig
{
    /** Track per-session phase attribution + tail report. */
    bool phases = false;

    /** Timeline window in virtual time (0 = no windowed series). */
    Tick window = 0;

    /** Windowed timeline CSV output path (empty = don't write). */
    std::string timelineCsvPath;

    /** Windowed timeline JSON output path (empty = don't write). */
    std::string timelineJsonPath;

    bool enabled() const { return phases || window > 0; }
};

/** Exact integer-tick partition of one session's in-system time. */
struct PhaseBreakdown
{
    Tick queue = 0;     ///< admission-queue wait (arrival/retry -> placed)
    Tick service = 0;   ///< placed on a live device
    Tick migration = 0; ///< between incarnations of a migration (0 today:
                        ///< migration is checkpoint/restart-instant)
    Tick stall = 0;     ///< fault backoff between eviction and re-queue

    Tick total() const { return queue + service + migration + stall; }
};

/** One session's attributed lifecycle. */
struct SessionPhases
{
    std::uint64_t session = 0;
    std::size_t cls = 0;
    Tick arrived = 0;
    Tick admitted = -1; ///< first placement (-1 = never admitted)
    Tick ended = 0;     ///< depart/kill/shed time, or the horizon if open
    bool departed = false;
    bool killed = false;
    bool shed = false;
    bool throttled = false; ///< rejected by the token bucket on arrival
    bool open = false; ///< still in-system at finalize

    PhaseBreakdown phases;

    /** Arrival-to-end in-system time; phases partition this exactly. */
    Tick inSystem() const { return ended - arrived; }
};

/**
 * Replays SessionEvents into per-session phase breakdowns. The state
 * machine mirrors the engine's lifecycle: Queued (arrival or retry
 * re-queue), OnDevice (admit/failover/migrate), Backoff (evicted), and
 * each transition charges the elapsed interval to the phase of the
 * state being left — so the four phases always sum to the in-system
 * time, in exact integer ticks.
 */
class PhaseTracker
{
  public:
    void onEvent(const SessionEvent &e);

    /** Charge open sessions up to @p horizon (idempotent per session). */
    void finalize(Tick horizon);

    const std::vector<SessionPhases> &sessions() const { return all; }

  private:
    enum class State : std::uint8_t
    {
        Queued,
        OnDevice,
        Backoff,
        Done,
    };

    struct Live
    {
        State state = State::Done;
        Tick since = 0;
    };

    void charge(std::size_t idx, Tick now);

    std::vector<SessionPhases> all; ///< by session id (dense)
    std::vector<Live> live;         ///< parallel to `all`
};

/** Aggregate phase shares of a session group (fractions of in-system). */
struct PhaseShares
{
    double queue = 0.0;
    double service = 0.0;
    double migration = 0.0;
    double stall = 0.0;
};

/** Tail attribution for one group (overall / per tenant / per class). */
struct TailGroup
{
    std::string key;
    std::uint64_t sessions = 0;
    double meanMs = 0.0; ///< mean in-system time
    double p95Ms = 0.0;  ///< in-system time percentiles
    double p99Ms = 0.0;
    PhaseShares meanShare; ///< aggregate shares over all sessions
    PhaseShares tailShare; ///< aggregate shares over the >= p95 tail
    std::string dominantPhase; ///< largest tail share
};

/** Which phase dominates the tail, per tenant and per demand class. */
struct PhaseReport
{
    TailGroup overall;
    std::vector<TailGroup> byTenant;
    std::vector<TailGroup> byClass;
};

/**
 * Roll sessions up into the tail-attribution report. @p tenant_of and
 * @p class_of label each session's grouping keys (the in-process
 * analyzer resolves them through the engine's workload classes; the
 * trace CLI falls back to "class<N>").
 */
PhaseReport buildPhaseReport(
    const std::vector<SessionPhases> &sessions,
    const std::function<std::string(const SessionPhases &)> &tenant_of,
    const std::function<std::string(const SessionPhases &)> &class_of);

/** Human-readable rendering of the report (CLI, examples). */
std::string formatPhaseReport(const PhaseReport &report);

/** One window of the analysis timeline. */
struct WindowStats
{
    Tick start = 0;
    Tick end = 0;

    std::uint64_t arrivals = 0;
    std::uint64_t departures = 0; ///< clean departures in the window
    std::uint64_t kills = 0;
    std::uint64_t sheds = 0;
    std::uint64_t throttled = 0; ///< token-bucket rejections
    std::uint64_t preempts = 0;  ///< batch incarnations displaced

    std::size_t queueDepth = 0;   ///< admission queue at window close
    std::size_t liveSessions = 0; ///< in-system at window close

    /**
     * Jain index over per-session speed-normalized service rates
     * accrued within the window (busy delta x device speed / overlap
     * with the window). A single whole-run window equals
     * ServeRunResult::serviceFairness bit-for-bit.
     */
    double fairness = 1.0;

    /** Clean departures in the window meeting the SLO sojourn target. */
    std::uint64_t goodputEligible = 0;
    std::uint64_t goodputMet = 0;
    double goodput = 1.0;

    std::vector<double> deviceUtil;      ///< busy delta / window, per device
    std::vector<std::size_t> occupancy;  ///< live tasks at close, per device
};

/**
 * The in-process analysis bundle for one serving run: listens to the
 * engine's SessionEvents (registered at construction, before start()),
 * closes timeline windows on the control queue's virtual-time grid —
 * in sharded runs these run at window barriers with workers parked,
 * so reading fleet/engine state is safe and deterministic — and
 * writes the configured series outputs.
 */
class Analyzer
{
  public:
    Analyzer(EventQueue &eq, FleetManager &fleet, ServeEngine &engine,
             const AnalyzeConfig &cfg);

    Analyzer(const Analyzer &) = delete;
    Analyzer &operator=(const Analyzer &) = delete;

    /** Arm the window cadence (no-op when cfg.window == 0). */
    void start();

    /**
     * Close the tracker at the current virtual time and flush the
     * final (possibly partial) window. Idempotent.
     */
    void finalize();

    const AnalyzeConfig &config() const { return cfg; }
    const std::vector<SessionPhases> &sessionPhases() const;
    const std::vector<WindowStats> &timeline() const { return windows; }

    /** Tail attribution with tenant/class labels from the engine. */
    PhaseReport phaseReport() const;

    /** Write timelineCsvPath / timelineJsonPath if configured. */
    void writeOutputs() const;

    /** One-line summary for run results. */
    std::string summary() const;

    /** Render the timeline as CSV (deterministic; tests compare runs). */
    std::string timelineCsv() const;

  private:
    void onEvent(const SessionEvent &e);
    void onBoundary();
    void closeWindow(Tick ws, Tick we);

    EventQueue &eq;
    FleetManager &fleet;
    ServeEngine &engine;
    AnalyzeConfig cfg;

    PhaseTracker tracker;
    std::vector<WindowStats> windows;
    WindowStats accum;            ///< event counts for the open window
    Tick windowStart = 0;
    std::vector<Tick> arrivedAt;  ///< arrival time, by session id
    std::vector<Tick> admittedAt; ///< first admission, by session id
    std::vector<Tick> busyPrev;   ///< busy at window open, by session id
    std::vector<Tick> devBusyPrev;
    bool finalized = false;
};

/**
 * Rebuild lifecycle SessionEvents from recorded trace records (Serve +
 * Fault categories): the post-hoc path behind bench_trace_analyze.
 * Exact only when the ring did not drop; records must be in time order
 * (Observer::mergedRecords order).
 */
std::vector<SessionEvent>
sessionEventsFromTrace(const std::vector<TraceRecord> &records);

/**
 * Map one trace point (name, kind) to a lifecycle event kind. Returns
 * false for records that are not lifecycle transitions. Shared by the
 * in-process replay above and the JSONL-reading CLI.
 */
bool sessionEventKindOf(const std::string &name, TraceKind kind,
                        SessionEvent::Kind &out);

} // namespace obs
} // namespace neon

#endif // NEON_OBS_ANALYZE_HH
