#include "obs/trace.hh"

#include <mutex>
#include <unordered_map>

#include "sim/event_queue.hh"
#include "sim/logging.hh"

namespace neon
{
namespace obs
{

const char *
traceCategoryName(TraceCategory c)
{
    switch (c) {
      case TraceCategory::SimCore: return "simcore";
      case TraceCategory::Sched: return "sched";
      case TraceCategory::Kernel: return "kernel";
      case TraceCategory::Device: return "device";
      case TraceCategory::Fleet: return "fleet";
      case TraceCategory::Serve: return "serve";
      case TraceCategory::Counter: return "counter";
      case TraceCategory::Fault: return "fault";
    }
    return "?";
}

std::uint32_t
parseTraceCategories(const std::string &spec)
{
    std::uint32_t mask = 0;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string tok = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (tok.empty())
            continue;
        if (tok == "all") {
            mask |= allTraceCategories;
            continue;
        }
        if (tok == "default") {
            mask |= defaultTraceCategories;
            continue;
        }
        for (std::uint32_t bit = 0; bit < 8; ++bit) {
            const auto c = static_cast<TraceCategory>(1u << bit);
            if (tok == traceCategoryName(c))
                mask |= (1u << bit);
        }
    }
    return mask;
}

namespace
{

/**
 * Process-global intern table. Lives independently of any recorder so
 * ids handed out to function-local statics in trace points stay valid
 * across recorder swaps and ring wraps. Mutex-guarded: interning is a
 * cold once-per-trace-point path, but in a sharded run that first hit
 * can happen on several worker threads at once.
 */
struct InternTable
{
    std::mutex mtx;
    std::vector<std::string> names;
    std::unordered_map<std::string, std::uint16_t> ids;
};

InternTable &
interns()
{
    static InternTable t;
    return t;
}

} // namespace

std::uint16_t
internTraceName(const char *name)
{
    auto &t = interns();
    std::lock_guard<std::mutex> lock(t.mtx);
    auto it = t.ids.find(name);
    if (it != t.ids.end())
        return it->second;
    if (t.names.size() >= 0xffff)
        panic("trace name intern table overflow");
    const auto id = static_cast<std::uint16_t>(t.names.size());
    t.names.emplace_back(name);
    t.ids.emplace(t.names.back(), id);
    return id;
}

const std::string &
traceNameOf(std::uint16_t id)
{
    auto &t = interns();
    std::lock_guard<std::mutex> lock(t.mtx);
    if (id >= t.names.size())
        panic("unknown interned trace name id ", id);
    return t.names[id];
}

std::size_t
traceNameCount()
{
    auto &t = interns();
    std::lock_guard<std::mutex> lock(t.mtx);
    return t.names.size();
}

TraceRecorder::TraceRecorder(std::size_t capacity)
{
    std::size_t cap = 64;
    while (cap < capacity)
        cap <<= 1;
    ring.resize(cap);
    mask = cap - 1;
}

std::vector<TraceRecord>
TraceRecorder::snapshot() const
{
    std::vector<TraceRecord> out;
    out.reserve(size());
    const std::uint64_t first = head > ring.size() ? head - ring.size() : 0;
    for (std::uint64_t i = first; i < head; ++i)
        out.push_back(ring[static_cast<std::size_t>(i) & mask]);
    return out;
}

namespace
{

// Thread-local: each shard worker points its sink at the shard's own
// ring for the duration of a parallel phase, so the hot enabled path
// stays lock-free — one writer per ring, merged at export time.
thread_local TraceRecorder *sinkRecorder = nullptr;
thread_local const EventQueue *sinkClock = nullptr;

} // namespace

namespace detail
{

void
emitTrace(TraceCategory cat, std::uint16_t name, TraceKind kind,
          const TraceIds &ids, std::int64_t arg0, std::int64_t arg1)
{
    TraceRecorder *rec = sinkRecorder;
    if (!rec)
        return;
    TraceRecord r;
    r.when = sinkClock ? sinkClock->now() : 0;
    r.name = name;
    std::uint8_t bit = 0;
    for (std::uint32_t v = static_cast<std::uint32_t>(cat); v > 1; v >>= 1)
        ++bit;
    r.cat = bit;
    r.kind = kind;
    r.device = ids.device;
    r.pid = ids.pid;
    r.session = ids.session;
    r.arg0 = arg0;
    r.arg1 = arg1;
    rec->push(r);
}

} // namespace detail

void
setTraceSink(TraceRecorder *r, std::uint32_t mask, const EventQueue *clock)
{
    sinkRecorder = r;
    sinkClock = r ? clock : nullptr;
    detail::activeMask = r ? mask : 0;
}

void
installThreadTraceSink(TraceRecorder *r, const EventQueue *clock)
{
    sinkRecorder = r;
    sinkClock = r ? clock : nullptr;
}

TraceRecorder *
traceSink()
{
    return sinkRecorder;
}

} // namespace obs
} // namespace neon
