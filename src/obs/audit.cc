#include "obs/audit.hh"

#include <sstream>
#include <utility>

#include "fault/fault_config.hh"
#include "fleet/fleet_manager.hh"
#include "sched/vtime_tap.hh"
#include "serve/serve_engine.hh"
#include "sim/event_queue.hh"

namespace neon
{
namespace obs
{

std::string
AuditReport::summary() const
{
    std::ostringstream os;
    if (clean()) {
        os << "audit clean: " << checks << " checks, 0 violations";
        return os.str();
    }
    os << "AUDIT VIOLATIONS: " << violations << " of " << checks
       << " checks failed (";
    bool first = true;
    for (const auto &kv : byCheck) {
        if (kv.second == 0)
            continue;
        if (!first)
            os << ", ";
        os << kv.first << " x" << kv.second;
        first = false;
    }
    os << ")";
    return os.str();
}

AuditReport
AuditLog::report() const
{
    AuditReport r;
    r.checks = nChecks;
    r.violations = nViolations;
    r.byCheck.assign(perCheck.begin(), perCheck.end());
    r.samples = samples;
    return r;
}

void
AuditLog::recordViolation(const char *name, Tick when, std::int64_t expected,
                          std::int64_t actual)
{
    ++nViolations;
    ++perCheck[name];
    if (samples.size() < maxSamples)
        samples.push_back({name, when, expected, actual});
}

Auditor::Auditor(EventQueue &q, const AuditConfig &c)
    : eq(q), cfg(c), log_(c.maxSamples)
{
}

void
Auditor::addPeriodic(std::string name, Check fn)
{
    periodic.emplace_back(std::move(name), std::move(fn));
}

void
Auditor::addFinal(std::string name, Check fn)
{
    finals.emplace_back(std::move(name), std::move(fn));
}

void
Auditor::addMonotone(const std::string &name, std::function<double()> probe)
{
    // The closure owns both the watched probe and the last observation;
    // the check name must outlive calls, so it rides in the closure too.
    struct Watch
    {
        std::string name;
        std::function<double()> probe;
        double last = 0.0;
        bool seen = false;
    };
    auto w = std::make_shared<Watch>();
    w->name = name;
    w->probe = std::move(probe);
    addPeriodic(name, [w](AuditLog &log, Tick now) {
        const double v = w->probe();
        if (w->seen) {
            log.check(v >= w->last, w->name.c_str(), now,
                      static_cast<std::int64_t>(w->last),
                      static_cast<std::int64_t>(v));
        }
        w->last = v;
        w->seen = true;
    });
}

void
Auditor::start()
{
    if (started || cfg.period <= 0)
        return;
    started = true;
    eq.scheduleIn(cfg.period, [this] { tick(); });
}

void
Auditor::tick()
{
    if (finalized)
        return;
    for (auto &p : periodic)
        p.second(log_, eq.now());
    eq.scheduleIn(cfg.period, [this] { tick(); });
}

void
Auditor::finalize()
{
    if (finalized)
        return;
    finalized = true;
    for (auto &p : periodic)
        p.second(log_, eq.now());
    for (auto &f : finals)
        f.second(log_, eq.now());
}

void
registerFleetAudits(Auditor &a, FleetManager &fleet,
                    const WatchdogConfig *wd)
{
    for (std::size_t i = 0; i < fleet.deviceCount(); ++i) {
        const std::string dev = "dev" + std::to_string(i);
        if (dynamic_cast<VirtualTimeTap *>(fleet.stack(i).sched.get())) {
            a.addMonotone(dev + ".vtime_monotone", [&fleet, i] {
                const auto *tap = dynamic_cast<const VirtualTimeTap *>(
                    fleet.stack(i).sched.get());
                return static_cast<double>(tap->tapSystemVtime());
            });
        }
        a.addMonotone(dev + ".busy_monotone", [&fleet, i] {
            return static_cast<double>(fleet.stack(i).meter.totalBusy());
        });
    }

    if (wd && wd->enabled) {
        // The watchdog convicts on scan boundaries: a hang that starts
        // right after one scan is first stamped a period later and must
        // then age past the timeout, so detection latency is bounded by
        // timeout + 2 x checkPeriod.
        const WatchdogConfig cfg = *wd;
        a.addFinal("watchdog.latency_bound",
                   [&fleet, cfg](AuditLog &log, Tick now) {
                       for (const WatchdogKill &k : fleet.watchdogKillLog()) {
                           const Tick timeout =
                               k.cause == WatchdogCause::Hang
                               ? cfg.hangTimeout
                               : cfg.runawayTimeout;
                           const Tick bound = timeout + 2 * cfg.checkPeriod;
                           log.check(k.latency <= bound,
                                     "watchdog.latency_bound", now, bound,
                                     k.latency);
                       }
                   });
    }
}

void
registerServeAudits(Auditor &a, ServeEngine &engine, FleetManager &fleet)
{
    // Conservation holds at every event boundary: a session is always
    // exactly one of in-system (queued/placed/backing-off), departed,
    // killed, shed, or throttled.
    a.addPeriodic("serve.conservation", [&engine](AuditLog &log, Tick now) {
        const std::int64_t arrivals =
            static_cast<std::int64_t>(engine.arrivalsSeen());
        const std::int64_t accounted =
            static_cast<std::int64_t>(engine.liveSessions()) +
            static_cast<std::int64_t>(engine.departures()) +
            static_cast<std::int64_t>(engine.killedSessions()) +
            static_cast<std::int64_t>(engine.shedSessions()) +
            static_cast<std::int64_t>(engine.throttledSessions());
        log.check(arrivals == accounted, "serve.conservation", now,
                  arrivals, accounted);
    });

    // The counter identity above could hold while per-session flags
    // drifted (a session double-counted as shed *and* departed, or
    // flagged done with no terminal outcome). The final partition
    // check recounts outcomes from the records themselves: every
    // session is exactly one of served, killed, shed, throttled, or
    // still in-system, and each tally matches its engine counter.
    a.addFinal("serve.outcome_partition",
               [&engine](AuditLog &log, Tick now) {
                   std::int64_t served = 0, killed = 0, shed = 0;
                   std::int64_t throttled = 0, inSystem = 0, total = 0;
                   bool exclusive = true;
                   engine.visitSessions([&](const SessionRecord &s, Tick,
                                            std::uint64_t) {
                       ++total;
                       const bool isServed =
                           s.done && !s.killed && !s.shed && !s.throttled;
                       const int ways = (isServed ? 1 : 0) +
                           (s.killed ? 1 : 0) + (s.shed ? 1 : 0) +
                           (s.throttled ? 1 : 0) + (s.done ? 0 : 1);
                       if (ways != 1)
                           exclusive = false;
                       if (!s.done)
                           ++inSystem;
                       else if (s.killed)
                           ++killed;
                       else if (s.throttled)
                           ++throttled;
                       else if (s.shed)
                           ++shed;
                       else
                           ++served;
                   });
                   log.check(exclusive, "serve.outcome_partition", now, 1,
                             0);
                   log.check(served + killed + shed + throttled +
                                 inSystem == total,
                             "serve.outcome_partition", now, total,
                             served + killed + shed + throttled + inSystem);
                   log.check(served ==
                                 static_cast<std::int64_t>(
                                     engine.departures()),
                             "serve.outcome_partition", now,
                             static_cast<std::int64_t>(engine.departures()),
                             served);
                   log.check(shed == static_cast<std::int64_t>(
                                         engine.shedSessions()),
                             "serve.outcome_partition", now,
                             static_cast<std::int64_t>(
                                 engine.shedSessions()),
                             shed);
                   log.check(throttled ==
                                 static_cast<std::int64_t>(
                                     engine.throttledSessions()),
                             "serve.outcome_partition", now,
                             static_cast<std::int64_t>(
                                 engine.throttledSessions()),
                             throttled);
               });

    // Exact usage reconciliation (the runtime form of the tests'
    // expectExactAccounting): every tick and request the meters charged
    // must be attributed to exactly one session, across migrations,
    // evictions, failovers, and kills.
    a.addFinal("serve.usage_reconciliation",
               [&engine, &fleet](AuditLog &log, Tick now) {
                   Tick session_busy = 0;
                   std::uint64_t session_reqs = 0;
                   engine.visitSessions([&](const SessionRecord &, Tick busy,
                                            std::uint64_t reqs) {
                       session_busy += busy;
                       session_reqs += reqs;
                   });
                   Tick meter_busy = 0;
                   std::uint64_t meter_reqs = 0;
                   for (std::size_t i = 0; i < fleet.deviceCount(); ++i) {
                       const UsageMeter &m = fleet.stack(i).meter;
                       meter_busy += m.totalBusy();
                       for (const auto &kv : m.perTaskBusy())
                           meter_reqs += m.requestsOf(kv.first);
                   }
                   log.check(session_busy == meter_busy,
                             "serve.usage_reconciliation", now, meter_busy,
                             session_busy);
                   log.check(session_reqs == meter_reqs,
                             "serve.usage_reconciliation", now,
                             static_cast<std::int64_t>(meter_reqs),
                             static_cast<std::int64_t>(session_reqs));
               });
}

} // namespace obs
} // namespace neon
