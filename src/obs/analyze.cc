#include "obs/analyze.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>

#include "fleet/fleet_manager.hh"
#include "metrics/efficiency.hh"
#include "metrics/slo.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"

namespace neon
{
namespace obs
{

// ----------------------------------------------------------------------
// PhaseTracker
// ----------------------------------------------------------------------

void
PhaseTracker::charge(std::size_t idx, Tick now)
{
    Live &l = live[idx];
    SessionPhases &s = all[idx];
    const Tick d = now - l.since;
    switch (l.state) {
    case State::Queued:
        s.phases.queue += d;
        break;
    case State::OnDevice:
        s.phases.service += d;
        break;
    case State::Backoff:
        s.phases.stall += d;
        break;
    case State::Done:
        break;
    }
    l.since = now;
}

void
PhaseTracker::onEvent(const SessionEvent &e)
{
    if (e.kind == SessionEvent::Kind::Arrive) {
        if (e.session >= all.size()) {
            all.resize(e.session + 1);
            live.resize(e.session + 1);
        }
        SessionPhases &s = all[e.session];
        s.session = e.session;
        s.cls = e.cls;
        s.arrived = e.when;
        s.ended = e.when;
        s.open = true;
        live[e.session] = {State::Queued, e.when};
        return;
    }
    // Trace replay may lack a session's Arrive (ring wrap); partial
    // lifecycles cannot be attributed exactly, so they are skipped.
    if (e.session >= all.size() || live[e.session].state == State::Done)
        return;

    charge(e.session, e.when);
    SessionPhases &s = all[e.session];
    Live &l = live[e.session];
    switch (e.kind) {
    case SessionEvent::Kind::Admit:
        if (s.admitted < 0)
            s.admitted = e.when;
        l.state = State::OnDevice;
        break;
    case SessionEvent::Kind::Migrate:
        l.state = State::OnDevice;
        break;
    case SessionEvent::Kind::Evict:
        l.state = State::Backoff;
        break;
    case SessionEvent::Kind::RetryEnqueue:
        l.state = State::Queued;
        break;
    case SessionEvent::Kind::Depart:
        s.departed = true;
        s.ended = e.when;
        s.open = false;
        l.state = State::Done;
        break;
    case SessionEvent::Kind::Kill:
        s.killed = true;
        s.ended = e.when;
        s.open = false;
        l.state = State::Done;
        break;
    case SessionEvent::Kind::Shed:
        s.shed = true;
        s.ended = e.when;
        s.open = false;
        l.state = State::Done;
        break;
    case SessionEvent::Kind::Throttle:
        s.throttled = true;
        s.ended = e.when;
        s.open = false;
        l.state = State::Done;
        break;
    case SessionEvent::Kind::Preempt:
        // Displaced incarnation waits out its backoff before the
        // requeue (RetryEnqueue) — same stall phase as a fault
        // eviction, since the session is neither queued nor served.
        l.state = State::Backoff;
        break;
    case SessionEvent::Kind::Arrive:
        break; // handled above
    }
}

void
PhaseTracker::finalize(Tick horizon)
{
    for (std::size_t i = 0; i < all.size(); ++i) {
        if (live[i].state == State::Done)
            continue;
        charge(i, horizon);
        all[i].ended = horizon;
        all[i].open = true;
        live[i].state = State::Done;
    }
}

// ----------------------------------------------------------------------
// Tail-attribution report
// ----------------------------------------------------------------------

namespace
{

TailGroup
makeGroup(const std::string &key,
          const std::vector<const SessionPhases *> &members)
{
    TailGroup g;
    g.key = key;
    g.sessions = members.size();

    std::vector<double> in_system_ms;
    in_system_ms.reserve(members.size());
    for (const SessionPhases *s : members)
        in_system_ms.push_back(toMsec(s->inSystem()));
    const LatencySummary lat = summarizeLatencies(in_system_ms);
    g.meanMs = lat.mean;
    g.p95Ms = lat.p95;
    g.p99Ms = lat.p99;

    const auto shares = [](const std::vector<const SessionPhases *> &ss) {
        PhaseShares out;
        double q = 0, sv = 0, m = 0, st = 0, total = 0;
        for (const SessionPhases *s : ss) {
            q += static_cast<double>(s->phases.queue);
            sv += static_cast<double>(s->phases.service);
            m += static_cast<double>(s->phases.migration);
            st += static_cast<double>(s->phases.stall);
            total += static_cast<double>(s->inSystem());
        }
        if (total > 0.0) {
            out.queue = q / total;
            out.service = sv / total;
            out.migration = m / total;
            out.stall = st / total;
        }
        return out;
    };
    g.meanShare = shares(members);

    std::vector<const SessionPhases *> tail;
    for (const SessionPhases *s : members) {
        if (toMsec(s->inSystem()) >= g.p95Ms)
            tail.push_back(s);
    }
    g.tailShare = shares(tail);

    g.dominantPhase = "service";
    double best = g.tailShare.service;
    if (g.tailShare.queue > best) {
        best = g.tailShare.queue;
        g.dominantPhase = "queue";
    }
    if (g.tailShare.migration > best) {
        best = g.tailShare.migration;
        g.dominantPhase = "migration";
    }
    if (g.tailShare.stall > best) {
        best = g.tailShare.stall;
        g.dominantPhase = "stall";
    }
    return g;
}

std::string
formatShares(const PhaseShares &s)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "q %4.1f%% s %5.1f%% m %4.1f%% st %4.1f%%",
                  100.0 * s.queue, 100.0 * s.service, 100.0 * s.migration,
                  100.0 * s.stall);
    return buf;
}

void
formatGroup(std::ostringstream &os, const TailGroup &g)
{
    char head[160];
    std::snprintf(head, sizeof(head),
                  "  %-24s %6llu sessions  mean %8.2fms  p95 %8.2fms  "
                  "p99 %8.2fms\n",
                  g.key.c_str(),
                  static_cast<unsigned long long>(g.sessions), g.meanMs,
                  g.p95Ms, g.p99Ms);
    os << head;
    os << "    all :  " << formatShares(g.meanShare) << "\n";
    os << "    tail:  " << formatShares(g.tailShare)
       << "  dominant: " << g.dominantPhase << "\n";
}

} // namespace

PhaseReport
buildPhaseReport(
    const std::vector<SessionPhases> &sessions,
    const std::function<std::string(const SessionPhases &)> &tenant_of,
    const std::function<std::string(const SessionPhases &)> &class_of)
{
    PhaseReport r;
    std::vector<const SessionPhases *> tracked;
    std::map<std::string, std::vector<const SessionPhases *>> by_tenant;
    std::map<std::string, std::vector<const SessionPhases *>> by_class;
    for (const SessionPhases &s : sessions) {
        if (s.ended < s.arrived)
            continue; // untracked replay gap
        tracked.push_back(&s);
        by_tenant[tenant_of(s)].push_back(&s);
        by_class[class_of(s)].push_back(&s);
    }
    r.overall = makeGroup("all", tracked);
    for (const auto &kv : by_tenant)
        r.byTenant.push_back(makeGroup(kv.first, kv.second));
    for (const auto &kv : by_class)
        r.byClass.push_back(makeGroup(kv.first, kv.second));
    return r;
}

std::string
formatPhaseReport(const PhaseReport &report)
{
    std::ostringstream os;
    os << "phase attribution (queue / service / migration / stall, "
          "shares of in-system time)\n";
    formatGroup(os, report.overall);
    if (report.byTenant.size() > 1) {
        os << " by tenant:\n";
        for (const TailGroup &g : report.byTenant)
            formatGroup(os, g);
    }
    if (report.byClass.size() > 1) {
        os << " by class:\n";
        for (const TailGroup &g : report.byClass)
            formatGroup(os, g);
    }
    return os.str();
}

// ----------------------------------------------------------------------
// Analyzer
// ----------------------------------------------------------------------

Analyzer::Analyzer(EventQueue &q, FleetManager &f, ServeEngine &e,
                   const AnalyzeConfig &c)
    : eq(q), fleet(f), engine(e), cfg(c)
{
    engine.addSessionListener(
        [this](const SessionEvent &ev) { onEvent(ev); });
}

void
Analyzer::onEvent(const SessionEvent &e)
{
    if (cfg.phases)
        tracker.onEvent(e);

    if (e.session >= admittedAt.size()) {
        admittedAt.resize(e.session + 1, -1);
        arrivedAt.resize(e.session + 1, -1);
    }

    switch (e.kind) {
    case SessionEvent::Kind::Arrive:
        ++accum.arrivals;
        arrivedAt[e.session] = e.when;
        break;
    case SessionEvent::Kind::Admit:
        if (admittedAt[e.session] < 0)
            admittedAt[e.session] = e.when;
        break;
    case SessionEvent::Kind::Depart: {
        ++accum.departures;
        const Tick starget = engine.config().slo.sojournTarget;
        const std::vector<ServeClass> &classes = engine.workloadClasses();
        const Tick own = e.cls < classes.size()
            ? classes[e.cls].queueBudget : 0;
        const Tick qtarget =
            own > 0 ? own : engine.config().slo.queueTarget;
        if (starget > 0 || qtarget > 0) {
            ++accum.goodputEligible;
            const Tick admitted = admittedAt[e.session];
            const Tick arrived = arrivedAt[e.session];
            bool met = admitted >= 0;
            if (met && starget > 0 && e.when - admitted > starget)
                met = false;
            if (met && qtarget > 0 &&
                (arrived < 0 || admitted - arrived > qtarget))
                met = false;
            if (met)
                ++accum.goodputMet;
        }
        break;
    }
    case SessionEvent::Kind::Kill:
        ++accum.kills;
        break;
    case SessionEvent::Kind::Shed:
        ++accum.sheds;
        break;
    case SessionEvent::Kind::Throttle:
        ++accum.throttled;
        break;
    case SessionEvent::Kind::Preempt:
        ++accum.preempts;
        break;
    default:
        break;
    }
}

void
Analyzer::start()
{
    if (cfg.window > 0)
        eq.scheduleIn(cfg.window, [this] { onBoundary(); });
}

void
Analyzer::onBoundary()
{
    if (finalized)
        return;
    closeWindow(windowStart, eq.now());
    windowStart = eq.now();
    eq.scheduleIn(cfg.window, [this] { onBoundary(); });
}

void
Analyzer::closeWindow(Tick ws, Tick we)
{
    WindowStats w = accum;
    accum = WindowStats{};
    w.start = ws;
    w.end = we;

    // Speed-normalized service rates accrued within the window; a
    // whole-run window reduces to exactly the statistic behind
    // ServeRunResult::serviceFairness (same filter, same enumeration
    // order, same arithmetic).
    std::vector<double> rates;
    engine.visitSessions([&](const SessionRecord &s, Tick busy,
                             std::uint64_t) {
        if (s.id >= busyPrev.size())
            busyPrev.resize(s.id + 1, 0);
        const Tick prev = busyPrev[s.id];
        busyPrev[s.id] = busy;
        if (s.admitted < 0 || s.killed)
            return;
        const Tick end = s.departed >= 0 ? s.departed : we;
        const Tick overlap =
            std::min(end, we) - std::max(s.admitted, ws);
        if (overlap <= 0)
            return;
        double speed = 1.0;
        if (!s.devices.empty()) {
            speed =
                fleet.stack(s.devices.back()).device.config().speedFactor;
            if (speed <= 0.0)
                speed = 1.0;
        }
        rates.push_back(static_cast<double>(busy - prev) * speed /
                        static_cast<double>(overlap));
    });
    w.fairness = jainIndex(rates);

    if (devBusyPrev.size() < fleet.deviceCount())
        devBusyPrev.resize(fleet.deviceCount(), 0);
    const std::vector<DeviceLoadView> loads = fleet.loadViews();
    for (std::size_t i = 0; i < fleet.deviceCount(); ++i) {
        const Tick b = fleet.stack(i).meter.totalBusy();
        w.deviceUtil.push_back(
            we > ws ? static_cast<double>(b - devBusyPrev[i]) /
                    static_cast<double>(we - ws)
                    : 0.0);
        devBusyPrev[i] = b;
        w.occupancy.push_back(loads[i].assignedTasks);
    }

    w.queueDepth = engine.admissionState().pendingCount();
    w.liveSessions = engine.liveSessions();
    w.goodput = w.goodputEligible > 0
        ? static_cast<double>(w.goodputMet) /
            static_cast<double>(w.goodputEligible)
        : 1.0;
    windows.push_back(std::move(w));
}

void
Analyzer::finalize()
{
    if (finalized)
        return;
    if (cfg.phases)
        tracker.finalize(eq.now());
    if (cfg.window > 0 && (eq.now() > windowStart || windows.empty()))
        closeWindow(windowStart, eq.now());
    finalized = true;
}

const std::vector<SessionPhases> &
Analyzer::sessionPhases() const
{
    return tracker.sessions();
}

PhaseReport
Analyzer::phaseReport() const
{
    const std::vector<ServeClass> &classes = engine.workloadClasses();
    const auto class_of = [&classes](const SessionPhases &s) {
        return s.cls < classes.size() ? classes[s.cls].label
                                      : "class" + std::to_string(s.cls);
    };
    const auto tenant_of = [&classes, &class_of](const SessionPhases &s) {
        if (s.cls < classes.size() && !classes[s.cls].tenant.empty())
            return classes[s.cls].tenant;
        return class_of(s);
    };
    return buildPhaseReport(tracker.sessions(), tenant_of, class_of);
}

namespace
{

/** Deterministic double rendering for series outputs. */
std::string
fmtDouble(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

} // namespace

std::string
Analyzer::timelineCsv() const
{
    std::ostringstream os;
    os << "start_ms,end_ms,arrivals,departures,kills,sheds,throttled,"
          "preempts,queue_depth,"
          "live_sessions,fairness,goodput,goodput_eligible,goodput_met";
    for (std::size_t i = 0; i < fleet.deviceCount(); ++i)
        os << ",util_dev" << i;
    for (std::size_t i = 0; i < fleet.deviceCount(); ++i)
        os << ",occ_dev" << i;
    os << "\n";
    for (const WindowStats &w : windows) {
        os << fmtDouble(toMsec(w.start)) << "," << fmtDouble(toMsec(w.end))
           << "," << w.arrivals << "," << w.departures << "," << w.kills
           << "," << w.sheds << "," << w.throttled << "," << w.preempts
           << "," << w.queueDepth << "," << w.liveSessions
           << "," << fmtDouble(w.fairness) << "," << fmtDouble(w.goodput)
           << "," << w.goodputEligible << "," << w.goodputMet;
        for (double u : w.deviceUtil)
            os << "," << fmtDouble(u);
        for (std::size_t o : w.occupancy)
            os << "," << o;
        os << "\n";
    }
    return os.str();
}

void
Analyzer::writeOutputs() const
{
    if (!cfg.timelineCsvPath.empty()) {
        std::ofstream os(cfg.timelineCsvPath);
        if (!os)
            fatal("cannot open timeline output '", cfg.timelineCsvPath, "'");
        os << timelineCsv();
    }
    if (!cfg.timelineJsonPath.empty()) {
        std::ofstream os(cfg.timelineJsonPath);
        if (!os)
            fatal("cannot open timeline output '", cfg.timelineJsonPath,
                  "'");
        os << "[\n";
        for (std::size_t i = 0; i < windows.size(); ++i) {
            const WindowStats &w = windows[i];
            os << "  {\"start_ms\": " << fmtDouble(toMsec(w.start))
               << ", \"end_ms\": " << fmtDouble(toMsec(w.end))
               << ", \"arrivals\": " << w.arrivals
               << ", \"departures\": " << w.departures
               << ", \"kills\": " << w.kills << ", \"sheds\": " << w.sheds
               << ", \"throttled\": " << w.throttled
               << ", \"preempts\": " << w.preempts
               << ", \"queue_depth\": " << w.queueDepth
               << ", \"live_sessions\": " << w.liveSessions
               << ", \"fairness\": " << fmtDouble(w.fairness)
               << ", \"goodput\": " << fmtDouble(w.goodput)
               << ", \"util\": [";
            for (std::size_t d = 0; d < w.deviceUtil.size(); ++d)
                os << (d ? ", " : "") << fmtDouble(w.deviceUtil[d]);
            os << "], \"occupancy\": [";
            for (std::size_t d = 0; d < w.occupancy.size(); ++d)
                os << (d ? ", " : "") << w.occupancy[d];
            os << "]}" << (i + 1 < windows.size() ? "," : "") << "\n";
        }
        os << "]\n";
    }
}

std::string
Analyzer::summary() const
{
    std::ostringstream os;
    bool any = false;
    if (cfg.phases) {
        os << tracker.sessions().size() << " sessions phase-attributed";
        any = true;
    }
    if (cfg.window > 0) {
        if (any)
            os << "; ";
        os << windows.size() << " timeline windows of "
           << toMsec(cfg.window) << "ms";
        any = true;
    }
    return os.str();
}

// ----------------------------------------------------------------------
// Trace replay
// ----------------------------------------------------------------------

bool
sessionEventKindOf(const std::string &name, TraceKind kind,
                   SessionEvent::Kind &out)
{
    if (kind == TraceKind::AsyncBegin && name == "session") {
        out = SessionEvent::Kind::Arrive;
        return true;
    }
    if (kind != TraceKind::Instant)
        return false;
    if (name == "serve.admit" || name == "serve.failover" ||
        name == "serve.preempt_resume") {
        out = SessionEvent::Kind::Admit;
        return true;
    }
    if (name == "serve.migrate") {
        out = SessionEvent::Kind::Migrate;
        return true;
    }
    if (name == "serve.evict") {
        out = SessionEvent::Kind::Evict;
        return true;
    }
    if (name == "serve.retry_arrive") {
        out = SessionEvent::Kind::RetryEnqueue;
        return true;
    }
    if (name == "serve.depart") {
        out = SessionEvent::Kind::Depart;
        return true;
    }
    if (name == "serve.session_killed") {
        out = SessionEvent::Kind::Kill;
        return true;
    }
    if (name == "serve.shed" || name == "serve.shed_predicted") {
        out = SessionEvent::Kind::Shed;
        return true;
    }
    if (name == "serve.throttle") {
        out = SessionEvent::Kind::Throttle;
        return true;
    }
    if (name == "serve.preempt") {
        out = SessionEvent::Kind::Preempt;
        return true;
    }
    if (name == "serve.preempt_requeue") {
        out = SessionEvent::Kind::RetryEnqueue;
        return true;
    }
    return false;
}

std::vector<SessionEvent>
sessionEventsFromTrace(const std::vector<TraceRecord> &records)
{
    std::vector<SessionEvent> out;
    for (const TraceRecord &r : records) {
        if (r.session < 0)
            continue;
        SessionEvent::Kind kind;
        if (!sessionEventKindOf(traceNameOf(r.name), r.kind, kind))
            continue;
        SessionEvent e;
        e.kind = kind;
        e.when = r.when;
        e.session = static_cast<std::uint64_t>(r.session);
        e.device = r.device;
        if (kind == SessionEvent::Kind::Arrive)
            e.cls = static_cast<std::size_t>(r.arg0);
        out.push_back(e);
    }
    return out;
}

} // namespace obs
} // namespace neon
