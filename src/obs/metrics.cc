#include "obs/metrics.hh"

#include <bit>

#include "obs/trace.hh"
#include "sim/logging.hh"

namespace neon
{
namespace obs
{

double
MetricsRegistry::Entry::read() const
{
    switch (kind) {
      case Kind::Count:
        return static_cast<double>(count->value());
      case Kind::Gaug:
        return gaug->value();
      case Kind::Probe:
        return fn();
    }
    return 0.0;
}

MetricsRegistry::~MetricsRegistry()
{
    stopSampling();
}

MetricsRegistry::Entry &
MetricsRegistry::ensure(Entry::Kind kind, const std::string &name)
{
    for (auto &e : entries) {
        if (e->name == name) {
            if (e->kind != kind)
                panic("metric '", name, "' re-registered with another kind");
            return *e;
        }
    }
    auto e = std::make_unique<Entry>();
    e->kind = kind;
    e->name = name;
    e->seriesIdx = series_.size();
    series_.push_back({name, {}});
    entries.push_back(std::move(e));
    return *entries.back();
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    Entry &e = ensure(Entry::Kind::Count, name);
    if (!e.count)
        e.count = std::make_unique<Counter>();
    return *e.count;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    Entry &e = ensure(Entry::Kind::Gaug, name);
    if (!e.gaug)
        e.gaug = std::make_unique<Gauge>();
    return *e.gaug;
}

void
MetricsRegistry::probe(const std::string &name, std::function<double()> fn)
{
    Entry &e = ensure(Entry::Kind::Probe, name);
    e.fn = std::move(fn);
}

Log2Histogram &
MetricsRegistry::histogram(const std::string &name, unsigned max_bin)
{
    for (auto &[n, h] : hists) {
        if (n == name)
            return *h;
    }
    hists.emplace_back(name, std::make_unique<Log2Histogram>(max_bin));
    return *hists.back().second;
}

const std::vector<std::pair<std::string, const Log2Histogram *>>
MetricsRegistry::histograms() const
{
    std::vector<std::pair<std::string, const Log2Histogram *>> out;
    out.reserve(hists.size());
    for (const auto &[n, h] : hists)
        out.emplace_back(n, h.get());
    return out;
}

void
MetricsRegistry::startSampling(EventQueue &q, Tick p)
{
    if (p <= 0)
        panic("metrics sample period must be positive, got ", p);
    stopSampling();
    eq = &q;
    period = p;
    scheduleNext();
}

void
MetricsRegistry::stopSampling()
{
    if (eq && pending != invalidEventId)
        eq->cancel(pending);
    pending = invalidEventId;
    eq = nullptr;
}

void
MetricsRegistry::scheduleNext()
{
    pending = eq->scheduleIn(period, [this] {
        sampleNow(*eq);
        scheduleNext();
    });
}

void
MetricsRegistry::sampleNow(EventQueue &q)
{
    const Tick now = q.now();
    for (auto &e : entries) {
        const double v = e->read();
        series_[e->seriesIdx].samples.push_back({now, v});
        // Mirror into the trace ring so timeline exports grow counter
        // tracks; the name is interned per metric, not per literal, so
        // bypass the macro's static-id path.
        if (traceEnabled(TraceCategory::Counter)) {
            const std::uint16_t nid = internTraceName(e->name.c_str());
            detail::emitTrace(TraceCategory::Counter, nid,
                              TraceKind::CounterVal, TraceIds{},
                              std::bit_cast<std::int64_t>(v), 0);
        }
    }
}

void
MetricsRegistry::printCsv(std::ostream &os) const
{
    os << "time_us";
    for (const auto &s : series_)
        os << ',' << s.name;
    os << '\n';
    // All series share the sampling cadence, so row i of each lines up;
    // a series registered late just has fewer leading rows.
    std::size_t rows = 0;
    for (const auto &s : series_)
        rows = std::max(rows, s.samples.size());
    for (std::size_t i = 0; i < rows; ++i) {
        Tick when = 0;
        for (const auto &s : series_) {
            if (i < s.samples.size()) {
                when = s.samples[i].when;
                break;
            }
        }
        os << toUsec(when);
        for (const auto &s : series_) {
            os << ',';
            if (i < s.samples.size())
                os << s.samples[i].value;
        }
        os << '\n';
    }
}

void
MetricsRegistry::printJson(std::ostream &os) const
{
    os << "{\n";
    bool firstSeries = true;
    for (const auto &s : series_) {
        if (!firstSeries)
            os << ",\n";
        firstSeries = false;
        os << "  \"" << s.name << "\": [";
        bool first = true;
        for (const auto &sm : s.samples) {
            if (!first)
                os << ", ";
            first = false;
            os << "[" << toUsec(sm.when) << ", " << sm.value << "]";
        }
        os << "]";
    }
    os << "\n}\n";
}

} // namespace obs
} // namespace neon
