#include "obs/observe.hh"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "fleet/fleet_manager.hh"
#include "obs/chrome_trace.hh"
#include "sched/vtime_tap.hh"
#include "serve/serve_engine.hh"
#include "sim/logging.hh"
#include "sim/sharded_engine.hh"

namespace neon
{
namespace obs
{

Observer::Observer(EventQueue &q, const ObserveConfig &c)
    : eq(q), cfg(c), ring(c.bufferCapacity)
{
    setTraceSink(&ring, cfg.categories, &eq);
}

Observer::~Observer()
{
    // Detach the shard rings before they are destroyed; the engine
    // outlives the Observer (world member order) but must not point
    // workers at freed memory.
    if (shardEngine)
        shardEngine->clearShardTraceSinks();
    // Another Observer may have taken over the sink (nested worlds in
    // slowdown-baseline runs); only deactivate if it is still ours.
    if (traceSink() == &ring)
        setTraceSink(nullptr, 0);
}

void
Observer::attachFleet(FleetManager &fleet)
{
    registry.probe("eq.executed", [this] {
        return static_cast<double>(eq.executed());
    });
    for (std::size_t i = 0; i < fleet.deviceCount(); ++i) {
        const std::string dev = "dev" + std::to_string(i);
        registry.probe(dev + ".queue_depth", [&fleet, i] {
            return static_cast<double>(fleet.loadViews()[i].assignedTasks);
        });
        if (dynamic_cast<VirtualTimeTap *>(fleet.stack(i).sched.get())) {
            registry.probe(dev + ".norm_vtime_ms", [&fleet, i] {
                const auto *tap = dynamic_cast<const VirtualTimeTap *>(
                    fleet.stack(i).sched.get());
                const double speed =
                    fleet.stack(i).device.config().speedFactor;
                return toMsec(tap->tapSystemVtime()) * speed;
            });
        }
    }
    registry.probe("fleet.vtime_lag_ms", [&fleet] {
        double lo = 0.0, hi = 0.0;
        bool any = false;
        for (std::size_t i = 0; i < fleet.deviceCount(); ++i) {
            const auto *tap = dynamic_cast<const VirtualTimeTap *>(
                fleet.stack(i).sched.get());
            if (!tap)
                continue;
            const double norm = toMsec(tap->tapSystemVtime()) *
                                fleet.stack(i).device.config().speedFactor;
            if (!any) {
                lo = hi = norm;
                any = true;
            } else {
                lo = std::min(lo, norm);
                hi = std::max(hi, norm);
            }
        }
        return any ? hi - lo : 0.0;
    });
}

void
Observer::attachServe(ServeEngine &engine)
{
    registry.probe("serve.queue_len", [&engine] {
        return static_cast<double>(engine.admissionState().pendingCount());
    });
    registry.probe("serve.live_sessions", [&engine] {
        return static_cast<double>(engine.liveSessions());
    });
}

void
Observer::attachShards(ShardedEngine &engine)
{
    if (!engine.parallel())
        return;
    shardEngine = &engine;
    shardRings.reserve(engine.shardCount());
    for (std::size_t s = 0; s < engine.shardCount(); ++s) {
        shardRings.push_back(
            std::make_unique<TraceRecorder>(cfg.bufferCapacity));
        engine.setShardTraceSink(s, shardRings.back().get());
    }
}

void
Observer::start()
{
    if (cfg.samplePeriod > 0)
        registry.startSampling(eq, cfg.samplePeriod);
}

std::vector<TraceRecord>
Observer::mergedRecords() const
{
    std::vector<TraceRecord> all = ring.snapshot();
    for (const auto &r : shardRings) {
        const std::vector<TraceRecord> s = r->snapshot();
        all.insert(all.end(), s.begin(), s.end());
    }
    // Stable by virtual time: ties keep ring order (main ring first,
    // then shards in index order), so the merged timeline is as
    // deterministic as the run that produced it.
    std::stable_sort(all.begin(), all.end(),
                     [](const TraceRecord &a, const TraceRecord &b) {
                         return a.when < b.when;
                     });
    return all;
}

std::uint64_t
Observer::droppedRecords() const
{
    std::uint64_t dropped = ring.dropped();
    for (const auto &r : shardRings)
        dropped += r->dropped();
    return dropped;
}

namespace
{

/** One record as a JSON object (bench_trace_analyze input line). */
void
printRecordJson(std::ostream &os, const TraceRecord &r)
{
    os << "{\"when\": " << r.when << ", \"name\": \""
       << traceNameOf(r.name) << "\", \"cat\": \""
       << traceCategoryName(r.category()) << "\", \"kind\": "
       << static_cast<int>(r.kind) << ", \"device\": " << r.device
       << ", \"pid\": " << r.pid << ", \"session\": " << r.session
       << ", \"arg0\": " << r.arg0 << ", \"arg1\": " << r.arg1 << "}\n";
}

} // namespace

void
Observer::writeOutputs()
{
    if (!cfg.tracePath.empty()) {
        std::ofstream os(cfg.tracePath);
        if (!os)
            fatal("cannot open trace output '", cfg.tracePath, "'");
        if (shardRings.empty())
            writeChromeTrace(os, ring);
        else
            writeChromeTrace(os, buildChromeEvents(mergedRecords()));
    }
    if (!cfg.countersCsvPath.empty()) {
        std::ofstream os(cfg.countersCsvPath);
        if (!os)
            fatal("cannot open counters output '", cfg.countersCsvPath, "'");
        registry.printCsv(os);
    }
    if (!cfg.recordsJsonlPath.empty()) {
        std::ofstream os(cfg.recordsJsonlPath);
        if (!os)
            fatal("cannot open records output '", cfg.recordsJsonlPath,
                  "'");
        for (const TraceRecord &r : mergedRecords())
            printRecordJson(os, r);
    }
}

std::string
Observer::summary() const
{
    std::uint64_t written = ring.written();
    std::uint64_t dropped = ring.dropped();
    std::size_t retained = ring.size();
    for (const auto &r : shardRings) {
        written += r->written();
        dropped += r->dropped();
        retained += r->size();
    }
    std::ostringstream os;
    os << written << " trace records captured, " << retained
       << " retained, " << dropped << " dropped";
    if (!shardRings.empty())
        os << " (across " << shardRings.size() + 1 << " rings)";
    if (!registry.series().empty()) {
        std::size_t samples = 0;
        for (const auto &s : registry.series())
            samples = std::max(samples, s.samples.size());
        os << "; " << registry.series().size() << " metrics x " << samples
           << " samples";
    }
    return os.str();
}

} // namespace obs
} // namespace neon
