/**
 * @file
 * Harness-facing observability bundle.
 *
 * ObserveConfig rides inside ExperimentConfig so every runner (World,
 * FleetWorld, ServeWorld, examples, benches) can switch tracing and
 * metric sampling on with one config block. Observer owns the trace
 * ring and metrics registry for one run, installs itself as the
 * process trace sink for the run's lifetime (RAII — destruction
 * deactivates every trace point again), and knows how to register the
 * standard fleet/serve probes and write the configured outputs.
 */

#ifndef NEON_OBS_OBSERVE_HH
#define NEON_OBS_OBSERVE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/analyze.hh"
#include "obs/audit.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace neon
{

class FleetManager;
class ServeEngine;
class ShardedEngine;

namespace obs
{

/** Per-run observability configuration (ExperimentConfig::observe). */
struct ObserveConfig
{
    /** Enabled trace categories (TraceCategory bits; 0 = no tracing). */
    std::uint32_t categories = 0;

    /** Trace ring capacity, in records (rounded up to a power of 2). */
    std::size_t bufferCapacity = std::size_t(1) << 16;

    /** Metric sampling cadence in virtual time (0 = no sampling). */
    Tick samplePeriod = 0;

    /** Chrome trace JSON output path (empty = don't write). */
    std::string tracePath;

    /** Counter time-series CSV output path (empty = don't write). */
    std::string countersCsvPath;

    /**
     * Raw trace records as JSON-lines output path (empty = don't
     * write). One object per retained record, in merged virtual-time
     * order — the input format of bench_trace_analyze.
     */
    std::string recordsJsonlPath;

    /** Analysis plane: phase attribution + windowed timelines. */
    AnalyzeConfig analyze;

    /** Invariant auditor (on by default; checks are read-only). */
    AuditConfig audit;

    /** Anything for the trace/metrics capture plane to do? The
     * analyzer and auditor are gated separately (analyze.enabled(),
     * audit.enabled) — they work off engine state, not the ring. */
    bool
    enabled() const
    {
        return categories != 0 || samplePeriod > 0;
    }
};

/** One run's observability state: trace ring + metrics + outputs. */
class Observer
{
  public:
    /** Installs the trace sink immediately (clocked by @p eq). */
    Observer(EventQueue &eq, const ObserveConfig &cfg);

    /** Uninstalls the trace sink. */
    ~Observer();

    Observer(const Observer &) = delete;
    Observer &operator=(const Observer &) = delete;

    TraceRecorder &recorder() { return ring; }
    MetricsRegistry &metrics() { return registry; }
    const ObserveConfig &config() const { return cfg; }

    /**
     * Register the standard per-device probes: devN.queue_depth (live
     * tasks), devN.norm_vtime_ms (speed-normalized DFQ virtual time),
     * fleet.vtime_lag_ms (max-min normalized spread), and eq.executed.
     */
    void attachFleet(FleetManager &fleet);

    /**
     * Register serving-layer probes: serve.queue_len (admission queue)
     * and serve.live_sessions.
     */
    void attachServe(ServeEngine &engine);

    /**
     * Give every shard of a parallel run its own trace ring (same
     * capacity as the main ring), so shard workers record lock-free;
     * writeOutputs() merges all rings by virtual time. No-op for a
     * serial engine.
     */
    void attachShards(ShardedEngine &engine);

    /** Begin the sampling cadence (no-op when samplePeriod == 0). */
    void start();

    /** Write the configured trace JSON / counters CSV outputs. */
    void writeOutputs();

    /** One-line capture summary ("N records, M dropped, ..."). */
    std::string summary() const;

    /** Ring-wrap drops across all rings (0 = the capture is exact). */
    std::uint64_t droppedRecords() const;

    /** All rings (main + shards) merged into virtual-time order. */
    std::vector<TraceRecord> mergedRecords() const;

  private:
    EventQueue &eq;
    ObserveConfig cfg;
    TraceRecorder ring;
    MetricsRegistry registry;

    /** Per-shard rings (attachShards; parallel runs only). */
    std::vector<std::unique_ptr<TraceRecorder>> shardRings;
    ShardedEngine *shardEngine = nullptr;
};

} // namespace obs
} // namespace neon

#endif // NEON_OBS_OBSERVE_HH
