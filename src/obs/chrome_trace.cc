#include "obs/chrome_trace.hh"

#include <bit>
#include <cstdio>
#include <map>
#include <utility>

namespace neon
{
namespace obs
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

namespace
{

struct LaneTable
{
    std::map<std::pair<std::uint32_t, std::string>, std::uint32_t> ids;
    std::map<std::uint32_t, std::uint32_t> next;
    std::vector<ChromeLane> lanes;

    std::uint32_t
    lane(std::uint32_t pid, const std::string &label)
    {
        auto it = ids.find({pid, label});
        if (it != ids.end())
            return it->second;
        const std::uint32_t tid = next[pid]++;
        ids.emplace(std::make_pair(pid, label), tid);
        lanes.push_back({pid, tid, label});
        return tid;
    }
};

} // namespace

ChromeTimeline
buildChromeEvents(const std::vector<TraceRecord> &records)
{
    ChromeTimeline tl;
    LaneTable lanes;
    // Per-lane stack of open span names so orphan Ends (whose Begin
    // fell off the ring) can be dropped instead of emitted unbalanced.
    std::map<std::pair<std::uint32_t, std::uint32_t>,
             std::vector<std::pair<std::string, std::string>>> open;
    double lastTs = 0.0;

    for (const auto &r : records) {
        const std::uint32_t pid =
            r.device >= 0 ? static_cast<std::uint32_t>(r.device) + 1 : 0;
        if (pid + 1 > tl.processCount)
            tl.processCount = pid + 1;
        const std::string &name = traceNameOf(r.name);
        const std::string cat = traceCategoryName(r.category());
        const double ts = toUsec(r.when);
        if (ts > lastTs)
            lastTs = ts;

        ChromeEvent ev;
        ev.ts = ts;
        ev.pid = pid;
        ev.name = name;
        ev.cat = cat;
        ev.argPid = r.pid;
        ev.argA = r.arg0;
        ev.argB = r.arg1;

        switch (r.kind) {
          case TraceKind::Instant:
            ev.ph = 'i';
            ev.tid = lanes.lane(pid, "marks");
            ev.hasArgs = true;
            tl.events.push_back(std::move(ev));
            break;
          case TraceKind::Begin:
          case TraceKind::End: {
            // One lane per span name keeps the B/E stack discipline of
            // a Chrome "thread" even when differently named spans
            // overlap (execute vs. DMA engines, free-run vs. engage).
            const std::uint32_t tid = lanes.lane(pid, name);
            ev.tid = tid;
            auto &stack = open[{pid, tid}];
            if (r.kind == TraceKind::Begin) {
                ev.ph = 'B';
                ev.hasArgs = true;
                stack.emplace_back(name, cat);
            } else {
                if (stack.empty())
                    break; // orphan End: its Begin fell off the ring
                stack.pop_back();
                ev.ph = 'E';
            }
            tl.events.push_back(std::move(ev));
            break;
          }
          case TraceKind::AsyncBegin:
          case TraceKind::AsyncEnd:
            // Sessions live on the global track and overlap freely;
            // the session id keys begin/end pairing.
            ev.ph = r.kind == TraceKind::AsyncBegin ? 'b' : 'e';
            ev.pid = 0;
            ev.tid = lanes.lane(0, "sessions");
            ev.id = r.session;
            ev.hasArgs = r.kind == TraceKind::AsyncBegin;
            tl.events.push_back(std::move(ev));
            break;
          case TraceKind::FlowStart:
          case TraceKind::FlowStep:
          case TraceKind::FlowEnd:
            ev.ph = r.kind == TraceKind::FlowStart  ? 's'
                    : r.kind == TraceKind::FlowStep ? 't'
                                                    : 'f';
            ev.tid = lanes.lane(pid, "marks");
            ev.id = r.session;
            tl.events.push_back(std::move(ev));
            break;
          case TraceKind::CounterVal:
            ev.ph = 'C';
            ev.pid = 0;
            ev.tid = 0;
            ev.hasValue = true;
            ev.value = std::bit_cast<double>(r.arg0);
            tl.events.push_back(std::move(ev));
            break;
        }
    }

    // Close spans still open at the end of the capture at the last
    // seen timestamp so viewers don't stretch them to infinity.
    for (auto &[key, stack] : open) {
        while (!stack.empty()) {
            ChromeEvent ev;
            ev.ph = 'E';
            ev.ts = lastTs;
            ev.pid = key.first;
            ev.tid = key.second;
            ev.name = stack.back().first;
            ev.cat = stack.back().second;
            stack.pop_back();
            tl.events.push_back(std::move(ev));
        }
    }

    tl.lanes = std::move(lanes.lanes);
    return tl;
}

namespace
{

void
writeEvent(std::ostream &os, const ChromeEvent &e)
{
    os << "{\"name\":\"" << jsonEscape(e.name) << "\",\"cat\":\""
       << jsonEscape(e.cat) << "\",\"ph\":\"" << e.ph << "\",\"ts\":"
       << e.ts << ",\"pid\":" << e.pid << ",\"tid\":" << e.tid;
    if (e.ph == 'i')
        os << ",\"s\":\"t\"";
    if (e.id >= 0)
        os << ",\"id\":" << e.id;
    if (e.hasValue) {
        os << ",\"args\":{\"value\":" << e.value << "}";
    } else if (e.hasArgs) {
        os << ",\"args\":{";
        bool first = true;
        if (e.argPid >= 0) {
            os << "\"task\":" << e.argPid;
            first = false;
        }
        if (!first)
            os << ",";
        os << "\"a0\":" << e.argA << ",\"a1\":" << e.argB << "}";
    }
    os << "}";
}

void
writeMeta(std::ostream &os, const char *what, std::uint32_t pid,
          std::uint32_t tid, bool withTid, const std::string &name)
{
    os << "{\"name\":\"" << what << "\",\"ph\":\"M\",\"pid\":" << pid;
    if (withTid)
        os << ",\"tid\":" << tid;
    os << ",\"args\":{\"name\":\"" << jsonEscape(name) << "\"}}";
}

} // namespace

void
writeChromeTrace(std::ostream &os, const ChromeTimeline &tl)
{
    // Default stream precision (6 significant digits) would round
    // microsecond timestamps of multi-second runs onto each other and
    // break per-track monotonicity in the viewer.
    const auto saved = os.precision(15);
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
    bool first = true;
    for (std::uint32_t pid = 0; pid < tl.processCount; ++pid) {
        if (!first)
            os << ",\n";
        first = false;
        const std::string pname =
            pid == 0 ? std::string("fleet")
                     : "device" + std::to_string(pid - 1);
        writeMeta(os, "process_name", pid, 0, false, pname);
    }
    for (const auto &lane : tl.lanes) {
        os << ",\n";
        writeMeta(os, "thread_name", lane.pid, lane.tid, true, lane.name);
    }
    for (const auto &e : tl.events) {
        if (!first)
            os << ",\n";
        first = false;
        writeEvent(os, e);
    }
    os << "\n]}\n";
    os.precision(saved);
}

void
writeChromeTrace(std::ostream &os, const TraceRecorder &rec)
{
    writeChromeTrace(os, buildChromeEvents(rec.snapshot()));
}

} // namespace obs
} // namespace neon
