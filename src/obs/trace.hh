/**
 * @file
 * Zero-overhead-when-off trace plane.
 *
 * Trace points are compiled in everywhere and gated at runtime by a
 * category bitmask: the disabled path of NEON_TRACE() is a single load
 * and predictable branch on `obs::detail::activeMask`, with no
 * allocation, no formatting, and no function call. When a category is
 * enabled, the point appends one fixed-size POD TraceRecord (virtual
 * timestamp, category, interned name id, device/task/session ids, two
 * payload args) to a fixed-capacity ring buffer that overwrites the
 * oldest records on wrap — overwrites are counted, never silent.
 *
 * String names never travel with records: each trace point interns its
 * literal once (process-global table, ids stable for the process
 * lifetime) and records carry the 16-bit id. This keeps the enabled
 * path allocation-free after the first hit, matching the
 * inline_function.hh hot-path discipline of the event core.
 */

#ifndef NEON_OBS_TRACE_HH
#define NEON_OBS_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace neon
{

class EventQueue;

namespace obs
{

/** Trace categories: one bit each, combinable into a mask. */
enum class TraceCategory : std::uint32_t
{
    SimCore = 1u << 0, ///< event-queue step / carve / compaction
    Sched = 1u << 1,   ///< engage/disengage, timeslice, vtime, denial
    Kernel = 1u << 2,  ///< doorbell, park/release, poll, channel, kill
    Device = 1u << 3,  ///< execute/DMA engine dispatch and completion
    Fleet = 1u << 4,   ///< placement, migration, retirement
    Serve = 1u << 5,   ///< session lifecycle, admission, global clock
    Counter = 1u << 6, ///< sampled metric values (counter tracks)
    Fault = 1u << 7,   ///< injected faults, watchdog kills, failover
};

/** Every category except the very hot per-event SimCore points. */
constexpr std::uint32_t defaultTraceCategories =
    static_cast<std::uint32_t>(TraceCategory::Sched) |
    static_cast<std::uint32_t>(TraceCategory::Kernel) |
    static_cast<std::uint32_t>(TraceCategory::Device) |
    static_cast<std::uint32_t>(TraceCategory::Fleet) |
    static_cast<std::uint32_t>(TraceCategory::Serve) |
    static_cast<std::uint32_t>(TraceCategory::Counter) |
    static_cast<std::uint32_t>(TraceCategory::Fault);

/** All categories, including per-event SimCore tracing. */
constexpr std::uint32_t allTraceCategories = (1u << 8) - 1;

/** Short display name of one category ("sched", "serve", ...). */
const char *traceCategoryName(TraceCategory c);

/**
 * Parse a comma-separated category list ("sched,serve", "all",
 * "default") into a mask; unknown names are ignored.
 */
std::uint32_t parseTraceCategories(const std::string &spec);

/** What a trace record marks. */
enum class TraceKind : std::uint8_t
{
    Instant,    ///< a point decision/event
    Begin,      ///< start of a nested span (stack discipline per track)
    End,        ///< end of the innermost open span of the same name
    AsyncBegin, ///< start of an overlappable span, keyed by session id
    AsyncEnd,   ///< end of an overlappable span, keyed by session id
    FlowStart,  ///< first hop of a cross-track arrow, keyed by session
    FlowStep,   ///< intermediate hop of the arrow
    FlowEnd,    ///< final hop of the arrow
    CounterVal, ///< sampled metric value (arg0 = bit-cast double)
};

/** Ids attached to a record; -1 means "not applicable". */
struct TraceIds
{
    std::int16_t device = -1; ///< fleet device index
    std::int32_t pid = -1;    ///< task pid within the device's kernel
    std::int32_t session = -1; ///< serve-layer session id
};

/** One fixed-size POD trace record. */
struct TraceRecord
{
    Tick when = 0;           ///< virtual timestamp
    std::uint16_t name = 0;  ///< interned name id
    std::uint8_t cat = 0;    ///< log2 of the category bit
    TraceKind kind = TraceKind::Instant;
    std::int16_t device = -1;
    std::int16_t pad = 0;
    std::int32_t pid = -1;
    std::int32_t session = -1;
    std::int64_t arg0 = 0;
    std::int64_t arg1 = 0;

    TraceCategory
    category() const
    {
        return static_cast<TraceCategory>(1u << cat);
    }
};

static_assert(sizeof(TraceRecord) == 40, "trace records must stay POD-lean");

/**
 * Intern a trace-point name. The id is stable for the process lifetime
 * and survives any number of ring wraps; re-interning the same string
 * returns the same id. Thread-safe: shard workers hit first-use
 * interning concurrently (each trace point's function-local static).
 */
std::uint16_t internTraceName(const char *name);

/** The string behind an interned id (panics on an unknown id). */
const std::string &traceNameOf(std::uint16_t id);

/** Number of names interned so far (tests). */
std::size_t traceNameCount();

/**
 * Fixed-capacity ring of trace records. Writes are O(1) and never
 * allocate after construction; when full, the oldest record is
 * overwritten and the drop is counted.
 */
class TraceRecorder
{
  public:
    /** @p capacity is rounded up to a power of two (min 64). */
    explicit TraceRecorder(std::size_t capacity = std::size_t(1) << 16);

    std::size_t capacity() const { return ring.size(); }

    /** Records currently held (<= capacity). */
    std::size_t
    size() const
    {
        return head < ring.size() ? static_cast<std::size_t>(head)
                                  : ring.size();
    }

    /** Total records ever written. */
    std::uint64_t written() const { return head; }

    /** Oldest records overwritten by wrap (never silent). */
    std::uint64_t
    dropped() const
    {
        return head > ring.size() ? head - ring.size() : 0;
    }

    /** Append one record (hot enabled path). */
    void
    push(const TraceRecord &r)
    {
        ring[static_cast<std::size_t>(head) & mask] = r;
        ++head;
    }

    /** Copy out the held records, oldest first. */
    std::vector<TraceRecord> snapshot() const;

    /** Forget everything (capacity retained). */
    void clear() { head = 0; }

  private:
    std::vector<TraceRecord> ring;
    std::size_t mask = 0;
    std::uint64_t head = 0; ///< total written; head & mask = next slot
};

namespace detail
{

/**
 * The active category mask: 0 whenever no recorder is installed, so
 * every NEON_TRACE() in the build reduces to one untaken branch.
 */
inline std::uint32_t activeMask = 0;

/** Enabled-path slow half: stamp the virtual time and push. */
void emitTrace(TraceCategory cat, std::uint16_t name, TraceKind kind,
               const TraceIds &ids, std::int64_t arg0, std::int64_t arg1);

} // namespace detail

/**
 * Install @p r as the calling thread's trace sink for the categories
 * in @p mask (null deactivates; the mask drops to 0). @p clock
 * supplies virtual timestamps; without one, records are stamped 0.
 *
 * The category mask is process-global (it is the one branch every
 * disabled trace point pays), while the sink itself is thread-local:
 * in a sharded run the coordinator's records land in the Observer's
 * main ring and each worker redirects to the shard ring of whichever
 * shard it is currently driving (installThreadTraceSink). Only the
 * coordinator — with workers parked at a window barrier — may call
 * setTraceSink, so the mask write is ordered by the barrier handoff.
 */
void setTraceSink(TraceRecorder *r, std::uint32_t mask,
                  const EventQueue *clock = nullptr);

/**
 * Point the calling thread's sink at @p r clocked by @p clock without
 * touching the global category mask. Workers bracket each shard's
 * parallel phase with this; null detaches.
 */
void installThreadTraceSink(TraceRecorder *r, const EventQueue *clock);

/** The calling thread's installed sink, if any. */
TraceRecorder *traceSink();

/** Is tracing of @p c currently enabled? (Hot-path inline.) */
inline bool
traceEnabled(TraceCategory c)
{
    return (detail::activeMask & static_cast<std::uint32_t>(c)) != 0;
}

} // namespace obs
} // namespace neon

/**
 * A trace point: NEON_TRACE(cat, kind, "name", ids, arg0, arg1).
 * Disabled categories cost one branch; enabled ones intern the name
 * literal on first hit (function-local static) and append one POD
 * record. Variadic so a braced TraceIds{...} initializer — whose commas
 * the preprocessor would otherwise split — passes through verbatim.
 */
#define NEON_TRACE(cat, kind, name_literal, ...)                           \
    do {                                                                   \
        if (::neon::obs::detail::activeMask &                              \
            static_cast<std::uint32_t>(cat)) [[unlikely]] {                \
            static const std::uint16_t neon_trace_nid_ =                   \
                ::neon::obs::internTraceName(name_literal);                \
            ::neon::obs::detail::emitTrace(cat, neon_trace_nid_, kind,     \
                                           __VA_ARGS__);                   \
        }                                                                  \
    } while (0)

#endif // NEON_OBS_TRACE_HH
