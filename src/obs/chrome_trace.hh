/**
 * @file
 * Chrome trace-event JSON export.
 *
 * Converts a TraceRecorder snapshot into the Trace Event Format that
 * chrome://tracing and Perfetto load directly: per-device process
 * tracks (pid = device index + 1; pid 0 carries fleet/serve-wide
 * events and counter tracks), duration spans with per-track stack
 * discipline, async session spans keyed by session id (so they
 * overlap freely), flow arrows following a session across device
 * tracks (admission -> migrations -> departure), and counter tracks
 * from sampled metrics.
 *
 * Export is two-stage on purpose: buildChromeEvents() produces an
 * inspectable intermediate event list (what the integration tests
 * check for track-monotonic timestamps and span pairing) and
 * writeChromeTrace() merely serializes it.
 */

#ifndef NEON_OBS_CHROME_TRACE_HH
#define NEON_OBS_CHROME_TRACE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "obs/trace.hh"

namespace neon
{
namespace obs
{

/** One Chrome trace event, ready to serialize. */
struct ChromeEvent
{
    char ph = 'i';          ///< B/E/i/b/e/s/t/f/C
    double ts = 0.0;        ///< microseconds
    std::uint32_t pid = 0;  ///< device track (device + 1; 0 = global)
    std::uint32_t tid = 0;  ///< lane within the track
    std::string name;
    std::string cat;
    std::int64_t id = -1;   ///< async/flow binding id (session)
    bool hasValue = false;  ///< C events carry a numeric value
    double value = 0.0;
    std::int32_t argPid = -1;     ///< "pid" arg (task id), -1 = none
    std::int64_t argA = 0;        ///< extra payload args
    std::int64_t argB = 0;
    bool hasArgs = false;
};

/** A named lane (Chrome "thread") within a device track. */
struct ChromeLane
{
    std::uint32_t pid;
    std::uint32_t tid;
    std::string name;
};

/** The built timeline: events plus track/lane naming metadata. */
struct ChromeTimeline
{
    std::vector<ChromeEvent> events;
    std::vector<ChromeLane> lanes;
    std::uint32_t processCount = 1; ///< pids 0..processCount-1 in use
};

/**
 * Lower trace records into Chrome events.
 *
 * Records must be in capture order (TraceRecorder::snapshot()). Begin/
 * End records pair up per (track, name) lane; an End with no open
 * Begin on its lane (the Begin fell off the ring) is dropped rather
 * than emitted unbalanced, and spans still open at the end of the
 * capture are closed at the last seen timestamp so viewers don't
 * extend them to infinity.
 */
ChromeTimeline buildChromeEvents(const std::vector<TraceRecord> &records);

/** Serialize a built timeline as Chrome trace JSON. */
void writeChromeTrace(std::ostream &os, const ChromeTimeline &tl);

/** Convenience: build + serialize a recorder snapshot. */
void writeChromeTrace(std::ostream &os, const TraceRecorder &rec);

/** Escape a string for embedding in a JSON literal (no quotes added). */
std::string jsonEscape(const std::string &s);

} // namespace obs
} // namespace neon

#endif // NEON_OBS_CHROME_TRACE_HH
