/**
 * @file
 * AvailabilityReport: injected vs. detected vs. recovered, assembled
 * by the harness from the injector's record, the watchdog kill logs,
 * and the serve layer's retry counters.
 */

#ifndef NEON_FAULT_AVAILABILITY_HH
#define NEON_FAULT_AVAILABILITY_HH

#include <cstdint>

namespace neon
{

/** Fault-plane outcome of one run. */
struct AvailabilityReport
{
    // Injection side.
    std::uint64_t injectedDeaths = 0;
    std::uint64_t injectedStalls = 0;
    std::uint64_t injectedHangs = 0;
    std::uint64_t skippedInjections = 0; ///< target was already down/empty

    // Detection side.
    std::uint64_t detectedHangs = 0;     ///< injected hangs the watchdog killed
    std::uint64_t watchdogHangKills = 0; ///< all hang-cause kills
    std::uint64_t watchdogRunawayKills = 0;
    std::uint64_t schedulerKills = 0;    ///< per-device protection (non-watchdog)

    // Recovery side (sessions interrupted by device death).
    std::uint64_t evictedSessions = 0;
    std::uint64_t recoveredSessions = 0; ///< evicted and later departed
    std::uint64_t shedSessions = 0;      ///< retry budget exhausted
    std::uint64_t repairs = 0;           ///< outages closed within the run

    /** Mean time to detect an injected hang (ms); 0 if none detected. */
    double mttdMs = 0.0;

    /** Mean outage (death-to-repair) duration (ms); 0 if no outage. */
    double mttrMs = 0.0;

    /** Fraction of device-seconds the fleet was up (1.0 = no faults). */
    double availability = 1.0;
};

} // namespace neon

#endif // NEON_FAULT_AVAILABILITY_HH
