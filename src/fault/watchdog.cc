#include "fault/watchdog.hh"

#include <utility>

#include "obs/trace.hh"
#include "os/kernel.hh"
#include "sim/event_queue.hh"

namespace neon
{

Watchdog::Watchdog(EventQueue &eq, KernelModule &kernel,
                   const WatchdogConfig &cfg, std::size_t device_index)
    : eq(eq), kernel(kernel), cfg(cfg), device(device_index)
{
}

void
Watchdog::start()
{
    if (!cfg.enabled || cfg.checkPeriod <= 0)
        return;
    eq.scheduleIn(cfg.checkPeriod, [this] { scan(); });
}

bool
Watchdog::convict(int pid, WatchdogCause cause, Tick latency)
{
    Task *t = kernel.findTask(pid);
    if (!t || !t->alive())
        return false;

    WatchdogKill k;
    k.pid = pid;
    k.device = device;
    k.cause = cause;
    k.at = eq.now();
    k.latency = latency;
    log.push_back(k);
    if (cause == WatchdogCause::Hang)
        ++nHangKills;
    else
        ++nRunawayKills;

    NEON_TRACE(obs::TraceCategory::Fault, obs::TraceKind::Instant,
               "wd.kill",
               obs::TraceIds{static_cast<std::int16_t>(device), pid, -1},
               latency, cause == WatchdogCause::Hang ? 0 : 1);

    kernel.killTask(*t, cause == WatchdogCause::Hang
                            ? "watchdog: hung channel"
                            : "watchdog: runaway request");
    if (onKill)
        onKill(k);
    return true;
}

void
Watchdog::scan()
{
    ++nScans;
    // Re-arm first: a kill below must not silence the service.
    eq.scheduleIn(cfg.checkPeriod, [this] { scan(); });

    GpuDevice &dev = kernel.device();
    if (dev.health() != DeviceHealth::Up) {
        // A degraded/down device makes no progress by design; drop all
        // stamps so a stall can never be mistaken for a hang.
        progress.clear();
        return;
    }

    const Tick now = eq.now();

    // Hang pass: stamp the completed-reference counter of each channel
    // holding pending work. Stale stamps (idle or vanished channels)
    // fall away because only re-seen channels enter the fresh map. The
    // kill happens after the scan — killTask tears channels out of the
    // active list we are iterating.
    int offender = -1;
    Tick offender_latency = 0;
    std::map<int, Progress> fresh;
    for (const Channel *c : kernel.activeChannels()) {
        if (!c->busyOnDevice() && c->ring().empty())
            continue;
        const std::uint64_t ref = c->completedRef();
        Progress p{ref, now};
        auto it = progress.find(c->id());
        if (it != progress.end() && it->second.ref == ref)
            p = it->second; // still stuck at the stamped value
        fresh.emplace(c->id(), p);

        if (offender < 0 && now - p.since >= cfg.hangTimeout) {
            // Convict the engine's current occupant (the vendor-assisted
            // "currently running context" query) — under a hog, starved
            // channels time out too, and the blame must land on the
            // request actually holding the engine.
            const Channel *occ = dev.engineCurrent(c->engine());
            if (occ) {
                offender = occ->context().taskId();
                offender_latency = now - p.since;
            }
        }
    }
    progress = std::move(fresh);

    bool killed = false;
    if (offender >= 0)
        killed = convict(offender, WatchdogCause::Hang, offender_latency);

    // Runaway pass: one request monopolizing an engine is killed even
    // with nobody starving behind it.
    if (!killed && cfg.runawayTimeout > 0) {
        for (const EngineKind k : {EngineKind::Execute, EngineKind::Copy}) {
            const Channel *occ = dev.engineCurrent(k);
            if (!occ)
                continue;
            const Tick held = now - dev.engineServiceStart(k);
            if (held >= cfg.runawayTimeout &&
                convict(occ->context().taskId(), WatchdogCause::Runaway,
                        held)) {
                killed = true;
                break;
            }
        }
    }

    // Grace period after a kill: every survivor restamps on the next
    // scan, so victims starved by the offender are never cascade-killed
    // for lateness the offender caused.
    if (killed)
        progress.clear();
}

} // namespace neon
