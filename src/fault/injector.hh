/**
 * @file
 * FaultInjector: plays a fault plan against a live fleet.
 *
 * Schedules every planned FaultEvent on the event queue at start().
 * Deaths route through FleetManager::failDevice (which evicts live
 * sessions into the serve layer's retry path) and schedule the
 * matching repair; stalls and hangs go straight to the device. Victim
 * channels for hang injection are drawn from the "fault.pick" stream,
 * isolated from both the plan stream and all workload streams.
 *
 * Sharded runs: the injector lives on the control queue, so every
 * fault lands at a window barrier with the shard workers parked —
 * forcing a device down, poking a channel hang, or repairing touches
 * the victim's shard-local state race-free, and the fault plan stays
 * deterministic regardless of shard or thread counts.
 */

#ifndef NEON_FAULT_INJECTOR_HH
#define NEON_FAULT_INJECTOR_HH

#include <cstdint>
#include <vector>

#include "fault/fault_config.hh"
#include "sim/random.hh"
#include "sim/types.hh"

namespace neon
{

class EventQueue;
class FleetManager;

/** One injected hang, for matching against watchdog detections. */
struct HangRecord
{
    std::size_t device = 0;
    int pid = 0;     ///< task owning the victim channel at injection
    Tick at = 0;
    bool detected = false; ///< matched to a watchdog kill (results pass)
};

/** One device outage (death-to-repair window). */
struct OutageRecord
{
    std::size_t device = 0;
    Tick downAt = 0;
    Tick upAt = -1; ///< -1 while the outage is still open
};

/** Drives a fault plan into the fleet. */
class FaultInjector
{
  public:
    FaultInjector(EventQueue &eq, FleetManager &fleet,
                  const FaultPlanConfig &cfg, std::uint64_t root_seed);

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    /** Build the plan and schedule every event. */
    void start();

    const std::vector<FaultEvent> &plan() const { return events; }
    const std::vector<HangRecord> &hangs() const { return hangLog; }
    std::vector<HangRecord> &hangs() { return hangLog; }
    const std::vector<OutageRecord> &outages() const { return outageLog; }

    std::uint64_t injectedDeaths() const { return nDeaths; }
    std::uint64_t injectedStalls() const { return nStalls; }
    std::uint64_t injectedHangs() const { return nHangs; }
    std::uint64_t skipped() const { return nSkipped; }
    std::uint64_t repairs() const { return nRepairs; }

  private:
    void apply(const FaultEvent &ev);

    EventQueue &eq;
    FleetManager &fleet;
    FaultPlanConfig cfg;
    std::uint64_t rootSeed;

    Rng pickRng;
    std::vector<FaultEvent> events;
    std::vector<HangRecord> hangLog;
    std::vector<OutageRecord> outageLog;
    std::uint64_t nDeaths = 0;
    std::uint64_t nStalls = 0;
    std::uint64_t nHangs = 0;
    std::uint64_t nSkipped = 0;
    std::uint64_t nRepairs = 0;
};

} // namespace neon

#endif // NEON_FAULT_INJECTOR_HH
