#include "fault/fault_plan.hh"

#include <algorithm>

#include "sim/random.hh"

namespace neon
{

const char *
faultKindName(FaultKind k)
{
    switch (k) {
      case FaultKind::DeviceStall: return "stall";
      case FaultKind::DeviceDeath: return "death";
      case FaultKind::ChannelHang: return "hang";
    }
    return "?";
}

namespace
{

/** Draw a Poisson process of @p kind events for one device. */
void
drawProcess(std::vector<FaultEvent> &out, Rng &rng, Tick horizon,
            double rate_per_sec, FaultKind kind, std::size_t device,
            Tick mean_duration)
{
    if (rate_per_sec <= 0.0)
        return;
    const double mean_gap_ticks = 1e9 / rate_per_sec;
    Tick t = 0;
    for (;;) {
        t += static_cast<Tick>(rng.exponential(mean_gap_ticks));
        if (t > horizon)
            return;
        FaultEvent ev;
        ev.at = t;
        ev.kind = kind;
        ev.device = device;
        if (mean_duration > 0) {
            ev.duration = std::max<Tick>(
                msec(1), static_cast<Tick>(rng.exponential(
                             static_cast<double>(mean_duration))));
        }
        out.push_back(ev);
    }
}

} // namespace

std::vector<FaultEvent>
buildFaultPlan(const FaultPlanConfig &cfg, std::size_t devices,
               std::uint64_t root_seed)
{
    std::vector<FaultEvent> plan = cfg.script;

    if (cfg.enabled && cfg.horizon > 0) {
        Rng rng = namedStream(root_seed, "fault.plan");
        // Fixed (device, kind) draw order keeps the plan a pure
        // function of the inputs.
        for (std::size_t d = 0; d < devices; ++d) {
            drawProcess(plan, rng, cfg.horizon, cfg.deathRatePerSec,
                        FaultKind::DeviceDeath, d, cfg.meanRepair);
            drawProcess(plan, rng, cfg.horizon, cfg.stallRatePerSec,
                        FaultKind::DeviceStall, d, cfg.meanStall);
            drawProcess(plan, rng, cfg.horizon, cfg.hangRatePerSec,
                        FaultKind::ChannelHang, d, 0);
        }
    }

    std::stable_sort(plan.begin(), plan.end(),
                     [](const FaultEvent &a, const FaultEvent &b) {
                         if (a.at != b.at)
                             return a.at < b.at;
                         if (a.device != b.device)
                             return a.device < b.device;
                         return static_cast<int>(a.kind) <
                             static_cast<int>(b.kind);
                     });
    return plan;
}

} // namespace neon
