/**
 * @file
 * Configuration for the fault-injection and recovery plane.
 *
 * Two independent halves: the *watchdog* (detection/protection — the
 * paper's hung-channel kill, promoted to a periodic kernel service)
 * and the *fault plan* (deterministic injection of device stalls,
 * device deaths with exponential repair, and per-channel hangs). The
 * plan draws from its own named RNG streams ("fault.plan",
 * "fault.pick"), so enabling injection never perturbs arrival or
 * service draws — a plan-empty run is bit-identical to a faults-off
 * run.
 */

#ifndef NEON_FAULT_FAULT_CONFIG_HH
#define NEON_FAULT_FAULT_CONFIG_HH

#include <cstddef>
#include <vector>

#include "sim/types.hh"

namespace neon
{

/** Watchdog service knobs (per device stack). */
struct WatchdogConfig
{
    bool enabled = false;

    /** Scan period of the doorbell-progress check. */
    Tick checkPeriod = msec(5);

    /**
     * A channel with pending work whose completed-reference counter
     * has not advanced for this long marks the engine's current
     * occupant as hung. Detection latency is bounded by
     * hangTimeout + checkPeriod.
     */
    Tick hangTimeout = msec(50);

    /**
     * A single request monopolizing an engine for this long is killed
     * as a runaway even if it is the only tenant (no starved victim
     * needed to notice it). 0 disables the runaway check.
     */
    Tick runawayTimeout = msec(150);
};

/** Kinds of injectable device-level faults. */
enum class FaultKind
{
    DeviceStall,  ///< transient Degraded window; paused work resumes
    DeviceDeath,  ///< device Down until repair; in-flight work lost
    ChannelHang,  ///< one channel's (next) request becomes infinite
};

/** One scripted fault (also the unit the stochastic plan generates). */
struct FaultEvent
{
    Tick at = 0;
    FaultKind kind = FaultKind::DeviceStall;
    std::size_t device = 0;

    /** Stall length or death-to-repair delay; ignored for hangs. */
    Tick duration = 0;
};

/** Stochastic-plus-scripted fault plan over a run horizon. */
struct FaultPlanConfig
{
    /** Master switch for the stochastic generator. */
    bool enabled = false;

    /** Generation horizon; no stochastic fault lands after it. */
    Tick horizon = 0;

    /** Poisson rate of full device deaths, per device, per second. */
    double deathRatePerSec = 0.0;

    /** Mean of the exponential repair time after a death. */
    Tick meanRepair = msec(200);

    /** Poisson rate of transient stalls, per device, per second. */
    double stallRatePerSec = 0.0;

    /** Mean of the exponential stall duration. */
    Tick meanStall = msec(5);

    /** Poisson rate of channel-hang injections, per device, per second. */
    double hangRatePerSec = 0.0;

    /** Deterministic faults merged with the generated ones. */
    std::vector<FaultEvent> script;

    /** Anything to inject at all? */
    bool
    any() const
    {
        return !script.empty() ||
            (enabled && horizon > 0 &&
             (deathRatePerSec > 0.0 || stallRatePerSec > 0.0 ||
              hangRatePerSec > 0.0));
    }
};

/** The fault plane's full configuration. */
struct FaultConfig
{
    WatchdogConfig watchdog;
    FaultPlanConfig plan;
};

} // namespace neon

#endif // NEON_FAULT_FAULT_CONFIG_HH
