/**
 * @file
 * Deterministic fault-plan generation.
 *
 * Expands a FaultPlanConfig into a time-ordered list of FaultEvents:
 * the script verbatim, plus Poisson-process draws per (device, kind)
 * from the "fault.plan" RNG stream. Generation is a pure function of
 * (config, device count, root seed) — the same inputs always produce
 * the same plan, and the stream isolation guarantees workload draws
 * are untouched whether or not a plan exists.
 */

#ifndef NEON_FAULT_FAULT_PLAN_HH
#define NEON_FAULT_FAULT_PLAN_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "fault/fault_config.hh"

namespace neon
{

/** Expand @p cfg into a time-ordered fault schedule. */
std::vector<FaultEvent> buildFaultPlan(const FaultPlanConfig &cfg,
                                       std::size_t devices,
                                       std::uint64_t root_seed);

/** Display name of a fault kind ("stall", "death", "hang"). */
const char *faultKindName(FaultKind k);

} // namespace neon

#endif // NEON_FAULT_FAULT_PLAN_HH
