/**
 * @file
 * Watchdog: the kernel's hung/runaway-channel detection service.
 *
 * The paper's protection mechanism detects a channel that stops making
 * doorbell progress and kills the offending process without trusting
 * it. The watchdog generalizes that into a periodic kernel service:
 * every checkPeriod it stamps each active channel's completed-reference
 * counter, and a channel that holds pending work without advancing for
 * hangTimeout convicts — not itself, but the task whose request
 * currently occupies the channel's engine (the Section 6.2
 * vendor-assisted query), so a starved victim never takes the blame
 * for the hog that starves it. A separate runaway check kills a single
 * request that monopolizes an engine past runawayTimeout even with no
 * victims queued behind it. Killed tasks go through the kernel's kill
 * protocol (quarantine: the serve layer never retries them).
 */

#ifndef NEON_FAULT_WATCHDOG_HH
#define NEON_FAULT_WATCHDOG_HH

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "fault/fault_config.hh"
#include "sim/types.hh"

namespace neon
{

class EventQueue;
class KernelModule;

/** Why the watchdog killed a task. */
enum class WatchdogCause
{
    Hang,    ///< a channel's doorbell progress stalled past hangTimeout
    Runaway, ///< one request held an engine past runawayTimeout
};

/** One watchdog kill (the availability report's detection record). */
struct WatchdogKill
{
    int pid = 0;
    std::size_t device = 0;
    WatchdogCause cause = WatchdogCause::Hang;
    Tick at = 0;      ///< kill time
    Tick latency = 0; ///< observed no-progress / occupancy duration
};

/** Per-device-stack hung/runaway-channel detection service. */
class Watchdog
{
  public:
    Watchdog(EventQueue &eq, KernelModule &kernel,
             const WatchdogConfig &cfg, std::size_t device_index);

    Watchdog(const Watchdog &) = delete;
    Watchdog &operator=(const Watchdog &) = delete;

    /** Arm the periodic scan. */
    void start();

    const std::vector<WatchdogKill> &killLog() const { return log; }
    std::uint64_t hangKills() const { return nHangKills; }
    std::uint64_t runawayKills() const { return nRunawayKills; }
    std::uint64_t scans() const { return nScans; }

    /** Observer invoked after each kill (fleet/serve aggregation). */
    std::function<void(const WatchdogKill &)> onKill;

  private:
    /** Last observed progress of one channel. */
    struct Progress
    {
        std::uint64_t ref = 0; ///< completedRef at the stamp
        Tick since = 0;        ///< when that value was first seen
    };

    void scan();
    bool convict(int pid, WatchdogCause cause, Tick latency);

    EventQueue &eq;
    KernelModule &kernel;
    WatchdogConfig cfg;
    std::size_t device;

    std::map<int, Progress> progress; ///< keyed by channel id
    std::vector<WatchdogKill> log;
    std::uint64_t nHangKills = 0;
    std::uint64_t nRunawayKills = 0;
    std::uint64_t nScans = 0;
};

} // namespace neon

#endif // NEON_FAULT_WATCHDOG_HH
