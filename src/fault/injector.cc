#include "fault/injector.hh"

#include "fault/fault_plan.hh"
#include "fleet/fleet_manager.hh"
#include "obs/trace.hh"
#include "sim/event_queue.hh"

namespace neon
{

FaultInjector::FaultInjector(EventQueue &eq, FleetManager &fleet,
                             const FaultPlanConfig &cfg,
                             std::uint64_t root_seed)
    : eq(eq), fleet(fleet), cfg(cfg), rootSeed(root_seed),
      pickRng(namedStream(root_seed, "fault.pick"))
{
}

void
FaultInjector::start()
{
    events = buildFaultPlan(cfg, fleet.deviceCount(), rootSeed);
    for (const FaultEvent &ev : events) {
        FaultEvent copy = ev;
        eq.schedule(ev.at, [this, copy] { apply(copy); });
    }
}

void
FaultInjector::apply(const FaultEvent &ev)
{
    if (ev.device >= fleet.deviceCount()) {
        ++nSkipped;
        return;
    }
    DeviceStack &stack = fleet.stack(ev.device);
    const auto dev_id = static_cast<std::int16_t>(ev.device);

    switch (ev.kind) {
      case FaultKind::DeviceDeath: {
        if (stack.device.health() == DeviceHealth::Down) {
            ++nSkipped; // stacked deaths: the first one owns the outage
            return;
        }
        ++nDeaths;
        NEON_TRACE(obs::TraceCategory::Fault, obs::TraceKind::AsyncBegin,
                   "fault.outage", obs::TraceIds{dev_id, -1, -1},
                   ev.duration, 0);
        const std::size_t outage_idx = outageLog.size();
        outageLog.push_back({ev.device, eq.now(), -1});
        fleet.failDevice(ev.device);
        eq.scheduleIn(ev.duration, [this, outage_idx] {
            OutageRecord &o = outageLog[outage_idx];
            o.upAt = eq.now();
            ++nRepairs;
            NEON_TRACE(obs::TraceCategory::Fault, obs::TraceKind::AsyncEnd,
                       "fault.outage",
                       obs::TraceIds{
                           static_cast<std::int16_t>(o.device), -1, -1},
                       o.upAt - o.downAt, 0);
            fleet.repairDevice(o.device);
        });
        break;
      }

      case FaultKind::DeviceStall: {
        if (stack.device.health() == DeviceHealth::Down) {
            ++nSkipped; // a dead device cannot merely stutter
            return;
        }
        ++nStalls;
        stack.device.stall(ev.duration);
        break;
      }

      case FaultKind::ChannelHang: {
        const std::vector<Channel *> &chans =
            stack.kernel.activeChannels();
        if (stack.device.health() == DeviceHealth::Down ||
            chans.empty()) {
            ++nSkipped; // nothing to hang
            return;
        }
        // Uniform victim pick from the dedicated stream; the active
        // list is creation-ordered, so the pick is deterministic.
        Channel *victim = chans[static_cast<std::size_t>(
            pickRng.uniformInt(0,
                               static_cast<std::int64_t>(chans.size()) -
                                   1))];
        ++nHangs;
        hangLog.push_back(
            {ev.device, victim->context().taskId(), eq.now(), false});
        stack.device.injectHang(*victim);
        break;
      }
    }
}

} // namespace neon
