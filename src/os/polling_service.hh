/**
 * @file
 * The kernel polling-thread service.
 *
 * Periodically (or at the scheduler's prompt) iterates over kernel-
 * resident structures looking for reference-counter updates that
 * indicate request completion. Here the iteration itself is the
 * scheduler's onPoll hook; this class supplies the timing: a periodic
 * tick plus on-demand prompts.
 */

#ifndef NEON_OS_POLLING_SERVICE_HH
#define NEON_OS_POLLING_SERVICE_HH

#include <functional>

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace neon
{

/** Periodic + prompted invocation of a completion-scan callback. */
class PollingService
{
  public:
    PollingService(EventQueue &eq, Tick period = msec(1))
        : eq(eq), pollPeriod(period)
    {
    }

    ~PollingService() { stop(); }

    PollingService(const PollingService &) = delete;
    PollingService &operator=(const PollingService &) = delete;

    Tick period() const { return pollPeriod; }

    /** Change the period; re-arms the pending tick if running. */
    void
    setPeriod(Tick p)
    {
        pollPeriod = p;
        if (running && pending != invalidEventId) {
            eq.cancel(pending);
            scheduleNext();
        }
    }

    /** The completion scan; wired to Scheduler::onPoll by the kernel. */
    std::function<void(Tick)> onPoll;

    /** Begin periodic operation. */
    void
    start()
    {
        if (running)
            return;
        running = true;
        scheduleNext();
    }

    void
    stop()
    {
        running = false;
        if (pending != invalidEventId) {
            eq.cancel(pending);
            pending = invalidEventId;
        }
    }

    /**
     * Prompt an immediate poll (the "at the scheduler's prompt" path);
     * resets the periodic phase so the next periodic poll is one full
     * period away.
     */
    void
    promptNow()
    {
        if (!running)
            return;
        if (pending != invalidEventId)
            eq.cancel(pending);
        pending = eq.scheduleIn(0, [this] { fire(); });
    }

  private:
    void
    scheduleNext()
    {
        // Hot path: one of these per poll period per device, for the
        // whole run; must stay inside the callback's inline storage.
        auto tick = [this] { fire(); };
        static_assert(EventCallback::fitsInline<decltype(tick)>);
        pending = eq.scheduleIn(pollPeriod, std::move(tick));
    }

    void
    fire()
    {
        pending = invalidEventId;
        if (!running)
            return;
        if (onPoll)
            onPoll(eq.now());
        if (running && pending == invalidEventId)
            scheduleNext();
    }

    EventQueue &eq;
    Tick pollPeriod;
    bool running = false;
    EventId pending = invalidEventId;
};

} // namespace neon

#endif // NEON_OS_POLLING_SERVICE_HH
