/**
 * @file
 * NEON's initialization-phase state machine (paper Section 4).
 *
 * For every channel the kernel must identify three virtual memory areas
 * — command buffer, ring buffer, and channel register — before the
 * channel is considered "active" (schedulable). The tracker consumes the
 * mmap stream observed through the kernel hooks and reports activation.
 */

#ifndef NEON_OS_CHANNEL_TRACKER_HH
#define NEON_OS_CHANNEL_TRACKER_HH

#include <map>

#include "mmio/address_space.hh"

namespace neon
{

/** Tracks per-channel VMA discovery until channels become active. */
class ChannelTracker
{
  public:
    enum class ChannelState { Untracked, Partial, Active };

    /**
     * Observe one mmap. @return the channel's state afterwards; the
     * caller reacts to the Partial->Active transition.
     */
    ChannelState
    noteMmap(const Vma &vma)
    {
        auto &seen = channels[vma.channelId];
        switch (vma.kind) {
          case VmaKind::CommandBuffer:
            seen.cmd = true;
            break;
          case VmaKind::RingBuffer:
            seen.ring = true;
            break;
          case VmaKind::ChannelRegister:
            seen.reg = true;
            break;
        }
        return state(vma.channelId);
    }

    /** Current state of a channel id. */
    ChannelState
    state(int channel_id) const
    {
        auto it = channels.find(channel_id);
        if (it == channels.end())
            return ChannelState::Untracked;
        const auto &s = it->second;
        return (s.cmd && s.ring && s.reg) ? ChannelState::Active
                                          : ChannelState::Partial;
    }

    bool
    isActive(int channel_id) const
    {
        return state(channel_id) == ChannelState::Active;
    }

    /** Forget a channel (munmap/teardown/kill). */
    void forget(int channel_id) { channels.erase(channel_id); }

    std::size_t trackedCount() const { return channels.size(); }

  private:
    struct SeenVmas
    {
        bool cmd = false;
        bool ring = false;
        bool reg = false;
    };

    std::map<int, SeenVmas> channels;
};

} // namespace neon

#endif // NEON_OS_CHANNEL_TRACKER_HH
