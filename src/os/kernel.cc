#include "os/kernel.hh"

#include <algorithm>
#include <utility>

#include "gpu/context.hh"
#include "obs/trace.hh"
#include "sim/logging.hh"

namespace neon
{

KernelModule::KernelModule(EventQueue &eq, GpuDevice &device,
                           const CostModel &costs,
                           const ChannelPolicy &policy)
    : eq(eq), dev(device), cost(costs), policy(policy), poller(eq)
{
    poller.onPoll = [this](Tick now) {
        NEON_TRACE(obs::TraceCategory::Kernel, obs::TraceKind::Instant,
                   "kern.poll", obs::TraceIds{deviceIndex(), -1, -1},
                   activeList.size(), parked.size());
        if (sched)
            sched->onPoll(now);
    };
}

void
KernelModule::setScheduler(Scheduler *s)
{
    sched = s;
}

void
KernelModule::start()
{
    if (!sched)
        fatal("KernelModule::start: no scheduler installed");
    poller.start();
    sched->onStart();
}

int
KernelModule::registerTask(Task *t)
{
    taskList.push_back(t);
    return nextPid++;
}

void
KernelModule::unregisterTask(Task *t)
{
    std::erase(taskList, t);
    parked.erase(t->pid());
}

void
KernelModule::startTask(Task &t, Co body)
{
    t.start(std::move(body));
    if (sched)
        sched->onTaskStarted(t);
}

void
KernelModule::killTask(Task &t, const std::string &reason)
{
    if (!t.alive())
        return;

    inform("killing task ", t.name(), " (pid ", t.pid(), "): ", reason);
    ++kills;
    NEON_TRACE(obs::TraceCategory::Kernel, obs::TraceKind::Instant,
               "kern.kill", obs::TraceIds{deviceIndex(), t.pid(), -1},
               t.channels().size(), 0);

    parked.erase(t.pid());
    t.kill();

    // Abort and reclaim every channel the task owns; the device pays the
    // abort cleanup cost, the CPU pays the kill path.
    std::vector<Channel *> owned = t.channels();
    for (Channel *c : owned) {
        dev.abortChannel(*c);
        chanTracker.forget(c->id());
        channelRegistry.erase(c->id());
        std::erase(activeList, c);
        if (sched)
            sched->onChannelClosed(*c);
        t.noteChannelGone(c);
        GpuContext &ctx = c->context();
        dev.destroyChannel(c);
        if (ctx.channels().empty())
            dev.destroyContext(&ctx);
    }
    t.defaultContext = nullptr;

    if (sched)
        sched->onTaskExited(t);
}

void
KernelModule::retireTask(Task &t)
{
    // Killed tasks were already torn down by killTask. A task whose
    // body ran to completion (Done) may still own channels — bodies
    // can co_return early on a failed open while holding earlier
    // opens — so retirement must reclaim those too, not just stop a
    // Running body.
    if (t.killed())
        return;

    NEON_TRACE(obs::TraceCategory::Kernel, obs::TraceKind::Instant,
               "kern.retire", obs::TraceIds{deviceIndex(), t.pid(), -1},
               t.channels().size(), 0);
    parked.erase(t.pid());
    t.retire(); // no-op when the body already finished

    // closeChannel aborts only channels with in-flight work; an idle
    // departing task pays no abort cleanup.
    std::vector<Channel *> owned = t.channels();
    for (Channel *c : owned)
        closeChannel(t, c);
    t.defaultContext = nullptr;

    if (sched)
        sched->onTaskExited(t);
}

Task *
KernelModule::findTask(int pid) const
{
    for (Task *t : taskList) {
        if (t->pid() == pid)
            return t;
    }
    return nullptr;
}

std::vector<Task *>
KernelModule::gpuTasks() const
{
    std::vector<Task *> out;
    for (Task *t : taskList) {
        if (t->alive() && !t->channels().empty())
            out.push_back(t);
    }
    return out;
}

GpuContext *
KernelModule::createContext(Task &t)
{
    return dev.createContext(t.pid());
}

void
KernelModule::openChannel(Task &t, RequestClass cls, GpuContext *ctx)
{
    // Admission control per Section 6.3.
    OpenResult result = OpenResult::Ok;
    if (policy.protect) {
        if (t.channels().size() >= policy.perTaskLimit) {
            result = OpenResult::PerTaskLimit;
        } else if (t.channels().empty()) {
            const std::size_t users = gpuTasks().size();
            const std::size_t max_users =
                dev.config().maxChannels / policy.perTaskLimit;
            if (users >= max_users)
                result = OpenResult::TooManyUsers;
        }
    }

    Channel *c = nullptr;
    if (result == OpenResult::Ok) {
        if (!ctx) {
            if (!t.defaultContext)
                t.defaultContext = dev.createContext(t.pid());
            ctx = t.defaultContext;
        }
        c = dev.createChannel(*ctx, cls);
        if (!c)
            result = OpenResult::OutOfChannels;
    }

    if (c) {
        channelRegistry[c->id()] = c;
        t.noteChannelOwned(c);

        // Simulate the driver establishing the three key VMAs; the
        // kernel hooks observe each mmap and feed the tracker.
        const std::uint64_t base = 0x7f0000000000ull +
            static_cast<std::uint64_t>(c->id()) * 0x10000ull;
        chanTracker.noteMmap({VmaKind::CommandBuffer, c->id(), base, 0x4000});
        chanTracker.noteMmap({VmaKind::RingBuffer, c->id(), base + 0x4000,
                              0x1000});
        auto st = chanTracker.noteMmap(
            {VmaKind::ChannelRegister, c->id(), base + 0x5000, 0x1000});

        if (st == ChannelTracker::ChannelState::Active) {
            activeList.push_back(c);
            NEON_TRACE(obs::TraceCategory::Kernel, obs::TraceKind::Instant,
                       "kern.chan_active",
                       obs::TraceIds{deviceIndex(), t.pid(), -1}, c->id(),
                       activeList.size());
            if (sched)
                sched->onChannelActive(*c);
        }
    } else {
        NEON_TRACE(obs::TraceCategory::Kernel, obs::TraceKind::Instant,
                   "kern.chan_reject",
                   obs::TraceIds{deviceIndex(), t.pid(), -1},
                   static_cast<int>(result), 0);
    }

    // Deliver the outcome after the syscall+mmap cost.
    const Tick when = cost.syscallEntry + cost.channelOpen;
    Task *tp = &t;
    const int cid = c ? c->id() : -1;
    eq.scheduleIn(when, [this, tp, cid, result] {
        tp->openResultChannel = cid >= 0 ? findChannel(cid) : nullptr;
        tp->openResult = result;
        tp->resumeAt(0);
    });
}

void
KernelModule::closeChannel(Task &t, Channel *c)
{
    if (!c)
        return;
    if (c->busyOnDevice() || !c->ring().empty())
        dev.abortChannel(*c);

    NEON_TRACE(obs::TraceCategory::Kernel, obs::TraceKind::Instant,
               "kern.chan_close", obs::TraceIds{deviceIndex(), t.pid(), -1},
               c->id(), 0);
    chanTracker.forget(c->id());
    channelRegistry.erase(c->id());
    std::erase(activeList, c);
    if (sched)
        sched->onChannelClosed(*c);
    t.noteChannelGone(c);

    GpuContext &ctx = c->context();
    dev.destroyChannel(c);
    if (ctx.channels().empty()) {
        if (t.defaultContext == &ctx)
            t.defaultContext = nullptr;
        dev.destroyContext(&ctx);
    }
}

Channel *
KernelModule::findChannel(int id) const
{
    auto it = channelRegistry.find(id);
    return it == channelRegistry.end() ? nullptr : it->second;
}

void
KernelModule::protectAll()
{
    NEON_TRACE(obs::TraceCategory::Kernel, obs::TraceKind::Instant,
               "kern.protect_all", obs::TraceIds{deviceIndex(), -1, -1},
               activeList.size(), 0);
    for (Channel *c : activeList)
        protectChannel(*c);
}

void
KernelModule::submitDoorbell(Task &t, Channel &c, GpuRequest req)
{
    if (c.doorbell().present()) {
        c.doorbell().noteDirectWrite();
        NEON_TRACE(obs::TraceCategory::Kernel, obs::TraceKind::Instant,
                   "kern.doorbell_direct",
                   obs::TraceIds{deviceIndex(), t.pid(), -1}, c.id(),
                   req.ref);
        const int cid = c.id();
        Task *tp = &t;
        // Hot path: one of these runs per direct submission; the
        // raw-pointer + POD capture must stay inside the event
        // callback's inline storage.
        auto deliver = [this, tp, cid, req] {
            finishDoorbell(*tp, cid, req);
        };
        static_assert(EventCallback::fitsInline<decltype(deliver)>);
        eq.scheduleIn(cost.directDoorbellWrite, std::move(deliver));
        return;
    }

    // Intercepted: the page is non-present, the store faults, and the
    // handler (running in process context) consults the policy.
    c.doorbell().noteFault();
    if (!sched)
        panic("doorbell fault with no scheduler installed");

    const FaultDecision d = sched->onSubmitFault(t, c, req);
    if (d == FaultDecision::Allow) {
        NEON_TRACE(obs::TraceCategory::Kernel, obs::TraceKind::Instant,
                   "kern.doorbell_allow",
                   obs::TraceIds{deviceIndex(), t.pid(), -1}, c.id(),
                   req.ref);
        const Tick cost_now = cost.faultPath(c.ring().size());
        const int cid = c.id();
        Task *tp = &t;
        auto deliver = [this, tp, cid, req] {
            finishDoorbell(*tp, cid, req);
        };
        static_assert(EventCallback::fitsInline<decltype(deliver)>);
        eq.scheduleIn(cost_now, std::move(deliver));
    } else {
        NEON_TRACE(obs::TraceCategory::Kernel, obs::TraceKind::Instant,
                   "kern.doorbell_park",
                   obs::TraceIds{deviceIndex(), t.pid(), -1}, c.id(),
                   req.ref);
        parked[t.pid()] = {c.id(), req};
    }
}

bool
KernelModule::hasParked(const Task &t) const
{
    return parked.count(t.pid()) > 0;
}

void
KernelModule::releaseParked(Task &t)
{
    auto it = parked.find(t.pid());
    if (it == parked.end())
        return;

    const ParkedSubmission ps = it->second;
    parked.erase(it);

    Channel *c = findChannel(ps.channelId);
    if (!c)
        return;

    NEON_TRACE(obs::TraceCategory::Kernel, obs::TraceKind::Instant,
               "kern.release_parked",
               obs::TraceIds{deviceIndex(), t.pid(), -1}, ps.channelId,
               ps.req.ref);
    const Tick when = cost.faultPath(c->ring().size()) + cost.parkedRelease;
    Task *tp = &t;
    auto deliver = [this, tp, cid = ps.channelId, req = ps.req] {
        finishDoorbell(*tp, cid, req);
    };
    static_assert(EventCallback::fitsInline<decltype(deliver)>);
    eq.scheduleIn(when, std::move(deliver));
}

std::vector<int>
KernelModule::parkedPids() const
{
    std::vector<int> out;
    out.reserve(parked.size());
    for (const auto &kv : parked)
        out.push_back(kv.first);
    return out;
}

Task *
KernelModule::currentlyRunningTask() const
{
    Channel *c = dev.engineCurrent(EngineKind::Execute);
    return c ? findTask(c->context().taskId()) : nullptr;
}

void
KernelModule::finishDoorbell(Task &t, int channel_id, GpuRequest req)
{
    Channel *c = findChannel(channel_id);
    if (!c || !t.alive())
        return; // torn down (e.g., task killed) while in flight

    dev.submit(*c, req);
    t.resumeAt(0);
}

} // namespace neon
