/**
 * @file
 * CPU-side cost calibration for the OS interception machinery.
 *
 * Values follow the paper's measurements where given (305-cycle doorbell
 * write on a 2.27 GHz Nehalem host; "thousands of cycles" for a
 * user/kernel mode switch including cache pollution) and are otherwise
 * chosen so the paper's reported overheads emerge from the mechanisms.
 * Everything is per-experiment configurable.
 */

#ifndef NEON_OS_COST_MODEL_HH
#define NEON_OS_COST_MODEL_HH

#include <cstddef>

#include "sim/types.hh"

namespace neon
{

/** Latency model for kernel entries, faults, and maintenance scans. */
struct CostModel
{
    /** Host clock, GHz (paper: 2.27 GHz Xeon E5520). */
    double cpuGhz = 2.27;

    /** Direct user-space doorbell store (305 cycles, paper Sec. 3). */
    Tick directDoorbellWrite = cyclesToTicks(305, 2.27);

    /**
     * Full interception path charged to a faulting submission: fault
     * entry, handler, channel-buffer scan to locate the reference
     * counter, kernel mapping, scheduler invocation, single-step, and
     * re-protection (with TLB maintenance).
     */
    Tick faultBase = usec(9);

    /** Additional scan cost per request already queued in the channel. */
    Tick faultPerQueuedEntry = nsec(120);

    /** Extra latency when a parked (delayed) submission is released. */
    Tick parkedRelease = usec(1);

    /** Plain syscall entry/exit (mode switch + cache effects). */
    Tick syscallEntry = nsec(1200);

    /** Thin driver submission path (Sec. 3 trap-per-request stack). */
    Tick driverThinPath = usec(2.5);

    /** Nontrivial driver processing per request (Sec. 3 comparison). */
    Tick driverHeavyPath = usec(8);

    /** Marking one channel register present/non-present (incl. TLB). */
    Tick protectionToggle = usec(1.5);

    /**
     * Post-re-engagement status update: scanning the command queue and
     * walking page tables to find last-submitted reference values.
     */
    Tick statusUpdateBase = usec(40);
    Tick statusUpdatePerChannel = usec(5);

    /** Channel creation: ioctl plus three mmaps through our hooks. */
    Tick channelOpen = usec(30);

    /** OS-side process-kill cleanup before device abort completes. */
    Tick killCleanup = usec(80);

    /** Interception cost of one submission given current queue depth. */
    Tick
    faultPath(std::size_t queue_depth) const
    {
        return faultBase +
            faultPerQueuedEntry * static_cast<Tick>(queue_depth);
    }
};

} // namespace neon

#endif // NEON_OS_COST_MODEL_HH
