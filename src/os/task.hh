/**
 * @file
 * A task: the resource principal to which we provide fair service.
 *
 * Tasks are simulated processes (coroutine bodies) that interact with
 * the accelerator the way real applications do: build a command, write
 * the doorbell (possibly faulting into the kernel), and spin in user
 * space on the channel's reference counter for completion.
 */

#ifndef NEON_OS_TASK_HH
#define NEON_OS_TASK_HH

#include <coroutine>
#include <cstdint>
#include <string>
#include <vector>

#include "gpu/channel.hh"
#include "gpu/request.hh"
#include "sim/process.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace neon
{

class GpuContext;
class KernelModule;

/** Result of a channel-allocation attempt (Sec. 6.3 policy). */
enum class OpenResult
{
    Ok,
    OutOfChannels, ///< device pool exhausted (unprotected DoS outcome)
    PerTaskLimit,  ///< policy: task exceeded its C channels
    TooManyUsers,  ///< policy: more than D/C tasks would use the GPU
};

/**
 * Simulated application process with accelerator access.
 */
class Task : public Process
{
  public:
    Task(KernelModule &kernel, std::string name);
    ~Task() override;

    int pid() const { return taskPid; }
    KernelModule &kernelRef() { return kern; }

    /** Channels currently owned (kernel-maintained). */
    const std::vector<Channel *> &channels() const { return chans; }
    void noteChannelOwned(Channel *c) { chans.push_back(c); }
    void noteChannelGone(Channel *c);

    /** The task's default GPU context (created lazily by the kernel). */
    GpuContext *defaultContext = nullptr;

    // ------------------------------------------------------------------
    // Awaitables used by workload bodies
    // ------------------------------------------------------------------

    /** Awaitable channel open via the kernel (syscall + mmaps). */
    struct OpenChannelAwaitable
    {
        Task &t;
        RequestClass cls;
        GpuContext *ctx;

        bool await_ready() const { return false; }
        void await_suspend(std::coroutine_handle<> h);
        Channel *await_resume() const { return t.openResultChannel; }
    };

    /**
     * Awaitable submission: allocates the completion reference, then
     * performs the doorbell write through the kernel model. Resumes when
     * the write retires (directly, after fault handling, or after a
     * scheduler-imposed delay). Resume value is the reference to await.
     */
    struct SubmitAwaitable
    {
        Task &t;
        Channel &c;
        GpuRequest req;

        bool await_ready() const { return false; }
        void await_suspend(std::coroutine_handle<> h);
        std::uint64_t await_resume() const { return req.ref; }
    };

    /** Awaitable user-space spin on the channel reference counter. */
    struct WaitRefAwaitable
    {
        Task &t;
        Channel &c;
        std::uint64_t ref;

        bool await_ready() const { return c.completedRef() >= ref; }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            t.suspended(h);
            Task *tp = &t;
            c.waitRef(ref, [tp] { tp->resumeAt(0); });
        }

        void await_resume() const {}
    };

    /** Open a channel of the given class (default context if null). */
    OpenChannelAwaitable
    openChannel(RequestClass cls, GpuContext *ctx = nullptr)
    {
        return {*this, cls, ctx};
    }

    /** Submit a request with the given device occupancy. */
    SubmitAwaitable
    submit(Channel &c, RequestClass cls, Tick service, bool awaited = true)
    {
        GpuRequest r;
        r.cls = cls;
        r.serviceTime = service;
        r.awaited = awaited;
        return {*this, c, r};
    }

    /** Spin until the channel's reference counter reaches @p ref. */
    WaitRefAwaitable
    waitRef(Channel &c, std::uint64_t ref)
    {
        return {*this, c, ref};
    }

    // ------------------------------------------------------------------
    // Round accounting (the user-visible performance unit)
    // ------------------------------------------------------------------

    void beginRound() { roundStart = now(); }

    void
    endRound()
    {
        roundDurations.add(toUsec(now() - roundStart));
    }

    /** Completed-round durations in microseconds. */
    const Accum &roundTimes() const { return roundDurations; }

    /** Clear measurement state (end of warmup). */
    void resetStats() { roundDurations.reset(); }

    /** Outcome slot for OpenChannelAwaitable (set by the kernel). */
    Channel *openResultChannel = nullptr;
    OpenResult openResult = OpenResult::Ok;

  private:
    KernelModule &kern;
    int taskPid;
    std::vector<Channel *> chans;
    Tick roundStart = 0;
    Accum roundDurations;
};

} // namespace neon

#endif // NEON_OS_TASK_HH
