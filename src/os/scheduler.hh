/**
 * @file
 * The event-based scheduling interface the kernel module exports.
 *
 * This is the paper's central abstraction: request-submission events
 * (delivered via interception faults), completion observation (via the
 * polling service), and timers are all a policy gets — plus control over
 * page protection, parked-task release, and task kill.
 */

#ifndef NEON_OS_SCHEDULER_HH
#define NEON_OS_SCHEDULER_HH

#include <string>

#include "gpu/request.hh"
#include "sim/types.hh"

namespace neon
{

class Channel;
class KernelModule;
class Task;

/** What to do with an intercepted submission. */
enum class FaultDecision
{
    Allow, ///< charge the interception cost, then let it reach the device
    Park,  ///< hold the request (and the submitting thread) for later
};

/**
 * Base class for OS-level accelerator schedulers.
 *
 * Concrete policies live in src/sched; the kernel invokes these hooks
 * and policies act back through the KernelModule's control interface.
 */
class Scheduler
{
  public:
    explicit Scheduler(KernelModule &kernel) : kernel(kernel) {}
    virtual ~Scheduler() = default;

    Scheduler(const Scheduler &) = delete;
    Scheduler &operator=(const Scheduler &) = delete;

    /** Human-readable policy name (reports/benches). */
    virtual std::string name() const = 0;

    /** World start: install timers, initial protection, etc. */
    virtual void onStart() {}

    /** A task began running (may not own channels yet). */
    virtual void onTaskStarted(Task &) {}

    /** A task exited or was killed; its channels are already gone. */
    virtual void onTaskExited(Task &) {}

    /** A channel finished initialization (all three VMAs tracked). */
    virtual void onChannelActive(Channel &) {}

    /** A channel was closed/destroyed. */
    virtual void onChannelClosed(Channel &) {}

    /** An intercepted doorbell write; runs in process context. */
    virtual FaultDecision
    onSubmitFault(Task &task, Channel &channel, const GpuRequest &req) = 0;

    /** Polling-service tick (period or prompted). */
    virtual void onPoll(Tick now) { (void)now; }

  protected:
    KernelModule &kernel;
};

} // namespace neon

#endif // NEON_OS_SCHEDULER_HH
