/**
 * @file
 * The NEON kernel module: interception, polling, protection control,
 * channel lifecycle, and the kill protocol.
 *
 * This is the prototype's centrepiece (paper Section 4). It owns the
 * per-channel protection state, dispatches intercepted doorbell writes
 * to the installed scheduling policy, provides the polling-thread
 * service, and implements the channel-allocation protection policy of
 * Section 6.3.
 */

#ifndef NEON_OS_KERNEL_HH
#define NEON_OS_KERNEL_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "gpu/device.hh"
#include "os/channel_tracker.hh"
#include "os/cost_model.hh"
#include "os/polling_service.hh"
#include "os/scheduler.hh"
#include "os/task.hh"
#include "sim/event_queue.hh"

namespace neon
{

/** Channel-allocation protection policy (paper Section 6.3). */
struct ChannelPolicy
{
    /** Enforce limits? Off reproduces the DoS vulnerability. */
    bool protect = false;

    /** C: maximum channels per task. */
    std::size_t perTaskLimit = 8;
};

/**
 * Kernel-resident control logic tying tasks, MMU protection, the device
 * and the scheduling policy together.
 */
class KernelModule
{
  public:
    KernelModule(EventQueue &eq, GpuDevice &device,
                 const CostModel &costs = CostModel(),
                 const ChannelPolicy &policy = ChannelPolicy());

    KernelModule(const KernelModule &) = delete;
    KernelModule &operator=(const KernelModule &) = delete;

    EventQueue &eventQueue() { return eq; }
    GpuDevice &device() { return dev; }

    /** Fleet position of the backing device (trace records). */
    std::int16_t deviceIndex() const { return dev.deviceIndex(); }
    const CostModel &costs() const { return cost; }
    PollingService &polling() { return poller; }
    ChannelTracker &tracker() { return chanTracker; }
    const ChannelPolicy &channelPolicy() const { return policy; }

    /** Install the scheduling policy (required before start()). */
    void setScheduler(Scheduler *s);
    Scheduler *scheduler() { return sched; }

    /** Start polling and let the policy install its timers. */
    void start();

    // ------------------------------------------------------------------
    // Task lifecycle
    // ------------------------------------------------------------------

    /** Register a task; returns its pid. Called from Task's ctor. */
    int registerTask(Task *t);

    /** Unregister (Task dtor). */
    void unregisterTask(Task *t);

    /** Begin executing a task body and notify the policy. */
    void startTask(Task &t, Co body);

    /**
     * Kill a task (protection action): abort its channels on the device,
     * reclaim kernel/device resources, destroy the process.
     */
    void killTask(Task &t, const std::string &reason);

    /**
     * Retire a task gracefully (open-system departure or migration):
     * close its channels — idle channels close cleanly, busy ones are
     * aborted — reclaim kernel/device resources, and end the process
     * without counting a protection kill. Like killTask, must not be
     * called from inside the task's own body.
     */
    void retireTask(Task &t);

    const std::vector<Task *> &tasks() const { return taskList; }

    /** Look up a live task by pid; nullptr if gone. */
    Task *findTask(int pid) const;

    /** Tasks that still own at least one active channel. */
    std::vector<Task *> gpuTasks() const;

    std::uint64_t killCount() const { return kills; }

    // ------------------------------------------------------------------
    // Channel lifecycle (syscall surface)
    // ------------------------------------------------------------------

    /** Create an additional GPU context for @p t (DoS experiments). */
    GpuContext *createContext(Task &t);

    /**
     * Open a channel: ioctl + three mmaps through the kernel hooks,
     * feeding the channel tracker. Asynchronous; the outcome lands in
     * the task's openResult slots and the task is resumed.
     */
    void openChannel(Task &t, RequestClass cls, GpuContext *ctx);

    /** Close an idle channel and release its kernel state. */
    void closeChannel(Task &t, Channel *c);

    Channel *findChannel(int id) const;

    /** All tracker-active channels (the schedulable population). */
    const std::vector<Channel *> &activeChannels() const
    {
        return activeList;
    }

    // ------------------------------------------------------------------
    // Protection control (scheduler surface)
    // ------------------------------------------------------------------

    /** Make doorbell writes fault (engage) for one channel. */
    void protectChannel(Channel &c) { c.doorbell().setPresent(false); }

    /** Allow direct doorbell writes (disengage) for one channel. */
    void unprotectChannel(Channel &c) { c.doorbell().setPresent(true); }

    /** Engage every active channel (barrier entry). */
    void protectAll();

    /** Aggregate CPU cost of toggling protection on @p n channels. */
    Tick protectionCost(std::size_t n) const
    {
        return cost.protectionToggle * static_cast<Tick>(n);
    }

    // ------------------------------------------------------------------
    // Submission path (task surface)
    // ------------------------------------------------------------------

    /**
     * A doorbell write from @p t on @p c. Direct if the register is
     * present; otherwise the fault handler consults the policy, which
     * may allow (after the interception cost) or park the submission.
     */
    void submitDoorbell(Task &t, Channel &c, GpuRequest req);

    /** True if @p t has a parked (delayed) submission. */
    bool hasParked(const Task &t) const;

    /** Release a parked submission (charges the interception cost). */
    void releaseParked(Task &t);

    /** Pids with parked submissions (policy bookkeeping). */
    std::vector<int> parkedPids() const;

    // ------------------------------------------------------------------
    // Shared-structure reads (legitimately visible to the kernel)
    // ------------------------------------------------------------------

    /** Poll a channel's reference counter (cheap kernel mapping read). */
    std::uint64_t readCompletedRef(const Channel &c) const
    {
        return c.completedRef();
    }

    /**
     * Recover the last submitted reference by scanning the command
     * queue (the post-re-engagement status update). The caller charges
     * statusUpdate costs for the scan.
     */
    std::uint64_t readLastSubmittedRef(const Channel &c) const
    {
        return c.lastSubmittedRef();
    }

    /** Status-update scan cost across @p n channels. */
    Tick
    statusUpdateCost(std::size_t n) const
    {
        return cost.statusUpdateBase +
            cost.statusUpdatePerChannel * static_cast<Tick>(n);
    }

    /**
     * The task whose request currently occupies the execute engine.
     * This models the Section 6.2 vendor-assisted query ("identify the
     * currently running context"): without the token of a timeslice
     * policy, Disengaged Fair Queueing needs it to attribute a hung
     * device to the offender rather than to every blocked task.
     */
    Task *currentlyRunningTask() const;

  private:
    struct ParkedSubmission
    {
        int channelId;
        GpuRequest req;
    };

    void finishDoorbell(Task &t, int channel_id, GpuRequest req);

    EventQueue &eq;
    GpuDevice &dev;
    CostModel cost;
    ChannelPolicy policy;
    PollingService poller;
    ChannelTracker chanTracker;
    Scheduler *sched = nullptr;

    std::vector<Task *> taskList;
    std::map<int, Channel *> channelRegistry;
    std::vector<Channel *> activeList;
    std::map<int, ParkedSubmission> parked; // keyed by pid
    int nextPid = 1;
    std::uint64_t kills = 0;
};

} // namespace neon

#endif // NEON_OS_KERNEL_HH
