#include "os/task.hh"

#include <algorithm>

#include "os/kernel.hh"

namespace neon
{

Task::Task(KernelModule &kernel, std::string name)
    : Process(kernel.eventQueue(), std::move(name)), kern(kernel),
      taskPid(kernel.registerTask(this))
{
}

Task::~Task()
{
    kern.unregisterTask(this);
}

void
Task::noteChannelGone(Channel *c)
{
    std::erase(chans, c);
}

void
Task::OpenChannelAwaitable::await_suspend(std::coroutine_handle<> h)
{
    t.suspended(h);
    t.kernelRef().openChannel(t, cls, ctx);
}

void
Task::SubmitAwaitable::await_suspend(std::coroutine_handle<> h)
{
    t.suspended(h);
    req.ref = c.allocRef();
    t.kernelRef().submitDoorbell(t, c, req);
}

} // namespace neon
