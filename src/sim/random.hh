/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * We implement xoshiro256** seeded via splitmix64 and our own
 * distribution transforms, so that simulations are bit-reproducible
 * across standard libraries and platforms.
 */

#ifndef NEON_SIM_RANDOM_HH
#define NEON_SIM_RANDOM_HH

#include <cstdint>

namespace neon
{

/** xoshiro256** PRNG with explicit, portable distribution transforms. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Exponential with the given mean. */
    double exponential(double mean);

    /** Standard normal via Box-Muller (deterministic, stateless pairs). */
    double normal();

    /** Normal with mean/stddev. */
    double normal(double mean, double stddev);

    /**
     * Lognormal parameterized by its (arithmetic) mean and coefficient
     * of variation, which is the natural way to describe request-size
     * jitter around a profiled average.
     */
    double lognormal(double mean, double cv);

    /** Bernoulli trial. */
    bool chance(double p);

    /** Fork a child RNG with an independent stream. */
    Rng fork();

  private:
    std::uint64_t s[4];
};

/**
 * Derive a per-subsystem seed from a root seed and a stream name.
 *
 * Subsystems that draw randomness (arrivals, lifetimes, fault plans,
 * victim picks, ...) each derive their own stream from the experiment
 * root seed by name, so enabling one subsystem — e.g. fault
 * injection — cannot perturb another's draw sequence. The name is
 * hashed (FNV-1a) and mixed with the root via splitmix64 rounds, so
 * nearby roots and similar names still land on unrelated streams.
 */
std::uint64_t streamSeed(std::uint64_t root, const char *name);

/** An Rng seeded with streamSeed(root, name). */
Rng namedStream(std::uint64_t root, const char *name);

} // namespace neon

#endif // NEON_SIM_RANDOM_HH
