#include "sim/random.hh"

#include <cmath>

namespace neon
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s)
        word = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
    const std::uint64_t t = s[1] << 17;

    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    if (hi <= lo)
        return lo;
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next() % span);
}

double
Rng::exponential(double mean)
{
    double u = uniform();
    // Avoid log(0).
    if (u <= 0.0)
        u = 0x1.0p-53;
    return -mean * std::log(u);
}

double
Rng::normal()
{
    // Box-Muller; one fresh pair per call keeps the stream simple.
    double u1 = uniform();
    double u2 = uniform();
    if (u1 <= 0.0)
        u1 = 0x1.0p-53;
    return std::sqrt(-2.0 * std::log(u1)) *
        std::cos(2.0 * M_PI * u2);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::lognormal(double mean, double cv)
{
    if (mean <= 0.0)
        return 0.0;
    if (cv <= 0.0)
        return mean;
    const double sigma2 = std::log(1.0 + cv * cv);
    const double mu = std::log(mean) - 0.5 * sigma2;
    return std::exp(mu + std::sqrt(sigma2) * normal());
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

Rng
Rng::fork()
{
    return Rng(next());
}

std::uint64_t
streamSeed(std::uint64_t root, const char *name)
{
    // FNV-1a over the name picks the stream...
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char *p = name; *p; ++p) {
        h ^= static_cast<unsigned char>(*p);
        h *= 0x100000001b3ull;
    }
    // ...and two splitmix rounds decorrelate it from the root so
    // root/root+1 experiments don't share suffixes of any stream.
    std::uint64_t x = root ^ h;
    const std::uint64_t a = splitmix64(x);
    const std::uint64_t b = splitmix64(x);
    return a ^ rotl(b, 27);
}

Rng
namedStream(std::uint64_t root, const char *name)
{
    return Rng(streamSeed(root, name));
}

} // namespace neon
