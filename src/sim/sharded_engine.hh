/**
 * @file
 * ShardedEngine: conservative time-window parallelization of the
 * discrete-event core.
 *
 * The fleet is partitioned into device groups ("shards"), each with
 * its own EventQueue driven by a worker thread. Device stacks only
 * interact with the rest of the system through the serve layer's
 * decisions (admission, migration, the global virtual clock) and the
 * fault plan — all of which run on a separate *control* queue — so a
 * shard can run freely up to the next cross-shard interaction horizon
 * without ever observing another shard mid-flight. The engine
 * advances simulated time on a fixed window grid:
 *
 *   1. Parallel phase: every shard queue runs to the window boundary
 *      b = min(now + W, t) on the worker pool. Shards touch only
 *      their own devices' state; the only outbound effects (protection
 *      kills, watchdog verdicts) are posted to per-shard mailboxes.
 *   2. Barrier phase (workers parked, coordinator thread only): the
 *      control queue runs to b — arrivals, admission, global-clock
 *      ticks, and fault-plan events execute at their exact timestamps
 *      — then the mailboxes are drained in canonical (when, shard,
 *      seq) order at time b, and any follow-up control events at b run.
 *
 * Determinism: within a window each shard is an ordinary serial
 * EventQueue, and the mailbox merge order is a pure function of the
 * simulation, so an N-shard run is bit-identical across repeats and
 * across worker-thread counts. With count <= 1 the engine degenerates
 * to the control queue itself — the serial core, untouched — so a
 * 1-shard run is bit-identical to the pre-sharding simulator by
 * construction.
 *
 * The conservative horizon W trades cross-layer reaction latency for
 * parallelism: a task placed by the serve layer at barrier time starts
 * issuing work on its shard at the next window open, up to W late.
 * resolveShardWindow() (harness) derives W from the poll period and
 * the serve clock cadence so this skew stays far below session
 * lifetimes.
 */

#ifndef NEON_SIM_SHARDED_ENGINE_HH
#define NEON_SIM_SHARDED_ENGINE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/shard_mailbox.hh"
#include "sim/types.hh"

namespace neon
{

namespace obs
{
class TraceRecorder;
}

/** Sharding shape (ExperimentConfig::shards). */
struct ShardConfig
{
    /**
     * Device-group shard count. 0 or 1 = the serial core: one queue,
     * no threads, bit-identical to the pre-sharding simulator.
     */
    unsigned count = 0;

    /**
     * Worker threads driving the shards (shards are dealt round-robin
     * to workers). 0 = min(count, hardware_concurrency). Thread count
     * affects wall-clock speed only, never results.
     */
    unsigned threads = 0;

    /**
     * Conservative synchronization window W in ticks. 0 = let the
     * harness derive it from the poll period and serve clock cadence
     * (resolveShardWindow).
     */
    Tick window = 0;

    bool parallel() const { return count > 1; }
};

/** Conservative-window parallel driver over per-shard event queues. */
class ShardedEngine
{
  public:
    /**
     * @p control is the coordinator queue (arrivals, admission, global
     * clock, fault plan); @p devices is the fleet size being
     * partitioned. With cfg.count <= 1 no queues or threads are
     * created and every accessor falls through to @p control.
     */
    ShardedEngine(const ShardConfig &cfg, EventQueue &control,
                  std::size_t devices);

    /** Parks and joins the worker pool. */
    ~ShardedEngine();

    ShardedEngine(const ShardedEngine &) = delete;
    ShardedEngine &operator=(const ShardedEngine &) = delete;

    /** Shards actually in use (1 in serial mode). */
    std::size_t shardCount() const { return nShards; }

    /** Worker threads actually spawned (0 in serial mode). */
    unsigned threadCount() const { return nThreads_; }

    /** The window grid spacing (0 in serial mode). */
    Tick window() const { return window_; }

    bool parallel() const { return nShards > 1; }

    /** Contiguous device-group partition. */
    std::size_t
    shardOfDevice(std::size_t dev) const
    {
        return nShards > 1 ? dev * nShards / nDevices : 0;
    }

    /** The event queue device @p dev lives on. */
    EventQueue &
    queueOfDevice(std::size_t dev)
    {
        return nShards > 1 ? *queues[shardOfDevice(dev)] : control;
    }

    /** Shard @p s's queue (the control queue in serial mode). */
    EventQueue &
    shardQueue(std::size_t s)
    {
        return nShards > 1 ? *queues[s] : control;
    }

    EventQueue &controlQueue() { return control; }

    /** Coordinator time (== every shard's time between windows). */
    Tick now() const { return control.now(); }

    /** Advance the whole system to absolute time @p t. */
    void runUntil(Tick t);

    void runFor(Tick d) { runUntil(control.now() + d); }

    /** Events executed across the control queue and every shard. */
    std::uint64_t totalExecuted() const;

    /** Mailbox messages merged so far (stats/tests). */
    std::uint64_t mailboxMessages() const { return nMessages; }

    /** Barrier windows completed (stats/tests). */
    std::uint64_t windowsRun() const { return nWindows; }

    /** Wall seconds spent spawning the worker pool (bench reporting). */
    double setupSeconds() const { return setupS; }

    // ------------------------------------------------------------------
    // Shard-phase context (deferred cross-shard effects)
    // ------------------------------------------------------------------

    /**
     * True while the calling thread is executing a shard's events in
     * the parallel phase. Shared-state mutators (fleet placement,
     * serve callbacks) branch on this to defer through the mailbox.
     */
    static bool inShardPhase();

    /**
     * Post @p fn from the current shard context to be applied at the
     * window barrier, stamped with the shard queue's current time.
     * Panics when called outside a shard phase.
     */
    static void postFromShard(EventCallback fn);

    /**
     * Post directly to shard @p s's mailbox at time @p when
     * (coordinator-side injection; tests).
     */
    void postToBarrier(std::size_t s, Tick when, EventCallback fn);

    // ------------------------------------------------------------------
    // Per-shard trace rings
    // ------------------------------------------------------------------

    /**
     * Install @p r as shard @p s's trace ring: the worker points the
     * thread-local trace sink at it (clocked by the shard's queue) for
     * the duration of each parallel phase. Null detaches.
     */
    void setShardTraceSink(std::size_t s, obs::TraceRecorder *r);

    /** Detach every shard ring (Observer teardown). */
    void clearShardTraceSinks();

  private:
    void workerMain(unsigned w);
    void runShard(std::size_t s, Tick b);
    void runShardsTo(Tick b);
    void applyMailboxes();

    EventQueue &control;
    std::size_t nDevices;
    std::size_t nShards;
    Tick window_ = 0;

    std::vector<std::unique_ptr<EventQueue>> queues;   ///< per shard
    std::vector<ShardMailbox> mailboxes;               ///< per shard
    std::vector<obs::TraceRecorder *> shardSinks;      ///< per shard

    std::uint64_t nMessages = 0;
    std::uint64_t nWindows = 0;
    double setupS = 0.0;

    // Window barrier: the coordinator publishes a target tick and bumps
    // `go` (release); workers acquire it, run their shards, and bump
    // `done` (release), which the coordinator acquires — that pair of
    // edges is the only synchronization the whole engine needs, and it
    // carries every plain-variable handoff (target, shard queues,
    // mailboxes, trace sinks) across the phase boundary.
    Tick target = 0;
    unsigned nThreads_ = 0;
    std::atomic<std::uint64_t> go{0};
    std::atomic<unsigned> done{0};
    std::atomic<bool> stopping{false};
    std::vector<std::thread> workers;

    /** Coordinator-side scratch for the canonical mailbox merge. */
    struct PendingMsg
    {
        Tick when;
        std::uint32_t shard;
        std::uint64_t seq;
        EventCallback fn;
    };
    std::vector<PendingMsg> merged;
};

} // namespace neon

#endif // NEON_SIM_SHARDED_ENGINE_HH
