/**
 * @file
 * Cross-shard message buffer for the sharded simulation core.
 *
 * During a parallel window each shard runs its own EventQueue on its
 * own thread and must not touch shared state (fleet placement tables,
 * the serve layer, other shards). Anything a shard needs the outside
 * world to know — a protection kill, a watchdog verdict — is posted to
 * its mailbox as a timestamped closure instead. Mailboxes are strictly
 * single-writer: only the thread currently driving the owning shard
 * appends, and only the coordinator (with every worker parked at the
 * window barrier) drains, so no locking is needed — the barrier's
 * acquire/release handoff is the synchronization.
 *
 * Messages carry (when, per-shard sequence) so the coordinator can
 * merge all shards' traffic into one canonical order — sort by
 * (when, shard, seq) — that is a pure function of the simulation
 * state, never of OS thread scheduling. That merge order is what makes
 * N-shard runs bit-identical across repeats and worker-thread counts.
 */

#ifndef NEON_SIM_SHARD_MAILBOX_HH
#define NEON_SIM_SHARD_MAILBOX_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace neon
{

/** One shard's outbound message buffer (single writer, barrier-drained). */
class ShardMailbox
{
  public:
    /** A deferred cross-shard effect, stamped for canonical merging. */
    struct Message
    {
        Tick when = 0;          ///< shard-local time of the cause
        std::uint64_t seq = 0;  ///< posting order within the shard
        EventCallback fn;       ///< applied at the window barrier
    };

    /** Append a message (owning shard's thread only). */
    void
    post(Tick when, EventCallback fn)
    {
        msgs.push_back({when, nextSeq++, std::move(fn)});
    }

    bool empty() const { return msgs.empty(); }
    std::size_t size() const { return msgs.size(); }

    /** Total messages ever posted (stats/tests). */
    std::uint64_t posted() const { return nextSeq; }

    /** Move the buffered messages out (coordinator, at the barrier). */
    std::vector<Message>
    take()
    {
        std::vector<Message> out;
        out.swap(msgs);
        return out;
    }

  private:
    std::vector<Message> msgs;
    std::uint64_t nextSeq = 0;
};

} // namespace neon

#endif // NEON_SIM_SHARD_MAILBOX_HH
