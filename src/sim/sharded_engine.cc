#include "sim/sharded_engine.hh"

#include <algorithm>
#include <chrono>

#include "obs/trace.hh"
#include "sim/logging.hh"

namespace neon
{

namespace
{

/**
 * The shard a thread is currently executing (parallel phase only).
 * Thread-local so FleetManager/Watchdog code deep in a shard's event
 * callbacks can detect the phase and reach its mailbox without any
 * plumbing through the device stack.
 */
struct ShardContext
{
    ShardMailbox *mailbox = nullptr;
    const EventQueue *queue = nullptr;
};

thread_local ShardContext *tlsShard = nullptr;

} // namespace

ShardedEngine::ShardedEngine(const ShardConfig &cfg, EventQueue &control,
                             std::size_t devices)
    : control(control), nDevices(devices ? devices : 1),
      nShards(cfg.count > 1 ? cfg.count : 1)
{
    if (nShards > nDevices)
        nShards = nDevices; // never more shards than devices
    if (nShards <= 1) {
        nShards = 1;
        return; // serial passthrough: the control queue is the core
    }

    window_ = cfg.window > 0 ? cfg.window : msec(1);

    queues.reserve(nShards);
    for (std::size_t s = 0; s < nShards; ++s)
        queues.push_back(std::make_unique<EventQueue>());
    mailboxes.resize(nShards);
    shardSinks.assign(nShards, nullptr);

    unsigned threads = cfg.threads > 0
        ? cfg.threads
        : std::max(1u, std::thread::hardware_concurrency());
    threads = std::min<unsigned>(threads, static_cast<unsigned>(nShards));
    nThreads_ = threads; // fixed before spawning: workers read it

    const auto t0 = std::chrono::steady_clock::now();
    workers.reserve(threads);
    for (unsigned w = 0; w < threads; ++w)
        workers.emplace_back([this, w] { workerMain(w); });
    setupS = std::chrono::duration<double>(
                 std::chrono::steady_clock::now() - t0)
                 .count();
}

ShardedEngine::~ShardedEngine()
{
    if (workers.empty())
        return;
    stopping.store(true, std::memory_order_relaxed);
    go.fetch_add(1, std::memory_order_release);
    go.notify_all();
    for (std::thread &t : workers)
        t.join();
}

void
ShardedEngine::workerMain(unsigned w)
{
    const unsigned nThreads = nThreads_;
    std::uint64_t seen = 0;
    for (;;) {
        std::uint64_t g = go.load(std::memory_order_acquire);
        if (g == seen) {
            // Spin briefly — windows are short, and the next one
            // usually opens within microseconds — then fall back to a
            // futex wait so idle shards never burn a core.
            for (int i = 0; i < 4096; ++i) {
                g = go.load(std::memory_order_acquire);
                if (g != seen)
                    break;
            }
            while (g == seen) {
                go.wait(seen, std::memory_order_acquire);
                g = go.load(std::memory_order_acquire);
            }
        }
        seen = g;
        if (stopping.load(std::memory_order_relaxed))
            return;
        const Tick b = target;
        for (std::size_t s = w; s < nShards; s += nThreads)
            runShard(s, b);
        done.fetch_add(1, std::memory_order_release);
        done.notify_one();
    }
}

void
ShardedEngine::runShard(std::size_t s, Tick b)
{
    ShardContext ctx{&mailboxes[s], queues[s].get()};
    tlsShard = &ctx;
    obs::installThreadTraceSink(shardSinks[s], queues[s].get());
    queues[s]->runUntil(b);
    obs::installThreadTraceSink(nullptr, nullptr);
    tlsShard = nullptr;
}

void
ShardedEngine::runShardsTo(Tick b)
{
    target = b;
    done.store(0, std::memory_order_relaxed);
    go.fetch_add(1, std::memory_order_release);
    go.notify_all();

    const unsigned nThreads = nThreads_;
    unsigned d = done.load(std::memory_order_acquire);
    while (d != nThreads) {
        for (int i = 0; i < 4096 && d != nThreads; ++i)
            d = done.load(std::memory_order_acquire);
        if (d != nThreads) {
            done.wait(d, std::memory_order_acquire);
            d = done.load(std::memory_order_acquire);
        }
    }
}

void
ShardedEngine::applyMailboxes()
{
    merged.clear();
    for (std::size_t s = 0; s < nShards; ++s) {
        if (mailboxes[s].empty())
            continue;
        for (ShardMailbox::Message &m : mailboxes[s].take()) {
            merged.push_back({m.when, static_cast<std::uint32_t>(s),
                              m.seq, std::move(m.fn)});
        }
    }
    if (merged.empty())
        return;
    // Canonical cross-shard order: simulation time, then shard, then
    // posting order — a pure function of the simulated run, so the
    // apply order never depends on which OS thread ran which shard.
    std::sort(merged.begin(), merged.end(),
              [](const PendingMsg &a, const PendingMsg &b) {
                  if (a.when != b.when)
                      return a.when < b.when;
                  if (a.shard != b.shard)
                      return a.shard < b.shard;
                  return a.seq < b.seq;
              });
    nMessages += merged.size();
    for (PendingMsg &m : merged)
        m.fn();
    merged.clear();
}

void
ShardedEngine::runUntil(Tick t)
{
    if (nShards <= 1) {
        control.runUntil(t);
        return;
    }
    if (t < control.now())
        panic("sharded run target ", t, " is in the past");

    while (control.now() < t) {
        const Tick b = std::min(control.now() + window_, t);

        // Parallel phase: every shard to the boundary, workers only.
        runShardsTo(b);

        // Barrier phase: control events run at their own timestamps,
        // then deferred shard effects land at b, then any follow-ups
        // they scheduled at b run before the next window opens.
        control.runUntil(b);
        applyMailboxes();
        control.runUntil(b);
        ++nWindows;
    }
}

std::uint64_t
ShardedEngine::totalExecuted() const
{
    std::uint64_t n = control.executed();
    for (const auto &q : queues)
        n += q->executed();
    return n;
}

bool
ShardedEngine::inShardPhase()
{
    return tlsShard != nullptr;
}

void
ShardedEngine::postFromShard(EventCallback fn)
{
    ShardContext *ctx = tlsShard;
    if (!ctx)
        panic("postFromShard called outside a shard phase");
    ctx->mailbox->post(ctx->queue->now(), std::move(fn));
}

void
ShardedEngine::postToBarrier(std::size_t s, Tick when, EventCallback fn)
{
    if (nShards <= 1) {
        // Serial core: no barrier exists; apply in place for parity.
        fn();
        return;
    }
    if (s >= nShards)
        panic("postToBarrier: shard ", s, " of ", nShards);
    mailboxes[s].post(when, std::move(fn));
}

void
ShardedEngine::setShardTraceSink(std::size_t s, obs::TraceRecorder *r)
{
    if (nShards <= 1)
        return;
    if (s >= nShards)
        panic("setShardTraceSink: shard ", s, " of ", nShards);
    shardSinks[s] = r;
}

void
ShardedEngine::clearShardTraceSinks()
{
    for (auto &sink : shardSinks)
        sink = nullptr;
}

} // namespace neon
