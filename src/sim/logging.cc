#include "sim/logging.hh"

namespace neon
{

namespace logging_detail
{

bool verbose = false;

void
emit(const std::string &tag, const std::string &msg)
{
    std::cerr << tag << ": " << msg << std::endl;
}

void
abortWith(const std::string &tag, const std::string &msg)
{
    emit(tag, msg);
    std::abort();
}

void
exitWith(const std::string &tag, const std::string &msg)
{
    emit(tag, msg);
    std::exit(1);
}

} // namespace logging_detail

void
setVerbose(bool on)
{
    logging_detail::verbose = on;
}

bool
verboseEnabled()
{
    return logging_detail::verbose;
}

bool
applyVerboseEnv()
{
    if (const char *env = std::getenv("NEON_VERBOSE")) {
        const std::string v(env);
        if (v == "1" || v == "true" || v == "yes" || v == "on")
            logging_detail::verbose = true;
        else if (v == "0" || v == "false" || v == "no" || v == "off")
            logging_detail::verbose = false;
        else
            warn("unrecognized NEON_VERBOSE value '", v, "' ignored");
    }
    return logging_detail::verbose;
}

} // namespace neon
