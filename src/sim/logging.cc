#include "sim/logging.hh"

namespace neon
{

namespace logging_detail
{

bool verbose = false;

void
emit(const std::string &tag, const std::string &msg)
{
    std::cerr << tag << ": " << msg << std::endl;
}

void
abortWith(const std::string &tag, const std::string &msg)
{
    emit(tag, msg);
    std::abort();
}

void
exitWith(const std::string &tag, const std::string &msg)
{
    emit(tag, msg);
    std::exit(1);
}

} // namespace logging_detail

void
setVerbose(bool on)
{
    logging_detail::verbose = on;
}

} // namespace neon
