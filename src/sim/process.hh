/**
 * @file
 * Simulated process: a coroutine driven by the event queue.
 *
 * A Process runs a Co body. The body suspends through awaitables created
 * by the process (sleepFor, park) or by higher layers (GPU submission,
 * completion waits). All resumptions are funnelled through resumeAt() so
 * that a killed process is never resumed again.
 */

#ifndef NEON_SIM_PROCESS_HH
#define NEON_SIM_PROCESS_HH

#include <coroutine>
#include <functional>
#include <string>

#include "sim/coroutine.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace neon
{

/**
 * Base simulated process.
 *
 * Lifecycle: Created -> Running (after start()) -> Done | Killed.
 * While Running, the body alternates between executing synchronously
 * inside event callbacks and being suspended on an awaitable.
 */
class Process
{
  public:
    enum class State { Created, Running, Done, Killed };

    Process(EventQueue &eq, std::string name);
    virtual ~Process();

    Process(const Process &) = delete;
    Process &operator=(const Process &) = delete;

    /** Begin executing @p body; the first step runs at now(). */
    void start(Co body);

    /**
     * Kill the process: cancel any pending wakeup and destroy the
     * coroutine frame. Safe to call while the process is suspended; must
     * not be called from inside the process's own body (defer via an
     * event instead).
     */
    void kill();

    /**
     * Retire the process: like kill(), but a graceful, expected end of
     * life (state becomes Done, onKilled is not invoked). Open-system
     * workloads use this when a task's lifetime expires or it migrates
     * to another device. Same reentrancy rule as kill(): never call it
     * from inside the process's own body.
     */
    void retire();

    const std::string &name() const { return procName; }
    State state() const { return procState; }
    bool alive() const { return procState == State::Running; }
    bool done() const { return procState == State::Done; }
    bool killed() const { return procState == State::Killed; }
    EventQueue &eventQueue() { return eq; }
    Tick now() const { return eq.now(); }

    /** Invoked once when the body runs to completion. */
    std::function<void(Process &)> onDone;

    /** Invoked once when the process is killed. */
    std::function<void(Process &)> onKilled;

    /**
     * Resume the suspended body after @p delay ticks. Called by awaitable
     * plumbing; ignores dead processes. Only one pending resume may exist
     * at a time (one body, one suspension point).
     */
    void resumeAt(Tick delay);

    /** Cancel a pending resumeAt (e.g., to re-park on another condition). */
    void cancelResume();

    /**
     * Record the suspension point. Called from await_suspend; the handle
     * must belong to this process's body.
     */
    void suspended(std::coroutine_handle<> h);

    /** Awaitable: suspend for a fixed duration. */
    struct SleepAwaitable
    {
        Process &proc;
        Tick duration;

        bool await_ready() const { return duration <= 0; }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            proc.suspended(h);
            proc.resumeAt(duration);
        }

        void await_resume() const {}
    };

    /** Awaitable: suspend until some external agent calls resumeAt(). */
    struct ParkAwaitable
    {
        Process &proc;

        bool await_ready() const { return false; }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            proc.suspended(h);
        }

        void await_resume() const {}
    };

    /** Suspend the body for @p d ticks of simulated time. */
    SleepAwaitable sleepFor(Tick d) { return {*this, d}; }

    /** Suspend the body until an external wakeup. */
    ParkAwaitable park() { return {*this}; }

  private:
    void stepBody();

    EventQueue &eq;
    std::string procName;
    State procState = State::Created;
    Co body;
    std::coroutine_handle<> suspendPoint;
    EventId pendingResume = invalidEventId;
};

} // namespace neon

#endif // NEON_SIM_PROCESS_HH
