/**
 * @file
 * Fundamental simulation types and time helpers.
 *
 * Simulated time is kept in integer nanoseconds (Tick). All model
 * constants elsewhere in the library are expressed through the helpers
 * here so that unit mistakes are hard to make.
 */

#ifndef NEON_SIM_TYPES_HH
#define NEON_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace neon
{

/** Simulated time, in nanoseconds. Signed so durations can go negative. */
using Tick = std::int64_t;

/** A sentinel "never" time, safely addable to any reasonable tick. */
constexpr Tick maxTick = std::numeric_limits<Tick>::max() / 4;

/** Convert nanoseconds to ticks (identity; for self-documenting call sites). */
constexpr Tick
nsec(double n)
{
    return static_cast<Tick>(n);
}

/** Convert microseconds to ticks. */
constexpr Tick
usec(double u)
{
    return static_cast<Tick>(u * 1e3);
}

/** Convert milliseconds to ticks. */
constexpr Tick
msec(double m)
{
    return static_cast<Tick>(m * 1e6);
}

/** Convert seconds to ticks. */
constexpr Tick
sec(double s)
{
    return static_cast<Tick>(s * 1e9);
}

/** Convert ticks to (fractional) microseconds, for reporting. */
constexpr double
toUsec(Tick t)
{
    return static_cast<double>(t) / 1e3;
}

/** Convert ticks to (fractional) milliseconds, for reporting. */
constexpr double
toMsec(Tick t)
{
    return static_cast<double>(t) / 1e6;
}

/** Convert ticks to (fractional) seconds, for reporting. */
constexpr double
toSec(Tick t)
{
    return static_cast<double>(t) / 1e9;
}

/**
 * Convert a CPU cycle count to ticks given a clock in GHz.
 * The paper's host runs at 2.27 GHz; a 305-cycle doorbell write is ~134 ns.
 */
constexpr Tick
cyclesToTicks(double cycles, double ghz)
{
    return static_cast<Tick>(cycles / ghz);
}

} // namespace neon

#endif // NEON_SIM_TYPES_HH
