/**
 * @file
 * gem5-style status and error reporting.
 *
 * panic()  - internal invariant violated; a bug in the simulator itself.
 * fatal()  - the simulation cannot continue due to a user/configuration
 *            error; normal exit with an error code.
 * warn()   - something works but possibly not the way the user expects.
 * inform() - plain status output.
 */

#ifndef NEON_SIM_LOGGING_HH
#define NEON_SIM_LOGGING_HH

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace neon
{

namespace logging_detail
{

template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void abortWith(const std::string &tag, const std::string &msg);
[[noreturn]] void exitWith(const std::string &tag, const std::string &msg);
void emit(const std::string &tag, const std::string &msg);

/** Verbosity gate for inform(); warnings always print. */
extern bool verbose;

} // namespace logging_detail

/** Report an internal simulator bug and abort (may dump core). */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    logging_detail::abortWith(
        "panic", logging_detail::concat(std::forward<Args>(args)...));
}

/** Report an unrecoverable user/configuration error and exit(1). */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    logging_detail::exitWith(
        "fatal", logging_detail::concat(std::forward<Args>(args)...));
}

/** Report a suspicious-but-survivable condition. */
template <typename... Args>
void
warn(Args &&...args)
{
    logging_detail::emit(
        "warn", logging_detail::concat(std::forward<Args>(args)...));
}

/** Report normal operating status (suppressed unless verbose). */
template <typename... Args>
void
inform(Args &&...args)
{
    if (logging_detail::verbose) {
        logging_detail::emit(
            "info", logging_detail::concat(std::forward<Args>(args)...));
    }
}

/** Enable/disable inform() output (tests and benches keep it off). */
void setVerbose(bool on);

/** Current inform() verbosity. */
bool verboseEnabled();

/**
 * Apply the NEON_VERBOSE environment variable ("1"/"true"/"yes"/"on"
 * enables, "0"/"false"/"no"/"off" disables, unset leaves the current
 * setting). Examples call this so users can flip status output without
 * editing code. Returns the resulting verbosity.
 */
bool applyVerboseEnv();

} // namespace neon

#endif // NEON_SIM_LOGGING_HH
