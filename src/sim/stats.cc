#include "sim/stats.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

namespace neon
{

void
Accum::add(double v)
{
    ++n;
    sum += v;
    const double d = v - m;
    m += d / static_cast<double>(n);
    m2 += d * (v - m);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
}

void
Accum::merge(const Accum &o)
{
    if (o.n == 0)
        return;
    if (n == 0) {
        *this = o;
        return;
    }

    const double na = static_cast<double>(n);
    const double nb = static_cast<double>(o.n);
    const double d = o.m - m;
    m2 += o.m2 + d * d * (na * nb / (na + nb));
    m += d * (nb / (na + nb));
    n += o.n;
    sum += o.sum;
    lo = std::min(lo, o.lo);
    hi = std::max(hi, o.hi);
}

void
Accum::reset()
{
    *this = Accum();
}

double
Accum::variance() const
{
    if (n < 2)
        return 0.0;
    const double v = m2 / static_cast<double>(n - 1);
    return v > 0.0 ? v : 0.0;
}

double
Accum::stddev() const
{
    return std::sqrt(variance());
}

Log2Histogram::Log2Histogram(unsigned max_bin) : bins(max_bin + 1, 0)
{
}

void
Log2Histogram::add(double value_us)
{
    // floor(log2(x)) for x >= 1 equals bit_width(floor(x)) - 1, since
    // bin edges are exact integers; an integer bit-scan beats the
    // floating-point log2 on this per-request path.
    unsigned b = 0;
    if (value_us >= 1.0) {
        const auto v = static_cast<std::uint64_t>(value_us);
        b = static_cast<unsigned>(std::bit_width(v)) - 1;
    }
    b = std::min<unsigned>(b, maxBin());
    ++bins[b];
    ++n;
}

void
Log2Histogram::reset()
{
    std::fill(bins.begin(), bins.end(), 0);
    n = 0;
}

std::uint64_t
Log2Histogram::binCount(unsigned b) const
{
    return b < bins.size() ? bins[b] : 0;
}

double
Log2Histogram::cdfPercent(unsigned b) const
{
    if (n == 0)
        return 0.0;
    std::uint64_t acc = 0;
    for (unsigned i = 0; i <= b && i < bins.size(); ++i)
        acc += bins[i];
    return 100.0 * static_cast<double>(acc) / static_cast<double>(n);
}

std::string
Log2Histogram::format() const
{
    std::ostringstream os;
    for (unsigned b = 0; b <= maxBin(); ++b) {
        os << b << " " << cdfPercent(b) << "\n";
        if (cdfPercent(b) >= 100.0)
            break;
    }
    return os.str();
}

} // namespace neon
