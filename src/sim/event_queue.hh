/**
 * @file
 * The discrete-event engine at the heart of the simulator.
 *
 * Events are closures ordered by (tick, insertion sequence); ties on the
 * tick execute in insertion order, which makes whole simulations
 * deterministic. Cancellation is supported through lazy deletion.
 */

#ifndef NEON_SIM_EVENT_QUEUE_HH
#define NEON_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"

namespace neon
{

/** Handle used to cancel a scheduled event. */
using EventId = std::uint64_t;

/** Invalid event handle. */
constexpr EventId invalidEventId = 0;

/**
 * A deterministic discrete-event queue with a monotone simulated clock.
 *
 * Callbacks run strictly in (when, id) order. Scheduling an event in the
 * past is an internal error (panic); scheduling at the current tick runs
 * the event after the currently executing one.
 */
class EventQueue
{
  public:
    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return curTick; }

    /** Schedule @p fn to run at absolute time @p when. */
    EventId schedule(Tick when, std::function<void()> fn);

    /** Schedule @p fn to run @p delay ticks from now. */
    EventId scheduleIn(Tick delay, std::function<void()> fn);

    /** Cancel a previously scheduled event; ignores stale ids. */
    void cancel(EventId id);

    /** True if no live events remain. */
    bool empty() const { return callbacks.empty(); }

    /** Number of live (non-cancelled) events. */
    std::size_t pending() const { return callbacks.size(); }

    /**
     * Execute the next event, if any.
     * @return true if an event ran, false if the queue was empty.
     */
    bool step();

    /** Run all events with when <= t; afterwards now() == t. */
    void runUntil(Tick t);

    /** Run for a duration relative to now(). */
    void runFor(Tick d) { runUntil(curTick + d); }

    /** Run until the queue is exhausted (or @p max_events executed). */
    std::uint64_t drain(std::uint64_t max_events = ~std::uint64_t(0));

    /** Total number of events executed so far. */
    std::uint64_t executed() const { return nExecuted; }

  private:
    struct Entry
    {
        Tick when;
        EventId id;

        bool
        operator>(const Entry &o) const
        {
            return when != o.when ? when > o.when : id > o.id;
        }
    };

    Tick curTick = 0;
    EventId nextId = 1;
    std::uint64_t nExecuted = 0;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
    std::unordered_map<EventId, std::function<void()>> callbacks;
};

} // namespace neon

#endif // NEON_SIM_EVENT_QUEUE_HH
