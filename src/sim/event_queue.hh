/**
 * @file
 * The discrete-event engine at the heart of the simulator.
 *
 * Events are closures ordered by (tick, insertion sequence); ties on the
 * tick execute in insertion order, which makes whole simulations
 * deterministic.
 *
 * The implementation is allocation-free in steady state and lean even
 * from cold:
 *
 *  - Callbacks are stored inline (small-buffer optimized) in pooled
 *    event slots, recycled LIFO through a free list. The pool grows in
 *    fixed-size chunks so existing slots never move (no relocation of
 *    live callbacks, stable addresses).
 *  - The ready queue is two-tier: a cache-friendly 4-ary heap over
 *    packed 16-byte (tick, sequence|slot) entries stages incoming
 *    events, and whenever the consume side runs dry the whole heap is
 *    carved into a sorted batch consumed back-to-front in O(1) —
 *    one sequential sort is several times cheaper per element than
 *    the equivalent series of heap pops. Execution always takes the
 *    earlier of (batch back, heap top), so the observable order is
 *    identical to a single priority queue.
 *  - Cancellation is O(1): the event's slot is recycled immediately
 *    and its queue entry goes stale, detected by a generation check
 *    (the slot remembers the unique sequence key of the event it
 *    currently backs). Stale entries are skipped at pop, or swept
 *    wholesale when they pile up, so cancel-heavy workloads (polling
 *    deadlines, timeslice preemption) cannot grow the queue unboundedly.
 *
 * Hot members (schedule / cancel / step / drain) are defined inline
 * here; cold maintenance (compaction) lives in event_queue.cc.
 */

#ifndef NEON_SIM_EVENT_QUEUE_HH
#define NEON_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "obs/trace.hh"
#include "sim/inline_function.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace neon
{

/**
 * Handle used to cancel a scheduled event.
 *
 * Encodes (insertion sequence << 20 | slot index). The sequence number
 * is globally unique, so a handle to an event that already ran or was
 * cancelled never aliases a later event even when the slot is reused —
 * it acts as a per-use generation count.
 */
using EventId = std::uint64_t;

/** Invalid event handle. */
constexpr EventId invalidEventId = 0;

/**
 * Event callback type: move-only, 64 bytes of inline storage. Every
 * hot-path capture in the simulator (raw pointers + POD request state)
 * fits inline; see the static_asserts at the call sites.
 */
using EventCallback = InlineFunction<void(), 64>;

/**
 * A deterministic discrete-event queue with a monotone simulated clock.
 *
 * Callbacks run strictly in (when, insertion order). Scheduling an
 * event in the past is an internal error (panic); scheduling at the
 * current tick runs the event after the currently executing one.
 */
class EventQueue
{
  public:
    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return curTick; }

    /** Schedule @p fn to run at absolute time @p when. */
    template <typename F>
    EventId
    schedule(Tick when, F &&fn)
    {
        if (when < curTick)
            panic("event scheduled in the past: ", when, " < ", curTick);
        // Fail fast on empty std::functions / null function pointers
        // rather than at execution time, far from the buggy call site.
        // (Plain lambdas have no bool conversion and skip the check.)
        if constexpr (requires { static_cast<bool>(fn); }) {
            if (!fn)
                panic("null event callback");
        }

        const std::uint32_t idx = acquireSlot();
        Slot &s = slotRef(idx);
        s.fn.emplace(std::forward<F>(fn));

        // seq is bounded so the packed key cannot collide with a slot
        // index; at simulator event rates the limit is unreachable,
        // but fail loudly rather than corrupt the order if it is.
        const std::uint64_t seq = nextSeq++;
        if (seq >= (std::uint64_t(1) << (64 - slotBits)))
            panic("event sequence space exhausted");

        const std::uint64_t key = (seq << slotBits) | idx;
        s.key = key;
        heapPush({when, key});
        ++nLive;
        if (nLive > peakLive)
            peakLive = nLive;
        return key;
    }

    /** Schedule @p fn to run @p delay ticks from now. */
    template <typename F>
    EventId
    scheduleIn(Tick delay, F &&fn)
    {
        if (delay < 0)
            panic("negative event delay: ", delay);
        return schedule(curTick + delay, std::forward<F>(fn));
    }

    /** Cancel a previously scheduled event; ignores stale ids. */
    void
    cancel(EventId id)
    {
        if (id == invalidEventId)
            return;
        const std::uint32_t idx =
            static_cast<std::uint32_t>(id & (slotCount - 1));
        if (idx >= nSlots)
            return;
        Slot &s = slotRef(idx);
        if (s.key != id)
            return; // stale id: the event already ran or was cancelled

        releaseSlot(s, idx);
        --nLive;
        ++nStale; // its queue entry lingers until popped or compacted
        if (nStale >= compactMinStale &&
            nStale * 2 >= heap.size() + batch.size()) {
            compact();
        }
    }

    /** True if no live events remain. */
    bool empty() const { return nLive == 0; }

    /** Number of live (non-cancelled) events. */
    std::size_t pending() const { return nLive; }

    /**
     * Execute the next event, if any.
     * @return true if an event ran, false if the queue was empty.
     */
    bool
    step()
    {
        Entry e;
        if (!takeNext(e))
            return false;

        // Recycle the slot before invoking so the callback may
        // reschedule (possibly into this very slot) or cancel its own
        // — now stale — id; the key check makes both safe.
        const auto idx = static_cast<std::uint32_t>(e.key & (slotCount - 1));
        Slot &s = slotRef(idx);
        EventCallback fn = std::move(s.fn);
        releaseSlot(s, idx);
        --nLive;

        if (e.when < curTick)
            panic("event time ran backwards");
        curTick = e.when;
        ++nExecuted;
        NEON_TRACE(obs::TraceCategory::SimCore, obs::TraceKind::Instant,
                   "eq.step", obs::TraceIds{}, nLive, nStale);
        fn();
        return true;
    }

    /** Run all events with when <= t; afterwards now() == t. */
    void
    runUntil(Tick t)
    {
        Tick w;
        while (peekNext(w) && w <= t) {
            if (!step())
                break;
        }
        if (t > curTick)
            curTick = t;
    }

    /** Run for a duration relative to now(). */
    void runFor(Tick d) { runUntil(curTick + d); }

    /** Run until the queue is exhausted (or @p max_events executed). */
    std::uint64_t
    drain(std::uint64_t max_events = ~std::uint64_t(0))
    {
        std::uint64_t n = 0;
        while (n < max_events && step())
            ++n;
        return n;
    }

    /** Total number of events executed so far. */
    std::uint64_t executed() const { return nExecuted; }

    /** Internal-state observability, for tests and the perf reporter. */
    struct QueueStats
    {
        std::size_t live;        ///< live (non-cancelled) events
        std::size_t peakLive;    ///< high-water mark of live events
        std::size_t heapEntries; ///< heap entries incl. stale ones
        std::size_t stale;       ///< cancelled entries still in heap
        std::size_t poolSlots;   ///< total pooled callback slots
        std::uint64_t compactions; ///< stale sweeps performed
    };

    QueueStats
    stats() const
    {
        return {nLive, peakLive, heap.size() + batch.size(), nStale,
                nSlots, nCompactions};
    }

  private:
    // Pool geometry: slot indices take the low 20 bits of an EventId
    // (1M concurrent events), the insertion sequence the upper 44.
    // Chunked so growth never moves a live slot.
    static constexpr unsigned slotBits = 20;
    static constexpr std::size_t slotCount = std::size_t(1) << slotBits;
    static constexpr unsigned chunkBits = 9; // 512 slots per chunk
    static constexpr std::size_t chunkSize = std::size_t(1) << chunkBits;

    // Compaction policy: sweeping costs O(entries), so only bother once
    // stale entries dominate — this bounds the queue at ~2x the live
    // event count under arbitrarily heavy cancel traffic while keeping
    // the amortized per-cancel cost O(1).
    static constexpr std::size_t compactMinStale = 64;

    // Don't carve tiny heaps into sorted batches; below this many
    // entries plain heap pops win over the sort call.
    static constexpr std::size_t carveMin = 64;

    /** One pooled callback slot; key == 0 marks the slot free. */
    struct Slot
    {
        EventCallback fn;
        std::uint64_t key = 0;      ///< EventId of the live occupant
        std::uint32_t nextFree = 0; ///< free-list link (index + 1)
    };

    /** One ready-queue entry: 16 bytes, four per cache line. */
    struct Entry
    {
        Tick when;
        std::uint64_t key; ///< (seq << slotBits) | slot
    };

    /**
     * Priority order: earliest tick first, then insertion sequence.
     * Comparing packed keys is comparing sequences — the sequence
     * occupies the high bits and is unique per entry.
     */
    static bool
    earlier(const Entry &a, const Entry &b)
    {
        return a.when != b.when ? a.when < b.when : a.key < b.key;
    }

    Slot &
    slotRef(std::uint32_t idx)
    {
        return chunks[idx >> chunkBits][idx & (chunkSize - 1)];
    }

    const Slot &
    slotRef(std::uint32_t idx) const
    {
        return chunks[idx >> chunkBits][idx & (chunkSize - 1)];
    }

    bool
    isLive(const Entry &e) const
    {
        return slotRef(static_cast<std::uint32_t>(e.key & (slotCount - 1)))
                   .key == e.key;
    }

    std::uint32_t
    acquireSlot()
    {
        if (freeHead != 0) {
            const std::uint32_t idx = freeHead - 1;
            freeHead = slotRef(idx).nextFree;
            return idx;
        }
        return growPool();
    }

    void
    releaseSlot(Slot &s, std::uint32_t idx)
    {
        s.fn = nullptr;
        s.key = 0;
        s.nextFree = freeHead;
        freeHead = idx + 1;
    }

    void
    heapPush(const Entry &e)
    {
        heap.push_back(e);
        siftUp(heap.size() - 1);
    }

    void
    heapPopTop()
    {
        heap.front() = heap.back();
        heap.pop_back();
        if (!heap.empty())
            siftDown(0);
    }

    void
    siftUp(std::size_t i)
    {
        const Entry e = heap[i];
        while (i > 0) {
            const std::size_t parent = (i - 1) / 4;
            if (!earlier(e, heap[parent]))
                break;
            heap[i] = heap[parent];
            i = parent;
        }
        heap[i] = e;
    }

    void
    siftDown(std::size_t i)
    {
        const Entry e = heap[i];
        const std::size_t n = heap.size();
        for (;;) {
            const std::size_t first = 4 * i + 1;
            if (first >= n)
                break;
            std::size_t best = first;
            const std::size_t last = first + 4 < n ? first + 4 : n;
            for (std::size_t c = first + 1; c < last; ++c) {
                if (earlier(heap[c], heap[best]))
                    best = c;
            }
            if (!earlier(heap[best], e))
                break;
            heap[i] = heap[best];
            i = best;
        }
        heap[i] = e;
    }

    /** Drop stale entries off the heap top; true if a live top remains. */
    bool
    pruneHeapTop()
    {
        for (;;) {
            if (heap.empty())
                return false;
            if (isLive(heap[0])) [[likely]]
                return true;
            heapPopTop();
            --nStale;
        }
    }

    /** Drop stale entries off the batch back; true if one remains. */
    bool
    pruneBatchBack()
    {
        for (;;) {
            if (batch.empty())
                return false;
            if (isLive(batch.back())) [[likely]]
                return true;
            batch.pop_back();
            --nStale;
        }
    }

    /**
     * Select (and remove) the next event in (when, seq) order from
     * whichever tier holds it. Returns false when no live event
     * remains.
     */
    bool
    takeNext(Entry &out)
    {
        if (nStale != 0) [[unlikely]] {
            pruneBatchBack();
            pruneHeapTop();
        }
        if (batch.empty() && heap.size() >= carveMin) {
            carve();
            if (nStale != 0) [[unlikely]]
                pruneBatchBack(); // carve may surface stale entries
        }

        if (batch.empty()) {
            if (heap.empty())
                return false;
            out = heap[0];
            heapPopTop();
            return true;
        }
        if (!heap.empty() && earlier(heap[0], batch.back())) {
            out = heap[0];
            heapPopTop();
            return true;
        }
        out = batch.back();
        batch.pop_back();
        return true;
    }

    /** The tick of the next live event, without consuming it. */
    bool
    peekNext(Tick &when)
    {
        if (nStale != 0) [[unlikely]] {
            pruneBatchBack();
            pruneHeapTop();
        }
        if (batch.empty()) {
            if (heap.empty())
                return false;
            when = heap[0].when;
            return true;
        }
        when = !heap.empty() && earlier(heap[0], batch.back())
            ? heap[0].when
            : batch.back().when;
        return true;
    }

    std::uint32_t growPool();
    void carve();
    void compact();

    Tick curTick = 0;
    std::uint64_t nextSeq = 1;
    std::uint64_t nExecuted = 0;
    std::uint64_t nCompactions = 0;
    std::size_t nLive = 0;
    std::size_t peakLive = 0;
    std::size_t nStale = 0;
    std::size_t nSlots = 0;     ///< slots allocated across all chunks
    std::uint32_t freeHead = 0; ///< free-list head (index + 1); 0 = empty

    std::vector<Entry> heap;  ///< staging tier (arbitrary inserts)
    std::vector<Entry> batch; ///< consume tier, sorted descending
    std::vector<std::unique_ptr<Slot[]>> chunks;
};

} // namespace neon

#endif // NEON_SIM_EVENT_QUEUE_HH
