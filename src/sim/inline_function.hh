/**
 * @file
 * A small-buffer-optimized, move-only callable.
 *
 * The discrete-event hot path schedules millions of closures per
 * simulated second; std::function heap-allocates any capture larger
 * than (typically) two pointers, which makes the allocator the
 * bottleneck. InlineFunction stores the callable inline when it fits
 * in the (compile-time) buffer — covering every capture shape the
 * simulator uses on hot paths — and only falls back to the heap for
 * oversized cold-path callables.
 *
 * Dispatch goes through a per-type static operations table (invoke /
 * relocate / destroy), so the object itself is just the buffer plus
 * one pointer.
 */

#ifndef NEON_SIM_INLINE_FUNCTION_HH
#define NEON_SIM_INLINE_FUNCTION_HH

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace neon
{

template <typename Signature, std::size_t InlineBytes = 64>
class InlineFunction; // undefined; specialized below

template <typename R, typename... Args, std::size_t InlineBytes>
class InlineFunction<R(Args...), InlineBytes>
{
  public:
    /** Does a callable of type F store inline (no heap allocation)? */
    template <typename F>
    static constexpr bool fitsInline =
        sizeof(F) <= InlineBytes &&
        alignof(F) <= alignof(std::max_align_t) &&
        std::is_nothrow_move_constructible_v<F>;

    InlineFunction() = default;
    InlineFunction(std::nullptr_t) {}

    template <typename F>
        requires(!std::is_same_v<std::remove_cvref_t<F>, InlineFunction> &&
                 std::is_invocable_r_v<R, std::remove_cvref_t<F> &, Args...>)
    InlineFunction(F &&f)
    {
        emplace(std::forward<F>(f));
    }

    InlineFunction(InlineFunction &&o) noexcept { moveFrom(o); }

    InlineFunction &
    operator=(InlineFunction &&o) noexcept
    {
        if (this != &o) {
            reset();
            moveFrom(o);
        }
        return *this;
    }

    InlineFunction &
    operator=(std::nullptr_t) noexcept
    {
        reset();
        return *this;
    }

    /**
     * Construct a callable directly into this object's storage —
     * hot-path schedule() uses this to go from the caller's lambda to
     * the stored event with zero intermediate moves.
     */
    template <typename F>
        requires(!std::is_same_v<std::remove_cvref_t<F>, InlineFunction> &&
                 std::is_invocable_r_v<R, std::remove_cvref_t<F> &, Args...>)
    void
    emplace(F &&f)
    {
        reset();
        using Fn = std::remove_cvref_t<F>;
        if constexpr (fitsInline<Fn>) {
            ::new (static_cast<void *>(buf)) Fn(std::forward<F>(f));
            ops = &inlineOps<Fn>;
        } else {
            // Cold path: the callable is too large (or has an exotic
            // alignment); box it. Hot-path call sites static_assert
            // fitsInline so this never happens where it matters.
            *reinterpret_cast<Fn **>(buf) = new Fn(std::forward<F>(f));
            ops = &heapOps<Fn>;
        }
    }

    InlineFunction(const InlineFunction &) = delete;
    InlineFunction &operator=(const InlineFunction &) = delete;

    ~InlineFunction() { reset(); }

    explicit operator bool() const { return ops != nullptr; }

    R
    operator()(Args... args)
    {
        return ops->invoke(buf, std::forward<Args>(args)...);
    }

  private:
    struct Ops
    {
        R (*invoke)(void *, Args &&...);
        void (*relocate)(void *dst, void *src) noexcept;
        void (*destroy)(void *) noexcept;
    };

    template <typename Fn>
    static Fn &
    asInline(void *p)
    {
        return *std::launder(reinterpret_cast<Fn *>(p));
    }

    template <typename Fn>
    static constexpr Ops inlineOps = {
        [](void *p, Args &&...args) -> R {
            return asInline<Fn>(p)(std::forward<Args>(args)...);
        },
        [](void *dst, void *src) noexcept {
            ::new (dst) Fn(std::move(asInline<Fn>(src)));
            asInline<Fn>(src).~Fn();
        },
        [](void *p) noexcept { asInline<Fn>(p).~Fn(); },
    };

    template <typename Fn>
    static constexpr Ops heapOps = {
        [](void *p, Args &&...args) -> R {
            return (**reinterpret_cast<Fn **>(p))(
                std::forward<Args>(args)...);
        },
        [](void *dst, void *src) noexcept {
            *reinterpret_cast<Fn **>(dst) = *reinterpret_cast<Fn **>(src);
        },
        [](void *p) noexcept { delete *reinterpret_cast<Fn **>(p); },
    };

    void
    moveFrom(InlineFunction &o) noexcept
    {
        if (o.ops) {
            ops = o.ops;
            ops->relocate(buf, o.buf);
            o.ops = nullptr;
        }
    }

    void
    reset() noexcept
    {
        if (ops) {
            ops->destroy(buf);
            ops = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char buf[InlineBytes];
    const Ops *ops = nullptr;
};

} // namespace neon

#endif // NEON_SIM_INLINE_FUNCTION_HH
