/**
 * @file
 * Minimal C++20 coroutine task type for simulated processes.
 *
 * A Co is the body of one simulated process. It starts suspended; the
 * owning Process resumes it from event-queue callbacks. The coroutine
 * frame is destroyed either when the body finishes or when the owning
 * Process is destroyed/killed, so RAII cleanup inside bodies is reliable.
 */

#ifndef NEON_SIM_COROUTINE_HH
#define NEON_SIM_COROUTINE_HH

#include <coroutine>
#include <exception>
#include <utility>

namespace neon
{

/**
 * Fire-and-forget coroutine handle with lazy start.
 *
 * Ownership of the frame is movable and unique; destruction of a live Co
 * destroys the frame (running any pending RAII cleanup in the body).
 */
class Co
{
  public:
    struct promise_type
    {
        Co
        get_return_object()
        {
            return Co(
                std::coroutine_handle<promise_type>::from_promise(*this));
        }

        std::suspend_always initial_suspend() noexcept { return {}; }
        std::suspend_always final_suspend() noexcept { return {}; }
        void return_void() noexcept {}

        void
        unhandled_exception()
        {
            // Simulated process bodies must not leak exceptions; doing so
            // is an internal error.
            std::terminate();
        }
    };

    using Handle = std::coroutine_handle<promise_type>;

    Co() = default;
    explicit Co(Handle h) : handle(h) {}

    Co(Co &&o) noexcept : handle(std::exchange(o.handle, nullptr)) {}

    Co &
    operator=(Co &&o) noexcept
    {
        if (this != &o) {
            destroy();
            handle = std::exchange(o.handle, nullptr);
        }
        return *this;
    }

    Co(const Co &) = delete;
    Co &operator=(const Co &) = delete;

    ~Co() { destroy(); }

    /** True if this Co owns a live frame. */
    bool valid() const { return static_cast<bool>(handle); }

    /** True if the body has run to completion (frame still owned). */
    bool done() const { return handle && handle.done(); }

    /** Resume the body until its next suspension point. */
    void
    resume()
    {
        if (handle && !handle.done())
            handle.resume();
    }

    /** Destroy the frame, running RAII cleanup in the body. */
    void
    destroy()
    {
        if (handle) {
            handle.destroy();
            handle = nullptr;
        }
    }

  private:
    Handle handle;
};

} // namespace neon

#endif // NEON_SIM_COROUTINE_HH
