/**
 * @file
 * Statistics primitives: running accumulators and log2-binned
 * histograms matching the paper's Figure 2 presentation.
 */

#ifndef NEON_SIM_STATS_HH
#define NEON_SIM_STATS_HH

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace neon
{

/**
 * Running mean/min/max/stddev accumulator.
 *
 * Uses Welford's online algorithm (and Chan et al.'s pairwise update
 * for merge): the naive sum/sum-of-squares formulation cancels
 * catastrophically when the mean is large relative to the spread —
 * e.g. microsecond jitter on top of multi-second timestamps.
 */
class Accum
{
  public:
    void add(double v);
    void merge(const Accum &o);
    void reset();

    std::uint64_t count() const { return n; }
    double total() const { return sum; }
    double mean() const { return n ? m : 0.0; }
    double minimum() const { return n ? lo : 0.0; }
    double maximum() const { return n ? hi : 0.0; }
    double variance() const;
    double stddev() const;

  private:
    std::uint64_t n = 0;
    double sum = 0.0; ///< kept exactly for total()
    double m = 0.0;   ///< running mean
    double m2 = 0.0;  ///< sum of squared deviations from the mean
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
};

/**
 * Histogram over floor(log2(value)) bins, as used for the paper's
 * request inter-arrival and service-time CDFs (Figure 2). Values are
 * supplied in microseconds; values below 1 land in bin 0.
 */
class Log2Histogram
{
  public:
    explicit Log2Histogram(unsigned max_bin = 20);

    void add(double value_us);
    void reset();

    unsigned maxBin() const { return unsigned(bins.size()) - 1; }
    std::uint64_t binCount(unsigned b) const;
    std::uint64_t total() const { return n; }

    /** Fraction of samples in bins [0, b], in percent. */
    double cdfPercent(unsigned b) const;

    /** Render "bin cdf%" rows, one per line. */
    std::string format() const;

  private:
    std::vector<std::uint64_t> bins;
    std::uint64_t n = 0;
};

/** Simple named-series container used by benches to print tables. */
struct Series
{
    std::string name;
    std::vector<double> values;
};

} // namespace neon

#endif // NEON_SIM_STATS_HH
