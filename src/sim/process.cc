#include "sim/process.hh"

#include <utility>

#include "sim/logging.hh"

namespace neon
{

Process::Process(EventQueue &eq, std::string name)
    : eq(eq), procName(std::move(name))
{
}

Process::~Process()
{
    cancelResume();
    // Co's destructor reclaims the frame if the body never finished.
}

void
Process::start(Co b)
{
    if (procState != State::Created)
        panic("process ", procName, " started twice");
    if (!b.valid())
        panic("process ", procName, " started with an empty body");

    body = std::move(b);
    procState = State::Running;
    pendingResume = eq.scheduleIn(0, [this] {
        pendingResume = invalidEventId;
        stepBody();
    });
}

void
Process::kill()
{
    if (procState != State::Running)
        return;

    cancelResume();
    procState = State::Killed;
    body.destroy();
    if (onKilled)
        onKilled(*this);
}

void
Process::retire()
{
    if (procState != State::Running)
        return;

    cancelResume();
    procState = State::Done;
    body.destroy();
    // Deliberately no onDone: the body did not run to completion, the
    // caller ended it and already knows.
}

void
Process::resumeAt(Tick delay)
{
    if (procState != State::Running)
        return;
    if (pendingResume != invalidEventId)
        panic("process ", procName, " double resume");

    // Hot path: every coroutine await round-trips through here.
    auto resume = [this] {
        pendingResume = invalidEventId;
        stepBody();
    };
    static_assert(EventCallback::fitsInline<decltype(resume)>);
    pendingResume = eq.scheduleIn(delay, std::move(resume));
}

void
Process::cancelResume()
{
    if (pendingResume != invalidEventId) {
        eq.cancel(pendingResume);
        pendingResume = invalidEventId;
    }
}

void
Process::suspended(std::coroutine_handle<> h)
{
    suspendPoint = h;
}

void
Process::stepBody()
{
    if (procState != State::Running)
        return;

    body.resume();

    if (body.done()) {
        procState = State::Done;
        body.destroy();
        if (onDone)
            onDone(*this);
    }
}

} // namespace neon
