#include "sim/event_queue.hh"

#include <utility>

#include "sim/logging.hh"

namespace neon
{

EventId
EventQueue::schedule(Tick when, std::function<void()> fn)
{
    if (when < curTick)
        panic("event scheduled in the past: ", when, " < ", curTick);
    if (!fn)
        panic("null event callback");

    EventId id = nextId++;
    heap.push({when, id});
    callbacks.emplace(id, std::move(fn));
    return id;
}

EventId
EventQueue::scheduleIn(Tick delay, std::function<void()> fn)
{
    if (delay < 0)
        panic("negative event delay: ", delay);
    return schedule(curTick + delay, std::move(fn));
}

void
EventQueue::cancel(EventId id)
{
    callbacks.erase(id);
}

bool
EventQueue::step()
{
    while (!heap.empty()) {
        Entry e = heap.top();
        heap.pop();

        auto it = callbacks.find(e.id);
        if (it == callbacks.end())
            continue; // lazily deleted (cancelled)

        // Move the callback out so the event may reschedule itself.
        std::function<void()> fn = std::move(it->second);
        callbacks.erase(it);

        if (e.when < curTick)
            panic("event time ran backwards");
        curTick = e.when;
        ++nExecuted;
        fn();
        return true;
    }
    return false;
}

void
EventQueue::runUntil(Tick t)
{
    while (!heap.empty() && heap.top().when <= t) {
        if (!step())
            break;
    }
    if (t > curTick)
        curTick = t;
}

std::uint64_t
EventQueue::drain(std::uint64_t max_events)
{
    std::uint64_t n = 0;
    while (n < max_events && step())
        ++n;
    return n;
}

} // namespace neon
