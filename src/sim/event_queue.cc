#include "sim/event_queue.hh"

#include <algorithm>

namespace neon
{

std::uint32_t
EventQueue::growPool()
{
    if (nSlots >= slotCount)
        panic("event slot pool exhausted (", nSlots, " slots)");

    const auto base = static_cast<std::uint32_t>(nSlots);
    chunks.push_back(std::make_unique<Slot[]>(chunkSize));
    nSlots += chunkSize;

    // Hand out the chunk's first slot; thread the rest onto the free
    // list with the lowest index on top, so near-term reuse walks the
    // chunk sequentially (cache-warm).
    Slot *chunk = chunks.back().get();
    for (std::size_t i = chunkSize; i-- > 1;) {
        chunk[i].nextFree = freeHead;
        freeHead = base + static_cast<std::uint32_t>(i) + 1;
    }
    return base;
}

void
EventQueue::carve()
{
    // Move the staging heap wholesale into the consume batch and sort
    // it descending, so execution pops live entries off the back in
    // O(1). The two vectors swap storage, so capacity is recycled and
    // steady-state carving performs no allocation.
    batch.swap(heap);
    std::sort(batch.begin(), batch.end(),
              [](const Entry &a, const Entry &b) { return earlier(b, a); });
    NEON_TRACE(obs::TraceCategory::SimCore, obs::TraceKind::Instant,
               "eq.carve", obs::TraceIds{}, batch.size(), nStale);
}

void
EventQueue::compact()
{
    const auto stale = [this](const Entry &e) { return !isLive(e); };
    heap.erase(std::remove_if(heap.begin(), heap.end(), stale),
               heap.end());
    // remove_if preserves relative order, so the batch stays sorted.
    batch.erase(std::remove_if(batch.begin(), batch.end(), stale),
                batch.end());
    NEON_TRACE(obs::TraceCategory::SimCore, obs::TraceKind::Instant,
               "eq.compact", obs::TraceIds{}, nStale,
               heap.size() + batch.size());
    nStale = 0;
    ++nCompactions;

    // Floyd heap construction: O(n), entries keep their sequence keys
    // so the (when, seq) order — and thus determinism — is unchanged.
    if (heap.size() > 1) {
        for (std::size_t i = (heap.size() - 2) / 4 + 1; i-- > 0;)
            siftDown(i);
    }
}

} // namespace neon
