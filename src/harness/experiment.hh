/**
 * @file
 * Experiment harness: assembles a world (device + kernel + scheduler +
 * tasks), runs warmup and measurement windows, and reports the paper's
 * metrics (per-round times, slowdowns, concurrency efficiency).
 */

#ifndef NEON_HARNESS_EXPERIMENT_HH
#define NEON_HARNESS_EXPERIMENT_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "gpu/device.hh"
#include "gpu/usage_meter.hh"
#include "metrics/request_trace.hh"
#include "os/kernel.hh"
#include "os/task.hh"
#include "sched/disengaged_fq.hh"
#include "sched/engaged_fq.hh"
#include "sched/timeslice.hh"
#include "sim/event_queue.hh"
#include "workload/app_profile.hh"
#include "workload/throttle.hh"

namespace neon
{

/** Which policy to install. */
enum class SchedKind
{
    Direct,
    Timeslice,
    DisengagedTimeslice,
    DisengagedFq,
    EngagedFq,
};

/** Display name of a policy. */
std::string schedKindName(SchedKind k);

/** The four policies evaluated in the paper's figures. */
extern const std::vector<SchedKind> paperSchedulers;

/** Full experiment configuration. */
struct ExperimentConfig
{
    SchedKind sched = SchedKind::Direct;

    DeviceConfig device;
    CostModel costs;
    ChannelPolicy channelPolicy;
    Tick pollPeriod = msec(1);

    TimesliceConfig timeslice;
    DfqConfig dfq;
    EngagedFqConfig engagedFq;

    Tick warmup = msec(400);
    Tick measure = sec(4);
    std::uint64_t seed = 42;

    /** Attach a RequestTrace during measurement (Table 1 / Fig. 2). */
    bool collectTraces = false;
};

/** One task's workload description. */
struct WorkloadSpec
{
    /** Profile-driven synthetic app. */
    static WorkloadSpec app(const std::string &profile_name);

    /** Throttle microbenchmark. */
    static WorkloadSpec throttle(Tick request_size, double sleep_ratio = 0.0);

    /** Arbitrary body (adversaries, custom scenarios). */
    static WorkloadSpec
    custom(std::string label,
           std::function<Co(Task &, std::uint64_t)> body);

    std::string label;
    enum class Kind { Profile, Throttle, Custom } kind = Kind::Profile;
    std::string profileName;
    ThrottleParams throttleParams;
    std::function<Co(Task &, std::uint64_t)> customBody;
};

/** Per-task outcome of a run. */
struct TaskResult
{
    std::string label;
    int pid = 0;
    double meanRoundUs = 0.0;
    std::uint64_t rounds = 0;
    Tick gpuBusy = 0;           ///< ground-truth device time (measurement)
    std::uint64_t requests = 0; ///< completed device requests
    bool killed = false;
};

/** Whole-run outcome. */
struct RunResult
{
    std::vector<TaskResult> tasks;
    Tick elapsed = 0;
    Tick deviceBusy = 0;       ///< execute-engine busy (measurement window)
    Tick switchOverhead = 0;
    std::uint64_t kills = 0;

    const TaskResult &byLabel(const std::string &label) const;
};

/**
 * An assembled simulation world. Exposed so tests and examples can
 * poke at internals; benches normally go through ExperimentRunner.
 */
class World
{
  public:
    explicit World(const ExperimentConfig &cfg);
    ~World();

    World(const World &) = delete;
    World &operator=(const World &) = delete;

    /** Create a task running @p spec; call before start(). */
    Task &spawn(const WorkloadSpec &spec);

    /** Start the kernel (polling + policy) and all spawned tasks. */
    void start();

    /** Run for @p d simulated time. */
    void runFor(Tick d) { eq.runFor(d); }

    /** Begin the measurement window: clear all statistics. */
    void beginMeasurement();

    /** Harvest results since beginMeasurement(). */
    RunResult results();

    EventQueue eq;
    UsageMeter meter;
    GpuDevice device;
    KernelModule kernel;
    std::unique_ptr<Scheduler> sched;
    RequestTrace trace;

  private:
    ExperimentConfig cfg;
    std::vector<std::unique_ptr<Task>> taskStore;
    std::vector<WorkloadSpec> specs;
    std::vector<std::uint64_t> baselineRequests;
    std::vector<Tick> baselineBusy;
    Tick measureStart = 0;
    Tick busyAtMeasureStart = 0;
    Tick switchAtMeasureStart = 0;
};

/** Convenience driver for the common run patterns. */
class ExperimentRunner
{
  public:
    explicit ExperimentRunner(ExperimentConfig cfg) : cfg(std::move(cfg)) {}

    /** Run the given workloads together under cfg. */
    RunResult run(const std::vector<WorkloadSpec> &specs) const;

    /**
     * Solo baseline: run one workload alone under direct access (the
     * paper's normalization basis). Returns the mean round time in us.
     */
    double soloRoundUs(const WorkloadSpec &spec) const;

    /**
     * Slowdowns of each workload in a co-run relative to its solo
     * direct-access baseline, in spec order.
     */
    std::vector<double>
    slowdowns(const std::vector<WorkloadSpec> &specs) const;

    const ExperimentConfig &config() const { return cfg; }
    ExperimentConfig &config() { return cfg; }

  private:
    ExperimentConfig cfg;
};

} // namespace neon

#endif // NEON_HARNESS_EXPERIMENT_HH
