/**
 * @file
 * Experiment harness: assembles a world (device + kernel + scheduler +
 * tasks), runs warmup and measurement windows, and reports the paper's
 * metrics (per-round times, slowdowns, concurrency efficiency).
 */

#ifndef NEON_HARNESS_EXPERIMENT_HH
#define NEON_HARNESS_EXPERIMENT_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "fault/fault_config.hh"
#include "fleet/fleet_manager.hh"
#include "fleet/fleet_metrics.hh"
#include "gpu/device.hh"
#include "gpu/usage_meter.hh"
#include "metrics/request_trace.hh"
#include "obs/observe.hh"
#include "os/kernel.hh"
#include "os/task.hh"
#include "sched/disengaged_fq.hh"
#include "sched/engaged_fq.hh"
#include "sched/timeslice.hh"
#include "serve/serve_config.hh"
#include "sim/event_queue.hh"
#include "sim/sharded_engine.hh"
#include "workload/app_profile.hh"
#include "workload/arrival.hh"
#include "workload/throttle.hh"

namespace neon
{

/** Which policy to install. */
enum class SchedKind
{
    Direct,
    Timeslice,
    DisengagedTimeslice,
    DisengagedFq,
    EngagedFq,
};

/** Display name of a policy. */
std::string schedKindName(SchedKind k);

/** The four policies evaluated in the paper's figures. */
extern const std::vector<SchedKind> paperSchedulers;

/** Full experiment configuration. */
struct ExperimentConfig
{
    SchedKind sched = SchedKind::Direct;

    DeviceConfig device;
    CostModel costs;
    ChannelPolicy channelPolicy;
    Tick pollPeriod = msec(1);

    TimesliceConfig timeslice;
    DfqConfig dfq;
    EngagedFqConfig engagedFq;

    /**
     * Multi-device fleet shape (FleetWorld/FleetRunner only; the
     * single-device World ignores it). Each device runs its own
     * instance of the policy selected by `sched`.
     */
    FleetConfig fleet;

    /**
     * Open-system serving layer (ServeWorld/ServeRunner only):
     * admission policy, per-device session slots, global virtual
     * clock, and migration thresholds.
     */
    ServeConfig serve;

    /**
     * Fault plane: watchdog protection (all worlds) and the seeded
     * fault-injection plan (ServeWorld only). Default-disabled; an
     * empty plan with the watchdog on leaves workload draws
     * bit-identical to a fault-free run.
     */
    FaultConfig fault;

    /**
     * Sharded parallel simulation core (FleetWorld/ServeWorld): the
     * fleet is partitioned into `shards.count` device groups, each on
     * its own event queue and worker thread, synchronized on a
     * conservative window grid (resolveShardWindow). count <= 1 keeps
     * the serial single-queue core, bit-identical to previous PRs;
     * N-shard runs are deterministic across repeats and thread counts.
     * The single-device World ignores this block.
     */
    ShardConfig shards;

    Tick warmup = msec(400);
    Tick measure = sec(4);
    std::uint64_t seed = 42;

    /** Attach a RequestTrace during measurement (Table 1 / Fig. 2). */
    bool collectTraces = false;

    /**
     * Tracing & metrics plane (all worlds): category mask, trace ring
     * capacity, sampling cadence, and output paths. Default-disabled —
     * every NEON_TRACE point stays a single predicted-untaken branch.
     */
    obs::ObserveConfig observe;
};

/** One task's workload description. */
struct WorkloadSpec
{
    /** Profile-driven synthetic app. */
    static WorkloadSpec app(const std::string &profile_name);

    /** Throttle microbenchmark. */
    static WorkloadSpec throttle(Tick request_size, double sleep_ratio = 0.0);

    /** Arbitrary body (adversaries, custom scenarios). */
    static WorkloadSpec
    custom(std::string label,
           std::function<Co(Task &, std::uint64_t)> body);

    /** Fleet placement: set the sticky-affinity key (fluent). */
    WorkloadSpec &
    withAffinity(std::string key)
    {
        affinityKey = std::move(key);
        return *this;
    }

    /** Fleet placement: set the relative demand hint (fluent). */
    WorkloadSpec &
    withDemand(double d)
    {
        demand = d;
        return *this;
    }

    std::string label;
    enum class Kind { Profile, Throttle, Custom } kind = Kind::Profile;
    std::string profileName;
    ThrottleParams throttleParams;
    std::function<Co(Task &, std::uint64_t)> customBody;

    /** Sticky-placement affinity key (empty = use the label). */
    std::string affinityKey;

    /** Relative expected load (HeterogeneityAware placement hint). */
    double demand = 1.0;
};

/** Per-task outcome of a run. */
struct TaskResult
{
    std::string label;
    int pid = 0;
    double meanRoundUs = 0.0;
    std::uint64_t rounds = 0;
    Tick gpuBusy = 0;           ///< ground-truth device time (measurement)
    std::uint64_t requests = 0; ///< completed device requests
    bool killed = false;
};

/** Whole-run outcome. */
struct RunResult
{
    std::vector<TaskResult> tasks;
    Tick elapsed = 0;
    Tick deviceBusy = 0;       ///< execute-engine busy (measurement window)
    Tick switchOverhead = 0;
    std::uint64_t kills = 0;

    /** Invariant-audit outcome (checks == 0 when the auditor was off). */
    obs::AuditReport audit;

    const TaskResult &byLabel(const std::string &label) const;
};

/**
 * An assembled simulation world. Exposed so tests and examples can
 * poke at internals; benches normally go through ExperimentRunner.
 */
class World
{
  public:
    explicit World(const ExperimentConfig &cfg);
    ~World();

    World(const World &) = delete;
    World &operator=(const World &) = delete;

    /** Create a task running @p spec; call before start(). */
    Task &spawn(const WorkloadSpec &spec);

    /** Start the kernel (polling + policy) and all spawned tasks. */
    void start();

    /** Run for @p d simulated time. */
    void runFor(Tick d) { eq.runFor(d); }

    /** Begin the measurement window: clear all statistics. */
    void beginMeasurement();

    /** Harvest results since beginMeasurement(). */
    RunResult results();

    EventQueue eq;
    UsageMeter meter;
    GpuDevice device;
    KernelModule kernel;
    std::unique_ptr<Scheduler> sched;
    RequestTrace trace;

    /** Tracing/metrics bundle (cfg.observe.enabled() only, else null). */
    std::unique_ptr<obs::Observer> observer;

    /** Invariant auditor (cfg.observe.audit.enabled; on by default). */
    std::unique_ptr<obs::Auditor> auditor;

    /** Watchdog service (cfg.fault.watchdog.enabled only, else null). */
    std::unique_ptr<Watchdog> watchdog;

  private:
    ExperimentConfig cfg;
    std::vector<std::unique_ptr<Task>> taskStore;
    std::vector<WorkloadSpec> specs;
    std::vector<std::uint64_t> baselineRequests;
    std::vector<Tick> baselineBusy;
    Tick measureStart = 0;
    Tick busyAtMeasureStart = 0;
    Tick switchAtMeasureStart = 0;
};

/**
 * Build the scheduling policy selected by @p cfg for one kernel
 * module. @p vendor_counters (the device's ground-truth meter) is
 * wired into policies that support vendor-assisted attribution
 * (DfqConfig::Attribution::DeviceCounters); pass nullptr to leave the
 * software-only estimates.
 */
std::unique_ptr<Scheduler>
makeScheduler(const ExperimentConfig &cfg, KernelModule &kernel,
              const UsageMeter *vendor_counters);

/**
 * Instantiate @p spec's workload body for @p t. Shared by the closed
 * worlds (spawn at t0) and the serving layer (bodies restarted per
 * session incarnation).
 */
Co makeWorkloadBody(Task &t, const WorkloadSpec &spec, std::uint64_t seed);

/**
 * The conservative synchronization window for @p cfg: the configured
 * cfg.shards.window when set, otherwise the tightest cross-shard
 * interaction cadence — min(poll period, serve global-clock period) —
 * floored at 100us. Shards never interact faster than the kernel's
 * engagement cadence and the serve layer's decision cadence, so a
 * window at that horizon delays cross-shard effects by at most one
 * decision interval.
 */
Tick resolveShardWindow(const ExperimentConfig &cfg);

/** Per-task outcome of a fleet run. */
struct FleetTaskResult
{
    std::string label;
    std::size_t device = 0; ///< device the task was placed on
    int pid = 0;            ///< pid within that device's kernel
    double meanRoundUs = 0.0;
    std::uint64_t rounds = 0;
    Tick gpuBusy = 0;
    std::uint64_t requests = 0;
    bool killed = false;
};

/** Whole-fleet outcome of a run. */
struct FleetRunResult
{
    std::vector<FleetTaskResult> tasks;
    Tick elapsed = 0;
    std::vector<Tick> deviceBusy; ///< per-device busy (window)
    std::uint64_t requests = 0;   ///< fleet-wide completions (window)
    Tick switchOverhead = 0;      ///< fleet-wide arbitration overhead
    std::uint64_t kills = 0;
    double throughputRps = 0.0;   ///< fleet-wide requests per second
    FleetFairnessReport fairness;

    /** Invariant-audit outcome (checks == 0 when the auditor was off). */
    obs::AuditReport audit;

    const FleetTaskResult &byLabel(const std::string &label) const;
};

/**
 * A multi-device simulation world: cfg.fleet.devices independent
 * device stacks, each running cfg.sched, with tasks routed to devices
 * by cfg.fleet.placement. The single-device World remains the
 * unsharded special case.
 */
class FleetWorld
{
  public:
    explicit FleetWorld(const ExperimentConfig &cfg);
    ~FleetWorld();

    FleetWorld(const FleetWorld &) = delete;
    FleetWorld &operator=(const FleetWorld &) = delete;

    /** Create a task, routed by the placement policy. */
    Task &spawn(const WorkloadSpec &spec);

    /** Start every device's kernel and all spawned tasks. */
    void start();

    void runFor(Tick d) { shardCore.runFor(d); }

    /** Begin the measurement window: snapshot all statistics. */
    void beginMeasurement();

    /** Harvest results since beginMeasurement(). */
    FleetRunResult results();

    /** Device @p i's request trace (cfg.collectTraces only). */
    RequestTrace &
    traceOf(std::size_t i)
    {
        if (i >= traces.size())
            panic("no trace for device ", i,
                  traces.empty() ? " (collectTraces not set)" : "");
        return *traces[i];
    }

    /** Events executed across the control queue and every shard. */
    std::uint64_t eventsExecuted() const { return shardCore.totalExecuted(); }

    EventQueue eq;           ///< coordinator/control queue
    ShardedEngine shardCore; ///< window-sync driver (serial when <=1 shard)
    FleetManager fleet;

    /** Tracing/metrics bundle (cfg.observe.enabled() only, else null). */
    std::unique_ptr<obs::Observer> observer;

    /** Invariant auditor (cfg.observe.audit.enabled; on by default). */
    std::unique_ptr<obs::Auditor> auditor;

  private:
    ExperimentConfig cfg;
    std::vector<WorkloadSpec> specs; // parallel to fleet.tasks()
    std::vector<std::unique_ptr<RequestTrace>> traces; // per device
    std::vector<Tick> baselineBusy;
    std::vector<std::uint64_t> baselineRequests;
    std::vector<Tick> deviceBusyBaseline;
    std::vector<Tick> deviceSwitchBaseline;
    std::vector<Tick> vtimeBaseline;
    Tick measureStart = 0;
};

/** Convenience driver for fleet runs (mirrors ExperimentRunner). */
class FleetRunner
{
  public:
    explicit FleetRunner(ExperimentConfig cfg) : cfg(std::move(cfg)) {}

    /** Run the given workloads together across the fleet. */
    FleetRunResult run(const std::vector<WorkloadSpec> &specs) const;

    const ExperimentConfig &config() const { return cfg; }
    ExperimentConfig &config() { return cfg; }

  private:
    ExperimentConfig cfg;
};

/** Convenience driver for the common run patterns. */
class ExperimentRunner
{
  public:
    explicit ExperimentRunner(ExperimentConfig cfg) : cfg(std::move(cfg)) {}

    /** Run the given workloads together under cfg. */
    RunResult run(const std::vector<WorkloadSpec> &specs) const;

    /**
     * Solo baseline: run one workload alone under direct access (the
     * paper's normalization basis). Returns the mean round time in us.
     */
    double soloRoundUs(const WorkloadSpec &spec) const;

    /**
     * Slowdowns of each workload in a co-run relative to its solo
     * direct-access baseline, in spec order.
     */
    std::vector<double>
    slowdowns(const std::vector<WorkloadSpec> &specs) const;

    const ExperimentConfig &config() const { return cfg; }
    ExperimentConfig &config() { return cfg; }

  private:
    ExperimentConfig cfg;
};

} // namespace neon

#endif // NEON_HARNESS_EXPERIMENT_HH
