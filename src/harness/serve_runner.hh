/**
 * @file
 * Harness entry points for open-system serving runs.
 *
 * ServeWorld assembles a fleet (cfg.fleet) plus a ServeEngine
 * (cfg.serve) fed by ServeWorkloadSpecs — each a workload template
 * with an arrival process and a lifetime distribution. ServeRunner
 * drives a whole run and reports SLO percentiles (queueing delay,
 * sojourn, slowdown vs. the class's isolated baseline) alongside
 * fleet-level fairness and throughput.
 *
 * Unlike the closed runners there is no warmup/measurement split: an
 * open run is measured whole, from the first arrival to the horizon,
 * because the transient (queue build-up and drain) is the object of
 * study rather than noise.
 */

#ifndef NEON_HARNESS_SERVE_RUNNER_HH
#define NEON_HARNESS_SERVE_RUNNER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "fault/availability.hh"
#include "fault/injector.hh"
#include "harness/experiment.hh"
#include "metrics/slo.hh"
#include "serve/serve_engine.hh"

namespace neon
{

/** One serving workload class: template + arrivals + lifetimes. */
struct ServeWorkloadSpec
{
    WorkloadSpec workload;
    ArrivalSpec arrivals;
    LifetimeSpec lifetime;

    /** Fair-share principal; defaults to the workload label. */
    std::string tenant;

    /** QoS class (ordered/preempted only when cfg.serve.qos is on). */
    QosClass qos = QosClass::Batch;

    /** Queue-delay budget override (0 = cfg.serve.slo.queueTarget). */
    Tick queueBudget = 0;

    ServeWorkloadSpec() = default;
    ServeWorkloadSpec(WorkloadSpec w, ArrivalSpec a, LifetimeSpec l,
                      std::string tenant = "")
        : workload(std::move(w)), arrivals(std::move(a)), lifetime(l),
          tenant(std::move(tenant))
    {
    }
};

/** Outcome of one session (serving analogue of FleetTaskResult). */
struct ServeSessionResult
{
    std::string label;
    std::string tenant;
    std::size_t cls = 0; ///< index into the spec vector

    Tick arrived = 0;
    Tick admitted = -1; ///< -1 = still queued at the horizon
    Tick departed = -1; ///< -1 = still live at the horizon
    bool killed = false;
    bool shed = false; ///< dropped: retry budget spent or front door
    bool shedPredicted = false; ///< shed by the SLO front door at arrival
    bool throttled = false;     ///< rejected by the token bucket

    int evictions = 0;   ///< device-failure interruptions
    int failovers = 0;   ///< successful resumes after interruption
    int preemptions = 0; ///< displaced by interactive admissions

    std::vector<std::size_t> devices; ///< one per incarnation
    int migrations = 0;

    Tick busy = 0;              ///< ground-truth device time, all incarnations
    std::uint64_t requests = 0; ///< completed requests, all incarnations
    double meanRoundUs = 0.0;
    std::uint64_t rounds = 0;

    bool wasAdmitted() const { return admitted >= 0; }
    bool hasDeparted() const { return departed >= 0; }
};

/** Whole-run outcome of a serving experiment. */
struct ServeRunResult
{
    std::vector<ServeSessionResult> sessions;

    std::uint64_t arrivals = 0;
    std::uint64_t departures = 0;
    std::uint64_t kills = 0;
    std::uint64_t migrations = 0;
    std::uint64_t evictions = 0;     ///< session interruptions
    std::uint64_t retryAttempts = 0; ///< re-admission attempts
    std::uint64_t failovers = 0;     ///< successful resumes
    std::uint64_t shedSessions = 0;  ///< all sheds (front door + retry)
    std::uint64_t predictiveSheds = 0; ///< SLO front-door sheds
    std::uint64_t throttledSessions = 0; ///< token-bucket rejections
    std::uint64_t preemptions = 0;   ///< batch incarnations displaced

    /**
     * Of the sessions interrupted by a device failure, the fraction
     * that resumed after every interruption and were not later shed or
     * killed. 1.0 when nothing was interrupted.
     */
    double recoveryRate = 1.0;
    std::size_t peakLiveSessions = 0; ///< in-system (queued + placed)
    std::size_t peakQueueDepth = 0;
    std::size_t queuedAtEnd = 0;
    std::size_t capacity = 0; ///< admission slots fleet-wide

    Tick elapsed = 0;
    std::vector<Tick> deviceBusy;
    std::uint64_t requests = 0;
    double throughputRps = 0.0;
    double sessionsPerSec = 0.0; ///< departures per second

    /**
     * Jain index over per-session speed-normalized service rates
     * (busy x device speed / residency), admitted un-killed sessions.
     * The serving analogue of FleetFairnessReport::taskFairness.
     */
    double serviceFairness = 1.0;

    /** Max-min spread of per-device normalized vtimes at the horizon. */
    double vtimeSpreadMs = 0.0;

    /** Jain index over per-device busy time. */
    double deviceBalance = 1.0;

    SloReport slo;

    /** Injected vs. detected vs. recovered (fault plane enabled). */
    AvailabilityReport fault;

    /** Observer capture summary (empty when observe was disabled). */
    std::string observeSummary;

    /** Trace-ring drops across all rings (0 = exact capture / no trace). */
    std::uint64_t traceDrops = 0;

    /** Invariant-audit outcome (checks == 0 when the auditor was off). */
    obs::AuditReport audit;

    /** Per-session phase attribution (observe.analyze.phases only). */
    std::vector<obs::SessionPhases> sessionPhases;

    /** Tail attribution rolled up overall / per tenant / per class. */
    obs::PhaseReport phases;

    /** Windowed fairness/goodput/util series (observe.analyze.window). */
    std::vector<obs::WindowStats> timeline;

    const ServeSessionResult &byLabel(const std::string &label) const;
};

/** An assembled open-system world (tests poke at internals). */
class ServeWorld
{
  public:
    ServeWorld(const ExperimentConfig &cfg,
               const std::vector<ServeWorkloadSpec> &specs);
    ~ServeWorld();

    ServeWorld(const ServeWorld &) = delete;
    ServeWorld &operator=(const ServeWorld &) = delete;

    /** Start fleet kernels, arrivals, and the global clock. */
    void start();

    void runFor(Tick d) { shardCore.runFor(d); }

    /** Harvest the whole run (slowdown SLO left to ServeRunner). */
    ServeRunResult results();

    /** Events executed across the control queue and every shard. */
    std::uint64_t eventsExecuted() const { return shardCore.totalExecuted(); }

    EventQueue eq;           ///< control queue: arrivals, admission,
                             ///< global clock, fault plan
    ShardedEngine shardCore; ///< window-sync driver (serial when <=1 shard)
    FleetManager fleet;
    ServeEngine engine;

    /** Tracing/metrics bundle (cfg.observe.enabled() only, else null). */
    std::unique_ptr<obs::Observer> observer;

    /** Analysis plane (cfg.observe.analyze.enabled() only, else null). */
    std::unique_ptr<obs::Analyzer> analyzer;

    /** Invariant auditor (cfg.observe.audit.enabled; on by default). */
    std::unique_ptr<obs::Auditor> auditor;

    /** Fault injector (cfg.fault.plan.any() only, else null). */
    std::unique_ptr<FaultInjector> injector;

  private:
    ExperimentConfig cfg;
};

/**
 * Resolve the per-device session-slot bound: the configured value, or
 * the Section 6.3 user bound (channel pool / per-task channel limit).
 */
std::size_t resolveSlotsPerDevice(const ExperimentConfig &cfg);

/** Convenience driver for serving runs (mirrors FleetRunner). */
class ServeRunner
{
  public:
    explicit ServeRunner(ExperimentConfig cfg) : cfg(std::move(cfg)) {}

    /**
     * Run the serving classes for cfg.measure simulated time (from
     * t=0; no warmup) and report. @p with_slowdowns adds the per-class
     * isolated-baseline runs needed for the slowdown SLO.
     */
    ServeRunResult run(const std::vector<ServeWorkloadSpec> &specs,
                       bool with_slowdowns = true) const;

    const ExperimentConfig &config() const { return cfg; }
    ExperimentConfig &config() { return cfg; }

  private:
    ExperimentConfig cfg;
};

} // namespace neon

#endif // NEON_HARNESS_SERVE_RUNNER_HH
