#include "harness/experiment.hh"

#include <utility>

#include "metrics/reporter.hh"
#include "sched/direct.hh"
#include "sched/disengaged_timeslice.hh"
#include "sched/vtime_tap.hh"
#include "sim/logging.hh"
#include "workload/synthetic_app.hh"

namespace neon
{

const std::vector<SchedKind> paperSchedulers = {
    SchedKind::Direct,
    SchedKind::Timeslice,
    SchedKind::DisengagedTimeslice,
    SchedKind::DisengagedFq,
};

std::string
schedKindName(SchedKind k)
{
    switch (k) {
      case SchedKind::Direct:
        return "direct";
      case SchedKind::Timeslice:
        return "timeslice";
      case SchedKind::DisengagedTimeslice:
        return "disengaged-ts";
      case SchedKind::DisengagedFq:
        return "disengaged-fq";
      case SchedKind::EngagedFq:
        return "engaged-fq";
    }
    return "?";
}

WorkloadSpec
WorkloadSpec::app(const std::string &profile_name)
{
    WorkloadSpec s;
    s.kind = Kind::Profile;
    s.profileName = profile_name;
    s.label = profile_name;
    return s;
}

WorkloadSpec
WorkloadSpec::throttle(Tick request_size, double sleep_ratio)
{
    WorkloadSpec s;
    s.kind = Kind::Throttle;
    s.throttleParams.requestSize = request_size;
    s.throttleParams.sleepRatio = sleep_ratio;
    // Built with += (not operator+ chains): GCC 12's inliner emits
    // false-positive -Wrestrict warnings for temporary-concat chains
    // at some call sites.
    s.label = "Throttle(";
    s.label += Table::num(toUsec(request_size), 0);
    s.label += "us";
    if (sleep_ratio > 0.0) {
        s.label += ",";
        s.label += Table::num(100.0 * sleep_ratio, 0);
        s.label += "%off";
    }
    s.label += ")";
    return s;
}

WorkloadSpec
WorkloadSpec::custom(std::string label,
                     std::function<Co(Task &, std::uint64_t)> body)
{
    WorkloadSpec s;
    s.kind = Kind::Custom;
    s.label = std::move(label);
    s.customBody = std::move(body);
    return s;
}

const TaskResult &
RunResult::byLabel(const std::string &label) const
{
    for (const auto &t : tasks) {
        if (t.label == label)
            return t;
    }
    panic("no task labelled ", label, " in results");
}

std::unique_ptr<Scheduler>
makeScheduler(const ExperimentConfig &cfg, KernelModule &kernel,
              const UsageMeter *vendor_counters)
{
    std::unique_ptr<Scheduler> sched;
    switch (cfg.sched) {
      case SchedKind::Direct:
        sched = std::make_unique<DirectScheduler>(kernel);
        break;
      case SchedKind::Timeslice:
        sched =
            std::make_unique<TimesliceScheduler>(kernel, cfg.timeslice);
        break;
      case SchedKind::DisengagedTimeslice:
        sched =
            std::make_unique<DisengagedTimeslice>(kernel, cfg.timeslice);
        break;
      case SchedKind::DisengagedFq:
        sched =
            std::make_unique<DisengagedFairQueueing>(kernel, cfg.dfq);
        break;
      case SchedKind::EngagedFq:
        sched =
            std::make_unique<EngagedFairQueueing>(kernel, cfg.engagedFq);
        break;
    }
    if (!sched)
        panic("unknown scheduler kind");
    if (auto *dfq = dynamic_cast<DisengagedFairQueueing *>(sched.get()))
        dfq->setVendorCounters(vendor_counters); // DeviceCounters mode
    return sched;
}

Co
makeWorkloadBody(Task &t, const WorkloadSpec &spec, std::uint64_t seed)
{
    switch (spec.kind) {
      case WorkloadSpec::Kind::Profile:
        return syntheticAppBody(t, AppRegistry::byName(spec.profileName),
                                seed);
      case WorkloadSpec::Kind::Throttle:
        return throttleBody(t, spec.throttleParams, seed);
      case WorkloadSpec::Kind::Custom:
        return spec.customBody(t, seed);
    }
    panic("unknown workload kind");
}

namespace
{

/** Deterministic per-task seed derivation (spawn order @p i). */
std::uint64_t
taskSeed(const ExperimentConfig &cfg, std::size_t i)
{
    return cfg.seed * 0x9e3779b9u + 0x1000 * (i + 1);
}

} // namespace

World::World(const ExperimentConfig &cfg)
    : device(eq, cfg.device, meter), kernel(eq, device, cfg.costs,
                                            cfg.channelPolicy),
      cfg(cfg)
{
    kernel.polling().setPeriod(cfg.pollPeriod);
    sched = makeScheduler(cfg, kernel, &meter);
    kernel.setScheduler(sched.get());
    if (cfg.collectTraces)
        trace.attach(device);
    if (cfg.observe.enabled()) {
        observer = std::make_unique<obs::Observer>(eq, cfg.observe);
        observer->metrics().probe("eq.executed", [this] {
            return static_cast<double>(eq.executed());
        });
        observer->start();
    }
    if (cfg.fault.watchdog.enabled) {
        watchdog = std::make_unique<Watchdog>(eq, kernel,
                                              cfg.fault.watchdog, 0);
    }
    if (cfg.observe.audit.enabled) {
        auditor = std::make_unique<obs::Auditor>(eq, cfg.observe.audit);
        if (dynamic_cast<VirtualTimeTap *>(sched.get())) {
            auditor->addMonotone("dev0.vtime_monotone", [this] {
                return static_cast<double>(
                    dynamic_cast<const VirtualTimeTap *>(sched.get())
                        ->tapSystemVtime());
            });
        }
        auditor->addMonotone("dev0.busy_monotone", [this] {
            return static_cast<double>(meter.totalBusy());
        });
        if (watchdog) {
            const WatchdogConfig wdc = cfg.fault.watchdog;
            auditor->addFinal(
                "watchdog.latency_bound",
                [this, wdc](obs::AuditLog &log, Tick now) {
                    for (const WatchdogKill &k : watchdog->killLog()) {
                        const Tick timeout = k.cause == WatchdogCause::Hang
                            ? wdc.hangTimeout
                            : wdc.runawayTimeout;
                        const Tick bound = timeout + 2 * wdc.checkPeriod;
                        log.check(k.latency <= bound,
                                  "watchdog.latency_bound", now, bound,
                                  k.latency);
                    }
                });
        }
        auditor->start();
    }
}

World::~World() = default;

Task &
World::spawn(const WorkloadSpec &spec)
{
    auto task = std::make_unique<Task>(kernel, spec.label);
    Task &ref = *task;
    taskStore.push_back(std::move(task));
    specs.push_back(spec);
    return ref;
}

void
World::start()
{
    for (std::size_t i = 0; i < taskStore.size(); ++i) {
        Task &t = *taskStore[i];
        kernel.startTask(t,
                         makeWorkloadBody(t, specs[i], taskSeed(cfg, i)));
    }
    kernel.start();
    if (watchdog)
        watchdog->start();
}

void
World::beginMeasurement()
{
    measureStart = eq.now();
    busyAtMeasureStart = meter.totalBusy();
    switchAtMeasureStart = meter.totalSwitchOverhead();
    baselineRequests.clear();
    baselineBusy.clear();
    for (auto &t : taskStore) {
        t->resetStats();
        baselineRequests.push_back(meter.requestsOf(t->pid()));
        baselineBusy.push_back(meter.busyOf(t->pid()));
    }
    trace.reset();
}

RunResult
World::results()
{
    RunResult r;
    r.elapsed = eq.now() - measureStart;
    r.deviceBusy = meter.totalBusy() - busyAtMeasureStart;
    r.switchOverhead =
        meter.totalSwitchOverhead() - switchAtMeasureStart;
    r.kills = kernel.killCount();

    for (std::size_t i = 0; i < taskStore.size(); ++i) {
        Task &t = *taskStore[i];
        TaskResult tr;
        tr.label = specs[i].label;
        tr.pid = t.pid();
        tr.meanRoundUs = t.roundTimes().mean();
        tr.rounds = t.roundTimes().count();
        tr.gpuBusy = meter.busyOf(t.pid()) -
            (i < baselineBusy.size() ? baselineBusy[i] : 0);
        tr.requests = meter.requestsOf(t.pid()) -
            (i < baselineRequests.size() ? baselineRequests[i] : 0);
        tr.killed = t.killed();
        r.tasks.push_back(std::move(tr));
    }
    if (auditor) {
        auditor->finalize();
        r.audit = auditor->report();
    }
    return r;
}

const FleetTaskResult &
FleetRunResult::byLabel(const std::string &label) const
{
    for (const auto &t : tasks) {
        if (t.label == label)
            return t;
    }
    panic("no task labelled ", label, " in fleet results");
}

Tick
resolveShardWindow(const ExperimentConfig &cfg)
{
    if (cfg.shards.window > 0)
        return cfg.shards.window;
    Tick w = cfg.pollPeriod > 0 ? cfg.pollPeriod : msec(1);
    if (cfg.serve.clockPeriod > 0)
        w = std::min(w, cfg.serve.clockPeriod);
    return std::max<Tick>(w, usec(100));
}

namespace
{

/** cfg.shards with the window grid resolved (parallel runs only). */
ShardConfig
resolvedShards(const ExperimentConfig &cfg)
{
    ShardConfig s = cfg.shards;
    if (s.parallel())
        s.window = resolveShardWindow(cfg);
    return s;
}

} // namespace

FleetWorld::FleetWorld(const ExperimentConfig &cfg)
    : shardCore(resolvedShards(cfg), eq, cfg.fleet.devices),
      fleet(shardCore, cfg.fleet, cfg.device, cfg.costs,
            cfg.channelPolicy, cfg.pollPeriod,
            [&cfg](KernelModule &kernel, const UsageMeter &meter,
                   std::size_t) {
                return makeScheduler(cfg, kernel, &meter);
            }),
      cfg(cfg)
{
    if (cfg.collectTraces) {
        for (std::size_t i = 0; i < fleet.deviceCount(); ++i) {
            traces.push_back(std::make_unique<RequestTrace>());
            traces.back()->attach(fleet.stack(i).device);
        }
    }
    if (cfg.observe.enabled()) {
        observer = std::make_unique<obs::Observer>(eq, cfg.observe);
        observer->attachFleet(fleet);
        observer->attachShards(shardCore);
        observer->start();
    }
    if (cfg.fault.watchdog.enabled)
        fleet.enableWatchdog(cfg.fault.watchdog);
    if (cfg.observe.audit.enabled) {
        auditor = std::make_unique<obs::Auditor>(eq, cfg.observe.audit);
        obs::registerFleetAudits(
            *auditor, fleet,
            cfg.fault.watchdog.enabled ? &cfg.fault.watchdog : nullptr);
        auditor->start();
    }
}

FleetWorld::~FleetWorld() = default;

Task &
FleetWorld::spawn(const WorkloadSpec &spec)
{
    PlacementRequest req;
    req.label = spec.label;
    req.affinityKey = spec.affinityKey;
    req.demand = spec.demand;
    Task &t = fleet.createTask(req);
    specs.push_back(spec);
    return t;
}

void
FleetWorld::start()
{
    const std::vector<Task *> &tasks = fleet.tasks();
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        Task &t = *tasks[i];
        fleet.startTask(t,
                        makeWorkloadBody(t, specs[i], taskSeed(cfg, i)));
    }
    fleet.start();
}

void
FleetWorld::beginMeasurement()
{
    measureStart = eq.now();
    baselineBusy.clear();
    baselineRequests.clear();
    deviceBusyBaseline = fleet.perDeviceBusy();
    deviceSwitchBaseline.clear();
    for (std::size_t i = 0; i < fleet.deviceCount(); ++i)
        deviceSwitchBaseline.push_back(
            fleet.stack(i).meter.totalSwitchOverhead());
    vtimeBaseline = fleetDfqVtimes(fleet);
    for (Task *t : fleet.tasks())
        t->resetStats();
    for (const FleetTaskUsage &u : fleet.taskUsage()) {
        baselineBusy.push_back(u.busy);
        baselineRequests.push_back(u.requests);
    }
    for (auto &t : traces)
        t->reset();
}

FleetRunResult
FleetWorld::results()
{
    FleetRunResult r;
    r.elapsed = eq.now() - measureStart;
    r.kills = fleet.totalKills();

    r.deviceBusy = fleet.perDeviceBusy();
    for (std::size_t i = 0; i < r.deviceBusy.size(); ++i) {
        if (i < deviceBusyBaseline.size())
            r.deviceBusy[i] -= deviceBusyBaseline[i];
        r.switchOverhead +=
            fleet.stack(i).meter.totalSwitchOverhead() -
            (i < deviceSwitchBaseline.size() ? deviceSwitchBaseline[i]
                                             : 0);
    }

    // Window-adjusted per-task usage feeds both the task results and
    // the fleet fairness indices.
    std::vector<FleetTaskUsage> usage = fleet.taskUsage();
    const std::vector<Task *> &tasks = fleet.tasks();
    for (std::size_t i = 0; i < usage.size(); ++i) {
        FleetTaskUsage &u = usage[i];
        u.busy -= i < baselineBusy.size() ? baselineBusy[i] : 0;
        u.requests -=
            i < baselineRequests.size() ? baselineRequests[i] : 0;

        FleetTaskResult tr;
        tr.label = u.label;
        tr.device = u.device;
        tr.pid = u.pid;
        tr.meanRoundUs = tasks[i]->roundTimes().mean();
        tr.rounds = tasks[i]->roundTimes().count();
        tr.gpuBusy = u.busy;
        tr.requests = u.requests;
        tr.killed = u.killed;
        r.requests += u.requests;
        r.tasks.push_back(std::move(tr));
    }

    r.throughputRps = fleetThroughputRps(r.requests, r.elapsed);
    r.fairness.taskFairness = fleetTaskFairness(usage, fleet);
    r.fairness.deviceBalance = fleetDeviceBalance(r.deviceBusy);
    r.fairness.vtimeSpreadMs = fleetVtimeSpreadMs(fleet, vtimeBaseline);
    if (auditor) {
        auditor->finalize();
        r.audit = auditor->report();
    }
    return r;
}

FleetRunResult
FleetRunner::run(const std::vector<WorkloadSpec> &specs) const
{
    FleetWorld world(cfg);
    for (const auto &s : specs)
        world.spawn(s);
    world.start();
    world.runFor(cfg.warmup);
    world.beginMeasurement();
    world.runFor(cfg.measure);
    return world.results();
}

RunResult
ExperimentRunner::run(const std::vector<WorkloadSpec> &specs) const
{
    World world(cfg);
    for (const auto &s : specs)
        world.spawn(s);
    world.start();
    world.runFor(cfg.warmup);
    world.beginMeasurement();
    world.runFor(cfg.measure);
    return world.results();
}

double
ExperimentRunner::soloRoundUs(const WorkloadSpec &spec) const
{
    ExperimentConfig solo_cfg = cfg;
    solo_cfg.sched = SchedKind::Direct;
    solo_cfg.observe = {}; // baselines never trace
    ExperimentRunner solo(solo_cfg);
    const RunResult r = solo.run({spec});
    return r.tasks.at(0).meanRoundUs;
}

std::vector<double>
ExperimentRunner::slowdowns(const std::vector<WorkloadSpec> &specs) const
{
    const RunResult co = run(specs);
    std::vector<double> out;
    out.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const double solo = soloRoundUs(specs[i]);
        const double corun = co.tasks.at(i).meanRoundUs;
        out.push_back(solo > 0.0 ? corun / solo : 0.0);
    }
    return out;
}

} // namespace neon
