#include "harness/experiment.hh"

#include <utility>

#include "metrics/reporter.hh"
#include "sched/direct.hh"
#include "sched/disengaged_timeslice.hh"
#include "sim/logging.hh"
#include "workload/synthetic_app.hh"

namespace neon
{

const std::vector<SchedKind> paperSchedulers = {
    SchedKind::Direct,
    SchedKind::Timeslice,
    SchedKind::DisengagedTimeslice,
    SchedKind::DisengagedFq,
};

std::string
schedKindName(SchedKind k)
{
    switch (k) {
      case SchedKind::Direct:
        return "direct";
      case SchedKind::Timeslice:
        return "timeslice";
      case SchedKind::DisengagedTimeslice:
        return "disengaged-ts";
      case SchedKind::DisengagedFq:
        return "disengaged-fq";
      case SchedKind::EngagedFq:
        return "engaged-fq";
    }
    return "?";
}

WorkloadSpec
WorkloadSpec::app(const std::string &profile_name)
{
    WorkloadSpec s;
    s.kind = Kind::Profile;
    s.profileName = profile_name;
    s.label = profile_name;
    return s;
}

WorkloadSpec
WorkloadSpec::throttle(Tick request_size, double sleep_ratio)
{
    WorkloadSpec s;
    s.kind = Kind::Throttle;
    s.throttleParams.requestSize = request_size;
    s.throttleParams.sleepRatio = sleep_ratio;
    s.label = "Throttle(" + Table::num(toUsec(request_size), 0) + "us";
    if (sleep_ratio > 0.0)
        s.label += "," + Table::num(100.0 * sleep_ratio, 0) + "%off";
    s.label += ")";
    return s;
}

WorkloadSpec
WorkloadSpec::custom(std::string label,
                     std::function<Co(Task &, std::uint64_t)> body)
{
    WorkloadSpec s;
    s.kind = Kind::Custom;
    s.label = std::move(label);
    s.customBody = std::move(body);
    return s;
}

const TaskResult &
RunResult::byLabel(const std::string &label) const
{
    for (const auto &t : tasks) {
        if (t.label == label)
            return t;
    }
    panic("no task labelled ", label, " in results");
}

namespace
{

std::unique_ptr<Scheduler>
makeScheduler(const ExperimentConfig &cfg, KernelModule &kernel)
{
    switch (cfg.sched) {
      case SchedKind::Direct:
        return std::make_unique<DirectScheduler>(kernel);
      case SchedKind::Timeslice:
        return std::make_unique<TimesliceScheduler>(kernel, cfg.timeslice);
      case SchedKind::DisengagedTimeslice:
        return std::make_unique<DisengagedTimeslice>(kernel, cfg.timeslice);
      case SchedKind::DisengagedFq:
        return std::make_unique<DisengagedFairQueueing>(kernel, cfg.dfq);
      case SchedKind::EngagedFq:
        return std::make_unique<EngagedFairQueueing>(kernel, cfg.engagedFq);
    }
    panic("unknown scheduler kind");
}

} // namespace

World::World(const ExperimentConfig &cfg)
    : device(eq, cfg.device, meter), kernel(eq, device, cfg.costs,
                                            cfg.channelPolicy),
      cfg(cfg)
{
    kernel.polling().setPeriod(cfg.pollPeriod);
    sched = makeScheduler(cfg, kernel);
    kernel.setScheduler(sched.get());
    if (auto *dfq = dynamic_cast<DisengagedFairQueueing *>(sched.get()))
        dfq->setVendorCounters(&meter); // only used in DeviceCounters mode
    if (cfg.collectTraces)
        trace.attach(device);
}

World::~World() = default;

Task &
World::spawn(const WorkloadSpec &spec)
{
    auto task = std::make_unique<Task>(kernel, spec.label);
    Task &ref = *task;
    taskStore.push_back(std::move(task));
    specs.push_back(spec);
    return ref;
}

void
World::start()
{
    for (std::size_t i = 0; i < taskStore.size(); ++i) {
        Task &t = *taskStore[i];
        const WorkloadSpec &spec = specs[i];
        const std::uint64_t seed =
            cfg.seed * 0x9e3779b9u + 0x1000 * (i + 1);

        Co body;
        switch (spec.kind) {
          case WorkloadSpec::Kind::Profile:
            body = syntheticAppBody(
                t, AppRegistry::byName(spec.profileName), seed);
            break;
          case WorkloadSpec::Kind::Throttle:
            body = throttleBody(t, spec.throttleParams, seed);
            break;
          case WorkloadSpec::Kind::Custom:
            body = spec.customBody(t, seed);
            break;
        }
        kernel.startTask(t, std::move(body));
    }
    kernel.start();
}

void
World::beginMeasurement()
{
    measureStart = eq.now();
    busyAtMeasureStart = meter.totalBusy();
    switchAtMeasureStart = meter.totalSwitchOverhead();
    baselineRequests.clear();
    baselineBusy.clear();
    for (auto &t : taskStore) {
        t->resetStats();
        baselineRequests.push_back(meter.requestsOf(t->pid()));
        baselineBusy.push_back(meter.busyOf(t->pid()));
    }
    trace.reset();
}

RunResult
World::results()
{
    RunResult r;
    r.elapsed = eq.now() - measureStart;
    r.deviceBusy = meter.totalBusy() - busyAtMeasureStart;
    r.switchOverhead =
        meter.totalSwitchOverhead() - switchAtMeasureStart;
    r.kills = kernel.killCount();

    for (std::size_t i = 0; i < taskStore.size(); ++i) {
        Task &t = *taskStore[i];
        TaskResult tr;
        tr.label = specs[i].label;
        tr.pid = t.pid();
        tr.meanRoundUs = t.roundTimes().mean();
        tr.rounds = t.roundTimes().count();
        tr.gpuBusy = meter.busyOf(t.pid()) -
            (i < baselineBusy.size() ? baselineBusy[i] : 0);
        tr.requests = meter.requestsOf(t.pid()) -
            (i < baselineRequests.size() ? baselineRequests[i] : 0);
        tr.killed = t.killed();
        r.tasks.push_back(std::move(tr));
    }
    return r;
}

RunResult
ExperimentRunner::run(const std::vector<WorkloadSpec> &specs) const
{
    World world(cfg);
    for (const auto &s : specs)
        world.spawn(s);
    world.start();
    world.runFor(cfg.warmup);
    world.beginMeasurement();
    world.runFor(cfg.measure);
    return world.results();
}

double
ExperimentRunner::soloRoundUs(const WorkloadSpec &spec) const
{
    ExperimentConfig solo_cfg = cfg;
    solo_cfg.sched = SchedKind::Direct;
    ExperimentRunner solo(solo_cfg);
    const RunResult r = solo.run({spec});
    return r.tasks.at(0).meanRoundUs;
}

std::vector<double>
ExperimentRunner::slowdowns(const std::vector<WorkloadSpec> &specs) const
{
    const RunResult co = run(specs);
    std::vector<double> out;
    out.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const double solo = soloRoundUs(specs[i]);
        const double corun = co.tasks.at(i).meanRoundUs;
        out.push_back(solo > 0.0 ? corun / solo : 0.0);
    }
    return out;
}

} // namespace neon
