#include "harness/serve_runner.hh"

#include <algorithm>
#include <map>
#include <utility>

#include "fleet/fleet_metrics.hh"
#include "sim/logging.hh"

namespace neon
{

namespace
{

/** Translate harness specs into serve-layer workload classes. */
std::vector<ServeClass>
classesFrom(const std::vector<ServeWorkloadSpec> &specs)
{
    std::vector<ServeClass> classes;
    classes.reserve(specs.size());
    for (const ServeWorkloadSpec &s : specs) {
        ServeClass c;
        c.label = s.workload.label;
        c.tenant = s.tenant.empty() ? s.workload.label : s.tenant;
        c.arrivals = s.arrivals;
        c.lifetime = s.lifetime;
        c.affinityKey = s.workload.affinityKey;
        c.demand = s.workload.demand;
        c.qos = s.qos;
        c.queueBudget = s.queueBudget;
        c.makeBody = [w = s.workload](Task &t, std::uint64_t seed) {
            return makeWorkloadBody(t, w, seed);
        };
        classes.push_back(std::move(c));
    }
    return classes;
}

} // namespace

std::size_t
resolveSlotsPerDevice(const ExperimentConfig &cfg)
{
    if (cfg.serve.slotsPerDevice > 0)
        return cfg.serve.slotsPerDevice;
    const std::size_t per_task =
        cfg.channelPolicy.perTaskLimit > 0 ? cfg.channelPolicy.perTaskLimit
                                           : 1;
    const std::size_t derived = cfg.device.maxChannels / per_task;
    return derived > 0 ? derived : 1;
}

const ServeSessionResult &
ServeRunResult::byLabel(const std::string &label) const
{
    for (const auto &s : sessions) {
        if (s.label == label)
            return s;
    }
    panic("no session labelled ", label, " in serve results");
}

namespace
{

/** cfg.shards with the window grid resolved (parallel runs only). */
ShardConfig
resolvedShards(const ExperimentConfig &cfg)
{
    ShardConfig s = cfg.shards;
    if (s.parallel())
        s.window = resolveShardWindow(cfg);
    return s;
}

} // namespace

ServeWorld::ServeWorld(const ExperimentConfig &cfg,
                       const std::vector<ServeWorkloadSpec> &specs)
    : shardCore(resolvedShards(cfg), eq, cfg.fleet.devices),
      fleet(shardCore, cfg.fleet, cfg.device, cfg.costs,
            cfg.channelPolicy, cfg.pollPeriod,
            [&cfg](KernelModule &kernel, const UsageMeter &meter,
                   std::size_t) {
                return makeScheduler(cfg, kernel, &meter);
            }),
      engine(eq, fleet, cfg.serve, classesFrom(specs),
             resolveSlotsPerDevice(cfg), cfg.seed),
      cfg(cfg)
{
    if (cfg.observe.enabled()) {
        observer = std::make_unique<obs::Observer>(eq, cfg.observe);
        observer->attachFleet(fleet);
        observer->attachServe(engine);
        observer->attachShards(shardCore);
        observer->start();
    }
    if (cfg.observe.analyze.enabled()) {
        analyzer = std::make_unique<obs::Analyzer>(eq, fleet, engine,
                                                   cfg.observe.analyze);
        analyzer->start();
    }
    if (cfg.fault.watchdog.enabled)
        fleet.enableWatchdog(cfg.fault.watchdog);
    if (cfg.fault.plan.any()) {
        injector = std::make_unique<FaultInjector>(eq, fleet,
                                                   cfg.fault.plan,
                                                   cfg.seed);
    }
    if (cfg.observe.audit.enabled) {
        auditor = std::make_unique<obs::Auditor>(eq, cfg.observe.audit);
        obs::registerFleetAudits(
            *auditor, fleet,
            cfg.fault.watchdog.enabled ? &cfg.fault.watchdog : nullptr);
        obs::registerServeAudits(*auditor, engine, fleet);
        auditor->start();
    }
}

ServeWorld::~ServeWorld() = default;

void
ServeWorld::start()
{
    fleet.start();
    engine.start();
    if (injector)
        injector->start();
}

ServeRunResult
ServeWorld::results()
{
    ServeRunResult r;
    r.elapsed = eq.now();
    r.arrivals = engine.arrivalsSeen();
    r.departures = engine.departures();
    r.kills = engine.killedSessions();
    r.migrations = engine.migrationCount();
    r.evictions = engine.evictedSessions();
    r.retryAttempts = engine.retryAttempts();
    r.failovers = engine.failoverCount();
    r.shedSessions = engine.shedSessions();
    r.predictiveSheds = engine.predictiveSheds();
    r.throttledSessions = engine.throttledSessions();
    r.preemptions = engine.preemptionCount();
    r.slo.control.shed = r.shedSessions;
    r.slo.control.predictiveSheds = r.predictiveSheds;
    r.slo.control.throttled = r.throttledSessions;
    r.slo.control.preemptions = r.preemptions;
    r.peakLiveSessions = engine.peakLiveSessions();
    r.peakQueueDepth = engine.admissionState().peakPending();
    r.queuedAtEnd = engine.admissionState().pendingCount();
    r.capacity = engine.admissionState().capacity();
    r.deviceBusy = fleet.perDeviceBusy();
    r.deviceBalance = fleetDeviceBalance(r.deviceBusy);
    r.vtimeSpreadMs = fleetVtimeSpreadMs(fleet);

    std::uint64_t interrupted = 0, recovered = 0;
    std::vector<double> queue_ms, sojourn_ms, turnaround_ms, rates;
    for (const SessionRecord &s : engine.sessionResults()) {
        ServeSessionResult out;
        out.label = s.label;
        out.tenant = s.tenant;
        out.cls = s.cls;
        out.arrived = s.arrived;
        out.admitted = s.admitted;
        out.departed = s.departed;
        out.killed = s.killed;
        out.shed = s.shed;
        out.shedPredicted = s.shedPredicted;
        out.throttled = s.throttled;
        out.evictions = s.evictions;
        out.failovers = s.failovers;
        out.preemptions = s.preemptions;
        if (s.evictions > 0) {
            ++interrupted;
            // Recovered = resumed after every interruption and not
            // later dropped by shedding or a protection kill.
            if (s.failovers == s.evictions && !s.shed && !s.killed)
                ++recovered;
        }
        out.devices = s.devices;
        out.migrations = s.migrations;
        out.busy = s.busy;
        out.requests = s.requests;
        out.rounds = s.rounds;
        out.meanRoundUs = s.rounds > 0
            ? s.roundUsSum / static_cast<double>(s.rounds)
            : 0.0;
        r.requests += s.requests;

        if (out.wasAdmitted()) {
            queue_ms.push_back(toMsec(s.admitted - s.arrived));

            const Tick end = out.hasDeparted() ? s.departed : eq.now();
            const Tick residency = end - s.admitted;
            if (!s.killed && residency > 0) {
                // Speed-normalized service rate: device time weighted
                // by the speed of the device that delivered it. With
                // migration an incarnation's device varies, so weight
                // by the session's busy-weighted mean speed — here
                // approximated by the last device's speed when the
                // per-incarnation split is not retained.
                double speed = 1.0;
                if (!s.devices.empty()) {
                    speed = fleet.stack(s.devices.back())
                                .device.config()
                                .speedFactor;
                    if (speed <= 0.0)
                        speed = 1.0;
                }
                rates.push_back(static_cast<double>(s.busy) * speed /
                                static_cast<double>(residency));
            }
        }
        if (out.hasDeparted()) {
            sojourn_ms.push_back(toMsec(s.departed - s.admitted));
            turnaround_ms.push_back(toMsec(s.departed - s.arrived));
        }
        r.sessions.push_back(std::move(out));
    }

    r.throughputRps = fleetThroughputRps(r.requests, r.elapsed);
    r.sessionsPerSec = r.elapsed > 0
        ? static_cast<double>(r.departures) / toSec(r.elapsed)
        : 0.0;
    r.serviceFairness = jainIndex(rates);
    r.slo.queueDelayMs = summarizeLatencies(std::move(queue_ms));
    r.slo.sojournMs = summarizeLatencies(std::move(sojourn_ms));
    r.slo.turnaroundMs = summarizeLatencies(std::move(turnaround_ms));
    r.recoveryRate = interrupted > 0
        ? static_cast<double>(recovered) / static_cast<double>(interrupted)
        : 1.0;

    AvailabilityReport &f = r.fault;
    f.watchdogHangKills = fleet.watchdogHangKills();
    f.watchdogRunawayKills = fleet.watchdogRunawayKills();
    const std::uint64_t wd_kills =
        f.watchdogHangKills + f.watchdogRunawayKills;
    const std::uint64_t all_kills = fleet.totalKills();
    f.schedulerKills = all_kills >= wd_kills ? all_kills - wd_kills : 0;
    f.evictedSessions = r.evictions;
    f.recoveredSessions = recovered;
    f.shedSessions = r.shedSessions;

    if (injector) {
        f.injectedDeaths = injector->injectedDeaths();
        f.injectedStalls = injector->injectedStalls();
        f.injectedHangs = injector->injectedHangs();
        f.skippedInjections = injector->skipped();
        f.repairs = injector->repairs();

        // Match each injected hang to the first unconsumed watchdog
        // kill of the same victim at or after the injection; the match
        // gap is the detection latency.
        const std::vector<WatchdogKill> kills = fleet.watchdogKillLog();
        std::vector<char> used(kills.size(), 0);
        double mttd_sum = 0.0;
        for (HangRecord &h : injector->hangs()) {
            for (std::size_t i = 0; i < kills.size(); ++i) {
                if (used[i] || kills[i].device != h.device ||
                    kills[i].pid != h.pid || kills[i].at < h.at)
                    continue;
                used[i] = 1;
                h.detected = true;
                ++f.detectedHangs;
                mttd_sum += toMsec(kills[i].at - h.at);
                break;
            }
        }
        if (f.detectedHangs > 0)
            f.mttdMs = mttd_sum / static_cast<double>(f.detectedHangs);

        // Downtime: completed outages by their repair, open ones
        // clamped at the horizon.
        Tick down_total = 0;
        double mttr_sum = 0.0;
        std::uint64_t completed_outages = 0;
        for (const OutageRecord &o : injector->outages()) {
            const Tick up = o.upAt >= 0 ? o.upAt : eq.now();
            down_total += up - o.downAt;
            if (o.upAt >= 0) {
                mttr_sum += toMsec(o.upAt - o.downAt);
                ++completed_outages;
            }
        }
        if (completed_outages > 0)
            f.mttrMs =
                mttr_sum / static_cast<double>(completed_outages);
        const double device_time = static_cast<double>(eq.now()) *
            static_cast<double>(fleet.deviceCount());
        if (device_time > 0.0) {
            f.availability =
                1.0 - static_cast<double>(down_total) / device_time;
        }
    }

    // Goodput against the configured SLO targets (queue + sojourn
    // here; the slowdown target needs baselines and is refined in
    // ServeRunner). The queue budget is per class when set, so the
    // bound an interactive session is judged by is the one the shedder
    // used at its front door.
    const auto queueBudgetOf = [this](std::size_t cls) {
        const Tick own = engine.workloadClasses()[cls].queueBudget;
        return own > 0 ? own : cfg.serve.slo.queueTarget;
    };
    const auto meetsQueueSojourn = [&](const ServeSessionResult &s) {
        if (cfg.serve.slo.sojournTarget > 0 &&
            s.departed - s.admitted > cfg.serve.slo.sojournTarget)
            return false;
        const Tick qb = queueBudgetOf(s.cls);
        return qb <= 0 || s.admitted - s.arrived <= qb;
    };
    GoodputReport &gp = r.slo.goodput;
    gp.targeted = cfg.serve.slo.any();
    std::vector<GoodputReport> byClass(
        engine.workloadClasses().size());
    for (const ServeSessionResult &s : r.sessions) {
        if (!s.hasDeparted() || s.killed)
            continue;
        ++gp.eligible;
        ++byClass[s.cls].eligible;
        if (meetsQueueSojourn(s)) {
            ++gp.met;
            ++byClass[s.cls].met;
        }
    }
    gp.fraction = gp.eligible > 0
        ? static_cast<double>(gp.met) / static_cast<double>(gp.eligible)
        : 1.0;
    for (std::size_t c = 0; c < byClass.size(); ++c) {
        GoodputReport &g = byClass[c];
        g.targeted = gp.targeted || queueBudgetOf(c) > 0;
        g.fraction = g.eligible > 0
            ? static_cast<double>(g.met) / static_cast<double>(g.eligible)
            : 1.0;
        r.slo.goodputByClass.push_back(
            {engine.workloadClasses()[c].label, g});
    }

    if (analyzer) {
        analyzer->finalize();
        r.sessionPhases = analyzer->sessionPhases();
        if (analyzer->config().phases)
            r.phases = analyzer->phaseReport();
        r.timeline = analyzer->timeline();
    }
    if (auditor) {
        auditor->finalize();
        r.audit = auditor->report();
    }
    if (observer)
        r.traceDrops = observer->droppedRecords();
    return r;
}

ServeRunResult
ServeRunner::run(const std::vector<ServeWorkloadSpec> &specs,
                 bool with_slowdowns) const
{
    ServeWorld world(cfg, specs);
    world.start();
    world.runFor(cfg.measure);
    ServeRunResult r = world.results();
    if (world.observer) {
        world.observer->writeOutputs();
        r.observeSummary = world.observer->summary();
    }
    if (world.analyzer)
        world.analyzer->writeOutputs();

    if (with_slowdowns) {
        // Per-class isolated baseline: the workload alone on one
        // template-speed device under direct access (the paper's
        // normalization basis), reused for every session of the class.
        ExperimentConfig solo_cfg = cfg;
        solo_cfg.sched = SchedKind::Direct;
        solo_cfg.fleet = FleetConfig{};
        solo_cfg.warmup = msec(100);
        solo_cfg.measure = msec(500);
        solo_cfg.observe = {}; // baselines never trace

        ExperimentRunner solo(solo_cfg);

        std::map<std::size_t, double> solo_round;
        std::vector<double> slowdowns;
        for (const ServeSessionResult &s : r.sessions) {
            if (!s.hasDeparted() || s.killed || s.rounds == 0)
                continue;
            auto it = solo_round.find(s.cls);
            if (it == solo_round.end()) {
                it = solo_round
                         .emplace(s.cls,
                                  solo.soloRoundUs(specs[s.cls].workload))
                         .first;
            }
            if (it->second > 0.0)
                slowdowns.push_back(s.meanRoundUs / it->second);
        }
        r.slo.slowdown = summarizeLatencies(std::move(slowdowns));

        // With baselines in hand, fold the slowdown target into
        // goodput: a clean departure now has to meet both bounds.
        if (cfg.serve.slo.slowdownTarget > 0.0) {
            GoodputReport &gp = r.slo.goodput;
            gp.met = 0;
            for (const ServeSessionResult &s : r.sessions) {
                if (!s.hasDeparted() || s.killed)
                    continue;
                bool met = cfg.serve.slo.sojournTarget <= 0 ||
                    s.departed - s.admitted <= cfg.serve.slo.sojournTarget;
                const Tick qb = specs[s.cls].queueBudget > 0
                    ? specs[s.cls].queueBudget
                    : cfg.serve.slo.queueTarget;
                if (met && qb > 0 && s.admitted - s.arrived > qb)
                    met = false;
                const auto it = solo_round.find(s.cls);
                if (met && s.rounds > 0 && it != solo_round.end() &&
                    it->second > 0.0 &&
                    s.meanRoundUs / it->second >
                        cfg.serve.slo.slowdownTarget)
                    met = false;
                if (met)
                    ++gp.met;
            }
            gp.fraction = gp.eligible > 0
                ? static_cast<double>(gp.met) /
                    static_cast<double>(gp.eligible)
                : 1.0;
        }
    }
    return r;
}

} // namespace neon
