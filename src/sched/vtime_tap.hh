/**
 * @file
 * Read-only virtual-time tap exported by fair-queueing schedulers.
 *
 * Cross-device aggregation (the serve layer's GlobalVirtualClock,
 * fleet-level fairness metrics) needs each device's notion of system
 * virtual time and per-task progress without caring which concrete
 * fair-queueing policy runs there. Policies that maintain virtual
 * times implement this interface alongside Scheduler; consumers
 * discover it with a dynamic_cast at wiring time.
 *
 * The tap is strictly observational: it exposes estimates the policy
 * already maintains (the paper's point is that the OS has no ground
 * truth), and consumers must not feed device-meter data back through
 * it.
 *
 * Sharded runs: taps are read only from the coordinator — the global
 * clock's tick is a control-queue event, executed at a window barrier
 * with every shard worker parked — so the snapshot is a consistent
 * fleet-wide view at the barrier time and never races shard execution.
 */

#ifndef NEON_SCHED_VTIME_TAP_HH
#define NEON_SCHED_VTIME_TAP_HH

#include "sim/types.hh"

namespace neon
{

/** Virtual-time observability for fair-queueing policies. */
class VirtualTimeTap
{
  public:
    virtual ~VirtualTimeTap() = default;

    /** The policy's system virtual time (device-time units). */
    virtual Tick tapSystemVtime() const = 0;

    /**
     * Task @p pid's virtual time — its attributed service level. Tasks
     * the policy has not seen report 0 (maximally lagging).
     */
    virtual Tick tapTaskVtime(int pid) const = 0;
};

} // namespace neon

#endif // NEON_SCHED_VTIME_TAP_HH
