/**
 * @file
 * Token-based timeslice scheduling with overuse control (paper 3.1).
 *
 * A token circulates among tasks owning active channels; only the
 * holder may submit. In the engaged variant every submission is
 * intercepted (fault + handler cost on each request). At the end of a
 * slice the scheduler waits for the holder's outstanding requests to
 * drain (detected through reference-counter polling, so at polling
 * granularity), charges any overrun to the holder's overuse ledger, and
 * skips future turns when the accrued overuse exceeds a full slice.
 * A drain that exceeds the kill threshold marks the holder as
 * malicious/buggy and the task is killed (the device aborts its
 * channels and the driver exit protocol reclaims resources).
 */

#ifndef NEON_SCHED_TIMESLICE_HH
#define NEON_SCHED_TIMESLICE_HH

#include <map>
#include <vector>

#include "os/kernel.hh"
#include "os/scheduler.hh"

namespace neon
{

/** Tunables shared by both timeslice variants. */
struct TimesliceConfig
{
    /** Timeslice length (paper: 30 ms). */
    Tick slice = msec(30);

    /**
     * Maximum time to wait for the holder to drain past the slice edge
     * before declaring the task aberrant and killing it.
     */
    Tick killThreshold = msec(200);
};

/**
 * Engaged timeslice: full per-request interception.
 */
class TimesliceScheduler : public Scheduler
{
  public:
    TimesliceScheduler(KernelModule &kernel,
                       const TimesliceConfig &cfg = TimesliceConfig());

    std::string name() const override { return "timeslice"; }

    void onChannelActive(Channel &c) override;
    void onTaskExited(Task &t) override;
    FaultDecision onSubmitFault(Task &t, Channel &c,
                                const GpuRequest &req) override;
    void onPoll(Tick now) override;

    /** Accrued overuse of a task (tests). */
    Tick overuseOf(int pid) const;

    /** Current token holder (tests), nullptr if none. */
    const Task *holder() const { return tokenHolder; }

    /** Number of turn-skips applied so far (tests). */
    std::uint64_t skips() const { return nSkips; }

  protected:
    /** Hook: the token was granted to @p t (disengaged variant reacts). */
    virtual void onGrant(Task &t) { (void)t; }

    /** Hook: the token is being revoked from @p t at slice end. */
    virtual void onRevoke(Task &t) { (void)t; }

    /**
     * Extra latency between slice expiry and the first moment drain
     * completion can be observed (re-engagement status update for the
     * disengaged variant; zero when engaged, which tracks submissions
     * as they happen).
     */
    virtual Tick statusUpdateDelay() const { return 0; }

    /** Grant the token to @p t and start its slice timer. */
    void grant(Task &t);

    /** Slice timer expiry: revoke and begin the drain. */
    void sliceExpired();

    /** Check whether the previous holder's channels have drained. */
    void checkDrain(Tick now);

    /** All submitted requests on @p t's channels completed? */
    bool drainedOut(const Task &t) const;

    /** Advance the token to the next eligible task. */
    void passToken();

    TimesliceConfig cfg;
    Task *tokenHolder = nullptr;
    int lastHolderPid = 0;
    Tick sliceEnd = 0;
    EventId sliceTimer = invalidEventId;

    /** Drain state: set while waiting for the ex-holder's requests. */
    Task *drainingTask = nullptr;
    Tick drainBegin = 0;
    Tick drainReadyAt = 0;

    std::map<int, Tick> overuse;
    std::uint64_t nSkips = 0;
};

} // namespace neon

#endif // NEON_SCHED_TIMESLICE_HH
