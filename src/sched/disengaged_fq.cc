#include "sched/disengaged_fq.hh"

#include <algorithm>
#include <limits>

#include "obs/trace.hh"
#include "sim/logging.hh"

namespace neon
{

DisengagedFairQueueing::DisengagedFairQueueing(KernelModule &kernel,
                                               const DfqConfig &cfg)
    : Scheduler(kernel), cfg(cfg)
{
}

Tick
DisengagedFairQueueing::vtimeOf(int pid) const
{
    auto it = taskStates.find(pid);
    return it == taskStates.end() ? 0 : it->second.vtime;
}

Tick
DisengagedFairQueueing::estSizeOf(int pid) const
{
    auto it = taskStates.find(pid);
    return it == taskStates.end() ? 0 : it->second.estSize;
}

double
DisengagedFairQueueing::dutyOf(int pid) const
{
    auto it = taskStates.find(pid);
    return it == taskStates.end() ? 1.0 : it->second.duty;
}

bool
DisengagedFairQueueing::isDenied(int pid) const
{
    auto it = taskStates.find(pid);
    return it != taskStates.end() && it->second.denied;
}

void
DisengagedFairQueueing::onChannelActive(Channel &c)
{
    lastSeenRef[c.id()] = kernel.readCompletedRef(c);

    const int pid = c.context().taskId();
    TaskState &ts = stateOf(pid);

    // A task (re)joining the GPU population may not claim credit from
    // its absence: bring it forward to the system virtual time.
    ts.vtime = std::max(ts.vtime, sysVtime);

    switch (curPhase) {
      case Phase::Idle:
        applyAccess(*kernel.findTask(pid), false);
        enterFreeRun(cfg.initialFreeRun);
        break;
      case Phase::FreeRun:
        if (!ts.denied)
            kernel.unprotectChannel(c);
        break;
      case Phase::Draining:
      case Phase::Sampling:
        // Stays protected; the owner parks on first use until the next
        // decision point.
        break;
    }
}

void
DisengagedFairQueueing::onChannelClosed(Channel &c)
{
    lastSeenRef.erase(c.id());
}

void
DisengagedFairQueueing::onTaskExited(Task &t)
{
    taskStates.erase(t.pid());
    std::erase(samplingQueue, t.pid());
    if (samplingPid == t.pid())
        endSample();
    if (samplingDrainPid == t.pid()) {
        // Its channels are gone; nothing left to drain.
        samplingDrainPid = -1;
        kernel.eventQueue().scheduleIn(0, [this] {
            if (curPhase == Phase::Sampling && samplingPid < 0 &&
                samplingDrainPid < 0) {
                sampleNext();
            }
        });
    }
}

FaultDecision
DisengagedFairQueueing::onSubmitFault(Task &t, Channel &c,
                                      const GpuRequest &req)
{
    switch (curPhase) {
      case Phase::Idle:
        return FaultDecision::Allow;
      case Phase::FreeRun:
        return stateOf(t.pid()).denied ? FaultDecision::Park
                                       : FaultDecision::Allow;
      case Phase::Draining:
        // Blocking new requests while draining is free: the device is
        // known to be busy.
        return FaultDecision::Park;
      case Phase::Sampling:
        if (t.pid() == samplingPid) {
            // Active monitoring: note the outstanding work for the
            // duty-cycle integration.
            TaskState &ts = stateOf(t.pid());
            ts.chanRefs[c.id()].first =
                std::max(ts.chanRefs[c.id()].first, req.ref);
            if (!ts.busyNow) {
                ts.busyNow = true;
                ts.busySince = kernel.eventQueue().now();
            }
            return FaultDecision::Allow;
        }
        return FaultDecision::Park;
    }
    return FaultDecision::Allow;
}

void
DisengagedFairQueueing::onPoll(Tick now)
{
    pollDeltas();

    switch (curPhase) {
      case Phase::Idle:
      case Phase::FreeRun:
        break;
      case Phase::Sampling:
        if (samplingDrainPid >= 0) {
            Task *t = kernel.findTask(samplingDrainPid);
            if (!t || drainedOut(*t)) {
                samplingDrainPid = -1;
                sampleNext();
            } else if (now - drainStart > cfg.killThreshold) {
                Task *victim = t;
                samplingDrainPid = -1;
                kernel.killTask(
                    *victim, "request exceeded the run-time limit");
                sampleNext();
            }
        }
        break;
      case Phase::Draining:
        if (now >= drainReadyAt && allDrained()) {
            drainEnd = now;
            beginSampling();
        } else if (now - drainStart > cfg.killThreshold) {
            killUndrained(now);
        }
        break;
    }
}

void
DisengagedFairQueueing::pollDeltas()
{
    std::vector<int> advanced;
    for (Channel *c : kernel.activeChannels()) {
        const std::uint64_t cur = kernel.readCompletedRef(*c);
        auto it = lastSeenRef.find(c->id());
        if (it == lastSeenRef.end()) {
            lastSeenRef[c->id()] = cur;
            continue;
        }
        if (cur > it->second) {
            const int pid = c->context().taskId();
            stateOf(pid).intervalCompletions += cur - it->second;
            it->second = cur;
            if (std::find(advanced.begin(), advanced.end(), pid) ==
                advanced.end()) {
                advanced.push_back(pid);
            }
        }
    }
    // Activity bits: one tick per task per poll in which any of its
    // reference counters moved. This is the busy-time signal a kernel
    // can legitimately extract at polling granularity.
    for (int pid : advanced)
        ++stateOf(pid).activePolls;
}

bool
DisengagedFairQueueing::drainedOut(const Task &t) const
{
    for (const Channel *c : t.channels()) {
        if (kernel.readCompletedRef(*c) < kernel.readLastSubmittedRef(*c))
            return false;
    }
    return true;
}

bool
DisengagedFairQueueing::allDrained() const
{
    for (const Channel *c : kernel.activeChannels()) {
        if (kernel.readCompletedRef(*c) < kernel.readLastSubmittedRef(*c))
            return false;
    }
    return true;
}

void
DisengagedFairQueueing::killUndrained(Tick)
{
    // With multiple tasks on the device, every blocked task's channels
    // look "undrained"; the Section 6.2 vendor query identifies the
    // context actually hogging the engine.
    Task *offender = kernel.currentlyRunningTask();
    if (offender) {
        kernel.killTask(*offender,
                        "request exceeded the run-time limit");
        drainStart = kernel.eventQueue().now(); // restart the clock
        return;
    }

    // Engine idle yet refs unsettled: reclaim whatever is left over.
    std::vector<Task *> victims;
    for (Channel *c : kernel.activeChannels()) {
        if (kernel.readCompletedRef(*c) < kernel.readLastSubmittedRef(*c)) {
            Task *t = kernel.findTask(c->context().taskId());
            if (t && std::find(victims.begin(), victims.end(), t) ==
                victims.end()) {
                victims.push_back(t);
            }
        }
    }
    for (Task *t : victims)
        kernel.killTask(*t, "request exceeded the run-time limit");
}

void
DisengagedFairQueueing::enterFreeRun(Tick length)
{
    curPhase = Phase::FreeRun;
    freeRunLen = length;
    intervalStart = kernel.eventQueue().now();
    NEON_TRACE(obs::TraceCategory::Sched, obs::TraceKind::Begin,
               "dfq.free_run", obs::TraceIds{kernel.deviceIndex(), -1, -1},
               length, nEpisodes);

    for (auto &kv : taskStates) {
        kv.second.intervalCompletions = 0;
        kv.second.activePolls = 0;
    }

    // Resynchronize the counter snapshots: completions observed during
    // the episode (already accounted by the sampling runs) must not
    // leak into the new interval and make a denied task look active.
    for (Channel *c : kernel.activeChannels())
        lastSeenRef[c->id()] = kernel.readCompletedRef(*c);

    if (episodeTimer != invalidEventId)
        kernel.eventQueue().cancel(episodeTimer);
    // Per-episode timer: rescheduled for the lifetime of the run; the
    // this-only capture stays inside the callback's inline storage.
    auto begin = [this] { episodeBegin(); };
    static_assert(EventCallback::fitsInline<decltype(begin)>);
    episodeTimer =
        kernel.eventQueue().scheduleIn(length, std::move(begin));
}

void
DisengagedFairQueueing::episodeBegin()
{
    episodeTimer = invalidEventId;
    NEON_TRACE(obs::TraceCategory::Sched, obs::TraceKind::End,
               "dfq.free_run", obs::TraceIds{kernel.deviceIndex(), -1, -1},
               0, 0);
    if (kernel.activeChannels().empty()) {
        curPhase = Phase::Idle;
        return;
    }

    ++nEpisodes;
    curPhase = Phase::Draining;
    episodeStart = drainStart = kernel.eventQueue().now();
    NEON_TRACE(obs::TraceCategory::Sched, obs::TraceKind::Begin,
               "dfq.engage", obs::TraceIds{kernel.deviceIndex(), -1, -1},
               kernel.activeChannels().size(), nEpisodes);

    // Barrier: every channel register is re-protected, then the status
    // update scan recovers last-submitted references so drain progress
    // is observable.
    kernel.protectAll();
    const std::size_t n = kernel.activeChannels().size();
    drainReadyAt = drainStart + kernel.statusUpdateCost(n) +
        kernel.protectionCost(n);
}

void
DisengagedFairQueueing::beginSampling()
{
    curPhase = Phase::Sampling;
    samplingQueue.clear();
    sampledThisEpisode = 0;
    NEON_TRACE(obs::TraceCategory::Sched, obs::TraceKind::Instant,
               "dfq.begin_sampling",
               obs::TraceIds{kernel.deviceIndex(), -1, -1},
               drainEnd - drainStart, 0);

    for (Task *t : kernel.gpuTasks()) {
        TaskState &ts = stateOf(t->pid());
        const bool tried = ts.intervalCompletions > 0 ||
            kernel.hasParked(*t);
        const bool unknown = ts.estSize == 0;
        // Idle tasks are not worth a sampling slot (paper 3.3) unless
        // we have never observed them at all.
        if ((tried && !ts.denied) || (tried && unknown) || unknown)
            samplingQueue.push_back(t->pid());
    }

    sampleNext();
}

void
DisengagedFairQueueing::sampleNext()
{
    samplingPid = -1;

    while (!samplingQueue.empty()) {
        const int pid = samplingQueue.front();
        samplingQueue.erase(samplingQueue.begin());
        Task *t = kernel.findTask(pid);
        if (!t || !t->alive() || t->channels().empty())
            continue;

        samplingPid = pid;
        ++sampledThisEpisode;
        NEON_TRACE(obs::TraceCategory::Sched, obs::TraceKind::Begin,
                   "dfq.sample",
                   obs::TraceIds{kernel.deviceIndex(), pid, -1}, 0, 0);
        TaskState &ts = stateOf(pid);
        ts.sampleCount = 0;
        ts.sampleServiceSum = 0;
        ts.sampleStart = kernel.eventQueue().now();
        ts.busyAccum = 0;
        ts.busyNow = false;
        ts.chanRefs.clear();
        ts.parkedPending = kernel.hasParked(*t);
        if (ts.parkedPending) {
            ts.busyNow = true;
            ts.busySince = ts.sampleStart;
        }
        samplingTarget = t->channels().size() > 1
            ? cfg.samplingRequestsMulti : cfg.samplingRequests;

        for (Channel *c : t->channels()) {
            const int cid = c->id();
            c->kernelCompletionHook =
                [this, pid, cid](std::uint64_t ref, Tick when,
                                 Tick service) {
                    onSampleCompletion(pid, cid, ref, when, service);
                };
        }

        auto deadline = [this] { endSample(); };
        static_assert(EventCallback::fitsInline<decltype(deadline)>);
        samplingDeadline = kernel.eventQueue().scheduleIn(
            cfg.samplingMax, std::move(deadline));

        kernel.releaseParked(*t);
        return;
    }

    // Queue exhausted: make the scheduling decision.
    decide();
}

bool
DisengagedFairQueueing::samplePendingWork(const TaskState &ts) const
{
    if (ts.parkedPending)
        return true;
    for (const auto &kv : ts.chanRefs) {
        if (kv.second.first > kv.second.second)
            return true;
    }
    return false;
}

void
DisengagedFairQueueing::onSampleCompletion(int pid, int channel_id,
                                           std::uint64_t ref, Tick when,
                                           Tick service)
{
    if (pid != samplingPid)
        return;

    TaskState &ts = stateOf(pid);
    auto &refs = ts.chanRefs[channel_id];
    refs.second = std::max(refs.second, ref);
    ts.parkedPending = false;

    // Trivial state-change commands are excluded from the size
    // estimate (but still count toward usage and busy time).
    if (service >= cfg.samplingSizeFloor) {
        ++ts.sampleCount;
        ts.sampleServiceSum += service;
    }

    // Engaged observation: account the sampled usage directly.
    ts.vtime += service;

    // Close the busy window when the task runs out of outstanding work.
    if (ts.busyNow && !samplePendingWork(ts)) {
        ts.busyAccum += when - ts.busySince;
        ts.busyNow = false;
    }

    if (ts.sampleCount >=
        static_cast<std::uint64_t>(samplingTarget)) {
        endSample();
    }
}

void
DisengagedFairQueueing::endSample()
{
    if (samplingPid < 0)
        return;

    if (samplingDeadline != invalidEventId) {
        kernel.eventQueue().cancel(samplingDeadline);
        samplingDeadline = invalidEventId;
    }

    Task *t = kernel.findTask(samplingPid);
    TaskState &ts = stateOf(samplingPid);
    if (t) {
        for (Channel *c : t->channels())
            c->kernelCompletionHook = nullptr;
    }
    if (ts.sampleCount > 0) {
        ts.estSize =
            ts.sampleServiceSum / static_cast<Tick>(ts.sampleCount);
    } else if (ts.busyAccum > 0 || ts.busyNow) {
        // Nothing completed inside the window: the still-running
        // request's elapsed time is a lower bound on the task's
        // request size (batching hogs larger than the window).
        const Tick inflight = ts.busyNow
            ? kernel.eventQueue().now() - ts.busySince + ts.busyAccum
            : ts.busyAccum;
        ts.estSize = std::max(ts.estSize, inflight);
    }

    // Duty cycle over the sampling window: the fraction of it during
    // which the task had work outstanding on the device.
    const Tick now_t = kernel.eventQueue().now();
    const Tick window = now_t - ts.sampleStart;
    if (ts.busyNow) {
        ts.busyAccum += now_t - ts.busySince;
        ts.busyNow = false;
    }
    if (window > 0) {
        const double d = static_cast<double>(ts.busyAccum) /
            static_cast<double>(window);
        ts.duty = std::min(1.0, std::max(0.0, d));
    }

    NEON_TRACE(obs::TraceCategory::Sched, obs::TraceKind::End,
               "dfq.sample",
               obs::TraceIds{kernel.deviceIndex(), samplingPid, -1},
               ts.estSize, static_cast<std::int64_t>(ts.duty * 1000.0));

    const int drained_pid = samplingPid;
    samplingPid = -1;

    // Exclusivity for the next sampling run requires the previous
    // task's in-flight tail to drain first; progress resumes from the
    // polling service (drain granularity, as at the barrier).
    samplingDrainPid = drained_pid;
    drainStart = kernel.eventQueue().now();
    kernel.eventQueue().scheduleIn(0, [this] {
        if (curPhase != Phase::Sampling || samplingPid >= 0 ||
            samplingDrainPid < 0) {
            return;
        }
        Task *t = kernel.findTask(samplingDrainPid);
        if (!t || drainedOut(*t)) {
            samplingDrainPid = -1;
            sampleNext();
        }
    });
}

void
DisengagedFairQueueing::decide()
{
    const Tick now = kernel.eventQueue().now();
    const Tick interval = std::max<Tick>(1, drainEnd - intervalStart);

    // 1. Advance active tasks' virtual times by their (estimated) use
    //    of the preceding free-run interval.
    std::vector<int> active;
    Tick est_sum = 0;
    for (auto &kv : taskStates) {
        if (kv.second.intervalCompletions > 0) {
            active.push_back(kv.first);
            est_sum += std::max<Tick>(kv.second.estSize, usec(1));
        }
    }

    for (int pid : active) {
        TaskState &ts = stateOf(pid);
        Tick usage = 0;
        const Tick est = std::max<Tick>(ts.estSize, usec(1));
        switch (cfg.attribution) {
          case DfqConfig::Attribution::ShareProportional: {
            // The paper's heuristic: round-robin cycling gives each
            // pending queue a share proportional to its mean request
            // size — bounded by the task's own sampled duty cycle, so
            // mostly idle tasks are not charged for the whole interval.
            const double share = static_cast<double>(est) /
                static_cast<double>(est_sum);
            const double frac = std::min(ts.duty, share);
            usage = static_cast<Tick>(
                static_cast<double>(interval) * frac);
            break;
          }
          case DfqConfig::Attribution::CountTimesSize:
            usage = std::min<Tick>(
                interval,
                static_cast<Tick>(ts.intervalCompletions) * est);
            break;
          case DfqConfig::Attribution::DeviceCounters: {
            if (!vendorCounters) {
                panic("DeviceCounters attribution requires "
                      "setVendorCounters()");
            }
            const Tick busy = vendorCounters->busyOf(pid);
            usage = std::max<Tick>(0, busy - vendorBusySeen[pid]);
            vendorBusySeen[pid] = busy;
            // The engaged sampling usage was already accounted; avoid
            // double-charging it.
            usage = std::max<Tick>(0, usage - ts.sampleServiceSum);
            break;
          }
        }
        ts.vtime += usage;
    }

    // 2. System virtual time: the oldest virtual time among tasks that
    //    are still contending (active or blocked-on-us).
    Tick oldest = std::numeric_limits<Tick>::max();
    for (Task *t : kernel.gpuTasks()) {
        TaskState &ts = stateOf(t->pid());
        const bool contending = ts.intervalCompletions > 0 ||
            kernel.hasParked(*t) || ts.denied;
        if (contending)
            oldest = std::min(oldest, ts.vtime);
    }
    if (oldest != std::numeric_limits<Tick>::max())
        sysVtime = std::max(sysVtime, oldest);

    // 3. Inactive tasks may not hoard unused resources.
    for (Task *t : kernel.gpuTasks()) {
        TaskState &ts = stateOf(t->pid());
        if (ts.intervalCompletions == 0 && !kernel.hasParked(*t) &&
            !ts.denied) {
            ts.vtime = std::max(ts.vtime, sysVtime);
        }
    }

    // 4. Size the next free run: several times the engagement budget
    //    (paper: 5 x 5 ms per contending task -> 25 ms standalone,
    //    50 ms for a pair), then deny tasks so far ahead that even
    //    exclusive use by the slowest cannot overtake them within it.
    //    Sizing by the contender population (rather than the subset
    //    that happened to be sampled) keeps the denial threshold stable
    //    across episodes, which the equalization dynamics need.
    (void)now;
    int contenders = 0;
    for (Task *t : kernel.gpuTasks()) {
        TaskState &ts = stateOf(t->pid());
        if (ts.intervalCompletions > 0 || kernel.hasParked(*t) ||
            ts.denied) {
            ++contenders;
        }
    }
    freeRunLen = std::max<Tick>(
        cfg.minFreeRun,
        static_cast<Tick>(
            cfg.freeRunMultiplier *
            static_cast<double>(cfg.samplingMax) *
            static_cast<double>(std::max(1, contenders))));

    for (Task *t : kernel.gpuTasks()) {
        TaskState &ts = stateOf(t->pid());
        const bool deny = ts.vtime >= sysVtime + freeRunLen;
        ts.denied = deny;
        NEON_TRACE(obs::TraceCategory::Sched, obs::TraceKind::Instant,
                   "dfq.vtime",
                   obs::TraceIds{kernel.deviceIndex(), t->pid(), -1},
                   ts.vtime, deny ? 1 : 0);
        applyAccess(*t, deny);
    }

    NEON_TRACE(obs::TraceCategory::Sched, obs::TraceKind::End,
               "dfq.engage", obs::TraceIds{kernel.deviceIndex(), -1, -1},
               sysVtime, contenders);

    enterFreeRun(freeRunLen);
}

void
DisengagedFairQueueing::applyAccess(Task &t, bool denied)
{
    if (denied) {
        for (Channel *c : t.channels())
            kernel.protectChannel(*c);
    } else {
        for (Channel *c : t.channels())
            kernel.unprotectChannel(*c);
        kernel.releaseParked(t);
    }
}

} // namespace neon
