/**
 * @file
 * Disengaged Fair Queueing (paper 3.3).
 *
 * The scheduler alternates long disengaged free-run periods (multiple
 * tasks enjoy direct device access simultaneously) with short
 * engagement episodes:
 *
 *   barrier -> drain -> per-task sampling -> virtual-time update and
 *   access-denial decision -> next free run.
 *
 * During a free run the kernel only polls reference counters (activity
 * observation). At each engagement it samples every recently active
 * task in turn — exclusive access, full interception — to estimate its
 * mean request size, then attributes the preceding interval's device
 * time to active tasks in proportion to those estimates (the paper's
 * heuristic; see DfqConfig::Attribution for the vendor-statistics
 * alternative). Tasks that have run ahead of the system virtual time by
 * more than the next interval are denied access for that interval.
 */

#ifndef NEON_SCHED_DISENGAGED_FQ_HH
#define NEON_SCHED_DISENGAGED_FQ_HH

#include <cstdint>
#include <map>
#include <vector>

#include "gpu/usage_meter.hh"
#include "os/kernel.hh"
#include "os/scheduler.hh"
#include "sched/vtime_tap.hh"

namespace neon
{

/** Tunables for Disengaged Fair Queueing. */
struct DfqConfig
{
    /** Per-task sampling budget: time cap... */
    Tick samplingMax = msec(5);

    /** ...or request-count cap, whichever hits first (paper: 32). */
    int samplingRequests = 32;

    /** Count cap for tasks with multiple channels (paper: 96). */
    int samplingRequestsMulti = 96;

    /**
     * Completions faster than this are classified as trivial
     * state-change commands (NEON parses the command stream during
     * engagement anyway) and excluded from request-size estimation.
     */
    Tick samplingSizeFloor = usec(3);

    /** Free run lasts this many times the engagement episode. */
    double freeRunMultiplier = 5.0;

    /** Lower bound on the free-run period. */
    Tick minFreeRun = msec(5);

    /** First free run after the initial channel activation. */
    Tick initialFreeRun = msec(25);

    /** Drain wait beyond which the offending task is killed. */
    Tick killThreshold = msec(200);

    /**
     * How free-run device time is attributed to active tasks.
     *
     * ShareProportional is the paper's software estimate (share of the
     * interval proportional to sampled mean request size, capped by the
     * sampled duty cycle) — subject to the glxgears/multi-channel
     * anomalies. CountTimesSize multiplies reference-counter deltas by
     * the sampled mean size; still a software estimate, with its own
     * artifact (trivial commands inflate the counts). DeviceCounters
     * models the Section 6.1 world where the vendor exports per-context
     * busy time; it requires setVendorCounters().
     */
    enum class Attribution
    {
        ShareProportional,
        CountTimesSize,
        DeviceCounters,
    };
    Attribution attribution = Attribution::ShareProportional;
};

/** The disengaged fair-queueing policy. */
class DisengagedFairQueueing : public Scheduler, public VirtualTimeTap
{
  public:
    enum class Phase { Idle, FreeRun, Draining, Sampling };

    DisengagedFairQueueing(KernelModule &kernel,
                           const DfqConfig &cfg = DfqConfig());

    std::string name() const override { return "disengaged-fq"; }

    void onChannelActive(Channel &c) override;
    void onChannelClosed(Channel &c) override;
    void onTaskExited(Task &t) override;
    FaultDecision onSubmitFault(Task &t, Channel &c,
                                const GpuRequest &req) override;
    void onPoll(Tick now) override;

    // Introspection (tests/benches).
    Phase phase() const { return curPhase; }
    Tick vtimeOf(int pid) const;
    Tick systemVtime() const { return sysVtime; }

    // VirtualTimeTap (cross-device aggregation).
    Tick tapSystemVtime() const override { return sysVtime; }
    Tick tapTaskVtime(int pid) const override { return vtimeOf(pid); }
    bool isDenied(int pid) const;
    Tick currentFreeRun() const { return freeRunLen; }
    Tick estSizeOf(int pid) const;
    double dutyOf(int pid) const;

    /**
     * Provide the vendor-exported per-context busy counters needed by
     * Attribution::DeviceCounters (the Section 6.1 hardware-assisted
     * mode). Never consulted under the software-only attributions.
     */
    void setVendorCounters(const UsageMeter *m) { vendorCounters = m; }
    std::uint64_t episodes() const { return nEpisodes; }

  private:
    struct TaskState
    {
        Tick vtime = 0;
        Tick estSize = 0; ///< sampled mean request size; 0 = unknown
        double duty = 1.0; ///< sampled busy fraction of the task
        std::uint64_t intervalCompletions = 0;
        std::uint64_t activePolls = 0; ///< polls with counter movement
        bool denied = false;

        // Sampling scratch. Busy time is integrated over the window by
        // tracking outstanding work per channel (submission faults give
        // the submitted refs, the completion hook the completed ones).
        std::uint64_t sampleCount = 0;
        Tick sampleServiceSum = 0;
        Tick sampleStart = 0;
        Tick busyAccum = 0;
        Tick busySince = 0;
        bool busyNow = false;
        bool parkedPending = false;
        std::map<int, std::pair<std::uint64_t, std::uint64_t>> chanRefs;
    };

    TaskState &stateOf(int pid) { return taskStates[pid]; }

    void enterFreeRun(Tick length);
    void episodeBegin();
    void pollDeltas();
    bool drainedOut(const Task &t) const;
    bool allDrained() const;
    void killUndrained(Tick now);
    void beginSampling();
    void sampleNext();
    void onSampleCompletion(int pid, int channel_id, std::uint64_t ref,
                            Tick when, Tick service);
    void endSample();
    bool samplePendingWork(const TaskState &ts) const;
    void decide();
    void applyAccess(Task &t, bool denied);

    DfqConfig cfg;
    Phase curPhase = Phase::Idle;
    const UsageMeter *vendorCounters = nullptr;
    std::map<int, Tick> vendorBusySeen; // by pid

    std::map<int, TaskState> taskStates;      // by pid
    std::map<int, std::uint64_t> lastSeenRef; // by channel id

    Tick sysVtime = 0;
    Tick freeRunLen = 0;
    Tick intervalStart = 0; ///< start of the current free run
    Tick drainStart = 0;
    Tick drainReadyAt = 0;
    Tick drainEnd = 0;
    Tick episodeStart = 0;

    EventId episodeTimer = invalidEventId;
    EventId samplingDeadline = invalidEventId;

    std::vector<int> samplingQueue;
    int samplingPid = -1;
    int samplingTarget = 0;
    int sampledThisEpisode = 0;

    /**
     * After a task's sampling run ends, its last allowed submission may
     * still be on the device; exclusivity for the next sampled task
     * requires waiting for it (poll granularity, like any drain).
     */
    int samplingDrainPid = -1;

    std::uint64_t nEpisodes = 0;
};

} // namespace neon

#endif // NEON_SCHED_DISENGAGED_FQ_HH
