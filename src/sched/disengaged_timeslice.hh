/**
 * @file
 * Disengaged Timeslice (paper 3.2).
 *
 * Identical policy to the engaged timeslice, but the token holder's
 * channel registers are left unprotected for the duration of its slice,
 * so its submissions proceed at direct-access speed. Everyone else
 * still faults and is delayed. Re-engaging at the slice edge requires a
 * status-update scan of the holder's command queues (to learn the
 * last-submitted reference values) before drain completion can be
 * observed.
 */

#ifndef NEON_SCHED_DISENGAGED_TIMESLICE_HH
#define NEON_SCHED_DISENGAGED_TIMESLICE_HH

#include "sched/timeslice.hh"

namespace neon
{

/** Timeslice with direct access for the token holder. */
class DisengagedTimeslice : public TimesliceScheduler
{
  public:
    DisengagedTimeslice(KernelModule &kernel,
                        const TimesliceConfig &cfg = TimesliceConfig())
        : TimesliceScheduler(kernel, cfg)
    {
    }

    std::string name() const override { return "disengaged-timeslice"; }

    void
    onChannelActive(Channel &c) override
    {
        // A channel appearing mid-slice for the current holder gets
        // direct access immediately; all others stay protected.
        TimesliceScheduler::onChannelActive(c);
        if (tokenHolder && c.context().taskId() == tokenHolder->pid())
            kernel.unprotectChannel(c);
    }

  protected:
    void
    onGrant(Task &t) override
    {
        for (Channel *c : t.channels())
            kernel.unprotectChannel(*c);
    }

    void
    onRevoke(Task &t) override
    {
        for (Channel *c : t.channels())
            kernel.protectChannel(*c);
    }

    Tick
    statusUpdateDelay() const override
    {
        // Command-queue scan + page-table walks to recover the last
        // submitted reference values, plus protection toggling.
        const std::size_t n =
            drainingTask ? drainingTask->channels().size() : 1;
        return kernel.statusUpdateCost(n) + kernel.protectionCost(n);
    }
};

} // namespace neon

#endif // NEON_SCHED_DISENGAGED_TIMESLICE_HH
