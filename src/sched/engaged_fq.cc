#include "sched/engaged_fq.hh"

#include <algorithm>
#include <limits>

#include "obs/trace.hh"
#include "sim/logging.hh"

namespace neon
{

EngagedFairQueueing::EngagedFairQueueing(KernelModule &kernel,
                                         const EngagedFqConfig &cfg)
    : Scheduler(kernel), cfg(cfg)
{
}

EngagedFairQueueing::TaskState &
EngagedFairQueueing::stateOf(int pid)
{
    auto it = tasks.find(pid);
    if (it == tasks.end()) {
        TaskState ts;
        ts.estSize = cfg.initialEstimate;
        it = tasks.emplace(pid, ts).first;
    }
    return it->second;
}

Tick
EngagedFairQueueing::finishTagOf(int pid) const
{
    auto it = tasks.find(pid);
    return it == tasks.end() ? 0 : it->second.finishTag;
}

Tick
EngagedFairQueueing::estimateOf(int pid) const
{
    auto it = tasks.find(pid);
    return it == tasks.end() ? 0 : it->second.estSize;
}

void
EngagedFairQueueing::onChannelActive(Channel &c)
{
    // Stays protected; observe completions for accounting and pacing.
    const int pid = c.context().taskId();
    c.kernelCompletionHook = [this, pid](std::uint64_t, Tick,
                                         Tick service) {
        onCompletion(pid, service);
    };
}

void
EngagedFairQueueing::onTaskExited(Task &t)
{
    tasks.erase(t.pid());
    if (servingPid == t.pid()) {
        // Its channels were aborted; no completion will arrive.
        busy = false;
        servingPid = -1;
        dispatchNext();
    }
}

FaultDecision
EngagedFairQueueing::onSubmitFault(Task &t, Channel &, const GpuRequest &)
{
    TaskState &ts = stateOf(t.pid());
    const Tick start = std::max(sysV, ts.finishTag);
    ts.finishTag = start + ts.estSize;
    ts.pendingStartTag = start;

    if (busy)
        return FaultDecision::Park;

    // The device is idle: this request still has to win the slot by
    // start tag against any parked peers.
    Task *best = nullptr;
    Tick best_tag = start;
    for (int pid : kernel.parkedPids()) {
        Task *peer = kernel.findTask(pid);
        if (!peer || !peer->alive())
            continue;
        const Tick tag = stateOf(pid).pendingStartTag;
        if (tag < best_tag) {
            best_tag = tag;
            best = peer;
        }
    }

    if (!best) {
        dispatched(t.pid(), start);
        return FaultDecision::Allow;
    }

    dispatched(best->pid(), best_tag);
    kernel.releaseParked(*best);
    return FaultDecision::Park;
}

void
EngagedFairQueueing::onPoll(Tick now)
{
    if (busy && servingPid >= 0 &&
        now - serviceBegan > cfg.killThreshold) {
        Task *t = kernel.findTask(servingPid);
        if (t) {
            kernel.killTask(*t, "request exceeded the run-time limit");
            return; // onTaskExited advanced the queue
        }
        busy = false;
        servingPid = -1;
        dispatchNext();
    }
}

void
EngagedFairQueueing::dispatched(int pid, Tick start_tag)
{
    busy = true;
    servingPid = pid;
    serviceBegan = kernel.eventQueue().now();
    sysV = std::max(sysV, start_tag);
    NEON_TRACE(obs::TraceCategory::Sched, obs::TraceKind::Instant,
               "efq.dispatch", obs::TraceIds{kernel.deviceIndex(), pid, -1},
               start_tag, sysV);
}

void
EngagedFairQueueing::onCompletion(int pid, Tick service)
{
    TaskState &ts = stateOf(pid);
    ts.estSize = static_cast<Tick>(
        (1.0 - cfg.estimateGain) * static_cast<double>(ts.estSize) +
        cfg.estimateGain * static_cast<double>(service));
    NEON_TRACE(obs::TraceCategory::Sched, obs::TraceKind::Instant,
               "efq.complete", obs::TraceIds{kernel.deviceIndex(), pid, -1},
               service, ts.estSize);

    if (pid == servingPid) {
        busy = false;
        servingPid = -1;
        // Anticipate the completing task's next submission before
        // handing the device to a parked peer. Hot path: one of these
        // per engaged completion.
        auto anticipate = [this] { dispatchNext(); };
        static_assert(EventCallback::fitsInline<decltype(anticipate)>);
        kernel.eventQueue().scheduleIn(cfg.anticipation,
                                       std::move(anticipate));
    }
}

void
EngagedFairQueueing::dispatchNext()
{
    if (busy)
        return;

    // Pick the parked submission with the minimum start tag.
    Task *best = nullptr;
    Tick best_tag = std::numeric_limits<Tick>::max();
    for (int pid : kernel.parkedPids()) {
        Task *t = kernel.findTask(pid);
        if (!t || !t->alive())
            continue;
        const Tick tag = stateOf(pid).pendingStartTag;
        if (tag < best_tag) {
            best_tag = tag;
            best = t;
        }
    }

    if (best) {
        dispatched(best->pid(), best_tag);
        kernel.releaseParked(*best);
    }
}

} // namespace neon
