#include "sched/timeslice.hh"

#include <algorithm>

#include "obs/trace.hh"
#include "sim/logging.hh"

namespace neon
{

TimesliceScheduler::TimesliceScheduler(KernelModule &kernel,
                                       const TimesliceConfig &cfg)
    : Scheduler(kernel), cfg(cfg)
{
}

Tick
TimesliceScheduler::overuseOf(int pid) const
{
    auto it = overuse.find(pid);
    return it == overuse.end() ? 0 : it->second;
}

void
TimesliceScheduler::onChannelActive(Channel &c)
{
    // Channels stay protected under the engaged policy. If the GPU is
    // currently unscheduled, the channel's owner may take the token.
    if (!tokenHolder && !drainingTask) {
        for (Task *t : kernel.tasks()) {
            if (t->pid() == c.context().taskId() && t->alive()) {
                grant(*t);
                break;
            }
        }
    }
}

void
TimesliceScheduler::onTaskExited(Task &t)
{
    overuse.erase(t.pid());
    if (drainingTask == &t)
        drainingTask = nullptr;
    if (tokenHolder == &t) {
        tokenHolder = nullptr;
        NEON_TRACE(obs::TraceCategory::Sched, obs::TraceKind::End,
                   "ts.slice",
                   obs::TraceIds{kernel.deviceIndex(), t.pid(), -1}, 1, 0);
        if (sliceTimer != invalidEventId) {
            kernel.eventQueue().cancel(sliceTimer);
            sliceTimer = invalidEventId;
        }
        passToken();
    }
}

FaultDecision
TimesliceScheduler::onSubmitFault(Task &t, Channel &, const GpuRequest &)
{
    // New requests are blocked while draining — free, since the device
    // is known to be busy with the ex-holder's overrun.
    if (drainingTask)
        return FaultDecision::Park;

    if (!tokenHolder) {
        grant(t);
        return FaultDecision::Allow;
    }

    return &t == tokenHolder ? FaultDecision::Allow : FaultDecision::Park;
}

void
TimesliceScheduler::onPoll(Tick now)
{
    if (drainingTask)
        checkDrain(now);
}

void
TimesliceScheduler::grant(Task &t)
{
    tokenHolder = &t;
    lastHolderPid = t.pid();
    sliceEnd = kernel.eventQueue().now() + cfg.slice;
    NEON_TRACE(obs::TraceCategory::Sched, obs::TraceKind::Begin,
               "ts.slice", obs::TraceIds{kernel.deviceIndex(), t.pid(), -1},
               cfg.slice, overuseOf(t.pid()));
    // One timer per granted slice, for the lifetime of the run.
    auto expiry = [this] { sliceExpired(); };
    static_assert(EventCallback::fitsInline<decltype(expiry)>);
    sliceTimer = kernel.eventQueue().schedule(sliceEnd, std::move(expiry));
    onGrant(t);
    kernel.releaseParked(t);
}

void
TimesliceScheduler::sliceExpired()
{
    sliceTimer = invalidEventId;
    if (!tokenHolder)
        return;

    Task *t = tokenHolder;
    tokenHolder = nullptr;
    NEON_TRACE(obs::TraceCategory::Sched, obs::TraceKind::End,
               "ts.slice",
               obs::TraceIds{kernel.deviceIndex(), t->pid(), -1}, 0, 0);
    onRevoke(*t);

    drainingTask = t;
    drainBegin = kernel.eventQueue().now();
    drainReadyAt = drainBegin + statusUpdateDelay();
    checkDrain(kernel.eventQueue().now());
}

bool
TimesliceScheduler::drainedOut(const Task &t) const
{
    for (const Channel *c : t.channels()) {
        if (kernel.readCompletedRef(*c) < kernel.readLastSubmittedRef(*c))
            return false;
    }
    return true;
}

void
TimesliceScheduler::checkDrain(Tick now)
{
    Task *t = drainingTask;
    if (!t) {
        return;
    } else if (!t->alive()) {
        drainingTask = nullptr;
        passToken();
        return;
    }

    if (now >= drainReadyAt && drainedOut(*t)) {
        // Charge the overrun beyond the slice edge as overuse.
        const Tick over = std::max<Tick>(0, now - drainBegin);
        if (over > 0)
            overuse[t->pid()] += over;
        drainingTask = nullptr;
        passToken();
        return;
    }

    if (now - drainBegin > cfg.killThreshold) {
        // The request never finished: aberrant or malicious task.
        Task *victim = t;
        drainingTask = nullptr;
        kernel.killTask(*victim, "request exceeded the run-time limit");
        // killTask triggers onTaskExited -> passToken via holder logic;
        // the victim was not the holder here, so advance explicitly.
        passToken();
    }
}

void
TimesliceScheduler::passToken()
{
    if (tokenHolder || drainingTask)
        return;

    std::vector<Task *> rotation = kernel.gpuTasks();
    if (rotation.empty())
        return;

    std::sort(rotation.begin(), rotation.end(),
              [](const Task *a, const Task *b) {
                  return a->pid() < b->pid();
              });

    // Start from the task after the previous holder in pid order.
    std::size_t start = 0;
    for (std::size_t i = 0; i < rotation.size(); ++i) {
        if (rotation[i]->pid() > lastHolderPid) {
            start = i;
            break;
        }
    }

    // Skip turns of tasks that have banked a full slice of overuse.
    for (std::size_t step = 0; step < rotation.size(); ++step) {
        Task *cand = rotation[(start + step) % rotation.size()];
        Tick &ou = overuse[cand->pid()];
        if (ou >= cfg.slice) {
            ou -= cfg.slice;
            ++nSkips;
            NEON_TRACE(obs::TraceCategory::Sched, obs::TraceKind::Instant,
                       "ts.skip_overuse",
                       obs::TraceIds{kernel.deviceIndex(), cand->pid(), -1},
                       ou, 0);
            continue;
        }
        grant(*cand);
        return;
    }

    // Everyone was skipped this pass; grant to the first candidate so
    // the device does not sit idle with work pending.
    grant(*rotation[start % rotation.size()]);
}

} // namespace neon
