#include "sched/disengaged_timeslice.hh"

// DisengagedTimeslice is header-only; this translation unit anchors the
// library target.
