/**
 * @file
 * Direct device access: the no-management baseline.
 *
 * Every channel is left unprotected the moment it becomes active, so
 * applications submit straight from user space. This is the paper's
 * comparison point: maximal efficiency, no fairness, no protection.
 */

#ifndef NEON_SCHED_DIRECT_HH
#define NEON_SCHED_DIRECT_HH

#include "obs/trace.hh"
#include "os/kernel.hh"
#include "os/scheduler.hh"

namespace neon
{

/** Baseline: unmediated direct-mapped access for everyone. */
class DirectScheduler : public Scheduler
{
  public:
    explicit DirectScheduler(KernelModule &kernel) : Scheduler(kernel) {}

    std::string name() const override { return "direct"; }

    void
    onChannelActive(Channel &c) override
    {
        NEON_TRACE(obs::TraceCategory::Sched, obs::TraceKind::Instant,
                   "direct.unprotect",
                   obs::TraceIds{kernel.deviceIndex(),
                                 c.context().taskId(), -1},
                   c.id(), 0);
        kernel.unprotectChannel(c);
    }

    FaultDecision
    onSubmitFault(Task &, Channel &, const GpuRequest &) override
    {
        // Only reachable in the window before onChannelActive runs.
        return FaultDecision::Allow;
    }
};

} // namespace neon

#endif // NEON_SCHED_DIRECT_HH
