#include "sched/direct.hh"

// DirectScheduler is header-only; this translation unit anchors the
// library target.
