/**
 * @file
 * Engaged (classic) start-time fair queueing — the comparison point
 * representing prior GPU schedulers that capture and order every
 * request (GERM, TimeGraph, Gdev and the network/storage fair queueing
 * family the paper cites).
 *
 * Every channel stays protected; every submission faults. Each request
 * receives a start tag max(system virtual time, task's last finish
 * tag) and a finish tag start + estimated size. One request occupies
 * the device at a time; on completion, the parked request with the
 * minimum start tag is dispatched. Request sizes are learned online
 * (EWMA of observed service).
 */

#ifndef NEON_SCHED_ENGAGED_FQ_HH
#define NEON_SCHED_ENGAGED_FQ_HH

#include <cstdint>
#include <map>

#include "os/kernel.hh"
#include "os/scheduler.hh"
#include "sched/vtime_tap.hh"

namespace neon
{

/** Tunables for the engaged fair-queueing baseline. */
struct EngagedFqConfig
{
    /** Initial request-size estimate before any observation. */
    Tick initialEstimate = usec(50);

    /** EWMA weight of the newest observation. */
    double estimateGain = 0.3;

    /**
     * Anticipatory dispatch delay after a completion, so that the
     * just-completed task's (sub-microsecond) resubmission can compete
     * for the slot instead of strictly alternating with parked peers —
     * the "deceptive idleness" remedy of anticipatory fair queueing
     * schedulers such as FlashFQ.
     */
    Tick anticipation = usec(2);

    /** Time on device beyond which the owning task is killed. */
    Tick killThreshold = msec(200);
};

/** Classic SFQ with per-request interception. */
class EngagedFairQueueing : public Scheduler, public VirtualTimeTap
{
  public:
    EngagedFairQueueing(KernelModule &kernel,
                        const EngagedFqConfig &cfg = EngagedFqConfig());

    std::string name() const override { return "engaged-fq"; }

    void onChannelActive(Channel &c) override;
    void onTaskExited(Task &t) override;
    FaultDecision onSubmitFault(Task &t, Channel &c,
                                const GpuRequest &req) override;
    void onPoll(Tick now) override;

    Tick systemVtime() const { return sysV; }
    Tick finishTagOf(int pid) const;
    Tick estimateOf(int pid) const;

    // VirtualTimeTap (cross-device aggregation).
    Tick tapSystemVtime() const override { return sysV; }
    Tick tapTaskVtime(int pid) const override { return finishTagOf(pid); }

  private:
    struct TaskState
    {
        Tick finishTag = 0;
        Tick estSize = 0;
        Tick pendingStartTag = 0; ///< tag of a parked submission
    };

    TaskState &stateOf(int pid);
    void dispatched(int pid, Tick start_tag);
    void onCompletion(int pid, Tick service);
    void dispatchNext();

    EngagedFqConfig cfg;
    std::map<int, TaskState> tasks;

    Tick sysV = 0;
    bool busy = false;
    int servingPid = -1;
    Tick serviceBegan = 0;
};

} // namespace neon

#endif // NEON_SCHED_ENGAGED_FQ_HH
