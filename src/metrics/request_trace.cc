#include "metrics/request_trace.hh"

#include "sim/logging.hh"

namespace neon
{

void
RequestTrace::attach(GpuDevice &device)
{
    device.traceSubmit = [this](Channel &c, const GpuRequest &,
                                Tick when) {
        const int task_id = c.context().taskId();
        auto &pt = perTask[task_id];
        ++pt.submissions;

        auto it = lastSubmit.find(task_id);
        if (it != lastSubmit.end())
            pt.interArrivalUs.add(toUsec(when - it->second));
        lastSubmit[task_id] = when;
    };

    device.traceComplete = [this](Channel &c, const GpuRequest &r,
                                  Tick start, Tick end) {
        const int task_id = c.context().taskId();
        auto &pt = perTask[task_id];
        const double us = toUsec(end - start);
        pt.allServiceAccumUs.add(us);
        if (r.awaited) {
            pt.serviceUs.add(us);
            pt.serviceAccumUs.add(us);
        }
    };
}

const RequestTrace::PerTask &
RequestTrace::of(int task_id) const
{
    auto it = perTask.find(task_id);
    if (it == perTask.end())
        panic("no trace recorded for task ", task_id);
    return it->second;
}

void
RequestTrace::reset()
{
    perTask.clear();
    lastSubmit.clear();
}

} // namespace neon
