#include "metrics/request_trace.hh"

#include "sim/logging.hh"

namespace neon
{

RequestTrace::PerTask &
RequestTrace::slotFor(int task_id)
{
    if (task_id < 0)
        panic("request trace: negative task id ", task_id);
    const auto idx = static_cast<std::size_t>(task_id);
    if (idx >= perTask.size()) {
        perTask.resize(idx + 1);
        present.resize(idx + 1, 0);
        lastSubmit.resize(idx + 1, -1);
    }
    present[idx] = 1;
    return perTask[idx];
}

void
RequestTrace::attach(GpuDevice &device)
{
    device.traceSubmit = [this](Channel &c, const GpuRequest &,
                                Tick when) {
        const int task_id = c.context().taskId();
        auto &pt = slotFor(task_id);
        ++pt.submissions;

        if (lastSubmit[task_id] >= 0)
            pt.interArrivalUs.add(toUsec(when - lastSubmit[task_id]));
        lastSubmit[task_id] = when;
    };

    device.traceComplete = [this](Channel &c, const GpuRequest &r,
                                  Tick start, Tick end) {
        const int task_id = c.context().taskId();
        auto &pt = slotFor(task_id);
        const double us = toUsec(end - start);
        pt.allServiceAccumUs.add(us);
        if (r.awaited) {
            pt.serviceUs.add(us);
            pt.serviceAccumUs.add(us);
        }
    };
}

const RequestTrace::PerTask &
RequestTrace::of(int task_id) const
{
    if (!has(task_id))
        panic("no trace recorded for task ", task_id);
    return perTask[task_id];
}

void
RequestTrace::reset()
{
    perTask.clear();
    present.clear();
    lastSubmit.clear();
}

} // namespace neon
