/**
 * @file
 * Service-level accounting for open-system (serving) runs.
 *
 * A closed experiment reports per-task round times; an open system is
 * judged by distributional service-level objectives: how long sessions
 * queued for admission, how long they stayed, and how much slower they
 * ran than they would have alone. The helpers here turn per-session
 * samples into nearest-rank percentile summaries.
 */

#ifndef NEON_METRICS_SLO_HH
#define NEON_METRICS_SLO_HH

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace neon
{

/** Nearest-rank percentile summary of one latency/ratio series. */
struct LatencySummary
{
    std::uint64_t count = 0;
    double mean = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    double max = 0.0;
};

/** Nearest-rank percentile of a sorted series (q in [0, 1]). */
inline double
percentileOfSorted(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    const double rank = q * static_cast<double>(sorted.size());
    std::size_t idx =
        rank <= 1.0 ? 0 : static_cast<std::size_t>(rank + 0.5) - 1;
    if (idx >= sorted.size())
        idx = sorted.size() - 1;
    return sorted[idx];
}

/** Summarize a series (sorts a copy; fine at session counts). */
inline LatencySummary
summarizeLatencies(std::vector<double> xs)
{
    LatencySummary s;
    if (xs.empty())
        return s;
    std::sort(xs.begin(), xs.end());
    s.count = xs.size();
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    s.mean = sum / static_cast<double>(xs.size());
    s.p50 = percentileOfSorted(xs, 0.50);
    s.p95 = percentileOfSorted(xs, 0.95);
    s.p99 = percentileOfSorted(xs, 0.99);
    s.max = xs.back();
    return s;
}

/**
 * Goodput: of the sessions that departed cleanly (not killed, not
 * shed), the fraction that met every configured SLO target
 * (ServeConfig::slo). Untargeted runs report fraction 1.0 with
 * targeted == false, so the field is always meaningful to print.
 */
struct GoodputReport
{
    bool targeted = false;       ///< was any SLO target configured?
    std::uint64_t eligible = 0;  ///< departed, un-killed sessions
    std::uint64_t met = 0;       ///< of those, met every target
    double fraction = 1.0;       ///< met / eligible (1.0 when no eligible)
};

/**
 * Front-door actuation counters, reported next to goodput so an
 * overload run shows *why* goodput held: what the control plane
 * refused (throttle/shed) and what it displaced (preemption). All
 * terminal outcomes are counted — the conservation audit checks
 * arrivals == served + shed + throttled + killed + in-system exactly.
 */
struct ControlPlaneReport
{
    std::uint64_t throttled = 0;       ///< token-bucket rejections
    std::uint64_t shed = 0;            ///< all sheds (front door + retry)
    std::uint64_t predictiveSheds = 0; ///< of those, SLO-predicted at arrival
    std::uint64_t preemptions = 0;     ///< batch incarnations displaced
};

/** Goodput of one workload class (per-QoS-class SLO attainment). */
struct ClassGoodput
{
    std::string label;
    GoodputReport goodput;
};

/** SLO report for one serving run. */
struct SloReport
{
    /** Arrival-to-admission queueing delay, ms (admitted sessions). */
    LatencySummary queueDelayMs;

    /** Admission-to-departure residency, ms (departed sessions). */
    LatencySummary sojournMs;

    /** Arrival-to-departure latency, ms (departed sessions). */
    LatencySummary turnaroundMs;

    /**
     * Per-session mean round time over the class's isolated (solo,
     * direct-access) baseline — the paper's slowdown metric applied
     * per departed session.
     */
    LatencySummary slowdown;

    /** Fraction of clean departures meeting the configured targets. */
    GoodputReport goodput;

    /** Goodput split per workload class (spec order). */
    std::vector<ClassGoodput> goodputByClass;

    /** What the admission control plane refused or displaced. */
    ControlPlaneReport control;
};

} // namespace neon

#endif // NEON_METRICS_SLO_HH
