/**
 * @file
 * Fixed-width ASCII table output for benches and examples.
 */

#ifndef NEON_METRICS_REPORTER_HH
#define NEON_METRICS_REPORTER_HH

#include <iostream>
#include <string>
#include <vector>

namespace neon
{

/** Minimal column-aligned table printer. */
class Table
{
  public:
    explicit Table(std::vector<std::string> header);

    /** Append one row; must match the header's column count. */
    void addRow(std::vector<std::string> row);

    /** Render to @p os with column alignment and a rule under header. */
    void print(std::ostream &os = std::cout) const;

    /**
     * Render as RFC-4180-style CSV (header row first). Cells containing
     * commas, quotes, or newlines are quoted; everything else is
     * emitted verbatim, so the output feeds pandas/gnuplot directly.
     */
    void printCsv(std::ostream &os) const;

    /** How num() interprets its digit count. */
    enum class Digits
    {
        Fixed,       ///< digits after the decimal point
        Significant, ///< total significant digits
    };

    /** Format a double with @p precision fixed or significant digits. */
    static std::string num(double v, int precision = 2,
                           Digits mode = Digits::Fixed);

  private:
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
};

} // namespace neon

#endif // NEON_METRICS_REPORTER_HH
