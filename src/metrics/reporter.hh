/**
 * @file
 * Fixed-width ASCII table output for benches and examples.
 */

#ifndef NEON_METRICS_REPORTER_HH
#define NEON_METRICS_REPORTER_HH

#include <iostream>
#include <string>
#include <vector>

namespace neon
{

/** Minimal column-aligned table printer. */
class Table
{
  public:
    explicit Table(std::vector<std::string> header);

    /** Append one row; must match the header's column count. */
    void addRow(std::vector<std::string> row);

    /** Render to @p os with column alignment and a rule under header. */
    void print(std::ostream &os = std::cout) const;

    /** Format a double with fixed precision. */
    static std::string num(double v, int precision = 2);

  private:
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
};

} // namespace neon

#endif // NEON_METRICS_REPORTER_HH
