/**
 * @file
 * The paper's evaluation metrics (Section 5.3).
 */

#ifndef NEON_METRICS_EFFICIENCY_HH
#define NEON_METRICS_EFFICIENCY_HH

#include <vector>

#include "sim/logging.hh"

namespace neon
{

/**
 * Concurrency efficiency: sum over tasks of (solo round time / co-run
 * round time). 1.0 means resources were neither lost nor gained; < 1
 * indicates lost resources (e.g., context-switch costs or scheduler
 * idleness); > 1 indicates synergy (e.g., DMA/compute overlap).
 */
inline double
concurrencyEfficiency(const std::vector<double> &solo_round_us,
                      const std::vector<double> &corun_round_us)
{
    if (solo_round_us.size() != corun_round_us.size())
        panic("efficiency: mismatched series");
    double sum = 0.0;
    for (std::size_t i = 0; i < solo_round_us.size(); ++i) {
        if (corun_round_us[i] > 0.0)
            sum += solo_round_us[i] / corun_round_us[i];
    }
    return sum;
}

/** Per-task slowdown (normalized runtime): co-run / solo. */
inline double
slowdown(double solo_round_us, double corun_round_us)
{
    return solo_round_us > 0.0 ? corun_round_us / solo_round_us : 0.0;
}

/** Jain's fairness index over per-task slowdowns. */
inline double
jainIndex(const std::vector<double> &xs)
{
    if (xs.empty())
        return 1.0;
    double s = 0.0, s2 = 0.0;
    for (double x : xs) {
        s += x;
        s2 += x * x;
    }
    if (s2 <= 0.0)
        return 1.0;
    return (s * s) / (static_cast<double>(xs.size()) * s2);
}

} // namespace neon

#endif // NEON_METRICS_EFFICIENCY_HH
