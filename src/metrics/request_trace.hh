/**
 * @file
 * Ground-truth request tracing for Table 1 and Figure 2.
 *
 * Attaches to the device's trace hooks and records, per task, the
 * inter-arrival times of submissions and the service times of awaited
 * requests (trivial submissions are never checked for completion and
 * are excluded from service statistics, as in the paper's measurement
 * methodology).
 */

#ifndef NEON_METRICS_REQUEST_TRACE_HH
#define NEON_METRICS_REQUEST_TRACE_HH

#include <vector>

#include "gpu/device.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace neon
{

/** Per-task submission/service statistics collector. */
class RequestTrace
{
  public:
    /** Install the trace hooks on @p device. */
    void attach(GpuDevice &device);

    struct PerTask
    {
        Log2Histogram interArrivalUs{18};
        Log2Histogram serviceUs{14};
        Accum serviceAccumUs;     ///< awaited requests only
        Accum allServiceAccumUs;  ///< including trivial
        std::uint64_t submissions = 0;
    };

    /**
     * Per-task record. The returned reference is invalidated when a
     * previously unseen (higher) task id first submits — storage is a
     * flat vector — so read results after the run, or re-fetch after
     * tasks may have joined.
     */
    const PerTask &of(int task_id) const;

    bool
    has(int task_id) const
    {
        return task_id >= 0 &&
            static_cast<std::size_t>(task_id) < present.size() &&
            present[task_id];
    }

    void reset();

  private:
    /**
     * Task ids are small and dense (pids count up from 1), so flat
     * vectors indexed by id beat a tree map on the per-submission hot
     * path. Grown on first touch of an id.
     */
    PerTask &slotFor(int task_id);

    std::vector<PerTask> perTask;       // indexed by task id
    std::vector<unsigned char> present; // 1 iff the id has a record
    std::vector<Tick> lastSubmit;       // by task id; -1 = none yet
};

} // namespace neon

#endif // NEON_METRICS_REQUEST_TRACE_HH
