/**
 * @file
 * Ground-truth request tracing for Table 1 and Figure 2.
 *
 * Attaches to the device's trace hooks and records, per task, the
 * inter-arrival times of submissions and the service times of awaited
 * requests (trivial submissions are never checked for completion and
 * are excluded from service statistics, as in the paper's measurement
 * methodology).
 */

#ifndef NEON_METRICS_REQUEST_TRACE_HH
#define NEON_METRICS_REQUEST_TRACE_HH

#include <map>

#include "gpu/device.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace neon
{

/** Per-task submission/service statistics collector. */
class RequestTrace
{
  public:
    /** Install the trace hooks on @p device. */
    void attach(GpuDevice &device);

    struct PerTask
    {
        Log2Histogram interArrivalUs{18};
        Log2Histogram serviceUs{14};
        Accum serviceAccumUs;     ///< awaited requests only
        Accum allServiceAccumUs;  ///< including trivial
        std::uint64_t submissions = 0;
    };

    const PerTask &of(int task_id) const;
    bool has(int task_id) const { return perTask.count(task_id) > 0; }
    void reset();

  private:
    std::map<int, PerTask> perTask;
    std::map<int, Tick> lastSubmit; // by task id
};

} // namespace neon

#endif // NEON_METRICS_REQUEST_TRACE_HH
