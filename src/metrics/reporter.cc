#include "metrics/reporter.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "sim/logging.hh"

namespace neon
{

Table::Table(std::vector<std::string> header) : header(std::move(header))
{
}

void
Table::addRow(std::vector<std::string> row)
{
    if (row.size() != header.size())
        panic("table row width ", row.size(), " != header width ",
              header.size());
    rows.push_back(std::move(row));
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> width(header.size());
    for (std::size_t i = 0; i < header.size(); ++i)
        width[i] = header[i].size();
    for (const auto &row : rows) {
        for (std::size_t i = 0; i < row.size(); ++i)
            width[i] = std::max(width[i], row[i].size());
    }

    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            os << std::left << std::setw(static_cast<int>(width[i]) + 2)
               << cells[i];
        }
        os << "\n";
    };

    emit(header);
    std::size_t total = 0;
    for (std::size_t w : width)
        total += w + 2;
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows)
        emit(row);
}

namespace
{

/** Quote a CSV cell only when it needs it. */
std::string
csvCell(const std::string &cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

void
Table::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (i)
                os << ',';
            os << csvCell(cells[i]);
        }
        os << '\n';
    };
    emit(header);
    for (const auto &row : rows)
        emit(row);
}

std::string
Table::num(double v, int precision, Digits mode)
{
    std::ostringstream os;
    if (mode == Digits::Fixed)
        os << std::fixed << std::setprecision(precision) << v;
    else
        os << std::defaultfloat << std::setprecision(precision) << v;
    return os.str();
}

} // namespace neon
